package websyn

import (
	"io"

	"websyn/internal/match"
)

// Matching re-exports: the downstream fuzzy query matcher.
type (
	// MatchDictionary is the compiled synonym dictionary for query
	// matching.
	MatchDictionary = match.Dictionary
	// DictEntry is one dictionary payload.
	DictEntry = match.Entry
	// QueryMatch is one entity mention found in a query.
	QueryMatch = match.Match
	// Segmentation is a full query-segmentation result.
	Segmentation = match.Segmentation
	// FuzzyIndex is the trigram index for whole-string fuzzy lookup.
	FuzzyIndex = match.FuzzyIndex
	// FuzzyHit is one fuzzy-lookup result.
	FuzzyHit = match.FuzzyHit
)

// Unified-engine re-exports: the one Request/Response matching surface
// shared by the Go API and POST /v1/match (see docs/API.md).
type (
	// MatchEngine is the single entry point owning the trie, typo
	// correction and the trigram index.
	MatchEngine = match.Engine
	// MatchRequest is the one matching request shape.
	MatchRequest = match.Request
	// MatchResponse is the one matching response shape.
	MatchResponse = match.Response
	// MatchMode selects the engine strategy (span, segment, fuzzy).
	MatchMode = match.Mode
	// SpanMatch is one resolved span in a MatchResponse.
	SpanMatch = match.SpanMatch
)

// Engine modes.
const (
	ModeSpan    = match.ModeSpan
	ModeSegment = match.ModeSegment
	ModeFuzzy   = match.ModeFuzzy
)

// NewMatchEngine assembles an engine from its parts. fuzzy may be any
// trigram index (flat or sharded) or nil; canonicals maps entity ID to
// canonical string and may be nil; minSim <= 0 uses the package default.
func NewMatchEngine(dict *MatchDictionary, fuzzy match.FuzzyLookup, canonicals []string, minSim float64) *MatchEngine {
	return match.NewEngine(dict, fuzzy, canonicals, minSim)
}

// BuildEngine compiles mined results into a ready-to-query engine: the
// dictionary via BuildDictionary, a sharded trigram index over it, and
// the catalog's entity table. minSim <= 0 means DefaultFuzzyMinSim.
// The one-call form for library users; servers should go through
// BuildSnapshot + NewMatchServer instead.
func (s *Simulation) BuildEngine(results []*MineResult, minSim float64) *MatchEngine {
	if minSim <= 0 {
		minSim = DefaultFuzzyMinSim
	}
	dict := s.BuildDictionary(results)
	return match.NewEngine(dict, dict.NewShardedFuzzyIndex(minSim, 0), s.Catalog.Canonicals(), minSim)
}

// LoadDictionary reads a dictionary serialized with
// MatchDictionary.WriteTSV.
func LoadDictionary(r io.Reader) (*MatchDictionary, error) {
	return match.ReadTSV(r)
}

// NewMatchDictionary returns an empty dictionary (for callers assembling
// their own strings).
func NewMatchDictionary() *MatchDictionary { return match.NewDictionary() }

// BuildDictionary compiles the catalog's canonical strings plus the mined
// synonyms into a fuzzy-match dictionary — the artifact the paper's whole
// pipeline exists to produce. Mined entries are scored by their evidence:
// score = ICR * min(IPC, k)/k, scaled under the canonical score of 1.
func (s *Simulation) BuildDictionary(results []*MineResult) *MatchDictionary {
	d := match.NewDictionary()
	for _, e := range s.Catalog.All() {
		d.Add(e.Canonical, match.Entry{EntityID: e.ID, Score: 1.0, Source: "canonical"})
	}
	k := float64(s.Options.SurrogateK)
	for _, r := range results {
		ent := s.Catalog.ByNorm(r.Norm)
		if ent == nil {
			continue
		}
		for _, ev := range r.Evidence {
			if !ev.Accepted {
				continue
			}
			strength := float64(ev.IPC)
			if strength > k {
				strength = k
			}
			score := 0.99 * ev.ICR * (strength / k)
			d.Add(ev.Candidate, match.Entry{EntityID: ent.ID, Score: score, Source: "mined"})
		}
	}
	return d
}
