package websyn

// The benchmark harness: one testing.B benchmark per table and figure in
// the paper's evaluation section, plus ablations and pipeline
// micro-benchmarks. Each experiment benchmark REGENERATES its artifact and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both times the pipeline and reprints the paper's evaluation.

import (
	"fmt"
	"testing"

	"websyn/internal/eval"
)

// benchMovies/benchCameras reuse the cached simulations from websyn_test.go.

// BenchmarkFigure2_IPCSweep regenerates Figure 2: the IPC threshold sweep
// on the movie data set. Reported metrics: coverage increase and precision
// at the curve's endpoints (β=10 and β=2).
func BenchmarkFigure2_IPCSweep(b *testing.B) {
	x := NewExperiments(movies(b), nil)
	var points []Fig2Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = x.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	first, last := points[0], points[len(points)-1]
	b.ReportMetric(first.Coverage*100, "cov%@β10")
	b.ReportMetric(first.Precision*100, "prec%@β10")
	b.ReportMetric(last.Coverage*100, "cov%@β2")
	b.ReportMetric(last.Precision*100, "prec%@β2")
}

// BenchmarkFigure3_ICRSweep regenerates Figure 3: the ICR sweep for IPC
// 2/4/6 on movies. Reported metrics: weighted precision at the γ=0.9 end
// of the β=4 series (the paper's featured curve).
func BenchmarkFigure3_ICRSweep(b *testing.B) {
	x := NewExperiments(movies(b), nil)
	var points []Fig3Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = x.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range points {
		if p.Beta == 4 && p.Gamma == 0.9 {
			b.ReportMetric(p.Weighted*100, "wprec%@β4γ.9")
		}
		if p.Beta == 4 && p.Gamma == 0.01 {
			b.ReportMetric(p.Weighted*100, "wprec%@β4γ.01")
		}
	}
}

// BenchmarkTable1_HitsAndExpansion regenerates Table I over both data sets.
// Reported metrics: the camera hit ratios — the paper's headline contrast
// (Us 87% vs Wiki 11.5% vs Walk 54%).
func BenchmarkTable1_HitsAndExpansion(b *testing.B) {
	x := NewExperiments(movies(b), cameras(b))
	cfg := DefaultTable1Config()
	var rows []Table1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = x.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Dataset == "Cameras" {
			switch r.System {
			case "Us":
				b.ReportMetric(r.HitRatio*100, "cam-us-hit%")
				b.ReportMetric(r.Expansion*100, "cam-us-exp%")
			case "Wiki":
				b.ReportMetric(r.HitRatio*100, "cam-wiki-hit%")
			case "Walk(0.8)":
				b.ReportMetric(r.HitRatio*100, "cam-walk-hit%")
			}
		}
	}
}

// BenchmarkAblation_Measures contrasts IPC-only, ICR-only and combined
// selection (the design choice the paper motivates with Figure 1).
func BenchmarkAblation_Measures(b *testing.B) {
	sim := movies(b)
	results, err := sim.MineAll(MinerConfig{IPC: 1, ICR: 0})
	if err != nil {
		b.Fatal(err)
	}
	points := []struct {
		name string
		ipc  int
		icr  float64
	}{
		{"ipc-only", 4, 0},
		{"icr-only", 1, 0.1},
		{"both", 4, 0.1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pt := range points {
			o, err := eval.OutputFromResults(sim.Model, results, pt.name, pt.ipc, pt.icr)
			if err != nil {
				b.Fatal(err)
			}
			_ = eval.Precision(sim.Model, sim.Log, o)
			_ = eval.CoverageIncrease(sim.Model, sim.Log, o)
		}
	}
}

// BenchmarkAblation_SurrogateK sweeps the top-k surrogate cutoff — the
// paper's unstated constant, exercised as an ablation.
func BenchmarkAblation_SurrogateK(b *testing.B) {
	sim := movies(b)
	ks := []int{3, 5, 10, 15, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range ks {
			sd, err := sim.SearchDataK(k)
			if err != nil {
				b.Fatal(err)
			}
			m, err := sim.NewMinerWith(sd, DefaultMinerConfig())
			if err != nil {
				b.Fatal(err)
			}
			_ = m.MineAll(sim.Catalog.Canonicals())
		}
	}
}

// BenchmarkAblation_LogVolume contrasts mining quality across log sizes —
// the "how much log does the method need" ablation.
func BenchmarkAblation_LogVolume(b *testing.B) {
	sizes := []int{5000, 25000, 100000}
	for i := 0; i < b.N; i++ {
		for _, n := range sizes {
			sim, err := NewSimulation(Options{Dataset: Movies, Impressions: n})
			if err != nil {
				b.Fatal(err)
			}
			results, err := sim.MineAll(DefaultMinerConfig())
			if err != nil {
				b.Fatal(err)
			}
			o, err := eval.OutputFromResults(sim.Model, results, "vol", 4, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && n == sizes[len(sizes)-1] {
				b.ReportMetric(float64(o.Hits()), "hits@100k")
			}
		}
	}
}

// ---- Pipeline micro-benchmarks ----

// BenchmarkBuildSimulation times the full substrate build (movies, reduced
// log for a stable per-op cost).
func BenchmarkBuildSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := NewSimulation(Options{Dataset: Movies, Seed: uint64(i + 1), Impressions: 20000})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineSingle times one Mine call on the full movie substrate.
func BenchmarkMineSingle(b *testing.B) {
	sim := movies(b)
	m, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mine("Indiana Jones and the Kingdom of the Crystal Skull")
	}
}

// BenchmarkMineAllMovies times mining the whole D1 input set.
func BenchmarkMineAllMovies(b *testing.B) {
	sim := movies(b)
	m, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		b.Fatal(err)
	}
	inputs := sim.Catalog.Canonicals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MineAll(inputs)
	}
}

// BenchmarkMineAllCameras times mining the whole D2 input set (882 inputs
// over a 400k-impression log).
func BenchmarkMineAllCameras(b *testing.B) {
	sim := cameras(b)
	m, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		b.Fatal(err)
	}
	inputs := sim.Catalog.Canonicals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MineAll(inputs)
	}
}

// BenchmarkWalkBaseline times the random-walk baseline over all 100 movie
// canonicals.
func BenchmarkWalkBaseline(b *testing.B) {
	sim := movies(b)
	w, err := sim.NewWalker(DefaultWalkerConfig())
	if err != nil {
		b.Fatal(err)
	}
	inputs := sim.Catalog.Canonicals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range inputs {
			_ = w.Synonyms(u)
		}
	}
}

// BenchmarkDictionarySegment times fuzzy query matching against the full
// mined dictionary.
func BenchmarkDictionarySegment(b *testing.B) {
	sim := movies(b)
	results, err := sim.MineAll(DefaultMinerConfig())
	if err != nil {
		b.Fatal(err)
	}
	dict := sim.BuildDictionary(results)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dict.Segment("showtimes for indy 4 near san francisco tonight")
	}
}

// ---- Serving-layer benchmarks ----

// serveQueries builds a query mix over the movie catalog: every
// canonical title crossed with common suffixes.
func serveQueries(b *testing.B, n int) []string {
	sim := movies(b)
	suffixes := []string{" showtimes", " tickets", " dvd", " review", ""}
	ents := sim.Catalog.All()
	out := make([]string, n)
	for i := range out {
		e := ents[i%len(ents)]
		out[i] = e.Canonical + suffixes[i%len(suffixes)]
	}
	return out
}

// BenchmarkServeMatch contrasts the cached and uncached single-query
// paths of the serving layer. A skewed query mix (every query repeats)
// makes the LRU effective, as production traffic would.
func BenchmarkServeMatch(b *testing.B) {
	snap := movieSnapshot(b)
	queries := serveQueries(b, 200)

	b.Run("uncached", func(b *testing.B) {
		s := NewMatchServer(snap, ServeConfig{CacheSize: -1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Match(queries[i%len(queries)])
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := NewMatchServer(snap, ServeConfig{CacheSize: 4096})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Match(queries[i%len(queries)])
		}
	})
}

// BenchmarkServeMatchParallel drives the single-query serve path from
// all CPUs at once (b.RunParallel) over the same skewed query mix as
// BenchmarkServeMatch. "cached" prewarms every query and then measures
// pure hit-path throughput under contention — the lock-striped CLOCK
// cache takes only a shard read-lock and an atomic reference-bit store
// per hit, so this sub-benchmark is gated at 0 allocs/op. "uncached"
// disables the cache and measures contended arena-pool throughput.
func BenchmarkServeMatchParallel(b *testing.B) {
	snap := movieSnapshot(b)
	queries := serveQueries(b, 200)

	b.Run("cached", func(b *testing.B) {
		s := NewMatchServer(snap, ServeConfig{CacheSize: 4096})
		for _, q := range queries {
			if err := s.DoView(MatchRequest{Query: q}, func(*MatchResponse, bool) {}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				err := s.DoView(MatchRequest{Query: queries[i%len(queries)]}, func(*MatchResponse, bool) {})
				if err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	b.Run("uncached", func(b *testing.B) {
		s := NewMatchServer(snap, ServeConfig{CacheSize: -1})
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				err := s.DoView(MatchRequest{Query: queries[i%len(queries)]}, func(*MatchResponse, bool) {})
				if err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}

// BenchmarkRegistryFederateParallel measures the federated fan-out path
// under request-level concurrency: a two-domain registry (the movie
// snapshot registered twice) answers domainless queries, so every
// request runs the inline ≤4-target fan-out, the merge sort, and the
// provenance stamping. Caches are prewarmed, so the number isolates the
// federation overhead itself — pooled scratch, no per-query goroutines.
func BenchmarkRegistryFederateParallel(b *testing.B) {
	snap := movieSnapshot(b)
	queries := serveQueries(b, 200)
	reg := NewRegistry(ServeConfig{CacheSize: 4096})
	for _, name := range []string{"movies", "shadow"} {
		if _, err := reg.Add(name, snap, SnapshotMeta{}); err != nil {
			b.Fatal(err)
		}
	}
	for _, q := range queries {
		if r := reg.DoItem(MatchRequest{Query: q}, nil); r.Error != "" {
			b.Fatal(r.Error)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if r := reg.DoItem(MatchRequest{Query: queries[i%len(queries)]}, nil); r.Error != "" {
				b.Fatal(r.Error)
			}
			i++
		}
	})
}

// BenchmarkServeBatch contrasts sequential and pooled batch matching:
// the /match/batch worker pool's throughput win on a 256-query request.
// The cache is disabled so the benchmark measures segmentation
// throughput, not cache hits.
func BenchmarkServeBatch(b *testing.B) {
	snap := movieSnapshot(b)
	queries := serveQueries(b, 256)

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			s := NewMatchServer(snap, ServeConfig{CacheSize: -1, BatchWorkers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.MatchBatch(queries)
			}
			b.StopTimer()
			qps := float64(b.N) * float64(len(queries)) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
		})
	}
}

// BenchmarkEngineMatch times the unified engine across its three query
// classes: exact trie hits, per-token typo correction, and span-level
// fuzzy resolution through the trigram index (the expensive new path).
// It drives Server.DoView — the cache-disabled zero-copy API over the
// pooled scratch arenas — so the gated number covers request validation,
// tokenization and the full arena hot path; the alloc column is the
// steady-state allocation gate (0 allocs/op across all classes, pinned
// by TestEngineAllocBudget).
func BenchmarkEngineMatch(b *testing.B) {
	snap := movieSnapshot(b)
	s := NewMatchServer(snap, ServeConfig{CacheSize: -1})
	classes := []struct {
		name    string
		queries []string
	}{
		{"exact", []string{
			"the dark knight tickets",
			"quantum of solace showtimes",
			"madagascar 2 dvd",
		}},
		{"typo", []string{
			"twilght reviews",
			"quantem of solace",
			"madagscar 2 trailer",
		}},
		{"span-fuzzy", []string{
			"kingdom of the kristol skull showtimes",
			"quntum of solacee",
			"bangkok dangeruos cage movie",
		}},
	}
	for _, c := range classes {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				err := s.DoView(MatchRequest{Query: c.queries[i%len(c.queries)]}, func(*MatchResponse, bool) {})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotOpen contrasts the two boot paths for a serving
// snapshot file: the streaming decode (ReadSnapshotFile) against the
// mmap-backed open (OpenSnapshotMapped), which aliases the fuzzy
// posting slabs in place of decoding them. The gap is the cold-boot win
// hot reload gets from -mmap; the page cache is warm here, so the delta
// is pure decode work.
func BenchmarkSnapshotOpen(b *testing.B) {
	snap := movieSnapshot(b)
	path := b.TempDir() + "/movies.snap"
	if err := snap.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ReadSnapshotFile(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := OpenSnapshotMapped(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFuzzyLookup contrasts the flat and sharded trigram indexes on
// whole-string fuzzy lookups of misspelled queries.
func BenchmarkFuzzyLookup(b *testing.B) {
	snap := movieSnapshot(b)
	queries := []string{
		"madagascar2", "darkknight", "quantom of solace",
		"indiana jnes", "kungfu panda", "iron mann",
	}
	b.Run("flat", func(b *testing.B) {
		fi := snap.Dict.NewFuzzyIndex(snap.MinSim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = fi.Lookup(queries[i%len(queries)], 5)
		}
	})
	b.Run("sharded", func(b *testing.B) {
		sfi := snap.Dict.NewShardedFuzzyIndex(snap.MinSim, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sfi.Lookup(queries[i%len(queries)], 5)
		}
	})
	b.Run("sharded-parallel", func(b *testing.B) {
		sfi := snap.Dict.NewShardedFuzzyIndex(snap.MinSim, 0)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				_ = sfi.Lookup(queries[i%len(queries)], 5)
				i++
			}
		})
	})
}
