module websyn

go 1.23
