module websyn

go 1.24
