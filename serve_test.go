package websyn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// movieSnapshot mines the full movie pipeline once and compiles a serving
// snapshot (cached via the shared movie simulation).
func movieSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	sim := movies(t)
	results, err := sim.MineAll(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sim.BuildSnapshot(results, 0)
}

// TestSnapshotRoundTripIdenticalMatches is the end-to-end round-trip
// acceptance test: a server started from snapshot bytes must produce
// byte-identical match results to one built directly from the miner.
func TestSnapshotRoundTripIdenticalMatches(t *testing.T) {
	snap := movieSnapshot(t)

	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dict.Len() != snap.Dict.Len() {
		t.Fatalf("dictionary size changed through round-trip: %d -> %d",
			snap.Dict.Len(), loaded.Dict.Len())
	}

	direct := NewMatchServer(snap, ServeConfig{CacheSize: -1})
	fromDisk := NewMatchServer(loaded, ServeConfig{CacheSize: -1})
	queries := []string{
		"indy 4 near san fran",
		"dark knight imax tickets",
		"watch madagascar 2 online",
		"twilght reviews",
		"quantum of solace",
		"best pizza in town",
	}
	for _, e := range movies(t).Catalog.All()[:20] {
		queries = append(queries, e.Canonical+" showtimes")
	}
	for _, q := range queries {
		want := direct.Match(q)
		got := fromDisk.Match(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Match(%q) diverged through snapshot round-trip:\n got %+v\nwant %+v", q, got, want)
		}
	}
}

// TestServeFromSnapshotWithoutMiner proves the production startup path:
// an HTTP server answering /match built from snapshot bytes alone — no
// Simulation, no miner.
func TestServeFromSnapshotWithoutMiner(t *testing.T) {
	var buf bytes.Buffer
	if _, err := movieSnapshot(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// From here on, only the snapshot bytes are used.
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMatchServer(snap, ServeConfig{}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/match?q=indy+4+near+san+fran")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MatchResult
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Matches) == 0 ||
		mr.Matches[0].Canonical != "Indiana Jones and the Kingdom of the Crystal Skull" {
		t.Fatalf("snapshot-only server failed the paper's motivating query: %+v", mr)
	}

	// Batch acceptance: >= 100 queries in one POST.
	qs := make([]string, 128)
	for i := range qs {
		qs[i] = fmt.Sprintf("indiana jones 4 screening %d", i)
	}
	body, _ := json.Marshal(struct {
		Queries []string `json:"queries"`
	}{qs})
	bresp, err := http.Post(ts.URL+"/match/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var br struct {
		Count   int           `json:"count"`
		Results []MatchResult `json:"results"`
	}
	if err := json.NewDecoder(bresp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 128 {
		t.Fatalf("batch count %d", br.Count)
	}
	for i, r := range br.Results {
		if len(r.Matches) == 0 {
			t.Fatalf("batch result %d unmatched: %+v", i, r)
		}
	}

	// The unified endpoint answers from the same snapshot-only server,
	// span-level fuzzy matching included.
	vreq := `{"query": "kingdom of the kristol skull showtimes", "explain": true}`
	vresp, err := http.Post(ts.URL+"/v1/match", "application/json", strings.NewReader(vreq))
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var vr struct {
		Count   int `json:"count"`
		Results []struct {
			MatchResponse
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.Count != 1 || vr.Results[0].Error != "" {
		t.Fatalf("v1 response: %+v", vr)
	}
	v := vr.Results[0]
	if len(v.Matches) != 1 ||
		v.Matches[0].Canonical != "Indiana Jones and the Kingdom of the Crystal Skull" {
		t.Fatalf("v1 span-fuzzy failed on the snapshot server: %+v", v.Matches)
	}
	if v.Remainder != "showtimes" || len(v.Trace) == 0 {
		t.Fatalf("v1 remainder/trace: %+v", v)
	}
}
