package websyn

import (
	"strings"
	"sync"
	"testing"
)

// Cached simulations: full-scale substrates are built once per test binary.
var (
	movieOnce  sync.Once
	movieSim   *Simulation
	movieErr   error
	cameraOnce sync.Once
	cameraSim  *Simulation
	cameraErr  error
)

func movies(t testing.TB) *Simulation {
	t.Helper()
	movieOnce.Do(func() {
		movieSim, movieErr = NewSimulation(Options{Dataset: Movies})
	})
	if movieErr != nil {
		t.Fatal(movieErr)
	}
	return movieSim
}

func cameras(t testing.TB) *Simulation {
	t.Helper()
	cameraOnce.Do(func() {
		cameraSim, cameraErr = NewSimulation(Options{Dataset: Cameras})
	})
	if cameraErr != nil {
		t.Fatal(cameraErr)
	}
	return cameraSim
}

func TestDatasetString(t *testing.T) {
	if Movies.String() != "Movies" || Cameras.String() != "Cameras" {
		t.Fatal("Dataset.String mismatch")
	}
}

func TestNewSimulationRejectsUnknownDataset(t *testing.T) {
	if _, err := NewSimulation(Options{Dataset: Dataset(9)}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSimulationComponentsWired(t *testing.T) {
	sim := movies(t)
	if sim.Catalog == nil || sim.Model == nil || sim.Corpus == nil ||
		sim.Index == nil || sim.Search == nil || sim.Log == nil {
		t.Fatal("simulation has nil components")
	}
	if sim.Catalog.Len() != 100 {
		t.Fatalf("movie catalog size %d", sim.Catalog.Len())
	}
	if sim.Log.TotalImpressions() != 100000 {
		t.Fatalf("default movie impressions %d", sim.Log.TotalImpressions())
	}
	if sim.Search.K() != 10 {
		t.Fatalf("default surrogate k %d", sim.Search.K())
	}
}

func TestSimulationDeterministicBySeed(t *testing.T) {
	a, err := NewSimulation(Options{Dataset: Movies, Seed: 5, Impressions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSimulation(Options{Dataset: Movies, Seed: 5, Impressions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Log.TotalClicks() != b.Log.TotalClicks() {
		t.Fatal("same seed produced different logs")
	}
	c, err := NewSimulation(Options{Dataset: Movies, Seed: 6, Impressions: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Log.TotalClicks() == c.Log.TotalClicks() && a.Log.TotalImpressions() == c.Log.TotalImpressions() {
		// Impressions are fixed; click totals colliding across seeds is
		// astronomically unlikely.
		t.Fatal("different seeds produced identical click totals")
	}
}

func TestMineRecoverNicknames(t *testing.T) {
	sim := movies(t)
	miner, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := miner.Mine("Indiana Jones and the Kingdom of the Crystal Skull")
	if !r.Hit() {
		t.Fatal("no synonyms mined for Indiana Jones 4")
	}
	joined := strings.Join(r.Synonyms, "|")
	if !strings.Contains(joined, "indiana jones 4") && !strings.Contains(joined, "indy 4") {
		t.Fatalf("numeric sequel forms missing from %v", r.Synonyms)
	}
}

func TestMineRebelXT(t *testing.T) {
	sim := cameras(t)
	miner, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := miner.Mine("Canon EOS 350D")
	joined := strings.Join(r.Synonyms, "|")
	// The paper's marquee example: a market nickname with zero textual
	// overlap must be recovered from the logs.
	if !strings.Contains(joined, "rebel xt") {
		t.Fatalf("digital rebel xt not recovered: %v", r.Synonyms)
	}
}

func TestRefinementsRejectedByICR(t *testing.T) {
	sim := movies(t)
	miner, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := miner.Mine("Indiana Jones and the Kingdom of the Crystal Skull")
	ev, ok := r.EvidenceFor("indiana jones 4 trailer")
	if !ok {
		t.Skip("trailer refinement not in candidate set this seed")
	}
	if ev.ICR >= 0.3 {
		t.Fatalf("trailer refinement ICR %.2f too high — deep-page geometry broken", ev.ICR)
	}
}

func TestTable1ShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table I in -short mode")
	}
	x := NewExperiments(movies(t), cameras(t))
	rows, err := x.Table1(DefaultTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	get := func(dataset, system string) Table1Row {
		for _, r := range rows {
			if r.Dataset == dataset && r.System == system {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", dataset, system)
		return Table1Row{}
	}

	musUs, musWiki, musWalk := get("Movies", "Us"), get("Movies", "Wiki"), get("Movies", "Walk(0.8)")
	camUs, camWiki, camWalk := get("Cameras", "Us"), get("Cameras", "Wiki"), get("Cameras", "Walk(0.8)")

	// Invariant 1: every system hits nearly all movies...
	for _, r := range []Table1Row{musUs, musWiki, musWalk} {
		if r.HitRatio < 0.9 {
			t.Errorf("movies %s hit ratio %.2f < 0.9", r.System, r.HitRatio)
		}
	}
	// ...but only Us keeps a high hit ratio on the camera tail.
	if camUs.HitRatio < 0.8 || camUs.HitRatio > 0.95 {
		t.Errorf("cameras Us hit ratio %.2f outside [0.8, 0.95] (paper: 0.87)", camUs.HitRatio)
	}
	if camWiki.HitRatio > 0.2 {
		t.Errorf("cameras Wiki hit ratio %.2f — should collapse (paper: 0.115)", camWiki.HitRatio)
	}
	if camWalk.HitRatio > 0.75 || camWalk.HitRatio < 0.4 {
		t.Errorf("cameras Walk hit ratio %.2f outside [0.4, 0.75] (paper: 0.54)", camWalk.HitRatio)
	}

	// Invariant 2: Us creates the most synonyms on both data sets.
	if musUs.Synonyms <= musWiki.Synonyms || musUs.Synonyms <= musWalk.Synonyms {
		t.Errorf("movies Us (%d) must out-expand Wiki (%d) and Walk (%d)",
			musUs.Synonyms, musWiki.Synonyms, musWalk.Synonyms)
	}
	if camUs.Synonyms <= camWiki.Synonyms || camUs.Synonyms <= camWalk.Synonyms {
		t.Errorf("cameras Us (%d) must out-expand Wiki (%d) and Walk (%d)",
			camUs.Synonyms, camWiki.Synonyms, camWalk.Synonyms)
	}
	// Invariant 3: the camera gap is dramatic (paper: 586% vs 165%/179%).
	if camUs.Expansion < 2*camWiki.Expansion {
		t.Errorf("cameras Us expansion %.0f%% not ≫ Wiki %.0f%%",
			camUs.Expansion*100, camWiki.Expansion*100)
	}
}

func TestFigure2Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 in -short mode")
	}
	x := NewExperiments(movies(t), nil)
	points, err := x.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Figure2Betas()) {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		// β decreases along the slice: coverage must not decrease.
		if points[i].Coverage < points[i-1].Coverage-1e-9 {
			t.Errorf("coverage decreased from β=%d to β=%d", points[i-1].Beta, points[i].Beta)
		}
		if points[i].Syns < points[i-1].Syns {
			t.Errorf("synonym count decreased from β=%d to β=%d", points[i-1].Beta, points[i].Beta)
		}
	}
	// Precision at the strictest threshold must beat the loosest.
	if points[0].Precision <= points[len(points)-1].Precision {
		t.Errorf("precision at β=10 (%.2f) not above β=2 (%.2f)",
			points[0].Precision, points[len(points)-1].Precision)
	}
	// Paper band: >= 60% coverage increase even at β=10.
	if points[0].Coverage < 0.6 {
		t.Errorf("coverage at β=10 = %.2f, want >= 0.6", points[0].Coverage)
	}
}

func TestFigure3GammaTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 3 in -short mode")
	}
	x := NewExperiments(movies(t), nil)
	points, err := x.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// Within each β series: γ decreases along the slice, so coverage must
	// not decrease; and the strictest γ must beat the loosest on weighted
	// precision.
	series := map[int][]Fig3Point{}
	for _, p := range points {
		series[p.Beta] = append(series[p.Beta], p)
	}
	for beta, ps := range series {
		for i := 1; i < len(ps); i++ {
			if ps[i].Coverage < ps[i-1].Coverage-1e-9 {
				t.Errorf("β=%d: coverage decreased at γ=%g", beta, ps[i].Gamma)
			}
		}
		first, last := ps[0], ps[len(ps)-1]
		if first.Weighted <= last.Weighted {
			t.Errorf("β=%d: weighted precision at γ=%.2f (%.2f) not above γ=%.2f (%.2f)",
				beta, first.Gamma, first.Weighted, last.Gamma, last.Weighted)
		}
	}
	// Across series at equal γ: larger β is more precise.
	if series[6][0].Weighted <= series[2][0].Weighted {
		t.Errorf("β=6 series (%.2f) not above β=2 series (%.2f) at γ=0.9",
			series[6][0].Weighted, series[2][0].Weighted)
	}
}

func TestSoftwareGenerality(t *testing.T) {
	// The D3 extension domain runs through the untouched pipeline and
	// recovers the paper's own codename example.
	sim, err := NewSimulation(Options{Dataset: SoftwareProducts})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Catalog.Len() != 80 {
		t.Fatalf("software catalog size %d", sim.Catalog.Len())
	}
	miner, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := miner.Mine("Apple Mac OS X 10.5")
	joined := strings.Join(r.Synonyms, "|")
	if !strings.Contains(joined, "leopard") {
		t.Fatalf("codename 'leopard' not mined: %v", r.Synonyms)
	}
	r = miner.Mine("Grand Theft Auto IV")
	joined = strings.Join(r.Synonyms, "|")
	if !strings.Contains(joined, "gta 4") && !strings.Contains(joined, "gta iv") {
		t.Fatalf("gta short forms not mined: %v", r.Synonyms)
	}
}

func TestBuildDictionaryEndToEnd(t *testing.T) {
	sim := movies(t)
	results, err := sim.MineAll(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	dict := sim.BuildDictionary(results)
	if dict.Len() <= sim.Catalog.Len() {
		t.Fatalf("dictionary has only %d entries", dict.Len())
	}
	// The paper's motivating query resolves through a mined alias.
	seg := dict.Segment("indy 4 near san fran")
	if len(seg.Matches) != 1 {
		t.Fatalf("segmentation = %+v", seg)
	}
	ent := sim.Catalog.ByID(seg.Matches[0].EntityID)
	if ent.Canonical != "Indiana Jones and the Kingdom of the Crystal Skull" {
		t.Fatalf("matched %q", ent.Canonical)
	}
	if seg.Remainder != "near san fran" {
		t.Fatalf("remainder %q", seg.Remainder)
	}
}

func TestSearchDataKRebuild(t *testing.T) {
	sim := movies(t)
	sd, err := sim.SearchDataK(5)
	if err != nil {
		t.Fatal(err)
	}
	if sd.K() != 5 {
		t.Fatalf("K = %d", sd.K())
	}
	u := sim.Catalog.ByID(0).Norm()
	if got := len(sd.Surrogates(u)); got != 5 {
		t.Fatalf("|GA| = %d with k=5", got)
	}
	m, err := sim.NewMinerWith(sd, DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Mine(u); len(r.Surrogates) != 5 {
		t.Fatalf("miner saw %d surrogates", len(r.Surrogates))
	}
}

func TestExperimentsRequireSimulations(t *testing.T) {
	x := NewExperiments(nil, nil)
	if _, err := x.Figure2(); err == nil {
		t.Fatal("Figure2 without movies accepted")
	}
	if _, err := x.Figure3(); err == nil {
		t.Fatal("Figure3 without movies accepted")
	}
	rows, err := x.Table1(DefaultTable1Config())
	if err != nil || len(rows) != 0 {
		t.Fatal("Table1 with no simulations should be empty")
	}
}
