package websyn

// The allocation-budget and differential suites pinning the zero-alloc
// match hot path (internal/match's scratch arenas, served through
// MatchServer.DoView) and the mmap snapshot boot. These are the
// acceptance gates of the arena work: byte-identical responses to the
// reference engine on every mined corpus, a hard allocs-per-op ceiling
// per query class, and a bounded cold-boot time for mapped snapshots.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"websyn/internal/match"
)

// allSnapshots mines all three corpora into serving snapshots (cached
// simulations keep this cheap after the first test needs them).
func allSnapshots(t testing.TB) map[string]*Snapshot {
	t.Helper()
	out := make(map[string]*Snapshot, 3)
	for name, sim := range map[string]*Simulation{
		"movies":   movies(t),
		"cameras":  cameras(t),
		"software": software(t),
	} {
		results, err := sim.MineAll(DefaultMinerConfig())
		if err != nil {
			t.Fatal(err)
		}
		out[name] = sim.BuildSnapshot(results, 0)
	}
	return out
}

// diffQuerySet builds a query mix exercising every engine path against
// one snapshot: exact canonicals, suffixed queries, typos, junk.
func diffQuerySet(snap *Snapshot) []string {
	qs := []string{
		"", "   ", "the", "best pizza in town",
		"twilght reviews", "quantem of solace tickets",
		"kingdom of the kristol skull showtimes",
	}
	for i, c := range snap.Canonicals {
		switch i % 4 {
		case 0:
			qs = append(qs, c)
		case 1:
			qs = append(qs, c+" showtimes")
		case 2:
			qs = append(qs, "watch "+c+" online")
		case 3:
			if len(c) > 6 {
				// Drop a rune mid-string: a typo the corrector or the
				// span-fuzzy path must absorb.
				qs = append(qs, c[:len(c)/2]+c[len(c)/2+1:])
			}
		}
		if i >= 60 {
			break
		}
	}
	return qs
}

// TestArenaDifferentialAllSnapshots is the old-vs-arena differential
// gate over every mined corpus: for each snapshot, each mode and each
// query, the arena path (DoView over pooled scratch) must produce a
// response JSON-byte-identical to the reference engine path
// (Engine.Match), Timing aside. This is what licenses the zero-alloc
// rewrite to exist at all.
func TestArenaDifferentialAllSnapshots(t *testing.T) {
	for name, snap := range allSnapshots(t) {
		t.Run(name, func(t *testing.T) {
			s := NewMatchServer(snap, ServeConfig{CacheSize: -1})
			eng := s.Engine()
			queries := diffQuerySet(snap)
			modes := []match.Mode{"", match.ModeSegment, match.ModeSpan, match.ModeFuzzy}
			checked := 0
			for _, mode := range modes {
				for _, explain := range []bool{false, true} {
					for _, q := range queries {
						req := match.Request{Query: q, Mode: mode, TopK: 3, Explain: explain}
						want, errWant := eng.Match(req)
						var got match.Response
						errGot := s.DoView(req, func(res *match.Response, _ bool) {
							got = match.CloneResponse(res)
						})
						if (errWant == nil) != (errGot == nil) {
							t.Fatalf("%s %q explain=%v: error divergence: reference %v, arena %v",
								mode, q, explain, errWant, errGot)
						}
						if errWant != nil {
							continue
						}
						want.Timing, got.Timing = match.Timing{}, match.Timing{}
						wj, _ := json.Marshal(want)
						gj, _ := json.Marshal(got)
						if string(wj) != string(gj) {
							t.Fatalf("%s %q explain=%v: arena diverged from reference:\n got %s\nwant %s",
								mode, q, explain, gj, wj)
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%s %q explain=%v: deep divergence beyond JSON", mode, q, explain)
						}
						checked++
					}
				}
			}
			t.Logf("%s: %d (mode, explain, query) combinations byte-identical", name, checked)
		})
	}
}

// TestEngineAllocBudget is the allocation gate on the steady-state match
// path: with caching disabled, an exact trie query must perform zero
// heap allocations end to end, and the typo and span-fuzzy classes must
// stay within small fixed budgets (the reference path spends hundreds).
// Budgets are ceilings, not targets — tighten them when the path
// improves, never loosen without understanding what regressed.
func TestEngineAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation disables the inlining the zero-alloc path relies on")
	}
	snap := movieSnapshot(t)
	s := NewMatchServer(snap, ServeConfig{CacheSize: -1})
	classes := []struct {
		name    string
		budget  float64
		queries []string
	}{
		// Exact trie hits: the dominant production class. Zero.
		{"exact", 0, []string{
			"the dark knight tickets",
			"quantum of solace showtimes",
			"madagascar 2 dvd",
		}},
		// Per-token typo correction (edit distance 1 against the vocab).
		{"typo", 2, []string{
			"twilght reviews",
			"quantem of solace",
			"madagscar 2 trailer",
		}},
		// Span-level fuzzy resolution through the trigram index. The
		// reference path spends ~530 allocs/op here; the arena must stay
		// at or below 10% of that (ISSUE 6 acceptance), and in practice
		// at a small constant.
		{"span-fuzzy", 16, []string{
			"kingdom of the kristol skull showtimes",
			"quntum of solacee",
			"bangkok dangeruos cage movie",
		}},
	}
	for _, c := range classes {
		t.Run(c.name, func(t *testing.T) {
			reqs := make([]match.Request, len(c.queries))
			for i, q := range c.queries {
				reqs[i] = match.Request{Query: q}
			}
			// Warm the scratch pool and every lazily built structure.
			for _, req := range reqs {
				if err := s.DoView(req, func(*match.Response, bool) {}); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			got := testing.AllocsPerRun(300, func() {
				req := reqs[i%len(reqs)]
				i++
				if err := s.DoView(req, func(*match.Response, bool) {}); err != nil {
					t.Fatal(err)
				}
			})
			if got > c.budget {
				t.Errorf("%s: %.1f allocs/op, budget %.0f", c.name, got, c.budget)
			}
			t.Logf("%s: %.1f allocs/op (budget %.0f)", c.name, got, c.budget)
		})
	}
}

// TestMmapColdBoot bounds the decode cost OpenSnapshotMapped was built
// to eliminate: opening a current-version snapshot of each mined corpus
// must finish well under the reload SLO — the fuzzy slabs (the bulk of
// the file) are aliased, not decoded. 50ms is the ISSUE 6 acceptance
// ceiling; the observed cost is dominated by the dictionary section.
func TestMmapColdBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	dir := t.TempDir()
	for name, snap := range allSnapshots(t) {
		path := filepath.Join(dir, name+".snap")
		if err := snap.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Best of three: the gate is about decode work, not a cold disk
		// or a scheduler hiccup.
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			got, err := OpenSnapshotMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
			if got.Fuzzy == nil || !got.Fuzzy.Mapped() {
				t.Fatalf("%s: fuzzy index not mapped", name)
			}
		}
		t.Logf("%s: %s mapped open in %v (%d bytes)", name, filepath.Base(path), best, st.Size())
		if best > 50*time.Millisecond {
			t.Errorf("%s: mapped open took %v, budget 50ms", name, best)
		}
	}
}

// TestMappedSnapshotServesIdentically closes the loop on the mmap path
// end to end at the facade level: a server booted from a mapped
// snapshot must answer exactly like one booted from the streamed read
// of the same file, across every corpus.
func TestMappedSnapshotServesIdentically(t *testing.T) {
	dir := t.TempDir()
	for name, snap := range allSnapshots(t) {
		path := filepath.Join(dir, name+".snap")
		if err := snap.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		mapped, err := OpenSnapshotMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := ReadSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		a := NewMatchServer(mapped, ServeConfig{CacheSize: -1})
		b := NewMatchServer(streamed, ServeConfig{CacheSize: -1})
		for i, q := range diffQuerySet(snap) {
			if i%3 != 0 {
				continue // a sample is plenty at facade level
			}
			for _, mode := range []match.Mode{match.ModeSegment, match.ModeSpan, match.ModeFuzzy} {
				req := match.Request{Query: q, Mode: mode, TopK: 3}
				ra, errA := a.Do(req)
				rb, errB := b.Do(req)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("%s %s %q: error divergence %v vs %v", name, mode, q, errA, errB)
				}
				ra.Timing, rb.Timing = match.Timing{}, match.Timing{}
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("%s %s %q: mapped and streamed servers disagree:\n got %+v\nwant %+v",
						name, mode, q, ra, rb)
				}
			}
		}
	}
}
