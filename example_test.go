package websyn_test

import (
	"fmt"
	"log"

	"websyn"
)

// Example demonstrates the three-call happy path: build the simulation,
// mine a canonical string, inspect the synonyms.
func Example() {
	sim, err := websyn.NewSimulation(websyn.Options{Dataset: websyn.Movies})
	if err != nil {
		log.Fatal(err)
	}
	miner, err := sim.NewMiner(websyn.DefaultMinerConfig())
	if err != nil {
		log.Fatal(err)
	}
	r := miner.Mine("Madagascar: Escape 2 Africa")
	found := false
	for _, s := range r.Synonyms {
		if s == "madagascar 2" {
			found = true
		}
	}
	fmt.Println("mined madagascar 2:", found)
	// Output:
	// mined madagascar 2: true
}

// ExampleSimulation_BuildDictionary shows the downstream application:
// fuzzy-matching a free-text query to structured data via the mined
// dictionary.
func ExampleSimulation_BuildDictionary() {
	sim, err := websyn.NewSimulation(websyn.Options{Dataset: websyn.Movies})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.MineAll(websyn.DefaultMinerConfig())
	if err != nil {
		log.Fatal(err)
	}
	dict := sim.BuildDictionary(results)

	seg := dict.Segment("indy 4 near san fran")
	m := seg.Matches[0]
	fmt.Println("matched:", sim.Catalog.ByID(m.EntityID).Canonical)
	fmt.Println("span:", m.Text)
	fmt.Println("remainder:", seg.Remainder)
	// Output:
	// matched: Indiana Jones and the Kingdom of the Crystal Skull
	// span: indy 4
	// remainder: near san fran
}

// ExampleMiner_Mine shows the per-candidate evidence record (IPC of Eq. 3,
// ICR of Eq. 4) that candidate selection thresholds.
func ExampleMiner_Mine() {
	sim, err := websyn.NewSimulation(websyn.Options{Dataset: websyn.Movies})
	if err != nil {
		log.Fatal(err)
	}
	miner, err := sim.NewMiner(websyn.MinerConfig{IPC: 4, ICR: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	r := miner.Mine("The Dark Knight")
	ev, ok := r.EvidenceFor("dark knight")
	fmt.Println("candidate found:", ok)
	fmt.Println("IPC at least 8:", ev.IPC >= 8)
	fmt.Println("ICR above 0.5:", ev.ICR > 0.5)
	fmt.Println("accepted:", ev.Accepted)
	// Output:
	// candidate found: true
	// IPC at least 8: true
	// ICR above 0.5: true
	// accepted: true
}
