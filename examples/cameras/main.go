// Cameras: the D2 experiment with a popularity-tail analysis — the data set
// where the paper's approach most clearly beats both baselines, because
// mining works from the entity's *pages* while Wikipedia and the random
// walk need the entity itself to be popular.
package main

import (
	"fmt"
	"log"

	"websyn"
	"websyn/internal/eval"
	"websyn/internal/stats"
)

func main() {
	sim, err := websyn.NewSimulation(websyn.Options{Dataset: websyn.Cameras})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("substrate: %d cameras, %d pages, %d impressions\n\n",
		sim.Catalog.Len(), sim.Corpus.Len(), sim.Log.TotalImpressions())

	results, err := sim.MineAll(websyn.MinerConfig{IPC: 1, ICR: 0})
	if err != nil {
		log.Fatal(err)
	}
	o, err := eval.OutputFromResults(sim.Model, results, "us", 4, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	he := eval.HitsAndExpansion(o)
	fmt.Printf("Us @ (IPC=4, ICR=0.1): hits %d/%d (%.1f%%), %d synonyms, expansion %.0f%%\n\n",
		he.Hits, he.Orig, he.HitRatio*100, he.Synonyms, he.Expansion*100)

	// Hit ratio by popularity decile: the tail is where hit ratio erodes —
	// dead catalog entries attract no queries at all.
	fmt.Println("hit ratio by popularity decile (0 = most searched):")
	const deciles = 10
	hits := make([]int, deciles)
	counts := make([]int, deciles)
	perEntitySyns := make([]float64, 0, sim.Catalog.Len())
	for _, e := range sim.Catalog.All() {
		d := e.PopRank * deciles / sim.Catalog.Len()
		counts[d]++
		n := len(o.PerEntity[e.ID])
		perEntitySyns = append(perEntitySyns, float64(n))
		if n > 0 {
			hits[d]++
		}
	}
	for d := 0; d < deciles; d++ {
		ratio := float64(hits[d]) / float64(counts[d])
		fmt.Printf("  decile %d: %5.1f%%  (%d/%d)\n", d, ratio*100, hits[d], counts[d])
	}

	var summary stats.Summary
	for _, n := range perEntitySyns {
		summary.Add(n)
	}
	fmt.Printf("\nper-entity synonym count: %s, median %.1f, gini %.2f\n",
		summary.String(), stats.Median(perEntitySyns), stats.Gini(perEntitySyns))

	// The paper's marquee example: a nickname with zero textual overlap.
	rebel := sim.Catalog.ByNorm("canon eos 350d")
	if rebel != nil {
		fmt.Printf("\nCanon EOS 350D mined synonyms: %v\n", o.PerEntity[rebel.ID])
	}
}
