// Matchserver: compile the mined synonyms into the fuzzy-match dictionary
// and run the paper's motivating queries through it — "Indy 4 near San
// Fran" resolving to the full movie title with "near san fran" left over
// for downstream interpretation. (cmd/matchd serves the same dictionary
// over HTTP.)
package main

import (
	"fmt"
	"log"

	"websyn"
)

func main() {
	sim, err := websyn.NewSimulation(websyn.Options{
		Dataset:     websyn.Movies,
		Impressions: 60000,
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.MineAll(websyn.DefaultMinerConfig())
	if err != nil {
		log.Fatal(err)
	}
	dict := sim.BuildDictionary(results)
	fmt.Printf("dictionary: %d (string, entity) pairs\n\n", dict.Len())

	queries := []string{
		"Indy 4 near San Fran",
		"indiana jones 4 showtimes",
		"dark knight tickets tonight",
		"watch madagascar 2 online",
		"twilght reviews",        // typo: corrected to twilight
		"quantum of solace imdb", // canonical match
		"best pizza in town",     // no entity at all
	}
	for _, q := range queries {
		seg := dict.Segment(q)
		fmt.Printf("query: %q\n", q)
		if len(seg.Matches) == 0 {
			fmt.Println("  -> no entity match")
		}
		for _, m := range seg.Matches {
			ent := sim.Catalog.ByID(m.EntityID)
			note := ""
			if m.Corrected {
				note = " (typo-corrected)"
			}
			fmt.Printf("  -> %q matches %q [score %.2f, %s]%s\n",
				m.Text, ent.Canonical, m.Score, m.Source, note)
		}
		if seg.Remainder != "" {
			fmt.Printf("  remainder: %q\n", seg.Remainder)
		}
		fmt.Println()
	}

	// Whole-string fuzzy lookup: queries that are globally close to a
	// dictionary string but do not tokenize onto it.
	fuzzy := dict.NewFuzzyIndex(0.55)
	fmt.Printf("fuzzy index over %d dictionary strings:\n", fuzzy.Len())
	for _, q := range []string{"madagascar2", "darkknight", "quantom of solace"} {
		hits := fuzzy.Lookup(q, 1)
		if len(hits) == 0 {
			fmt.Printf("  %q -> no fuzzy hit\n", q)
			continue
		}
		ent := sim.Catalog.ByID(hits[0].Entries[0].EntityID)
		fmt.Printf("  %q -> %q (sim %.2f) -> %q\n",
			q, hits[0].Text, hits[0].Similarity, ent.Canonical)
	}
}
