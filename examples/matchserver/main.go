// Matchserver: compile the mined synonyms into the unified match engine
// and run the paper's motivating queries through it — "Indy 4 near San
// Fran" resolving to the full movie title with "near san fran" left over
// for downstream interpretation, and "kingdom of the kristol skull"
// resolving through span-level fuzzy matching even though no trie path
// reaches it. (cmd/matchd serves the same engine over HTTP; see
// docs/API.md for the POST /v1/match contract.)
package main

import (
	"fmt"
	"log"

	"websyn"
)

func main() {
	sim, err := websyn.NewSimulation(websyn.Options{
		Dataset:     websyn.Movies,
		Impressions: 60000,
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.MineAll(websyn.DefaultMinerConfig())
	if err != nil {
		log.Fatal(err)
	}

	// One engine owns the trie, typo correction and the trigram index;
	// every query goes through the same Request/Response pair as the
	// HTTP tier.
	engine := sim.BuildEngine(results, 0)

	queries := []string{
		"Indy 4 near San Fran",
		"indiana jones 4 showtimes",
		"dark knight tickets tonight",
		"watch madagascar 2 online",
		"twilght reviews",              // token typo: corrected in the trie
		"quantum of solace imdb",       // canonical match
		"quntum of solacee",            // span-level fuzzy: typos beyond edit distance 1
		"kingdom of the kristol skull", // span-level fuzzy: mid-span garble
		"madagascar2 dvd",              // span-level fuzzy: concatenation
		"best pizza in town",           // no entity at all
	}
	for _, q := range queries {
		resp, err := engine.Match(websyn.MatchRequest{Query: q})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %q\n", q)
		if len(resp.Matches) == 0 {
			fmt.Println("  -> no entity match")
		}
		for _, m := range resp.Matches {
			extra := ""
			if m.Similarity > 0 {
				extra = fmt.Sprintf(", sim %.2f", m.Similarity)
			}
			fmt.Printf("  -> %q matches %q [score %.2f, %s via %s%s]\n",
				m.Span, m.Canonical, m.Score, m.Source, m.Method, extra)
		}
		if resp.Remainder != "" {
			fmt.Printf("  remainder: %q\n", resp.Remainder)
		}
		fmt.Println()
	}

	// Whole-string fuzzy mode: the same engine, one request field away.
	fmt.Println("fuzzy mode (whole-string trigram lookup):")
	for _, q := range []string{"madagascar2", "darkknight", "quantom of solace"} {
		resp, err := engine.Match(websyn.MatchRequest{Query: q, Mode: websyn.ModeFuzzy, TopK: 1})
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.Matches) == 0 {
			fmt.Printf("  %q -> no fuzzy hit\n", q)
			continue
		}
		m := resp.Matches[0]
		fmt.Printf("  %q -> %q (sim %.2f) -> %q\n", q, m.Span, m.Similarity, m.Canonical)
	}

	// Explain traces show every decision the engine made.
	resp, err := engine.Match(websyn.MatchRequest{Query: "indy 4 kingdom of the kristol skull", Explain: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexplain trace for \"indy 4 kingdom of the kristol skull\":")
	for _, step := range resp.Trace {
		fmt.Printf("  [%s] %s\n", step.Stage, step.Detail)
	}
}
