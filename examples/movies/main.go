// Movies: the full D1 experiment — mine synonyms for all 100 movie titles,
// score them against the oracle, and report the paper's metrics (precision,
// weighted precision, coverage increase, hits, expansion).
package main

import (
	"fmt"
	"log"

	"websyn"
	"websyn/internal/eval"
)

func main() {
	sim, err := websyn.NewSimulation(websyn.Options{Dataset: websyn.Movies})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("substrate: %d movies, %d pages, %d impressions, %d clicks\n\n",
		sim.Catalog.Len(), sim.Corpus.Len(),
		sim.Log.TotalImpressions(), sim.Log.TotalClicks())

	// Mine once with the loosest thresholds; every operating point below
	// re-filters the same evidence.
	results, err := sim.MineAll(websyn.MinerConfig{IPC: 1, ICR: 0})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("operating-point report (movies):")
	fmt.Println("  β    γ     syns  hits  precision  weighted  coverage")
	for _, pt := range []struct {
		beta  int
		gamma float64
	}{{2, 0.01}, {4, 0.1}, {6, 0.4}, {8, 0.7}} {
		o, err := eval.OutputFromResults(sim.Model, results, "us", pt.beta, pt.gamma)
		if err != nil {
			log.Fatal(err)
		}
		p := eval.Precision(sim.Model, sim.Log, o)
		cov := eval.CoverageIncrease(sim.Model, sim.Log, o)
		he := eval.HitsAndExpansion(o)
		fmt.Printf("  %d  %4.2f  %5d  %4d  %8.1f%%  %7.1f%%  %7.1f%%\n",
			pt.beta, pt.gamma, he.Synonyms, he.Hits,
			p.Precision*100, p.WeightedPrecision*100, cov*100)
	}

	// Recall lens and bootstrap confidence interval at the paper's
	// operating point.
	reports, err := eval.BuildEntityReports(sim.Model, sim.Log, results, 4, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	rr := eval.Recall(reports)
	o, err := eval.OutputFromResults(sim.Model, results, "us", 4, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	plain, weighted, err := eval.BootstrapPrecision(sim.Model, sim.Log, o, 1000, 0.95, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat (β=4, γ=0.1): recall %.1f%% (%d/%d oracle synonyms)\n",
		rr.Recall*100, rr.Recovered, rr.TruthSynonyms)
	fmt.Printf("precision CI  (entity bootstrap): %s\n", plain)
	fmt.Printf("weighted  CI  (entity bootstrap): %s\n", weighted)

	// Show the mined dictionary for a few famous inputs.
	fmt.Println("\nsample minings (β=4, γ=0.1):")
	for _, title := range []string{
		"Indiana Jones and the Kingdom of the Crystal Skull",
		"Madagascar: Escape 2 Africa",
		"The Dark Knight",
		"Quantum of Solace",
	} {
		for _, r := range results {
			if r.Input != title {
				continue
			}
			fmt.Printf("  %-52s -> %v\n", title, r.FilterSynonyms(4, 0.1))
		}
	}
}
