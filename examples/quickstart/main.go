// Quickstart: build the movie simulation, mine synonyms for one movie, and
// print the evidence — the paper's pipeline in a dozen lines.
package main

import (
	"fmt"
	"log"

	"websyn"
)

func main() {
	// Build the full substrate for D1 (catalog, ground truth, Web corpus,
	// search engine, query/click logs). Smaller Impressions keep the
	// quickstart snappy; drop the option for experiment-scale logs.
	sim, err := websyn.NewSimulation(websyn.Options{
		Dataset:     websyn.Movies,
		Impressions: 40000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's miner at its chosen operating point: IPC >= 4, ICR >= 0.1.
	miner, err := sim.NewMiner(websyn.DefaultMinerConfig())
	if err != nil {
		log.Fatal(err)
	}

	input := "Indiana Jones and the Kingdom of the Crystal Skull"
	result := miner.Mine(input)

	fmt.Printf("input:      %s\n", input)
	fmt.Printf("surrogates: %d pages (GA)\n", len(result.Surrogates))
	fmt.Printf("candidates: %d queries clicked a surrogate\n\n", len(result.Evidence))
	fmt.Println("accepted synonyms (IPC = intersecting page count, ICR = intersecting click ratio):")
	for _, ev := range result.Evidence {
		if !ev.Accepted {
			continue
		}
		fmt.Printf("  %-30s IPC=%2d  ICR=%.2f\n", ev.Candidate, ev.IPC, ev.ICR)
	}

	fmt.Println("\nstrongest rejected candidates (why the thresholds exist):")
	shown := 0
	for _, ev := range result.Evidence {
		if ev.Accepted || shown >= 5 {
			continue
		}
		fmt.Printf("  %-30s IPC=%2d  ICR=%.2f\n", ev.Candidate, ev.IPC, ev.ICR)
		shown++
	}
}
