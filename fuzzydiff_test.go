package websyn

import (
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"websyn/internal/textnorm"
)

// Differential acceptance test for the packed fuzzy index: on every
// corpus the packed posting-list implementation must return hits
// byte-identical (text, similarity, order, entries) to the reference
// map-based implementation it replaced — across flat and sharded
// variants and a realistic mix of misspelled queries.

// refFuzzyIndex is the pre-packed implementation, kept verbatim as the
// oracle: trigram -> []int posting maps, a per-query candidate map, and
// full NGramSimilarity verification of every candidate.
type refFuzzyIndex struct {
	dict    *MatchDictionary
	strings []string
	grams   map[string][]int
	minSim  float64
}

func newRefFuzzyIndex(d *MatchDictionary, minSim float64) *refFuzzyIndex {
	ref := &refFuzzyIndex{
		dict:    d,
		strings: d.Strings(),
		grams:   make(map[string][]int),
		minSim:  minSim,
	}
	for i, s := range ref.strings {
		seen := map[string]bool{}
		for _, g := range textnorm.CharNGrams(s, 3) {
			if !seen[g] {
				seen[g] = true
				ref.grams[g] = append(ref.grams[g], i)
			}
		}
	}
	return ref
}

func (ref *refFuzzyIndex) Lookup(query string, limit int) []FuzzyHit {
	norm := textnorm.Normalize(query)
	if norm == "" {
		return nil
	}
	grams := textnorm.CharNGrams(norm, 3)
	if len(grams) == 0 {
		if es := ref.dict.Lookup(norm); es != nil {
			return []FuzzyHit{{Text: norm, Similarity: 1, Entries: es}}
		}
		return nil
	}
	seen := make(map[string]bool, len(grams))
	distinct := 0
	counts := make(map[int]int)
	for _, g := range grams {
		if seen[g] {
			continue
		}
		seen[g] = true
		distinct++
		for _, idx := range ref.grams[g] {
			counts[idx]++
		}
	}
	minShared := int(ref.minSim * float64(distinct) / 2)
	var hits []FuzzyHit
	for idx, shared := range counts {
		if shared < minShared {
			continue
		}
		s := ref.strings[idx]
		sim := textnorm.NGramSimilarity(norm, s, 3)
		if sim < ref.minSim {
			continue
		}
		hits = append(hits, FuzzyHit{Text: s, Similarity: sim, Entries: ref.dict.Lookup(s)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Similarity != hits[j].Similarity {
			return hits[i].Similarity > hits[j].Similarity
		}
		return hits[i].Text < hits[j].Text
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// typoVariants generates the misspelled query mix for one dictionary
// string: spacing removed, a character dropped, a character doubled, two
// characters swapped, and a trailing intent word.
func typoVariants(s string) []string {
	norm := textnorm.Normalize(s)
	out := []string{norm, strings.ReplaceAll(norm, " ", "")}
	if n := len(norm); n > 4 {
		mid := n / 2
		out = append(out,
			norm[:mid]+norm[mid+1:],                                   // dropped character
			norm[:mid]+norm[mid:mid+1]+norm[mid:],                     // doubled character
			norm[:mid-1]+norm[mid:mid+1]+norm[mid-1:mid]+norm[mid+1:], // swapped pair
		)
	}
	out = append(out, norm+" dvd")
	return out
}

var softwareOnce sync.Once
var softwareSim *Simulation
var softwareSimErr error

func software(t testing.TB) *Simulation {
	t.Helper()
	softwareOnce.Do(func() {
		softwareSim, softwareSimErr = NewSimulation(Options{Dataset: SoftwareProducts})
	})
	if softwareSimErr != nil {
		t.Fatal(softwareSimErr)
	}
	return softwareSim
}

func TestPackedFuzzyMatchesReferenceOnAllCorpora(t *testing.T) {
	sims := map[string]func(testing.TB) *Simulation{
		"movies":   func(tb testing.TB) *Simulation { return movies(tb) },
		"cameras":  func(tb testing.TB) *Simulation { return cameras(tb) },
		"software": func(tb testing.TB) *Simulation { return software(tb) },
	}
	for name, getSim := range sims {
		t.Run(name, func(t *testing.T) {
			sim := getSim(t)
			results, err := sim.MineAll(DefaultMinerConfig())
			if err != nil {
				t.Fatal(err)
			}
			dict := sim.BuildDictionary(results)
			ref := newRefFuzzyIndex(dict, DefaultFuzzyMinSim)
			flat := dict.NewFuzzyIndex(DefaultFuzzyMinSim)
			sharded := dict.NewShardedFuzzyIndex(DefaultFuzzyMinSim, 4)

			queries := []string{"", "zz", "a", "completely unrelated text"}
			for _, e := range sim.Catalog.All() {
				queries = append(queries, typoVariants(e.Canonical)...)
			}
			mismatches := 0
			for _, q := range queries {
				for _, limit := range []int{0, 5} {
					want := ref.Lookup(q, limit)
					if got := flat.Lookup(q, limit); !reflect.DeepEqual(got, want) {
						t.Errorf("flat Lookup(%q, %d) diverged from reference:\n got %+v\nwant %+v", q, limit, got, want)
						mismatches++
					}
					if got := sharded.Lookup(q, limit); !reflect.DeepEqual(got, want) {
						t.Errorf("sharded Lookup(%q, %d) diverged from reference:\n got %+v\nwant %+v", q, limit, got, want)
						mismatches++
					}
					if mismatches > 5 {
						t.Fatal("too many divergences, stopping")
					}
				}
			}
		})
	}
}
