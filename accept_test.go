package websyn

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"websyn/internal/eval"
)

// End-to-end acceptance for the /v2/match surface: the full offline
// pipeline (simulation, miner, vocabulary mining, snapshot build) feeding
// a live server, driven with the paper's motivating query shapes. These
// are the PR's contract queries: an entity mention interleaved with
// attribute constraints must come back as {entity, attributes, residual}.

type v2Result struct {
	Matches []struct {
		EntityID  int    `json:"entity_id"`
		Canonical string `json:"canonical"`
		Span      string `json:"span"`
	} `json:"matches"`
	Remainder  string `json:"remainder"`
	Residual   string `json:"residual"`
	Attributes []struct {
		Column     string  `json:"column"`
		Op         string  `json:"op"`
		Value      float64 `json:"value"`
		Text       string  `json:"text"`
		Unit       string  `json:"unit"`
		Span       string  `json:"span"`
		Source     string  `json:"source"`
		Similarity float64 `json:"similarity"`
	} `json:"attributes"`
	Trace []struct {
		Stage string `json:"stage"`
	} `json:"trace"`
	Error string `json:"error"`
}

func postV2(t *testing.T, url, body string) v2Result {
	t.Helper()
	resp, err := http.Post(url+"/v2/match", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr struct {
		Results []v2Result `json:"results"`
	}
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	if len(vr.Results) != 1 {
		t.Fatalf("%d results: %s", len(vr.Results), data)
	}
	if vr.Results[0].Error != "" {
		t.Fatalf("per-item error: %s", vr.Results[0].Error)
	}
	return vr.Results[0]
}

func v2TestServer(t *testing.T, sim *Simulation) *httptest.Server {
	t.Helper()
	results, err := sim.MineAll(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := sim.BuildSnapshot(results, 0)
	if snap.Vocab == nil {
		t.Fatal("BuildSnapshot produced no attribute vocabulary")
	}
	ts := httptest.NewServer(NewMatchServer(snap, ServeConfig{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestAcceptanceCameraQuery is the ISSUE's flagship query: "cheap canon
// 40d lens under $500" must resolve the Canon EOS 40D entity plus two
// typed price predicates, leaving "lens" as residual.
func TestAcceptanceCameraQuery(t *testing.T) {
	ts := v2TestServer(t, cameras(t))
	r := postV2(t, ts.URL, `{"query": "cheap canon 40d lens under $500", "explain": true}`)

	if len(r.Matches) != 1 || r.Matches[0].Canonical != "Canon EOS 40D" {
		t.Fatalf("matches = %+v", r.Matches)
	}
	if r.Residual != "lens" {
		t.Errorf("residual = %q, want \"lens\"", r.Residual)
	}
	if len(r.Attributes) != 2 {
		t.Fatalf("attributes = %+v, want band + comparator", r.Attributes)
	}
	band := r.Attributes[0]
	if band.Column != "price" || band.Op != "lte" || band.Source != "band" ||
		band.Span != "cheap" || band.Unit != "usd" || band.Value <= 0 {
		t.Errorf("band predicate = %+v", band)
	}
	cmp := r.Attributes[1]
	if cmp.Column != "price" || cmp.Op != "lt" || cmp.Value != 500 ||
		cmp.Source != "comparator" || cmp.Span != "under 500" {
		t.Errorf("comparator predicate = %+v", cmp)
	}
	sawRewrite := false
	for _, step := range r.Trace {
		if step.Stage == "rewrite" {
			sawRewrite = true
		}
	}
	if !sawRewrite {
		t.Error("no rewrite trace steps")
	}
}

// TestAcceptanceMovieQuery: "kingdom of the crystal skull 2008 adventure"
// resolves the Indiana Jones entity plus year and genre predicates.
func TestAcceptanceMovieQuery(t *testing.T) {
	ts := v2TestServer(t, movies(t))
	r := postV2(t, ts.URL, `{"query": "kingdom of the crystal skull 2008 adventure"}`)

	if len(r.Matches) != 1 ||
		r.Matches[0].Canonical != "Indiana Jones and the Kingdom of the Crystal Skull" {
		t.Fatalf("matches = %+v", r.Matches)
	}
	if r.Residual != "" {
		t.Errorf("residual = %q, want empty (every token consumed)", r.Residual)
	}
	if len(r.Attributes) != 2 {
		t.Fatalf("attributes = %+v, want year + genre", r.Attributes)
	}
	year := r.Attributes[0]
	if year.Column != "year" || year.Op != "eq" || year.Value != 2008 || year.Source != "value" {
		t.Errorf("year predicate = %+v", year)
	}
	genre := r.Attributes[1]
	if genre.Column != "genre" || genre.Op != "eq" || genre.Text != "adventure" {
		t.Errorf("genre predicate = %+v", genre)
	}
}

// TestAcceptanceEvalSets runs the curated per-domain acceptance sets
// (internal/eval) through the full pipeline: every domain's set must
// pass completely against a snapshot-built server.
func TestAcceptanceEvalSets(t *testing.T) {
	sims := map[string]*Simulation{
		"movies":  movies(t),
		"cameras": cameras(t),
	}
	sw, err := NewSimulation(Options{Dataset: SoftwareProducts})
	if err != nil {
		t.Fatal(err)
	}
	sims["software"] = sw

	for _, set := range eval.AttributeSets() {
		sim, ok := sims[set.Domain]
		if !ok {
			t.Fatalf("acceptance set for unknown domain %q", set.Domain)
		}
		results, err := sim.MineAll(DefaultMinerConfig())
		if err != nil {
			t.Fatal(err)
		}
		s := NewMatchServer(sim.BuildSnapshot(results, 0), ServeConfig{CacheSize: -1})
		rep := eval.EvaluateAttributes(set, func(q string) (*MatchResponse, error) {
			res, err := s.Do(MatchRequest{Query: q, Rewrite: true})
			return &res, err
		})
		if !rep.Pass() {
			t.Errorf("%s", eval.FormatAttributeReport(rep))
		}
	}
}

// TestAcceptanceFuzzyBrand: the categorical vocabulary rides the same
// trigram machinery as entities — "cannon" (a misspelled brand with no
// entity anchor nearby) still yields brand=canon.
func TestAcceptanceFuzzyBrand(t *testing.T) {
	ts := v2TestServer(t, cameras(t))
	r := postV2(t, ts.URL, `{"query": "powershot sd1100 cannon"}`)

	found := false
	for _, p := range r.Attributes {
		if p.Column == "brand" && p.Text == "canon" && p.Source == "value-fuzzy" {
			if p.Similarity <= 0 || p.Similarity >= 1 {
				t.Errorf("fuzzy brand similarity = %g", p.Similarity)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no fuzzy brand predicate in %+v (residual %q)", r.Attributes, r.Residual)
	}
}
