//go:build race

package websyn

// raceEnabled reports whether this test binary was built with -race.
// Allocation-budget tests skip under race: the instrumentation disables
// the inlining the zero-alloc paths rely on, so allocs/op is not
// meaningful there. The non-race CI job and the bench gate hold the
// budget.
const raceEnabled = true
