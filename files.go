package websyn

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"websyn/internal/clicklog"
	"websyn/internal/core"
	"websyn/internal/logio"
	"websyn/internal/search"
)

// File-based pipeline: the miner can run from Search Data and Click Data
// materialized by cmd/loggen (or any external producer emitting the same
// formats), without rebuilding the simulation. This mirrors the paper's
// offline deployment, which consumed log extracts rather than live APIs.

// Relation-classification re-exports (the Figure 1 taxonomy extension).
type (
	// Relation is the inferred candidate relation (synonym / hypernym /
	// hyponym / related).
	Relation = core.Relation
	// Classified is one relation-classified candidate.
	Classified = core.Classified
	// ClassifyConfig tunes relation classification.
	ClassifyConfig = core.ClassifyConfig
)

// Relation constants re-exported for callers of Miner.Classify.
const (
	RelSynonym  = core.RelSynonym
	RelHypernym = core.RelHypernym
	RelHyponym  = core.RelHyponym
	RelRelated  = core.RelRelated
)

// DefaultClassifyConfig re-exports the classification defaults.
func DefaultClassifyConfig() ClassifyConfig { return core.DefaultClassifyConfig() }

// LoadSearchData reads Search Data A from a .tsv or .bin file produced by
// cmd/loggen and rebuilds the surrogate mapping with cutoff k.
func LoadSearchData(path string, k int) (*SearchData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("websyn: opening search data: %w", err)
	}
	defer f.Close()
	var tuples []search.Tuple
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".bin":
		tuples, err = logio.ReadSearchBinary(f)
	case ".tsv", ".txt":
		tuples, err = logio.ReadSearchTSV(f)
	default:
		return nil, fmt.Errorf("websyn: unknown search data extension %q", ext)
	}
	if err != nil {
		return nil, fmt.Errorf("websyn: reading %s: %w", path, err)
	}
	return search.NewDataFromTuples(tuples, k)
}

// LoadClickLog reads Click Data L from a .tsv or .bin file, with an
// optional impressions sidecar (pass "" to skip; weighted metrics then see
// zero frequencies).
func LoadClickLog(clicksPath, impressionsPath string) (*ClickLog, error) {
	f, err := os.Open(clicksPath)
	if err != nil {
		return nil, fmt.Errorf("websyn: opening click data: %w", err)
	}
	defer f.Close()
	var clicks []clicklog.Click
	switch ext := strings.ToLower(filepath.Ext(clicksPath)); ext {
	case ".bin":
		clicks, err = logio.ReadClicksBinary(f)
	case ".tsv", ".txt":
		clicks, err = logio.ReadClicksTSV(f)
	default:
		return nil, fmt.Errorf("websyn: unknown click data extension %q", ext)
	}
	if err != nil {
		return nil, fmt.Errorf("websyn: reading %s: %w", clicksPath, err)
	}

	var impressions map[string]int
	if impressionsPath != "" {
		imf, err := os.Open(impressionsPath)
		if err != nil {
			return nil, fmt.Errorf("websyn: opening impressions: %w", err)
		}
		defer imf.Close()
		impressions, err = logio.ReadImpressionsTSV(imf)
		if err != nil {
			return nil, fmt.Errorf("websyn: reading %s: %w", impressionsPath, err)
		}
	}
	return clicklog.FromClicks(clicks, impressions), nil
}

// NewMinerFromFiles wires a miner directly over on-disk data sets.
func NewMinerFromFiles(searchPath, clicksPath, impressionsPath string, k int, cfg MinerConfig) (*Miner, error) {
	sd, err := LoadSearchData(searchPath, k)
	if err != nil {
		return nil, err
	}
	log, err := LoadClickLog(clicksPath, impressionsPath)
	if err != nil {
		return nil, err
	}
	return core.NewMiner(sd, log, cfg)
}

// SaveSearchData writes the simulation's Search Data to path (.tsv or
// .bin, by extension).
func (s *Simulation) SaveSearchData(path string) error {
	return writeByExt(path, func(f *os.File, bin bool) error {
		if bin {
			return logio.WriteSearchBinary(f, s.Search.Tuples())
		}
		return logio.WriteSearchTSV(f, s.Search.Tuples())
	})
}

// SaveClickLog writes the simulation's Click Data to clicksPath and the
// impressions sidecar to impressionsPath ("" skips the sidecar).
func (s *Simulation) SaveClickLog(clicksPath, impressionsPath string) error {
	err := writeByExt(clicksPath, func(f *os.File, bin bool) error {
		if bin {
			return logio.WriteClicksBinary(f, s.Log.Flatten())
		}
		return logio.WriteClicksTSV(f, s.Log.Flatten())
	})
	if err != nil {
		return err
	}
	if impressionsPath == "" {
		return nil
	}
	return writeByExt(impressionsPath, func(f *os.File, _ bool) error {
		return logio.WriteImpressionsTSV(f, s.Log)
	})
}

// writeByExt creates path and dispatches on its extension (.bin = binary).
func writeByExt(path string, write func(f *os.File, bin bool) error) error {
	bin := strings.ToLower(filepath.Ext(path)) == ".bin"
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("websyn: creating %s: %w", path, err)
	}
	if err := write(f, bin); err != nil {
		f.Close()
		return fmt.Errorf("websyn: writing %s: %w", path, err)
	}
	return f.Close()
}
