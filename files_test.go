package websyn

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// copyFile duplicates src at dst for extension-handling tests.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// TestFileBasedMiningEquivalence is the integration test of the file
// pipeline: a miner rebuilt from serialized data sets must produce exactly
// the same synonyms as the in-memory miner, in both formats.
func TestFileBasedMiningEquivalence(t *testing.T) {
	sim, err := NewSimulation(Options{Dataset: Movies, Impressions: 20000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	inputs := sim.Catalog.Canonicals()[:20]
	want := mem.MineAll(inputs)

	dir := t.TempDir()
	for _, ext := range []string{".tsv", ".bin"} {
		searchPath := filepath.Join(dir, "search"+ext)
		clicksPath := filepath.Join(dir, "clicks"+ext)
		imprPath := filepath.Join(dir, "impressions.tsv")
		if err := sim.SaveSearchData(searchPath); err != nil {
			t.Fatal(err)
		}
		if err := sim.SaveClickLog(clicksPath, imprPath); err != nil {
			t.Fatal(err)
		}
		fileMiner, err := NewMinerFromFiles(searchPath, clicksPath, imprPath,
			sim.Search.K(), DefaultMinerConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := fileMiner.MineAll(inputs)
		for i := range want {
			if !reflect.DeepEqual(want[i].Synonyms, got[i].Synonyms) {
				t.Fatalf("%s: synonyms differ for %q:\n  mem:  %v\n  file: %v",
					ext, inputs[i], want[i].Synonyms, got[i].Synonyms)
			}
			if len(want[i].Evidence) != len(got[i].Evidence) {
				t.Fatalf("%s: evidence counts differ for %q", ext, inputs[i])
			}
		}
	}
}

func TestLoadSearchDataErrors(t *testing.T) {
	if _, err := LoadSearchData("/nonexistent/file.tsv", 10); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadClickLogErrors(t *testing.T) {
	if _, err := LoadClickLog("/nonexistent/clicks.tsv", ""); err == nil {
		t.Fatal("missing clicks file accepted")
	}
}

func TestUnknownExtensionRejected(t *testing.T) {
	dir := t.TempDir()
	sim, err := NewSimulation(Options{Dataset: Movies, Impressions: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "search.tsv")
	if err := sim.SaveSearchData(p); err != nil {
		t.Fatal(err)
	}
	// Loading with a wrong extension must fail cleanly.
	weird := filepath.Join(dir, "search.dat")
	if err := copyFile(p, weird); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSearchData(weird, 10); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := LoadClickLog(weird, ""); err == nil {
		t.Fatal("unknown click extension accepted")
	}
}

func TestClassifyFacade(t *testing.T) {
	sim := movies(t)
	m, err := sim.NewMiner(DefaultMinerConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Classify("Indiana Jones and the Kingdom of the Crystal Skull", DefaultClassifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no classified candidates")
	}
	byRel := map[Relation][]string{}
	byCand := map[string]Relation{}
	for _, c := range out {
		byRel[c.Relation] = append(byRel[c.Relation], c.Candidate)
		byCand[c.Candidate] = c.Relation
	}
	if len(byRel[RelSynonym]) == 0 {
		t.Fatal("no candidates classified as synonyms")
	}
	// Refinement queries concentrate their clicks on deep pages outside
	// GA(u): they must never classify as synonyms (the clean separation;
	// franchise hypernyms vs informal synonyms is genuinely ambiguous in
	// log geometry and is not asserted here).
	for cand, rel := range byCand {
		for _, suffix := range []string{" trailer", " showtimes", " dvd"} {
			if len(cand) > len(suffix) && cand[len(cand)-len(suffix):] == suffix && rel == RelSynonym {
				t.Errorf("refinement %q classified as synonym", cand)
			}
		}
	}
}
