// Package websyn is a from-scratch reproduction of "Fuzzy Matching of Web
// Queries to Structured Data" (Cheng, Lauw, Paparizos; ICDE 2010): an
// offline, data-driven miner that discovers entity synonyms from Web search
// and click logs, plus the complete simulation substrate the original
// proprietary pipeline ran on and the evaluation harness reproducing the
// paper's Figures 2-3 and Table I.
//
// The package is a facade: it wires the internal packages together and
// re-exports their primary types, so typical use is three calls:
//
//	sim, err := websyn.NewSimulation(websyn.Options{Dataset: websyn.Movies})
//	miner, err := sim.NewMiner(websyn.MinerConfig{IPC: 4, ICR: 0.1})
//	result := miner.Mine("Indiana Jones and the Kingdom of the Crystal Skull")
//	fmt.Println(result.Synonyms) // e.g. [indiana jones 4 indy 4 ...]
//
// See the examples/ directory for end-to-end programs and cmd/experiments
// for the harness that regenerates the paper's evaluation.
package websyn

import (
	"fmt"
	"strings"

	"websyn/internal/alias"
	"websyn/internal/clickgraph"
	"websyn/internal/clicklog"
	"websyn/internal/core"
	"websyn/internal/entity"
	"websyn/internal/eval"
	"websyn/internal/randomwalk"
	"websyn/internal/search"
	"websyn/internal/webcorpus"
	"websyn/internal/wiki"
)

// Re-exported types: the public names of the pipeline's building blocks.
type (
	// Entity is one structured-data row (movie, camera).
	Entity = entity.Entity
	// Catalog is an immutable entity collection (data set D1 or D2).
	Catalog = entity.Catalog
	// AliasModel is the generative ground truth / labeling oracle.
	AliasModel = alias.Model
	// Corpus is the synthetic Web.
	Corpus = webcorpus.Corpus
	// Page is one synthetic Web page.
	Page = webcorpus.Page
	// Index is the BM25 search engine over the corpus.
	Index = search.Index
	// SearchData is Search Data A: top-k results per input string.
	SearchData = search.Data
	// ClickLog is Click Data L: aggregated (query, page, clicks).
	ClickLog = clicklog.Log
	// ClickGraph is the bipartite query-URL click graph.
	ClickGraph = clickgraph.Graph
	// Miner is the paper's two-phase synonym miner.
	Miner = core.Miner
	// MinerConfig holds the β (IPC) and γ (ICR) thresholds.
	MinerConfig = core.Config
	// MineResult is the per-input mining output with evidence.
	MineResult = core.Result
	// Evidence is one candidate's IPC/ICR record.
	Evidence = core.Evidence
	// WikiBaseline is the Wikipedia-redirect comparison system.
	WikiBaseline = wiki.Baseline
	// Walker is the random-walk comparison system ("Walk(0.8)").
	Walker = randomwalk.Walker
	// WalkerConfig tunes the random walk.
	WalkerConfig = randomwalk.Config
)

// Dataset selects one of the paper's two data sets.
type Dataset int

const (
	// Movies is D1: titles of 100 top-grossing 2008 movies.
	Movies Dataset = iota
	// Cameras is D2: 882 canonical digital-camera names.
	Cameras
	// SoftwareProducts is D3, an extension data set: 80 software products
	// and games of the 2008 era — the paper's third motivating domain
	// ("Mac OS X" = "Leopard").
	SoftwareProducts
)

// ParseDataset resolves a user-facing data-set name — "movies"/"d1",
// "cameras"/"d2" or "software"/"d3", case-insensitive. Commands share it
// so flag parsing stays consistent across binaries.
func ParseDataset(name string) (Dataset, error) {
	switch strings.ToLower(name) {
	case "movies", "d1":
		return Movies, nil
	case "cameras", "d2":
		return Cameras, nil
	case "software", "d3":
		return SoftwareProducts, nil
	default:
		return 0, fmt.Errorf("websyn: unknown dataset %q", name)
	}
}

// String returns the data-set name used in reports.
func (d Dataset) String() string {
	switch d {
	case Movies:
		return "Movies"
	case Cameras:
		return "Cameras"
	case SoftwareProducts:
		return "Software"
	default:
		return fmt.Sprintf("dataset(%d)", int(d))
	}
}

// Options configures a simulation build.
type Options struct {
	// Dataset picks D1 (Movies) or D2 (Cameras).
	Dataset Dataset
	// Seed drives every random choice in the pipeline; identical seeds
	// yield bit-identical simulations. 0 means DefaultSeed.
	Seed uint64
	// Impressions is the number of simulated query impressions; 0 means
	// the data set's default (enough log volume for the tail behaviour the
	// paper's Table I depends on).
	Impressions int
	// SurrogateK is the top-k cutoff for Search Data; 0 means 10, the
	// paper's setting.
	SurrogateK int
}

// DefaultSeed is the seed used when Options.Seed is zero.
const DefaultSeed = 20100301 // ICDE 2010, Long Beach, March 1

// defaultImpressions per data set: cameras need a larger log so the
// (non-dead) tail still accumulates evidence.
const (
	defaultMovieImpressions    = 100000
	defaultCameraImpressions   = 400000
	defaultSoftwareImpressions = 80000
)

// Simulation is a fully built pipeline: catalog, ground truth, Web corpus,
// search engine, Search Data and Click Data.
type Simulation struct {
	Options Options
	Catalog *Catalog
	Model   *AliasModel
	Corpus  *Corpus
	Index   *Index
	Search  *SearchData
	Log     *ClickLog
}

// NewSimulation builds the complete substrate for the selected data set.
func NewSimulation(opt Options) (*Simulation, error) {
	if opt.Seed == 0 {
		opt.Seed = DefaultSeed
	}
	if opt.SurrogateK == 0 {
		opt.SurrogateK = 10
	}

	var (
		cat    *entity.Catalog
		params alias.Params
		err    error
	)
	switch opt.Dataset {
	case Movies:
		cat, err = entity.Movies2008()
		params = alias.MovieParams()
		if opt.Impressions == 0 {
			opt.Impressions = defaultMovieImpressions
		}
	case Cameras:
		cat, err = entity.Cameras2008()
		params = alias.CameraParams()
		if opt.Impressions == 0 {
			opt.Impressions = defaultCameraImpressions
		}
	case SoftwareProducts:
		cat, err = entity.Software2008()
		params = alias.SoftwareParams()
		if opt.Impressions == 0 {
			opt.Impressions = defaultSoftwareImpressions
		}
	default:
		return nil, fmt.Errorf("websyn: unknown dataset %v", opt.Dataset)
	}
	if err != nil {
		return nil, fmt.Errorf("websyn: building catalog: %w", err)
	}

	model, err := alias.Build(cat, params)
	if err != nil {
		return nil, fmt.Errorf("websyn: building alias model: %w", err)
	}
	corpus, err := webcorpus.Build(model, webcorpus.DefaultConfig(opt.Seed+1))
	if err != nil {
		return nil, fmt.Errorf("websyn: building corpus: %w", err)
	}
	idx := search.NewIndex(corpus)
	sd, err := search.NewData(idx, cat.Canonicals(), opt.SurrogateK)
	if err != nil {
		return nil, fmt.Errorf("websyn: building search data: %w", err)
	}
	log, err := clicklog.Simulate(model, idx, clicklog.DefaultSimConfig(opt.Seed+2, opt.Impressions))
	if err != nil {
		return nil, fmt.Errorf("websyn: simulating click log: %w", err)
	}
	return &Simulation{
		Options: opt,
		Catalog: cat,
		Model:   model,
		Corpus:  corpus,
		Index:   idx,
		Search:  sd,
		Log:     log,
	}, nil
}

// NewMiner builds the paper's miner over this simulation's data sets.
func (s *Simulation) NewMiner(cfg MinerConfig) (*Miner, error) {
	return core.NewMiner(s.Search, s.Log, cfg)
}

// SearchDataK rebuilds Search Data A with a different surrogate cutoff k,
// reusing the already-built index — the knob behind the k-sweep ablation.
func (s *Simulation) SearchDataK(k int) (*SearchData, error) {
	return search.NewData(s.Index, s.Catalog.Canonicals(), k)
}

// NewMinerWith builds a miner over explicit Search Data (e.g. from
// SearchDataK or from logs loaded off disk) and this simulation's click
// log.
func (s *Simulation) NewMinerWith(sd *SearchData, cfg MinerConfig) (*Miner, error) {
	return core.NewMiner(sd, s.Log, cfg)
}

// NewWalker builds the random-walk baseline over the same click graph the
// miner uses.
func (s *Simulation) NewWalker(cfg WalkerConfig) (*Walker, error) {
	return randomwalk.NewWalker(clickgraph.Build(s.Log), cfg)
}

// DefaultWalkerConfig re-exports the baseline's defaults (self-transition
// 0.8, the paper's "Walk(0.8)").
func DefaultWalkerConfig() WalkerConfig { return randomwalk.DefaultConfig() }

// DefaultMinerConfig re-exports the paper's chosen operating point
// (IPC 4, ICR 0.1).
func DefaultMinerConfig() MinerConfig { return core.DefaultConfig() }

// NewWiki builds the Wikipedia-redirect baseline for this data set.
func (s *Simulation) NewWiki() (*WikiBaseline, error) {
	cfg, err := wiki.ConfigFor(s.Catalog.Kind(), s.Options.Seed+3)
	if err != nil {
		return nil, err
	}
	return wiki.Build(s.Model, cfg), nil
}

// MineAll mines every canonical string of the data set at the given
// thresholds and returns per-input results in catalog order.
func (s *Simulation) MineAll(cfg MinerConfig) ([]*MineResult, error) {
	m, err := s.NewMiner(cfg)
	if err != nil {
		return nil, err
	}
	return m.MineAll(s.Catalog.Canonicals()), nil
}

// Judged metrics re-exports.
type (
	// SynonymOutput is a judged per-entity synonym listing.
	SynonymOutput = eval.Output
	// PrecisionReport carries plain and weighted precision.
	PrecisionReport = eval.PrecisionReport
	// Fig2Point is one Figure 2 operating point.
	Fig2Point = eval.Fig2Point
	// Fig3Point is one Figure 3 operating point.
	Fig3Point = eval.Fig3Point
	// Table1Row is one Table I row.
	Table1Row = eval.Table1Row
)
