package websyn

import (
	"bytes"
	"encoding/json"
	"testing"

	"websyn/internal/match"
)

// jsonEq compares two values by JSON encoding.
func jsonEq(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ja, jb)
}

// The movies/cameras/software cached simulations come from
// websyn_test.go and fuzzydiff_test.go.

// TestEngineSpanFuzzyAcrossDatasets is the tentpole acceptance test:
// for every data set, at least one typo'd multi-token span that plain
// MatchQuery misses resolves through the engine's span-level fuzzy
// matching, and in-vocabulary leftovers ("showtimes") stay in the
// remainder instead of being swallowed by trigram noise.
func TestEngineSpanFuzzyAcrossDatasets(t *testing.T) {
	cases := []struct {
		name      string
		sim       func(testing.TB) *Simulation
		query     string
		canonical string
		remainder string
	}{
		{
			name: "movies", sim: movies,
			// "kristol" is 3 edits from "crystal": per-token correction
			// cannot bridge it.
			query:     "kingdom of the kristol skull showtimes",
			canonical: "Indiana Jones and the Kingdom of the Crystal Skull",
			remainder: "showtimes",
		},
		{
			name: "movies-suffix-typo", sim: movies,
			query:     "quntum of solacee",
			canonical: "Quantum of Solace",
			remainder: "",
		},
		{
			name: "cameras", sim: cameras,
			// "mrak" -> "mark" is a transposition, 2 plain edits.
			query:     "1ds mrak iii",
			canonical: "Canon EOS 1Ds Mark III",
			remainder: "",
		},
		{
			name: "software", sim: software,
			query:     "microsfot ofice 2007",
			canonical: "Microsoft Office 2007",
			remainder: "",
		},
		{
			name: "software-version-remainder", sim: software,
			query:     "age of empiers 3 demo",
			canonical: "Age of Empires III",
			remainder: "3 demo",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := tc.sim(t)
			results, err := sim.MineAll(DefaultMinerConfig())
			if err != nil {
				t.Fatal(err)
			}
			dict := sim.BuildDictionary(results)
			if m, ok := dict.MatchQuery(tc.query); ok {
				t.Fatalf("MatchQuery already resolves %q to %+v; query no longer demonstrates the gap", tc.query, m)
			}

			eng := sim.BuildEngine(results, 0)
			resp, err := eng.Match(MatchRequest{Query: tc.query})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp.Matches) != 1 {
				t.Fatalf("engine matches = %+v", resp.Matches)
			}
			m := resp.Matches[0]
			if m.Method != match.MethodSpanFuzzy {
				t.Fatalf("method = %q, want span-fuzzy (match %+v)", m.Method, m)
			}
			if m.Canonical != tc.canonical {
				t.Fatalf("resolved %q, want %q", m.Canonical, tc.canonical)
			}
			if m.Similarity <= 0.55 {
				t.Fatalf("similarity %v not above the index threshold", m.Similarity)
			}
			if resp.Remainder != tc.remainder {
				t.Fatalf("remainder %q, want %q", resp.Remainder, tc.remainder)
			}
		})
	}
}

// TestEngineMatchesServerDo proves the facade engine and the serving
// tier answer through the same machinery: Server.Do returns the same
// response (modulo timing) as the engine it wraps.
func TestEngineMatchesServerDo(t *testing.T) {
	snap := movieSnapshot(t)
	srv := NewMatchServer(snap, ServeConfig{CacheSize: -1})
	for _, q := range []string{
		"indy 4 near san fran",
		"kingdom of the kristol skull showtimes",
		"best pizza in town",
	} {
		req := MatchRequest{Query: q, TopK: 3}
		want, err := srv.Engine().Match(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := srv.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		want.Timing, got.Timing = MatchResponse{}.Timing, MatchResponse{}.Timing
		if !jsonEq(t, got, want) {
			t.Fatalf("Do(%q) diverged from Engine().Match:\n got %+v\nwant %+v", q, got, want)
		}
	}
}
