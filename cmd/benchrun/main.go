// Command benchrun runs the serving-path benchmarks and records the
// results as a machine-readable trajectory file, optionally gating on a
// committed baseline — the regression tripwire behind CI's bench-gate
// job (see docs/PERFORMANCE.md).
//
// Usage:
//
//	benchrun [-bench regex] [-count 3] [-pkg .,./internal/serve]
//	         [-out bench/BENCH_<date>.json]
//	         [-baseline BENCH_baseline.json] [-threshold 0.25]
//	         [-write-baseline path]
//
// benchrun shells out to `go test -bench` (so it measures exactly what a
// developer would), parses the standard benchmark output, keeps the
// fastest of -count runs per benchmark (the low-noise estimator), and
// writes a JSON file named after today's date — committing one per
// optimization PR leaves a performance trajectory in the repo history.
//
// With -baseline it compares ns/op against the committed baseline and
// exits non-zero when any gated benchmark regressed by more than
// -threshold (fractional; 0.25 = 25%). To refresh the baseline after an
// intentional change, run:
//
//	go run ./cmd/benchrun -count 5 -write-baseline BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// GatedBenchmarks is the default benchmark set: the latency-critical
// serving path (whole-string fuzzy lookup, single-query match, batch
// match, the unified engine across exact/typo/span-fuzzy queries, the
// snapshot boot paths — streamed decode vs mmap) plus the concurrency
// suite (parallel single-query match, parallel federation, and the
// contended-cache microbenchmark). BenchmarkServeMatch also prefixes
// BenchmarkServeMatchParallel, whose cached sub-benchmark carries a
// zero-alloc baseline the gate treats as an absolute invariant.
const GatedBenchmarks = "BenchmarkFuzzyLookup|BenchmarkServeMatch|BenchmarkServeBatch|BenchmarkEngineMatch|BenchmarkSnapshotOpen|BenchmarkRegistryFederateParallel|BenchmarkCacheContended"

// GatedPackages is the default -pkg value: the root serving facade plus
// internal/serve, home of the contended-cache microbenchmark.
const GatedPackages = ".,./internal/serve"

// Result is one benchmark's aggregated measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

// File is the BENCH_*.json layout.
type File struct {
	Schema     int               `json:"schema"`
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	BenchRegex string            `json:"bench_regex"`
	Count      int               `json:"count"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", GatedBenchmarks, "benchmark regex passed to go test -bench")
		count     = flag.Int("count", 3, "runs per benchmark; the fastest is recorded")
		pkg       = flag.String("pkg", GatedPackages, "comma-separated packages to benchmark")
		out       = flag.String("out", "", "trajectory file to write (default bench/BENCH_<date>.json; empty string with -write-baseline skips it)")
		baseline  = flag.String("baseline", "", "baseline file to gate against (empty = no gate)")
		threshold = flag.Float64("threshold", 0.25, "maximum tolerated fractional ns/op regression")
		writeBase = flag.String("write-baseline", "", "write this run as the new baseline to the given path")
		timeout   = flag.Duration("timeout", 30*time.Minute, "go test timeout")
	)
	flag.Parse()

	results, err := run(*bench, *pkg, *count, *timeout)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmarks matched %q in %s", *bench, *pkg))
	}

	f := &File{
		Schema:     1,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		BenchRegex: *bench,
		Count:      *count,
		Benchmarks: results,
	}

	outPath := *out
	if outPath == "" && *writeBase == "" {
		// Dated trajectory reports live under bench/ (gitignored), so
		// repeated runs never litter the repo root with stale files.
		outPath = filepath.Join("bench", "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	}
	for _, path := range []string{outPath, *writeBase} {
		if path == "" {
			continue
		}
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := writeFile(path, f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchrun: wrote %s (%d benchmarks)\n", path, len(results))
	}

	if *baseline != "" {
		if err := gate(*baseline, f, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchrun: %v\n", err)
	os.Exit(2)
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkFuzzyLookup/flat-8  163002  7196 ns/op  1928 B/op  51 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// stripCPUSuffix removes go test's "-<GOMAXPROCS>" benchmark-name
// suffix. go test only appends it when GOMAXPROCS > 1, and benchmark
// names can legitimately end in "-<n>" (ServeBatch/workers-4), so only
// the exact current GOMAXPROCS value is stripped — names then agree
// across machines with different core counts.
func stripCPUSuffix(name string) string {
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		name = strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
	}
	return name
}

// run executes the benchmarks and aggregates per-benchmark minima. pkg
// is comma-separated; all packages go into one `go test` invocation, so
// benchmark names must stay unique across them.
func run(bench, pkg string, count int, timeout time.Duration) (map[string]Result, error) {
	args := []string{
		"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-count", strconv.Itoa(count), "-timeout", timeout.String(),
	}
	for _, p := range strings.Split(pkg, ",") {
		if p = strings.TrimSpace(p); p != "" {
			args = append(args, p)
		}
	}
	fmt.Fprintf(os.Stderr, "benchrun: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	// Echo the raw benchmark output so CI logs keep the full detail.
	os.Stderr.Write(outBytes)
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %w", err)
	}

	results := make(map[string]Result)
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := stripCPUSuffix(m[1])
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := Result{NsPerOp: ns, Samples: 1}
		// Optional -benchmem and custom-metric columns.
		rest := strings.Fields(m[3])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if prev, ok := results[name]; ok {
			r.Samples = prev.Samples + 1
			if prev.NsPerOp < r.NsPerOp {
				r.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp < r.BytesPerOp {
				r.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp < r.AllocsPerOp {
				r.AllocsPerOp = prev.AllocsPerOp
			}
		}
		results[name] = r
	}
	return results, nil
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// gate compares this run against the baseline and reports every gated
// benchmark's delta. It fails on a >threshold regression in ns/op or
// allocs/op and on gated benchmarks that disappeared from the run.
// allocs/op is hardware-independent, so it stays meaningful even when
// the baseline was recorded on a different machine than the runner;
// ns/op catches regressions allocation counts cannot see.
func gate(baselinePath string, current *File, threshold float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions, missing []string
	fmt.Fprintf(os.Stderr, "benchrun: gating %d benchmarks against %s (threshold %+.0f%%)\n",
		len(names), baselinePath, threshold*100)
	for _, name := range names {
		b := base.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			fmt.Fprintf(os.Stderr, "  MISSING  %-45s baseline %.0f ns/op, not in this run\n", name, b.NsPerOp)
			continue
		}
		delta := cur.NsPerOp/b.NsPerOp - 1
		allocDelta := 0.0
		if b.AllocsPerOp > 0 {
			allocDelta = cur.AllocsPerOp/b.AllocsPerOp - 1
		} else if cur.AllocsPerOp > 0 {
			// A zero-alloc baseline is an absolute invariant, not a ratio:
			// any allocation on that path is a regression.
			allocDelta = math.Inf(1)
		}
		status := "ok"
		if delta > threshold || allocDelta > threshold {
			status = "REGRESSED"
			regressions = append(regressions, name)
		}
		fmt.Fprintf(os.Stderr, "  %-10s%-45s %10.0f -> %10.0f ns/op (%+6.1f%%)  %6.0f -> %6.0f allocs/op (%+6.1f%%)\n",
			status, name, b.NsPerOp, cur.NsPerOp, delta*100,
			b.AllocsPerOp, cur.AllocsPerOp, allocDelta*100)
	}
	if len(regressions) > 0 || len(missing) > 0 {
		return fmt.Errorf("bench gate failed: %d regression(s) %v, %d missing %v — if intentional, refresh the baseline (see docs/PERFORMANCE.md)",
			len(regressions), regressions, len(missing), missing)
	}
	fmt.Fprintln(os.Stderr, "benchrun: bench gate passed")
	return nil
}
