// Command dictbuild runs the offline half of the pipeline — simulation,
// synonym mining, dictionary compilation — and writes a serving snapshot
// that cmd/matchd loads in milliseconds.
//
// Usage:
//
//	dictbuild -o dict.snap [-dataset movies|cameras|software]
//	          [-ipc 4] [-icr 0.1] [-seed N] [-min-sim 0.55]
//
// The snapshot bundles the compiled dictionary, the entity table and the
// mined synonym listing in a versioned, checksummed binary format (see
// docs/SERVING.md). Build once, serve anywhere:
//
//	dictbuild -dataset movies -o movies.snap
//	matchd -snapshot movies.snap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"websyn"
)

func main() {
	var (
		out     = flag.String("o", "", "output snapshot path (required)")
		dataset = flag.String("dataset", "movies", "data set: movies, cameras or software")
		ipc     = flag.Int("ipc", 4, "IPC threshold β")
		icr     = flag.Float64("icr", 0.1, "ICR threshold γ")
		seed    = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		minSim  = flag.Float64("min-sim", websyn.DefaultFuzzyMinSim, "fuzzy similarity threshold stored in the snapshot")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dictbuild: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	ds, err := websyn.ParseDataset(*dataset)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	log.Printf("building %v simulation and mining (IPC %d, ICR %g)...", ds, *ipc, *icr)
	snap, err := websyn.MineSnapshot(ds, websyn.MinerConfig{IPC: *ipc, ICR: *icr}, *seed, *minSim)
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	grams := 0
	if snap.Fuzzy != nil {
		grams = len(snap.Fuzzy.Grams)
	}
	log.Printf("wrote %s: %d dictionary entries, %d entities, %d fuzzy trigrams, %d bytes in %v",
		*out, snap.Dict.Len(), len(snap.Canonicals), grams, info.Size(),
		time.Since(start).Round(time.Millisecond))
}
