// Command dictbuild runs the offline half of the pipeline — simulation,
// synonym mining, dictionary compilation — and writes serving snapshots
// that cmd/matchd loads in milliseconds.
//
// Usage:
//
//	dictbuild -o dict.snap [-dataset movies|cameras|software]
//	          [-ipc 4] [-icr 0.1] [-seed N] [-min-sim 0.55]
//
// The snapshot bundles the compiled dictionary, the entity table and the
// mined synonym listing in a versioned, checksummed binary format (see
// docs/SERVING.md). Build once, serve anywhere:
//
//	dictbuild -dataset movies -o movies.snap
//	matchd -snapshot movies.snap
//
// With -dataset all, dictbuild mines every vertical and writes one
// snapshot per domain into the -o directory (created if missing) —
// the artifact set a multi-domain matchd boots on:
//
//	dictbuild -dataset all -o snapshots/
//	matchd -snapshot movies=snapshots/movies.snap \
//	       -snapshot cameras=snapshots/cameras.snap \
//	       -snapshot software=snapshots/software.snap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"websyn"
)

// verticals lists every mineable domain: the flag name dictbuild and
// matchd share, and the websyn data set it maps to.
var verticals = []struct {
	name string
	ds   websyn.Dataset
}{
	{"movies", websyn.Movies},
	{"cameras", websyn.Cameras},
	{"software", websyn.SoftwareProducts},
}

func main() {
	var (
		out     = flag.String("o", "", "output snapshot path; with -dataset all, an output directory (required)")
		dataset = flag.String("dataset", "movies", "data set: movies, cameras, software, or all (one snapshot per vertical)")
		ipc     = flag.Int("ipc", 4, "IPC threshold β")
		icr     = flag.Float64("icr", 0.1, "ICR threshold γ")
		seed    = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		minSim  = flag.Float64("min-sim", websyn.DefaultFuzzyMinSim, "fuzzy similarity threshold stored in the snapshot")
		verify  = flag.Bool("verify", false, "re-read each written snapshot (streamed and mmapped) and fail unless the dictionary and attribute vocabulary round-trip")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dictbuild: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := websyn.MinerConfig{IPC: *ipc, ICR: *icr}
	if *dataset == "all" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, v := range verticals {
			build(v.ds, cfg, *seed, *minSim, filepath.Join(*out, v.name+".snap"), *verify)
		}
		return
	}

	ds, err := websyn.ParseDataset(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	build(ds, cfg, *seed, *minSim, *out, *verify)
}

// build mines one vertical and writes its snapshot.
func build(ds websyn.Dataset, cfg websyn.MinerConfig, seed uint64, minSim float64, out string, verify bool) {
	start := time.Now()
	log.Printf("building %v simulation and mining (IPC %d, ICR %g)...", ds, cfg.IPC, cfg.ICR)
	snap, err := websyn.MineSnapshot(ds, cfg, seed, minSim)
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.WriteFile(out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		log.Fatal(err)
	}
	grams := 0
	if snap.Fuzzy != nil {
		grams = len(snap.Fuzzy.Grams)
	}
	log.Printf("wrote %s: %d dictionary entries, %d entities, %d fuzzy trigrams, %d bytes in %v",
		out, snap.Dict.Len(), len(snap.Canonicals), grams, info.Size(),
		time.Since(start).Round(time.Millisecond))
	if v := snap.Vocab; v != nil {
		values := 0
		for _, c := range v.Categorical {
			values += len(c.Values)
		}
		log.Printf("  vocabulary %q: %d numeric columns, %d categorical columns (%d values)",
			v.Domain, len(v.Numeric), len(v.Categorical), values)
	}
	if verify {
		verifyRoundTrip(snap, out)
	}
}

// verifyRoundTrip re-reads a just-written snapshot through both readers
// (streamed decode and mmap) and fails the build unless the dictionary
// and the attribute vocabulary survive byte-for-byte. This is the CI
// gate that keeps the WSNP vocabulary section honest: a codec slip that
// silently drops or mangles the vocabulary would otherwise only surface
// as missing /v2 predicates in production.
func verifyRoundTrip(want *websyn.Snapshot, path string) {
	check := func(kind string, got *websyn.Snapshot) {
		if got.Dict.Len() != want.Dict.Len() {
			log.Fatalf("verify (%s): %d dictionary entries read back, wrote %d",
				kind, got.Dict.Len(), want.Dict.Len())
		}
		if !reflect.DeepEqual(got.Vocab, want.Vocab) {
			log.Fatalf("verify (%s): attribute vocabulary did not round-trip through %s",
				kind, path)
		}
	}
	streamed, err := websyn.ReadSnapshotFile(path)
	if err != nil {
		log.Fatalf("verify: re-reading %s: %v", path, err)
	}
	check("streamed", streamed)
	mapped, err := websyn.OpenSnapshotMapped(path)
	if err != nil {
		log.Fatalf("verify: mmapping %s: %v", path, err)
	}
	check("mmap", mapped)
	log.Printf("  verified: dictionary and vocabulary round-trip (streamed + mmap)")
}
