// Command dictbuild runs the offline half of the pipeline — simulation,
// synonym mining, dictionary compilation — and writes serving snapshots
// that cmd/matchd loads in milliseconds.
//
// Usage:
//
//	dictbuild -o dict.snap [-dataset movies|cameras|software]
//	          [-ipc 4] [-icr 0.1] [-seed N] [-min-sim 0.55]
//
// The snapshot bundles the compiled dictionary, the entity table and the
// mined synonym listing in a versioned, checksummed binary format (see
// docs/SERVING.md). Build once, serve anywhere:
//
//	dictbuild -dataset movies -o movies.snap
//	matchd -snapshot movies.snap
//
// With -dataset all, dictbuild mines every vertical and writes one
// snapshot per domain into the -o directory (created if missing) —
// the artifact set a multi-domain matchd boots on:
//
//	dictbuild -dataset all -o snapshots/
//	matchd -snapshot movies=snapshots/movies.snap \
//	       -snapshot cameras=snapshots/cameras.snap \
//	       -snapshot software=snapshots/software.snap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"websyn"
)

// verticals lists every mineable domain: the flag name dictbuild and
// matchd share, and the websyn data set it maps to.
var verticals = []struct {
	name string
	ds   websyn.Dataset
}{
	{"movies", websyn.Movies},
	{"cameras", websyn.Cameras},
	{"software", websyn.SoftwareProducts},
}

func main() {
	var (
		out     = flag.String("o", "", "output snapshot path; with -dataset all, an output directory (required)")
		dataset = flag.String("dataset", "movies", "data set: movies, cameras, software, or all (one snapshot per vertical)")
		ipc     = flag.Int("ipc", 4, "IPC threshold β")
		icr     = flag.Float64("icr", 0.1, "ICR threshold γ")
		seed    = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		minSim  = flag.Float64("min-sim", websyn.DefaultFuzzyMinSim, "fuzzy similarity threshold stored in the snapshot")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dictbuild: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := websyn.MinerConfig{IPC: *ipc, ICR: *icr}
	if *dataset == "all" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, v := range verticals {
			build(v.ds, cfg, *seed, *minSim, filepath.Join(*out, v.name+".snap"))
		}
		return
	}

	ds, err := websyn.ParseDataset(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	build(ds, cfg, *seed, *minSim, *out)
}

// build mines one vertical and writes its snapshot.
func build(ds websyn.Dataset, cfg websyn.MinerConfig, seed uint64, minSim float64, out string) {
	start := time.Now()
	log.Printf("building %v simulation and mining (IPC %d, ICR %g)...", ds, cfg.IPC, cfg.ICR)
	snap, err := websyn.MineSnapshot(ds, cfg, seed, minSim)
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.WriteFile(out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		log.Fatal(err)
	}
	grams := 0
	if snap.Fuzzy != nil {
		grams = len(snap.Fuzzy.Grams)
	}
	log.Printf("wrote %s: %d dictionary entries, %d entities, %d fuzzy trigrams, %d bytes in %v",
		out, snap.Dict.Len(), len(snap.Canonicals), grams, info.Size(),
		time.Since(start).Round(time.Millisecond))
}
