// Command router fronts a fleet of matchd replicas: one HTTP endpoint,
// N replicas speaking the internal wire protocol behind it.
//
//	router -replica 127.0.0.1:9001=http://127.0.0.1:8001 \
//	       -replica 127.0.0.1:9002=http://127.0.0.1:8002 \
//	       -replica 127.0.0.1:9003=http://127.0.0.1:8003 \
//	       -addr :8090 -blob-dir /srv/websyn/blobs
//
// Each -replica names a matchd wire address (-fleet-addr on the
// replica) and, after '=', its optional HTTP admin base URL (used for
// rolling snapshot publishes; omit it to exclude the replica from
// publishes).
//
// Endpoints:
//
//	POST /v1/match       — same contract as matchd (docs/API.md);
//	                       domain-pinned items ride a consistent-hash
//	                       ring, federated/domainless ones round-robin
//	GET  /healthz        — 200 while at least one replica is healthy
//	GET  /statsz         — routing, hedging and per-replica health stats
//	POST /admin/publish  — ?domain=<d>&path=<snapshot>: stage into the
//	                       blob store and roll across the fleet, rolling,
//	                       with the domain pointer flipped last
//	                       (requires -blob-dir and replica admin URLs)
//
// -pprof mounts /debug/pprof/ with mutex and block profiling on, the
// lock-contention debugging surface (docs/PERFORMANCE.md).
//
// Reliability: replicas are actively health-checked (-health-interval)
// and ejected after -fail-after consecutive failures; while ejected
// they only receive half-open probes, and -recover-after consecutive
// successes re-admit them. A slow primary gets a hedged backup request
// after the observed p95 latency (-hedge-delay pins it); transport
// errors retry immediately on the next distinct replica, up to
// -max-attempts, all within -timeout.
//
// Publish-only mode (no serving): -publish domain=path stages a
// snapshot and, when replicas are configured, rolls it across them
// before flipping the pointer; with no replicas it just seeds the blob
// store. The process exits when every -publish entry is done:
//
//	router -blob-dir blobs -publish movies=movies.snap            # seed
//	router -blob-dir blobs -replica ...=http://... -publish movies=v2.snap
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"websyn/internal/fleet"
	"websyn/internal/serve"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var replicas, publishes multiFlag
	flag.Var(&replicas, "replica", "matchd wire address, optionally =adminURL (repeatable)")
	flag.Var(&publishes, "publish", "domain=snapshot-path to publish, then exit (repeatable; requires -blob-dir)")
	var (
		addr           = flag.String("addr", ":8090", "listen address")
		timeout        = flag.Duration("timeout", 2*time.Second, "per-item budget across all attempts")
		hedgeDelay     = flag.Duration("hedge-delay", 0, "fixed hedge delay (0 = adaptive p95)")
		maxHedgeDelay  = flag.Duration("max-hedge-delay", 100*time.Millisecond, "adaptive hedge delay ceiling")
		maxAttempts    = flag.Int("max-attempts", 3, "max distinct replicas tried per item")
		healthInterval = flag.Duration("health-interval", time.Second, "active health-probe period")
		healthTimeout  = flag.Duration("health-timeout", 500*time.Millisecond, "health-probe timeout")
		failAfter      = flag.Int("fail-after", 3, "consecutive failures before ejection")
		recoverAfter   = flag.Int("recover-after", 2, "consecutive probe successes before re-admission")
		maxBatch       = flag.Int("max-batch", 256, "max queries per /v1/match batch")
		blobDir        = flag.String("blob-dir", "", "content-addressed snapshot blob directory (enables /admin/publish)")
		publishTimeout = flag.Duration("publish-timeout", 60*time.Second, "per-replica convergence budget during a publish")
		drainTimeout   = flag.Duration("drain-timeout", 10*time.Second, "how long to drain in-flight requests on shutdown")
		pprofEnable    = flag.Bool("pprof", false, "mount /debug/pprof/ with mutex and block profiling enabled (exposes process internals; keep off public listeners)")
	)
	flag.Parse()

	specs, err := parseReplicas(replicas)
	if err != nil {
		log.Fatal(err)
	}

	var store *fleet.Store
	if *blobDir != "" {
		store = &fleet.Store{Dir: *blobDir}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if len(publishes) > 0 {
		if store == nil {
			log.Fatal("-publish requires -blob-dir")
		}
		if err := runPublishes(ctx, store, specs, publishes, *publishTimeout); err != nil {
			log.Fatal(err)
		}
		return
	}

	if len(specs) == 0 {
		log.Fatal("router needs at least one -replica (or -publish entries)")
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Replicas:       specs,
		MaxBatch:       *maxBatch,
		RequestTimeout: *timeout,
		HedgeDelay:     *hedgeDelay,
		MaxHedgeDelay:  *maxHedgeDelay,
		MaxAttempts:    *maxAttempts,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		FailAfter:      *failAfter,
		RecoverAfter:   *recoverAfter,
	})
	if err != nil {
		log.Fatal(err)
	}
	go rt.Run(ctx)

	mux := http.NewServeMux()
	rt.Mount(mux)
	if *pprofEnable {
		serve.MountProfiling(mux)
		log.Printf("pprof: /debug/pprof/ mounted with mutex and block profiling")
	}
	if store != nil {
		coord := &fleet.Coordinator{Store: store, Replicas: rt.AdminURLs(), StepTimeout: *publishTimeout}
		mux.HandleFunc("POST /admin/publish", func(w http.ResponseWriter, r *http.Request) {
			domain := r.URL.Query().Get("domain")
			path := r.URL.Query().Get("path")
			if domain == "" || path == "" {
				serve.WriteV1Error(w, http.StatusBadRequest, "publish needs ?domain= and ?path=")
				return
			}
			report, err := coord.Publish(r.Context(), domain, path)
			w.Header().Set("Content-Type", "application/json")
			if err != nil {
				w.WriteHeader(http.StatusInternalServerError)
			}
			if _, err := fmt.Fprintf(w, "%s\n", mustJSON(report)); err != nil {
				log.Printf("router: writing publish report: %v", err)
			}
		})
	}

	log.Printf("router: %d replicas, listening on %s", len(specs), *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received, draining for up to %v", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: %v", err)
		}
		log.Print("shutdown complete")
	}
}

// parseReplicas expands -replica flags: "addr" or "addr=adminURL".
func parseReplicas(flags multiFlag) ([]fleet.ReplicaSpec, error) {
	var out []fleet.ReplicaSpec
	for _, v := range flags {
		addr, admin, _ := strings.Cut(v, "=")
		addr, admin = strings.TrimSpace(addr), strings.TrimSpace(admin)
		if addr == "" {
			return nil, fmt.Errorf("router: bad -replica %q (want addr[=adminURL])", v)
		}
		out = append(out, fleet.ReplicaSpec{Addr: addr, AdminURL: admin})
	}
	return out, nil
}

// runPublishes handles -publish entries: rolling publishes when
// replicas are configured, blob-store seeding otherwise.
func runPublishes(ctx context.Context, store *fleet.Store, specs []fleet.ReplicaSpec, publishes multiFlag, stepTimeout time.Duration) error {
	var admins []string
	for _, s := range specs {
		if s.AdminURL != "" {
			admins = append(admins, s.AdminURL)
		}
	}
	for _, entry := range publishes {
		domain, path, ok := strings.Cut(entry, "=")
		domain, path = strings.TrimSpace(domain), strings.TrimSpace(path)
		if !ok || domain == "" || path == "" {
			return fmt.Errorf("router: bad -publish %q (want domain=path)", entry)
		}
		if len(admins) == 0 {
			sha, err := store.Publish(domain, path)
			if err != nil {
				return err
			}
			log.Printf("router: seeded %s <- %s (sha256 %.12s)", domain, path, sha)
			continue
		}
		coord := &fleet.Coordinator{Store: store, Replicas: admins, StepTimeout: stepTimeout}
		report, err := coord.Publish(ctx, domain, path)
		if err != nil {
			return err
		}
		log.Printf("router: published %s -> %.12s across %d replicas", domain, report.SHA, len(report.Rolled))
	}
	return nil
}

func mustJSON(v any) string {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}
