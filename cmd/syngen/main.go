// Command syngen runs the end-to-end mining pipeline: build the simulation
// substrate for one data set, mine synonyms for every canonical string at
// the chosen thresholds, and print (or write) the expanded dictionary.
//
// Usage:
//
//	syngen [-dataset movies|cameras] [-ipc 4] [-icr 0.1] [-seed N]
//	       [-impressions N] [-show N] [-evidence] [-o file.tsv]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"websyn"
	"websyn/internal/eval"
)

func main() {
	var (
		dataset     = flag.String("dataset", "movies", "data set: movies or cameras")
		ipc         = flag.Int("ipc", 4, "IPC threshold β")
		icr         = flag.Float64("icr", 0.1, "ICR threshold γ")
		seed        = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		impressions = flag.Int("impressions", 0, "simulated impressions (0 = default)")
		show        = flag.Int("show", 10, "entities to print to stdout")
		evidence    = flag.Bool("evidence", false, "print per-candidate IPC/ICR evidence")
		classify    = flag.Bool("classify", false, "print the Figure 1 relation classification instead of plain synonyms")
		report      = flag.Bool("report", false, "print judged per-entity reports (oracle labels, evidence, misses)")
		out         = flag.String("o", "", "write full synonym TSV to this file")
	)
	flag.Parse()

	ds, err := parseDataset(*dataset)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building %s simulation...\n", ds)
	sim, err := websyn.NewSimulation(websyn.Options{
		Dataset: ds, Seed: *seed, Impressions: *impressions,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "substrate ready in %v (%d pages, %d log impressions)\n",
		time.Since(start).Round(time.Millisecond), sim.Corpus.Len(), sim.Log.TotalImpressions())

	results, err := sim.MineAll(websyn.MinerConfig{IPC: *ipc, ICR: *icr})
	if err != nil {
		log.Fatal(err)
	}

	hits, total := 0, 0
	for _, r := range results {
		if r.Hit() {
			hits++
		}
		total += len(r.Synonyms)
	}
	fmt.Fprintf(os.Stderr, "mined %d synonyms for %d/%d inputs (β=%d, γ=%g) in %v\n",
		total, hits, len(results), *ipc, *icr, time.Since(start).Round(time.Millisecond))

	if *report {
		reports, err := eval.BuildEntityReports(sim.Model, sim.Log, results, *ipc, *icr)
		if err != nil {
			log.Fatal(err)
		}
		for i, rep := range reports {
			if i >= *show {
				break
			}
			fmt.Print(eval.RenderEntityReport(rep))
		}
		rr := eval.Recall(reports)
		fmt.Fprintf(os.Stderr, "aggregate recall: %d/%d oracle synonyms recovered (%.1f%%)\n",
			rr.Recovered, rr.TruthSynonyms, rr.Recall*100)
		return
	}

	var miner *websyn.Miner
	if *classify {
		miner, err = sim.NewMiner(websyn.MinerConfig{IPC: *ipc, ICR: *icr})
		if err != nil {
			log.Fatal(err)
		}
	}

	for i, r := range results {
		if i >= *show {
			break
		}
		fmt.Printf("%s\n", r.Input)
		if *classify {
			classified, err := miner.Classify(r.Input, websyn.DefaultClassifyConfig())
			if err != nil {
				log.Fatal(err)
			}
			for _, c := range classified {
				fmt.Printf("  %-9s %-40s IPC=%2d ICR=%.2f BCR=%.2f\n",
					c.Relation, c.Candidate, c.IPC, c.ICR, c.BCR)
			}
			continue
		}
		if len(r.Synonyms) == 0 {
			fmt.Println("  (no synonyms)")
			continue
		}
		if *evidence {
			for _, ev := range r.Evidence {
				if !ev.Accepted {
					continue
				}
				fmt.Printf("  %-40s IPC=%2d ICR=%.2f clicks=%d/%d\n",
					ev.Candidate, ev.IPC, ev.ICR, ev.ClicksIn, ev.ClicksTotal)
			}
		} else {
			fmt.Printf("  %s\n", strings.Join(r.Synonyms, " | "))
		}
	}

	if *out != "" {
		if err := writeTSV(*out, results); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}

func parseDataset(s string) (websyn.Dataset, error) {
	switch strings.ToLower(s) {
	case "movies", "d1":
		return websyn.Movies, nil
	case "cameras", "d2":
		return websyn.Cameras, nil
	default:
		return 0, fmt.Errorf("unknown dataset %q (want movies or cameras)", s)
	}
}

func writeTSV(path string, results []*websyn.MineResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, r := range results {
		for _, ev := range r.Evidence {
			if !ev.Accepted {
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\n", r.Norm, ev.Candidate, ev.IPC, ev.ICR)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
