// Command loadgen replays a mixed query workload against a running
// matchd at a target QPS and writes a latency/error report.
//
// The workload is derived from a snapshot file — the same artifact the
// target server serves — so it mixes the three query classes the
// matcher distinguishes (exact dictionary hits, one-edit typos,
// concatenated span-fuzzy spans) plus background noise, on whatever
// dictionary is actually deployed:
//
//	loadgen -url http://127.0.0.1:8080 -snapshot movies.snap \
//	    -qps 200 -duration 10s -report load.json
//
// The report carries request counts, error counts and p50/p90/p95/p99
// latency. Two optional gates make it a CI smoke check: -fail-on-error
// exits non-zero on any transport error or non-200 response, and
// -max-p99 exits non-zero when the p99 latency exceeds the bound:
//
//	loadgen -url ... -snapshot ... -qps 50 -duration 5s \
//	    -report load.json -fail-on-error -max-p99 250ms
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"websyn"
	"websyn/internal/loadtest"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "target server base URL")
		snapshot    = flag.String("snapshot", "", "snapshot file to derive the workload from (required)")
		qps         = flag.Float64("qps", 200, "target request rate (0 = unpaced)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to run")
		concurrency = flag.Int("concurrency", 8, "worker count")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		seed        = flag.Uint64("seed", 1, "workload shuffle seed")
		reportPath  = flag.String("report", "", "write the JSON report to this file (default: stdout only)")
		failOnError = flag.Bool("fail-on-error", false, "exit non-zero on any transport error or non-200 response")
		maxP99      = flag.Duration("max-p99", 0, "exit non-zero when p99 latency exceeds this (0 = no bound)")
		minRequests = flag.Uint64("min-requests", 0, "exit non-zero when fewer requests complete (0 = no floor); catches a server that hangs mid-run without erroring")
	)
	flag.Parse()
	if *snapshot == "" {
		log.Fatal("loadgen: -snapshot is required (the workload is derived from it)")
	}

	snap, err := websyn.ReadSnapshotFile(*snapshot)
	if err != nil {
		log.Fatal(err)
	}
	w, err := loadtest.FromSnapshot(snap, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("workload: %d queries from %s (%s), targeting %s at %g qps for %v",
		len(w.Queries), *snapshot, snap.Dataset, *url, *qps, *duration)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := loadtest.Run(ctx, w, loadtest.Options{
		URL:         *url,
		QPS:         *qps,
		Duration:    *duration,
		Concurrency: *concurrency,
		Timeout:     *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *reportPath)
	}

	failed := false
	if *failOnError && rep.Failed() {
		log.Printf("FAIL: %d transport errors, %d non-200 responses", rep.Errors, rep.Non200)
		failed = true
	}
	if completed := rep.Requests - rep.Errors; *minRequests > 0 && completed < *minRequests {
		log.Printf("FAIL: only %d requests completed, floor is %d", completed, *minRequests)
		failed = true
	}
	if *maxP99 > 0 {
		// A latency bound over zero completed requests would vacuously
		// pass (empty percentiles are 0) — a dead target must not look
		// like a fast one.
		if rep.Requests == rep.Errors {
			log.Printf("FAIL: no request completed, p99 bound %v unmeasurable", *maxP99)
			failed = true
		} else if rep.Latency.P99 > float64(*maxP99)/float64(time.Millisecond) {
			log.Printf("FAIL: p99 %.2fms exceeds bound %v", rep.Latency.P99, *maxP99)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
