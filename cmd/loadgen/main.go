// Command loadgen replays a mixed query workload against a running
// matchd at a target QPS and writes a latency/error report.
//
// The workload is derived from snapshot files — the same artifacts the
// target server serves — so it mixes the three query classes the
// matcher distinguishes (exact dictionary hits, one-edit typos,
// concatenated span-fuzzy spans) plus background noise, on whatever
// dictionary is actually deployed. Snapshots carrying an attribute
// vocabulary additionally generate an `attributes` class that the
// runner sends at POST /v2/match (gate it with -require-class):
//
//	loadgen -url http://127.0.0.1:8080 -snapshot movies.snap \
//	    -qps 200 -duration 10s -report load.json
//
// Against a multi-domain matchd, repeat -snapshot with name=path pairs;
// the workload then routes each domain's queries at it explicitly and
// flips a fraction into federated fan-outs (domains: ["*"]), and the
// report breaks latency down per domain:
//
//	loadgen -url ... -snapshot movies=movies.snap -snapshot cameras=cameras.snap
//
// The report carries request counts, error counts, p50/p90/p95/p99
// latency, and per-class (plus per-domain, when routed) percentile
// breakdowns. Optional gates make it a CI smoke check: -fail-on-error
// exits non-zero on any transport error or non-200 response, and
// -max-p99 exits non-zero when the overall p99 — or, in a mixed-domain
// run, any single domain's p99 — exceeds the bound:
//
//	loadgen -url ... -snapshot ... -qps 50 -duration 5s \
//	    -report load.json -fail-on-error -max-p99 250ms
//
// -concurrency accepts a comma-separated sweep (e.g. 1,4,16,64): each
// level runs the full -duration back to back, the JSON report becomes
// {"levels": [...]} with one entry per level, -summary-md renders one
// scaling table (throughput and p99 per level), and every gate applies
// to every level individually:
//
//	loadgen -url ... -snapshot ... -concurrency 1,4,16,64 -duration 5s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"websyn"
	"websyn/internal/loadtest"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var snapshots, requireClasses multiFlag
	flag.Var(&snapshots, "snapshot", "snapshot to derive the workload from: a path, or name=path (repeatable, mixed-domain); required")
	flag.Var(&requireClasses, "require-class", "exit non-zero unless this query class completed at least one request (repeatable); use `attributes` to gate the /v2 rewrite surface")
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "target server base URL")
		qps         = flag.Float64("qps", 200, "target request rate (0 = unpaced)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to run")
		concurrency = flag.String("concurrency", "8", "worker count, or a comma-separated sweep (e.g. 1,4,16,64): each level runs the full -duration back to back")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		seed        = flag.Uint64("seed", 1, "workload shuffle seed")
		reportPath  = flag.String("report", "", "write the JSON report to this file (default: stdout only)")
		failOnError = flag.Bool("fail-on-error", false, "exit non-zero on any transport error or non-200 response")
		maxP99      = flag.Duration("max-p99", 0, "exit non-zero when the overall or any per-domain p99 latency exceeds this (0 = no bound)")
		minRequests = flag.Uint64("min-requests", 0, "exit non-zero when fewer requests complete (0 = no floor); catches a server that hangs mid-run without erroring")
		summaryMD   = flag.String("summary-md", "", "append a markdown summary table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if len(snapshots) == 0 {
		log.Fatal("loadgen: -snapshot is required (the workload is derived from it)")
	}

	levels, err := parseConcurrency(*concurrency)
	if err != nil {
		log.Fatal(err)
	}

	w, desc, err := buildWorkload(snapshots, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("workload: %d queries from %s, targeting %s at %g qps for %v",
		len(w.Queries), desc, *url, *qps, *duration)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	reps := make([]*loadtest.Report, 0, len(levels))
	for _, c := range levels {
		if len(levels) > 1 {
			log.Printf("sweep: %d workers for %v", c, *duration)
		}
		rep, err := loadtest.Run(ctx, w, loadtest.Options{
			URL:         *url,
			QPS:         *qps,
			Duration:    *duration,
			Concurrency: c,
			Timeout:     *timeout,
		})
		if err != nil {
			log.Fatal(err)
		}
		reps = append(reps, rep)
		if ctx.Err() != nil {
			// Interrupted mid-sweep: report what completed, skip the rest.
			break
		}
	}

	// A single level prints the report object itself — byte-identical to
	// every earlier loadgen — while a sweep wraps one report per level.
	var out []byte
	if len(reps) == 1 {
		out, err = json.MarshalIndent(reps[0], "", "  ")
	} else {
		out, err = json.MarshalIndent(struct {
			Levels []*loadtest.Report `json:"levels"`
		}{reps}, "", "  ")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
	for _, rep := range reps {
		label := ""
		if len(reps) > 1 {
			label = fmt.Sprintf("concurrency %d: ", rep.Concurrency)
		}
		for _, line := range breakdownLines("class", rep.LatencyByClass) {
			log.Print(label + line)
		}
		for _, line := range breakdownLines("domain", rep.LatencyByDomain) {
			log.Print(label + line)
		}
	}
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *reportPath)
	}
	if *summaryMD != "" {
		f, err := os.OpenFile(*summaryMD, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		md := sweepMarkdown(reps)
		if len(reps) == 1 {
			md = summaryMarkdown(reps[0])
		}
		if _, err := f.WriteString(md); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("appended summary to %s", *summaryMD)
	}

	// Every gate applies per level: a sweep fails when any single level
	// fails, and the FAIL lines name the level.
	failed := false
	for _, rep := range reps {
		label := ""
		if len(reps) > 1 {
			label = fmt.Sprintf("concurrency %d: ", rep.Concurrency)
		}
		if gateReport(rep, w, label, requireClasses, *failOnError, *minRequests, *maxP99) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parseConcurrency expands the -concurrency flag into worker counts:
// one integer, or a comma-separated sweep.
func parseConcurrency(v string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("loadgen: bad -concurrency level %q (want a positive integer)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: -concurrency %q names no levels", v)
	}
	return out, nil
}

// gateReport applies the CI gates to one level's report, logging each
// violation with the level's label. Returns true when any gate failed.
func gateReport(rep *loadtest.Report, w *loadtest.Workload, label string, requireClasses []string, failOnError bool, minRequests uint64, maxP99 time.Duration) bool {
	failed := false
	if failOnError && rep.Failed() {
		log.Printf("%sFAIL: %d transport errors, %d non-200 responses", label, rep.Errors, rep.Non200)
		failed = true
	}
	if completed := rep.Requests - rep.Errors; minRequests > 0 && completed < minRequests {
		log.Printf("%sFAIL: only %d requests completed, floor is %d", label, completed, minRequests)
		failed = true
	}
	// A workload that silently stopped generating a class (e.g. a
	// vocabulary-less snapshot producing no attributes queries) would
	// otherwise pass every latency gate while covering nothing.
	for _, c := range requireClasses {
		if rep.ByClass[c] == 0 {
			log.Printf("%sFAIL: class %s completed no requests", label, c)
			failed = true
		}
	}
	if maxP99 > 0 {
		// A latency bound over zero completed requests would vacuously
		// pass (empty percentiles are 0) — a dead target must not look
		// like a fast one.
		bound := float64(maxP99) / float64(time.Millisecond)
		if rep.Requests == rep.Errors {
			log.Printf("%sFAIL: no request completed, p99 bound %v unmeasurable", label, maxP99)
			failed = true
		} else if rep.Latency.P99 > bound {
			log.Printf("%sFAIL: p99 %.2fms exceeds bound %v", label, rep.Latency.P99, maxP99)
			failed = true
		}
		// A mixed-domain run also gates every domain individually, so a
		// slow vertical cannot hide behind a fast one's volume — and a
		// domain whose requests all failed has no latency samples at
		// all, which must read as a dead vertical, not a fast one.
		for _, d := range sortedKeys(workloadDomains(w)) {
			p, ok := rep.LatencyByDomain[d]
			if !ok {
				log.Printf("%sFAIL: domain %s completed no requests, p99 bound %v unmeasurable", label, d, maxP99)
				failed = true
				continue
			}
			if p.P99 > bound {
				log.Printf("%sFAIL: domain %s p99 %.2fms exceeds bound %v", label, d, p.P99, maxP99)
				failed = true
			}
		}
	}
	return failed
}

// buildWorkload loads the snapshot flags into a workload: one bare path
// is the legacy domainless workload, name=path pairs build the
// mixed-domain one. The returned description names the sources for the
// startup log line.
func buildWorkload(specs []string, seed uint64) (*loadtest.Workload, string, error) {
	named := make(map[string]*websyn.Snapshot)
	var bare []string
	for _, spec := range specs {
		if name, path, ok := strings.Cut(spec, "="); ok {
			name, path = strings.TrimSpace(name), strings.TrimSpace(path)
			if name == "" || path == "" {
				return nil, "", fmt.Errorf("loadgen: bad snapshot spec %q (want name=path)", spec)
			}
			if _, dup := named[name]; dup {
				return nil, "", fmt.Errorf("loadgen: domain %q given twice", name)
			}
			snap, err := websyn.ReadSnapshotFile(path)
			if err != nil {
				return nil, "", err
			}
			named[name] = snap
		} else {
			bare = append(bare, spec)
		}
	}
	if len(bare) > 0 {
		if len(bare) > 1 || len(named) > 0 {
			return nil, "", fmt.Errorf("loadgen: multiple snapshots need domain names (-snapshot name=path)")
		}
		snap, err := websyn.ReadSnapshotFile(bare[0])
		if err != nil {
			return nil, "", err
		}
		w, err := loadtest.FromSnapshot(snap, seed)
		return w, fmt.Sprintf("%s (%s)", bare[0], snap.Dataset), err
	}
	w, err := loadtest.FromSnapshots(named, seed)
	if err != nil {
		return nil, "", err
	}
	return w, fmt.Sprintf("%d domains (%s)", len(named), strings.Join(sortedKeys(named), ", ")), nil
}

// workloadDomains returns the set of domains the workload routes at
// (including the federated "*" bucket); empty for legacy domainless
// workloads.
func workloadDomains(w *loadtest.Workload) map[string]bool {
	out := map[string]bool{}
	for _, q := range w.Queries {
		if q.Domain != "" {
			out[q.Domain] = true
		}
	}
	return out
}

// breakdownLines renders a percentile breakdown for the log, keys
// sorted for a stable read.
func breakdownLines(kind string, m map[string]loadtest.Percentiles) []string {
	out := make([]string, 0, len(m))
	for _, k := range sortedKeys(m) {
		p := m[k]
		out = append(out, fmt.Sprintf("%-6s %-12s p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  max %8.2fms",
			kind, k, p.P50, p.P95, p.P99, p.Max))
	}
	return out
}

// summaryMarkdown renders the report as a GitHub job-summary fragment:
// a headline table plus per-class and per-domain latency rows.
func summaryMarkdown(rep *loadtest.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Load report — %s\n\n", rep.URL)
	fmt.Fprintf(&b, "| Requests | Errors | Non-200 | QPS | p50 | p95 | p99 | max |\n")
	fmt.Fprintf(&b, "|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(&b, "| %d | %d | %d | %.0f | %.2fms | %.2fms | %.2fms | %.2fms |\n\n",
		rep.Requests, rep.Errors, rep.Non200, rep.AchievedQPS,
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.Max)
	writeBreakdown := func(title string, counts map[string]uint64, lats map[string]loadtest.Percentiles) {
		if len(lats) == 0 {
			return
		}
		fmt.Fprintf(&b, "| %s | requests | p50 | p95 | p99 | max |\n", title)
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|\n")
		for _, k := range sortedKeys(lats) {
			p := lats[k]
			fmt.Fprintf(&b, "| %s | %d | %.2fms | %.2fms | %.2fms | %.2fms |\n",
				k, counts[k], p.P50, p.P95, p.P99, p.Max)
		}
		b.WriteString("\n")
	}
	writeBreakdown("Class", rep.ByClass, rep.LatencyByClass)
	writeBreakdown("Domain", rep.ByDomain, rep.LatencyByDomain)
	return b.String()
}

// sweepMarkdown renders a concurrency sweep as one table: throughput
// and tail latency per worker level, the scaling curve at a glance.
func sweepMarkdown(reps []*loadtest.Report) string {
	var b strings.Builder
	if len(reps) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "### Load sweep — %s\n\n", reps[0].URL)
	fmt.Fprintf(&b, "| Concurrency | Requests | Errors | QPS | p50 | p95 | p99 | max |\n")
	fmt.Fprintf(&b, "|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, rep := range reps {
		fmt.Fprintf(&b, "| %d | %d | %d | %.0f | %.2fms | %.2fms | %.2fms | %.2fms |\n",
			rep.Concurrency, rep.Requests, rep.Errors+rep.Non200, rep.AchievedQPS,
			rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.Max)
	}
	b.WriteString("\n")
	return b.String()
}

// sortedKeys returns a map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
