// Command vetsuite runs websyn's custom static analyzers (package
// internal/analysis) over the repo and fails when any invariant is
// violated. It is the CI `analyze` gate:
//
//	go run ./cmd/vetsuite ./...
//
// Flags:
//
//	-list    print the analyzers and exit
//	-only a  run a single analyzer by name (repeatable, comma-separated)
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"websyn/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	listFlag := flag.Bool("list", false, "print the analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	suite := analysis.Suite()
	if *listFlag {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *onlyFlag != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*onlyFlag, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "vetsuite: unknown analyzer %q (see -list)\n", name)
			return 2
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetsuite: %v\n", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range suite {
			diags = append(diags, analysis.Run(a, pkg)...)
		}
		diags = append(diags, analysis.MalformedIgnores(pkg)...)
		for _, d := range diags {
			fmt.Println(d)
		}
		findings += len(diags)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "vetsuite: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
