// Command loggen materializes the simulation's two data sets to disk:
// Search Data A, Click Data L, and the impressions sidecar, in TSV or the
// compact binary format. cmd/syngen and external tools can then run from
// files without rebuilding the simulation.
//
// Usage:
//
//	loggen [-dataset movies|cameras] [-seed N] [-impressions N]
//	       [-format tsv|bin] [-dir out/]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"websyn"
	"websyn/internal/clicklog"
	"websyn/internal/logio"
	"websyn/internal/search"
)

func main() {
	var (
		dataset     = flag.String("dataset", "movies", "data set: movies or cameras")
		seed        = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		impressions = flag.Int("impressions", 0, "simulated impressions (0 = default)")
		format      = flag.String("format", "tsv", "output format: tsv or bin")
		dir         = flag.String("dir", "logs", "output directory")
	)
	flag.Parse()

	var ds websyn.Dataset
	switch strings.ToLower(*dataset) {
	case "movies", "d1":
		ds = websyn.Movies
	case "cameras", "d2":
		ds = websyn.Cameras
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	sim, err := websyn.NewSimulation(websyn.Options{
		Dataset: ds, Seed: *seed, Impressions: *impressions,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}

	ext := ".tsv"
	if *format == "bin" {
		ext = ".bin"
	}
	searchPath := filepath.Join(*dir, "search"+ext)
	clicksPath := filepath.Join(*dir, "clicks"+ext)
	imprPath := filepath.Join(*dir, "impressions.tsv")

	if err := writeFile(searchPath, func(f *os.File) error {
		tuples := sim.Search.Tuples()
		if *format == "bin" {
			return logio.WriteSearchBinary(f, tuples)
		}
		return logio.WriteSearchTSV(f, tuples)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(clicksPath, func(f *os.File) error {
		clicks := sim.Log.Flatten()
		if *format == "bin" {
			return logio.WriteClicksBinary(f, clicks)
		}
		return logio.WriteClicksTSV(f, clicks)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(imprPath, func(f *os.File) error {
		return logio.WriteImpressionsTSV(f, sim.Log)
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrote %s (%d tuples), %s (%d clicks), %s (%d queries)\n",
		searchPath, len(sim.Search.Tuples()),
		clicksPath, len(sim.Log.Flatten()),
		imprPath, len(sim.Log.Queries()))

	// Round-trip sanity check so a corrupted write fails loudly here, not
	// in a downstream consumer.
	if err := verify(searchPath, clicksPath, *format, sim); err != nil {
		log.Fatal(err)
	}
	fmt.Println("round-trip verification OK")
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func verify(searchPath, clicksPath, format string, sim *websyn.Simulation) error {
	sf, err := os.Open(searchPath)
	if err != nil {
		return err
	}
	defer sf.Close()
	var tuples []search.Tuple
	if format == "bin" {
		tuples, err = logio.ReadSearchBinary(sf)
	} else {
		tuples, err = logio.ReadSearchTSV(sf)
	}
	if err != nil {
		return err
	}
	if len(tuples) != len(sim.Search.Tuples()) {
		return fmt.Errorf("search round trip lost tuples: %d != %d",
			len(tuples), len(sim.Search.Tuples()))
	}

	cf, err := os.Open(clicksPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	var clicks []clicklog.Click
	if format == "bin" {
		clicks, err = logio.ReadClicksBinary(cf)
	} else {
		clicks, err = logio.ReadClicksTSV(cf)
	}
	if err != nil {
		return err
	}
	if len(clicks) != len(sim.Log.Flatten()) {
		return fmt.Errorf("clicks round trip lost tuples: %d != %d",
			len(clicks), len(sim.Log.Flatten()))
	}
	return nil
}
