// Command matchd serves the mined synonym dictionary over HTTP: the online
// half of the paper's scenario, where an incoming Web query like
// "indy 4 near san fran" must be fuzzily matched to structured data.
//
// Endpoints:
//
//	GET /match?q=<query>   — segment the query against the dictionary
//	GET /synonyms?u=<name> — list the mined synonyms of a canonical string
//	GET /healthz           — liveness
//
// Usage:
//
//	matchd [-addr :8080] [-dataset movies|cameras] [-ipc 4] [-icr 0.1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"websyn"
	"websyn/internal/textnorm"
)

// server bundles the immutable matching state.
type server struct {
	sim   *websyn.Simulation
	dict  *websyn.MatchDictionary
	fuzzy *websyn.FuzzyIndex
	syns  map[string][]string // canonical norm -> mined synonyms
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataset = flag.String("dataset", "movies", "data set: movies or cameras")
		ipc     = flag.Int("ipc", 4, "IPC threshold β")
		icr     = flag.Float64("icr", 0.1, "ICR threshold γ")
		seed    = flag.Uint64("seed", 0, "simulation seed (0 = default)")
	)
	flag.Parse()

	var ds websyn.Dataset
	switch strings.ToLower(*dataset) {
	case "movies", "d1":
		ds = websyn.Movies
	case "cameras", "d2":
		ds = websyn.Cameras
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	start := time.Now()
	log.Printf("building %v simulation and mining dictionary...", ds)
	sim, err := websyn.NewSimulation(websyn.Options{Dataset: ds, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.MineAll(websyn.MinerConfig{IPC: *ipc, ICR: *icr})
	if err != nil {
		log.Fatal(err)
	}
	s := &server{
		sim:  sim,
		dict: sim.BuildDictionary(results),
		syns: make(map[string][]string, len(results)),
	}
	s.fuzzy = s.dict.NewFuzzyIndex(0.55)
	for _, r := range results {
		s.syns[r.Norm] = r.Synonyms
	}
	log.Printf("dictionary ready: %d entries in %v", s.dict.Len(), time.Since(start).Round(time.Millisecond))

	mux := http.NewServeMux()
	mux.HandleFunc("GET /match", s.handleMatch)
	mux.HandleFunc("GET /fuzzy", s.handleFuzzy)
	mux.HandleFunc("GET /synonyms", s.handleSynonyms)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	log.Printf("listening on %s", *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

// matchResponse is the JSON shape of /match.
type matchResponse struct {
	Query     string        `json:"query"`
	Matches   []matchedSpan `json:"matches"`
	Remainder string        `json:"remainder"`
}

type matchedSpan struct {
	Canonical string  `json:"canonical"`
	EntityID  int     `json:"entity_id"`
	Span      string  `json:"span"`
	Score     float64 `json:"score"`
	Source    string  `json:"source"`
	Corrected bool    `json:"corrected,omitempty"`
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	seg := s.dict.Segment(q)
	resp := matchResponse{Query: seg.Query, Remainder: seg.Remainder}
	for _, m := range seg.Matches {
		ent := s.sim.Catalog.ByID(m.EntityID)
		if ent == nil {
			continue
		}
		resp.Matches = append(resp.Matches, matchedSpan{
			Canonical: ent.Canonical,
			EntityID:  m.EntityID,
			Span:      m.Text,
			Score:     m.Score,
			Source:    m.Source,
			Corrected: m.Corrected,
		})
	}
	writeJSON(w, resp)
}

// fuzzyResponse is the JSON shape of /fuzzy.
type fuzzyResponse struct {
	Query string     `json:"query"`
	Hits  []fuzzyHit `json:"hits"`
}

type fuzzyHit struct {
	Text       string  `json:"text"`
	Similarity float64 `json:"similarity"`
	Canonical  string  `json:"canonical"`
	EntityID   int     `json:"entity_id"`
}

func (s *server) handleFuzzy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	resp := fuzzyResponse{Query: q}
	for _, h := range s.fuzzy.Lookup(q, 5) {
		if len(h.Entries) == 0 {
			continue
		}
		ent := s.sim.Catalog.ByID(h.Entries[0].EntityID)
		if ent == nil {
			continue
		}
		resp.Hits = append(resp.Hits, fuzzyHit{
			Text:       h.Text,
			Similarity: h.Similarity,
			Canonical:  ent.Canonical,
			EntityID:   ent.ID,
		})
	}
	writeJSON(w, resp)
}

// synonymsResponse is the JSON shape of /synonyms.
type synonymsResponse struct {
	Input    string   `json:"input"`
	Synonyms []string `json:"synonyms"`
}

func (s *server) handleSynonyms(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("u")
	if u == "" {
		http.Error(w, "missing u parameter", http.StatusBadRequest)
		return
	}
	ent := s.sim.Catalog.ByNorm(textnorm.Normalize(u))
	if ent == nil {
		http.Error(w, "unknown canonical string", http.StatusNotFound)
		return
	}
	writeJSON(w, synonymsResponse{Input: ent.Canonical, Synonyms: s.syns[ent.Norm()]})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
