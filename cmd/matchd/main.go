// Command matchd serves the mined synonym dictionary over HTTP: the online
// half of the paper's scenario, where an incoming Web query like
// "indy 4 near san fran" must be fuzzily matched to structured data.
//
// Endpoints:
//
//	POST /v1/match          — unified match API: single + batch, span-level
//	                          fuzzy matching, explain traces (docs/API.md)
//	GET  /match?q=<query>   — legacy: segment the query against the dictionary
//	POST /match/batch       — legacy: segment many queries in one request
//	GET  /fuzzy?q=<query>   — legacy: whole-string fuzzy lookup
//	GET  /synonyms?u=<name> — list the mined synonyms of a canonical string
//	GET  /statsz            — cache, dictionary and latency stats
//	GET  /healthz           — liveness
//
// The expensive part — simulating the logs and mining the dictionary — is
// offline work. Production startup loads a prebuilt snapshot (see
// cmd/dictbuild) and is ready in milliseconds:
//
//	matchd -snapshot dict.snap
//
// Without -snapshot, matchd mines at startup (slow, for development):
//
//	matchd [-dataset movies|cameras|software] [-ipc 4] [-icr 0.1] [-seed N]
//
// Mine-at-startup can also persist its work for next time and exit:
//
//	matchd -dataset movies -write-snapshot dict.snap
//
// Serving knobs: [-addr :8080] [-cache 4096] [-batch-workers N]
// [-max-batch 1024] [-shards N] [-fuzzy-limit 5] [-min-sim 0.55]
// [-drain-timeout 15s]
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests (large batches included) for up to -drain-timeout
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"websyn"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		snapshotPath  = flag.String("snapshot", "", "start from this snapshot file instead of mining")
		writeSnapshot = flag.String("write-snapshot", "", "mine, write a snapshot to this path, and exit")
		dataset       = flag.String("dataset", "movies", "data set to mine when not using -snapshot: movies, cameras or software")
		ipc           = flag.Int("ipc", 4, "IPC threshold β (mining)")
		icr           = flag.Float64("icr", 0.1, "ICR threshold γ (mining)")
		seed          = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		cacheSize     = flag.Int("cache", 0, "request-cache capacity in entries (0 = default 4096, negative = disabled)")
		batchWorkers  = flag.Int("batch-workers", 0, "worker-pool size for batch requests (0 = GOMAXPROCS)")
		maxBatch      = flag.Int("max-batch", 0, "max queries per batch request (0 = default 1024)")
		shards        = flag.Int("shards", 0, "fuzzy-index shard count (0 = GOMAXPROCS)")
		fuzzyLimit    = flag.Int("fuzzy-limit", 5, "max hits returned by /fuzzy")
		minSim        = flag.Float64("min-sim", 0, "fuzzy similarity threshold override (0 = snapshot's value)")
		drainTimeout  = flag.Duration("drain-timeout", 15*time.Second, "how long to drain in-flight requests on shutdown")
	)
	flag.Parse()

	var (
		snap *websyn.Snapshot
		err  error
	)
	start := time.Now()
	if *snapshotPath != "" {
		snap, err = websyn.ReadSnapshotFile(*snapshotPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded snapshot %s (%s, %d dictionary entries) in %v",
			*snapshotPath, snap.Dataset, snap.Dict.Len(), time.Since(start).Round(time.Millisecond))
	} else {
		snap, err = mineSnapshot(*dataset, *ipc, *icr, *seed)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mined %s dictionary: %d entries in %v",
			snap.Dataset, snap.Dict.Len(), time.Since(start).Round(time.Millisecond))
	}

	if *writeSnapshot != "" {
		if err := snap.WriteFile(*writeSnapshot); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote snapshot %s", *writeSnapshot)
		return
	}

	s := websyn.NewMatchServer(snap, websyn.ServeConfig{
		CacheSize:    *cacheSize,
		BatchWorkers: *batchWorkers,
		MaxBatch:     *maxBatch,
		FuzzyShards:  *shards,
		FuzzyLimit:   *fuzzyLimit,
		MinSim:       *minSim,
	})
	log.Printf("serving ready in %v, listening on %s", time.Since(start).Round(time.Millisecond), *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      s.Handler(),
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections and
	// let in-flight requests (large batches included) drain before exit.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Printf("shutdown signal received, draining for up to %v", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: %v", err)
		}
		log.Print("shutdown complete")
	}
}

// mineSnapshot runs the offline pipeline in-process: simulation, miner,
// dictionary compilation.
func mineSnapshot(dataset string, ipc int, icr float64, seed uint64) (*websyn.Snapshot, error) {
	ds, err := websyn.ParseDataset(dataset)
	if err != nil {
		return nil, err
	}
	log.Printf("building %v simulation and mining dictionary (use -snapshot for fast startup)...", ds)
	return websyn.MineSnapshot(ds, websyn.MinerConfig{IPC: ipc, ICR: icr}, seed, 0)
}
