// Command matchd serves the mined synonym dictionary over HTTP: the online
// half of the paper's scenario, where an incoming Web query like
// "indy 4 near san fran" must be fuzzily matched to structured data.
//
// Endpoints:
//
//	POST /v1/match          — unified match API: single + batch, span-level
//	                          fuzzy matching, explain traces, and (multi-
//	                          domain mode) domain routing and federated
//	                          fan-out (docs/API.md)
//	GET  /match?q=<query>   — legacy: segment the query against the dictionary
//	POST /match/batch       — legacy: segment many queries in one request
//	GET  /fuzzy?q=<query>   — legacy: whole-string fuzzy lookup
//	GET  /synonyms?u=<name> — list the mined synonyms of a canonical string
//	GET  /statsz            — cache, dictionary and latency stats
//	GET  /healthz           — liveness
//	GET  /admin/snapshot    — live dictionary generation(s) and provenance
//	POST /admin/reload      — hot-swap a snapshot now (-snapshot only)
//	GET  /admin/reload/status — reload watcher counters (-snapshot only)
//
// The expensive part — simulating the logs and mining the dictionary — is
// offline work. Production startup loads prebuilt snapshots (see
// cmd/dictbuild) and is ready in milliseconds.
//
// Single-domain (legacy) mode — one snapshot, byte-identical to every
// earlier matchd:
//
//	matchd -snapshot dict.snap
//
// Multi-domain mode — one process serving several verticals, each
// hot-reloadable on its own. Repeat -snapshot with name=path pairs, or
// point -manifest at a file of such lines:
//
//	matchd -snapshot movies=movies.snap -snapshot cameras=cameras.snap
//	matchd -manifest domains.manifest [-default-domain movies]
//
// In multi-domain mode /v1/match routes on the request's "domain" field,
// fans out across "domains" (["*"] = all), and federates domainless
// queries across every vertical; legacy endpoints serve the default
// domain (first registered unless -default-domain says otherwise), or
// ?domain=<name>.
//
// Without -snapshot, matchd mines at startup (slow, for development):
//
//	matchd [-dataset movies|cameras|software] [-ipc 4] [-icr 0.1] [-seed N]
//
// Mine-at-startup can also persist its work for next time and exit:
//
//	matchd -dataset movies -write-snapshot dict.snap
//
// Serving knobs: [-addr :8080] [-cache 4096] [-cache-shards N]
// [-batch-workers N] [-max-batch 1024] [-shards N] [-fuzzy-limit 5]
// [-min-sim 0.55] [-drain-timeout 15s] [-mmap] [-pprof]
//
// -pprof mounts /debug/pprof/ with mutex and block profiling on, the
// lock-contention debugging surface (docs/PERFORMANCE.md).
//
// -mmap memory-maps each snapshot file instead of decoding it onto the
// heap: the fuzzy posting slabs are served straight from the page
// cache, boot skips the posting decode, and concurrent matchd processes
// on one host share the snapshot pages (docs/PERFORMANCE.md).
//
// Hot reload (requires -snapshot): [-reload-interval 0] polls every
// snapshot file and swaps new dictionary generations in atomically —
// per domain, so one vertical's publish never touches another's serving
// state. POST /admin/reload (multi-domain: ?domain=<name>) triggers a
// check immediately, GET /admin/snapshot reports the live generation(s),
// and [-canary "q1,q2"] (multi-domain: "domain:q1,domain:q2") adds
// validation queries a candidate snapshot must match before it may
// serve.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests (large batches included) for up to -drain-timeout
// before exiting. The reload watchers stop with the same signal, and a
// swap that races the drain only replaces in-memory state — it can
// never resurrect the closed listener.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"websyn"
	"websyn/internal/fleet"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// domainSpec is one name=path snapshot assignment.
type domainSpec struct {
	name, path string
}

func main() {
	var snapshots multiFlag
	flag.Var(&snapshots, "snapshot", "snapshot to serve: a path (single-domain), or name=path (repeatable, multi-domain)")
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		manifest       = flag.String("manifest", "", "file of name=path snapshot lines (multi-domain boot; '#' comments)")
		defaultDomain  = flag.String("default-domain", "", "domain legacy endpoints route to (default: first registered)")
		writeSnapshot  = flag.String("write-snapshot", "", "mine, write a snapshot to this path, and exit")
		dataset        = flag.String("dataset", "movies", "data set to mine when not using -snapshot: movies, cameras or software")
		ipc            = flag.Int("ipc", 4, "IPC threshold β (mining)")
		icr            = flag.Float64("icr", 0.1, "ICR threshold γ (mining)")
		seed           = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		cacheSize      = flag.Int("cache", 0, "request-cache capacity in entries, per domain (0 = default 4096, negative = disabled)")
		cacheShards    = flag.Int("cache-shards", 0, "request-cache lock stripes, rounded down to a power of two (0 = one per CPU, min 8 entries per shard)")
		batchWorkers   = flag.Int("batch-workers", 0, "worker-pool size for batch requests (0 = GOMAXPROCS)")
		maxBatch       = flag.Int("max-batch", 0, "max queries per batch request (0 = default 1024)")
		shards         = flag.Int("shards", 0, "fuzzy-index shard count (0 = GOMAXPROCS)")
		fuzzyLimit     = flag.Int("fuzzy-limit", 5, "max hits returned by /fuzzy")
		minSim         = flag.Float64("min-sim", 0, "fuzzy similarity threshold override (0 = snapshot's value)")
		useMmap        = flag.Bool("mmap", false, "memory-map snapshot files: near-instant boot, fuzzy postings served from the page cache (requires -snapshot)")
		drainTimeout   = flag.Duration("drain-timeout", 15*time.Second, "how long to drain in-flight requests on shutdown")
		reloadInterval = flag.Duration("reload-interval", 0, "poll snapshot files for changes this often and hot-swap (0 = admin-triggered reloads only; requires -snapshot)")
		canary         = flag.String("canary", "", "comma-separated queries a new snapshot must match before a hot swap (multi-domain: domain:query entries)")
		fleetAddr      = flag.String("fleet-addr", "", "also serve the fleet wire protocol on this address (replica mode, see cmd/router)")
		blobDir        = flag.String("blob-dir", "", "content-addressed blob directory to pull snapshots from (requires -snapshot; see cmd/router -publish)")
		pullInterval   = flag.Duration("pull-interval", 2*time.Second, "blob-store pointer poll period with -blob-dir (0 = POST /admin/pull only)")
		pprofEnable    = flag.Bool("pprof", false, "mount /debug/pprof/ with mutex and block profiling enabled (exposes process internals; keep off public listeners)")
	)
	flag.Parse()

	specs, err := resolveSpecs(snapshots, *manifest)
	if err != nil {
		log.Fatal(err)
	}

	cfg := websyn.ServeConfig{
		CacheSize:    *cacheSize,
		CacheShards:  *cacheShards,
		BatchWorkers: *batchWorkers,
		MaxBatch:     *maxBatch,
		FuzzyShards:  *shards,
		FuzzyLimit:   *fuzzyLimit,
		MinSim:       *minSim,
	}

	// Fail flag misuse fast, before the (potentially minutes-long)
	// mine-at-startup path runs: hot reload watches snapshot files, so
	// both knobs are meaningless without one.
	multiDomain := len(specs) > 1 || (len(specs) == 1 && specs[0].name != "")
	if len(specs) == 0 {
		if *reloadInterval > 0 {
			log.Fatal("-reload-interval requires -snapshot (mined-at-startup state has no file to watch)")
		}
		if *canary != "" {
			log.Fatal("-canary requires -snapshot (canaries gate snapshot hot swaps)")
		}
		if *useMmap {
			log.Fatal("-mmap requires -snapshot (mined-at-startup state has no file to map)")
		}
	}
	if *defaultDomain != "" && !multiDomain {
		log.Fatal("-default-domain requires multi-domain -snapshot name=path flags")
	}
	if *blobDir != "" && len(specs) == 0 {
		log.Fatal("-blob-dir requires -snapshot (pulled snapshots land in the watched snapshot files)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var store *fleet.Store
	if *blobDir != "" {
		store = &fleet.Store{Dir: *blobDir}
	}

	start := time.Now()
	var mux *http.ServeMux
	var backend fleet.Backend
	switch {
	case multiDomain:
		if *writeSnapshot != "" {
			log.Fatal("-write-snapshot is a mine-at-startup flag; build per-domain snapshots with cmd/dictbuild")
		}
		mux, backend = bootRegistry(ctx, specs, cfg, *defaultDomain, *reloadInterval, *canary, *useMmap, store, *pullInterval)
	case len(specs) == 1:
		if *writeSnapshot != "" {
			// Load + rewrite: upgrades an old-format snapshot file to the
			// current layout version without serving.
			snap, _, err := websyn.ReadSnapshotFileHashed(specs[0].path)
			if err != nil {
				log.Fatal(err)
			}
			if err := snap.WriteFile(*writeSnapshot); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote snapshot %s", *writeSnapshot)
			return
		}
		mux, backend = bootSingle(ctx, specs[0].path, cfg, *reloadInterval, *canary, *useMmap, store, *pullInterval)
	default:
		snap, err := mineSnapshot(*dataset, *ipc, *icr, *seed)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mined %s dictionary: %d entries in %v",
			snap.Dataset, snap.Dict.Len(), time.Since(start).Round(time.Millisecond))
		if *writeSnapshot != "" {
			if err := snap.WriteFile(*writeSnapshot); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote snapshot %s", *writeSnapshot)
			return
		}
		s := websyn.NewMatchServer(snap, cfg)
		mux = http.NewServeMux()
		s.Mount(mux)
		backend = s
	}

	if *pprofEnable {
		websyn.MountProfiling(mux)
		log.Printf("pprof: /debug/pprof/ mounted with mutex and block profiling")
	}

	// Replica mode: the same backend answers the compact wire protocol
	// for a fleet router, next to the HTTP listener.
	if *fleetAddr != "" {
		ln, err := net.Listen("tcp", *fleetAddr)
		if err != nil {
			log.Fatal(err)
		}
		fsrv := fleet.NewServer(backend, nil)
		go func() {
			if err := fsrv.Serve(ctx, ln); err != nil {
				log.Printf("fleet: %v", err)
			}
		}()
		log.Printf("fleet: wire protocol listening on %s", ln.Addr())
	}

	log.Printf("serving ready in %v, listening on %s", time.Since(start).Round(time.Millisecond), *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Printf("shutdown signal received, draining for up to %v", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		// Shutdown does not wait for the reload watchers: a reload still
		// building when the drain ends is abandoned with the process
		// (it only ever swaps in-memory state, never writes files), so
		// -drain-timeout genuinely bounds shutdown.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: %v", err)
		}
		log.Print("shutdown complete")
	}
}

// resolveSpecs merges -snapshot flags and the -manifest file into one
// spec list. Bare paths (no '=') select legacy single-domain mode and
// cannot be mixed with named domains.
func resolveSpecs(flags multiFlag, manifest string) ([]domainSpec, error) {
	var specs []domainSpec
	bare := 0
	addFlag := func(v, origin string) error {
		if name, path, ok := strings.Cut(v, "="); ok {
			name, path = strings.TrimSpace(name), strings.TrimSpace(path)
			if name == "" || path == "" {
				return fmt.Errorf("matchd: bad snapshot spec %q in %s (want name=path)", v, origin)
			}
			specs = append(specs, domainSpec{name, path})
			return nil
		}
		bare++
		specs = append(specs, domainSpec{"", strings.TrimSpace(v)})
		return nil
	}
	for _, v := range flags {
		if err := addFlag(v, "-snapshot"); err != nil {
			return nil, err
		}
	}
	if manifest != "" {
		f, err := os.Open(manifest)
		if err != nil {
			return nil, fmt.Errorf("matchd: opening manifest: %w", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for lineNo := 1; sc.Scan(); lineNo++ {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if !strings.Contains(line, "=") {
				return nil, fmt.Errorf("matchd: %s:%d: want name=path, got %q", manifest, lineNo, line)
			}
			if err := addFlag(line, manifest); err != nil {
				return nil, err
			}
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("matchd: reading manifest: %w", err)
		}
		// An empty manifest must not fall through to mine-at-startup —
		// that would silently serve a freshly mined dictionary where the
		// operator expected production snapshots.
		if len(specs) == 0 {
			return nil, fmt.Errorf("matchd: manifest %s declares no domains", manifest)
		}
	}
	if bare > 0 && (bare > 1 || len(specs) > 1) {
		return nil, fmt.Errorf("matchd: multiple snapshots need domain names (-snapshot name=path)")
	}
	// Duplicate domains fail here with file context, not deep in Add.
	seen := map[string]bool{}
	for _, s := range specs {
		if s.name != "" && seen[s.name] {
			return nil, fmt.Errorf("matchd: domain %q assigned two snapshots", s.name)
		}
		seen[s.name] = true
	}
	return specs, nil
}

// defaultPullDomain is the blob-store domain name a single-snapshot
// replica pulls: legacy deployments have no domain concept, but the
// content-addressed store needs a pointer-file name.
const defaultPullDomain = "default"

// bootSingle is the legacy single-snapshot path, byte-identical to every
// earlier matchd: one Server, one watcher, no domain routing.
func bootSingle(ctx context.Context, path string, cfg websyn.ServeConfig, reloadInterval time.Duration, canary string, useMmap bool, store *fleet.Store, pullInterval time.Duration) (*http.ServeMux, fleet.Backend) {
	blobSHA := ""
	if store != nil {
		blobSHA = bootFetchBlob(store, defaultPullDomain, path)
	}
	start := time.Now()
	// The reloader needs the booted content's SHA-256 to seed its change
	// detection; both loaders compute it during the load.
	snap, sha, err := loadSnapshot(path, useMmap)
	if err != nil {
		log.Fatal(err)
	}
	meta := websyn.SnapshotMeta{Path: path, SHA256: sha}
	log.Printf("loaded snapshot %s (%s, %d dictionary entries, sha256 %.12s) in %v",
		path, snap.Dataset, snap.Dict.Len(), sha, time.Since(start).Round(time.Millisecond))

	s := websyn.NewMatchServerWithMeta(snap, cfg, meta)
	mux := http.NewServeMux()
	s.Mount(mux)

	canaries, err := parseCanaries(canary, nil)
	if err != nil {
		log.Fatal(err)
	}
	r, err := websyn.NewReloader(s, websyn.ReloadConfig{
		Path:     path,
		Interval: reloadInterval,
		Canary:   canaries[""],
		BootSHA:  sha, // already hashed above; skip a second full read
		Mmap:     useMmap,
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Mount(mux)
	go r.Run(ctx)
	if store != nil {
		pullers := fleet.NewPullers()
		p := &fleet.Puller{Store: store, Domain: defaultPullDomain, Reloader: r, Interval: pullInterval}
		p.SetBootSHA(blobSHA)
		if err := pullers.Add(p); err != nil {
			log.Fatal(err)
		}
		pullers.Mount(mux)
		if pullInterval > 0 {
			go pullers.Run(ctx)
			log.Printf("blob pull: polling %s pointer in %s every %v", defaultPullDomain, store.Dir, pullInterval)
		} else {
			log.Printf("blob pull: POST /admin/pull fetches from %s", store.Dir)
		}
	}
	if reloadInterval > 0 {
		log.Printf("hot reload: polling %s every %v (POST /admin/reload to trigger now)", path, reloadInterval)
	} else {
		log.Printf("hot reload: POST /admin/reload swaps %s in", path)
	}
	return mux, s
}

// bootRegistry is the multi-domain path: one Server and one reload
// watcher per named snapshot behind a domain Registry.
func bootRegistry(ctx context.Context, specs []domainSpec, cfg websyn.ServeConfig, defaultDomain string, reloadInterval time.Duration, canary string, useMmap bool, store *fleet.Store, pullInterval time.Duration) (*http.ServeMux, fleet.Backend) {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.name
	}
	canaries, err := parseCanaries(canary, names)
	if err != nil {
		log.Fatal(err)
	}

	reg := websyn.NewRegistry(cfg)
	group := websyn.NewReloadGroup()
	pullers := fleet.NewPullers()
	for _, spec := range specs {
		blobSHA := ""
		if store != nil {
			blobSHA = bootFetchBlob(store, spec.name, spec.path)
		}
		t0 := time.Now()
		snap, sha, err := loadSnapshot(spec.path, useMmap)
		if err != nil {
			log.Fatalf("domain %s: %v", spec.name, err)
		}
		srv, err := reg.Add(spec.name, snap, websyn.SnapshotMeta{Path: spec.path, SHA256: sha})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("domain %s: loaded %s (%s, %d dictionary entries, sha256 %.12s) in %v",
			spec.name, spec.path, snap.Dataset, snap.Dict.Len(), sha, time.Since(t0).Round(time.Millisecond))
		r, err := websyn.NewReloader(srv, websyn.ReloadConfig{
			Path:     spec.path,
			Interval: reloadInterval,
			Canary:   canaries[spec.name],
			BootSHA:  sha,
			Mmap:     useMmap,
			Logf: func(format string, args ...any) {
				log.Printf("domain "+spec.name+": "+format, args...)
			},
		})
		if err != nil {
			log.Fatalf("domain %s: %v", spec.name, err)
		}
		if err := group.Add(spec.name, r); err != nil {
			log.Fatal(err)
		}
		if store != nil {
			p := &fleet.Puller{Store: store, Domain: spec.name, Reloader: r, Interval: pullInterval,
				Logf: func(format string, args ...any) {
					log.Printf("domain "+spec.name+": "+format, args...)
				}}
			p.SetBootSHA(blobSHA)
			if err := pullers.Add(p); err != nil {
				log.Fatal(err)
			}
		}
	}
	if defaultDomain != "" {
		if err := reg.SetDefault(defaultDomain); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("registry: %d domains (%s), default %s",
		len(specs), strings.Join(reg.Names(), ", "), reg.DefaultName())

	mux := http.NewServeMux()
	reg.Mount(mux)
	group.Mount(mux)
	go group.Run(ctx)
	if store != nil {
		pullers.Mount(mux)
		if pullInterval > 0 {
			go pullers.Run(ctx)
			log.Printf("blob pull: polling every domain pointer in %s every %v", store.Dir, pullInterval)
		} else {
			log.Printf("blob pull: POST /admin/pull?domain=<name> fetches from %s", store.Dir)
		}
	}
	if reloadInterval > 0 {
		log.Printf("hot reload: polling every domain snapshot every %v (POST /admin/reload?domain=<name> to trigger now)", reloadInterval)
	} else {
		log.Printf("hot reload: POST /admin/reload?domain=<name> swaps that domain's snapshot in")
	}
	return mux, reg
}

// bootFetchBlob syncs one domain's local spool file from its blob-store
// pointer before boot, so a replica with an empty disk comes up serving
// the fleet's current snapshot. Returns the fetched SHA ("" when the
// store has no pointer yet, or the local file had to serve as fallback).
func bootFetchBlob(store *fleet.Store, domain, path string) string {
	sha, err := store.Current(domain)
	if err != nil {
		log.Fatalf("domain %s: %v", domain, err)
	}
	if sha == "" {
		if _, statErr := os.Stat(path); statErr != nil {
			log.Fatalf("domain %s: no local snapshot %s and no pointer in blob store %s", domain, path, store.Dir)
		}
		return ""
	}
	if err := store.Fetch(sha, path); err != nil {
		if _, statErr := os.Stat(path); statErr == nil {
			log.Printf("domain %s: blob fetch failed (%v), serving local %s", domain, err, path)
			return ""
		}
		log.Fatalf("domain %s: %v", domain, err)
	}
	log.Printf("domain %s: boot-fetched %.12s from %s", domain, sha, store.Dir)
	return sha
}

// parseCanaries splits the -canary flag. In single-domain mode (domains
// nil) every entry gates the one watcher and is returned under "". In
// multi-domain mode entries must be domain:query — a bare query cannot
// sensibly gate every vertical's dictionary at once.
func parseCanaries(flagValue string, domains []string) (map[string][]string, error) {
	out := map[string][]string{}
	if flagValue == "" {
		return out, nil
	}
	known := map[string]bool{}
	for _, d := range domains {
		known[d] = true
	}
	for _, entry := range strings.Split(flagValue, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if domains == nil {
			out[""] = append(out[""], entry)
			continue
		}
		domain, q, ok := strings.Cut(entry, ":")
		domain, q = strings.TrimSpace(domain), strings.TrimSpace(q)
		if !ok || domain == "" || q == "" {
			return nil, fmt.Errorf("matchd: multi-domain -canary entries are domain:query, got %q", entry)
		}
		if !known[domain] {
			return nil, fmt.Errorf("matchd: -canary names unknown domain %q", domain)
		}
		out[domain] = append(out[domain], q)
	}
	return out, nil
}

// loadSnapshot reads a snapshot file for serving, memory-mapping it
// when asked.
func loadSnapshot(path string, useMmap bool) (*websyn.Snapshot, string, error) {
	if useMmap {
		return websyn.OpenSnapshotMappedHashed(path)
	}
	return websyn.ReadSnapshotFileHashed(path)
}

// mineSnapshot runs the offline pipeline in-process: simulation, miner,
// dictionary compilation.
func mineSnapshot(dataset string, ipc int, icr float64, seed uint64) (*websyn.Snapshot, error) {
	ds, err := websyn.ParseDataset(dataset)
	if err != nil {
		return nil, err
	}
	log.Printf("building %v simulation and mining dictionary (use -snapshot for fast startup)...", ds)
	return websyn.MineSnapshot(ds, websyn.MinerConfig{IPC: ipc, ICR: icr}, seed, 0)
}
