// Command matchd serves the mined synonym dictionary over HTTP: the online
// half of the paper's scenario, where an incoming Web query like
// "indy 4 near san fran" must be fuzzily matched to structured data.
//
// Endpoints:
//
//	POST /v1/match          — unified match API: single + batch, span-level
//	                          fuzzy matching, explain traces (docs/API.md)
//	GET  /match?q=<query>   — legacy: segment the query against the dictionary
//	POST /match/batch       — legacy: segment many queries in one request
//	GET  /fuzzy?q=<query>   — legacy: whole-string fuzzy lookup
//	GET  /synonyms?u=<name> — list the mined synonyms of a canonical string
//	GET  /statsz            — cache, dictionary and latency stats
//	GET  /healthz           — liveness
//	GET  /admin/snapshot    — live dictionary generation and provenance
//	POST /admin/reload      — hot-swap the snapshot now (-snapshot only)
//	GET  /admin/reload/status — reload watcher counters (-snapshot only)
//
// The expensive part — simulating the logs and mining the dictionary — is
// offline work. Production startup loads a prebuilt snapshot (see
// cmd/dictbuild) and is ready in milliseconds:
//
//	matchd -snapshot dict.snap
//
// Without -snapshot, matchd mines at startup (slow, for development):
//
//	matchd [-dataset movies|cameras|software] [-ipc 4] [-icr 0.1] [-seed N]
//
// Mine-at-startup can also persist its work for next time and exit:
//
//	matchd -dataset movies -write-snapshot dict.snap
//
// Serving knobs: [-addr :8080] [-cache 4096] [-batch-workers N]
// [-max-batch 1024] [-shards N] [-fuzzy-limit 5] [-min-sim 0.55]
// [-drain-timeout 15s]
//
// Hot reload (requires -snapshot): [-reload-interval 0] polls the
// snapshot file and swaps new dictionary generations in atomically —
// in-flight requests finish on the old dictionary, new ones see the new
// file; no restart, no dropped traffic. POST /admin/reload triggers a
// check immediately (with -reload-interval 0 it is the only trigger),
// GET /admin/snapshot reports the live generation and its provenance,
// and [-canary "q1,q2"] adds validation queries a candidate snapshot
// must match before it may serve.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests (large batches included) for up to -drain-timeout
// before exiting. The reload watcher stops with the same signal, and a
// swap that races the drain only replaces in-memory state — it can
// never resurrect the closed listener.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"websyn"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		snapshotPath   = flag.String("snapshot", "", "start from this snapshot file instead of mining")
		writeSnapshot  = flag.String("write-snapshot", "", "mine, write a snapshot to this path, and exit")
		dataset        = flag.String("dataset", "movies", "data set to mine when not using -snapshot: movies, cameras or software")
		ipc            = flag.Int("ipc", 4, "IPC threshold β (mining)")
		icr            = flag.Float64("icr", 0.1, "ICR threshold γ (mining)")
		seed           = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		cacheSize      = flag.Int("cache", 0, "request-cache capacity in entries (0 = default 4096, negative = disabled)")
		batchWorkers   = flag.Int("batch-workers", 0, "worker-pool size for batch requests (0 = GOMAXPROCS)")
		maxBatch       = flag.Int("max-batch", 0, "max queries per batch request (0 = default 1024)")
		shards         = flag.Int("shards", 0, "fuzzy-index shard count (0 = GOMAXPROCS)")
		fuzzyLimit     = flag.Int("fuzzy-limit", 5, "max hits returned by /fuzzy")
		minSim         = flag.Float64("min-sim", 0, "fuzzy similarity threshold override (0 = snapshot's value)")
		drainTimeout   = flag.Duration("drain-timeout", 15*time.Second, "how long to drain in-flight requests on shutdown")
		reloadInterval = flag.Duration("reload-interval", 0, "poll -snapshot for changes this often and hot-swap (0 = admin-triggered reloads only; requires -snapshot)")
		canary         = flag.String("canary", "", "comma-separated queries a new snapshot must match before a hot swap")
	)
	flag.Parse()

	// Fail flag misuse fast, before the (potentially minutes-long)
	// mine-at-startup path runs: hot reload watches the snapshot file,
	// so both knobs are meaningless without one.
	if *snapshotPath == "" {
		if *reloadInterval > 0 {
			log.Fatal("-reload-interval requires -snapshot (mined-at-startup state has no file to watch)")
		}
		if *canary != "" {
			log.Fatal("-canary requires -snapshot (canaries gate snapshot hot swaps)")
		}
	}

	var (
		snap *websyn.Snapshot
		meta websyn.SnapshotMeta
		err  error
	)
	start := time.Now()
	if *snapshotPath != "" {
		// The reloader needs the booted content's SHA-256 to seed its
		// change detection; ReadSnapshotFileHashed streams it during the
		// parse.
		var sha string
		snap, sha, err = websyn.ReadSnapshotFileHashed(*snapshotPath)
		if err != nil {
			log.Fatal(err)
		}
		meta = websyn.SnapshotMeta{Path: *snapshotPath, SHA256: sha}
		log.Printf("loaded snapshot %s (%s, %d dictionary entries, sha256 %.12s) in %v",
			*snapshotPath, snap.Dataset, snap.Dict.Len(), meta.SHA256, time.Since(start).Round(time.Millisecond))
	} else {
		snap, err = mineSnapshot(*dataset, *ipc, *icr, *seed)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mined %s dictionary: %d entries in %v",
			snap.Dataset, snap.Dict.Len(), time.Since(start).Round(time.Millisecond))
	}

	if *writeSnapshot != "" {
		if err := snap.WriteFile(*writeSnapshot); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote snapshot %s", *writeSnapshot)
		return
	}

	s := websyn.NewMatchServerWithMeta(snap, websyn.ServeConfig{
		CacheSize:    *cacheSize,
		BatchWorkers: *batchWorkers,
		MaxBatch:     *maxBatch,
		FuzzyShards:  *shards,
		FuzzyLimit:   *fuzzyLimit,
		MinSim:       *minSim,
	}, meta)
	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections and
	// let in-flight requests (large batches included) drain before exit.
	// The reload watcher shares this context, so it stops checking for
	// new snapshots the moment shutdown begins; a swap already in flight
	// only replaces in-memory state and cannot resurrect the listener.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	mux := http.NewServeMux()
	s.Mount(mux)

	if *snapshotPath != "" {
		var canaries []string
		for _, q := range strings.Split(*canary, ",") {
			if q = strings.TrimSpace(q); q != "" {
				canaries = append(canaries, q)
			}
		}
		r, err := websyn.NewReloader(s, websyn.ReloadConfig{
			Path:     *snapshotPath,
			Interval: *reloadInterval,
			Canary:   canaries,
			BootSHA:  meta.SHA256, // already hashed above; skip a second full read
		})
		if err != nil {
			log.Fatal(err)
		}
		r.Mount(mux)
		go r.Run(ctx)
		if *reloadInterval > 0 {
			log.Printf("hot reload: polling %s every %v (POST /admin/reload to trigger now)", *snapshotPath, *reloadInterval)
		} else {
			log.Printf("hot reload: POST /admin/reload swaps %s in", *snapshotPath)
		}
	}

	log.Printf("serving ready in %v, listening on %s", time.Since(start).Round(time.Millisecond), *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 30 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Printf("shutdown signal received, draining for up to %v", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		// Shutdown does not wait for the reload watcher: a reload still
		// building when the drain ends is abandoned with the process
		// (it only ever swaps in-memory state, never writes files), so
		// -drain-timeout genuinely bounds shutdown.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("server: %v", err)
		}
		log.Print("shutdown complete")
	}
}

// mineSnapshot runs the offline pipeline in-process: simulation, miner,
// dictionary compilation.
func mineSnapshot(dataset string, ipc int, icr float64, seed uint64) (*websyn.Snapshot, error) {
	ds, err := websyn.ParseDataset(dataset)
	if err != nil {
		return nil, err
	}
	log.Printf("building %v simulation and mining dictionary (use -snapshot for fast startup)...", ds)
	return websyn.MineSnapshot(ds, websyn.MinerConfig{IPC: ipc, ICR: icr}, seed, 0)
}
