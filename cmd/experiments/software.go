package main

import (
	"fmt"
	"strings"

	"websyn"
	"websyn/internal/eval"
)

// runSoftware is the generality check: the same pipeline, untouched, on
// the D3 software extension data set (the paper's third motivating domain,
// "Mac OS X" = "Leopard"). It prints a Table-I-style row for all three
// systems plus the marquee codename minings.
func runSoftware(seed uint64, impressions int) (string, error) {
	sim, err := websyn.NewSimulation(websyn.Options{
		Dataset: websyn.SoftwareProducts, Seed: seed, Impressions: impressions,
	})
	if err != nil {
		return "", err
	}
	results, err := sim.MineAll(websyn.MinerConfig{IPC: 1, ICR: 0})
	if err != nil {
		return "", err
	}
	wikiB, err := sim.NewWiki()
	if err != nil {
		return "", err
	}
	walker, err := sim.NewWalker(websyn.DefaultWalkerConfig())
	if err != nil {
		return "", err
	}
	rows, err := eval.Table1(eval.Table1Systems{
		Dataset:   "Software",
		Model:     sim.Model,
		Log:       sim.Log,
		UsResults: results,
		UsIPC:     4,
		UsICR:     0.1,
		Wiki:      wikiB,
		Walker:    walker,
	})
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("Generality — D3 software extension (same pipeline, untouched)\n\n")
	b.WriteString(eval.RenderTable1(rows))

	b.WriteString("\nmarquee codename minings (β=4, γ=0.1):\n")
	for _, name := range []string{
		"Apple Mac OS X 10.5",
		"Call of Duty 4 Modern Warfare",
		"Grand Theft Auto IV",
		"World of Warcraft Wrath of the Lich King",
	} {
		for _, r := range results {
			if r.Input == name {
				fmt.Fprintf(&b, "  %-42s -> %v\n", name, r.FilterSynonyms(4, 0.1))
			}
		}
	}
	return b.String(), nil
}
