// Command experiments regenerates the paper's evaluation: Figure 2 (IPC
// sweep), Figure 3 (ICR sweep for IPC 2/4/6) and Table I (hits and
// expansion for Us / Wikipedia / Walk(0.8) on both data sets).
//
// Usage:
//
//	experiments [-fig2] [-fig3] [-table1] [-ablation] [-ksweep] [-seed N]
//
// With no experiment flags, everything runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"websyn"
	"websyn/internal/eval"
)

func main() {
	var (
		fig2     = flag.Bool("fig2", false, "run Figure 2 (IPC sweep, movies)")
		fig3     = flag.Bool("fig3", false, "run Figure 3 (ICR sweep, movies)")
		table1   = flag.Bool("table1", false, "run Table I (both data sets)")
		ablation = flag.Bool("ablation", false, "run the measure ablation")
		ksweep   = flag.Bool("ksweep", false, "run the surrogate-k ablation")
		volsweep = flag.Bool("volsweep", false, "run the log-volume ablation")
		software = flag.Bool("software", false, "run the D3 software generality check")
		seed     = flag.Uint64("seed", 0, "simulation seed (0 = default)")
		impr     = flag.Int("impressions", 0, "impressions per data set (0 = default)")
		outDir   = flag.String("o", "", "also write reports and TSV series to this directory")
	)
	flag.Parse()
	all := !*fig2 && !*fig3 && !*table1 && !*ablation && !*ksweep && !*volsweep && !*software
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	fmt.Println("building movie simulation (D1)...")
	movies, err := websyn.NewSimulation(websyn.Options{
		Dataset: websyn.Movies, Seed: *seed, Impressions: *impr,
	})
	if err != nil {
		log.Fatal(err)
	}
	var cameras *websyn.Simulation
	if all || *table1 || *ablation {
		fmt.Println("building camera simulation (D2)...")
		cameras, err = websyn.NewSimulation(websyn.Options{
			Dataset: websyn.Cameras, Seed: *seed, Impressions: *impr,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("simulations ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	x := websyn.NewExperiments(movies, cameras)

	if all || *fig2 {
		points, err := x.Figure2()
		if err != nil {
			log.Fatal(err)
		}
		report := eval.RenderFigure2(points)
		fmt.Print(report)
		fmt.Println()
		if *outDir != "" {
			save(*outDir, "figure2.txt", report)
			save(*outDir, "figure2.tsv", fig2TSV(points))
		}
	}
	if all || *fig3 {
		points, err := x.Figure3()
		if err != nil {
			log.Fatal(err)
		}
		report := eval.RenderFigure3(points)
		fmt.Print(report)
		fmt.Println()
		if *outDir != "" {
			save(*outDir, "figure3.txt", report)
			save(*outDir, "figure3.tsv", fig3TSV(points))
		}
	}
	if all || *table1 {
		rows, err := x.Table1(websyn.DefaultTable1Config())
		if err != nil {
			log.Fatal(err)
		}
		report := eval.RenderTable1(rows)
		report += precisionCIs(x)
		fmt.Print(report)
		fmt.Println()
		if *outDir != "" {
			save(*outDir, "table1.txt", report)
		}
	}
	if all || *ablation {
		report, err := runAblation(x)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
		fmt.Println()
		if *outDir != "" {
			save(*outDir, "ablation.txt", report)
		}
	}
	if all || *ksweep {
		report, err := runKSweep(*seed, *impr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
		fmt.Println()
		if *outDir != "" {
			save(*outDir, "ksweep.txt", report)
		}
	}
	if all || *volsweep {
		report, err := runVolSweep(*seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
		fmt.Println()
		if *outDir != "" {
			save(*outDir, "volsweep.txt", report)
		}
	}
	if all || *software {
		report, err := runSoftware(*seed, *impr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report)
		fmt.Println()
		if *outDir != "" {
			save(*outDir, "software.txt", report)
		}
	}
	fmt.Fprintf(os.Stderr, "total runtime %v\n", time.Since(start).Round(time.Millisecond))
}

// precisionCIs appends entity-level bootstrap confidence intervals for the
// Us rows — variability the paper's point estimates leave unquantified.
func precisionCIs(x *websyn.Experiments) string {
	var b strings.Builder
	b.WriteString("\n  Us precision, entity-level bootstrap (1000 resamples):\n")
	for _, sim := range x.Simulations() {
		if sim == nil {
			continue
		}
		results, err := sim.MineAll(websyn.MinerConfig{IPC: 1, ICR: 0})
		if err != nil {
			log.Fatal(err)
		}
		o, err := eval.OutputFromResults(sim.Model, results, "us", 4, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		plain, weighted, err := eval.BootstrapPrecision(sim.Model, sim.Log, o, 1000, 0.95, 17)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(&b, "    %-8s plain %s   weighted %s\n",
			sim.Options.Dataset, plain, weighted)
	}
	return b.String()
}

// save writes one report file, exiting on failure.
func save(dir, name, content string) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
}

// fig2TSV renders the Figure 2 series as plottable TSV.
func fig2TSV(points []websyn.Fig2Point) string {
	var b strings.Builder
	b.WriteString("beta\tsyns\tcoverage\tprecision\tweighted\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d\t%d\t%.4f\t%.4f\t%.4f\n",
			p.Beta, p.Syns, p.Coverage, p.Precision, p.Weighted)
	}
	return b.String()
}

// fig3TSV renders the Figure 3 series as plottable TSV.
func fig3TSV(points []websyn.Fig3Point) string {
	var b strings.Builder
	b.WriteString("beta\tgamma\tsyns\tcoverage\tprecision\tweighted\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d\t%.2f\t%d\t%.4f\t%.4f\t%.4f\n",
			p.Beta, p.Gamma, p.Syns, p.Coverage, p.Precision, p.Weighted)
	}
	return b.String()
}
