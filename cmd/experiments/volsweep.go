package main

import (
	"fmt"
	"strings"

	"websyn"
	"websyn/internal/eval"
)

// volSweepImpressions are the log sizes contrasted by the volume sweep.
var volSweepImpressions = []int{5000, 10000, 25000, 50000, 100000, 200000}

// runVolSweep measures mining quality as a function of log volume. The
// paper mined five months of Bing logs; this sweep shows how hit ratio,
// precision and coverage grow with the amount of click evidence — the
// practical "how much log do I need" question for anyone deploying the
// method.
func runVolSweep(seed uint64) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — log volume (movies, β=4, γ=0.1)\n\n")
	b.WriteString("  impressions   syns  hits   prec   wprec  coverage\n")
	b.WriteString("  -----------  -----  ----  -----  -----  --------\n")
	for _, n := range volSweepImpressions {
		sim, err := websyn.NewSimulation(websyn.Options{
			Dataset: websyn.Movies, Seed: seed, Impressions: n,
		})
		if err != nil {
			return "", err
		}
		results, err := sim.MineAll(websyn.MinerConfig{IPC: 1, ICR: 0})
		if err != nil {
			return "", err
		}
		o, err := eval.OutputFromResults(sim.Model, results, fmt.Sprintf("n=%d", n), 4, 0.1)
		if err != nil {
			return "", err
		}
		p := eval.Precision(sim.Model, sim.Log, o)
		cov := eval.CoverageIncrease(sim.Model, sim.Log, o)
		he := eval.HitsAndExpansion(o)
		fmt.Fprintf(&b, "  %11d  %5d  %4d  %4.1f%%  %4.1f%%  %7.1f%%\n",
			n, he.Synonyms, he.Hits, p.Precision*100, p.WeightedPrecision*100, cov*100)
	}
	return b.String(), nil
}
