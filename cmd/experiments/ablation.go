package main

import (
	"fmt"
	"strings"

	"websyn"
	"websyn/internal/eval"
)

// ablationPoints are the operating points contrasting the two measures: the
// paper motivates IPC as "strength" and ICR as "exclusiveness" (Figure 1);
// this ablation shows what each filters on its own.
var ablationPoints = []struct {
	name string
	ipc  int
	icr  float64
}{
	{"none (candidates)", 1, 0},
	{"IPC only (β=4)", 4, 0},
	{"ICR only (γ=0.1)", 1, 0.1},
	{"both (β=4, γ=0.1)", 4, 0.1},
}

// runAblation contrasts IPC-only, ICR-only and combined selection on both
// data sets, with a per-label breakdown of what survives.
func runAblation(x *websyn.Experiments) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — measure contribution (what survives each filter)\n")
	for _, sim := range x.Simulations() {
		if sim == nil {
			continue
		}
		results, err := sim.MineAll(websyn.MinerConfig{IPC: 1, ICR: 0})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n  dataset %s\n", sim.Options.Dataset)
		b.WriteString("  operating point     syns   prec   wprec  coverage  syn/hyper/hypo/rel/noise\n")
		b.WriteString("  ------------------  -----  -----  -----  --------  ------------------------\n")
		for _, pt := range ablationPoints {
			o, err := eval.OutputFromResults(sim.Model, results, pt.name, pt.ipc, pt.icr)
			if err != nil {
				return "", err
			}
			p := eval.Precision(sim.Model, sim.Log, o)
			cov := eval.CoverageIncrease(sim.Model, sim.Log, o)
			bd := eval.LabelBreakdown(sim.Model, o)
			fmt.Fprintf(&b, "  %-18s  %5d  %4.1f%%  %4.1f%%  %7.1f%%  %d/%d/%d/%d/%d\n",
				pt.name, o.TotalSynonyms(), p.Precision*100, p.WeightedPrecision*100,
				cov*100, bd[0], bd[1], bd[2], bd[3], bd[4])
		}
	}
	return b.String(), nil
}

// kSweepValues are the surrogate cutoffs contrasted by the k ablation.
var kSweepValues = []int{3, 5, 10, 15, 20}

// runKSweep varies the top-k surrogate cutoff on the movie data set: small
// k starves candidate generation, large k admits loosely related pages into
// GA(u) and dilutes both measures.
func runKSweep(seed uint64, impressions int) (string, error) {
	sim, err := websyn.NewSimulation(websyn.Options{
		Dataset: websyn.Movies, Seed: seed, Impressions: impressions,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Ablation — surrogate cutoff k (movies, β=4, γ=0.1)\n\n")
	b.WriteString("   k   syns   prec   wprec  coverage\n")
	b.WriteString("  --  -----  -----  -----  --------\n")
	for _, k := range kSweepValues {
		sd, err := sim.SearchDataK(k)
		if err != nil {
			return "", err
		}
		m, err := sim.NewMinerWith(sd, websyn.MinerConfig{IPC: 1, ICR: 0})
		if err != nil {
			return "", err
		}
		results := m.MineAll(sim.Catalog.Canonicals())
		o, err := eval.OutputFromResults(sim.Model, results, fmt.Sprintf("k=%d", k), 4, 0.1)
		if err != nil {
			return "", err
		}
		p := eval.Precision(sim.Model, sim.Log, o)
		cov := eval.CoverageIncrease(sim.Model, sim.Log, o)
		fmt.Fprintf(&b, "  %2d  %5d  %4.1f%%  %4.1f%%  %7.1f%%\n",
			k, o.TotalSynonyms(), p.Precision*100, p.WeightedPrecision*100, cov*100)
	}
	return b.String(), nil
}
