package websyn

import (
	"strings"
	"testing"
)

func TestSimStats(t *testing.T) {
	sim := movies(t)
	st := sim.Stats()
	if st.Dataset != "Movies" {
		t.Fatalf("dataset %q", st.Dataset)
	}
	if st.Entities != 100 || st.Pages != sim.Corpus.Len() {
		t.Fatal("entity/page counts wrong")
	}
	if st.Impressions != sim.Log.TotalImpressions() || st.Clicks != sim.Log.TotalClicks() {
		t.Fatal("log totals wrong")
	}
	if st.CTR <= 0.2 || st.CTR > 2 {
		t.Fatalf("CTR %.3f implausible", st.CTR)
	}
	if st.ClickedQueries > st.DistinctQueries {
		t.Fatal("more clicked queries than issued queries")
	}
	// The query volume distribution must be heavily skewed (Zipf log).
	if st.QueryVolumeGini < 0.5 {
		t.Fatalf("query volume gini %.2f — log not Zipf-shaped", st.QueryVolumeGini)
	}
	if st.PagesPerQuery.Mean() <= 1 {
		t.Fatalf("pages/query mean %.2f — click fan-out collapsed", st.PagesPerQuery.Mean())
	}
}

func TestSimStatsString(t *testing.T) {
	st := movies(t).Stats()
	s := st.String()
	for _, want := range []string{"Movies simulation", "entities", "click graph", "gini"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats report missing %q:\n%s", want, s)
		}
	}
}
