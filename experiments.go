package websyn

import (
	"fmt"

	"websyn/internal/eval"
)

// Experiments drives the paper's evaluation section against one or two
// built simulations. The zero value is unusable; use NewExperiments.
type Experiments struct {
	movies  *Simulation
	cameras *Simulation
}

// NewExperiments wraps pre-built simulations. Either argument may be nil
// when only the other data set is exercised.
func NewExperiments(movies, cameras *Simulation) *Experiments {
	return &Experiments{movies: movies, cameras: cameras}
}

// Simulations returns the wrapped simulations (movies first); entries may
// be nil.
func (x *Experiments) Simulations() []*Simulation {
	return []*Simulation{x.movies, x.cameras}
}

// Figure2Betas are the IPC thresholds of the paper's Figure 2, left to
// right on the curve (10 down to 2).
func Figure2Betas() []int { return []int{10, 9, 8, 7, 6, 5, 4, 3, 2} }

// Figure3Betas are the IPC thresholds of Figure 3's three series.
func Figure3Betas() []int { return []int{2, 4, 6} }

// Figure3Gammas are the ICR thresholds of Figure 3, left to right
// (0.9 down to 0.01).
func Figure3Gammas() []float64 {
	return []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01}
}

// Figure2 regenerates Figure 2: the IPC sweep on the movie data set.
func (x *Experiments) Figure2() ([]Fig2Point, error) {
	if x.movies == nil {
		return nil, fmt.Errorf("websyn: Figure 2 needs the movie simulation")
	}
	results, err := x.movies.MineAll(MinerConfig{IPC: 1, ICR: 0})
	if err != nil {
		return nil, err
	}
	return eval.Figure2(x.movies.Model, x.movies.Log, results, Figure2Betas())
}

// Figure3 regenerates Figure 3: the ICR sweep for IPC 2, 4, 6 on movies.
func (x *Experiments) Figure3() ([]Fig3Point, error) {
	if x.movies == nil {
		return nil, fmt.Errorf("websyn: Figure 3 needs the movie simulation")
	}
	results, err := x.movies.MineAll(MinerConfig{IPC: 1, ICR: 0})
	if err != nil {
		return nil, err
	}
	return eval.Figure3(x.movies.Model, x.movies.Log, results, Figure3Betas(), Figure3Gammas())
}

// Table1Config pins the operating points of Table I: the paper's chosen
// thresholds for "Us" and the default walk.
type Table1Config struct {
	UsIPC  int
	UsICR  float64
	Walker WalkerConfig
}

// DefaultTable1Config returns the paper's Table I settings: Us at IPC 4 /
// ICR 0.1, Walk at self-transition 0.8.
func DefaultTable1Config() Table1Config {
	return Table1Config{UsIPC: 4, UsICR: 0.1, Walker: DefaultWalkerConfig()}
}

// Table1 regenerates Table I over whichever simulations are present
// (movies rows first, then cameras).
func (x *Experiments) Table1(cfg Table1Config) ([]Table1Row, error) {
	var rows []Table1Row
	for _, sim := range []*Simulation{x.movies, x.cameras} {
		if sim == nil {
			continue
		}
		results, err := sim.MineAll(MinerConfig{IPC: 1, ICR: 0})
		if err != nil {
			return nil, err
		}
		wikiB, err := sim.NewWiki()
		if err != nil {
			return nil, err
		}
		walker, err := sim.NewWalker(cfg.Walker)
		if err != nil {
			return nil, err
		}
		r, err := eval.Table1(eval.Table1Systems{
			Dataset:   sim.Options.Dataset.String(),
			Model:     sim.Model,
			Log:       sim.Log,
			UsResults: results,
			UsIPC:     cfg.UsIPC,
			UsICR:     cfg.UsICR,
			Wiki:      wikiB,
			Walker:    walker,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}
