package textnorm

import "strings"

// Sequel-number rewriting is one of the highest-volume synonym phenomena in
// the movie domain ("Indiana Jones 4" vs "Indiana Jones IV" vs "Indiana
// Jones and the Kingdom of the Crystal Skull"). The alias generator and the
// fuzzy matcher both need arabic<->roman and arabic<->word conversions for
// small numbers; film sequels realistically stop well below 40.

var romanTable = []struct {
	value int
	sym   string
}{
	{40, "xl"}, {10, "x"}, {9, "ix"}, {5, "v"}, {4, "iv"}, {1, "i"},
}

// ToRoman converts n in [1, 49] to its lower-case roman numeral. It returns
// "" for out-of-range values.
func ToRoman(n int) string {
	if n < 1 || n > 49 {
		return ""
	}
	var b strings.Builder
	for _, e := range romanTable {
		for n >= e.value {
			b.WriteString(e.sym)
			n -= e.value
		}
	}
	return b.String()
}

// FromRoman parses a lower-case roman numeral in [1, 49]. The second result
// reports whether s is a well-formed numeral in range. Parsing is strict:
// "iiii" and "vx" are rejected.
func FromRoman(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	vals := map[byte]int{'i': 1, 'v': 5, 'x': 10, 'l': 50}
	total := 0
	for i := 0; i < len(s); i++ {
		v, ok := vals[s[i]]
		if !ok {
			return 0, false
		}
		if i+1 < len(s) && vals[s[i+1]] > v {
			total -= v
		} else {
			total += v
		}
	}
	if total < 1 || total > 49 {
		return 0, false
	}
	// Strictness: round-trip must reproduce the input.
	if ToRoman(total) != s {
		return 0, false
	}
	return total, true
}

var numberWords = []string{
	1: "one", 2: "two", 3: "three", 4: "four", 5: "five",
	6: "six", 7: "seven", 8: "eight", 9: "nine", 10: "ten",
	11: "eleven", 12: "twelve",
}

// ToWord converts n in [1, 12] to its English word ("two"). Returns "" out
// of range.
func ToWord(n int) string {
	if n < 1 || n >= len(numberWords) {
		return ""
	}
	return numberWords[n]
}

// FromWord parses an English number word in [1, 12].
func FromWord(s string) (int, bool) {
	for n := 1; n < len(numberWords); n++ {
		if numberWords[n] == s {
			return n, true
		}
	}
	return 0, false
}

// NumeralValue interprets a normalized token as a small number in any of the
// three surface forms users type: arabic digits ("4"), roman numerals
// ("iv"), or words ("four"). The second result reports success.
func NumeralValue(tok string) (int, bool) {
	if n, ok := parseSmallInt(tok); ok {
		return n, true
	}
	if n, ok := FromRoman(tok); ok {
		return n, true
	}
	if n, ok := FromWord(tok); ok {
		return n, true
	}
	return 0, false
}

// parseSmallInt parses a 1-2 digit positive integer without pulling in
// strconv error allocation on the hot path.
func parseSmallInt(tok string) (int, bool) {
	if len(tok) == 0 || len(tok) > 2 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n == 0 {
		return 0, false
	}
	return n, true
}

// NumeralForms returns every surface form of n that users plausibly type:
// digits, roman, word. Forms outside a converter's range are omitted.
func NumeralForms(n int) []string {
	var forms []string
	if n >= 1 {
		forms = append(forms, itoa(n))
	}
	if r := ToRoman(n); r != "" {
		forms = append(forms, r)
	}
	if w := ToWord(n); w != "" {
		forms = append(forms, w)
	}
	return forms
}

// itoa converts a small non-negative int to decimal without strconv.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
