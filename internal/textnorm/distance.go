package textnorm

// EditDistance computes the Levenshtein distance between the two strings,
// operating on runes. It uses the standard two-row dynamic program with
// O(min(len(a), len(b))) space.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	// rb is now the shorter string; the DP rows have len(rb)+1 entries.
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditDistanceAtMost reports whether EditDistance(a, b) <= k, in O(k*n) time
// by restricting the dynamic program to a diagonal band of width 2k+1. This
// is the hot-path form used by the fuzzy matcher's typo tolerance.
func EditDistanceAtMost(a, b string, k int) bool {
	if k < 0 {
		return false
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(ra)-len(rb) > k {
		return false
	}
	if len(rb) == 0 {
		return len(ra) <= k
	}
	const inf = 1 << 30
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		if j <= k {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(ra); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > len(rb) {
			hi = len(rb)
		}
		if lo > hi {
			return false
		}
		if lo == 1 {
			if i <= k {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		if lo > 1 {
			cur[lo-1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if prev[j]+1 < v {
				v = prev[j] + 1
			}
			if cur[j-1]+1 < v {
				v = cur[j-1] + 1
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi < len(rb) {
			cur[hi+1] = inf
		}
		if rowMin > k {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)] <= k
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// TokenEditDistance is the Levenshtein distance over whole normalized
// tokens instead of runes: the cost of turning one token sequence into the
// other with token insertions, deletions and substitutions. "madagascar 2"
// vs "madagascar escape 2 africa" has token distance 2.
func TokenEditDistance(a, b string) int {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) < len(tb) {
		ta, tb = tb, ta
	}
	if len(tb) == 0 {
		return len(ta)
	}
	prev := make([]int, len(tb)+1)
	cur := make([]int, len(tb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ta); i++ {
		cur[0] = i
		for j := 1; j <= len(tb); j++ {
			cost := 1
			if ta[i-1] == tb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(tb)]
}
