// Package textnorm implements the string normalization, tokenization and
// similarity primitives shared by every layer of the websyn pipeline.
//
// The paper's mining method compares query strings against canonical entity
// strings purely through set operations on Web pages, but every practical
// stage around it — building the synthetic corpus, indexing pages, matching
// log queries against dictionaries, judging mined synonyms against ground
// truth — needs a single consistent definition of "the same string". That
// definition lives here: lower-cased, punctuation-stripped, whitespace-
// collapsed token sequences.
package textnorm

import (
	"strings"
	"unicode"
)

// Normalize canonicalizes a raw string for comparison and dictionary keys:
// lower-case, punctuation replaced by spaces (so "Mamma Mia!" and
// "mamma mia" collide), runs of whitespace collapsed, leading/trailing
// space trimmed.
//
// Normalize is idempotent: Normalize(Normalize(s)) == Normalize(s).
func Normalize(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// Tokenize splits a raw string into normalized tokens. Letters and digits
// are kept (lower-cased); every other rune is a separator. Alphanumeric
// model codes such as "EOS-350D" become single tokens "eos" "350d"?  No:
// the dash is a separator, yielding "eos", "350d" — which is exactly how
// users type camera model codes, so index terms and query terms agree.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords are tokens carrying no entity-discriminating signal. They are
// dropped when forming acronyms and significant-token sets, but kept in
// Normalize output (a normalized string must round-trip users' phrasing).
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "at": true, "by": true,
	"for": true, "from": true, "in": true, "into": true, "of": true,
	"on": true, "or": true, "the": true, "to": true, "with": true,
}

// IsStopword reports whether the normalized token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// SignificantTokens returns the normalized tokens of s with stopwords
// removed. If every token is a stopword the full token list is returned
// instead, so the result is non-empty whenever s has any token.
func SignificantTokens(s string) []string {
	all := Tokenize(s)
	sig := make([]string, 0, len(all))
	for _, t := range all {
		if !stopwords[t] {
			sig = append(sig, t)
		}
	}
	if len(sig) == 0 {
		return all
	}
	return sig
}

// Acronym builds the initialism of s from ALL tokens, including stopwords,
// because real-world acronyms keep stopword initials: "Lord of the Rings"
// -> "lotr". Numeric tokens contribute their full digits, so
// "Kung Fu Panda 2" -> "kfp2".
func Acronym(s string) string {
	var b strings.Builder
	for _, tok := range Tokenize(s) {
		r := []rune(tok)
		if len(r) == 0 {
			continue
		}
		if unicode.IsDigit(r[0]) {
			b.WriteString(tok)
		} else {
			b.WriteRune(r[0])
		}
	}
	return b.String()
}

// TokenSet returns the set of normalized tokens of s.
func TokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// Jaccard computes the Jaccard similarity between the token sets of a and b:
// |A ∩ B| / |A ∪ B|. Two empty strings have similarity 1.
func Jaccard(a, b string) float64 {
	sa, sb := TokenSet(a), TokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// ContainsTokens reports whether every significant token of needle occurs in
// haystack's token set (order-insensitive containment, the relation behind
// "substring matching" approaches discussed in the paper's introduction).
func ContainsTokens(haystack, needle string) bool {
	hs := TokenSet(haystack)
	for _, t := range SignificantTokens(needle) {
		if !hs[t] {
			return false
		}
	}
	return true
}

// CharNGrams returns the multiset of character n-grams of the normalized
// form of s (spaces included, as in standard approximate-matching practice).
// Returns nil if the normalized string is shorter than n.
func CharNGrams(s string, n int) []string {
	norm := Normalize(s)
	r := []rune(norm)
	if n <= 0 || len(r) < n {
		return nil
	}
	grams := make([]string, 0, len(r)-n+1)
	for i := 0; i+n <= len(r); i++ {
		grams = append(grams, string(r[i:i+n]))
	}
	return grams
}

// NGramSimilarity is the Dice coefficient over character n-gram multisets of
// the two strings: 2*|common| / (|A|+|B|). It tolerates typos and spacing
// differences better than token Jaccard.
func NGramSimilarity(a, b string, n int) float64 {
	ga, gb := CharNGrams(a, n), CharNGrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	count := make(map[string]int, len(ga))
	for _, g := range ga {
		count[g]++
	}
	common := 0
	for _, g := range gb {
		if count[g] > 0 {
			count[g]--
			common++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb))
}
