package textnorm

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeBasic(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Indiana Jones and the Kingdom of the Crystal Skull", "indiana jones and the kingdom of the crystal skull"},
		{"Madagascar: Escape 2 Africa", "madagascar escape 2 africa"},
		{"Mamma Mia!", "mamma mia"},
		{"Canon EOS-350D", "canon eos 350d"},
		{"  WALL-E ", "wall e"},
		{"Dr. Seuss' Horton Hears a Who!", "dr seuss horton hears a who"},
		{"", ""},
		{"!!!", ""},
		{"a  b\tc", "a b c"},
		{"MiXeD CaSe", "mixed case"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"The Dark Knight", []string{"the", "dark", "knight"}},
		{"EOS-350D", []string{"eos", "350d"}},
		{"x", []string{"x"}},
		{"", nil},
		{"...", nil},
		{"a1b2", []string{"a1b2"}},
		{"Quantum of Solace (2008)", []string{"quantum", "of", "solace", "2008"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignificantTokens(t *testing.T) {
	got := SignificantTokens("The Chronicles of Narnia: Prince Caspian")
	want := []string{"chronicles", "narnia", "prince", "caspian"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SignificantTokens = %v, want %v", got, want)
	}
	// All-stopword strings fall back to the full token list.
	got = SignificantTokens("The And Of")
	want = []string{"the", "and", "of"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("all-stopword fallback = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, sw := range []string{"the", "of", "and", "a"} {
		if !IsStopword(sw) {
			t.Errorf("IsStopword(%q) = false", sw)
		}
	}
	for _, w := range []string{"dark", "knight", "", "350d"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}

func TestAcronym(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Lord of the Rings", "lotr"},
		{"Kung Fu Panda", "kfp"},
		{"The Dark Knight", "tdk"},
		{"Madagascar", "m"},
		{"Kung Fu Panda 2", "kfp2"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Acronym(c.in); got != c.want {
			t.Errorf("Acronym(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard("the dark knight", "dark knight"); got != 2.0/3.0 {
		t.Errorf("Jaccard = %v, want 2/3", got)
	}
	if got := Jaccard("abc", "abc"); got != 1 {
		t.Errorf("identical strings: Jaccard = %v", got)
	}
	if got := Jaccard("abc", "xyz"); got != 0 {
		t.Errorf("disjoint strings: Jaccard = %v", got)
	}
	if got := Jaccard("", ""); got != 1 {
		t.Errorf("empty strings: Jaccard = %v", got)
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsTokens(t *testing.T) {
	if !ContainsTokens("madagascar escape 2 africa", "escape africa") {
		t.Error("expected containment")
	}
	if ContainsTokens("madagascar escape 2 africa", "madagascar 3") {
		t.Error("unexpected containment")
	}
	// Stopwords in the needle are ignored.
	if !ContainsTokens("kingdom crystal skull", "the kingdom of the crystal skull") {
		t.Error("stopwords should not block containment")
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("ab c", 2)
	want := []string{"ab", "b ", " c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharNGrams = %v, want %v", got, want)
	}
	if CharNGrams("a", 2) != nil {
		t.Error("too-short string should yield nil")
	}
	if CharNGrams("abc", 0) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestNGramSimilarity(t *testing.T) {
	if got := NGramSimilarity("twilight", "twilight", 2); got != 1 {
		t.Errorf("identical: %v", got)
	}
	if got := NGramSimilarity("twilight", "twilght", 2); got < 0.6 {
		t.Errorf("one-typo similarity too low: %v", got)
	}
	if got := NGramSimilarity("abcdef", "uvwxyz", 2); got != 0 {
		t.Errorf("disjoint: %v", got)
	}
	if got := NGramSimilarity("", "", 2); got != 1 {
		t.Errorf("both empty: %v", got)
	}
	if got := NGramSimilarity("abcd", "", 2); got != 0 {
		t.Errorf("one empty: %v", got)
	}
}

func TestNGramSimilaritySymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return NGramSimilarity(a, b, 3) == NGramSimilarity(b, a, 3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToRoman(t *testing.T) {
	cases := map[int]string{
		1: "i", 2: "ii", 3: "iii", 4: "iv", 5: "v", 6: "vi",
		7: "vii", 8: "viii", 9: "ix", 10: "x", 11: "xi", 14: "xiv",
		19: "xix", 40: "xl", 49: "xlix",
	}
	for n, want := range cases {
		if got := ToRoman(n); got != want {
			t.Errorf("ToRoman(%d) = %q, want %q", n, got, want)
		}
	}
	if ToRoman(0) != "" || ToRoman(50) != "" || ToRoman(-1) != "" {
		t.Error("out-of-range ToRoman should return empty")
	}
}

func TestFromRomanRoundTrip(t *testing.T) {
	for n := 1; n <= 49; n++ {
		got, ok := FromRoman(ToRoman(n))
		if !ok || got != n {
			t.Errorf("round trip failed for %d: got %d ok=%v", n, got, ok)
		}
	}
}

func TestFromRomanRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "iiii", "vx", "abc", "IV", "xxxxx", "il"} {
		if _, ok := FromRoman(s); ok {
			t.Errorf("FromRoman(%q) accepted malformed input", s)
		}
	}
}

func TestWordRoundTrip(t *testing.T) {
	for n := 1; n <= 12; n++ {
		w := ToWord(n)
		if w == "" {
			t.Fatalf("ToWord(%d) empty", n)
		}
		got, ok := FromWord(w)
		if !ok || got != n {
			t.Errorf("word round trip failed for %d", n)
		}
	}
	if ToWord(0) != "" || ToWord(13) != "" {
		t.Error("out-of-range ToWord should be empty")
	}
	if _, ok := FromWord("zillion"); ok {
		t.Error("FromWord accepted garbage")
	}
}

func TestNumeralValue(t *testing.T) {
	cases := []struct {
		in string
		n  int
		ok bool
	}{
		{"4", 4, true}, {"iv", 4, true}, {"four", 4, true},
		{"2", 2, true}, {"ii", 2, true}, {"two", 2, true},
		{"0", 0, false}, {"", 0, false}, {"abc", 0, false},
		{"123", 0, false}, {"12", 12, true},
	}
	for _, c := range cases {
		n, ok := NumeralValue(c.in)
		if ok != c.ok || (ok && n != c.n) {
			t.Errorf("NumeralValue(%q) = %d,%v want %d,%v", c.in, n, ok, c.n, c.ok)
		}
	}
}

func TestNumeralForms(t *testing.T) {
	forms := NumeralForms(4)
	want := []string{"4", "iv", "four"}
	if !reflect.DeepEqual(forms, want) {
		t.Errorf("NumeralForms(4) = %v, want %v", forms, want)
	}
	forms = NumeralForms(20)
	// 20 has digits and roman (xx) but no word form.
	if !reflect.DeepEqual(forms, []string{"20", "xx"}) {
		t.Errorf("NumeralForms(20) = %v", forms)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"twilight", "twilght", 1},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		ab := EditDistance(a, b)
		bc := EditDistance(b, c)
		ac := EditDistance(a, c)
		return ac <= ab+bc
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceAtMostAgrees(t *testing.T) {
	pairs := [][2]string{
		{"kitten", "sitting"}, {"abc", "abd"}, {"", "xyz"},
		{"canon eos 350d", "canon eos 300d"}, {"a", "a"},
		{"indiana jones", "indy"},
	}
	for _, p := range pairs {
		d := EditDistance(p[0], p[1])
		for k := 0; k <= d+2; k++ {
			want := d <= k
			if got := EditDistanceAtMost(p[0], p[1], k); got != want {
				t.Errorf("EditDistanceAtMost(%q,%q,%d) = %v, want %v (d=%d)",
					p[0], p[1], k, got, want, d)
			}
		}
	}
}

func TestEditDistanceAtMostQuick(t *testing.T) {
	f := func(a, b string, kRaw uint8) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		k := int(kRaw % 6)
		return EditDistanceAtMost(a, b, k) == (EditDistance(a, b) <= k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistanceAtMostNegativeK(t *testing.T) {
	if EditDistanceAtMost("a", "a", -1) {
		t.Error("negative k must return false")
	}
}

func TestTokenEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"madagascar 2", "madagascar escape 2 africa", 2},
		{"the dark knight", "dark knight", 1},
		{"", "", 0},
		{"a b c", "", 3},
		{"indiana jones 4", "indiana jones iv", 1},
	}
	for _, c := range cases {
		if got := TokenEditDistance(c.a, c.b); got != c.want {
			t.Errorf("TokenEditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkNormalize(b *testing.B) {
	s := "Indiana Jones and the Kingdom of the Crystal Skull (2008)"
	for i := 0; i < b.N; i++ {
		_ = Normalize(s)
	}
}

func BenchmarkEditDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = EditDistance("indiana jones and the kingdom", "indiana jones kingdom crystal")
	}
}

func BenchmarkEditDistanceAtMost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = EditDistanceAtMost("indiana jones and the kingdom", "indiana jones kingdom crystal", 2)
	}
}
