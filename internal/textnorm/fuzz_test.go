package textnorm

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzNormalize drives arbitrary byte sequences through Normalize and
// checks its contract: idempotent, lower-case alphanumeric words joined by
// single spaces.
func FuzzNormalize(f *testing.F) {
	for _, seed := range []string{
		"", "The Dark Knight", "Canon EOS-350D", "!!!", "日本語 test",
		"a\tb\nc", "MiXeD CaSe 123", strings.Repeat("x", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n := Normalize(s)
		if Normalize(n) != n {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, n, Normalize(n))
		}
		if strings.Contains(n, "  ") || strings.HasPrefix(n, " ") || strings.HasSuffix(n, " ") {
			t.Fatalf("whitespace not collapsed: %q", n)
		}
		for _, r := range n {
			if r == ' ' {
				continue
			}
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				t.Fatalf("non-alphanumeric rune %q survived in %q", r, n)
			}
			if unicode.IsUpper(r) {
				t.Fatalf("upper-case rune %q survived in %q", r, n)
			}
		}
	})
}

// FuzzEditDistanceAtMost cross-checks the banded distance against the full
// dynamic program.
func FuzzEditDistanceAtMost(f *testing.F) {
	f.Add("kitten", "sitting", 2)
	f.Add("", "abc", 1)
	f.Add("same", "same", 0)
	f.Fuzz(func(t *testing.T, a, b string, k int) {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		k = k % 8
		if k < 0 {
			k = -k
		}
		want := EditDistance(a, b) <= k
		if got := EditDistanceAtMost(a, b, k); got != want {
			t.Fatalf("EditDistanceAtMost(%q, %q, %d) = %v, want %v", a, b, k, got, want)
		}
	})
}
