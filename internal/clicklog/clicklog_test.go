package clicklog

import (
	"reflect"
	"sync"
	"testing"

	"websyn/internal/alias"
	"websyn/internal/entity"
	"websyn/internal/search"
	"websyn/internal/webcorpus"
)

func TestLogBasicOps(t *testing.T) {
	l := NewLog()
	l.AddImpression("q1")
	l.AddImpression("q1")
	l.AddImpression("q2")
	l.AddClick("q1", 10)
	l.AddClick("q1", 10)
	l.AddClick("q1", 20)
	l.AddClick("q2", 10)

	if l.Impressions("q1") != 2 || l.Impressions("q2") != 1 || l.Impressions("q3") != 0 {
		t.Fatal("impression counts wrong")
	}
	if l.TotalImpressions() != 3 || l.TotalClicks() != 4 {
		t.Fatal("totals wrong")
	}
	if l.TotalClicksFor("q1") != 3 {
		t.Fatal("TotalClicksFor wrong")
	}
	gl := l.ClickedPages("q1")
	if gl[10] != 2 || gl[20] != 1 {
		t.Fatalf("GL(q1) = %v", gl)
	}
	if l.ClickedPages("q3") != nil {
		t.Fatal("unknown query should have nil GL")
	}
}

func TestLogQueriesSorted(t *testing.T) {
	l := NewLog()
	for _, q := range []string{"zebra", "apple", "mango"} {
		l.AddImpression(q)
		l.AddClick(q, 1)
	}
	want := []string{"apple", "mango", "zebra"}
	if got := l.Queries(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Queries() = %v", got)
	}
	if got := l.ClickedQueries(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ClickedQueries() = %v", got)
	}
}

func TestLogMerge(t *testing.T) {
	a, b := NewLog(), NewLog()
	a.AddImpression("q")
	a.AddClick("q", 1)
	b.AddImpression("q")
	b.AddClick("q", 1)
	b.AddClick("q", 2)
	a.Merge(b)
	if a.Impressions("q") != 2 || a.TotalClicks() != 3 {
		t.Fatal("merge totals wrong")
	}
	if a.ClickedPages("q")[1] != 2 || a.ClickedPages("q")[2] != 1 {
		t.Fatal("merge click counts wrong")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	l := NewLog()
	l.AddImpression("b")
	l.AddImpression("a")
	l.AddClick("b", 5)
	l.AddClick("a", 3)
	l.AddClick("a", 3)
	l.AddClick("a", 1)

	flat := l.Flatten()
	want := []Click{{"a", 1, 1}, {"a", 3, 2}, {"b", 5, 1}}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("Flatten() = %v", flat)
	}

	l2 := FromClicks(flat, map[string]int{"a": 1, "b": 1})
	if l2.TotalClicks() != l.TotalClicks() {
		t.Fatal("round trip lost clicks")
	}
	if !reflect.DeepEqual(l2.Flatten(), flat) {
		t.Fatal("round trip not stable")
	}
}

func TestSimConfigValidation(t *testing.T) {
	bad := DefaultSimConfig(1, 100)
	bad.Impressions = 0
	if err := bad.check(); err == nil {
		t.Fatal("zero impressions accepted")
	}
	bad = DefaultSimConfig(1, 100)
	bad.TopK = 0
	if err := bad.check(); err == nil {
		t.Fatal("zero TopK accepted")
	}
	bad = DefaultSimConfig(1, 100)
	bad.AttractOwn = 1.5
	if err := bad.check(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

// buildMovieStack builds the substrate once for the simulation tests.
var stackOnce sync.Once
var stackModel *alias.Model
var stackIndex *search.Index

func movieStack(t *testing.T) (*alias.Model, *search.Index) {
	t.Helper()
	stackOnce.Do(func() {
		cat, err := entity.Movies2008()
		if err != nil {
			t.Fatal(err)
		}
		stackModel, err = alias.Build(cat, alias.MovieParams())
		if err != nil {
			t.Fatal(err)
		}
		corpus, err := webcorpus.Build(stackModel, webcorpus.DefaultConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		stackIndex = search.NewIndex(corpus)
	})
	if stackModel == nil || stackIndex == nil {
		t.Fatal("stack init failed")
	}
	return stackModel, stackIndex
}

func TestSimulateProducesImpressions(t *testing.T) {
	model, idx := movieStack(t)
	log, err := Simulate(model, idx, DefaultSimConfig(11, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if log.TotalImpressions() != 20000 {
		t.Fatalf("impressions = %d, want 20000", log.TotalImpressions())
	}
	if log.TotalClicks() == 0 {
		t.Fatal("no clicks simulated")
	}
	// Click-through rate should be plausible: between 0.2 and 2 clicks per
	// impression on average.
	ctr := float64(log.TotalClicks()) / float64(log.TotalImpressions())
	if ctr < 0.2 || ctr > 2 {
		t.Fatalf("CTR %.3f implausible", ctr)
	}
}

func TestSimulateDeterministicAcrossWorkers(t *testing.T) {
	model, idx := movieStack(t)
	cfg1 := DefaultSimConfig(42, 8000)
	cfg1.Workers = 1
	cfg4 := DefaultSimConfig(42, 8000)
	cfg4.Workers = 4

	l1, err := Simulate(model, idx, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	l4, err := Simulate(model, idx, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	f1, f4 := l1.Flatten(), l4.Flatten()
	if !reflect.DeepEqual(f1, f4) {
		t.Fatalf("logs differ across worker counts: %d vs %d tuples", len(f1), len(f4))
	}
}

func TestSimulateDifferentSeedsDiffer(t *testing.T) {
	model, idx := movieStack(t)
	l1, err := Simulate(model, idx, DefaultSimConfig(1, 5000))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Simulate(model, idx, DefaultSimConfig(2, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(l1.Flatten(), l2.Flatten()) {
		t.Fatal("different seeds produced identical logs")
	}
}

func TestSynonymClicksConcentrateOnEntity(t *testing.T) {
	model, idx := movieStack(t)
	log, err := Simulate(model, idx, DefaultSimConfig(11, 40000))
	if err != nil {
		t.Fatal(err)
	}
	// "dark knight" is the top informal synonym of entity 0: the great
	// majority of its clicks must land on entity 0's pages.
	gl := log.ClickedPages("dark knight")
	if len(gl) == 0 {
		t.Fatal("dark knight never clicked anything")
	}
	own, total := 0, 0
	for pid, n := range gl {
		total += n
		if idx.Corpus().ByID(pid).EntityID == 0 {
			own += n
		}
	}
	if frac := float64(own) / float64(total); frac < 0.8 {
		t.Fatalf("only %.2f of dark knight clicks on its entity", frac)
	}
}

func TestHypernymClicksScatter(t *testing.T) {
	model, idx := movieStack(t)
	log, err := Simulate(model, idx, DefaultSimConfig(11, 40000))
	if err != nil {
		t.Fatal(err)
	}
	// "indiana jones" (franchise hypernym) must spread clicks over hub and
	// sibling pages, not only the catalog movie.
	gl := log.ClickedPages("indiana jones")
	if len(gl) == 0 {
		t.Fatal("hypernym never clicked")
	}
	indy := model.Catalog().ByNorm("indiana jones and the kingdom of the crystal skull")
	ownPages, otherPages := 0, 0
	for pid := range gl {
		if idx.Corpus().ByID(pid).EntityID == indy.ID {
			ownPages++
		} else {
			otherPages++
		}
	}
	if otherPages == 0 {
		t.Fatal("hypernym clicks never left the catalog entity — Figure 1(b) geometry broken")
	}
}

func TestNoiseQueriesClickNoisePages(t *testing.T) {
	model, idx := movieStack(t)
	log, err := Simulate(model, idx, DefaultSimConfig(11, 40000))
	if err != nil {
		t.Fatal(err)
	}
	gl := log.ClickedPages("youtube")
	if len(gl) == 0 {
		t.Fatal("youtube never clicked")
	}
	noise, total := 0, 0
	for pid, n := range gl {
		total += n
		if idx.Corpus().ByID(pid).Type == webcorpus.NoisePage {
			noise += n
		}
	}
	if frac := float64(noise) / float64(total); frac < 0.7 {
		t.Fatalf("only %.2f of youtube clicks on noise pages", frac)
	}
}

func TestSuffixOf(t *testing.T) {
	s := &sim{suffixes: alias.RefinementSuffixes()}
	cases := map[string]string{
		"indiana jones 4 trailer": "trailer",
		"350d memory card":        "memory card",
		"dark knight":             "",
		"just a price":            "price",
	}
	for in, want := range cases {
		if got := s.suffixOf(in); got != want {
			t.Errorf("suffixOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPositionBias(t *testing.T) {
	// The cascade must produce position bias: across popular queries, the
	// top-ranked result of each query collects more clicks than the
	// bottom-ranked one.
	model, idx := movieStack(t)
	cfg := DefaultSimConfig(11, 40000)
	cfg.ServeExtra = 0 // deterministic serving so ranks are stable
	log, err := Simulate(model, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	topClicks, bottomClicks := 0, 0
	for _, e := range model.Catalog().All()[:20] {
		results := idx.Search(e.Norm(), cfg.TopK)
		if len(results) < cfg.TopK {
			continue
		}
		gl := log.ClickedPages(e.Norm())
		topClicks += gl[results[0].PageID]
		bottomClicks += gl[results[cfg.TopK-1].PageID]
	}
	if topClicks <= bottomClicks {
		t.Fatalf("no position bias: top %d vs bottom %d", topClicks, bottomClicks)
	}
	// The skew should be substantial (cascade with 0.85 decay gives the
	// last position roughly a quarter of the first position's exposure).
	if float64(topClicks) < 2*float64(bottomClicks) {
		t.Fatalf("position bias too weak: top %d vs bottom %d", topClicks, bottomClicks)
	}
}

func TestImpressionConservation(t *testing.T) {
	model, idx := movieStack(t)
	log, err := Simulate(model, idx, DefaultSimConfig(3, 12345))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, q := range log.Queries() {
		sum += log.Impressions(q)
	}
	if sum != 12345 || log.TotalImpressions() != 12345 {
		t.Fatalf("impressions not conserved: %d/%d", sum, log.TotalImpressions())
	}
}

func TestServeWithoutJitter(t *testing.T) {
	model, idx := movieStack(t)
	cfg := DefaultSimConfig(5, 1000)
	cfg.ServeExtra = 0
	log, err := Simulate(model, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if log.TotalImpressions() != 1000 {
		t.Fatal("impression count wrong without jitter")
	}
}
