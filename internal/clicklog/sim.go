package clicklog

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"websyn/internal/alias"
	"websyn/internal/entity"
	"websyn/internal/rng"
	"websyn/internal/search"
	"websyn/internal/textnorm"
	"websyn/internal/webcorpus"
)

// mathExp is a local alias keeping the hot serve loop readable.
func mathExp(x float64) float64 { return math.Exp(x) }

// SimConfig tunes the user population simulation.
type SimConfig struct {
	// Seed drives all randomness; same seed, same log.
	Seed uint64
	// Impressions is the total number of issued queries to simulate.
	Impressions int
	// TopK is how many results a user sees per impression.
	TopK int
	// ExamineDecay is the probability of scanning one position further when
	// the current result was not clicked (position bias).
	ExamineDecay float64
	// AfterClickContinue is the probability of continuing to scan after a
	// click (most sessions stop at the first satisfying result).
	AfterClickContinue float64

	// Attraction probabilities by (intent, page provenance). See attract.
	AttractOwn     float64 // synonym intent, entity's own page
	AttractDeep    float64 // refinement intent, matching deep page
	AttractOwnWeak float64 // refinement intent, other own page
	AttractHub     float64 // hypernym intent, hub/sibling of the scope
	AttractMember  float64 // hypernym intent, page of an in-scope entity
	AttractScope   float64 // synonym intent, hub of the same scope
	AttractNav     float64 // noise intent, its own destination page
	AttractStray   float64 // anything else (accidental clicks)

	// ServeExtra and ServeDecay model result churn over a months-long log:
	// the engine retrieves TopK+ServeExtra candidates per query and each
	// impression shows TopK of them, sampled without replacement with
	// weight exp(-ServeDecay * rank). Over many impressions a query's
	// clicked set GL can therefore cover slightly more than one static
	// result page, as it does in real logs.
	ServeExtra int
	ServeDecay float64

	// Workers bounds the simulation fan-out; 0 means GOMAXPROCS.
	Workers int
}

// DefaultSimConfig returns the simulation parameters used by the
// experiments.
func DefaultSimConfig(seed uint64, impressions int) SimConfig {
	return SimConfig{
		Seed:               seed,
		Impressions:        impressions,
		TopK:               10,
		ExamineDecay:       0.85,
		AfterClickContinue: 0.45,
		AttractOwn:         0.62,
		AttractDeep:        0.85,
		AttractOwnWeak:     0.04,
		AttractHub:         0.50,
		AttractMember:      0.22,
		AttractScope:       0.06,
		AttractNav:         0.90,
		AttractStray:       0.008,
		ServeExtra:         4,
		ServeDecay:         0.45,
		Workers:            0,
	}
}

// check validates the configuration.
func (cfg SimConfig) check() error {
	if cfg.Impressions <= 0 {
		return fmt.Errorf("clicklog: Impressions must be positive, got %d", cfg.Impressions)
	}
	if cfg.TopK <= 0 {
		return fmt.Errorf("clicklog: TopK must be positive, got %d", cfg.TopK)
	}
	for _, p := range []float64{cfg.ExamineDecay, cfg.AfterClickContinue,
		cfg.AttractOwn, cfg.AttractDeep, cfg.AttractOwnWeak, cfg.AttractHub,
		cfg.AttractMember, cfg.AttractScope, cfg.AttractNav, cfg.AttractStray} {
		if p < 0 || p > 1 {
			return fmt.Errorf("clicklog: probability %v outside [0,1]", p)
		}
	}
	return nil
}

// sim is the immutable shared state of one simulation run.
type sim struct {
	cfg     SimConfig
	model   *alias.Model
	corpus  *webcorpus.Corpus
	entries []alias.Entry
	sampler *rng.Weighted
	results map[string][]search.Result

	entityScope []string         // entity ID -> franchise/brand scope key
	actorOf     map[string][]int // "actor:x" -> entity IDs of x's movies
	suffixes    []string         // refinement suffixes, longest first
}

// Simulate runs the user population against the index and returns the
// aggregated click log. The run is deterministic in cfg.Seed and
// parallelism-invariant: shards use independent split RNG streams and merge
// by summation.
func Simulate(model *alias.Model, idx *search.Index, cfg SimConfig) (*Log, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	entries := model.Entries()
	if len(entries) == 0 {
		return nil, fmt.Errorf("clicklog: alias universe is empty")
	}
	weights := make([]float64, len(entries))
	for i, e := range entries {
		weights[i] = e.Volume
	}
	sampler, err := rng.NewWeighted(weights)
	if err != nil {
		return nil, fmt.Errorf("clicklog: building query sampler: %w", err)
	}

	s := &sim{
		cfg:      cfg,
		model:    model,
		corpus:   idx.Corpus(),
		entries:  entries,
		sampler:  sampler,
		actorOf:  make(map[string][]int),
		suffixes: alias.RefinementSuffixes(),
	}
	s.entityScope = make([]string, model.Catalog().Len())
	for _, e := range model.Catalog().All() {
		s.entityScope[e.ID] = entityScopeKey(e)
	}
	for _, actor := range alias.Actors() {
		for _, title := range alias.ActorMovies(actor) {
			if ent := model.Catalog().ByNorm(title); ent != nil {
				s.actorOf["actor:"+actor] = append(s.actorOf["actor:"+actor], ent.ID)
			}
		}
	}
	s.precomputeResults(idx)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Impressions {
		workers = cfg.Impressions
	}
	// The shard count is a fixed constant (not the worker count) so that
	// shard i receives the same split RNG stream on every run: the log is
	// identical whatever parallelism the host offers.
	const shards = 64
	master := rng.New(cfg.Seed)
	shardSrc := master.SplitN(shards)
	per := cfg.Impressions / shards
	extra := cfg.Impressions % shards

	logs := make([]*Log, shards)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < shards; i++ {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			logs[i] = NewLog()
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i, n int) {
			defer wg.Done()
			defer func() { <-sem }()
			logs[i] = s.runShard(shardSrc[i], n)
		}(i, n)
	}
	wg.Wait()

	merged := NewLog()
	for _, l := range logs {
		merged.Merge(l)
	}
	return merged, nil
}

// entityScopeKey mirrors the alias package's scope derivation.
func entityScopeKey(e *entity.Entity) string {
	switch e.Kind {
	case entity.Movie:
		if e.Franchise != "" {
			return textnorm.Normalize(e.Franchise)
		}
		return ""
	case entity.Camera:
		return textnorm.Normalize(e.Brand)
	case entity.Software:
		if e.Franchise != "" {
			return textnorm.Normalize(e.Franchise)
		}
		return textnorm.Normalize(e.Brand)
	}
	return ""
}

// precomputeResults runs every distinct universe query against the index
// once, in parallel.
func (s *sim) precomputeResults(idx *search.Index) {
	distinct := make([]string, 0, len(s.entries))
	seen := make(map[string]bool, len(s.entries))
	for _, e := range s.entries {
		if !seen[e.Text] {
			seen[e.Text] = true
			distinct = append(distinct, e.Text)
		}
	}
	sort.Strings(distinct)
	s.results = make(map[string][]search.Result, len(distinct))
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(distinct) + workers - 1) / workers
	retrieve := s.cfg.TopK + s.cfg.ServeExtra
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(distinct) {
			break
		}
		hi := lo + chunk
		if hi > len(distinct) {
			hi = len(distinct)
		}
		wg.Add(1)
		go func(qs []string) {
			defer wg.Done()
			local := make(map[string][]search.Result, len(qs))
			for _, q := range qs {
				local[q] = idx.Search(q, retrieve)
			}
			mu.Lock()
			for q, r := range local {
				s.results[q] = r
			}
			mu.Unlock()
		}(distinct[lo:hi])
	}
	wg.Wait()
}

// runShard simulates n impressions on one RNG stream.
func (s *sim) runShard(src *rng.Source, n int) *Log {
	log := NewLog()
	// Scratch buffers reused across impressions.
	shown := make([]int, 0, s.cfg.TopK)
	weights := make([]float64, 0, s.cfg.TopK+s.cfg.ServeExtra)
	for i := 0; i < n; i++ {
		entry := s.entries[s.sampler.Sample(src)]
		log.AddImpression(entry.Text)
		shown = s.serve(src, s.results[entry.Text], shown[:0], &weights)
		for _, pageID := range shown {
			page := s.corpus.ByID(pageID)
			clicked := src.Bool(s.attract(page, entry))
			if clicked {
				log.AddClick(entry.Text, page.ID)
				if !src.Bool(s.cfg.AfterClickContinue) {
					break
				}
			} else if !src.Bool(s.cfg.ExamineDecay) {
				break
			}
		}
	}
	return log
}

// serve materializes one impression's result page: TopK pages sampled
// without replacement from the retrieved candidates with rank-decayed
// weights. With ServeExtra = 0 the candidate list is shown verbatim.
func (s *sim) serve(src *rng.Source, candidates []search.Result, shown []int, scratch *[]float64) []int {
	if len(candidates) <= s.cfg.TopK || s.cfg.ServeExtra == 0 {
		for _, r := range candidates {
			if len(shown) == s.cfg.TopK {
				break
			}
			shown = append(shown, r.PageID)
		}
		return shown
	}
	w := (*scratch)[:0]
	for i := range candidates {
		w = append(w, mathExp(-s.cfg.ServeDecay*float64(i)))
	}
	*scratch = w
	for len(shown) < s.cfg.TopK {
		total := 0.0
		for _, x := range w {
			total += x
		}
		pick := src.Float64() * total
		idx := 0
		for ; idx < len(w)-1; idx++ {
			pick -= w[idx]
			if pick < 0 {
				break
			}
		}
		shown = append(shown, candidates[idx].PageID)
		w[idx] = 0
	}
	return shown
}

// attract returns the probability that a user with the entry's intent
// clicks the page once examined. This is the behavioural core of the
// simulation: it encodes the Venn-diagram click geometry of the paper's
// Figure 1 (synonyms concentrate inside the surrogate set, hypernyms
// scatter over the scope, hyponyms concentrate on deep pages, related
// queries live elsewhere with occasional strays).
func (s *sim) attract(p *webcorpus.Page, e alias.Entry) float64 {
	cfg := &s.cfg
	switch e.Label {
	case alias.Synonym:
		if p.EntityID == e.EntityID {
			return cfg.AttractOwn
		}
		if p.Scope != "" && p.Scope == e.Scope {
			return cfg.AttractScope
		}
	case alias.Hyponym:
		if p.EntityID == e.EntityID {
			if p.Type.DeepFor(s.suffixOf(e.Text)) {
				return cfg.AttractDeep
			}
			return cfg.AttractOwnWeak
		}
		if p.Scope != "" && p.Scope == e.Scope {
			return cfg.AttractStray * 2
		}
	case alias.Hypernym:
		if p.Scope != "" && p.Scope == e.Scope {
			return cfg.AttractHub
		}
		if p.EntityID >= 0 && s.entityScope[p.EntityID] == e.Scope && e.Scope != "" {
			return cfg.AttractMember
		}
	case alias.Related:
		if strings.HasPrefix(e.Scope, "actor:") {
			if p.Scope == e.Scope {
				return cfg.AttractNav * 0.9
			}
			for _, id := range s.actorOf[e.Scope] {
				if p.EntityID == id {
					return cfg.AttractMember * 0.6
				}
			}
		} else if e.Scope == "category" {
			if p.Type == webcorpus.Portal {
				return cfg.AttractHub
			}
			if p.EntityID >= 0 {
				return cfg.AttractStray * 3
			}
		}
	case alias.Noise:
		if p.Scope == "noise:"+e.Text {
			return cfg.AttractNav
		}
		if p.Type == webcorpus.NoisePage {
			return cfg.AttractStray * 5
		}
	}
	return cfg.AttractStray
}

// suffixOf returns the refinement suffix of a hyponym query text, or "".
func (s *sim) suffixOf(text string) string {
	for _, suf := range s.suffixes {
		if strings.HasSuffix(text, " "+suf) {
			return suf
		}
	}
	return ""
}
