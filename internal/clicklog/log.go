// Package clicklog implements Click Data L: the aggregated (query, page,
// clicks) tuples of paper Section II.B, and the simulated user population
// that generates them.
//
// The simulation stands in for Bing's July-November 2008 click logs. Users
// are modeled with a position-biased cascade: a user issues a query drawn
// from the alias universe, scans the ranked results top-down with decaying
// attention, and clicks pages whose provenance matches the query's intent.
// The aggregate statistics the miner depends on — informal aliases clicking
// into their entity's surrogate pages, hypernyms scattering across a
// franchise's neighbourhood, refinements concentrating on deep pages,
// background noise occasionally straying anywhere — all emerge from that
// per-impression behaviour rather than being painted on directly.
package clicklog

import (
	"sort"
)

// Click is one aggregated row of Click Data L: users clicked page PageID
// Count times after issuing Query. Queries are stored normalized.
type Click struct {
	Query  string
	PageID int
	Count  int
}

// Log is the aggregated click log plus the query impression counts needed
// by the weighted metrics ("synonym frequency in query log").
type Log struct {
	clicks      map[string]map[int]int
	impressions map[string]int
	totalImpr   int
	totalClicks int
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{
		clicks:      make(map[string]map[int]int),
		impressions: make(map[string]int),
	}
}

// AddImpression records that query was issued once.
func (l *Log) AddImpression(query string) {
	l.impressions[query]++
	l.totalImpr++
}

// AddClick records one click on pageID for query.
func (l *Log) AddClick(query string, pageID int) {
	m := l.clicks[query]
	if m == nil {
		m = make(map[int]int)
		l.clicks[query] = m
	}
	m[pageID]++
	l.totalClicks++
}

// Merge folds other into l (used to combine per-worker shards).
func (l *Log) Merge(other *Log) {
	for q, n := range other.impressions {
		l.impressions[q] += n
	}
	l.totalImpr += other.totalImpr
	for q, pages := range other.clicks {
		m := l.clicks[q]
		if m == nil {
			m = make(map[int]int, len(pages))
			l.clicks[q] = m
		}
		for p, n := range pages {
			m[p] += n
		}
	}
	l.totalClicks += other.totalClicks
}

// ClickedPages returns GL(w', P) together with the click counts: the pages
// clicked at least once for the normalized query (paper Eq. 2). Callers
// must not mutate the returned map.
func (l *Log) ClickedPages(query string) map[int]int { return l.clicks[query] }

// TotalClicksFor returns the summed click count of the query over all pages
// (the denominator of ICR, Eq. 4).
func (l *Log) TotalClicksFor(query string) int {
	total := 0
	for _, n := range l.clicks[query] {
		total += n
	}
	return total
}

// Impressions returns how many times the query was issued.
func (l *Log) Impressions(query string) int { return l.impressions[query] }

// TotalImpressions returns the log's impression count.
func (l *Log) TotalImpressions() int { return l.totalImpr }

// TotalClicks returns the log's click count.
func (l *Log) TotalClicks() int { return l.totalClicks }

// Queries returns every query with at least one impression, sorted.
func (l *Log) Queries() []string {
	out := make([]string, 0, len(l.impressions))
	for q := range l.impressions {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// ClickedQueries returns every query with at least one click, sorted.
func (l *Log) ClickedQueries() []string {
	out := make([]string, 0, len(l.clicks))
	for q := range l.clicks {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// Flatten returns the aggregated tuples in deterministic (query, page)
// order, for serialization.
func (l *Log) Flatten() []Click {
	var out []Click
	for _, q := range l.ClickedQueries() {
		pages := l.clicks[q]
		ids := make([]int, 0, len(pages))
		for p := range pages {
			ids = append(ids, p)
		}
		sort.Ints(ids)
		for _, p := range ids {
			out = append(out, Click{Query: q, PageID: p, Count: pages[p]})
		}
	}
	return out
}

// FromClicks rebuilds a log from serialized tuples and impression counts
// (impressions may be nil when only click structure is needed).
func FromClicks(clicks []Click, impressions map[string]int) *Log {
	l := NewLog()
	for _, c := range clicks {
		m := l.clicks[c.Query]
		if m == nil {
			m = make(map[int]int)
			l.clicks[c.Query] = m
		}
		m[c.PageID] += c.Count
		l.totalClicks += c.Count
	}
	for q, n := range impressions {
		l.impressions[q] = n
		l.totalImpr += n
	}
	return l
}
