package webcorpus

import (
	"strings"
	"testing"

	"websyn/internal/alias"
	"websyn/internal/entity"
	"websyn/internal/textnorm"
)

func movieCorpus(t *testing.T) (*alias.Model, *Corpus) {
	t.Helper()
	cat, err := entity.Movies2008()
	if err != nil {
		t.Fatal(err)
	}
	model, err := alias.Build(cat, alias.MovieParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(model, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return model, c
}

func cameraCorpus(t *testing.T) (*alias.Model, *Corpus) {
	t.Helper()
	cat, err := entity.Cameras2008()
	if err != nil {
		t.Fatal(err)
	}
	model, err := alias.Build(cat, alias.CameraParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(model, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return model, c
}

func TestPageTypeString(t *testing.T) {
	if Official.String() != "official" || NoisePage.String() != "noisepage" {
		t.Fatal("PageType.String mismatch")
	}
	if PageType(99).String() == "" {
		t.Fatal("unknown PageType should still stringify")
	}
}

func TestDeepFor(t *testing.T) {
	cases := []struct {
		t      PageType
		suffix string
		want   bool
	}{
		{Trailer, "trailer", true},
		{Showtimes, "showtimes", true},
		{Manual, "manual", true},
		{Accessories, "battery", true},
		{Accessories, "memory card", true},
		{Shop, "price", true},
		{Shop, "dvd", true},
		{Review, "review", true},
		{Official, "trailer", false},
		{Trailer, "manual", false},
		{Wiki, "", false},
	}
	for _, c := range cases {
		if got := c.t.DeepFor(c.suffix); got != c.want {
			t.Errorf("%v.DeepFor(%q) = %v, want %v", c.t, c.suffix, got, c.want)
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"The Dark Knight": "the-dark-knight",
		"Canon EOS-350D":  "canon-eos-350d",
		"  spaced  out  ": "spaced-out",
		"Mamma Mia!":      "mamma-mia",
		"":                "",
		"---":             "",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestUniqueURLsAndIDs(t *testing.T) {
	_, c := movieCorpus(t)
	urls := make(map[string]bool, c.Len())
	for i, p := range c.Pages() {
		if p.ID != i {
			t.Fatalf("page %d has ID %d", i, p.ID)
		}
		if urls[p.URL] {
			t.Fatalf("duplicate URL %q", p.URL)
		}
		urls[p.URL] = true
		if c.ByURL(p.URL) != p {
			t.Fatalf("ByURL(%q) mismatch", p.URL)
		}
	}
}

func TestByIDBounds(t *testing.T) {
	_, c := movieCorpus(t)
	if c.ByID(-1) != nil || c.ByID(c.Len()) != nil {
		t.Fatal("out-of-range ByID should be nil")
	}
}

func TestEveryEntityHasEnoughPages(t *testing.T) {
	model, c := movieCorpus(t)
	for _, e := range model.Catalog().All() {
		pages := c.EntityPages(e.ID)
		// Movies must all have more than k=10 core pages so GA(u) stays
		// within the entity (the IPC=10 coverage mechanism).
		if len(pages) <= 10 {
			t.Fatalf("movie %q has only %d pages", e.Canonical, len(pages))
		}
	}
}

func TestCameraTailHasFewerPages(t *testing.T) {
	model, c := cameraCorpus(t)
	head, tail := 0, 0
	for _, e := range model.Catalog().All() {
		n := len(c.EntityPages(e.ID))
		switch {
		case e.PopRank < 60:
			head += n
		case e.PopRank >= 300:
			tail += n
		}
	}
	headAvg := float64(head) / 60
	tailAvg := float64(tail) / float64(model.Catalog().Len()-300)
	if headAvg <= tailAvg {
		t.Fatalf("head cameras (%f pages avg) should outnumber tail (%f)", headAvg, tailAvg)
	}
}

func TestPagesCarryCanonicalTokens(t *testing.T) {
	model, c := movieCorpus(t)
	for _, e := range model.Catalog().All()[:10] {
		for _, pid := range c.EntityPages(e.ID) {
			p := c.ByID(pid)
			for _, tok := range textnorm.SignificantTokens(e.Canonical) {
				if p.Terms[tok] == 0 {
					t.Fatalf("page %d of %q missing canonical token %q", pid, e.Canonical, tok)
				}
			}
		}
	}
}

func TestDeepPageTitleWeightLower(t *testing.T) {
	// The per-type canonical-token weight must be diluted for deep pages
	// (the ranking-level consequence is asserted in the search package).
	for _, deep := range []PageType{Trailer, Showtimes, Manual, Accessories} {
		if titleWeightFor(deep) >= titleWeightFor(Official) {
			t.Fatalf("deep type %v title weight not below core", deep)
		}
	}
}

func TestShopPagesCarryAliases(t *testing.T) {
	// With AliasIncludeShop at 0.95, a popular entity's shop pages should
	// contain at least one informal alias token that is absent from the
	// canonical string ("content creators list alternative names").
	model, c := cameraCorpus(t)
	rebel := model.Catalog().ByNorm("canon eos 350d")
	if rebel == nil {
		t.Fatal("EOS 350D missing")
	}
	found := false
	for _, pid := range c.EntityPages(rebel.ID) {
		p := c.ByID(pid)
		if p.Type == Shop && p.Terms["rebel"] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no shop page of the EOS 350D carries the token \"rebel\"")
	}
}

func TestFranchiseHubsExist(t *testing.T) {
	model, c := movieCorpus(t)
	hubs := map[string]bool{}
	siblings := 0
	for _, p := range c.Pages() {
		switch p.Type {
		case FranchiseHub:
			hubs[p.Scope] = true
		case Sibling:
			siblings++
		}
	}
	if !hubs["indiana jones"] || !hubs["batman"] {
		t.Fatalf("missing franchise hubs: %v", hubs)
	}
	if siblings < len(hubs)*2 {
		t.Fatalf("only %d sibling pages for %d franchises", siblings, len(hubs))
	}
	_ = model
}

func TestBrandAndLineHubsExist(t *testing.T) {
	_, c := cameraCorpus(t)
	brandHubs, lineHubs := 0, 0
	for _, p := range c.Pages() {
		switch p.Type {
		case BrandHub:
			brandHubs++
		case LineHub:
			lineHubs++
		}
	}
	if brandHubs < 15 {
		t.Fatalf("only %d brand hubs", brandHubs)
	}
	if lineHubs < 10 {
		t.Fatalf("only %d line hubs", lineHubs)
	}
}

func TestActorPagesExist(t *testing.T) {
	_, c := movieCorpus(t)
	count := 0
	for _, p := range c.Pages() {
		if p.Type == ActorPage {
			count++
			if !strings.HasPrefix(p.Scope, "actor:") {
				t.Fatalf("actor page scope %q", p.Scope)
			}
		}
	}
	if count < 50 {
		t.Fatalf("only %d actor pages", count)
	}
}

func TestNoisePagesCoverNoiseQueries(t *testing.T) {
	_, c := movieCorpus(t)
	scopes := map[string]bool{}
	for _, p := range c.Pages() {
		if p.Type == NoisePage {
			scopes[p.Scope] = true
		}
	}
	for _, q := range alias.NoiseTexts() {
		if !scopes["noise:"+q] {
			t.Fatalf("no noise page for query %q", q)
		}
	}
}

func TestPageLengthConsistent(t *testing.T) {
	_, c := movieCorpus(t)
	for _, p := range c.Pages()[:200] {
		sum := 0.0
		for _, w := range p.Terms {
			sum += w
		}
		if diff := sum - p.Length; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("page %d length %f != term sum %f", p.ID, p.Length, sum)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, c1 := movieCorpus(t)
	_, c2 := movieCorpus(t)
	if c1.Len() != c2.Len() {
		t.Fatal("corpus sizes differ across builds")
	}
	for i := range c1.Pages() {
		a, b := c1.ByID(i), c2.ByID(i)
		if a.URL != b.URL || a.Length != b.Length || len(a.Terms) != len(b.Terms) {
			t.Fatalf("page %d differs across builds", i)
		}
	}
}

func TestDifferentSeedsDifferentFiller(t *testing.T) {
	cat, _ := entity.Movies2008()
	model, _ := alias.Build(cat, alias.MovieParams())
	c1, err := Build(model, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Build(model, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range c1.Pages() {
		if len(c1.ByID(i).Terms) == len(c2.ByID(i).Terms) {
			same++
		}
	}
	if same == c1.Len() {
		t.Fatal("different seeds produced byte-identical corpora (filler not seeded?)")
	}
}

func softwareCorpus(t *testing.T) (*alias.Model, *Corpus) {
	t.Helper()
	cat, err := entity.Software2008()
	if err != nil {
		t.Fatal(err)
	}
	model, err := alias.Build(cat, alias.SoftwareParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(model, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return model, c
}

func TestSoftwareDomainPages(t *testing.T) {
	model, c := softwareCorpus(t)
	downloads, productHubs, vendorHubs := 0, 0, 0
	for _, p := range c.Pages() {
		switch p.Type {
		case Download:
			downloads++
			if p.EntityID < 0 {
				t.Fatal("download page without entity")
			}
		case FranchiseHub:
			productHubs++
		case BrandHub:
			vendorHubs++
		}
	}
	if downloads < model.Catalog().Len() {
		t.Fatalf("only %d download pages for %d products", downloads, model.Catalog().Len())
	}
	if productHubs == 0 || vendorHubs == 0 {
		t.Fatalf("hubs missing: %d product, %d vendor", productHubs, vendorHubs)
	}
}

func TestSoftwareEntityPagesCarryCodenames(t *testing.T) {
	model, c := softwareCorpus(t)
	leopard := model.Catalog().ByNorm("apple mac os x 10 5")
	if leopard == nil {
		t.Fatal("Mac OS X 10.5 missing")
	}
	found := false
	for _, pid := range c.EntityPages(leopard.ID) {
		if c.ByID(pid).Terms["leopard"] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no page of Mac OS X 10.5 carries the codename token")
	}
}

func TestDownloadDeepFor(t *testing.T) {
	if !Download.DeepFor("download") || !Download.DeepFor("free download") {
		t.Fatal("Download should serve download refinements")
	}
	if Download.DeepFor("review") {
		t.Fatal("Download should not serve review refinements")
	}
}

func TestAliasIncludeProbCoversTypes(t *testing.T) {
	cfg := DefaultConfig(1)
	for _, pt := range []PageType{Official, Wiki, Review, Shop, Forum, News,
		Trailer, Showtimes, Manual, Accessories, FranchiseHub, NoisePage} {
		p := cfg.aliasIncludeProb(pt)
		if p < 0 || p > 1 {
			t.Fatalf("aliasIncludeProb(%v) = %v", pt, p)
		}
	}
}
