// Package webcorpus builds the synthetic Web the simulation runs against.
//
// The paper's method needs two properties from the Web, both of which this
// corpus reproduces:
//
//  1. Every entity has representative surrogate pages (official site, wiki
//     entry, review pages, retailer listings, forum threads) that a search
//     engine retrieves for the entity's canonical string.
//  2. Content creators enrich pages with alternative names ("Digital REBEL
//     XT", "350D" on an eBay listing), so queries using informal aliases
//     retrieve those same surrogate pages — the bridge the miner exploits.
//
// Beyond entity pages the corpus contains the page neighbourhoods that give
// the non-synonym query classes somewhere else to click: franchise and brand
// hub pages plus sibling pages (hypernym targets), per-intent deep pages
// such as trailer and manual pages (hyponym targets), actor pages and
// category portals (related targets), and navigational noise pages.
package webcorpus

import (
	"fmt"
	"sort"
	"strings"
)

// PageType classifies a page's role in the synthetic Web.
type PageType int

const (
	// Official is the entity's own site (studio page, manufacturer spec
	// page).
	Official PageType = iota
	// Wiki is the encyclopedia entry. Only sufficiently popular entities
	// get one — the fact the Wikipedia baseline's coverage hinges on.
	Wiki
	// Review is a critic/review-site page (imdb-like, dpreview-like).
	Review
	// Shop is a retailer listing. Shop pages carry the most informal
	// aliases (sellers maximize retrievability).
	Shop
	// Forum is a fan/user discussion thread, alias-rich.
	Forum
	// News is press coverage.
	News
	// Trailer is a movie's trailer/video deep page.
	Trailer
	// Showtimes is a movie's ticketing deep page.
	Showtimes
	// Manual is a camera's support/manual deep page.
	Manual
	// Accessories is a camera's battery/charger/accessory deep page.
	Accessories
	// FranchiseHub aggregates a movie franchise.
	FranchiseHub
	// BrandHub aggregates a camera brand.
	BrandHub
	// LineHub is a retailer category page for one product line.
	LineHub
	// Sibling is a page about a non-catalog member of a franchise (an older
	// movie in the series) that hypernym queries click.
	Sibling
	// ActorPage is a celebrity page (the "Harrison Ford" Related target).
	ActorPage
	// Portal is a generic category portal ("digital camera reviews").
	Portal
	// NoisePage serves a background navigational query.
	NoisePage
	// Download is a software product's download/mirror deep page.
	Download
)

// String returns a short lower-case name for the page type.
func (t PageType) String() string {
	names := [...]string{
		"official", "wiki", "review", "shop", "forum", "news", "trailer",
		"showtimes", "manual", "accessories", "franchisehub", "brandhub",
		"linehub", "sibling", "actorpage", "portal", "noisepage", "download",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("pagetype(%d)", int(t))
}

// DeepFor reports whether the page type is a deep (sub-intent) page that a
// refinement suffix targets. The click model uses it to route hyponym-query
// clicks onto the matching deep page.
func (t PageType) DeepFor(suffix string) bool {
	switch suffix {
	case "trailer", "soundtrack":
		return t == Trailer
	case "showtimes":
		return t == Showtimes
	case "dvd":
		return t == Shop
	case "review", "cast":
		return t == Review
	case "manual", "system requirements":
		return t == Manual
	case "price":
		return t == Shop
	case "battery", "charger", "accessories", "memory card":
		return t == Accessories
	case "download", "free download", "update", "trial":
		return t == Download
	}
	return false
}

// Page is one synthetic Web page: a bag of weighted terms plus provenance
// metadata the click model keys on. The miner never reads Terms — it sees
// pages only as opaque IDs inside Search Data and Click Data, exactly as the
// paper's method sees URLs.
type Page struct {
	ID       int
	URL      string
	Type     PageType
	EntityID int    // owning entity, -1 for hubs/portals/noise
	Scope    string // franchise/brand/actor/portal key, "" for entity pages

	// Terms maps normalized term -> weight (a fractional term frequency).
	Terms map[string]float64
	// Length is the summed term weight, cached for BM25.
	Length float64
}

// addTerms merges the normalized tokens of text into the page at the given
// per-token weight.
func (p *Page) addTerms(tokens []string, weight float64) {
	for _, t := range tokens {
		p.Terms[t] += weight
		p.Length += weight
	}
}

// Corpus is the immutable page collection.
type Corpus struct {
	pages []*Page
	byURL map[string]*Page
}

// Len returns the number of pages.
func (c *Corpus) Len() int { return len(c.pages) }

// Pages returns all pages in ID order. Callers must not mutate.
func (c *Corpus) Pages() []*Page { return c.pages }

// ByID returns the page with the given ID, or nil.
func (c *Corpus) ByID(id int) *Page {
	if id < 0 || id >= len(c.pages) {
		return nil
	}
	return c.pages[id]
}

// ByURL returns the page with the given URL, or nil.
func (c *Corpus) ByURL(url string) *Page { return c.byURL[url] }

// EntityPages returns the IDs of all pages owned by the entity, sorted.
func (c *Corpus) EntityPages(entityID int) []int {
	var out []int
	for _, p := range c.pages {
		if p.EntityID == entityID {
			out = append(out, p.ID)
		}
	}
	sort.Ints(out)
	return out
}

// slugify converts a string into a URL path segment.
func slugify(s string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
