package webcorpus

// Page-type vocabularies: the words a page of that type carries besides the
// entity name. They serve two purposes: they let refinement queries
// ("<name> trailer") rank the matching deep page above the entity's core
// pages, and they dilute deep pages' entity-term share so deep pages rank
// below core pages for the bare canonical query — which is what pushes them
// outside the top-k surrogate set GA(u) and gives hyponym queries their
// low intersecting click ratio.
var typeVocab = map[PageType][]string{
	Official:     {"official", "site", "home"},
	Wiki:         {"encyclopedia", "article", "history", "plot", "references"},
	Review:       {"review", "rating", "critic", "score", "cast", "verdict"},
	Shop:         {"buy", "price", "shipping", "order", "deal", "dvd", "stock"},
	Forum:        {"forum", "thread", "discussion", "posts", "replies"},
	News:         {"news", "press", "report", "interview", "story"},
	Trailer:      {"trailer", "video", "watch", "clip", "teaser", "soundtrack"},
	Showtimes:    {"showtimes", "tickets", "theater", "times", "listings"},
	Manual:       {"manual", "support", "download", "guide", "firmware", "instructions"},
	Accessories:  {"accessories", "battery", "charger", "case", "memory", "card", "lens"},
	FranchiseHub: {"series", "franchise", "movies", "saga", "collection"},
	BrandHub:     {"official", "products", "cameras", "digital", "support"},
	LineHub:      {"cameras", "category", "compare", "models", "digital", "shop"},
	Sibling:      {"movie", "classic", "original", "film"},
	ActorPage:    {"biography", "filmography", "photos", "actor", "celebrity", "news"},
	Portal:       {"reviews", "best", "compare", "guide", "top", "ratings"},
	NoisePage:    {"welcome", "login", "search", "popular", "free"},
	Download:     {"download", "free", "mirror", "version", "install", "setup", "update", "trial"},
}

// softwareFillerVocab adds domain flavour to software pages.
var softwareFillerVocab = []string{
	"software", "program", "application", "version", "install", "windows",
	"mac", "linux", "license", "features", "release", "patch", "update",
	"system", "requirements", "user", "interface", "tools", "settings",
	"game", "player", "multiplayer", "graphics", "performance",
}

// fillerVocab is the shared background vocabulary sprinkled onto every page.
// It deliberately overlaps the noise-query token space ("games", "music",
// "video", "news"), so background queries occasionally retrieve — and
// accidentally click — entity pages. Those stray clicks are the IPC=1 haze
// the paper's β threshold filters (Figure 2).
var fillerVocab = []string{
	"home", "page", "online", "free", "new", "2008", "top", "best",
	"video", "photo", "gallery", "news", "update", "info", "contact",
	"about", "help", "faq", "links", "music", "games", "fun", "cool",
	"world", "official", "guide", "list", "archive", "blog", "share",
	"comments", "community", "member", "sign", "email", "mobile",
	"download", "upload", "media", "live", "today", "week", "year",
	"popular", "featured", "latest", "special", "offer", "sale",
	"store", "service", "quality", "details", "features", "full",
	"read", "more", "click", "here", "view", "all", "search",
	"results", "find", "great", "good", "big", "small", "fast",
	"easy", "simple", "daily", "weekly", "local", "global", "hot",
	"deal", "save", "win", "play", "watch", "listen", "learn",
	"weather", "maps", "sports", "lyrics", "recipes", "jobs",
	"hotels", "travel", "money", "health", "style", "tech",
}

// movieFillerVocab adds domain flavour to movie pages.
var movieFillerVocab = []string{
	"movie", "film", "cinema", "director", "starring", "premiere",
	"box", "office", "scene", "screenplay", "studio", "actors",
	"release", "rated", "runtime", "genre", "drama", "comedy",
	"action", "adventure", "sequel", "blockbuster", "screening",
}

// cameraFillerVocab adds domain flavour to camera pages.
var cameraFillerVocab = []string{
	"camera", "digital", "megapixel", "zoom", "lens", "sensor",
	"image", "photo", "shooting", "iso", "flash", "lcd", "screen",
	"optical", "stabilization", "battery", "resolution", "compact",
	"dslr", "pictures", "shutter", "aperture", "video", "mode",
}

// siblingTitles are the generic distinguishing tokens given to non-catalog
// franchise members ("the original movie", "part one", ...). Each sibling
// page combines the franchise tokens with one of these, so hypernym queries
// see several plausible targets besides the catalog entity.
var siblingTitles = []string{
	"the original", "part one", "part two", "the first movie",
	"classic trilogy", "box set collection", "the early years",
}
