package webcorpus

import (
	"fmt"
	"sort"

	"websyn/internal/alias"
	"websyn/internal/entity"
	"websyn/internal/rng"
	"websyn/internal/textnorm"
)

// Config tunes corpus construction. Zero value is not useful; use
// DefaultConfig.
type Config struct {
	// Seed drives the deterministic filler/alias-inclusion choices.
	Seed uint64
	// FillerPerPage is how many background vocabulary terms each page gets.
	FillerPerPage int
	// AliasIncludeShop et al. are the probabilities that a page of the
	// given class carries any one informal alias of its entity — the
	// "content creators list alternative names" mechanism from the paper's
	// Section III.A.
	AliasIncludeShop     float64
	AliasIncludeForum    float64
	AliasIncludeWiki     float64
	AliasIncludeReview   float64
	AliasIncludeOfficial float64
	AliasIncludeDeep     float64
}

// DefaultConfig returns the corpus parameters used by the experiments.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                 seed,
		FillerPerPage:        10,
		AliasIncludeShop:     0.95,
		AliasIncludeForum:    0.95,
		AliasIncludeWiki:     0.85,
		AliasIncludeReview:   0.80,
		AliasIncludeOfficial: 0.60,
		AliasIncludeDeep:     0.70,
	}
}

// aliasIncludeProb returns the alias-inclusion probability for a page type.
func (cfg Config) aliasIncludeProb(t PageType) float64 {
	switch t {
	case Shop:
		return cfg.AliasIncludeShop
	case Forum:
		return cfg.AliasIncludeForum
	case Wiki:
		return cfg.AliasIncludeWiki
	case Review:
		return cfg.AliasIncludeReview
	case Official:
		return cfg.AliasIncludeOfficial
	case Trailer, Showtimes, Manual, Accessories, News:
		return cfg.AliasIncludeDeep
	default:
		return 0.3
	}
}

// Term weights within a page.
const (
	wTitleTerm  = 6.0 // canonical significant tokens
	wScopeTerm  = 4.0 // brand / franchise tokens
	wTypeTerm   = 3.0 // page-type vocabulary
	wAliasTerm  = 2.0 // included informal alias tokens
	wFillerTerm = 1.0 // background vocabulary
	wMemberTerm = 1.5 // member listings on hub pages
)

// builder accumulates pages during construction.
type builder struct {
	cfg    Config
	model  *alias.Model
	src    *rng.Source
	pages  []*Page
	hosts  map[PageType]string
	nHosts map[PageType]int
}

// Build constructs the corpus for the alias model's catalog.
func Build(model *alias.Model, cfg Config) (*Corpus, error) {
	b := &builder{
		cfg:   cfg,
		model: model,
		src:   rng.New(cfg.Seed),
		hosts: map[PageType]string{
			Official: "www.%s-official.example", Wiki: "en.encyclopedia.example",
			Review: "reviews.example", Shop: "shop%d.example", Forum: "forums.example",
			News: "news.example", Trailer: "trailers.example", Showtimes: "showtimes.example",
			Manual: "support.example", Accessories: "gadgetgear.example",
			FranchiseHub: "fan-hub.example", BrandHub: "brands.example",
			LineHub: "shopping-category.example", Sibling: "moviedb.example",
			ActorPage: "celebs.example", Portal: "portal.example",
			NoisePage: "web.example",
		},
		nHosts: map[PageType]int{},
	}
	cat := model.Catalog()
	switch cat.Kind() {
	case entity.Movie:
		b.buildMovieDomain()
	case entity.Camera:
		b.buildCameraDomain()
	case entity.Software:
		b.buildSoftwareDomain()
	default:
		return nil, fmt.Errorf("webcorpus: unsupported catalog kind %v", cat.Kind())
	}
	b.buildNoisePages()

	c := &Corpus{pages: b.pages, byURL: make(map[string]*Page, len(b.pages))}
	for _, p := range c.pages {
		if prev, dup := c.byURL[p.URL]; dup {
			return nil, fmt.Errorf("webcorpus: URL collision %q (pages %d, %d)", p.URL, prev.ID, p.ID)
		}
		c.byURL[p.URL] = p
	}
	return c, nil
}

// newPage allocates a page, assigns its URL, and seeds type + filler vocab.
func (b *builder) newPage(t PageType, entityID int, scope, slug string) *Page {
	id := len(b.pages)
	b.nHosts[t]++
	host := b.hosts[t]
	switch t {
	case Official:
		host = fmt.Sprintf(host, slug)
	case Shop:
		host = fmt.Sprintf(host, b.nHosts[t]%4+1)
	}
	p := &Page{
		ID:       id,
		URL:      fmt.Sprintf("http://%s/%s-%d", host, slug, id),
		Type:     t,
		EntityID: entityID,
		Scope:    scope,
		Terms:    make(map[string]float64),
	}
	p.addTerms(typeVocab[t], wTypeTerm)
	for i := 0; i < b.cfg.FillerPerPage; i++ {
		p.Terms[fillerVocab[b.src.Intn(len(fillerVocab))]] += wFillerTerm
		p.Length += wFillerTerm
	}
	b.pages = append(b.pages, p)
	return p
}

// entityPagePlan returns the page types an entity of the given popularity
// rank receives. Popular entities have more than k surrogate pages (so the
// top-k surrogate set is a strict subset and deep pages fall outside it);
// tail entities have only a handful.
func entityPagePlan(kind entity.Kind, popRank int) []PageType {
	switch kind {
	case entity.Movie:
		// Every wide-release movie has a rich page neighbourhood on the real
		// Web, so even tail movies carry more than k=10 core pages — GA(u)
		// stays inside the entity's own pages, which is what lets popular
		// synonyms reach IPC = k (paper Fig. 2 shows substantial coverage
		// even at β=10). Deep pages (trailer/showtimes) are extra.
		switch {
		case popRank < 25:
			return []PageType{Official, Wiki, Review, Review, Shop, Shop, Forum,
				News, News, Forum, Shop, Review, Trailer, Showtimes, Trailer}
		case popRank < 60:
			return []PageType{Official, Wiki, Review, Review, Shop, Shop, Forum,
				News, Forum, Shop, News, Trailer, Showtimes}
		default:
			return []PageType{Official, Wiki, Review, Shop, Shop, Forum, News,
				Forum, Review, News, Shop, Trailer, Showtimes}
		}
	case entity.Camera:
		// Cameras thin out much faster: feed-filler models barely exist on
		// the Web beyond a spec page and a couple of listings. Tail GA(u)
		// therefore contains foreign pages (line hubs, sibling models) —
		// one reason camera mining is harder in Table I.
		switch {
		case popRank < 60:
			return []PageType{Official, Wiki, Review, Review, Shop, Shop, Shop,
				Forum, News, Forum, Shop, Review, Manual, Accessories}
		case popRank < 300:
			return []PageType{Official, Review, Shop, Shop, Forum, News, Shop,
				Forum, Review, Manual, Accessories}
		default:
			return []PageType{Official, Review, Shop, Shop, Forum, News, Shop,
				Review, Manual}
		}
	case entity.Software:
		// Major software products all have rich neighbourhoods; download
		// mirror pages are the dominant deep-page class.
		switch {
		case popRank < 20:
			return []PageType{Official, Wiki, Review, Review, Forum, Forum,
				News, News, Shop, Review, Forum, Download, Download, Manual}
		default:
			return []PageType{Official, Wiki, Review, Forum, News, Forum,
				Shop, Review, News, Forum, Download, Manual}
		}
	}
	return nil
}

// titleWeightFor returns the canonical-token weight for a page type: deep
// pages dilute the entity name with their intent vocabulary, so they rank
// below the core pages for the bare canonical query and fall outside the
// top-k surrogate set — giving hyponym queries somewhere to click outside
// GA(u) (the Figure 1(c) geometry).
func titleWeightFor(t PageType) float64 {
	switch t {
	case Trailer, Showtimes, Manual, Accessories, Download:
		return wTitleTerm * 0.6
	default:
		return wTitleTerm
	}
}

// buildEntityPages emits the surrogate pages for one entity.
func (b *builder) buildEntityPages(e *entity.Entity, domainFiller []string) {
	canonTokens := textnorm.Tokenize(e.Canonical)
	scopeTokens := b.scopeTokens(e)
	slug := slugify(e.Canonical)

	// Informal synonym aliases available for inclusion on pages.
	syns := b.model.SynonymsOf(e.ID)

	for _, t := range entityPagePlan(e.Kind, e.PopRank) {
		p := b.newPage(t, e.ID, "", slug)
		p.addTerms(canonTokens, titleWeightFor(t))
		p.addTerms(scopeTokens, wScopeTerm)
		// Domain flavour filler.
		for i := 0; i < 4; i++ {
			term := domainFiller[b.src.Intn(len(domainFiller))]
			p.Terms[term] += wFillerTerm
			p.Length += wFillerTerm
		}
		// Content creators include informal aliases with a type-dependent
		// probability.
		include := b.cfg.aliasIncludeProb(t)
		for _, s := range syns {
			if b.src.Bool(include) {
				p.addTerms(textnorm.Tokenize(s), wAliasTerm)
			}
		}
	}
}

// scopeTokens returns the brand or franchise tokens of the entity.
func (b *builder) scopeTokens(e *entity.Entity) []string {
	switch e.Kind {
	case entity.Movie:
		if e.Franchise != "" {
			return textnorm.Tokenize(e.Franchise)
		}
	case entity.Camera:
		return textnorm.Tokenize(e.Brand)
	}
	return nil
}

// buildMovieDomain emits entity pages, franchise hubs + siblings, and actor
// pages.
func (b *builder) buildMovieDomain() {
	cat := b.model.Catalog()
	franchises := map[string][]*entity.Entity{}
	for _, e := range cat.All() {
		b.buildEntityPages(e, movieFillerVocab)
		if e.Franchise != "" {
			key := textnorm.Normalize(e.Franchise)
			franchises[key] = append(franchises[key], e)
		}
	}

	// Franchise hubs and sibling pages, in deterministic order.
	keys := make([]string, 0, len(franchises))
	for k := range franchises {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		members := franchises[key]
		hub := b.newPage(FranchiseHub, -1, key, slugify(key))
		hub.addTerms(textnorm.Tokenize(key), wTitleTerm+2)
		for _, m := range members {
			hub.addTerms(textnorm.SignificantTokens(m.Canonical), wMemberTerm)
		}
		// Two to three sibling pages per franchise: the older movies
		// hypernym queries also want.
		nSiblings := 2 + b.src.Intn(2)
		for i := 0; i < nSiblings; i++ {
			s := b.newPage(Sibling, -1, key, slugify(key+" "+siblingTitles[i]))
			s.addTerms(textnorm.Tokenize(key), wTitleTerm)
			s.addTerms(textnorm.Tokenize(siblingTitles[i]), wTitleTerm)
			s.addTerms([]string{"movie", "film"}, wTypeTerm)
		}
	}

	// Actor pages for every actor entry in the universe.
	for _, entry := range b.model.Entries() {
		if entry.Label != alias.Related || entry.EntityID != -1 {
			continue
		}
		if len(entry.Scope) < 6 || entry.Scope[:6] != "actor:" {
			continue
		}
		name := entry.Scope[6:]
		p := b.newPage(ActorPage, -1, entry.Scope, slugify(name))
		p.addTerms(textnorm.Tokenize(name), wTitleTerm+2)
		// The actor's filmography lightly mentions their movies.
		for _, m := range movieTitlesOfActor(b.model, name) {
			p.addTerms(textnorm.SignificantTokens(m), wMemberTerm)
		}
	}
}

// movieTitlesOfActor looks up the catalog titles an actor appears in via
// the alias package's table (kept there to stay beside the Related entry
// generation).
func movieTitlesOfActor(m *alias.Model, actor string) []string {
	var out []string
	for _, title := range alias.ActorMovies(actor) {
		if e := m.Catalog().ByNorm(title); e != nil {
			out = append(out, e.Canonical)
		}
	}
	return out
}

// buildCameraDomain emits entity pages, brand hubs, line hubs and portals.
func (b *builder) buildCameraDomain() {
	cat := b.model.Catalog()
	type lineKey struct{ brand, line string }
	brands := map[string][]*entity.Entity{}
	lines := map[lineKey][]*entity.Entity{}
	for _, e := range cat.All() {
		b.buildEntityPages(e, cameraFillerVocab)
		bKey := textnorm.Normalize(e.Brand)
		brands[bKey] = append(brands[bKey], e)
		if e.Line != "" {
			lines[lineKey{bKey, textnorm.Normalize(e.Line)}] = append(
				lines[lineKey{bKey, textnorm.Normalize(e.Line)}], e)
		}
	}

	brandKeys := make([]string, 0, len(brands))
	for k := range brands {
		brandKeys = append(brandKeys, k)
	}
	sort.Strings(brandKeys)
	for _, key := range brandKeys {
		members := brands[key]
		hub := b.newPage(BrandHub, -1, key, slugify(key))
		hub.addTerms(textnorm.Tokenize(key), wTitleTerm+2)
		hub.addTerms([]string{"camera", "digital"}, wScopeTerm)
		// The brand hub lists a sample of the brand's models.
		limit := 15
		for i, m := range members {
			if i >= limit {
				break
			}
			hub.addTerms(textnorm.Tokenize(m.Model), wMemberTerm)
		}
	}

	lineKeys := make([]lineKey, 0, len(lines))
	for k := range lines {
		lineKeys = append(lineKeys, k)
	}
	sort.Slice(lineKeys, func(i, j int) bool {
		if lineKeys[i].brand != lineKeys[j].brand {
			return lineKeys[i].brand < lineKeys[j].brand
		}
		return lineKeys[i].line < lineKeys[j].line
	})
	for _, key := range lineKeys {
		members := lines[key]
		hub := b.newPage(LineHub, -1, key.brand, slugify(key.brand+" "+key.line))
		hub.addTerms(textnorm.Tokenize(key.brand), wScopeTerm)
		hub.addTerms(textnorm.Tokenize(key.line), wTitleTerm)
		limit := 20
		for i, m := range members {
			if i >= limit {
				break
			}
			hub.addTerms(textnorm.Tokenize(m.Model), wMemberTerm)
		}
	}

	// Category portals for the Related category queries.
	for _, entry := range b.model.Entries() {
		if entry.Label != alias.Related || entry.EntityID != -1 || entry.Scope != "category" {
			continue
		}
		p := b.newPage(Portal, -1, "category", slugify(entry.Text))
		p.addTerms(textnorm.Tokenize(entry.Text), wTitleTerm)
		p.addTerms([]string{"camera", "digital", "reviews"}, wScopeTerm)
	}
}

// buildSoftwareDomain emits entity pages, product hubs (version families)
// and vendor hubs.
func (b *builder) buildSoftwareDomain() {
	cat := b.model.Catalog()
	products := map[string][]*entity.Entity{}
	vendors := map[string][]*entity.Entity{}
	for _, e := range cat.All() {
		b.buildEntityPages(e, softwareFillerVocab)
		if e.Franchise != "" {
			key := textnorm.Normalize(e.Franchise)
			products[key] = append(products[key], e)
		}
		vKey := textnorm.Normalize(e.Brand)
		vendors[vKey] = append(vendors[vKey], e)
	}

	productKeys := make([]string, 0, len(products))
	for k := range products {
		productKeys = append(productKeys, k)
	}
	sort.Strings(productKeys)
	for _, key := range productKeys {
		members := products[key]
		hub := b.newPage(FranchiseHub, -1, key, slugify(key))
		hub.addTerms(textnorm.Tokenize(key), wTitleTerm+2)
		for _, m := range members {
			hub.addTerms(textnorm.SignificantTokens(m.Canonical), wMemberTerm)
		}
		// Older versions of the product line (non-catalog siblings).
		nSiblings := 1 + b.src.Intn(2)
		for i := 0; i < nSiblings; i++ {
			s := b.newPage(Sibling, -1, key, slugify(key+" "+siblingTitles[i]))
			s.addTerms(textnorm.Tokenize(key), wTitleTerm)
			s.addTerms(textnorm.Tokenize(siblingTitles[i]), wTitleTerm)
			s.addTerms([]string{"software", "version"}, wTypeTerm)
		}
	}

	vendorKeys := make([]string, 0, len(vendors))
	for k := range vendors {
		vendorKeys = append(vendorKeys, k)
	}
	sort.Strings(vendorKeys)
	for _, key := range vendorKeys {
		members := vendors[key]
		hub := b.newPage(BrandHub, -1, key, slugify(key))
		hub.addTerms(textnorm.Tokenize(key), wTitleTerm+2)
		hub.addTerms([]string{"software", "products"}, wScopeTerm)
		limit := 12
		for i, m := range members {
			if i >= limit {
				break
			}
			hub.addTerms(textnorm.SignificantTokens(m.Canonical), wMemberTerm)
		}
	}

	// Category portals for the Related category queries.
	for _, entry := range b.model.Entries() {
		if entry.Label != alias.Related || entry.EntityID != -1 || entry.Scope != "category" {
			continue
		}
		p := b.newPage(Portal, -1, "category", slugify(entry.Text))
		p.addTerms(textnorm.Tokenize(entry.Text), wTitleTerm)
		p.addTerms([]string{"software", "download", "reviews"}, wScopeTerm)
	}
}

// buildNoisePages emits one to two pages per noise query.
func (b *builder) buildNoisePages() {
	for i, text := range alias.NoiseTexts() {
		p := b.newPage(NoisePage, -1, "noise:"+text, slugify(text))
		p.addTerms(textnorm.Tokenize(text), wTitleTerm+4)
		// The most popular noise destinations get a second page (mirror,
		// login page, etc.).
		if i < 20 {
			p2 := b.newPage(NoisePage, -1, "noise:"+text, slugify(text+" login"))
			p2.addTerms(textnorm.Tokenize(text), wTitleTerm+2)
			p2.addTerms([]string{"login", "account"}, wTypeTerm)
		}
	}
}
