// Package alias implements the ground-truth alias model of the simulation:
// for every entity it generates the set of strings users employ to refer to
// it, each labeled with its semantic relation to the entity (synonym,
// hypernym, hyponym, related) and weighted by its share of the entity's
// query volume.
//
// The model plays the two roles the paper's proprietary assets played:
//
//  1. It drives the simulated user population (which queries get issued,
//     how often) — standing in for Bing's 2008 query stream.
//  2. It is the labeling oracle for evaluation — standing in for the human
//     judges who scored mined synonyms as true/false.
//
// The miner itself (internal/core) never touches this package: it sees only
// the Search Data and Click Data the simulator derives from it, preserving
// the paper's separation between method and ground truth.
package alias

import (
	"fmt"
	"sort"

	"websyn/internal/entity"
	"websyn/internal/textnorm"
)

// Label classifies the relation between a query string and an entity,
// following the paper's Definitions 1-3 plus the two non-equivalent classes
// its Figure 1 discusses.
type Label int

const (
	// Synonym: the string refers to exactly this entity (Def. 1).
	Synonym Label = iota
	// Hypernym: the string refers to a strict superset — franchise names,
	// brands, product lines (Def. 2).
	Hypernym
	// Hyponym: the string narrows the entity to a sub-intent — query
	// refinements such as "<name> trailer" or "<name> manual" (Def. 3's
	// narrower-concept case as it manifests in query logs).
	Hyponym
	// Related: correlated but not equivalent — actor names, generic
	// category queries ("digital camera"), the paper's "Harrison Ford"
	// example.
	Related
	// Noise: background Web queries with no relation to the domain.
	Noise
)

// String returns a short lower-case label name.
func (l Label) String() string {
	switch l {
	case Synonym:
		return "synonym"
	case Hypernym:
		return "hypernym"
	case Hyponym:
		return "hyponym"
	case Related:
		return "related"
	case Noise:
		return "noise"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// precedence orders labels for deduplication: when one string is generated
// twice for the same entity, the stronger relation wins.
func (l Label) precedence() int {
	switch l {
	case Synonym:
		return 0
	case Hypernym:
		return 1
	case Hyponym:
		return 2
	case Related:
		return 3
	default:
		return 4
	}
}

// Alias is one generated string for one entity.
type Alias struct {
	// Text is the normalized query string.
	Text string
	// Label is the relation of Text to the owning entity.
	Label Label
	// Weight is the share of the entity's query volume carried by this
	// string. Within an entity the weights of all aliases sum to 1.
	Weight float64
}

// Entry is one string of the query universe with its volume and intent.
// Entries are what the user simulator samples from.
type Entry struct {
	// Text is the normalized query string.
	Text string
	// Volume is the absolute expected share of the whole log (all entries'
	// volumes sum to 1).
	Volume float64
	// Label classifies the string relative to EntityID (or the domain for
	// global strings).
	Label Label
	// EntityID is the entity this string is about, or -1 for global strings
	// (related category queries, noise).
	EntityID int
	// Scope carries the breadth key for Hypernym entries — the franchise or
	// brand whose whole page neighbourhood the user is willing to click.
	Scope string
}

// Params tunes the alias model. Zero value is not useful; use
// MovieParams/CameraParams.
type Params struct {
	// CanonicalShare is the fraction of an entity's query volume issued as
	// its full canonical string. Low values starve the random-walk baseline
	// of start nodes (its documented failure mode on cameras).
	CanonicalShare float64
	// SynonymShare is the fraction carried by informal true synonyms
	// (excluding the canonical string).
	SynonymShare float64
	// HypernymShare, HyponymShare, RelatedShare are the fractions carried
	// by the non-equivalent classes. The five shares must sum to 1.
	HypernymShare float64
	HyponymShare  float64
	RelatedShare  float64

	// DomainVolume is the share of the total log occupied by this domain's
	// entity-driven queries; the rest is global noise.
	DomainVolume float64
	// NoiseVolume is the share of the total log occupied by background Web
	// queries.
	NoiseVolume float64
}

// MovieParams are the defaults for the D1 movie domain. Movie titles double
// as everyday phrases, so the canonical string itself carries substantial
// volume — which is why the random-walk baseline achieves a 100% hit ratio
// on movies (Table I).
func MovieParams() Params {
	return Params{
		CanonicalShare: 0.30,
		SynonymShare:   0.38,
		HypernymShare:  0.12,
		HyponymShare:   0.20,
		RelatedShare:   0,
		DomainVolume:   0.70,
		NoiseVolume:    0.30,
	}
}

// CameraParams are the defaults for the D2 camera domain. Canonical feed
// strings ("Sony Cyber-shot DSC-W120") are rarely typed verbatim, so the
// canonical share is small — which starves the random-walk baseline on the
// tail (Table I's 54% hit ratio).
func CameraParams() Params {
	return Params{
		CanonicalShare: 0.012,
		SynonymShare:   0.628,
		HypernymShare:  0.16,
		HyponymShare:   0.20,
		RelatedShare:   0,
		DomainVolume:   0.70,
		NoiseVolume:    0.30,
	}
}

// check validates that the shares form a distribution.
func (p Params) check() error {
	sum := p.CanonicalShare + p.SynonymShare + p.HypernymShare + p.HyponymShare + p.RelatedShare
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("alias: per-entity shares sum to %v, want 1", sum)
	}
	if p.DomainVolume <= 0 || p.NoiseVolume < 0 {
		return fmt.Errorf("alias: invalid volume split %v/%v", p.DomainVolume, p.NoiseVolume)
	}
	return nil
}

// Model is the assembled alias universe for one catalog.
type Model struct {
	catalog   *entity.Catalog
	params    Params
	perEntity [][]Alias         // entity ID -> its aliases (all labels)
	synonyms  []map[string]bool // entity ID -> set of true synonym strings
	entries   []Entry           // the full sampled universe, volumes sum to 1
	labelOf   map[string]map[int]Label
}

// Catalog returns the underlying entity catalog.
func (m *Model) Catalog() *entity.Catalog { return m.catalog }

// Params returns the parameters the model was built with.
func (m *Model) Params() Params { return m.params }

// Entries returns the query universe in deterministic order. Volumes sum
// to 1. Callers must not mutate the slice.
func (m *Model) Entries() []Entry { return m.entries }

// AliasesOf returns all aliases generated for the entity, strongest label
// first. Callers must not mutate the slice.
func (m *Model) AliasesOf(id int) []Alias {
	if id < 0 || id >= len(m.perEntity) {
		return nil
	}
	return m.perEntity[id]
}

// SynonymsOf returns the normalized true-synonym strings of the entity,
// excluding the canonical string itself, sorted for determinism.
func (m *Model) SynonymsOf(id int) []string {
	if id < 0 || id >= len(m.synonyms) {
		return nil
	}
	canon := m.catalog.ByID(id).Norm()
	out := make([]string, 0, len(m.synonyms[id]))
	for s := range m.synonyms[id] {
		if s != canon {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// IsSynonym reports whether text (normalized) is a true synonym of the
// entity — the oracle judgment used for precision.
func (m *Model) IsSynonym(id int, text string) bool {
	if id < 0 || id >= len(m.synonyms) {
		return false
	}
	return m.synonyms[id][text]
}

// LabelFor returns the ground-truth label of text relative to the entity.
// Unknown strings are Noise with ok=false.
func (m *Model) LabelFor(id int, text string) (Label, bool) {
	if em, found := m.labelOf[text]; found {
		if l, ok := em[id]; ok {
			return l, true
		}
		// The string exists in the universe but belongs to other entities:
		// from this entity's perspective it is merely related.
		return Related, true
	}
	return Noise, false
}

// Build assembles the alias model for the catalog with the given parameters.
func Build(cat *entity.Catalog, p Params) (*Model, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	m := &Model{
		catalog:   cat,
		params:    p,
		perEntity: make([][]Alias, cat.Len()),
		synonyms:  make([]map[string]bool, cat.Len()),
		labelOf:   make(map[string]map[int]Label),
	}
	var globals []Entry
	var err error
	switch cat.Kind() {
	case entity.Movie:
		globals, err = m.buildMovies()
	case entity.Camera:
		globals, err = m.buildCameras()
	case entity.Software:
		globals, err = m.buildSoftware()
	default:
		err = fmt.Errorf("alias: unsupported catalog kind %v", cat.Kind())
	}
	if err != nil {
		return nil, err
	}
	m.demoteAmbiguousSynonyms()
	m.assemble(globals)
	return m, nil
}

// addAlias registers one generated alias for an entity, deduplicating by
// normalized text with label precedence (Synonym wins over Hypernym, etc.)
// and summing weights of duplicates.
func (m *Model) addAlias(id int, text string, label Label, weight float64) {
	norm := textnorm.Normalize(text)
	if norm == "" || weight <= 0 {
		return
	}
	for i, a := range m.perEntity[id] {
		if a.Text == norm {
			m.perEntity[id][i].Weight += weight
			if label.precedence() < a.Label.precedence() {
				m.perEntity[id][i].Label = label
			}
			return
		}
	}
	m.perEntity[id] = append(m.perEntity[id], Alias{Text: norm, Label: label, Weight: weight})
}

// demoteAmbiguousSynonyms applies the set-semantics of Definition 1: a
// string generated as a Synonym for two or more entities actually maps to a
// multi-entity set, so it is a synonym of neither ("A450" when both Canon
// and Fujifilm ship an A450). Such strings are demoted to Hypernym.
func (m *Model) demoteAmbiguousSynonyms() {
	owner := make(map[string][]int)
	for id, aliases := range m.perEntity {
		for _, a := range aliases {
			if a.Label == Synonym {
				owner[a.Text] = append(owner[a.Text], id)
			}
		}
	}
	for text, ids := range owner {
		if len(ids) < 2 {
			continue
		}
		for _, id := range ids {
			// The canonical string itself is guaranteed unique by the
			// catalog, so it can never be demoted here.
			for i, a := range m.perEntity[id] {
				if a.Text == text {
					m.perEntity[id][i].Label = Hypernym
				}
			}
		}
	}
}

// normalizeEntityWeights rescales each entity's alias weights so each label
// class carries exactly its configured share, then records synonym sets.
func (m *Model) normalizeEntityWeights() {
	p := m.params
	classShares := map[Label]float64{
		Synonym: p.SynonymShare, Hypernym: p.HypernymShare,
		Hyponym: p.HyponymShare, Related: p.RelatedShare,
	}
	for id, aliases := range m.perEntity {
		canon := m.catalog.ByID(id).Norm()
		classTotal := map[Label]float64{}
		for _, a := range aliases {
			if a.Text == canon {
				continue // canonical share handled separately
			}
			classTotal[a.Label] += a.Weight
		}
		// Classes with no generated strings (per-entity Related is always
		// empty — related strings are global; standalone movies have no
		// franchise hypernym) forfeit their share, which is redistributed
		// proportionally over the present classes. The canonical share is
		// held exactly at CanonicalShare: the rarity of verbatim canonical
		// queries is the lever behind the random-walk baseline's hit
		// ratio, so it must not absorb leftovers.
		presentShare := 0.0
		for _, label := range []Label{Synonym, Hypernym, Hyponym, Related} {
			if classTotal[label] > 0 {
				presentShare += classShares[label]
			}
		}
		scale := 1.0
		if presentShare > 0 {
			scale = (1 - p.CanonicalShare) / presentShare
		}
		shareFor := func(a Alias) float64 {
			if a.Text == canon {
				return p.CanonicalShare
			}
			if classTotal[a.Label] == 0 {
				return 0
			}
			return classShares[a.Label] * scale * a.Weight / classTotal[a.Label]
		}
		newAliases := make([]Alias, 0, len(aliases))
		assigned := 0.0
		for _, a := range aliases {
			w := shareFor(a)
			assigned += w
			newAliases = append(newAliases, Alias{Text: a.Text, Label: a.Label, Weight: w})
		}
		// Degenerate case: an entity with no informal strings at all puts
		// everything on the canonical.
		if leftover := 1 - assigned; leftover > 1e-9 {
			for i := range newAliases {
				if newAliases[i].Text == canon {
					newAliases[i].Weight += leftover
					break
				}
			}
		}
		sort.Slice(newAliases, func(i, j int) bool {
			if newAliases[i].Label != newAliases[j].Label {
				return newAliases[i].Label.precedence() < newAliases[j].Label.precedence()
			}
			return newAliases[i].Text < newAliases[j].Text
		})
		m.perEntity[id] = newAliases

		syn := make(map[string]bool)
		syn[canon] = true
		for _, a := range newAliases {
			if a.Label == Synonym {
				syn[a.Text] = true
			}
		}
		m.synonyms[id] = syn
	}
}

// assemble flattens per-entity aliases plus global entries into the final
// volume-normalized universe and label index.
func (m *Model) assemble(globals []Entry) {
	m.normalizeEntityWeights()
	p := m.params

	var entries []Entry
	for id, aliases := range m.perEntity {
		e := m.catalog.ByID(id)
		scope := scopeOf(e)
		for _, a := range aliases {
			if a.Weight <= 0 {
				continue
			}
			entries = append(entries, Entry{
				Text:     a.Text,
				Volume:   p.DomainVolume * e.Weight * a.Weight,
				Label:    a.Label,
				EntityID: id,
				Scope:    scope,
			})
		}
	}
	// Globals (related category queries and noise) come with volumes
	// expressed relative to their own class; rescale noise to NoiseVolume.
	noiseTotal := 0.0
	for _, g := range globals {
		if g.Label == Noise {
			noiseTotal += g.Volume
		}
	}
	for _, g := range globals {
		if g.Label == Noise && noiseTotal > 0 {
			g.Volume = p.NoiseVolume * g.Volume / noiseTotal
		}
		entries = append(entries, g)
	}
	// Normalize everything to sum exactly 1.
	total := 0.0
	for _, e := range entries {
		total += e.Volume
	}
	if total > 0 {
		for i := range entries {
			entries[i].Volume /= total
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].EntityID != entries[j].EntityID {
			return entries[i].EntityID < entries[j].EntityID
		}
		return entries[i].Text < entries[j].Text
	})
	m.entries = entries

	for _, e := range entries {
		if m.labelOf[e.Text] == nil {
			m.labelOf[e.Text] = make(map[int]Label)
		}
		if e.EntityID >= 0 {
			prev, ok := m.labelOf[e.Text][e.EntityID]
			if !ok || e.Label.precedence() < prev.precedence() {
				m.labelOf[e.Text][e.EntityID] = e.Label
			}
		}
	}
}

// scopeOf derives the breadth key used by hypernym intents.
func scopeOf(e *entity.Entity) string {
	switch e.Kind {
	case entity.Movie:
		if e.Franchise != "" {
			return textnorm.Normalize(e.Franchise)
		}
		return ""
	case entity.Camera:
		return textnorm.Normalize(e.Brand)
	case entity.Software:
		if e.Franchise != "" {
			return textnorm.Normalize(e.Franchise)
		}
		return textnorm.Normalize(e.Brand)
	}
	return ""
}
