package alias

import "websyn/internal/textnorm"

// noiseQueries model the background Web traffic surrounding the domain in a
// real search log: navigational and informational queries with no relation
// to the entity catalog. Their clicks land on noise pages — except for the
// small accidental-click rate the click model applies, which is what
// produces the IPC=1 candidate haze that the paper's β threshold exists to
// remove (Figure 2's precision drop from β=10 to β=2).
//
// Volumes are relative; the universe assembly rescales the class to
// Params.NoiseVolume.
var noiseQueries = []struct {
	text   string
	volume float64
}{
	{"youtube", 10.0},
	{"facebook", 9.0},
	{"myspace", 7.5},
	{"yahoo mail", 6.5},
	{"google maps", 5.5},
	{"ebay", 5.0},
	{"craigslist", 4.8},
	{"weather", 4.5},
	{"amazon", 4.2},
	{"wikipedia", 4.0},
	{"hotmail", 3.8},
	{"news", 3.5},
	{"lyrics", 3.2},
	{"games", 3.0},
	{"dictionary", 2.8},
	{"white pages", 2.6},
	{"maps", 2.5},
	{"horoscope", 2.3},
	{"recipes", 2.2},
	{"cnn news", 2.1},
	{"sports scores", 2.0},
	{"nba scores", 1.9},
	{"nfl schedule", 1.9},
	{"stock quotes", 1.8},
	{"cheap flights", 1.8},
	{"hotels", 1.7},
	{"used cars", 1.7},
	{"real estate listings", 1.6},
	{"jobs", 1.6},
	{"online banking", 1.5},
	{"tax forms", 1.5},
	{"zip codes", 1.4},
	{"area codes", 1.4},
	{"calorie counter", 1.3},
	{"bmi calculator", 1.3},
	{"currency converter", 1.2},
	{"translation", 1.2},
	{"free music downloads", 1.2},
	{"ringtones", 1.1},
	{"wallpapers", 1.1},
	{"screensavers", 1.0},
	{"solitaire", 1.0},
	{"sudoku", 1.0},
	{"crossword puzzles", 0.9},
	{"coloring pages", 0.9},
	{"baby names", 0.9},
	{"wedding ideas", 0.8},
	{"birthday wishes", 0.8},
	{"love quotes", 0.8},
	{"funny jokes", 0.8},
	{"science fair projects", 0.7},
	{"book reports", 0.7},
	{"periodic table", 0.7},
	{"world map", 0.7},
	{"us presidents", 0.6},
	{"state capitals", 0.6},
	{"metric conversion", 0.6},
	{"printable calendar", 0.6},
	{"resume templates", 0.6},
	{"cover letter examples", 0.5},
	{"interview questions", 0.5},
	{"student loans", 0.5},
	{"credit report", 0.5},
	{"mortgage calculator", 0.5},
	{"car insurance quotes", 0.5},
	{"cell phone plans", 0.4},
	{"laptop deals", 0.4},
	{"mp3 players", 0.4},
	{"flat screen tv", 0.4},
	{"video game cheats", 0.4},
	{"guitar tabs", 0.4},
	{"piano sheet music", 0.3},
	{"knitting patterns", 0.3},
	{"gardening tips", 0.3},
	{"home remedies", 0.3},
	{"dog breeds", 0.3},
	{"cat names", 0.3},
	{"fish tanks", 0.2},
	{"bird watching", 0.2},
	{"camping gear", 0.2},
}

// noiseEntries converts the noise table into universe entries (volumes
// still relative; rescaled during assembly).
func noiseEntries() []Entry {
	out := make([]Entry, 0, len(noiseQueries))
	for _, n := range noiseQueries {
		out = append(out, Entry{
			Text:     textnorm.Normalize(n.text),
			Volume:   n.volume,
			Label:    Noise,
			EntityID: -1,
			Scope:    "noise",
		})
	}
	return out
}

// NoiseQueryCount reports how many distinct noise strings the model injects
// (exported for corpus sizing and tests).
func NoiseQueryCount() int { return len(noiseQueries) }

// NoiseTexts returns the normalized noise query strings in table order.
func NoiseTexts() []string {
	out := make([]string, len(noiseQueries))
	for i, n := range noiseQueries {
		out[i] = textnorm.Normalize(n.text)
	}
	return out
}
