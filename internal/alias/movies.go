package alias

import (
	"sort"
	"strings"

	"websyn/internal/entity"
	"websyn/internal/textnorm"
)

// Relative in-class weights for movie alias generation. Only ratios within
// a label class matter (normalizeEntityWeights rescales classes to the
// configured shares).
const (
	wMovieArticleDrop  = 10.0
	wMovieNickname     = 8.0
	wMovieFranchiseNum = 7.0
	wMovieSubtitle     = 4.0
	wMovieAcronym      = 1.5
	wMovieQualifier    = 2.0
	wMovieTypo         = 0.8

	wMovieFranchiseHyper = 8.0
	wMovieSeriesHyper    = 2.0

	wMovieRefinement = 1.0
	wMovieActor      = 1.0
)

// movieRefinements are the query-suffix intents that turn an alias into a
// hyponym (narrower query). Ordered by rough real-world volume.
var movieRefinements = []struct {
	suffix string
	weight float64
}{
	{"trailer", 3.0},
	{"showtimes", 2.5},
	{"review", 1.5},
	{"cast", 1.2},
	{"dvd", 1.0},
	{"soundtrack", 0.8},
}

// movieActors maps actor names to the normalized titles of their 2008
// movies in the catalog. Actor queries are the canonical Related example in
// the paper ("Harrison Ford" for Indiana Jones): correlated clicks, not
// synonyms.
var movieActors = map[string][]string{
	"christian bale":       {"the dark knight"},
	"heath ledger":         {"the dark knight"},
	"robert downey jr":     {"iron man", "tropic thunder"},
	"harrison ford":        {"indiana jones and the kingdom of the crystal skull"},
	"shia labeouf":         {"indiana jones and the kingdom of the crystal skull", "eagle eye"},
	"will smith":           {"hancock", "seven pounds"},
	"jack black":           {"kung fu panda", "tropic thunder"},
	"angelina jolie":       {"wanted", "changeling", "kung fu panda"},
	"kristen stewart":      {"twilight"},
	"robert pattinson":     {"twilight"},
	"ben stiller":          {"madagascar escape 2 africa", "tropic thunder"},
	"daniel craig":         {"quantum of solace"},
	"jim carrey":           {"dr seuss horton hears a who", "yes man"},
	"sarah jessica parker": {"sex and the city"},
	"clint eastwood":       {"gran torino", "changeling"},
	"meryl streep":         {"mamma mia"},
	"jennifer aniston":     {"marley me"},
	"owen wilson":          {"marley me", "drillbit taylor"},
	"edward norton":        {"the incredible hulk"},
	"james mcavoy":         {"wanted"},
	"steve carell":         {"get smart"},
	"brad pitt":            {"the curious case of benjamin button", "burn after reading"},
	"brendan fraser":       {"the mummy tomb of the dragon emperor", "journey to the center of the earth"},
	"robert de niro":       {"righteous kill"},
	"al pacino":            {"righteous kill"},
	"adam sandler":         {"bedtime stories", "you don t mess with the zohan"},
	"tom cruise":           {"valkyrie", "tropic thunder"},
	"will ferrell":         {"step brothers", "semi pro"},
	"keanu reeves":         {"the day the earth stood still", "street kings"},
	"katherine heigl":      {"27 dresses"},
	"hayden christensen":   {"jumper"},
	"seth rogen":           {"pineapple express", "kung fu panda", "zack and miri make a porno"},
	"james franco":         {"pineapple express"},
	"ron perlman":          {"hellboy ii the golden army"},
	"mark wahlberg":        {"the happening", "max payne"},
	"zac efron":            {"high school musical 3 senior year"},
	"tina fey":             {"baby mama"},
	"amy poehler":          {"baby mama"},
	"jason segel":          {"forgetting sarah marshall"},
	"kevin spacey":         {"21"},
	"richard gere":         {"nights in rodanthe"},
	"george clooney":       {"burn after reading", "leatherheads"},
	"cameron diaz":         {"what happens in vegas"},
	"ashton kutcher":       {"what happens in vegas"},
	"leonardo dicaprio":    {"body of lies"},
	"russell crowe":        {"body of lies"},
	"anna faris":           {"the house bunny"},
	"ryan reynolds":        {"definitely maybe"},
	"patrick dempsey":      {"made of honor"},
	"sylvester stallone":   {"rambo"},
	"mike myers":           {"the love guru"},
	"jackie chan":          {"the forbidden kingdom", "kung fu panda"},
	"jet li":               {"the forbidden kingdom", "the mummy tomb of the dragon emperor"},
	"nicolas cage":         {"bangkok dangerous"},
	"samuel l jackson":     {"lakeview terrace"},
	"jason statham":        {"the bank job", "transporter 3"},
	"matthew mcconaughey":  {"fools gold"},
	"kate hudson":          {"fools gold"},
	"vince vaughn":         {"four christmases"},
	"reese witherspoon":    {"four christmases"},
	"ricky gervais":        {"ghost town"},
	"kevin costner":        {"swing vote"},
	"keira knightley":      {"the duchess"},
	"viggo mortensen":      {"appaloosa"},
	"ed harris":            {"appaloosa"},
	"david duchovny":       {"the x files i want to believe"},
	"paul rudd":            {"role models"},
	"dev patel":            {"slumdog millionaire"},
	"michael cera":         {"nick and norah s infinite playlist"},
	"frank langella":       {"the day the earth stood still"},
	"dakota fanning":       {"the spiderwick chronicles"},
	"dennis quaid":         {"vantage point"},
	"cate blanchett":       {"indiana jones and the kingdom of the crystal skull", "the curious case of benjamin button"},
}

// ActorMovies returns the normalized catalog titles the actor appears in,
// or nil for unknown actors. The corpus builder uses it to put filmography
// mentions on actor pages.
func ActorMovies(actor string) []string {
	return movieActors[actor]
}

// Actors returns all actor names in sorted order.
func Actors() []string {
	out := make([]string, 0, len(movieActors))
	for a := range movieActors {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// buildMovies generates aliases for every movie and the movie-domain global
// entries (actor queries). It returns the globals; entity aliases are
// accumulated in place.
func (m *Model) buildMovies() ([]Entry, error) {
	for _, e := range m.catalog.All() {
		m.buildOneMovie(e)
	}

	var globals []Entry
	// Actor queries: global Related strings. Volume proportional to the
	// summed popularity of the actor's movies.
	for actor, titles := range movieActors {
		vol := 0.0
		for _, title := range titles {
			if ent := m.catalog.ByNorm(title); ent != nil {
				vol += ent.Weight
			}
		}
		if vol == 0 {
			continue
		}
		globals = append(globals, Entry{
			Text:     textnorm.Normalize(actor),
			Volume:   m.params.DomainVolume * 0.05 * vol,
			Label:    Related,
			EntityID: -1,
			Scope:    "actor:" + textnorm.Normalize(actor),
		})
	}
	globals = append(globals, noiseEntries()...)
	return globals, nil
}

// buildOneMovie applies the generation rules to a single movie.
func (m *Model) buildOneMovie(e *entity.Entity) {
	id := e.ID
	canon := e.Norm()

	// The canonical string itself always exists as a query (Synonym by
	// definition); its class weight is handled separately via
	// CanonicalShare.
	m.addAlias(id, canon, Synonym, 1)

	// Article drop: "the dark knight" -> "dark knight".
	base := canon
	if rest, ok := strings.CutPrefix(canon, "the "); ok && rest != "" {
		m.addAlias(id, rest, Synonym, wMovieArticleDrop)
		base = rest
	}

	// Ampersand spelling: tokenization drops "&" entirely, so "Marley & Me"
	// normalizes to "marley me" while users type "marley and me" — a real
	// lexical gap the truth must cover.
	if strings.Contains(e.Canonical, "&") {
		withAnd := strings.ReplaceAll(e.Canonical, "&", " and ")
		m.addAlias(id, withAnd, Synonym, wMovieArticleDrop)
	}

	// Stopword-dropped compression of long titles: "chronicles narnia
	// prince caspian". Only titles long enough for users to bother.
	if sig := textnorm.SignificantTokens(e.Canonical); len(sig) >= 3 {
		compressed := strings.Join(sig, " ")
		if compressed != canon && compressed != base {
			m.addAlias(id, compressed, Synonym, wMovieAcronym)
		}
	}

	// Codified nicknames from the catalog.
	for _, n := range e.Nicknames {
		m.addAlias(id, n, Synonym, wMovieNickname)
	}

	franchise := textnorm.Normalize(e.Franchise)

	// Franchise + sequel-number variants: "madagascar 2", "madagascar ii",
	// "madagascar two".
	if franchise != "" && e.Sequel > 0 {
		forms := textnorm.NumeralForms(e.Sequel)
		for i, f := range forms {
			w := wMovieFranchiseNum / float64(i+1) // digits most common
			m.addAlias(id, franchise+" "+f, Synonym, w)
		}
	}

	// Subtitle alone: "prince caspian"; and franchise+subtitle-tail for
	// colon titles: "narnia prince caspian".
	if e.Subtitle != "" {
		sub := textnorm.Normalize(e.Subtitle)
		if sub != canon && sub != franchise {
			m.addAlias(id, sub, Synonym, wMovieSubtitle)
		}
		if franchise != "" {
			short := shortFranchise(franchise)
			if short != "" && short != franchise {
				m.addAlias(id, short+" "+sub, Synonym, wMovieSubtitle/2)
			}
		}
	}

	// Acronym for popular multi-word titles: "tdk" style. Only the head of
	// the popularity curve earns an acronym in real logs.
	if e.PopRank < 20 {
		ac := textnorm.Acronym(e.Canonical)
		if len(ac) >= 3 && len(ac) <= 6 && ac != canon {
			m.addAlias(id, ac, Synonym, wMovieAcronym)
		}
	}

	// Qualifier forms on the article-dropped base: "hancock movie",
	// "hancock 2008".
	if !strings.HasSuffix(base, " movie") {
		m.addAlias(id, base+" movie", Synonym, wMovieQualifier)
	}
	if !strings.HasSuffix(base, "2008") {
		m.addAlias(id, base+" 2008", Synonym, wMovieQualifier/2)
	}
	m.addAlias(id, base+" film", Synonym, wMovieQualifier/3)

	// A single-character-drop typo of the base form, for popular movies
	// only (typo volume is popularity-driven).
	if e.PopRank < 30 {
		if typo := dropMiddleRune(base); typo != "" {
			m.addAlias(id, typo, Synonym, wMovieTypo)
		}
	}

	// Hypernyms: the franchise name covers sibling movies beyond this one.
	if franchise != "" && franchise != canon {
		m.addAlias(id, franchise, Hypernym, wMovieFranchiseHyper)
		m.addAlias(id, franchise+" movies", Hypernym, wMovieSeriesHyper)
		m.addAlias(id, franchise+" series", Hypernym, wMovieSeriesHyper/2)
	}

	// Hyponyms: query refinements over the informal base. For franchise
	// sequels the refinement base is the franchise+number form ("indiana
	// jones 4 trailer") — users refine with the short name, not the full
	// title.
	refineBase := base
	if franchise != "" && e.Sequel > 0 {
		refineBase = franchise + " " + textnorm.NumeralForms(e.Sequel)[0]
	}
	for _, r := range movieRefinements {
		m.addAlias(id, refineBase+" "+r.suffix, Hyponym, wMovieRefinement*r.weight)
	}
}

// shortFranchise shortens multi-word franchise names to their distinctive
// head token ("chronicles of narnia" -> "narnia").
func shortFranchise(franchise string) string {
	toks := textnorm.SignificantTokens(franchise)
	if len(toks) == 0 {
		return ""
	}
	return toks[len(toks)-1]
}

// dropMiddleRune produces a deterministic single-deletion typo of s,
// removing a rune near the middle of its longest token. Returns "" when s
// is too short to typo plausibly.
func dropMiddleRune(s string) string {
	toks := strings.Fields(s)
	longest := -1
	for i, t := range toks {
		if longest == -1 || len(t) > len(toks[longest]) {
			longest = i
		}
	}
	if longest == -1 || len(toks[longest]) < 5 {
		return ""
	}
	t := []rune(toks[longest])
	mid := len(t) / 2
	toks[longest] = string(t[:mid]) + string(t[mid+1:])
	return strings.Join(toks, " ")
}
