package alias

import (
	"sort"
	"strings"

	"websyn/internal/entity"
	"websyn/internal/textnorm"
)

// Relative in-class weights for camera alias generation.
const (
	wCamModelOnly  = 9.0
	wCamLineModel  = 8.0
	wCamBrandModel = 7.0
	wCamNickname   = 8.0
	wCamConcat     = 2.0
	wCamSuffixDrop = 3.0
	wCamBrandTypo  = 1.0

	wCamBrandHyper = 8.0
	wCamLineHyper  = 4.0
	wCamCatHyper   = 2.0

	wCamRefinement = 1.0
)

// cameraRefinements are the hyponym suffixes of the camera domain.
var cameraRefinements = []struct {
	suffix string
	weight float64
}{
	{"review", 3.0},
	{"price", 2.5},
	{"manual", 1.6},
	{"battery", 1.4},
	{"charger", 1.0},
	{"accessories", 0.8},
	{"memory card", 0.6},
}

// cameraCategoryQueries are domain-level Related strings: high-volume
// generic queries whose clicks touch many camera pages without referring to
// any one entity.
var cameraCategoryQueries = []struct {
	text   string
	volume float64
}{
	{"digital camera", 5.0},
	{"digital camera reviews", 3.0},
	{"best digital camera", 2.5},
	{"dslr camera", 2.5},
	{"compact digital camera", 1.5},
	{"camera shop", 1.2},
	{"10 megapixel camera", 1.0},
	{"camera comparison", 0.8},
	{"point and shoot camera", 0.8},
	{"slr lenses", 0.7},
	{"camera sale", 0.6},
	{"best camera 2008", 0.6},
}

// RefinementSuffixes returns every refinement suffix either domain
// generates, longest first, so callers can greedily match the suffix of a
// hyponym query ("memory card" before "card").
func RefinementSuffixes() []string {
	var out []string
	for _, r := range movieRefinements {
		out = append(out, r.suffix)
	}
	for _, r := range cameraRefinements {
		out = append(out, r.suffix)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// commonBrandTypos maps brand tokens to their classic misspellings.
var commonBrandTypos = map[string]string{
	"canon":     "cannon",
	"fujifilm":  "fuji film",
	"panasonic": "panasonnic",
	"olympus":   "olimpus",
}

// buildCameras generates aliases for every camera and the camera-domain
// global entries (category queries).
func (m *Model) buildCameras() ([]Entry, error) {
	for _, e := range m.catalog.All() {
		m.buildOneCamera(e)
	}

	var globals []Entry
	catTotal := 0.0
	for _, c := range cameraCategoryQueries {
		catTotal += c.volume
	}
	for _, c := range cameraCategoryQueries {
		globals = append(globals, Entry{
			Text:     textnorm.Normalize(c.text),
			Volume:   m.params.DomainVolume * 0.06 * c.volume / catTotal,
			Label:    Related,
			EntityID: -1,
			Scope:    "category",
		})
	}
	globals = append(globals, noiseEntries()...)
	return globals, nil
}

// buildOneCamera applies the generation rules to a single camera.
func (m *Model) buildOneCamera(e *entity.Entity) {
	id := e.ID
	canon := e.Norm()
	brand := textnorm.Normalize(e.Brand)
	line := textnorm.Normalize(e.Line)
	model := textnorm.Normalize(e.Model)

	m.addAlias(id, canon, Synonym, 1)

	// Model-only: "350d", "dsc w120". Bare-number models ("780" for the
	// Olympus Stylus 780) are skipped: a number alone is hopelessly
	// ambiguous as a query, and the demotion pass would not catch clashes
	// with strings outside the catalog.
	coreModel := stripSeriesPrefix(model)
	if !isBareNumber(model) {
		m.addAlias(id, model, Synonym, wCamModelOnly)
	}
	if coreModel != model && !isBareNumber(coreModel) {
		m.addAlias(id, coreModel, Synonym, wCamModelOnly/2)
	}

	// Line+model and brand+model: "eos 350d", "canon 350d".
	if line != "" {
		m.addAlias(id, line+" "+model, Synonym, wCamLineModel)
	}
	m.addAlias(id, brand+" "+model, Synonym, wCamBrandModel)
	if coreModel != model {
		m.addAlias(id, brand+" "+coreModel, Synonym, wCamBrandModel/2)
	}

	// Codified market nicknames ("digital rebel xt") and brand-qualified
	// variants ("canon digital rebel xt").
	for _, n := range e.Nicknames {
		m.addAlias(id, n, Synonym, wCamNickname)
		m.addAlias(id, brand+" "+n, Synonym, wCamNickname/2)
	}

	// Concatenated model variant: "eos350d" — users often omit the space
	// inside model codes.
	concat := strings.ReplaceAll(model, " ", "")
	if line != "" && !isBareNumber(model) {
		m.addAlias(id, line+" "+concat, Synonym, wCamConcat)
	}

	// Suffix drop: "canon powershot a590" for "A590 IS".
	if dropped, ok := dropModelSuffix(model); ok {
		if line != "" {
			m.addAlias(id, brand+" "+line+" "+dropped, Synonym, wCamSuffixDrop)
		} else {
			m.addAlias(id, brand+" "+dropped, Synonym, wCamSuffixDrop)
		}
	}

	// Brand typo on the highest-volume brandful alias.
	if typo, ok := commonBrandTypos[brand]; ok && e.PopRank < 200 {
		m.addAlias(id, typo+" "+model, Synonym, wCamBrandTypo)
	}

	// Qualifier and no-space variants of the primary informal name:
	// "eos 350d camera", "eos350d".
	primary := primaryCameraName(e)
	m.addAlias(id, primary+" camera", Synonym, wCamConcat)
	if nospace := strings.ReplaceAll(primary, " ", ""); nospace != primary && len(nospace) <= 14 {
		m.addAlias(id, nospace, Synonym, wCamConcat/2)
	}

	// Hypernyms: brand, brand+line, brand+category.
	m.addAlias(id, brand, Hypernym, wCamBrandHyper)
	if line != "" {
		m.addAlias(id, brand+" "+line, Hypernym, wCamLineHyper)
		m.addAlias(id, line, Hypernym, wCamLineHyper/2)
	}
	m.addAlias(id, brand+" digital camera", Hypernym, wCamCatHyper)

	// Hyponyms: refinements over the primary informal name.
	for _, r := range cameraRefinements {
		m.addAlias(id, primary+" "+r.suffix, Hyponym, wCamRefinement*r.weight)
	}
}

// primaryCameraName is the highest-volume informal name: nickname if any,
// else line+model, else brand+model.
func primaryCameraName(e *entity.Entity) string {
	if len(e.Nicknames) > 0 {
		return textnorm.Normalize(e.Nicknames[0])
	}
	model := textnorm.Normalize(e.Model)
	if line := textnorm.Normalize(e.Line); line != "" {
		return line + " " + model
	}
	return textnorm.Normalize(e.Brand) + " " + model
}

// stripSeriesPrefix removes marketing prefixes from model codes:
// "dsc w120" -> "w120", "dmc fz18" -> "fz18", "ex z75" -> "z75".
func stripSeriesPrefix(model string) string {
	for _, prefix := range []string{"dsc ", "dmc ", "ex ", "vpc ", "dslr "} {
		if rest, ok := strings.CutPrefix(model, prefix); ok && rest != "" {
			return rest
		}
	}
	return model
}

// dropModelSuffix removes trailing feature designators ("IS", "SW", "UZ",
// "HD", "fd") from a normalized model code. The second result reports
// whether anything was dropped.
func dropModelSuffix(model string) (string, bool) {
	for _, suffix := range []string{" is", " sw", " uz", " hd", " fd", " ops", " tw"} {
		if rest, ok := strings.CutSuffix(model, suffix); ok && rest != "" {
			return rest, true
		}
	}
	return model, false
}

// isBareNumber reports whether the normalized model is digits only.
func isBareNumber(model string) bool {
	if model == "" {
		return false
	}
	for _, r := range model {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
