package alias

import (
	"strings"

	"websyn/internal/entity"
	"websyn/internal/textnorm"
)

// Relative in-class weights for software alias generation.
const (
	wSoftVendorDrop = 9.0
	wSoftNickname   = 8.0
	wSoftProductNum = 7.0
	wSoftAcronym    = 2.0
	wSoftConcat     = 2.0
	wSoftQualifier  = 2.5
	wSoftTypo       = 0.8

	wSoftProductHyper = 8.0
	wSoftVendorHyper  = 4.0
	wSoftCatHyper     = 2.0

	wSoftRefinement = 1.0
)

// softwareRefinements are the hyponym suffixes of the software domain.
var softwareRefinements = []struct {
	suffix string
	weight float64
}{
	{"download", 3.0},
	{"free download", 2.0},
	{"update", 1.5},
	{"review", 1.2},
	{"trial", 1.0},
	{"system requirements", 0.8},
	{"manual", 0.6},
}

// softwareCategoryQueries are domain-level Related strings.
var softwareCategoryQueries = []struct {
	text   string
	volume float64
}{
	{"free software", 4.0},
	{"software downloads", 3.0},
	{"pc games", 3.0},
	{"antivirus software", 2.0},
	{"best pc games 2008", 1.5},
	{"operating systems", 1.2},
	{"photo editing software", 1.0},
	{"video games", 1.0},
	{"open source software", 0.8},
	{"game reviews", 0.8},
}

// SoftwareParams are the defaults for the D3 extension domain: canonical
// vendor-qualified names ("Apple Mac OS X 10.5") carry little volume —
// users type codenames and short forms.
func SoftwareParams() Params {
	return Params{
		CanonicalShare: 0.08,
		SynonymShare:   0.54,
		HypernymShare:  0.14,
		HyponymShare:   0.24,
		RelatedShare:   0,
		DomainVolume:   0.70,
		NoiseVolume:    0.30,
	}
}

// buildSoftware generates aliases for every software product and the
// domain's global entries.
func (m *Model) buildSoftware() ([]Entry, error) {
	for _, e := range m.catalog.All() {
		m.buildOneSoftware(e)
	}
	var globals []Entry
	catTotal := 0.0
	for _, c := range softwareCategoryQueries {
		catTotal += c.volume
	}
	for _, c := range softwareCategoryQueries {
		globals = append(globals, Entry{
			Text:     textnorm.Normalize(c.text),
			Volume:   m.params.DomainVolume * 0.06 * c.volume / catTotal,
			Label:    Related,
			EntityID: -1,
			Scope:    "category",
		})
	}
	globals = append(globals, noiseEntries()...)
	return globals, nil
}

// buildOneSoftware applies the generation rules to a single product.
func (m *Model) buildOneSoftware(e *entity.Entity) {
	id := e.ID
	canon := e.Norm()
	vendor := textnorm.Normalize(e.Brand)
	product := textnorm.Normalize(e.Franchise)

	m.addAlias(id, canon, Synonym, 1)

	// Vendor drop: "Microsoft Windows Vista" -> "windows vista". This is
	// the dominant phenomenon: nobody types the vendor.
	if rest, ok := strings.CutPrefix(canon, vendor+" "); ok && rest != "" {
		m.addAlias(id, rest, Synonym, wSoftVendorDrop)
	}

	// Codenames and market nicknames ("leopard", "cod4", "wotlk").
	for _, n := range e.Nicknames {
		m.addAlias(id, n, Synonym, wSoftNickname)
	}

	// Product + version numeral forms: "civilization 4", "civilization iv".
	if product != "" && e.Sequel > 0 {
		for i, f := range textnorm.NumeralForms(e.Sequel) {
			m.addAlias(id, product+" "+f, Synonym, wSoftProductNum/float64(i+1))
		}
	}

	// Acronym for popular multi-word names ("wow", "gta").
	if e.PopRank < 30 {
		ac := textnorm.Acronym(e.Franchise)
		if len(ac) >= 2 && len(ac) <= 5 && ac != product {
			if e.Sequel > 0 {
				m.addAlias(id, ac+" "+textnorm.NumeralForms(e.Sequel)[0], Synonym, wSoftAcronym)
			} else {
				m.addAlias(id, ac, Synonym, wSoftAcronym)
			}
		}
	}

	// No-space concatenation of the product's informal name ("warcraft3").
	primary := primarySoftwareName(e)
	if nospace := strings.ReplaceAll(primary, " ", ""); nospace != primary && len(nospace) <= 14 {
		m.addAlias(id, nospace, Synonym, wSoftConcat)
	}

	// Qualifier: "<primary> game" for games-ish products, "<primary>
	// software" otherwise — approximated by version presence.
	m.addAlias(id, primary+" full version", Synonym, wSoftQualifier/2)

	// Typo on the primary informal name, popular products only.
	if e.PopRank < 25 {
		if typo := dropMiddleRune(primary); typo != "" {
			m.addAlias(id, typo, Synonym, wSoftTypo)
		}
	}

	// Hypernyms: the product line (covers all versions) and the vendor.
	if product != "" && product != canon {
		m.addAlias(id, product, Hypernym, wSoftProductHyper)
	}
	m.addAlias(id, vendor, Hypernym, wSoftVendorHyper)
	m.addAlias(id, vendor+" software", Hypernym, wSoftCatHyper)

	// Hyponyms: refinements over the primary informal name.
	for _, r := range softwareRefinements {
		m.addAlias(id, primary+" "+r.suffix, Hyponym, wSoftRefinement*r.weight)
	}
}

// primarySoftwareName is the highest-volume informal name: first nickname,
// else the vendor-dropped canonical.
func primarySoftwareName(e *entity.Entity) string {
	if len(e.Nicknames) > 0 {
		return textnorm.Normalize(e.Nicknames[0])
	}
	canon := textnorm.Normalize(e.Canonical)
	vendor := textnorm.Normalize(e.Brand)
	if rest, ok := strings.CutPrefix(canon, vendor+" "); ok && rest != "" {
		return rest
	}
	return canon
}
