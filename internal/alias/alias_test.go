package alias

import (
	"math"
	"strings"
	"testing"

	"websyn/internal/entity"
	"websyn/internal/textnorm"
)

func movieModel(t *testing.T) *Model {
	t.Helper()
	cat, err := entity.Movies2008()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(cat, MovieParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cameraModel(t *testing.T) *Model {
	t.Helper()
	cat, err := entity.Cameras2008()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(cat, CameraParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLabelString(t *testing.T) {
	for l, want := range map[Label]string{
		Synonym: "synonym", Hypernym: "hypernym", Hyponym: "hyponym",
		Related: "related", Noise: "noise",
	} {
		if l.String() != want {
			t.Errorf("Label(%d).String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestParamsCheck(t *testing.T) {
	bad := MovieParams()
	bad.SynonymShare += 0.5
	if _, err := Build(nil, bad); err == nil {
		t.Fatal("invalid shares accepted")
	}
	for _, p := range []Params{MovieParams(), CameraParams()} {
		if err := p.check(); err != nil {
			t.Fatalf("default params invalid: %v", err)
		}
	}
}

func TestVolumesSumToOne(t *testing.T) {
	for _, m := range []*Model{movieModel(t), cameraModel(t)} {
		sum := 0.0
		for _, e := range m.Entries() {
			if e.Volume < 0 {
				t.Fatalf("entry %q has negative volume", e.Text)
			}
			sum += e.Volume
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v volumes sum to %v", m.Catalog().Kind(), sum)
		}
	}
}

func TestEntriesNormalized(t *testing.T) {
	for _, m := range []*Model{movieModel(t), cameraModel(t)} {
		for _, e := range m.Entries() {
			if e.Text != textnorm.Normalize(e.Text) {
				t.Fatalf("entry %q is not normalized", e.Text)
			}
			if e.Text == "" {
				t.Fatal("empty entry text")
			}
		}
	}
}

func TestCanonicalIsSynonymOfItself(t *testing.T) {
	for _, m := range []*Model{movieModel(t), cameraModel(t)} {
		for _, e := range m.Catalog().All() {
			if !m.IsSynonym(e.ID, e.Norm()) {
				t.Fatalf("canonical %q not a synonym of itself", e.Canonical)
			}
		}
	}
}

func TestEveryMovieHasInformalSynonym(t *testing.T) {
	m := movieModel(t)
	for _, e := range m.Catalog().All() {
		if len(m.SynonymsOf(e.ID)) == 0 {
			t.Fatalf("movie %q has no informal synonyms", e.Canonical)
		}
	}
}

func TestMostCamerasHaveInformalSynonyms(t *testing.T) {
	// A handful of cameras legitimately end up with zero informal synonyms
	// (their only short name collides with another brand's model code and
	// is demoted as ambiguous), but that must stay rare.
	m := cameraModel(t)
	missing := 0
	for _, e := range m.Catalog().All() {
		if len(m.SynonymsOf(e.ID)) == 0 {
			missing++
		}
	}
	if frac := float64(missing) / float64(m.Catalog().Len()); frac > 0.05 {
		t.Fatalf("%.1f%% of cameras have no informal synonyms (max 5%%)", frac*100)
	}
}

func TestIndianaJonesAliases(t *testing.T) {
	m := movieModel(t)
	indy := m.Catalog().ByNorm("indiana jones and the kingdom of the crystal skull")
	if indy == nil {
		t.Fatal("missing entity")
	}
	for _, want := range []string{"indiana jones 4", "indiana jones iv", "indy 4"} {
		if !m.IsSynonym(indy.ID, want) {
			t.Errorf("%q should be a synonym of Indiana Jones 4; synonyms: %v",
				want, m.SynonymsOf(indy.ID))
		}
	}
	// The franchise name is a hypernym, not a synonym — Figure 1(b).
	if m.IsSynonym(indy.ID, "indiana jones") {
		t.Error("\"indiana jones\" must not be a synonym (hypernym)")
	}
	if l, ok := m.LabelFor(indy.ID, "indiana jones"); !ok || l != Hypernym {
		t.Errorf("LabelFor(indiana jones) = %v,%v want Hypernym", l, ok)
	}
	// Refinements are hyponyms.
	if l, ok := m.LabelFor(indy.ID, "indiana jones 4 trailer"); !ok || l != Hyponym {
		t.Errorf("LabelFor(indiana jones 4 trailer) = %v,%v want Hyponym", l, ok)
	}
}

func TestMadagascarSubtitleDrop(t *testing.T) {
	m := movieModel(t)
	mad := m.Catalog().ByNorm("madagascar escape 2 africa")
	if mad == nil {
		t.Fatal("missing entity")
	}
	if !m.IsSynonym(mad.ID, "madagascar 2") {
		t.Error("madagascar 2 should be a synonym")
	}
	// The paper's substring-matching counterexample: "escape africa" would
	// be wrongly produced by substring approaches; our truth labels the
	// actual subtitle "escape 2 africa" a synonym but never bare fragments.
	if m.IsSynonym(mad.ID, "escape africa") {
		t.Error("escape africa must not be a synonym")
	}
	if m.IsSynonym(mad.ID, "madagascar") {
		t.Error("franchise name must not be a synonym")
	}
}

func TestRebelXTAliases(t *testing.T) {
	m := cameraModel(t)
	rebel := m.Catalog().ByNorm("canon eos 350d")
	if rebel == nil {
		t.Fatal("missing entity")
	}
	for _, want := range []string{"digital rebel xt", "rebel xt", "350d", "eos 350d", "canon 350d"} {
		if !m.IsSynonym(rebel.ID, want) {
			t.Errorf("%q should be a synonym of Canon EOS 350D", want)
		}
	}
	if m.IsSynonym(rebel.ID, "canon") {
		t.Error("brand must not be a synonym")
	}
	if m.IsSynonym(rebel.ID, "canon eos") {
		t.Error("brand+line must not be a synonym")
	}
	if l, _ := m.LabelFor(rebel.ID, "digital rebel xt review"); l != Hyponym {
		t.Errorf("digital rebel xt review label = %v, want Hyponym", l)
	}
	if l, _ := m.LabelFor(rebel.ID, "digital rebel xt price"); l != Hyponym {
		t.Errorf("digital rebel xt price label = %v, want Hyponym", l)
	}
}

func TestAmbiguousModelCodesDemoted(t *testing.T) {
	m := cameraModel(t)
	// Count synonym owners per text across the catalog: no text may be a
	// synonym of two entities (Definition 1 demands identical entity sets).
	owners := map[string][]int{}
	for _, e := range m.Catalog().All() {
		for s := range m.synonyms[e.ID] {
			owners[s] = append(owners[s], e.ID)
		}
	}
	for text, ids := range owners {
		if len(ids) > 1 {
			a := m.Catalog().ByID(ids[0]).Canonical
			b := m.Catalog().ByID(ids[1]).Canonical
			t.Fatalf("text %q is a synonym of both %q and %q", text, a, b)
		}
	}
}

func TestMovieSynonymOwnershipUnique(t *testing.T) {
	m := movieModel(t)
	owners := map[string][]int{}
	for _, e := range m.Catalog().All() {
		for s := range m.synonyms[e.ID] {
			owners[s] = append(owners[s], e.ID)
		}
	}
	for text, ids := range owners {
		if len(ids) > 1 {
			t.Fatalf("movie text %q owned by %d entities", text, len(ids))
		}
	}
}

func TestPerEntityAliasWeightsSumToOne(t *testing.T) {
	for _, m := range []*Model{movieModel(t), cameraModel(t)} {
		for _, e := range m.Catalog().All() {
			sum := 0.0
			for _, a := range m.AliasesOf(e.ID) {
				if a.Weight < 0 {
					t.Fatalf("%q alias %q negative weight", e.Canonical, a.Text)
				}
				sum += a.Weight
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("%q alias weights sum to %v", e.Canonical, sum)
			}
		}
	}
}

func TestCanonicalShareRespected(t *testing.T) {
	m := cameraModel(t)
	p := m.Params()
	for _, e := range m.Catalog().All() {
		for _, a := range m.AliasesOf(e.ID) {
			if a.Text == e.Norm() {
				// Canonical carries at least its configured share; empty
				// class leftovers may top it up.
				if a.Weight < p.CanonicalShare-1e-9 {
					t.Fatalf("%q canonical share %v below %v", e.Canonical, a.Weight, p.CanonicalShare)
				}
			}
		}
	}
}

func TestNoiseEntriesPresent(t *testing.T) {
	m := movieModel(t)
	noiseVol := 0.0
	noiseCount := 0
	for _, e := range m.Entries() {
		if e.Label == Noise {
			noiseCount++
			noiseVol += e.Volume
			if e.EntityID != -1 {
				t.Fatalf("noise entry %q has entity ID %d", e.Text, e.EntityID)
			}
		}
	}
	if noiseCount != NoiseQueryCount() {
		t.Fatalf("noise entries = %d, want %d", noiseCount, NoiseQueryCount())
	}
	// Noise volume should be near its configured share (exact after
	// normalization only if entity+related volumes hit DomainVolume
	// exactly, so allow slack).
	if noiseVol < 0.15 || noiseVol > 0.45 {
		t.Fatalf("noise volume share %v implausible", noiseVol)
	}
}

func TestActorQueriesAreGlobalRelated(t *testing.T) {
	m := movieModel(t)
	found := false
	for _, e := range m.Entries() {
		if e.Text == "harrison ford" {
			found = true
			if e.Label != Related || e.EntityID != -1 {
				t.Fatalf("harrison ford entry = %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("harrison ford query missing from universe")
	}
}

func TestLabelForUnknownString(t *testing.T) {
	m := movieModel(t)
	if l, ok := m.LabelFor(0, "completely unknown query string"); ok || l != Noise {
		t.Fatalf("unknown string labeled %v,%v", l, ok)
	}
}

func TestLabelForOtherEntitysString(t *testing.T) {
	m := movieModel(t)
	indy := m.Catalog().ByNorm("indiana jones and the kingdom of the crystal skull")
	dark := m.Catalog().ByNorm("the dark knight")
	l, ok := m.LabelFor(dark.ID, "indy 4")
	if !ok || l != Related {
		t.Fatalf("other entity's synonym labeled %v,%v; want Related,true", l, ok)
	}
	_ = indy
}

func TestSynonymsOfExcludesCanonical(t *testing.T) {
	m := movieModel(t)
	for _, e := range m.Catalog().All() {
		for _, s := range m.SynonymsOf(e.ID) {
			if s == e.Norm() {
				t.Fatalf("SynonymsOf(%q) contains the canonical string", e.Canonical)
			}
		}
	}
}

func TestAverageSynonymCountPlausible(t *testing.T) {
	// The paper's Table I implies roughly 4-6 mined synonyms per hit; the
	// ground truth must offer at least that many candidates on average.
	for _, m := range []*Model{movieModel(t), cameraModel(t)} {
		total := 0
		for _, e := range m.Catalog().All() {
			total += len(m.SynonymsOf(e.ID))
		}
		avg := float64(total) / float64(m.Catalog().Len())
		if avg < 4 || avg > 15 {
			t.Fatalf("%v: average truth synonyms per entity = %.2f, outside [4,15]",
				m.Catalog().Kind(), avg)
		}
	}
}

func TestDropMiddleRune(t *testing.T) {
	if got := dropMiddleRune("twilight"); got == "twilight" || len(got) != len("twilight")-1 {
		t.Fatalf("dropMiddleRune(twilight) = %q", got)
	}
	if got := dropMiddleRune("up"); got != "" {
		t.Fatalf("short string should not typo, got %q", got)
	}
	if got := dropMiddleRune("the dark knight"); !strings.Contains(got, "the ") {
		t.Fatalf("typo should hit longest token only: %q", got)
	}
}

func TestStripSeriesPrefix(t *testing.T) {
	cases := map[string]string{
		"dsc w120": "w120",
		"dmc fz18": "fz18",
		"ex z75":   "z75",
		"350d":     "350d",
	}
	for in, want := range cases {
		if got := stripSeriesPrefix(in); got != want {
			t.Errorf("stripSeriesPrefix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDropModelSuffix(t *testing.T) {
	if got, ok := dropModelSuffix("a590 is"); !ok || got != "a590" {
		t.Fatalf("dropModelSuffix(a590 is) = %q,%v", got, ok)
	}
	if _, ok := dropModelSuffix("350d"); ok {
		t.Fatal("350d has no suffix to drop")
	}
}

func TestIsBareNumber(t *testing.T) {
	if !isBareNumber("780") {
		t.Error("780 is bare")
	}
	for _, s := range []string{"350d", "", "w120", "a590 is"} {
		if isBareNumber(s) {
			t.Errorf("%q wrongly bare", s)
		}
	}
}

func TestBareNumberModelsNotSynonyms(t *testing.T) {
	m := cameraModel(t)
	stylus := m.Catalog().ByNorm("olympus stylus 780")
	if stylus == nil {
		t.Skip("stylus 780 not in catalog")
	}
	if m.IsSynonym(stylus.ID, "780") {
		t.Fatal("bare number must not be a synonym")
	}
	if !m.IsSynonym(stylus.ID, "stylus 780") {
		t.Fatal("line+model should be a synonym")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := cameraModel(t)
	b := cameraModel(t)
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != len(eb) {
		t.Fatal("entry counts differ between builds")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestHypernymScopePopulated(t *testing.T) {
	m := cameraModel(t)
	for _, e := range m.Entries() {
		if e.Label == Hypernym && e.EntityID >= 0 && e.Scope == "" {
			t.Fatalf("hypernym entry %q has empty scope", e.Text)
		}
	}
}
