package alias

import (
	"math"
	"testing"

	"websyn/internal/entity"
)

func softwareModel(t *testing.T) *Model {
	t.Helper()
	cat, err := entity.Software2008()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(cat, SoftwareParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSoftwareCatalogSize(t *testing.T) {
	m := softwareModel(t)
	if m.Catalog().Len() != entity.SoftwareCount {
		t.Fatalf("catalog size %d", m.Catalog().Len())
	}
	if m.Catalog().Kind() != entity.Software {
		t.Fatal("wrong kind")
	}
}

func TestLeopardCodename(t *testing.T) {
	// The paper's own motivating example: "Apple's 'Mac OS X' is also
	// known as 'Leopard'".
	m := softwareModel(t)
	leopard := m.Catalog().ByNorm("apple mac os x 10 5")
	if leopard == nil {
		t.Fatal("Mac OS X 10.5 missing")
	}
	if !m.IsSynonym(leopard.ID, "leopard") {
		t.Fatalf("leopard should be a synonym; have %v", m.SynonymsOf(leopard.ID))
	}
	// The product line is a hypernym (covers 10.4 and 10.5).
	if m.IsSynonym(leopard.ID, "mac os x") {
		t.Fatal("mac os x must not be a synonym of one version")
	}
	if l, ok := m.LabelFor(leopard.ID, "mac os x"); !ok || l != Hypernym {
		t.Fatalf("mac os x labeled %v,%v", l, ok)
	}
}

func TestVersionNumeralVariants(t *testing.T) {
	m := softwareModel(t)
	gta := m.Catalog().ByNorm("grand theft auto iv")
	if gta == nil {
		t.Fatal("GTA IV missing")
	}
	for _, want := range []string{"grand theft auto 4", "gta 4", "gta iv"} {
		if !m.IsSynonym(gta.ID, want) {
			t.Errorf("%q should be a synonym of GTA IV", want)
		}
	}
}

func TestVendorDropSynonym(t *testing.T) {
	m := softwareModel(t)
	vista := m.Catalog().ByNorm("microsoft windows vista")
	if vista == nil {
		t.Fatal("Vista missing")
	}
	if !m.IsSynonym(vista.ID, "windows vista") {
		t.Fatal("vendor-dropped form should be a synonym")
	}
	if m.IsSynonym(vista.ID, "microsoft") {
		t.Fatal("vendor must not be a synonym")
	}
	if m.IsSynonym(vista.ID, "windows") {
		t.Fatal("product line must not be a synonym")
	}
}

func TestSoftwareRefinementsAreHyponyms(t *testing.T) {
	m := softwareModel(t)
	ff := m.Catalog().ByNorm("mozilla firefox 3")
	if ff == nil {
		t.Fatal("Firefox 3 missing")
	}
	found := false
	for _, a := range m.AliasesOf(ff.ID) {
		if a.Label == Hyponym {
			found = true
		}
	}
	if !found {
		t.Fatal("no refinement hyponyms generated")
	}
}

func TestSoftwareVolumesSumToOne(t *testing.T) {
	m := softwareModel(t)
	sum := 0.0
	for _, e := range m.Entries() {
		sum += e.Volume
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("volumes sum to %v", sum)
	}
}

func TestSoftwareSynonymOwnershipUnique(t *testing.T) {
	m := softwareModel(t)
	owners := map[string][]int{}
	for _, e := range m.Catalog().All() {
		for s := range m.synonyms[e.ID] {
			owners[s] = append(owners[s], e.ID)
		}
	}
	for text, ids := range owners {
		if len(ids) > 1 {
			t.Fatalf("text %q is a synonym of %d software entities", text, len(ids))
		}
	}
}

func TestCodVersionsShareProductHypernym(t *testing.T) {
	// Two Call of Duty entries exist; "call of duty" must be a hypernym
	// of both, a synonym of neither.
	m := softwareModel(t)
	cod4 := m.Catalog().ByNorm("call of duty 4 modern warfare")
	cod5 := m.Catalog().ByNorm("call of duty world at war")
	if cod4 == nil || cod5 == nil {
		t.Fatal("CoD entries missing")
	}
	for _, e := range []*entity.Entity{cod4, cod5} {
		if m.IsSynonym(e.ID, "call of duty") {
			t.Fatalf("call of duty is a synonym of %q", e.Canonical)
		}
	}
	if !m.IsSynonym(cod4.ID, "cod4") || !m.IsSynonym(cod5.ID, "cod5") {
		t.Fatal("version nicknames missing")
	}
}
