package search

import (
	"testing"
	"testing/quick"

	"websyn/internal/alias"
	"websyn/internal/entity"
	"websyn/internal/webcorpus"
)

// tinyCorpus builds a handcrafted corpus for focused ranking tests.
func tinyCorpus(t *testing.T) *webcorpus.Corpus {
	t.Helper()
	cat, err := entity.Movies2008()
	if err != nil {
		t.Fatal(err)
	}
	model, err := alias.Build(cat, alias.MovieParams())
	if err != nil {
		t.Fatal(err)
	}
	c, err := webcorpus.Build(model, webcorpus.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIndexCounts(t *testing.T) {
	c := tinyCorpus(t)
	idx := NewIndex(c)
	if idx.N() != c.Len() {
		t.Fatalf("index has %d docs, corpus %d", idx.N(), c.Len())
	}
	if idx.Corpus() != c {
		t.Fatal("Corpus() identity lost")
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	if got := idx.Search("", 10); got != nil {
		t.Fatalf("empty query returned %d results", len(got))
	}
	if got := idx.Search("!!!", 10); got != nil {
		t.Fatalf("punctuation-only query returned %d results", len(got))
	}
	if got := idx.Search("dark knight", 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestSearchUnknownTerms(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	if got := idx.Search("zzyzzqx quux", 10); got != nil {
		t.Fatalf("OOV query returned %d results", len(got))
	}
}

func TestSearchRanksOwnPagesFirst(t *testing.T) {
	c := tinyCorpus(t)
	idx := NewIndex(c)
	results := idx.Search("The Dark Knight", 10)
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	// The canonical query's top results must overwhelmingly be the
	// entity's own pages (the surrogate property, Def. 5).
	own := 0
	for _, r := range results {
		if c.ByID(r.PageID).EntityID == 0 {
			own++
		}
	}
	if own < 8 {
		t.Fatalf("only %d/10 top results belong to the entity", own)
	}
}

func TestCanonicalTopKMostlyCorePages(t *testing.T) {
	// Deep pages (trailer/showtimes) must mostly rank below the core pages
	// for the bare canonical query, so they fall outside GA(u) and give
	// hyponym queries somewhere to click outside the intersection.
	c := tinyCorpus(t)
	idx := NewIndex(c)
	cat, err := entity.Movies2008()
	if err != nil {
		t.Fatal(err)
	}
	deepInTop := 0
	const checked = 20
	for id := 0; id < checked; id++ {
		results := idx.Search(cat.ByID(id).Canonical, 10)
		for _, r := range results {
			p := c.ByID(r.PageID)
			if p.EntityID != id {
				continue
			}
			switch p.Type {
			case webcorpus.Trailer, webcorpus.Showtimes, webcorpus.Manual, webcorpus.Accessories:
				deepInTop++
			}
		}
	}
	if avg := float64(deepInTop) / checked; avg > 1.5 {
		t.Fatalf("deep pages average %.2f of top-10 per entity (max 1.5)", avg)
	}
}

func TestSearchRanksAreDense(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	results := idx.Search("indiana jones", 10)
	for i, r := range results {
		if r.Rank != i+1 {
			t.Fatalf("result %d has rank %d", i, r.Rank)
		}
		if i > 0 && results[i-1].Score < r.Score {
			t.Fatalf("scores not descending at %d", i)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	a := idx.Search("batman movie", 10)
	b := idx.Search("batman movie", 10)
	if len(a) != len(b) {
		t.Fatal("result count differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSearchKLimits(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	f := func(kRaw uint8) bool {
		k := int(kRaw%30) + 1
		results := idx.Search("dark knight review", k)
		return len(results) <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDocFreq(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	if idx.DocFreq("zzyzzqx") != 0 {
		t.Fatal("OOV term has nonzero df")
	}
	if idx.DocFreq("movie") == 0 {
		t.Fatal("common term has zero df")
	}
	// "the" should be extremely common (low idf floor kicks in).
	if idx.idf("movie") <= 0 {
		t.Fatal("idf must be positive for indexed terms")
	}
}

func TestNewDataSurrogates(t *testing.T) {
	c := tinyCorpus(t)
	idx := NewIndex(c)
	d, err := NewData(idx, []string{"The Dark Knight", "Iron Man"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.K() != 10 {
		t.Fatalf("K = %d", d.K())
	}
	ga := d.Surrogates("the dark knight")
	if len(ga) != 10 {
		t.Fatalf("|GA| = %d", len(ga))
	}
	if d.Surrogates("unknown query") != nil {
		t.Fatal("unknown query should have no surrogates")
	}
	top := d.Top("iron man")
	if len(top) != 10 || top[0].Rank != 1 {
		t.Fatalf("Top malformed: %v", top)
	}
}

func TestNewDataErrors(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	if _, err := NewData(idx, []string{"x"}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewData(idx, []string{"!!!"}, 10); err == nil {
		t.Fatal("empty-normalizing input accepted")
	}
}

func TestNewDataDuplicateInputsCollapse(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	d, err := NewData(idx, []string{"Iron Man", "iron man", "IRON MAN!"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Queries()); got != 1 {
		t.Fatalf("%d distinct queries, want 1", got)
	}
}

func TestDataTuplesRoundTrip(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	d, err := NewData(idx, []string{"The Dark Knight", "Iron Man", "Hancock"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	tuples := d.Tuples()
	d2, err := NewDataFromTuples(tuples, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range d.Queries() {
		a, b := d.Surrogates(q), d2.Surrogates(q)
		if len(a) != len(b) {
			t.Fatalf("surrogate count mismatch for %q", q)
		}
		for p := range a {
			if !b[p] {
				t.Fatalf("page %d missing after round trip", p)
			}
		}
	}
}

func TestNewDataFromTuplesValidatesRank(t *testing.T) {
	if _, err := NewDataFromTuples([]Tuple{{Query: "q", PageID: 1, Rank: 11}}, 10); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if _, err := NewDataFromTuples([]Tuple{{Query: "q", PageID: 1, Rank: 0}}, 10); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func BenchmarkSearchCanonical(b *testing.B) {
	cat, _ := entity.Movies2008()
	model, _ := alias.Build(cat, alias.MovieParams())
	c, _ := webcorpus.Build(model, webcorpus.DefaultConfig(7))
	idx := NewIndex(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = idx.Search("indiana jones and the kingdom of the crystal skull", 10)
	}
}
