// Package search implements the Web search engine substrate: an inverted
// index with BM25 ranking over the synthetic corpus.
//
// In the paper, Search Data A is obtained by issuing each canonical string
// to the Bing Search API and keeping the top-k results (Section III.A,
// Eq. 1). Here the same tuples come from this engine. The miner consumes
// only (query, page, rank) tuples, so any ranker that reliably surfaces an
// entity's surrogate pages for its canonical string induces the same
// structure; BM25 is the standard, dependency-free choice.
package search

import (
	"math"
	"sort"

	"websyn/internal/textnorm"
	"websyn/internal/webcorpus"
)

// BM25 parameters: the textbook defaults.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// posting is one (page, term-frequency) pair in a postings list.
type posting struct {
	pageID int
	tf     float64
}

// Index is an immutable inverted index over a corpus.
type Index struct {
	corpus   *webcorpus.Corpus
	postings map[string][]posting
	docLen   []float64
	avgLen   float64
	n        int
}

// NewIndex builds the inverted index for the corpus.
func NewIndex(c *webcorpus.Corpus) *Index {
	idx := &Index{
		corpus:   c,
		postings: make(map[string][]posting),
		docLen:   make([]float64, c.Len()),
		n:        c.Len(),
	}
	total := 0.0
	for _, p := range c.Pages() {
		idx.docLen[p.ID] = p.Length
		total += p.Length
		for term, tf := range p.Terms {
			idx.postings[term] = append(idx.postings[term], posting{pageID: p.ID, tf: tf})
		}
	}
	if idx.n > 0 {
		idx.avgLen = total / float64(idx.n)
	}
	// Deterministic postings order (map iteration above is unordered).
	for term := range idx.postings {
		ps := idx.postings[term]
		sort.Slice(ps, func(i, j int) bool { return ps[i].pageID < ps[j].pageID })
	}
	return idx
}

// Corpus returns the indexed corpus.
func (idx *Index) Corpus() *webcorpus.Corpus { return idx.corpus }

// N returns the number of indexed pages.
func (idx *Index) N() int { return idx.n }

// DocFreq returns the number of pages containing the term.
func (idx *Index) DocFreq(term string) int { return len(idx.postings[term]) }

// idf is the BM25+ variant of inverse document frequency, floored at a
// small positive value so very common terms still contribute a little.
func (idx *Index) idf(term string) float64 {
	df := float64(len(idx.postings[term]))
	if df == 0 {
		return 0
	}
	v := math.Log(1 + (float64(idx.n)-df+0.5)/(df+0.5))
	if v < 0.01 {
		return 0.01
	}
	return v
}

// Result is one ranked search result.
type Result struct {
	PageID int
	Rank   int // 1-based, rank 1 most relevant (paper's convention)
	Score  float64
}

// Search returns the top-k pages for the query by BM25 score. Ties break by
// page ID for determinism. The query is normalized with the shared
// tokenizer, so callers can pass raw strings.
func (idx *Index) Search(query string, k int) []Result {
	terms := textnorm.Tokenize(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	// Deduplicate query terms, keeping multiplicity as a weight.
	qtf := make(map[string]float64, len(terms))
	for _, t := range terms {
		qtf[t]++
	}
	scores := make(map[int]float64)
	for term, qw := range qtf {
		idf := idx.idf(term)
		if idf == 0 {
			continue
		}
		for _, p := range idx.postings[term] {
			norm := p.tf * (bm25K1 + 1) /
				(p.tf + bm25K1*(1-bm25B+bm25B*idx.docLen[p.pageID]/idx.avgLen))
			scores[p.pageID] += qw * idf * norm
		}
	}
	if len(scores) == 0 {
		return nil
	}
	results := make([]Result, 0, len(scores))
	for id, s := range scores {
		results = append(results, Result{PageID: id, Score: s})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].PageID < results[j].PageID
	})
	if len(results) > k {
		results = results[:k]
	}
	for i := range results {
		results[i].Rank = i + 1
	}
	return results
}
