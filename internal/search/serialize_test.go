package search

import (
	"bytes"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	c := tinyCorpus(t)
	idx := NewIndex(c)
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != idx.N() {
		t.Fatalf("doc count %d != %d", loaded.N(), idx.N())
	}
	// Search results must be identical for representative queries.
	for _, q := range []string{
		"the dark knight", "indiana jones", "madagascar 2",
		"quantum of solace review", "youtube", "zzz unknown",
	} {
		a := idx.Search(q, 10)
		b := loaded.Search(q, 10)
		if len(a) != len(b) {
			t.Fatalf("query %q: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i].PageID != b[i].PageID || a[i].Rank != b[i].Rank {
				t.Fatalf("query %q: result %d differs: %+v vs %+v", q, i, a[i], b[i])
			}
			if diff := a[i].Score - b[i].Score; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("query %q: score drift at %d", q, i)
			}
		}
	}
	// The reloaded index carries no corpus — only IDs.
	if loaded.Corpus() != nil {
		t.Fatal("reloaded index should have nil corpus")
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("WSIX"),     // missing version
		[]byte("WSIX\x02"), // wrong version
		[]byte("WSIX\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // absurd doc count
	}
	for i, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadIndexRejectsTruncation(t *testing.T) {
	idx := NewIndex(tinyCorpus(t))
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
		cut := int(float64(len(full)) * frac)
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d accepted", cut, len(full))
		}
	}
}

func TestIndexSerializationSize(t *testing.T) {
	// Delta-encoded postings should keep the index compact: well under
	// 100 bytes per posting on this corpus.
	c := tinyCorpus(t)
	idx := NewIndex(c)
	postings := 0
	for _, ps := range idx.postings {
		postings += len(ps)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	perPosting := float64(buf.Len()) / float64(postings)
	if perPosting > 40 {
		t.Fatalf("index costs %.1f bytes/posting", perPosting)
	}
}
