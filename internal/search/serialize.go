package search

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Index persistence.
//
// Rebuilding the corpus and re-inverting it is cheap for the simulation
// sizes in this repository, but a real deployment mines against a fixed
// crawl: the index is built once and shipped. WriteTo/ReadIndex implement
// that path with a compact, versioned binary layout:
//
//	magic "WSIX", version byte,
//	docCount uvarint, then docCount doc lengths (float64 bits uvarint),
//	termCount uvarint, then per term:
//	  term length uvarint, term bytes,
//	  postings count uvarint, then (pageID delta uvarint, tf float64 bits).
//
// Page IDs within a postings list are delta-encoded (they are sorted), so
// long lists of adjacent pages cost ~2 bytes per posting.

var indexMagic = [4]byte{'W', 'S', 'I', 'X'}

const indexVersion = 1

// WriteTo serializes the index. The corpus itself is not serialized — an
// index consumer only needs page IDs.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}

	if _, err := cw.Write(indexMagic[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte{indexVersion}); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(idx.n)); err != nil {
		return cw.n, err
	}
	for _, dl := range idx.docLen {
		if err := writeUvarint(math.Float64bits(dl)); err != nil {
			return cw.n, err
		}
	}

	terms := make([]string, 0, len(idx.postings))
	for t := range idx.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	if err := writeUvarint(uint64(len(terms))); err != nil {
		return cw.n, err
	}
	for _, t := range terms {
		if err := writeUvarint(uint64(len(t))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write([]byte(t)); err != nil {
			return cw.n, err
		}
		ps := idx.postings[t]
		if err := writeUvarint(uint64(len(ps))); err != nil {
			return cw.n, err
		}
		prev := 0
		for _, p := range ps {
			if err := writeUvarint(uint64(p.pageID - prev)); err != nil {
				return cw.n, err
			}
			prev = p.pageID
			if err := writeUvarint(math.Float64bits(p.tf)); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// countingWriter tracks written bytes for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// indexReadLimits guard against corrupt headers.
const (
	maxIndexDocs  = 1 << 26
	maxIndexTerms = 1 << 26
	maxTermLen    = 1 << 12
)

// ReadIndex deserializes an index written by WriteTo. The returned index
// has no attached corpus (Corpus() is nil): it can Search, which is all a
// mining deployment needs.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("search: reading index magic: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("search: bad index magic %q", magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("search: reading index version: %w", err)
	}
	if ver != indexVersion {
		return nil, fmt.Errorf("search: unsupported index version %d", ver)
	}

	docCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("search: reading doc count: %w", err)
	}
	if docCount > maxIndexDocs {
		return nil, fmt.Errorf("search: doc count %d exceeds limit", docCount)
	}
	idx := &Index{
		postings: make(map[string][]posting),
		docLen:   make([]float64, docCount),
		n:        int(docCount),
	}
	total := 0.0
	for i := range idx.docLen {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("search: reading doc length %d: %w", i, err)
		}
		idx.docLen[i] = math.Float64frombits(bits)
		if idx.docLen[i] < 0 || math.IsNaN(idx.docLen[i]) {
			return nil, fmt.Errorf("search: doc %d has invalid length", i)
		}
		total += idx.docLen[i]
	}
	if idx.n > 0 {
		idx.avgLen = total / float64(idx.n)
	}

	termCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("search: reading term count: %w", err)
	}
	if termCount > maxIndexTerms {
		return nil, fmt.Errorf("search: term count %d exceeds limit", termCount)
	}
	for t := uint64(0); t < termCount; t++ {
		tlen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("search: term %d: reading length: %w", t, err)
		}
		if tlen > maxTermLen {
			return nil, fmt.Errorf("search: term %d: length %d exceeds limit", t, tlen)
		}
		tb := make([]byte, tlen)
		if _, err := io.ReadFull(br, tb); err != nil {
			return nil, fmt.Errorf("search: term %d: reading bytes: %w", t, err)
		}
		pCount, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("search: term %q: reading postings count: %w", tb, err)
		}
		if pCount > docCount {
			return nil, fmt.Errorf("search: term %q: %d postings exceed doc count", tb, pCount)
		}
		ps := make([]posting, 0, pCount)
		prev := 0
		for i := uint64(0); i < pCount; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("search: term %q: reading posting %d: %w", tb, i, err)
			}
			pageID := prev + int(delta)
			if pageID >= int(docCount) {
				return nil, fmt.Errorf("search: term %q: page ID %d out of range", tb, pageID)
			}
			prev = pageID
			bits, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("search: term %q: reading tf %d: %w", tb, i, err)
			}
			tf := math.Float64frombits(bits)
			if tf <= 0 || math.IsNaN(tf) || math.IsInf(tf, 0) {
				return nil, fmt.Errorf("search: term %q: invalid tf", tb)
			}
			ps = append(ps, posting{pageID: pageID, tf: tf})
		}
		idx.postings[string(tb)] = ps
	}
	return idx, nil
}
