package search

import (
	"fmt"
	"sort"

	"websyn/internal/textnorm"
)

// Tuple is one row of Search Data A: page p is the rank-r result for query
// q (paper Section II.B). Queries are stored normalized.
type Tuple struct {
	Query  string
	PageID int
	Rank   int
}

// Data is Search Data A: for each input string u, the top-k result pages.
// It implements the mapping function GA(u, P) of Eq. 1.
type Data struct {
	k       int
	byQuery map[string][]Tuple
}

// NewData assembles Search Data by issuing each input string against the
// index and keeping the top-k results, mirroring how the paper derives A
// from the Bing Search API.
func NewData(idx *Index, inputs []string, k int) (*Data, error) {
	if k <= 0 {
		return nil, fmt.Errorf("search: k must be positive, got %d", k)
	}
	d := &Data{k: k, byQuery: make(map[string][]Tuple, len(inputs))}
	for _, u := range inputs {
		norm := textnorm.Normalize(u)
		if norm == "" {
			return nil, fmt.Errorf("search: input %q normalizes to empty", u)
		}
		if _, dup := d.byQuery[norm]; dup {
			continue
		}
		results := idx.Search(norm, k)
		tuples := make([]Tuple, len(results))
		for i, r := range results {
			tuples[i] = Tuple{Query: norm, PageID: r.PageID, Rank: r.Rank}
		}
		d.byQuery[norm] = tuples
	}
	return d, nil
}

// NewDataFromTuples rebuilds Search Data from serialized tuples (the
// file-based pipeline path).
func NewDataFromTuples(tuples []Tuple, k int) (*Data, error) {
	if k <= 0 {
		return nil, fmt.Errorf("search: k must be positive, got %d", k)
	}
	d := &Data{k: k, byQuery: make(map[string][]Tuple)}
	for _, t := range tuples {
		if t.Rank < 1 || t.Rank > k {
			return nil, fmt.Errorf("search: tuple rank %d outside [1,%d]", t.Rank, k)
		}
		d.byQuery[t.Query] = append(d.byQuery[t.Query], t)
	}
	for q := range d.byQuery {
		ts := d.byQuery[q]
		sort.Slice(ts, func(i, j int) bool { return ts[i].Rank < ts[j].Rank })
	}
	return d, nil
}

// K returns the surrogate cutoff.
func (d *Data) K() int { return d.k }

// Queries returns the input strings (normalized) in sorted order.
func (d *Data) Queries() []string {
	out := make([]string, 0, len(d.byQuery))
	for q := range d.byQuery {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// Top returns the ranked tuples for the normalized query, or nil.
func (d *Data) Top(query string) []Tuple { return d.byQuery[query] }

// Surrogates returns GA(u, P): the set of top-k page IDs for the normalized
// input string (Definition 5). The result is a fresh map each call.
func (d *Data) Surrogates(query string) map[int]bool {
	tuples := d.byQuery[query]
	if len(tuples) == 0 {
		return nil
	}
	set := make(map[int]bool, len(tuples))
	for _, t := range tuples {
		set[t.PageID] = true
	}
	return set
}

// Tuples flattens the data set in deterministic (query, rank) order, for
// serialization.
func (d *Data) Tuples() []Tuple {
	var out []Tuple
	for _, q := range d.Queries() {
		out = append(out, d.byQuery[q]...)
	}
	return out
}
