package core

import (
	"testing"

	"websyn/internal/clicklog"
	"websyn/internal/search"
)

// classifyFixture builds a log where the four Figure 1 geometries are
// unambiguous. The input "u" clicks its own surrogates when issued as a
// query, so BCR is measured against real click mass.
func classifyFixture(t *testing.T) *Miner {
	t.Helper()
	var tuples []search.Tuple
	for r := 1; r <= 10; r++ {
		tuples = append(tuples, search.Tuple{Query: "u", PageID: r, Rank: r})
	}
	sd, err := search.NewDataFromTuples(tuples, 10)
	if err != nil {
		t.Fatal(err)
	}
	log := clicklog.NewLog()
	add := func(q string, page, n int) {
		for i := 0; i < n; i++ {
			log.AddClick(q, page)
		}
	}
	// u's own clicks: all ten surrogates, evenly.
	for p := 1; p <= 10; p++ {
		add("u", p, 2)
	}
	// Synonym: clicks the same ten pages -> ICR 1, BCR 1.
	for p := 1; p <= 10; p++ {
		add("syn", p, 3)
	}
	// Hypernym: clicks u's pages 1-4 plus a wide outside neighbourhood ->
	// ICR 8/48 (low); BCR 8/20 covering u's mass on pages 1-4 = 8/20 = 0.4
	// (contained at threshold).
	for p := 1; p <= 4; p++ {
		add("hyper", p, 2)
	}
	for p := 100; p < 120; p++ {
		add("hyper", p, 2)
	}
	// Hyponym: clicks only pages 1-2 (narrow) -> ICR 1 (high), BCR 4/20
	// (low).
	add("hypo", 1, 5)
	add("hypo", 2, 5)
	// Related: one shared page, most clicks elsewhere -> ICR low, BCR low.
	add("rel", 3, 1)
	for p := 200; p < 210; p++ {
		add("rel", p, 4)
	}

	m, err := NewMiner(sd, log, Config{IPC: 1, ICR: 0})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClassifyQuadrants(t *testing.T) {
	m := classifyFixture(t)
	out, err := m.Classify("u", ClassifyConfig{High: 0.4, MinIPC: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]Relation{}
	for _, c := range out {
		got[c.Candidate] = c.Relation
	}
	want := map[string]Relation{
		"syn":   RelSynonym,
		"hyper": RelHypernym,
		"hypo":  RelHyponym,
		"rel":   RelRelated,
	}
	for cand, rel := range want {
		if got[cand] != rel {
			t.Errorf("%q classified %v, want %v", cand, got[cand], rel)
		}
	}
}

func TestClassifyMinIPCGate(t *testing.T) {
	m := classifyFixture(t)
	out, err := m.Classify("u", ClassifyConfig{High: 0.4, MinIPC: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out {
		if c.IPC < 5 {
			t.Fatalf("candidate %q passed with IPC %d", c.Candidate, c.IPC)
		}
	}
	// Only "syn" (IPC 10) survives the gate.
	if len(out) != 1 || out[0].Candidate != "syn" {
		t.Fatalf("out = %+v", out)
	}
}

func TestClassifyUnknownInput(t *testing.T) {
	m := classifyFixture(t)
	out, err := m.Classify("missing input", DefaultClassifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatalf("unknown input classified: %+v", out)
	}
}

func TestClassifyConfigValidation(t *testing.T) {
	m := classifyFixture(t)
	if _, err := m.Classify("u", ClassifyConfig{High: 0, MinIPC: 1}); err == nil {
		t.Fatal("High=0 accepted")
	}
	if _, err := m.Classify("u", ClassifyConfig{High: 1.5, MinIPC: 1}); err == nil {
		t.Fatal("High=1.5 accepted")
	}
	if _, err := m.Classify("u", ClassifyConfig{High: 0.4, MinIPC: 0}); err == nil {
		t.Fatal("MinIPC=0 accepted")
	}
}

func TestClassifySurrogateFallback(t *testing.T) {
	// When the input never occurs as a query, BCR falls back to uniform
	// surrogate mass — synonyms covering all surrogates still classify as
	// synonyms.
	var tuples []search.Tuple
	for r := 1; r <= 4; r++ {
		tuples = append(tuples, search.Tuple{Query: "ghost", PageID: r, Rank: r})
	}
	sd, err := search.NewDataFromTuples(tuples, 10)
	if err != nil {
		t.Fatal(err)
	}
	log := clicklog.NewLog()
	for p := 1; p <= 4; p++ {
		log.AddClick("syn", p)
	}
	m, err := NewMiner(sd, log, Config{IPC: 1, ICR: 0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Classify("ghost", ClassifyConfig{High: 0.4, MinIPC: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Relation != RelSynonym {
		t.Fatalf("fallback classification = %+v", out)
	}
	if out[0].BCR != 1 {
		t.Fatalf("fallback BCR = %v, want 1", out[0].BCR)
	}
}

func TestRelationString(t *testing.T) {
	for r, want := range map[Relation]string{
		RelSynonym: "synonym", RelHypernym: "hypernym",
		RelHyponym: "hyponym", RelRelated: "related",
	} {
		if r.String() != want {
			t.Errorf("Relation(%d).String() = %q", r, r.String())
		}
	}
	if Relation(9).String() == "" {
		t.Error("unknown relation should stringify")
	}
}

func TestClassifyOrdering(t *testing.T) {
	m := classifyFixture(t)
	out, err := m.Classify("u", ClassifyConfig{High: 0.4, MinIPC: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Relation < out[i-1].Relation {
			t.Fatal("output not grouped by relation")
		}
	}
}
