// Package core implements the paper's primary contribution: the bottom-up,
// data-driven entity-synonym miner of Section III.
//
// The miner consumes exactly the two data sets the paper defines —
// Search Data A (via internal/search.Data) and Click Data L (via
// internal/clicklog.Log, exposed as a bipartite graph by
// internal/clickgraph) — and produces, for each input string u, its Web
// synonyms with full per-candidate evidence:
//
//   - Surrogates: GA(u,P), the top-k search results for u (Def. 5, Eq. 1).
//   - Candidates: every query that clicked at least one surrogate
//     (Def. 6, via GL of Eq. 2).
//   - IPC(w',u) = |GL(w') ∩ GA(u)| — the strength measure (Eq. 3).
//   - ICR(w',u) = clicks landing inside the intersection / all clicks of
//     w' — the exclusiveness measure (Eq. 4).
//   - Selection: IPC >= β and ICR >= γ.
//
// Because thresholding is a pure function of the per-candidate evidence,
// the expensive phase (candidate generation + measures) runs once and any
// number of (β, γ) operating points — e.g. the sweeps behind Figures 2 and
// 3 — are evaluated from the same Evidence records.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"websyn/internal/clickgraph"
	"websyn/internal/clicklog"
	"websyn/internal/search"
	"websyn/internal/textnorm"
)

// Config holds the miner's thresholds.
type Config struct {
	// IPC is the Intersecting Page Count threshold β: candidates must share
	// at least this many clicked surrogate pages with the input.
	IPC int
	// ICR is the Intersecting Click Ratio threshold γ in [0,1]: at least
	// this fraction of the candidate's clicks must land on the input's
	// surrogates.
	ICR float64
	// Workers bounds MineAll's parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the paper's chosen operating point for Table I:
// IPC 4, ICR 0.1.
func DefaultConfig() Config {
	return Config{IPC: 4, ICR: 0.1}
}

// check validates thresholds.
func (c Config) check() error {
	if c.IPC < 1 {
		return fmt.Errorf("core: IPC threshold must be >= 1, got %d", c.IPC)
	}
	if c.ICR < 0 || c.ICR > 1 {
		return fmt.Errorf("core: ICR threshold must be in [0,1], got %v", c.ICR)
	}
	return nil
}

// Evidence is the full mining record for one candidate string.
type Evidence struct {
	// Candidate is the normalized query string under consideration.
	Candidate string
	// IPC is the Intersecting Page Count (Eq. 3).
	IPC int
	// ICR is the Intersecting Click Ratio (Eq. 4).
	ICR float64
	// ClicksIn is the candidate's click mass inside GL(w') ∩ GA(u).
	ClicksIn int
	// ClicksTotal is the candidate's total click mass (ICR denominator).
	ClicksTotal int
	// Accepted reports whether the candidate passed the configured
	// thresholds.
	Accepted bool
}

// Passes reports whether the evidence clears the given thresholds — the
// post-hoc form of candidate selection used by the threshold sweeps.
func (e Evidence) Passes(ipc int, icr float64) bool {
	return e.IPC >= ipc && e.ICR >= icr
}

// Result is the mining output for one input string.
type Result struct {
	// Input is the original string u; Norm its normalized form.
	Input string
	Norm  string
	// Surrogates is GA(u,P) as a sorted page-ID list.
	Surrogates []int
	// Evidence holds every candidate with its measures, strongest first
	// (IPC desc, then ICR desc, then text).
	Evidence []Evidence
	// Synonyms are the accepted candidate strings, strongest first.
	Synonyms []string
}

// Hit reports whether mining produced at least one synonym — the unit of
// Table I's hit ratio.
func (r *Result) Hit() bool { return len(r.Synonyms) > 0 }

// FilterSynonyms re-applies candidate selection at a different operating
// point without re-mining.
func (r *Result) FilterSynonyms(ipc int, icr float64) []string {
	var out []string
	for _, e := range r.Evidence {
		if e.Passes(ipc, icr) {
			out = append(out, e.Candidate)
		}
	}
	return out
}

// EvidenceFor returns the evidence record for a candidate string, if any.
func (r *Result) EvidenceFor(candidate string) (Evidence, bool) {
	for _, e := range r.Evidence {
		if e.Candidate == candidate {
			return e, true
		}
	}
	return Evidence{}, false
}

// Miner mines Web synonyms from one Search Data + Click Data pair.
type Miner struct {
	cfg    Config
	search *search.Data
	log    *clicklog.Log
	graph  *clickgraph.Graph
}

// NewMiner wires a miner over the two data sets. The click graph is derived
// from the log once and shared by all Mine calls.
func NewMiner(a *search.Data, l *clicklog.Log, cfg Config) (*Miner, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if a == nil || l == nil {
		return nil, fmt.Errorf("core: search data and click log are required")
	}
	return &Miner{cfg: cfg, search: a, log: l, graph: clickgraph.Build(l)}, nil
}

// Config returns the miner's thresholds.
func (m *Miner) Config() Config { return m.cfg }

// Graph exposes the derived click graph (shared with the random-walk
// baseline so both operate on identical data).
func (m *Miner) Graph() *clickgraph.Graph { return m.graph }

// Mine runs the two-phase pipeline for a single input string.
func (m *Miner) Mine(input string) *Result {
	norm := textnorm.Normalize(input)
	res := &Result{Input: input, Norm: norm}
	if norm == "" {
		return res
	}

	// Phase 1a — finding surrogates: GA(u,P) from Search Data (Eq. 1).
	ga := m.search.Surrogates(norm)
	if len(ga) == 0 {
		return res
	}
	res.Surrogates = make([]int, 0, len(ga))
	for p := range ga {
		res.Surrogates = append(res.Surrogates, p)
	}
	sort.Ints(res.Surrogates)

	// Phase 1b — referencing surrogates: every query with at least one
	// click on a surrogate is a candidate (Def. 6).
	candidates := make(map[int]bool)
	for _, pageID := range res.Surrogates {
		pn, ok := m.graph.PageNode(pageID)
		if !ok {
			continue // surrogate never clicked by anyone
		}
		for _, e := range m.graph.QueriesOf(pn) {
			candidates[e.To] = true
		}
	}

	// Phase 2 — candidate selection: score IPC (Eq. 3) and ICR (Eq. 4).
	res.Evidence = make([]Evidence, 0, len(candidates))
	for qn := range candidates {
		text := m.graph.QueryText(qn)
		if text == norm {
			continue // the input itself is not its own synonym
		}
		var ipc, clicksIn, clicksTotal int
		for _, e := range m.graph.PagesOf(qn) {
			clicksTotal += e.Count
			if ga[m.graph.PageID(e.To)] {
				ipc++
				clicksIn += e.Count
			}
		}
		if clicksTotal == 0 {
			continue
		}
		ev := Evidence{
			Candidate:   text,
			IPC:         ipc,
			ICR:         float64(clicksIn) / float64(clicksTotal),
			ClicksIn:    clicksIn,
			ClicksTotal: clicksTotal,
		}
		ev.Accepted = ev.Passes(m.cfg.IPC, m.cfg.ICR)
		res.Evidence = append(res.Evidence, ev)
	}
	sort.Slice(res.Evidence, func(i, j int) bool {
		a, b := res.Evidence[i], res.Evidence[j]
		if a.IPC != b.IPC {
			return a.IPC > b.IPC
		}
		if a.ICR != b.ICR {
			return a.ICR > b.ICR
		}
		return a.Candidate < b.Candidate
	})
	for _, e := range res.Evidence {
		if e.Accepted {
			res.Synonyms = append(res.Synonyms, e.Candidate)
		}
	}
	return res
}

// MineAll mines every input in parallel, returning results in input order.
func (m *Miner) MineAll(inputs []string) []*Result {
	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	results := make([]*Result, len(inputs))
	if workers <= 1 {
		for i, u := range inputs {
			results[i] = m.Mine(u)
		}
		return results
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = m.Mine(inputs[i])
			}
		}()
	}
	for i := range inputs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}
