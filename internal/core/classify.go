package core

import (
	"fmt"
	"sort"

	"websyn/internal/textnorm"
)

// Relation classification.
//
// The paper defines synonyms, hypernyms and hyponyms (Definitions 1-3) and
// illustrates with Figure 1 how their click geometry differs, but its
// selection step only separates synonyms from everything else. This file
// implements the natural extension the Venn diagrams suggest: classifying
// each candidate into the full relation taxonomy using *bidirectional*
// containment measures.
//
// For input u and candidate w', let GA(u) be u's surrogates and GL(w'),
// GL(u) the clicked-page sets. The forward measure is the paper's ICR —
// how much of w's click mass lands inside u's neighbourhood. The backward
// measure, BCR, is symmetric: how much of u's own click mass (the clicks
// of u issued as a query, when available, else u's surrogate visit mass)
// lands inside GL(w').
//
//   - Synonym  (Fig. 1a): both directions contained — high ICR, high BCR.
//   - Hypernym (Fig. 1b): w' is broader — its clicks scatter (low ICR)
//     but u's mass falls inside w's neighbourhood (high BCR).
//   - Hyponym  (Fig. 1c): w' is narrower — w's clicks concentrate in u's
//     neighbourhood (high ICR) but cover little of it (low BCR).
//   - Related  (Fig. 1d): neither contained — low ICR, low BCR.
//
// The taxonomy is click-geometric, not lexical: a refinement query whose
// deep pages rank outside GA(u) ("dark knight trailer" clicking trailer
// sites plus all of u's surrogates) presents a *broader* neighbourhood
// than u and classifies as Hypernym, even though its intent is narrower.
// Lexically-narrower-but-click-broader strings are a known ambiguity of
// log-based taxonomies; callers needing intent-level hyponymy should
// combine Relation with a token-containment check.
type Relation int

const (
	// RelSynonym: mutually contained click neighbourhoods.
	RelSynonym Relation = iota
	// RelHypernym: the candidate is broader than the input.
	RelHypernym
	// RelHyponym: the candidate is narrower than the input.
	RelHyponym
	// RelRelated: overlapping but not contained either way.
	RelRelated
)

// String returns the lower-case relation name.
func (r Relation) String() string {
	switch r {
	case RelSynonym:
		return "synonym"
	case RelHypernym:
		return "hypernym"
	case RelHyponym:
		return "hyponym"
	case RelRelated:
		return "related"
	default:
		return fmt.Sprintf("relation(%d)", int(r))
	}
}

// ClassifyConfig holds the containment thresholds. A direction counts as
// "contained" when its measure reaches High; the pair (ICR, BCR) then maps
// onto the four Figure 1 quadrants. MinIPC gates classification on minimal
// evidence strength.
type ClassifyConfig struct {
	High   float64
	MinIPC int
}

// DefaultClassifyConfig mirrors the selection operating point: containment
// at 0.4, evidence gate at IPC 2.
func DefaultClassifyConfig() ClassifyConfig {
	return ClassifyConfig{High: 0.4, MinIPC: 2}
}

func (c ClassifyConfig) check() error {
	if c.High <= 0 || c.High > 1 {
		return fmt.Errorf("core: classify High threshold %v outside (0,1]", c.High)
	}
	if c.MinIPC < 1 {
		return fmt.Errorf("core: classify MinIPC %d < 1", c.MinIPC)
	}
	return nil
}

// Classified is one candidate with its inferred relation.
type Classified struct {
	Candidate string
	Relation  Relation
	// ICR is the forward containment (the paper's Eq. 4).
	ICR float64
	// BCR is the backward containment: the share of the input's own click
	// mass landing on pages the candidate also clicked.
	BCR float64
	// IPC carries the evidence strength (Eq. 3).
	IPC int
}

// Classify mines the input and assigns each sufficiently-evidenced
// candidate a relation from the Figure 1 taxonomy. The input's own click
// neighbourhood is taken from its log clicks when it was issued as a query,
// falling back to its surrogate set weighted by total page visit mass.
func (m *Miner) Classify(input string, cfg ClassifyConfig) ([]Classified, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	res := m.Mine(input)
	if len(res.Surrogates) == 0 {
		return nil, nil
	}

	// The input's reference click distribution over pages.
	refClicks := m.inputClickMass(res)
	refTotal := 0
	for _, n := range refClicks {
		refTotal += n
	}

	var out []Classified
	for _, ev := range res.Evidence {
		if ev.IPC < cfg.MinIPC {
			continue
		}
		// BCR: fraction of the input's click mass on pages w' also
		// clicked.
		bcr := 0.0
		if refTotal > 0 {
			qn, ok := m.graph.QueryNode(ev.Candidate)
			if ok {
				inW := 0
				for _, e := range m.graph.PagesOf(qn) {
					if n, clicked := refClicks[m.graph.PageID(e.To)]; clicked {
						inW += n
						_ = e
					}
				}
				bcr = float64(inW) / float64(refTotal)
			}
		}
		rel := RelRelated
		switch {
		case ev.ICR >= cfg.High && bcr >= cfg.High:
			rel = RelSynonym
		case ev.ICR < cfg.High && bcr >= cfg.High:
			rel = RelHypernym
		case ev.ICR >= cfg.High && bcr < cfg.High:
			rel = RelHyponym
		}
		out = append(out, Classified{
			Candidate: ev.Candidate,
			Relation:  rel,
			ICR:       ev.ICR,
			BCR:       bcr,
			IPC:       ev.IPC,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		if out[i].IPC != out[j].IPC {
			return out[i].IPC > out[j].IPC
		}
		return out[i].Candidate < out[j].Candidate
	})
	return out, nil
}

// inputClickMass returns the input's click distribution over pages: its own
// query clicks when present in the log, else uniform mass over its
// surrogates (the best available stand-in when the canonical string was
// never typed — common for camera feed strings).
func (m *Miner) inputClickMass(res *Result) map[int]int {
	norm := textnorm.Normalize(res.Norm)
	if pages := m.log.ClickedPages(norm); len(pages) > 0 {
		return pages
	}
	fallback := make(map[int]int, len(res.Surrogates))
	for _, p := range res.Surrogates {
		fallback[p] = 1
	}
	return fallback
}
