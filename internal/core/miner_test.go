package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"websyn/internal/clicklog"
	"websyn/internal/search"
)

// figure1Fixture hand-builds the paper's Figure 1 geometry around one input
// string "u" with surrogates pages 1..10:
//
//   - "syn"   — a true synonym: clicks 8 surrogates heavily, 1 outside page.
//   - "hyper" — a hypernym: clicks 3 surrogates lightly, 20 outside pages
//     heavily (broad concept).
//   - "hypo"  — a hyponym/refinement: clicks 2 surrogates but most clicks
//     land on a deep page outside GA.
//   - "rel"   — merely related: 1 surrogate click, everything else outside.
//   - "stray" — background noise: a single accidental surrogate click.
func figure1Fixture(t *testing.T) (*search.Data, *clicklog.Log) {
	t.Helper()
	var tuples []search.Tuple
	for r := 1; r <= 10; r++ {
		tuples = append(tuples, search.Tuple{Query: "u", PageID: r, Rank: r})
	}
	sd, err := search.NewDataFromTuples(tuples, 10)
	if err != nil {
		t.Fatal(err)
	}

	log := clicklog.NewLog()
	add := func(q string, page, n int) {
		for i := 0; i < n; i++ {
			log.AddClick(q, page)
		}
	}
	log.AddImpression("u")
	add("u", 1, 5)
	add("u", 2, 3)

	// Synonym: IPC 8, ICR 40/41.
	for p := 1; p <= 8; p++ {
		add("syn", p, 5)
	}
	add("syn", 100, 1)

	// Hypernym: IPC 3, ICR 6/46.
	for p := 1; p <= 3; p++ {
		add("hyper", p, 2)
	}
	for p := 200; p < 220; p++ {
		add("hyper", p, 2)
	}

	// Hyponym: IPC 2, ICR 4/24.
	add("hypo", 1, 2)
	add("hypo", 2, 2)
	add("hypo", 300, 20)

	// Related: IPC 1, ICR 1/31.
	add("rel", 5, 1)
	for p := 400; p < 410; p++ {
		add("rel", p, 3)
	}

	// Stray noise: IPC 1, ICR 1/1 (single accidental click).
	add("stray", 9, 1)

	// A query that never touches the surrogates: not a candidate at all.
	add("offside", 999, 50)

	return sd, log
}

func TestMineFigure1Geometry(t *testing.T) {
	sd, log := figure1Fixture(t)
	m, err := NewMiner(sd, log, Config{IPC: 4, ICR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Mine("u")

	if len(r.Surrogates) != 10 {
		t.Fatalf("|GA| = %d", len(r.Surrogates))
	}
	// Candidate set: every query clicking >= 1 surrogate, minus u itself.
	if len(r.Evidence) != 5 {
		t.Fatalf("candidates = %d, want 5 (syn/hyper/hypo/rel/stray)", len(r.Evidence))
	}
	if _, found := r.EvidenceFor("offside"); found {
		t.Fatal("offside must not be a candidate")
	}
	if _, found := r.EvidenceFor("u"); found {
		t.Fatal("the input itself must not be a candidate")
	}

	check := func(cand string, ipc int, clicksIn, clicksTotal int) {
		t.Helper()
		e, ok := r.EvidenceFor(cand)
		if !ok {
			t.Fatalf("candidate %q missing", cand)
		}
		if e.IPC != ipc {
			t.Errorf("%q IPC = %d, want %d (Eq. 3)", cand, e.IPC, ipc)
		}
		if e.ClicksIn != clicksIn || e.ClicksTotal != clicksTotal {
			t.Errorf("%q clicks = %d/%d, want %d/%d (Eq. 4)",
				cand, e.ClicksIn, e.ClicksTotal, clicksIn, clicksTotal)
		}
	}
	check("syn", 8, 40, 41)
	check("hyper", 3, 6, 46)
	check("hypo", 2, 4, 24)
	check("rel", 1, 1, 31)
	check("stray", 1, 1, 1)

	// Selection at (4, 0.1): only the synonym survives — IPC rejects
	// hypo/rel/stray, ICR would reject hyper had it passed IPC.
	if !reflect.DeepEqual(r.Synonyms, []string{"syn"}) {
		t.Fatalf("Synonyms = %v, want [syn]", r.Synonyms)
	}
}

func TestThresholdSemantics(t *testing.T) {
	sd, log := figure1Fixture(t)
	m, err := NewMiner(sd, log, Config{IPC: 1, ICR: 0})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Mine("u")

	// β=1, γ=0: every candidate passes.
	if got := r.FilterSynonyms(1, 0); len(got) != 5 {
		t.Fatalf("β=1,γ=0 passes %d, want 5", len(got))
	}
	// β=2 drops rel and stray.
	if got := r.FilterSynonyms(2, 0); len(got) != 3 {
		t.Fatalf("β=2 passes %d, want 3", len(got))
	}
	// γ=0.5 on top of β=2 drops hyper (6/46) and hypo (4/24).
	if got := r.FilterSynonyms(2, 0.5); !reflect.DeepEqual(got, []string{"syn"}) {
		t.Fatalf("β=2,γ=0.5 = %v", got)
	}
	// Impossible thresholds pass nothing.
	if got := r.FilterSynonyms(11, 0); got != nil {
		t.Fatalf("β=11 passed %v", got)
	}
}

func TestEvidenceOrdering(t *testing.T) {
	sd, log := figure1Fixture(t)
	m, _ := NewMiner(sd, log, Config{IPC: 1, ICR: 0})
	r := m.Mine("u")
	for i := 1; i < len(r.Evidence); i++ {
		a, b := r.Evidence[i-1], r.Evidence[i]
		if a.IPC < b.IPC {
			t.Fatalf("evidence not sorted by IPC at %d", i)
		}
		if a.IPC == b.IPC && a.ICR < b.ICR {
			t.Fatalf("evidence not sorted by ICR at %d", i)
		}
	}
	if r.Evidence[0].Candidate != "syn" {
		t.Fatalf("strongest evidence is %q", r.Evidence[0].Candidate)
	}
}

func TestMineUnknownInput(t *testing.T) {
	sd, log := figure1Fixture(t)
	m, _ := NewMiner(sd, log, DefaultConfig())
	r := m.Mine("never seen before")
	if r.Hit() || len(r.Surrogates) != 0 || len(r.Evidence) != 0 {
		t.Fatalf("unknown input produced output: %+v", r)
	}
	r = m.Mine("")
	if r.Hit() {
		t.Fatal("empty input produced output")
	}
}

func TestMineNormalizesInput(t *testing.T) {
	sd, log := figure1Fixture(t)
	m, _ := NewMiner(sd, log, DefaultConfig())
	r := m.Mine("  U!  ")
	if r.Norm != "u" {
		t.Fatalf("Norm = %q", r.Norm)
	}
	if len(r.Surrogates) != 10 {
		t.Fatal("normalization lost the surrogates")
	}
}

func TestUnclickedSurrogatesIgnored(t *testing.T) {
	// A surrogate that never received any click contributes no candidates
	// (Phase 1b walks only clicked pages).
	var tuples []search.Tuple
	for r := 1; r <= 3; r++ {
		tuples = append(tuples, search.Tuple{Query: "u", PageID: r, Rank: r})
	}
	sd, err := search.NewDataFromTuples(tuples, 10)
	if err != nil {
		t.Fatal(err)
	}
	log := clicklog.NewLog()
	log.AddClick("w", 1) // page 1 clicked; pages 2,3 never
	m, _ := NewMiner(sd, log, Config{IPC: 1, ICR: 0})
	r := m.Mine("u")
	if len(r.Evidence) != 1 || r.Evidence[0].Candidate != "w" {
		t.Fatalf("evidence = %+v", r.Evidence)
	}
	if r.Evidence[0].IPC != 1 {
		t.Fatalf("IPC = %d", r.Evidence[0].IPC)
	}
}

func TestConfigValidation(t *testing.T) {
	sd, log := figure1Fixture(t)
	if _, err := NewMiner(sd, log, Config{IPC: 0, ICR: 0}); err == nil {
		t.Fatal("IPC 0 accepted")
	}
	if _, err := NewMiner(sd, log, Config{IPC: 1, ICR: 1.5}); err == nil {
		t.Fatal("ICR > 1 accepted")
	}
	if _, err := NewMiner(nil, log, DefaultConfig()); err == nil {
		t.Fatal("nil search data accepted")
	}
	if _, err := NewMiner(sd, nil, DefaultConfig()); err == nil {
		t.Fatal("nil log accepted")
	}
}

func TestDefaultConfigIsPaperOperatingPoint(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.IPC != 4 || cfg.ICR != 0.1 {
		t.Fatalf("default config %+v, want IPC 4 / ICR 0.1", cfg)
	}
}

func TestMineAllOrderAndParallelism(t *testing.T) {
	sd, log := figure1Fixture(t)
	inputs := []string{"u", "unknown one", "u", "unknown two"}

	seq, _ := NewMiner(sd, log, Config{IPC: 1, ICR: 0, Workers: 1})
	par, _ := NewMiner(sd, log, Config{IPC: 1, ICR: 0, Workers: 8})
	rs := seq.MineAll(inputs)
	rp := par.MineAll(inputs)
	if len(rs) != len(inputs) || len(rp) != len(inputs) {
		t.Fatal("result count mismatch")
	}
	for i := range rs {
		if rs[i].Norm != rp[i].Norm || len(rs[i].Evidence) != len(rp[i].Evidence) {
			t.Fatalf("result %d differs between worker counts", i)
		}
		if !reflect.DeepEqual(rs[i].Synonyms, rp[i].Synonyms) {
			t.Fatalf("synonyms %d differ between worker counts", i)
		}
	}
}

func TestEvidencePassesQuick(t *testing.T) {
	f := func(ipcRaw uint8, icrRaw uint8, evIPC uint8, clicksIn, clicksOut uint8) bool {
		total := int(clicksIn) + int(clicksOut)
		if total == 0 {
			return true
		}
		e := Evidence{
			IPC:         int(evIPC % 11),
			ICR:         float64(clicksIn) / float64(total),
			ClicksIn:    int(clicksIn),
			ClicksTotal: total,
		}
		beta := int(ipcRaw%11) + 1
		gamma := float64(icrRaw) / 255
		want := e.IPC >= beta && e.ICR >= gamma
		return e.Passes(beta, gamma) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ICR is always in [0,1] and ClicksIn <= ClicksTotal for every
// candidate the miner produces, whatever the log shape.
func TestQuickMinerInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		var tuples []search.Tuple
		for r := 1; r <= 5; r++ {
			tuples = append(tuples, search.Tuple{Query: "u", PageID: r, Rank: r})
		}
		sd, err := search.NewDataFromTuples(tuples, 5)
		if err != nil {
			return false
		}
		log := clicklog.NewLog()
		for i, b := range raw {
			q := string(rune('a' + i%5))
			log.AddClick(q, int(b%12))
		}
		m, err := NewMiner(sd, log, Config{IPC: 1, ICR: 0})
		if err != nil {
			return false
		}
		r := m.Mine("u")
		for _, e := range r.Evidence {
			if e.ICR < 0 || e.ICR > 1 {
				return false
			}
			if e.ClicksIn > e.ClicksTotal {
				return false
			}
			if e.IPC < 1 {
				return false // candidates must intersect GA by definition
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
