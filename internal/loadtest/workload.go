// Package loadtest generates mixed query workloads from a serving
// snapshot and replays them against a matchd instance at a target QPS,
// recording a latency/error report.
//
// It is the engine behind cmd/loadgen and the reload-under-load
// integration tests: both need the same thing — realistic traffic
// (exact synonym hits, typos the trie must correct, concatenations only
// span-fuzzy can bridge) sustained while something interesting happens
// to the server.
package loadtest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"websyn/internal/rewrite"
	"websyn/internal/serve"
	"websyn/internal/textnorm"
)

// Query classes in a workload.
const (
	ClassExact      = "exact"      // dictionary string verbatim (plus intent words)
	ClassTypo       = "typo"       // one edit away from a dictionary string
	ClassSpanFuzzy  = "span-fuzzy" // concatenated / mangled span only trigrams can bridge
	ClassNoise      = "noise"      // background traffic matching nothing
	ClassAttributes = "attributes" // entity + attribute phrase, sent to /v2/match
)

// FederatedDomain is the Query.Domain value that makes the runner send
// the query with domains: ["*"] — a federated fan-out across every
// domain the target server has registered.
const FederatedDomain = "*"

// Query is one workload item.
type Query struct {
	Text  string `json:"text"`
	Class string `json:"class"`
	// Domain routes the query: empty sends a plain (domainless) request,
	// a domain name sends {"domain": name} for an exact route, and
	// FederatedDomain sends {"domains": ["*"]} for a fan-out.
	Domain string `json:"domain,omitempty"`
}

// Workload is a deterministic, shuffled mix of query classes derived
// from a snapshot's own dictionary, so it exercises the trie, the typo
// corrector and the span-fuzzy trigram path of whatever dictionary the
// target server actually holds.
type Workload struct {
	Queries []Query
}

// Intent words appended to entity strings, mimicking the paper's
// "indy 4 near san fran" shape: the entity span plus transactional or
// navigational context the matcher must leave in the remainder.
var intents = []string{"", "tickets", "review", "dvd", "showtimes", "price", "online"}

// Background noise queries (a small slice of the simulation's noise
// class) that must match nothing.
var noise = []string{"youtube", "weather forecast", "cheap flights", "online banking", "white pages"}

// FromSnapshot derives a workload from a snapshot: for every canonical
// and mined synonym it emits an exact query, a typo'd variant and a
// concatenated span-fuzzy variant, mixes in background noise, and
// shuffles the lot with the given seed. Every query is domainless —
// the legacy single-snapshot workload.
func FromSnapshot(snap *serve.Snapshot, seed uint64) (*Workload, error) {
	return fromSnapshot(snap, "", seed)
}

// federatedEvery is the mixed-domain federation rate: one query in this
// many is sent with domains: ["*"] instead of its exact domain route, so
// a mixed workload also exercises the registry's fan-out/merge path.
const federatedEvery = 8

// FromSnapshots derives one mixed-domain workload from several domains'
// snapshots: each domain contributes its own exact/typo/span-fuzzy mix
// (tagged with that domain for exact routing), every federatedEvery-th
// query is flipped to a federated fan-out, and the whole thing is
// shuffled deterministically. The result drives a multi-domain matchd
// the way FromSnapshot drives a single-snapshot one.
func FromSnapshots(snaps map[string]*serve.Snapshot, seed uint64) (*Workload, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("loadtest: no snapshots")
	}
	domains := make([]string, 0, len(snaps))
	for d := range snaps {
		domains = append(domains, d)
	}
	sort.Strings(domains)

	w := &Workload{}
	for i, domain := range domains {
		// Offset the seed per domain so two domains serving the same
		// catalog don't mangle identically.
		dw, err := fromSnapshot(snaps[domain], domain, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("domain %s: %w", domain, err)
		}
		w.Queries = append(w.Queries, dw.Queries...)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	rng.Shuffle(len(w.Queries), func(i, j int) {
		w.Queries[i], w.Queries[j] = w.Queries[j], w.Queries[i]
	})
	for i := federatedEvery - 1; i < len(w.Queries); i += federatedEvery {
		w.Queries[i].Domain = FederatedDomain
	}
	return w, nil
}

// fromSnapshot builds one domain's workload, tagging every query with
// the domain (empty = domainless legacy traffic).
func fromSnapshot(snap *serve.Snapshot, domain string, seed uint64) (*Workload, error) {
	if snap == nil || snap.Dict == nil {
		return nil, fmt.Errorf("loadtest: nil snapshot")
	}
	rng := rand.New(rand.NewSource(int64(seed)))

	// Source strings: canonicals plus mined synonyms, deduped and
	// sorted for determinism (Synonyms is a map).
	seen := map[string]bool{}
	var sources []string
	add := func(s string) {
		norm := textnorm.Normalize(s)
		if norm != "" && !seen[norm] {
			seen[norm] = true
			sources = append(sources, norm)
		}
	}
	for _, c := range snap.Canonicals {
		add(c)
	}
	var norms []string
	for norm := range snap.Synonyms {
		norms = append(norms, norm)
	}
	sort.Strings(norms)
	for _, norm := range norms {
		for _, syn := range snap.Synonyms[norm] {
			add(syn)
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("loadtest: snapshot has no dictionary strings")
	}

	w := &Workload{}
	phrases := attributePhrases(snap.Vocab)
	for i, src := range sources {
		intent := intents[rng.Intn(len(intents))]
		w.add(src+" "+intent, ClassExact)
		if typo := mangle(rng, src); typo != "" {
			w.add(typo, ClassTypo)
		}
		if cat := concatenate(src); cat != "" {
			w.add(cat+" "+intents[1+rng.Intn(len(intents)-1)], ClassSpanFuzzy)
		}
		if len(phrases) > 0 {
			w.add(src+" "+phrases[i%len(phrases)], ClassAttributes)
		}
	}
	for _, n := range noise {
		w.add(n, ClassNoise)
	}
	for i := range w.Queries {
		w.Queries[i].Domain = domain
	}
	rng.Shuffle(len(w.Queries), func(i, j int) {
		w.Queries[i], w.Queries[j] = w.Queries[j], w.Queries[i]
	})
	return w, nil
}

// attributePhrases derives attribute-shaped query fragments from a
// snapshot's vocabulary: band tokens ("cheap"), comparator phrases
// ("under 450"), discrete values ("2008") and categorical values
// ("canon"), so the attributes class exercises every predicate family
// the /v2 rewrite stage parses. Deterministic: depends only on the
// vocabulary. Returns nil for snapshots without one (their workloads
// stay pure v1).
func attributePhrases(v *rewrite.Vocabulary) []string {
	if v == nil {
		return nil
	}
	var out []string
	for _, nc := range v.Numeric {
		if len(nc.Bands) > 0 {
			out = append(out, nc.Bands[0].Token)
		}
		if len(nc.Comparators) > 0 {
			mid := (nc.Min + nc.Max) / 2
			out = append(out, fmt.Sprintf("%s %d", nc.Comparators[0].Token, int(mid)))
		}
		if len(nc.Values) > 0 {
			out = append(out, fmt.Sprintf("%d", int(nc.Values[0])))
		}
	}
	for _, cc := range v.Categorical {
		for i, val := range cc.Values {
			if i >= 2 {
				break
			}
			out = append(out, val)
		}
	}
	return out
}

func (w *Workload) add(text, class string) {
	text = strings.TrimSpace(text)
	if text != "" {
		w.Queries = append(w.Queries, Query{Text: text, Class: class})
	}
}

// mangle applies one random character edit — drop, transpose or
// duplicate — to a string long enough to survive it.
func mangle(rng *rand.Rand, s string) string {
	if len(s) < 5 {
		return ""
	}
	i := 1 + rng.Intn(len(s)-2)
	switch rng.Intn(3) {
	case 0: // drop
		return s[:i] + s[i+1:]
	case 1: // transpose
		if s[i] == ' ' || s[i+1] == ' ' {
			return s[:i] + s[i+1:]
		}
		return s[:i] + string(s[i+1]) + string(s[i]) + s[i+2:]
	default: // duplicate
		return s[:i] + string(s[i]) + s[i:]
	}
}

// concatenate joins a multi-token string into the space-free form
// ("madagascar 2" -> "madagascar2") that defeats the trie but not the
// trigram index.
func concatenate(s string) string {
	if !strings.Contains(s, " ") {
		return ""
	}
	return strings.ReplaceAll(s, " ", "")
}
