package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a load run.
type Options struct {
	// URL is the target server's base URL (e.g. http://127.0.0.1:8080).
	// Required.
	URL string
	// QPS is the target request rate. <= 0 means unpaced: every worker
	// fires as fast as the server answers.
	QPS float64
	// Duration bounds the run. <= 0 means run until ctx is cancelled.
	Duration time.Duration
	// Concurrency is the worker count. 0 means 8.
	Concurrency int
	// Timeout is the per-request HTTP timeout. 0 means 5s.
	Timeout time.Duration
	// Midway, when set with a positive Duration, fires once from its own
	// goroutine at the run's halfway point while traffic is in full
	// flight. Chaos harnesses use it to kill a replica or trigger a
	// snapshot publish mid-run and then assert the report stayed clean.
	Midway func()
}

// Report is the JSON output of a load run.
type Report struct {
	URL             string  `json:"url"`
	TargetQPS       float64 `json:"target_qps,omitempty"`
	AchievedQPS     float64 `json:"achieved_qps"`
	DurationSeconds float64 `json:"duration_seconds"`
	Concurrency     int     `json:"concurrency"`
	Requests        uint64  `json:"requests"`
	// Errors are transport-level failures (connection refused, timeout);
	// Non200 are responses with any status other than 200. A correct
	// server under a correct workload reports zero of both — the
	// reload-under-load gate asserts exactly that.
	Errors  uint64            `json:"errors"`
	Non200  uint64            `json:"non_200"`
	ByClass map[string]uint64 `json:"requests_by_class"`
	Latency Percentiles       `json:"latency_ms"`
	// LatencyByClass breaks the percentiles down per query class, so a
	// regression on the span-fuzzy path cannot hide inside a p99
	// dominated by cheap exact hits.
	LatencyByClass map[string]Percentiles `json:"latency_ms_by_class,omitempty"`
	// ByDomain and LatencyByDomain break requests and latency down per
	// routed domain (the federated fan-out class is keyed "*"). Both are
	// omitted for domainless (single-snapshot) workloads.
	ByDomain        map[string]uint64      `json:"requests_by_domain,omitempty"`
	LatencyByDomain map[string]Percentiles `json:"latency_ms_by_domain,omitempty"`
}

// Percentiles summarizes request latencies in milliseconds.
type Percentiles struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Failed reports whether the run saw any failed request (transport
// error or non-200 status).
func (r *Report) Failed() bool { return r.Errors > 0 || r.Non200 > 0 }

// Run replays the workload against opt.URL's POST /v1/match (POST
// /v2/match for the attributes class) at the target rate until the duration elapses or ctx is cancelled, whichever
// comes first. Pacing is closed-loop with a shared schedule: workers
// claim send slots in order and sleep until each slot's ideal time, so
// a slow server back-pressures the generator instead of piling up
// unbounded in-flight requests.
func Run(ctx context.Context, w *Workload, opt Options) (*Report, error) {
	if opt.URL == "" {
		return nil, fmt.Errorf("loadtest: Options.URL is required")
	}
	if len(w.Queries) == 0 {
		return nil, fmt.Errorf("loadtest: empty workload")
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 8
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	if opt.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Duration)
		defer cancel()
	}

	client := &http.Client{
		Timeout: opt.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opt.Concurrency,
			MaxIdleConnsPerHost: opt.Concurrency,
		},
	}
	defer client.CloseIdleConnections()

	// Bodies are encoded once per distinct query, not per request: the
	// workload cycles, and the send loop is the thing being measured.
	type v1Body struct {
		Query   string   `json:"query"`
		Domain  string   `json:"domain,omitempty"`
		Domains []string `json:"domains,omitempty"`
	}
	bodies := make([][]byte, len(w.Queries))
	for i, q := range w.Queries {
		body := v1Body{Query: q.Text}
		switch q.Domain {
		case "":
		case FederatedDomain:
			body.Domains = []string{FederatedDomain}
		default:
			body.Domain = q.Domain
		}
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("loadtest: encoding query %q: %w", q.Text, err)
		}
		bodies[i] = b
	}

	type workerState struct {
		latencies []float64
		byClass   map[string][]float64
		byDomain  map[string][]float64
	}
	var (
		seq    atomic.Int64
		errs   atomic.Uint64
		non200 atomic.Uint64
		wg     sync.WaitGroup
		states = make([]*workerState, opt.Concurrency)
		start  = time.Now()
		// Tolerate a trailing slash in the base URL: "host//v1/match"
		// would 301 and the client would follow with a GET, turning every
		// request into a 405.
		base = strings.TrimSuffix(opt.URL, "/")
	)
	// The endpoint is per query: the attributes class exercises the v2
	// rewrite surface, everything else stays on v1.
	endpoints := make([]string, len(w.Queries))
	for i, q := range w.Queries {
		if q.Class == ClassAttributes {
			endpoints[i] = base + "/v2/match"
		} else {
			endpoints[i] = base + "/v1/match"
		}
	}
	for i := range states {
		states[i] = &workerState{
			byClass:  make(map[string][]float64),
			byDomain: make(map[string][]float64),
		}
	}

	if opt.Midway != nil && opt.Duration > 0 {
		halfway := time.AfterFunc(opt.Duration/2, opt.Midway)
		defer halfway.Stop()
	}

	for wk := 0; wk < opt.Concurrency; wk++ {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			for {
				n := seq.Add(1) - 1
				if opt.QPS > 0 {
					slot := start.Add(time.Duration(float64(n) / opt.QPS * float64(time.Second)))
					if d := time.Until(slot); d > 0 {
						select {
						case <-ctx.Done():
							return
						case <-time.After(d):
						}
					}
				}
				if ctx.Err() != nil {
					return
				}
				i := int(n) % len(w.Queries)
				q := w.Queries[i]
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoints[i], bytes.NewReader(bodies[i]))
				if err != nil {
					errs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					// A request cut off by the run ending is not a server
					// failure.
					if ctx.Err() != nil {
						return
					}
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(t0).Nanoseconds()) / 1e6
				st.latencies = append(st.latencies, ms)
				st.byClass[q.Class] = append(st.byClass[q.Class], ms)
				if q.Domain != "" {
					st.byDomain[q.Domain] = append(st.byDomain[q.Domain], ms)
				}
				if resp.StatusCode != http.StatusOK {
					non200.Add(1)
				}
			}
		}(states[wk])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		URL:             opt.URL,
		TargetQPS:       opt.QPS,
		DurationSeconds: elapsed.Seconds(),
		Concurrency:     opt.Concurrency,
		Errors:          errs.Load(),
		Non200:          non200.Load(),
		ByClass:         make(map[string]uint64),
	}
	var all []float64
	classLat := make(map[string][]float64)
	domainLat := make(map[string][]float64)
	for _, st := range states {
		all = append(all, st.latencies...)
		for c, ms := range st.byClass {
			rep.ByClass[c] += uint64(len(ms))
			classLat[c] = append(classLat[c], ms...)
		}
		for d, ms := range st.byDomain {
			domainLat[d] = append(domainLat[d], ms...)
		}
	}
	rep.Requests = uint64(len(all)) + rep.Errors
	if elapsed > 0 {
		rep.AchievedQPS = float64(len(all)) / elapsed.Seconds()
	}
	rep.Latency = percentiles(all)
	if len(classLat) > 0 {
		rep.LatencyByClass = make(map[string]Percentiles, len(classLat))
		for c, ms := range classLat {
			rep.LatencyByClass[c] = percentiles(ms)
		}
	}
	if len(domainLat) > 0 {
		rep.ByDomain = make(map[string]uint64, len(domainLat))
		rep.LatencyByDomain = make(map[string]Percentiles, len(domainLat))
		for d, ms := range domainLat {
			rep.ByDomain[d] = uint64(len(ms))
			rep.LatencyByDomain[d] = percentiles(ms)
		}
	}
	return rep, nil
}

// percentiles computes the latency summary; index convention is the
// nearest-rank method (p99 of 100 samples is the 99th smallest).
func percentiles(ms []float64) Percentiles {
	if len(ms) == 0 {
		return Percentiles{}
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	rank := func(p float64) float64 {
		i := int(math.Ceil(p/100*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ms) {
			i = len(ms) - 1
		}
		return ms[i]
	}
	return Percentiles{
		Mean: sum / float64(len(ms)),
		P50:  rank(50),
		P90:  rank(90),
		P95:  rank(95),
		P99:  rank(99),
		Max:  ms[len(ms)-1],
	}
}
