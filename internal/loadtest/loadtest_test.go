package loadtest

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"websyn/internal/match"
	"websyn/internal/rewrite"
	"websyn/internal/serve"
)

// newTestHTTP serves srv over a test listener and returns its base URL.
func newTestHTTP(t *testing.T, srv *serve.Server) string {
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func testSnapshot() *serve.Snapshot {
	d := match.NewDictionary()
	d.Add("Indiana Jones and the Kingdom of the Crystal Skull",
		match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("indy 4", match.Entry{EntityID: 0, Score: 0.8, Source: "mined"})
	d.Add("Madagascar: Escape 2 Africa", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	d.Add("madagascar 2", match.Entry{EntityID: 1, Score: 0.9, Source: "mined"})
	return &serve.Snapshot{
		Dataset:    "Movies",
		MinSim:     0.55,
		Canonicals: []string{"Indiana Jones and the Kingdom of the Crystal Skull", "Madagascar: Escape 2 Africa"},
		Synonyms: map[string][]string{
			"indiana jones and the kingdom of the crystal skull": {"indy 4"},
			"madagascar escape 2 africa":                         {"madagascar 2"},
		},
		Dict:  d,
		Fuzzy: d.NewFuzzyIndex(0.55).Packed(),
	}
}

func TestWorkloadMixAndDeterminism(t *testing.T) {
	w, err := FromSnapshot(testSnapshot(), 42)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]int{}
	for _, q := range w.Queries {
		if q.Text == "" {
			t.Fatal("empty query in workload")
		}
		classes[q.Class]++
	}
	for _, c := range []string{ClassExact, ClassTypo, ClassSpanFuzzy, ClassNoise} {
		if classes[c] == 0 {
			t.Errorf("workload has no %s queries: %v", c, classes)
		}
	}
	// Same seed -> same workload; the CI gate depends on reproducible runs.
	w2, err := FromSnapshot(testSnapshot(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Queries, w2.Queries) {
		t.Fatal("workload not deterministic for a fixed seed")
	}
	w3, _ := FromSnapshot(testSnapshot(), 7)
	if reflect.DeepEqual(w.Queries, w3.Queries) {
		t.Fatal("different seeds produced identical workloads")
	}
}

// testCamerasSnapshot is a second vertical for mixed-domain workloads.
func testCamerasSnapshot() *serve.Snapshot {
	d := match.NewDictionary()
	d.Add("Canon EOS 350D", match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("digital rebel xt", match.Entry{EntityID: 0, Score: 0.9, Source: "mined"})
	return &serve.Snapshot{
		Dataset:    "Cameras",
		MinSim:     0.55,
		Canonicals: []string{"Canon EOS 350D"},
		Synonyms:   map[string][]string{"canon eos 350d": {"digital rebel xt"}},
		Dict:       d,
		Fuzzy:      d.NewFuzzyIndex(0.55).Packed(),
	}
}

func TestFromSnapshotsMixedDomains(t *testing.T) {
	snaps := map[string]*serve.Snapshot{
		"movies":  testSnapshot(),
		"cameras": testCamerasSnapshot(),
	}
	w, err := FromSnapshots(snaps, 42)
	if err != nil {
		t.Fatal(err)
	}
	domains := map[string]int{}
	for _, q := range w.Queries {
		if q.Text == "" {
			t.Fatal("empty query in workload")
		}
		domains[q.Domain]++
	}
	if domains[""] != 0 {
		t.Fatalf("mixed-domain workload has %d domainless queries", domains[""])
	}
	for _, d := range []string{"movies", "cameras", FederatedDomain} {
		if domains[d] == 0 {
			t.Fatalf("workload has no %q queries: %v", d, domains)
		}
	}
	// Deterministic for a fixed seed, like the single-snapshot builder.
	w2, err := FromSnapshots(snaps, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Queries, w2.Queries) {
		t.Fatal("mixed workload not deterministic for a fixed seed")
	}
	if _, err := FromSnapshots(nil, 1); err == nil {
		t.Fatal("FromSnapshots accepted no snapshots")
	}
}

// TestRunMixedDomainsAgainstRegistry replays a mixed workload at a real
// two-domain registry and checks the per-class and per-domain report
// breakdowns line up with the totals.
func TestRunMixedDomainsAgainstRegistry(t *testing.T) {
	reg := serve.NewRegistry(serve.Config{CacheSize: 32})
	if _, err := reg.Add("movies", testSnapshot(), serve.SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("cameras", testCamerasSnapshot(), serve.SnapshotMeta{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(ts.Close)

	w, err := FromSnapshots(map[string]*serve.Snapshot{
		"movies":  testSnapshot(),
		"cameras": testCamerasSnapshot(),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), w, Options{
		URL:         ts.URL,
		QPS:         500,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean mixed run failed: errors %d, non-200 %d", rep.Errors, rep.Non200)
	}
	var classTotal, domainTotal uint64
	for c, n := range rep.ByClass {
		classTotal += n
		p, ok := rep.LatencyByClass[c]
		if !ok || p.P99 <= 0 || p.P50 > p.P99 {
			t.Fatalf("class %s percentiles implausible: %+v", c, p)
		}
	}
	for d, n := range rep.ByDomain {
		domainTotal += n
		p, ok := rep.LatencyByDomain[d]
		if !ok || p.P99 <= 0 {
			t.Fatalf("domain %s percentiles implausible: %+v", d, p)
		}
	}
	completed := rep.Requests - rep.Errors
	if classTotal != completed {
		t.Fatalf("per-class counts sum to %d, %d requests completed", classTotal, completed)
	}
	if domainTotal != completed {
		t.Fatalf("per-domain counts sum to %d, %d requests completed (every mixed query is routed)", domainTotal, completed)
	}
}

// TestLegacyWorkloadReportOmitsDomains pins the report shape for
// single-snapshot runs: no domain sections, so existing report
// consumers see unchanged JSON.
func TestLegacyWorkloadReportOmitsDomains(t *testing.T) {
	snap := testSnapshot()
	srv := serve.NewServer(snap, serve.Config{})
	ts := newTestHTTP(t, srv)

	w, err := FromSnapshot(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if q.Domain != "" {
			t.Fatalf("legacy workload query carries a domain: %+v", q)
		}
	}
	rep, err := Run(context.Background(), w, Options{
		URL:         ts,
		QPS:         500,
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean run failed: %+v", rep)
	}
	if rep.ByDomain != nil || rep.LatencyByDomain != nil {
		t.Fatalf("legacy report grew domain sections: %+v", rep)
	}
	if len(rep.LatencyByClass) == 0 {
		t.Fatal("per-class percentiles missing from legacy report")
	}
}

func TestRunAgainstServer(t *testing.T) {
	snap := testSnapshot()
	srv := serve.NewServer(snap, serve.Config{})
	ts := newTestHTTP(t, srv)

	w, err := FromSnapshot(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), w, Options{
		URL:         ts,
		QPS:         500,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("clean run failed: errors %d, non-200 %d", rep.Errors, rep.Non200)
	}
	if rep.Requests == 0 || rep.Latency.P99 <= 0 || rep.Latency.P50 > rep.Latency.P99 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if rep.ByClass[ClassExact] == 0 {
		t.Fatalf("no exact queries recorded: %+v", rep.ByClass)
	}
}

// TestWorkloadAttributesClass pins the v2 workload class: snapshots
// without a vocabulary generate pure v1 traffic; snapshots with one add
// attribute-shaped queries that the runner sends to /v2/match, and a
// clean run records them without errors.
func TestWorkloadAttributesClass(t *testing.T) {
	w, err := FromSnapshot(testSnapshot(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if q.Class == ClassAttributes {
			t.Fatalf("vocabulary-less snapshot generated an attributes query: %+v", q)
		}
	}

	snap := testSnapshot()
	snap.Vocab = &rewrite.Vocabulary{
		Domain: "movies",
		Numeric: []rewrite.NumericColumn{{
			Name: "year", Min: 2008, Max: 2008,
			Values:      []float64{2008},
			Comparators: []rewrite.Comparator{{Token: "before", Op: "lt"}},
		}},
		Categorical: []rewrite.CategoricalColumn{
			{Name: "genre", Values: []string{"adventure", "comedy"}},
		},
	}
	wa, err := FromSnapshot(snap, 42)
	if err != nil {
		t.Fatal(err)
	}
	attrs := 0
	for _, q := range wa.Queries {
		if q.Class == ClassAttributes {
			attrs++
		}
	}
	if attrs == 0 {
		t.Fatalf("vocabulary snapshot generated no attributes queries: %d total", len(wa.Queries))
	}

	srv := serve.NewServer(snap, serve.Config{})
	ts := newTestHTTP(t, srv)
	rep, err := Run(context.Background(), wa, Options{
		URL:         ts,
		QPS:         500,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("attributes run failed: errors %d, non-200 %d", rep.Errors, rep.Non200)
	}
	if rep.ByClass[ClassAttributes] == 0 {
		t.Fatalf("no attributes queries recorded: %+v", rep.ByClass)
	}
	if _, ok := rep.LatencyByClass[ClassAttributes]; !ok {
		t.Fatalf("no attributes latency bucket: %+v", rep.LatencyByClass)
	}
}

func TestPercentiles(t *testing.T) {
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..100
	}
	p := percentiles(ms)
	if p.P50 != 50 || p.P99 != 99 || p.Max != 100 || p.Mean != 50.5 {
		t.Fatalf("percentiles over 1..100: %+v", p)
	}
	if z := percentiles(nil); z != (Percentiles{}) {
		t.Fatalf("empty percentiles: %+v", z)
	}
}
