package rewrite

import (
	"slices"
	"sort"

	"websyn/internal/entity"
	"websyn/internal/textnorm"
)

// Vocabulary mining: one pass over an entity catalog's structured
// columns at dictbuild time. Numeric columns keep their value
// distribution (range, discrete value set when small, quartile bands);
// categorical columns keep their normalized distinct values. The
// comparator/unit/band lexicons are attached here too, so the online
// rewriter is pure table lookup over the serialized vocabulary.

// maxDiscreteValues bounds the per-column discrete value set: columns
// with more distinct values (street prices) are treated as continuous,
// so bare query numbers don't accidentally parse as equality predicates.
const maxDiscreteValues = 32

// Generic comparison words, attached to every numeric column. Value fit
// against the column range disambiguates which column a comparator
// targets.
var genericComparators = []Comparator{
	{Token: "under", Op: "lt"},
	{Token: "below", Op: "lt"},
	{Token: "over", Op: "gt"},
	{Token: "above", Op: "gt"},
}

// Temporal comparison words, attached to year-shaped columns only.
var yearComparators = []Comparator{
	{Token: "before", Op: "lt"},
	{Token: "after", Op: "gt"},
	{Token: "since", Op: "gte"},
}

// Price band tokens: vague-quantity words resolved against the mined
// price distribution's quartiles.
var (
	cheapTokens     = []string{"cheap", "budget", "affordable"}
	expensiveTokens = []string{"expensive", "premium", "highend"}
)

// numericSpec drives mining of one numeric column.
type numericSpec struct {
	name, unit string
	unitTokens []string
	suffixes   []string
	yearLike   bool // attach before/after/since
	priceBands bool // attach cheap/expensive quartile bands
	get        func(*entity.Entity) float64
}

// categoricalSpec drives mining of one categorical column.
type categoricalSpec struct {
	name string
	get  func(*entity.Entity) string
}

// domainSchema lists the columns mined per entity kind, in predicate
// priority order.
func domainSchema(kind entity.Kind) (num []numericSpec, cat []categoricalSpec) {
	year := numericSpec{
		name: "year", yearLike: true,
		get: func(e *entity.Entity) float64 { return float64(e.Year) },
	}
	switch kind {
	case entity.Movie:
		num = []numericSpec{year}
		cat = []categoricalSpec{{name: "genre", get: func(e *entity.Entity) string { return e.Genre }}}
	case entity.Camera:
		num = []numericSpec{
			{
				name: "price", unit: "usd", priceBands: true,
				unitTokens: []string{"dollars", "dollar", "usd", "bucks"},
				get:        func(e *entity.Entity) float64 { return e.PriceUSD },
			},
			{
				name: "megapixels", unit: "mp",
				unitTokens: []string{"mp", "megapixel", "megapixels"},
				suffixes:   []string{"mp"},
				get:        func(e *entity.Entity) float64 { return e.Megapixels },
			},
			{
				name: "zoom", unit: "x",
				unitTokens: []string{"zoom"},
				suffixes:   []string{"x"},
				get:        func(e *entity.Entity) float64 { return e.ZoomX },
			},
		}
		cat = []categoricalSpec{{name: "brand", get: func(e *entity.Entity) string { return e.Brand }}}
	case entity.Software:
		num = []numericSpec{
			year,
			{
				name:       "version",
				unitTokens: []string{"version"},
				get:        func(e *entity.Entity) float64 { return float64(e.Sequel) },
			},
		}
		cat = []categoricalSpec{{name: "vendor", get: func(e *entity.Entity) string { return e.Brand }}}
	}
	return num, cat
}

// Mine builds the attribute vocabulary for one catalog. domain names the
// vertical as the serving tier knows it ("movies", "cameras",
// "software"). Columns whose values are entirely absent are dropped.
func Mine(domain string, cat *entity.Catalog) *Vocabulary {
	v := &Vocabulary{Domain: domain}
	numSpecs, catSpecs := domainSchema(cat.Kind())
	for _, spec := range numSpecs {
		var vals []float64
		for _, e := range cat.All() {
			if f := spec.get(e); f != 0 {
				vals = append(vals, f)
			}
		}
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		nc := NumericColumn{
			Name:       spec.name,
			Unit:       spec.unit,
			Min:        vals[0],
			Max:        vals[len(vals)-1],
			UnitTokens: spec.unitTokens,
			Suffixes:   spec.suffixes,
		}
		distinct := slices.Compact(slices.Clone(vals))
		if len(distinct) <= maxDiscreteValues {
			nc.Values = distinct
		}
		nc.Comparators = append(nc.Comparators, genericComparators...)
		if spec.yearLike {
			nc.Comparators = append(nc.Comparators, yearComparators...)
		}
		if spec.priceBands && nc.Min < nc.Max {
			lo, hi := quartiles(vals)
			for _, t := range cheapTokens {
				nc.Bands = append(nc.Bands, Band{Token: t, Op: "lte", Value: lo})
			}
			for _, t := range expensiveTokens {
				nc.Bands = append(nc.Bands, Band{Token: t, Op: "gte", Value: hi})
			}
		}
		v.Numeric = append(v.Numeric, nc)
	}
	for _, spec := range catSpecs {
		seen := map[string]bool{}
		var vals []string
		for _, e := range cat.All() {
			n := textnorm.Normalize(spec.get(e))
			if n == "" || seen[n] {
				continue
			}
			seen[n] = true
			vals = append(vals, n)
		}
		if len(vals) == 0 {
			continue
		}
		sort.Strings(vals)
		v.Categorical = append(v.Categorical, CategoricalColumn{Name: spec.name, Values: vals})
	}
	if len(v.Numeric) == 0 && len(v.Categorical) == 0 {
		return nil
	}
	return v
}

// quartiles returns the first and third quartile of sorted values.
func quartiles(sorted []float64) (q1, q3 float64) {
	n := len(sorted)
	return sorted[n/4], sorted[(3*n)/4]
}
