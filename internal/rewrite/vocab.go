// Package rewrite turns the unmatched remainder of a query into typed
// attribute predicates against the entity table's columns — the
// structured-query-rewrite stage the paper's introduction motivates
// ("cheap canon 40d lens under $500" is an entity mention plus a price
// constraint, not an entity mention plus noise).
//
// A per-domain Vocabulary is mined at dictbuild time from the entity
// catalog (mine.go): numeric columns yield ranges, discrete value sets,
// unit/comparator lexicons and distribution bands; categorical columns
// yield value dictionaries. The vocabulary serializes into the WSNP v4
// snapshot section and compiles at load time into a Rewriter
// (rewriter.go) that the match engine consults post-match on remainder
// tokens. Categorical values are matched through the same trigram fuzzy
// machinery as entities, so "cannon" still hits brand=canon.
package rewrite

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Vocabulary is one domain's attribute vocabulary: everything the
// rewriter needs to parse remainder tokens into predicates, in a pure
// data form that serializes into the snapshot.
type Vocabulary struct {
	// Domain is the vertical the vocabulary was mined from ("movies",
	// "cameras", "software").
	Domain string
	// Numeric columns, in priority order: when a bare comparator value
	// fits several columns' ranges, the earliest fitting column wins.
	Numeric []NumericColumn
	// Categorical columns; values are matched exactly and (single-token
	// values) through the trigram index.
	Categorical []CategoricalColumn
}

// NumericColumn describes one numeric entity-table column.
type NumericColumn struct {
	// Name is the column name emitted in predicates ("price", "year").
	Name string
	// Unit is the canonical unit tag stamped on predicates ("usd",
	// "mp", "x"); empty for unitless columns.
	Unit string
	// Min and Max span the mined value distribution.
	Min, Max float64
	// Values holds the sorted distinct column values when the column is
	// discrete (few distinct values, e.g. year); nil for continuous
	// columns. A bare query number equal to a member parses as an
	// equality predicate.
	Values []float64
	// UnitTokens are standalone tokens recognized as this column's unit
	// ("dollars", "usd", "megapixels"). A number followed by one parses
	// as an equality predicate.
	UnitTokens []string
	// Suffixes are fused numeric suffixes ("mp", "x"): a token like
	// "10mp" parses as an equality predicate on this column.
	Suffixes []string
	// Bands are vague-quantity tokens resolved against the value
	// distribution ("cheap" -> price <= first quartile).
	Bands []Band
	// Comparators are the comparison words that can target this column
	// ("under" -> lt; year additionally "before"/"after"/"since").
	Comparators []Comparator
}

// Band is one vague-quantity token with its resolved predicate shape.
type Band struct {
	Token string  // query token ("cheap")
	Op    string  // "lte" or "gte"
	Value float64 // distribution-derived threshold
}

// Comparator is one comparison word.
type Comparator struct {
	Token string // query token ("under")
	Op    string // "lt", "lte", "gt" or "gte"
}

// CategoricalColumn describes one categorical entity-table column.
type CategoricalColumn struct {
	// Name is the column name emitted in predicates ("brand", "genre").
	Name string
	// Values are the normalized distinct column values, sorted.
	Values []string
}

// Codec limits. The vocabulary rides inside a WSNP snapshot; its blob is
// length-prefixed there, and these bounds keep a corrupt prefix from
// driving allocations.
const (
	vocabCodecVersion = 1
	maxVocabString    = 1 << 12
	maxVocabList      = 1 << 16
)

// AppendBinary serializes the vocabulary, appending to dst. The format
// is a version byte followed by uvarint-framed strings, lists and
// big-endian float64s — the same primitive grammar as the surrounding
// snapshot, kept self-contained so the snapshot codec treats the
// vocabulary as one opaque section.
func (v *Vocabulary) AppendBinary(dst []byte) []byte {
	dst = append(dst, vocabCodecVersion)
	dst = appendString(dst, v.Domain)
	dst = binary.AppendUvarint(dst, uint64(len(v.Numeric)))
	for i := range v.Numeric {
		nc := &v.Numeric[i]
		dst = appendString(dst, nc.Name)
		dst = appendString(dst, nc.Unit)
		dst = appendFloat(dst, nc.Min)
		dst = appendFloat(dst, nc.Max)
		dst = binary.AppendUvarint(dst, uint64(len(nc.Values)))
		for _, f := range nc.Values {
			dst = appendFloat(dst, f)
		}
		dst = appendStrings(dst, nc.UnitTokens)
		dst = appendStrings(dst, nc.Suffixes)
		dst = binary.AppendUvarint(dst, uint64(len(nc.Bands)))
		for _, b := range nc.Bands {
			dst = appendString(dst, b.Token)
			dst = appendString(dst, b.Op)
			dst = appendFloat(dst, b.Value)
		}
		dst = binary.AppendUvarint(dst, uint64(len(nc.Comparators)))
		for _, c := range nc.Comparators {
			dst = appendString(dst, c.Token)
			dst = appendString(dst, c.Op)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(v.Categorical)))
	for i := range v.Categorical {
		cc := &v.Categorical[i]
		dst = appendString(dst, cc.Name)
		dst = appendStrings(dst, cc.Values)
	}
	return dst
}

// DecodeBinary parses a vocabulary serialized by AppendBinary. The whole
// input must be consumed.
func DecodeBinary(b []byte) (*Vocabulary, error) {
	d := &vocabDecoder{b: b}
	if ver := d.byte(); ver != vocabCodecVersion {
		return nil, fmt.Errorf("rewrite: unsupported vocabulary codec version %d", ver)
	}
	v := &Vocabulary{Domain: d.str()}
	// Zero-length lists stay nil throughout, so decode(encode(v)) is
	// deeply equal to v, not merely equivalent.
	nNum := d.count()
	if nNum > 0 {
		v.Numeric = make([]NumericColumn, 0, min(nNum, 16))
	}
	for i := 0; i < nNum && d.err == nil; i++ {
		nc := NumericColumn{
			Name: d.str(),
			Unit: d.str(),
			Min:  d.f64(),
			Max:  d.f64(),
		}
		nVal := d.count()
		if nVal > 0 {
			nc.Values = make([]float64, 0, min(nVal, 64))
		}
		for j := 0; j < nVal && d.err == nil; j++ {
			nc.Values = append(nc.Values, d.f64())
		}
		nc.UnitTokens = d.strs()
		nc.Suffixes = d.strs()
		nBand := d.count()
		if nBand > 0 {
			nc.Bands = make([]Band, 0, min(nBand, 16))
		}
		for j := 0; j < nBand && d.err == nil; j++ {
			nc.Bands = append(nc.Bands, Band{Token: d.str(), Op: d.str(), Value: d.f64()})
		}
		nCmp := d.count()
		if nCmp > 0 {
			nc.Comparators = make([]Comparator, 0, min(nCmp, 16))
		}
		for j := 0; j < nCmp && d.err == nil; j++ {
			nc.Comparators = append(nc.Comparators, Comparator{Token: d.str(), Op: d.str()})
		}
		v.Numeric = append(v.Numeric, nc)
	}
	nCat := d.count()
	if nCat > 0 {
		v.Categorical = make([]CategoricalColumn, 0, min(nCat, 16))
	}
	for i := 0; i < nCat && d.err == nil; i++ {
		v.Categorical = append(v.Categorical, CategoricalColumn{Name: d.str(), Values: d.strs()})
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("rewrite: %d trailing bytes after vocabulary", len(d.b))
	}
	return v, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStrings(dst []byte, ss []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

// vocabDecoder is a sticky-error cursor over the vocabulary blob. Every
// length is checked against both its cap and the remaining bytes, so a
// corrupt prefix cannot drive allocations or reads past the input.
type vocabDecoder struct {
	b   []byte
	err error
}

func (d *vocabDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("rewrite: "+format, args...)
	}
}

func (d *vocabDecoder) byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail("truncated vocabulary")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *vocabDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *vocabDecoder) count() int {
	n := d.uvarint()
	if n > maxVocabList || n > uint64(len(d.b)) {
		d.fail("count %d exceeds bounds", n)
		return 0
	}
	return int(n)
}

func (d *vocabDecoder) str() string {
	n := d.uvarint()
	if n > maxVocabString || n > uint64(len(d.b)) {
		d.fail("string length %d exceeds bounds", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *vocabDecoder) strs() []string {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, min(n, 64))
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.str())
	}
	return out
}

func (d *vocabDecoder) f64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}
