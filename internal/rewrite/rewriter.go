package rewrite

import (
	"strconv"
	"strings"

	"websyn/internal/match"
)

// Rewriter is the compiled, online form of a Vocabulary: lexicon maps
// for comparator/band/unit tokens plus a trigram-indexed dictionary of
// categorical values. It implements match.AttributeRewriter, is
// immutable after construction and safe for concurrent use — the serving
// tier builds one per generation and shares it across requests.
type Rewriter struct {
	v *Vocabulary

	comps    map[string][]compRef // comparator token -> applicable columns
	bands    map[string][]bandRef // band token -> resolved predicates
	units    map[string]int       // unit token -> numeric column index
	suffixes []suffixRef          // fused numeric suffixes, longest first

	// Categorical value matching: a token-trie dictionary for exact
	// (possibly multi-token) values and the same trigram machinery the
	// entity matcher uses for fuzzy ones, so "cannon" still resolves to
	// brand=canon.
	dict         *match.Dictionary
	fuzzy        *match.FuzzyIndex
	maxValueSpan int
	minSim       float64
}

type compRef struct {
	col int
	op  string
}

type bandRef struct {
	col   int
	op    string
	value float64
}

type suffixRef struct {
	suffix string
	col    int
}

// catIDStride packs (column index, value index) into the dictionary's
// integer entity ID: id = col*catIDStride + value.
const catIDStride = 1 << 20

const (
	// defaultValueMinSim is the fuzzy categorical acceptance floor when
	// the caller passes none — matching the package-wide trigram default.
	defaultValueMinSim = 0.55
	// minFuzzyValueLen is the shortest token offered to the trigram
	// index; shorter tokens carry too few grams to rank meaningfully.
	minFuzzyValueLen = 4
	// maxParseDigits bounds numeric token width — longer digit runs are
	// identifiers, not quantities.
	maxParseDigits = 10
)

// NewRewriter compiles a vocabulary. minSim is the fuzzy categorical
// acceptance floor; <= 0 falls back to the package default.
func NewRewriter(v *Vocabulary, minSim float64) *Rewriter {
	if minSim <= 0 {
		minSim = defaultValueMinSim
	}
	r := &Rewriter{
		v:      v,
		comps:  map[string][]compRef{},
		bands:  map[string][]bandRef{},
		units:  map[string]int{},
		minSim: minSim,
		dict:   match.NewDictionary(),
	}
	for ci := range v.Numeric {
		col := &v.Numeric[ci]
		for _, c := range col.Comparators {
			r.comps[c.Token] = append(r.comps[c.Token], compRef{col: ci, op: c.Op})
		}
		for _, b := range col.Bands {
			r.bands[b.Token] = append(r.bands[b.Token], bandRef{col: ci, op: b.Op, value: b.Value})
		}
		for _, u := range col.UnitTokens {
			if _, dup := r.units[u]; !dup {
				r.units[u] = ci
			}
		}
		for _, s := range col.Suffixes {
			r.suffixes = append(r.suffixes, suffixRef{suffix: s, col: ci})
		}
	}
	// Longest suffix first, so a hypothetical "mpx" would never be
	// shadowed by "x".
	for i := 1; i < len(r.suffixes); i++ {
		for j := i; j > 0 && len(r.suffixes[j].suffix) > len(r.suffixes[j-1].suffix); j-- {
			r.suffixes[j], r.suffixes[j-1] = r.suffixes[j-1], r.suffixes[j]
		}
	}
	for ci := range v.Categorical {
		col := &v.Categorical[ci]
		for vi, val := range col.Values {
			r.dict.Add(val, match.Entry{EntityID: ci*catIDStride + vi, Score: 1, Source: col.Name})
			if n := 1 + strings.Count(val, " "); n > r.maxValueSpan {
				r.maxValueSpan = n
			}
		}
	}
	if r.dict.Len() > 0 {
		r.fuzzy = r.dict.NewFuzzyIndex(minSim)
	}
	return r
}

// Vocabulary returns the compiled vocabulary.
func (r *Rewriter) Vocabulary() *Vocabulary { return r.v }

// RewriteTokens implements match.AttributeRewriter: one left-to-right
// pass over the unused tokens, emitting predicates and marking every
// consumed token in used. See the interface contract for aliasing rules —
// every Span is freshly built, Text/Column/Op/Unit are vocabulary-owned.
func (r *Rewriter) RewriteTokens(tokens []string, used []bool, minSim float64, explain func(format string, args ...any)) []match.Predicate {
	var out []match.Predicate
	for i := 0; i < len(tokens); i++ {
		if used[i] {
			continue
		}
		if p, end, ok := r.parseAt(tokens, used, i, minSim); ok {
			for j := i; j < end; j++ {
				used[j] = true
			}
			if explain != nil {
				explainPredicate(explain, &p)
			}
			out = append(out, p)
			i = end - 1
			continue
		}
		if explain != nil {
			explain("token %q: no attribute parse, stays residual", tokens[i])
		}
	}
	return out
}

// parseAt tries every predicate shape at token i, returning the
// predicate and the exclusive end of the consumed window.
func (r *Rewriter) parseAt(tokens []string, used []bool, i int, minSim float64) (match.Predicate, int, bool) {
	tok := tokens[i]
	// Comparator word followed by a quantity: "under 500", "before 2010",
	// "under 10mp", "under 500 dollars".
	if refs, ok := r.comps[tok]; ok && i+1 < len(tokens) && !used[i+1] {
		if p, end, ok2 := r.parseComparator(tokens, used, i, refs); ok2 {
			return p, end, true
		}
	}
	// Band word: "cheap", "premium". First fitting column (vocabulary
	// order) wins.
	if brs, ok := r.bands[tok]; ok && len(brs) > 0 {
		b := brs[0]
		col := &r.v.Numeric[b.col]
		return match.Predicate{
			Column: col.Name, Op: b.op, Value: b.value, Unit: col.Unit,
			Span: cloneJoin(tokens[i : i+1]), Start: i, End: i + 1, Source: "band",
		}, i + 1, true
	}
	// Quantity shapes: fused suffix ("10mp"), number + unit token
	// ("500 dollars"), bare discrete value ("2008").
	if num, sfxCol, fused, isNum := r.parseQuantity(tok); isNum {
		if fused {
			col := &r.v.Numeric[sfxCol]
			return match.Predicate{
				Column: col.Name, Op: "eq", Value: num, Unit: col.Unit,
				Span: cloneJoin(tokens[i : i+1]), Start: i, End: i + 1, Source: "unit",
			}, i + 1, true
		}
		if i+1 < len(tokens) && !used[i+1] {
			if ci, ok := r.units[tokens[i+1]]; ok {
				col := &r.v.Numeric[ci]
				return match.Predicate{
					Column: col.Name, Op: "eq", Value: num, Unit: col.Unit,
					Span: cloneJoin(tokens[i : i+2]), Start: i, End: i + 2, Source: "unit",
				}, i + 2, true
			}
		}
		if ci, ok := r.discreteFit(num); ok {
			col := &r.v.Numeric[ci]
			return match.Predicate{
				Column: col.Name, Op: "eq", Value: num, Unit: col.Unit,
				Span: cloneJoin(tokens[i : i+1]), Start: i, End: i + 1, Source: "value",
			}, i + 1, true
		}
	}
	// Categorical value: widest exact window first, then a single-token
	// fuzzy resolution through the trigram index.
	if r.dict.Len() > 0 {
		run := i
		for run < len(tokens) && !used[run] && run-i < r.maxValueSpan {
			run++
		}
		for l := run - i; l >= 1; l-- {
			span := cloneJoin(tokens[i : i+l])
			if entries := r.dict.Lookup(span); len(entries) > 0 {
				name, val := r.catValue(entries[0].EntityID)
				return match.Predicate{
					Column: name, Op: "eq", Text: val,
					Span: span, Start: i, End: i + l, Source: "value",
				}, i + l, true
			}
		}
		if r.fuzzy != nil && len(tok) >= minFuzzyValueLen {
			if hits := r.fuzzy.Lookup(tok, 1); len(hits) > 0 && len(hits[0].Entries) > 0 {
				if h := hits[0]; minSim <= 0 || h.Similarity >= minSim {
					name, val := r.catValue(h.Entries[0].EntityID)
					return match.Predicate{
						Column: name, Op: "eq", Text: val, Similarity: h.Similarity,
						Span: cloneJoin(tokens[i : i+1]), Start: i, End: i + 1, Source: "value-fuzzy",
					}, i + 1, true
				}
			}
		}
	}
	return match.Predicate{}, 0, false
}

// parseComparator resolves a comparator word against the quantity that
// follows it. Column selection: a fused suffix or trailing unit token
// pins the column; otherwise the first comparator column (vocabulary
// order) whose widened value range fits the number wins.
func (r *Rewriter) parseComparator(tokens []string, used []bool, i int, refs []compRef) (match.Predicate, int, bool) {
	num, sfxCol, fused, isNum := r.parseQuantity(tokens[i+1])
	if !isNum {
		return match.Predicate{}, 0, false
	}
	end := i + 2
	col := -1
	if fused {
		col = sfxCol
	} else if end < len(tokens) && !used[end] {
		if ci, ok := r.units[tokens[end]]; ok {
			col = ci
			end++
		}
	}
	var op string
	if col >= 0 {
		for _, ref := range refs {
			if ref.col == col {
				op = ref.op
				break
			}
		}
		if op == "" {
			return match.Predicate{}, 0, false
		}
	} else {
		for _, ref := range refs {
			if r.rangeFits(ref.col, num) {
				col, op = ref.col, ref.op
				break
			}
		}
		if col < 0 {
			return match.Predicate{}, 0, false
		}
	}
	nc := &r.v.Numeric[col]
	return match.Predicate{
		Column: nc.Name, Op: op, Value: num, Unit: nc.Unit,
		Span: cloneJoin(tokens[i:end]), Start: i, End: end, Source: "comparator",
	}, end, true
}

// parseQuantity parses a quantity token: a pure digit run ("500") or a
// digit run fused with a known unit suffix ("10mp", "3x").
func (r *Rewriter) parseQuantity(tok string) (num float64, suffixCol int, fused, ok bool) {
	for _, ref := range r.suffixes {
		if body, cut := strings.CutSuffix(tok, ref.suffix); cut && body != "" {
			if f, digits := parseDigits(body); digits {
				return f, ref.col, true, true
			}
		}
	}
	if f, digits := parseDigits(tok); digits {
		return f, 0, false, true
	}
	return 0, 0, false, false
}

// parseDigits parses a bounded pure-digit token.
func parseDigits(s string) (float64, bool) {
	if s == "" || len(s) > maxParseDigits {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// rangeFits reports whether num plausibly targets the column: within the
// mined range widened by 2x on each side, absorbing constraints slightly
// outside the catalog's own spread ("under $3000" on a $2200-max feed).
func (r *Rewriter) rangeFits(col int, num float64) bool {
	c := &r.v.Numeric[col]
	return num >= c.Min/2 && num <= c.Max*2
}

// discreteFit finds the first numeric column whose discrete value set
// contains num exactly.
func (r *Rewriter) discreteFit(num float64) (int, bool) {
	for ci := range r.v.Numeric {
		for _, v := range r.v.Numeric[ci].Values {
			if v == num {
				return ci, true
			}
		}
	}
	return -1, false
}

// catValue decodes a categorical dictionary entity ID.
func (r *Rewriter) catValue(id int) (column, value string) {
	col := &r.v.Categorical[id/catIDStride]
	return col.Name, col.Values[id%catIDStride]
}

// explainPredicate emits one trace line per accepted predicate.
func explainPredicate(explain func(format string, args ...any), p *match.Predicate) {
	if p.Text != "" {
		if p.Source == "value-fuzzy" {
			explain("span %q [%d,%d) -> %s = %q (sim %.3f, %s)", p.Span, p.Start, p.End, p.Column, p.Text, p.Similarity, p.Source)
		} else {
			explain("span %q [%d,%d) -> %s = %q (%s)", p.Span, p.Start, p.End, p.Column, p.Text, p.Source)
		}
		return
	}
	explain("span %q [%d,%d) -> %s %s %g%s (%s)", p.Span, p.Start, p.End, p.Column, p.Op, p.Value, unitSuffix(p.Unit), p.Source)
}

func unitSuffix(unit string) string {
	if unit == "" {
		return ""
	}
	return " " + unit
}

// cloneJoin joins tokens with single spaces into a freshly allocated
// string — never aliasing the inputs, which may live in a match arena.
func cloneJoin(tokens []string) string {
	n := 0
	for _, t := range tokens {
		n += len(t) + 1
	}
	b := make([]byte, 0, n)
	for i, t := range tokens {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
