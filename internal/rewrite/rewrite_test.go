package rewrite

import (
	"reflect"
	"testing"

	"websyn/internal/entity"
	"websyn/internal/match"
)

func minedVocab(t *testing.T, domain string, build func() (*entity.Catalog, error)) *Vocabulary {
	t.Helper()
	cat, err := build()
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	v := Mine(domain, cat)
	if v == nil {
		t.Fatalf("Mine(%q) returned nil vocabulary", domain)
	}
	return v
}

func TestMineCameras(t *testing.T) {
	v := minedVocab(t, "cameras", entity.Cameras2008)
	if v.Domain != "cameras" {
		t.Errorf("domain = %q", v.Domain)
	}
	names := []string{}
	for _, nc := range v.Numeric {
		names = append(names, nc.Name)
	}
	if !reflect.DeepEqual(names, []string{"price", "megapixels", "zoom"}) {
		t.Fatalf("numeric columns = %v", names)
	}
	price := v.Numeric[0]
	if price.Min <= 0 || price.Max <= price.Min {
		t.Errorf("price range [%g, %g] not a spread", price.Min, price.Max)
	}
	if price.Values != nil {
		t.Errorf("price should be continuous, got %d discrete values", len(price.Values))
	}
	if len(price.Bands) == 0 {
		t.Errorf("price has no bands")
	}
	for _, b := range price.Bands {
		if b.Token == "cheap" && (b.Op != "lte" || b.Value <= price.Min || b.Value >= price.Max) {
			t.Errorf("cheap band %+v not an interior lte threshold", b)
		}
	}
	if len(v.Categorical) != 1 || v.Categorical[0].Name != "brand" {
		t.Fatalf("categorical = %+v", v.Categorical)
	}
	brands := v.Categorical[0].Values
	found := false
	for _, b := range brands {
		if b == "canon" {
			found = true
		}
	}
	if !found {
		t.Errorf("brand values %v missing canon", brands)
	}
}

func TestMineMovies(t *testing.T) {
	v := minedVocab(t, "movies", entity.Movies2008)
	if len(v.Numeric) != 1 || v.Numeric[0].Name != "year" {
		t.Fatalf("numeric = %+v", v.Numeric)
	}
	year := v.Numeric[0]
	if !reflect.DeepEqual(year.Values, []float64{2008}) {
		t.Errorf("year values = %v, want [2008]", year.Values)
	}
	hasSince := false
	for _, c := range year.Comparators {
		if c.Token == "since" && c.Op == "gte" {
			hasSince = true
		}
	}
	if !hasSince {
		t.Errorf("year comparators %v missing since/gte", year.Comparators)
	}
	if len(v.Categorical) != 1 || v.Categorical[0].Name != "genre" {
		t.Fatalf("categorical = %+v", v.Categorical)
	}
	hasAdventure := false
	for _, g := range v.Categorical[0].Values {
		if g == "adventure" {
			hasAdventure = true
		}
	}
	if !hasAdventure {
		t.Errorf("genres %v missing adventure", v.Categorical[0].Values)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		domain string
		build  func() (*entity.Catalog, error)
	}{
		{"movies", entity.Movies2008},
		{"cameras", entity.Cameras2008},
		{"software", entity.Software2008},
	} {
		v := minedVocab(t, tc.domain, tc.build)
		blob := v.AppendBinary(nil)
		got, err := DecodeBinary(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.domain, err)
		}
		if !reflect.DeepEqual(v, got) {
			t.Errorf("%s: round-trip mismatch\n in: %+v\nout: %+v", tc.domain, v, got)
		}
		// Re-encode determinism.
		if blob2 := got.AppendBinary(nil); !reflect.DeepEqual(blob, blob2) {
			t.Errorf("%s: re-encode differs", tc.domain)
		}
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	v := minedVocab(t, "movies", entity.Movies2008)
	blob := v.AppendBinary(nil)
	if _, err := DecodeBinary(blob[:len(blob)/2]); err == nil {
		t.Errorf("truncated blob decoded without error")
	}
	if _, err := DecodeBinary(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Errorf("trailing garbage decoded without error")
	}
	if _, err := DecodeBinary([]byte{99}); err == nil {
		t.Errorf("unknown codec version decoded without error")
	}
}

// rewriteTokens runs the parser over a raw token list with no tokens
// pre-consumed.
func rewriteTokens(r *Rewriter, tokens ...string) []match.Predicate {
	used := make([]bool, len(tokens))
	return r.RewriteTokens(tokens, used, 0, nil)
}

func TestRewriteCameraShapes(t *testing.T) {
	v := minedVocab(t, "cameras", entity.Cameras2008)
	r := NewRewriter(v, 0)

	// "cheap ... under 500": band + comparator, "lens" residual.
	tokens := []string{"cheap", "lens", "under", "500"}
	used := make([]bool, len(tokens))
	preds := r.RewriteTokens(tokens, used, 0, nil)
	if len(preds) != 2 {
		t.Fatalf("predicates = %+v, want 2", preds)
	}
	if p := preds[0]; p.Column != "price" || p.Op != "lte" || p.Source != "band" || p.Span != "cheap" {
		t.Errorf("band predicate = %+v", p)
	}
	if p := preds[1]; p.Column != "price" || p.Op != "lt" || p.Value != 500 || p.Source != "comparator" || p.Span != "under 500" {
		t.Errorf("comparator predicate = %+v", p)
	}
	if used[1] {
		t.Errorf("residual token %q consumed", tokens[1])
	}
	for _, i := range []int{0, 2, 3} {
		if !used[i] {
			t.Errorf("token %q not consumed", tokens[i])
		}
	}

	// Fused suffix and unit-token shapes.
	if preds := rewriteTokens(r, "10mp"); len(preds) != 1 || preds[0].Column != "megapixels" || preds[0].Op != "eq" || preds[0].Value != 10 {
		t.Errorf("10mp = %+v", preds)
	}
	if preds := rewriteTokens(r, "under", "12x"); len(preds) != 1 || preds[0].Column != "zoom" || preds[0].Op != "lt" || preds[0].Value != 12 {
		t.Errorf("under 12x = %+v", preds)
	}
	if preds := rewriteTokens(r, "300", "dollars"); len(preds) != 1 || preds[0].Column != "price" || preds[0].Op != "eq" || preds[0].Value != 300 {
		t.Errorf("300 dollars = %+v", preds)
	}
	if preds := rewriteTokens(r, "under", "300", "dollars"); len(preds) != 1 || preds[0].Column != "price" || preds[0].Op != "lt" || preds[0].Span != "under 300 dollars" {
		t.Errorf("under 300 dollars = %+v", preds)
	}

	// Categorical: exact and fuzzy brand.
	if preds := rewriteTokens(r, "canon"); len(preds) != 1 || preds[0].Column != "brand" || preds[0].Text != "canon" || preds[0].Source != "value" {
		t.Errorf("canon = %+v", preds)
	}
	preds = rewriteTokens(r, "cannon")
	if len(preds) != 1 || preds[0].Column != "brand" || preds[0].Text != "canon" || preds[0].Source != "value-fuzzy" {
		t.Fatalf("cannon = %+v", preds)
	}
	if preds[0].Similarity <= 0 || preds[0].Similarity >= 1 {
		t.Errorf("cannon similarity = %g", preds[0].Similarity)
	}
	if preds[0].Span != "cannon" {
		t.Errorf("cannon span = %q, want the query surface", preds[0].Span)
	}
}

func TestRewriteMovieShapes(t *testing.T) {
	v := minedVocab(t, "movies", entity.Movies2008)
	r := NewRewriter(v, 0)

	preds := rewriteTokens(r, "2008", "adventure")
	if len(preds) != 2 {
		t.Fatalf("predicates = %+v, want 2", preds)
	}
	if p := preds[0]; p.Column != "year" || p.Op != "eq" || p.Value != 2008 || p.Source != "value" {
		t.Errorf("year predicate = %+v", p)
	}
	if p := preds[1]; p.Column != "genre" || p.Op != "eq" || p.Text != "adventure" || p.Source != "value" {
		t.Errorf("genre predicate = %+v", p)
	}

	if preds := rewriteTokens(r, "before", "2010"); len(preds) != 1 || preds[0].Column != "year" || preds[0].Op != "lt" || preds[0].Value != 2010 {
		t.Errorf("before 2010 = %+v", preds)
	}
	// A number that fits no column range parses nothing.
	if preds := rewriteTokens(r, "under", "500"); len(preds) != 0 {
		t.Errorf("movies under 500 = %+v, want none", preds)
	}
}

func TestRewriteMinSimFloor(t *testing.T) {
	v := minedVocab(t, "cameras", entity.Cameras2008)
	r := NewRewriter(v, 0)
	used := make([]bool, 1)
	// A raised per-request floor suppresses the fuzzy brand hit.
	if preds := r.RewriteTokens([]string{"cannon"}, used, 0.99, nil); len(preds) != 0 {
		t.Errorf("cannon at min_sim 0.99 = %+v, want none", preds)
	}
}

func TestRewriteExplain(t *testing.T) {
	v := minedVocab(t, "cameras", entity.Cameras2008)
	r := NewRewriter(v, 0)
	var lines []string
	explain := func(format string, args ...any) { lines = append(lines, format) }
	used := make([]bool, 3)
	r.RewriteTokens([]string{"cheap", "weird", "canon"}, used, 0, explain)
	if len(lines) != 3 {
		t.Fatalf("explain lines = %d, want 3 (two predicates, one residual)", len(lines))
	}
}

func TestRewriterDeterministic(t *testing.T) {
	v := minedVocab(t, "cameras", entity.Cameras2008)
	a := NewRewriter(v, 0)
	b := NewRewriter(v, 0)
	for _, toks := range [][]string{
		{"cheap", "cannon", "under", "500"},
		{"10mp", "5x", "nikon"},
	} {
		pa := rewriteTokens(a, toks...)
		pb := rewriteTokens(b, toks...)
		if !reflect.DeepEqual(pa, pb) {
			t.Errorf("nondeterministic parse of %v:\n%+v\n%+v", toks, pa, pb)
		}
	}
}
