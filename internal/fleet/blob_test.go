package fleet

import (
	"os"
	"path/filepath"
	"testing"

	"websyn/internal/serve"
	"websyn/internal/serve/reload"
)

func TestStoreStageFetchPointer(t *testing.T) {
	dir := t.TempDir()
	store := &Store{Dir: filepath.Join(dir, "blobs")}
	src := filepath.Join(dir, "src.snap")
	if err := os.WriteFile(src, []byte("snapshot bytes v1"), 0o644); err != nil {
		t.Fatal(err)
	}

	// No pointer before any publish.
	if sha, err := store.Current("movies"); err != nil || sha != "" {
		t.Fatalf("Current before publish: %q, %v", sha, err)
	}

	sha, err := store.Stage(src)
	if err != nil {
		t.Fatal(err)
	}
	if !validSHA(sha) {
		t.Fatalf("Stage returned %q", sha)
	}
	// Staged but not pointed at: still invisible.
	if cur, _ := store.Current("movies"); cur != "" {
		t.Fatalf("staging moved the pointer to %q", cur)
	}
	if err := store.SetCurrent("movies", sha); err != nil {
		t.Fatal(err)
	}
	if cur, _ := store.Current("movies"); cur != sha {
		t.Fatalf("Current = %q, want %q", cur, sha)
	}
	// Pointing at an unstaged blob must fail.
	bogus := "deadbeef" + sha[8:]
	if err := store.SetCurrent("movies", bogus); err == nil {
		t.Fatal("SetCurrent accepted an unstaged sha")
	}

	dest := filepath.Join(dir, "fetched.snap")
	if err := store.Fetch(sha, dest); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dest)
	if string(got) != "snapshot bytes v1" {
		t.Fatalf("fetched %q", got)
	}

	// A corrupted blob must fail hash verification and never reach dest.
	if err := os.WriteFile(filepath.Join(store.Dir, sha+".snap"), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	dest2 := filepath.Join(dir, "fetched2.snap")
	if err := store.Fetch(sha, dest2); err == nil {
		t.Fatal("Fetch accepted tampered bytes")
	}
	if _, err := os.Stat(dest2); !os.IsNotExist(err) {
		t.Fatal("tampered fetch left a file at dest")
	}
}

// replicaFixture is one in-process replica with the full snapshot
// plumbing: spool file, server, reloader, puller.
type replicaFixture struct {
	srv    *serve.Server
	rl     *reload.Reloader
	puller *Puller
}

func newReplicaFixture(t *testing.T, store *Store, domain string, snap *serve.Snapshot) *replicaFixture {
	t.Helper()
	spool := filepath.Join(t.TempDir(), domain+".snap")
	if err := snap.WriteFile(spool); err != nil {
		t.Fatal(err)
	}
	loaded, sha, err := serve.ReadSnapshotFileHashed(spool)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServerWithMeta(loaded, serve.Config{}, serve.SnapshotMeta{Path: spool, SHA256: sha})
	rl, err := reload.New(srv, reload.Config{Path: spool, BootSHA: sha, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	p := &Puller{Store: store, Domain: domain, Reloader: rl, Logf: t.Logf}
	p.SetBootSHA(sha)
	return &replicaFixture{srv: srv, rl: rl, puller: p}
}

func TestPullerConvergesAndSurvivesBadPublish(t *testing.T) {
	store := &Store{Dir: filepath.Join(t.TempDir(), "blobs")}
	fix := newReplicaFixture(t, store, "movies", testSnapshot())

	// Keep a copy of the v1 bytes: the puller fetches straight into the
	// spool path, so the original file won't survive later publishes.
	v1 := filepath.Join(t.TempDir(), "v1.snap")
	spoolBytes, err := os.ReadFile(fix.rl.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1, spoolBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	// Seed the store with the bytes the replica already serves: syncing
	// must be a no-op (no fetch, no swap).
	v1sha, err := store.Publish("movies", v1)
	if err != nil {
		t.Fatal(err)
	}
	if swapped, err := fix.puller.Sync(); err != nil || swapped {
		t.Fatalf("sync on identical pointer: swapped=%v err=%v", swapped, err)
	}
	if got := fix.puller.Status().Fetches; got != 0 {
		t.Fatalf("no-op sync fetched %d times", got)
	}

	// Publish v2: the puller must fetch, reload and serve it.
	v2path := filepath.Join(t.TempDir(), "v2.snap")
	if err := testSnapshotV2().WriteFile(v2path); err != nil {
		t.Fatal(err)
	}
	v2sha, err := store.Publish("movies", v2path)
	if err != nil {
		t.Fatal(err)
	}
	if v2sha == v1sha {
		t.Fatal("fixture v2 has identical bytes to v1")
	}
	swapped, err := fix.puller.Sync()
	if err != nil || !swapped {
		t.Fatalf("sync to v2: swapped=%v err=%v", swapped, err)
	}
	if got := fix.srv.SnapshotInfo().Snapshot.SHA256; got != v2sha {
		t.Fatalf("serving %.12s, want %.12s", got, v2sha)
	}

	// A garbage publish is fetched once, rejected by the reloader, and
	// the old generation keeps serving; re-syncing the same bad SHA is a
	// cheap no-op, not a refetch.
	garbage := filepath.Join(t.TempDir(), "garbage.snap")
	if err := os.WriteFile(garbage, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish("movies", garbage); err != nil {
		t.Fatal(err)
	}
	if _, err := fix.puller.Sync(); err == nil {
		t.Fatal("garbage publish synced cleanly")
	}
	if got := fix.srv.SnapshotInfo().Snapshot.SHA256; got != v2sha {
		t.Fatalf("bad publish changed serving state to %.12s", got)
	}
	fetchesAfterReject := fix.puller.Status().Fetches
	if _, err := fix.puller.Sync(); err != nil {
		t.Fatalf("re-sync of a rejected sha must be a quiet no-op, got %v", err)
	}
	if got := fix.puller.Status().Fetches; got != fetchesAfterReject {
		t.Fatal("rejected sha was fetched again on the next sync")
	}

	// A fresh good publish clears the jam.
	if _, err := store.Publish("movies", v1); err != nil {
		t.Fatal(err)
	}
	if swapped, err := fix.puller.Sync(); err != nil || !swapped {
		t.Fatalf("recovery publish: swapped=%v err=%v", swapped, err)
	}
	if got := fix.srv.SnapshotInfo().Snapshot.SHA256; got != v1sha {
		t.Fatalf("serving %.12s after recovery, want %.12s", got, v1sha)
	}
}
