package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"websyn/internal/serve"
)

// startRouter builds a Router over the given wire addresses, runs its
// health loops, and serves its HTTP API from an httptest server.
func startRouter(t *testing.T, cfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		rt.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	mux := http.NewServeMux()
	rt.Mount(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return rt, hs
}

func postMatch(t *testing.T, url, body string) (int, serve.V1Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/match", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.V1Response
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func TestRouterRoutesAcrossReplicas(t *testing.T) {
	addr1, srv1, _ := startWireServer(t, testBackend())
	addr2, srv2, _ := startWireServer(t, testBackend())
	_, hs := startRouter(t, RouterConfig{
		Replicas: []ReplicaSpec{{Addr: addr1}, {Addr: addr2}},
		Logf:     t.Logf,
	})

	for i := 0; i < 20; i++ {
		status, out := postMatch(t, hs.URL, `{"query": "indy 4"}`)
		if status != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, status)
		}
		if out.Count != 1 || len(out.Results) != 1 {
			t.Fatalf("request %d: count %d, %d results", i, out.Count, len(out.Results))
		}
		r := out.Results[0]
		if r.Error != "" {
			t.Fatalf("request %d: per-item error %q", i, r.Error)
		}
		if r.Response == nil || len(r.Response.Matches) == 0 {
			t.Fatalf("request %d: no matches", i)
		}
		if got := r.Response.Matches[0].Canonical; got != "Indiana Jones and the Kingdom of the Crystal Skull" {
			t.Fatalf("request %d: top match %q", i, got)
		}
	}
	// Domainless traffic round-robins: both replicas served some share.
	s1, s2 := srv1.Stats().Requests, srv2.Stats().Requests
	if s1 == 0 || s2 == 0 {
		t.Errorf("round-robin skew: replica requests %d / %d", s1, s2)
	}
}

func TestRouterBatchAndSemanticErrors(t *testing.T) {
	addr, _, _ := startWireServer(t, testBackend())
	_, hs := startRouter(t, RouterConfig{Replicas: []ReplicaSpec{{Addr: addr}}, Logf: t.Logf})

	status, out := postMatch(t, hs.URL, `{"queries": [{"query": "madagascar 2"}, {"query": ""}]}`)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d", status)
	}
	if len(out.Results) != 2 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[0].Response == nil {
		t.Errorf("item 0: %+v", out.Results[0])
	}
	// An empty query is a per-item semantic error: 200, error field set —
	// same contract as hitting a replica directly.
	if out.Results[1].Error == "" {
		t.Error("item 1: empty query did not produce a per-item error")
	}

	// Request-level misuse stays 4xx.
	if status, _ := postMatch(t, hs.URL, `{"nope": 1}`); status != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", status)
	}
}

func TestRouterAllReplicasDownIs503(t *testing.T) {
	addr, _, kill := startWireServer(t, testBackend())
	_, hs := startRouter(t, RouterConfig{
		Replicas:       []ReplicaSpec{{Addr: addr}},
		RequestTimeout: 500 * time.Millisecond,
		Logf:           t.Logf,
	})
	kill()
	status, _ := postMatch(t, hs.URL, `{"query": "indy 4"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("HTTP %d, want 503 when every replica is down", status)
	}
}

func TestRouterDomainAffinity(t *testing.T) {
	// Domain-pinned queries must consistently land on one replica (cache
	// affinity) while both are healthy.
	addr1, srv1, _ := startWireServer(t, testBackend())
	addr2, srv2, _ := startWireServer(t, testBackend())
	rt, err := NewRouter(RouterConfig{Replicas: []ReplicaSpec{{Addr: addr1}, {Addr: addr2}}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 8; q++ {
		query := fmt.Sprintf("query %d", q)
		var first []*replica
		for i := 0; i < 5; i++ {
			targets := rt.targetsFor(matchRequest(query, "movies"), nil)
			if len(targets) == 0 {
				t.Fatal("no targets")
			}
			if first == nil {
				first = targets
				continue
			}
			if targets[0] != first[0] {
				t.Fatalf("query %q: primary flapped between replicas", query)
			}
		}
	}
	_ = srv1
	_ = srv2
}

func TestRingDistributesAndRespectsHealth(t *testing.T) {
	r := newRing(3)
	counts := make(map[int]int)
	for i := 0; i < 3000; i++ {
		idx := r.order(fmt.Sprintf("key-%d", i), 1, func(int) bool { return true })
		counts[idx[0]]++
	}
	for rep := 0; rep < 3; rep++ {
		if counts[rep] < 300 {
			t.Errorf("replica %d got %d of 3000 keys — ring badly imbalanced", rep, counts[rep])
		}
	}
	// An unhealthy primary is walked past, and only its keys move.
	moved := 0
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := r.order(key, 1, func(int) bool { return true })[0]
		after := r.order(key, 1, func(n int) bool { return n != 0 })[0]
		if after == 0 {
			t.Fatalf("key %q routed to the unhealthy replica", key)
		}
		if before != after {
			moved++
		}
	}
	if moved != counts[0] {
		t.Errorf("%d keys moved, want exactly the unhealthy replica's %d", moved, counts[0])
	}
}
