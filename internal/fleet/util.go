package fleet

import (
	"encoding/json"
	"log"
	"net/http"
)

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v without touching headers — for handlers that
// already wrote a non-200 status.
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("fleet: encoding response: %v", err)
	}
}
