package fleet

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
)

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v without touching headers — for handlers that
// already wrote a non-200 status.
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("fleet: encoding response: %v", err)
	}
}

// writeText writes a small plain-text body (healthz and friends),
// logging a failed write like writeJSONBody does.
func writeText(w http.ResponseWriter, body string) {
	if _, err := io.WriteString(w, body); err != nil {
		log.Printf("fleet: writing response: %v", err)
	}
}
