package fleet

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"websyn/internal/fleet/wire"
)

// client is a wire-protocol transport for one replica: a small pool of
// idle connections, each carrying one request at a time. Cancellation
// is by deadline-poisoning: a watchdog goroutine slams the connection
// deadline into the past when the request context dies, which unblocks
// any in-flight read/write immediately. A cancelled or errored
// connection is closed, never re-pooled.
type client struct {
	addr        string
	dialTimeout time.Duration

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// maxIdleConns caps the per-replica idle pool. Beyond this, returned
// connections are closed; the pool only has to absorb the steady-state
// concurrency of one router.
const maxIdleConns = 32

func newClient(addr string, dialTimeout time.Duration) *client {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	return &client{addr: addr, dialTimeout: dialTimeout}
}

// get returns a pooled connection or dials a fresh one. The bool is
// true when the connection came from the pool (and so may be stale).
func (c *client) get(ctx context.Context) (net.Conn, bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, net.ErrClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()

	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, false, err
	}
	if _, err := io.WriteString(conn, wire.Magic); err != nil {
		conn.Close()
		return nil, false, fmt.Errorf("handshake %s: %w", c.addr, err)
	}
	return conn, false, nil
}

// put returns a healthy connection to the idle pool.
func (c *client) put(conn net.Conn) {
	conn.SetDeadline(time.Time{})
	c.mu.Lock()
	if c.closed || len(c.idle) >= maxIdleConns {
		c.mu.Unlock()
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
	c.mu.Unlock()
}

// dropIdle closes all pooled connections (called on ejection so a
// recovered replica starts from fresh connections).
func (c *client) dropIdle() {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}

// close shuts the pool down for good.
func (c *client) close() {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, conn := range idle {
		conn.Close()
	}
}

// roundTrip sends one request frame and reads one response frame,
// retrying once on a fresh connection if a pooled (possibly stale)
// connection fails on first use. buf is an optional reuse buffer for
// the response payload; the returned slice aliases it when large
// enough.
func (c *client) roundTrip(ctx context.Context, payload, buf []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		conn, pooled, err := c.get(ctx)
		if err != nil {
			return nil, err
		}
		resp, err := c.exchange(ctx, conn, payload, buf)
		if err == nil {
			c.put(conn)
			return resp, nil
		}
		conn.Close()
		// A pooled connection may have been closed server-side while
		// idle; one retry on a guaranteed-fresh connection covers that
		// without masking real failures.
		if pooled && attempt == 0 && ctx.Err() == nil {
			continue
		}
		return nil, err
	}
}

// exchange performs one write+read on conn, poisoning the deadline if
// ctx is cancelled mid-flight.
func (c *client) exchange(ctx context.Context, conn net.Conn, payload, buf []byte) ([]byte, error) {
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	defer func() {
		close(stop)
		<-done
	}()

	if err := wire.WriteFrame(conn, payload); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(conn, buf)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return resp, nil
}

// ping round-trips one OpPing frame within timeout.
func (c *client) ping(ctx context.Context, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := c.roundTrip(ctx, []byte{wire.OpPing}, nil)
	if err != nil {
		return err
	}
	if len(resp) != 1 || resp[0] != wire.OpPong {
		return fmt.Errorf("ping %s: unexpected response opcode", c.addr)
	}
	return nil
}

// match round-trips one OpMatch frame and decodes the result.
func (c *client) match(ctx context.Context, req []byte, buf []byte) (wire.Result, error) {
	resp, err := c.roundTrip(ctx, req, buf)
	if err != nil {
		return wire.Result{}, err
	}
	if len(resp) == 0 {
		return wire.Result{}, fmt.Errorf("match %s: empty response frame", c.addr)
	}
	switch resp[0] {
	case wire.OpResult:
		return wire.DecodeResult(resp[1:])
	case wire.OpError:
		return wire.Result{}, fmt.Errorf("match %s: replica error: %s", c.addr, resp[1:])
	default:
		return wire.Result{}, fmt.Errorf("match %s: unexpected response opcode 0x%02x", c.addr, resp[0])
	}
}
