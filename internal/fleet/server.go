// Package fleet is the horizontal scale-out tier: N matchd replicas
// behind a thin router, with active health checks, hedged retries, and
// pull-based snapshot distribution from a content-addressed blob store.
//
// The pieces, each usable on its own:
//
//   - Server serves the internal wire protocol (internal/fleet/wire)
//     over any net.Listener, turning a serve.Server or serve.Registry
//     into a replica (matchd's -fleet-addr flag).
//   - Router fronts N replicas with HTTP POST /v1/match: consistent
//     hashing for domain-pinned queries, round-robin spread for
//     federated ones, ejection + half-open recovery on health-check
//     failure, and hedged retries after a p95-derived delay.
//   - Store/Puller/Coordinator move snapshots through a SHA-256
//     content-addressed blob directory: a coordinator stages a blob and
//     walks the fleet replica by replica (rolling, bounded version
//     skew), each replica pulling, verifying and canary-validating the
//     bytes through its existing hot-reload path.
package fleet

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/fleet/wire"
	"websyn/internal/match"
	"websyn/internal/serve"
)

// Backend answers routed match items: the one capability a replica
// exposes over the wire protocol. Both serve.Server (single-domain) and
// serve.Registry (multi-domain) implement it.
type Backend interface {
	DoItem(it match.Request, domains []string) serve.V1Result
}

// ServerStats is a point-in-time view of a wire server's counters.
type ServerStats struct {
	Conns    uint64 `json:"conns"`
	Requests uint64 `json:"requests"`
	Pings    uint64 `json:"pings"`
	Errors   uint64 `json:"errors"`
}

// Server serves the wire protocol for one backend. Connections are
// handled one frame at a time (the router pools connections and keeps
// at most one request in flight per connection).
type Server struct {
	backend Backend
	logf    func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	conns_   atomic.Uint64
	requests atomic.Uint64
	pings    atomic.Uint64
	errors   atomic.Uint64
}

// NewServer wraps a backend in a wire-protocol server. logf may be nil
// (log.Printf).
func NewServer(backend Backend, logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{backend: backend, logf: logf, conns: make(map[net.Conn]struct{})}
}

// Stats returns the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Conns:    s.conns_.Load(),
		Requests: s.requests.Load(),
		Pings:    s.pings.Load(),
		Errors:   s.errors.Load(),
	}
}

// Serve accepts connections on ln until ctx is cancelled or the
// listener fails, then closes the listener and every open connection.
// In-flight frames are cut off — wire requests are sub-millisecond and
// the router retries transport failures on another replica, so an
// abrupt close here never surfaces to a client.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	stop := context.AfterFunc(ctx, func() { s.Close() })
	defer stop()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.track(conn, true)
		go s.handleConn(conn)
	}
}

// Close stops the listener and all open connections.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		if s.closed {
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.conns_.Add(1)
		return
	}
	delete(s.conns, conn)
}

// writeTimeout bounds one response write; a client that stops reading
// must not pin a server goroutine forever.
const writeTimeout = 10 * time.Second

func (s *Server) handleConn(conn net.Conn) {
	defer s.track(conn, false)
	defer conn.Close()

	// Handshake: 4 magic bytes, before any frame.
	var magic [4]byte
	conn.SetReadDeadline(time.Now().Add(writeTimeout))
	if _, err := io.ReadFull(conn, magic[:]); err != nil || string(magic[:]) != wire.Magic {
		s.errors.Add(1)
		return
	}
	conn.SetReadDeadline(time.Time{})

	var buf, out []byte
	for {
		payload, err := wire.ReadFrame(conn, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && ctxNetTimeout(err) == nil {
				s.errors.Add(1)
			}
			return
		}
		buf = payload[:0]
		if len(payload) == 0 {
			s.reply(conn, []byte{wire.OpError}, "empty frame")
			return
		}
		switch payload[0] {
		case wire.OpPing:
			s.pings.Add(1)
			out = append(out[:0], wire.OpPong)
		case wire.OpMatch:
			req, domains, err := wire.DecodeRequest(payload[1:])
			if err != nil {
				s.errors.Add(1)
				s.reply(conn, []byte{wire.OpError}, err.Error())
				return
			}
			s.requests.Add(1)
			res := s.backend.DoItem(req, domains)
			out = append(out[:0], wire.OpResult)
			out = wire.AppendResult(out, wire.Result{Response: res.Response, Cached: res.Cached, Err: res.Error})
		default:
			s.errors.Add(1)
			s.reply(conn, []byte{wire.OpError}, "unknown opcode")
			return
		}
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := wire.WriteFrame(conn, out); err != nil {
			return
		}
		conn.SetWriteDeadline(time.Time{})
	}
}

// reply best-effort writes an error frame before the connection closes.
func (s *Server) reply(conn net.Conn, op []byte, msg string) {
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	_ = wire.WriteFrame(conn, append(op, msg...))
}

// ctxNetTimeout returns err when it is a net timeout, nil otherwise —
// a tiny classifying helper for the accept/read loops.
func ctxNetTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return err
	}
	return nil
}
