package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over replica indices. Domain-pinned
// queries hash to a point on the ring and walk clockwise, so the same
// (domain, query) lands on the same replica while it stays healthy —
// which keeps per-replica result caches hot — and shifts only 1/N of
// keys when a replica is ejected.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int
}

// vnodesPerReplica smooths the key distribution; 64 virtual nodes per
// replica keeps imbalance under ~15% for small fleets.
const vnodesPerReplica = 64

func newRing(n int) *ring {
	r := &ring{points: make([]ringPoint, 0, n*vnodesPerReplica)}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodesPerReplica; v++ {
			h := hashKey("replica-" + strconv.Itoa(i) + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// order walks the ring clockwise from key's hash and returns up to max
// distinct replicas for which ok(replica) is true, in preference order.
// The first entry is the primary; the rest are hedge/retry targets.
func (r *ring) order(key string, max int, ok func(int) bool) []int {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, max)
	seen := make(map[int]bool, max)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.replica] || !ok(p.replica) {
			continue
		}
		seen[p.replica] = true
		out = append(out, p.replica)
		if len(out) == max {
			break
		}
	}
	return out
}
