package fleet

import (
	"context"
	"net"
	"testing"

	"websyn/internal/match"
	"websyn/internal/serve"
)

// testSnapshot builds the movies fixture shared by the fleet tests:
// small, hand-built, deterministic.
func testSnapshot() *serve.Snapshot {
	d := match.NewDictionary()
	d.Add("Indiana Jones and the Kingdom of the Crystal Skull",
		match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("indy 4", match.Entry{EntityID: 0, Score: 0.8125, Source: "mined"})
	d.Add("indiana jones 4", match.Entry{EntityID: 0, Score: 0.75, Source: "mined"})
	d.Add("Madagascar: Escape 2 Africa", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	d.Add("madagascar 2", match.Entry{EntityID: 1, Score: 0.9, Source: "mined"})
	return &serve.Snapshot{
		Dataset: "Movies",
		MinSim:  0.55,
		Fuzzy:   d.NewFuzzyIndex(0.55).Packed(),
		Canonicals: []string{
			"Indiana Jones and the Kingdom of the Crystal Skull",
			"Madagascar: Escape 2 Africa",
		},
		Synonyms: map[string][]string{
			"indiana jones and the kingdom of the crystal skull": {"indy 4", "indiana jones 4"},
			"madagascar escape 2 africa":                         {"madagascar 2"},
		},
		Dict: d,
	}
}

// testSnapshotV2 is the "next publish" of the movies fixture: same
// entities plus a new mined synonym, so its bytes (and SHA) differ.
func testSnapshotV2() *serve.Snapshot {
	snap := testSnapshot()
	snap.Dict.Add("crystal skull", match.Entry{EntityID: 0, Score: 0.7, Source: "mined"})
	snap.Fuzzy = snap.Dict.NewFuzzyIndex(0.55).Packed()
	snap.Synonyms["indiana jones and the kingdom of the crystal skull"] = append(
		snap.Synonyms["indiana jones and the kingdom of the crystal skull"], "crystal skull")
	return snap
}

// testSnapshotCameras is a second vertical for multi-domain fleets.
func testSnapshotCameras() *serve.Snapshot {
	d := match.NewDictionary()
	d.Add("Canon PowerShot SD1100 IS", match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("powershot sd1100", match.Entry{EntityID: 0, Score: 0.9, Source: "mined"})
	d.Add("Nikon D90", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	d.Add("nikon d 90", match.Entry{EntityID: 1, Score: 0.85, Source: "mined"})
	return &serve.Snapshot{
		Dataset:    "Cameras",
		MinSim:     0.55,
		Fuzzy:      d.NewFuzzyIndex(0.55).Packed(),
		Canonicals: []string{"Canon PowerShot SD1100 IS", "Nikon D90"},
		Synonyms: map[string][]string{
			"canon powershot sd1100 is": {"powershot sd1100"},
			"nikon d90":                 {"nikon d 90"},
		},
		Dict: d,
	}
}

// startWireServer serves backend over the wire protocol on a loopback
// listener; returned is its address, the Server (for counters), and a
// kill func (idempotent).
func startWireServer(t *testing.T, backend Backend) (string, *Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend, t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, ln); err != nil {
			t.Logf("wire server: %v", err)
		}
	}()
	kill := func() {
		cancel()
		srv.Close()
		<-done
	}
	t.Cleanup(kill)
	return ln.Addr().String(), srv, kill
}

// testBackend is a single-domain backend over the movies fixture.
func testBackend() Backend {
	return serve.NewServer(testSnapshot(), serve.Config{})
}

func matchRequest(query, domain string) match.Request {
	return match.Request{Query: query, Domain: domain}
}
