package fleet

import (
	"context"
	"runtime"
	"testing"
	"time"

	"websyn/internal/fleet/wire"
	"websyn/internal/match"
	"websyn/internal/serve"
)

// slowBackend delays every answer — a healthy-but-slow replica.
type slowBackend struct {
	inner Backend
	delay time.Duration
}

func (s slowBackend) DoItem(it match.Request, domains []string) serve.V1Result {
	time.Sleep(s.delay)
	return s.inner.DoItem(it, domains)
}

// TestHedgedRequestWinsAndCancelsLoser sends one item to a slow primary
// with a fast backup behind a short hedge delay: the backup's answer
// must win quickly, the loser's in-flight attempt must be cancelled
// (its connection closed, never pooled), and no goroutine may leak.
func TestHedgedRequestWinsAndCancelsLoser(t *testing.T) {
	const slowDelay = 400 * time.Millisecond
	slowAddr, _, _ := startWireServer(t, slowBackend{inner: testBackend(), delay: slowDelay})
	fastAddr, fastSrv, _ := startWireServer(t, testBackend())

	rt, err := NewRouter(RouterConfig{
		Replicas:       []ReplicaSpec{{Addr: slowAddr}, {Addr: fastAddr}},
		HedgeDelay:     10 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := rt.replicas[0], rt.replicas[1]

	payload := wire.AppendRequest([]byte{wire.OpMatch}, match.Request{Query: "indy 4"}, nil)

	t0 := time.Now()
	res, err := rt.send(context.Background(), []*replica{slow, fast}, payload)
	took := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response == nil || len(res.Response.Matches) == 0 {
		t.Fatalf("hedged result empty: %+v", res)
	}
	if took >= slowDelay {
		t.Fatalf("hedged request took %v — waited out the slow primary", took)
	}
	if got := rt.hedges.Load(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := rt.hedgeWins.Load(); got != 1 {
		t.Errorf("hedgeWins = %d, want 1", got)
	}
	if got := fastSrv.Stats().Requests; got != 1 {
		t.Errorf("fast replica served %d requests, want 1", got)
	}

	// The losing attempt's connection was cancelled mid-flight: it must
	// have been closed, not returned to the idle pool, or a later
	// request would read the stale response.
	slow.client.mu.Lock()
	slowIdle := len(slow.client.idle)
	slow.client.mu.Unlock()
	if slowIdle != 0 {
		t.Errorf("cancelled connection returned to the idle pool (%d idle)", slowIdle)
	}

	// No goroutine leak: the watchdog, the losing attempt and the
	// server-side handler all unwind. An absolute NumGoroutine compare is
	// flaky alongside the rest of the suite, so measure growth instead:
	// run many more hedged requests — a leak (watchdog or attempt stuck
	// per request) grows linearly with the count, incidental runtime
	// goroutines don't.
	const extra = 10
	baseline := runtime.NumGoroutine()
	for i := 0; i < extra; i++ {
		if _, err := rt.send(context.Background(), []*replica{slow, fast}, payload); err != nil {
			t.Fatalf("follow-up send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines grew with hedged requests: baseline %d, now %d after %d more sends",
		baseline, runtime.NumGoroutine(), extra)
}

// TestRetryOnDeadReplica: a transport error moves to the next distinct
// replica immediately, without burning the hedge delay or failing the
// request.
func TestRetryOnDeadReplica(t *testing.T) {
	deadAddr, _, kill := startWireServer(t, testBackend())
	kill()
	liveAddr, _, _ := startWireServer(t, testBackend())

	rt, err := NewRouter(RouterConfig{
		Replicas:       []ReplicaSpec{{Addr: deadAddr}, {Addr: liveAddr}},
		HedgeDelay:     time.Second, // far beyond the test budget: only the retry path can win
		RequestTimeout: 2 * time.Second,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := wire.AppendRequest([]byte{wire.OpMatch}, match.Request{Query: "madagascar 2"}, nil)
	t0 := time.Now()
	res, err := rt.send(context.Background(), []*replica{rt.replicas[0], rt.replicas[1]}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took >= time.Second {
		t.Fatalf("retry took %v — waited for the hedge timer instead of retrying on error", took)
	}
	if res.Response == nil {
		t.Fatal("retry returned no response")
	}
	if got := rt.retries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}
