package fleet

import (
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestReplicaStateMachine drives reportResult deterministically: the
// consecutive-count thresholds, the half-open reset on flap, and the
// rule that an unstable replica is never re-admitted early.
func TestReplicaStateMachine(t *testing.T) {
	const failAfter, recoverAfter = 3, 2
	rep := newReplica("127.0.0.1:1", "", time.Second)
	report := func(ok bool) { rep.reportResult(ok, failAfter, recoverAfter) }

	// Failures below the threshold, interrupted by a success, never eject.
	report(false)
	report(false)
	report(true)
	report(false)
	report(false)
	if !rep.healthy.Load() {
		t.Fatal("ejected below the consecutive-failure threshold")
	}
	// The third consecutive failure ejects.
	report(false)
	if rep.healthy.Load() {
		t.Fatal("not ejected after 3 consecutive failures")
	}
	if got := rep.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}

	// Half-open: one probe success is not enough, and a flap resets the
	// streak — a replica that can't hold recoverAfter consecutive
	// successes stays out no matter how many total successes it racks up.
	for i := 0; i < 10; i++ {
		report(true)
		if rep.healthy.Load() {
			t.Fatalf("re-admitted after a single success (iteration %d)", i)
		}
		report(false)
	}
	// A held streak re-admits.
	report(true)
	report(true)
	if !rep.healthy.Load() {
		t.Fatal("not re-admitted after consecutive successes")
	}
}

// flapProxy is a TCP proxy that can be flipped down (connections
// refused, live pipes cut) and back up — a replica that flaps without
// the real backend ever dying.
type flapProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	up    bool
	conns map[net.Conn]struct{}
}

func newFlapProxy(t *testing.T, target string) *flapProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flapProxy{ln: ln, target: target, up: true, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close(); p.setUp(false) })
	return p
}

func (p *flapProxy) addr() string { return p.ln.Addr().String() }

func (p *flapProxy) setUp(up bool) {
	p.mu.Lock()
	p.up = up
	if !up {
		for c := range p.conns {
			c.Close()
		}
		p.conns = make(map[net.Conn]struct{})
	}
	p.mu.Unlock()
}

func (p *flapProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		up := p.up
		if up {
			p.conns[conn] = struct{}{}
		}
		p.mu.Unlock()
		if !up {
			conn.Close()
			continue
		}
		go p.pipe(conn)
	}
}

func (p *flapProxy) pipe(client net.Conn) {
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	p.conns[server] = struct{}{}
	p.mu.Unlock()
	go func() { io.Copy(server, client); server.Close(); client.Close() }()
	io.Copy(client, server)
	client.Close()
	server.Close()
}

// TestFlappingReplicaEjectionAndRecovery runs the full loop end to end:
// a replica goes dark, gets ejected, receives zero routed requests
// while ejected, then recovers only after holding consecutive probe
// successes.
func TestFlappingReplicaEjectionAndRecovery(t *testing.T) {
	flappyAddr, flappySrv, _ := startWireServer(t, testBackend())
	proxy := newFlapProxy(t, flappyAddr)
	stableAddr, _, _ := startWireServer(t, testBackend())

	const recoverAfter = 5
	const healthInterval = 30 * time.Millisecond
	rt, hs := startRouter(t, RouterConfig{
		Replicas:       []ReplicaSpec{{Addr: proxy.addr()}, {Addr: stableAddr}},
		HealthInterval: healthInterval,
		HealthTimeout:  200 * time.Millisecond,
		FailAfter:      2,
		RecoverAfter:   recoverAfter,
		RequestTimeout: time.Second,
		Logf:           t.Logf,
	})

	waitHealthy := func(addr string, want bool, within time.Duration) {
		t.Helper()
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) {
			if rt.HealthySnapshot()[addr] == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("replica %s did not become healthy=%v within %v", addr, want, within)
	}

	// Both replicas serve while healthy.
	if status, _ := postMatch(t, hs.URL, `{"query": "indy 4"}`); status != http.StatusOK {
		t.Fatalf("HTTP %d before flap", status)
	}

	// Down: the replica must be ejected.
	proxy.setUp(false)
	waitHealthy(proxy.addr(), false, 3*time.Second)

	// While ejected, no match request may reach it: the router routes
	// around it, and every request still succeeds.
	before := flappySrv.Stats().Requests
	for i := 0; i < 30; i++ {
		if status, _ := postMatch(t, hs.URL, `{"query": "madagascar 2"}`); status != http.StatusOK {
			t.Fatalf("request %d during ejection: HTTP %d", i, status)
		}
	}
	if after := flappySrv.Stats().Requests; after != before {
		t.Fatalf("ejected replica served %d match requests", after-before)
	}

	// Back up: recovery requires recoverAfter consecutive probe
	// successes, so well before that window the replica must still be
	// out (the first possible re-admission is recoverAfter intervals
	// away).
	proxy.setUp(true)
	time.Sleep(healthInterval)
	if rt.HealthySnapshot()[proxy.addr()] {
		t.Fatal("replica re-admitted before holding consecutive probe successes")
	}
	waitHealthy(proxy.addr(), true, 5*time.Second)

	// Re-admitted: traffic flows to it again.
	before = flappySrv.Stats().Requests
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && flappySrv.Stats().Requests == before {
		if status, _ := postMatch(t, hs.URL, `{"query": "indy 4"}`); status != http.StatusOK {
			t.Fatalf("HTTP %d after recovery", status)
		}
	}
	if flappySrv.Stats().Requests == before {
		t.Fatal("recovered replica never served a request again")
	}
}
