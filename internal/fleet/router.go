package fleet

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/fleet/wire"
	"websyn/internal/match"
	"websyn/internal/serve"
)

// ReplicaSpec names one matchd replica: its wire-protocol address and,
// optionally, its HTTP admin base URL (used by the snapshot
// coordinator; empty disables admin operations for the replica).
type ReplicaSpec struct {
	Addr     string
	AdminURL string
}

// RouterConfig tunes the fleet router. Zero values get defaults.
type RouterConfig struct {
	Replicas []ReplicaSpec

	// MaxBatch caps /v1/match batch size (default 256, matching serve).
	MaxBatch int
	// Workers caps concurrent in-flight items per batch (default
	// 4×GOMAXPROCS).
	Workers int

	// RequestTimeout bounds one item end-to-end across all attempts
	// (default 2s).
	RequestTimeout time.Duration
	// HedgeDelay is the wait before launching a backup attempt. Zero
	// means adaptive: track successful-attempt latency and hedge at
	// p95, clamped to [1ms, MaxHedgeDelay].
	HedgeDelay time.Duration
	// MaxHedgeDelay clamps the adaptive hedge delay (default 100ms).
	MaxHedgeDelay time.Duration
	// MaxAttempts caps distinct replicas tried per item — primary,
	// hedges and retries together (default 3).
	MaxAttempts int

	// HealthInterval is the active-probe period per replica (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 500ms).
	HealthTimeout time.Duration
	// FailAfter consecutive failures eject a replica (default 3).
	FailAfter int
	// RecoverAfter consecutive half-open probe successes re-admit an
	// ejected replica (default 2).
	RecoverAfter int

	// DialTimeout bounds one TCP dial (default 2s).
	DialTimeout time.Duration

	Logf func(format string, args ...any)
}

func (cfg RouterConfig) withDefaults() RouterConfig {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.MaxHedgeDelay <= 0 {
		cfg.MaxHedgeDelay = 100 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 500 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 2
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return cfg
}

// Router scatters /v1/match items across a fleet of matchd replicas.
// Domain-pinned items ride a consistent-hash ring (cache affinity);
// federated and domainless items round-robin, since every replica holds
// the full domain set. Failures eject replicas (see replica), slow
// primaries get hedged backups, transport errors retry on the next
// distinct replica — all within one per-item timeout.
type Router struct {
	cfg      RouterConfig
	replicas []*replica
	ring     *ring
	start    time.Time

	rr  atomic.Uint64 // round-robin cursor
	lat latWindow     // successful-attempt latency, drives adaptive hedge delay

	requests  atomic.Uint64
	queries   atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	retries   atomic.Uint64
	failures  atomic.Uint64

	lastErrLog atomic.Int64 // unix seconds of the last transport-error log line
}

// logAttemptErr reports one attempt's transport error, at most once per
// second — enough to diagnose a sick fleet without a log line per retry
// under load.
func (r *Router) logAttemptErr(rep *replica, err error) {
	now := time.Now().Unix()
	last := r.lastErrLog.Load()
	if now == last || !r.lastErrLog.CompareAndSwap(last, now) {
		return
	}
	r.cfg.Logf("fleet: attempt on %s failed: %v", rep.addr, err)
}

// NewRouter builds a router over the configured replicas.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: router needs at least one replica")
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	r := &Router{cfg: cfg, ring: newRing(len(cfg.Replicas)), start: time.Now()}
	for _, spec := range cfg.Replicas {
		if spec.Addr == "" {
			return nil, errors.New("fleet: replica with empty address")
		}
		if seen[spec.Addr] {
			return nil, fmt.Errorf("fleet: replica %s listed twice", spec.Addr)
		}
		seen[spec.Addr] = true
		r.replicas = append(r.replicas, newReplica(spec.Addr, spec.AdminURL, cfg.DialTimeout))
	}
	return r, nil
}

// Run drives the active health-check loops until ctx is cancelled, then
// closes every replica's connection pool.
func (r *Router) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range r.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			r.healthLoop(ctx, rep)
		}(rep)
	}
	wg.Wait()
	for _, rep := range r.replicas {
		rep.client.close()
	}
}

// Mount registers the router's HTTP API: POST /v1/match and
// POST /v2/match (same request grammar as a replica; v2 additionally
// returns attribute predicates), GET /healthz (200 while ≥1 replica is
// healthy), GET /statsz.
func (r *Router) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/match", r.handleV1Match)
	mux.HandleFunc("POST /v2/match", r.handleV2Match)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /statsz", r.handleStatsz)
}

// errNoReplica is the infra failure when every attempt was exhausted.
var errNoReplica = errors.New("fleet: no replica answered")

func (r *Router) handleV1Match(w http.ResponseWriter, req *http.Request) {
	r.handleMatch(w, req, false)
}

// handleV2Match is the v1 scatter with the rewrite stage switched on:
// the router stamps Rewrite on every item before it hits the wire, so
// replicas run attribute extraction and the merged results carry
// predicates. Clients cannot set the flag themselves (it has no JSON
// tag) — the endpoint is the API version.
func (r *Router) handleV2Match(w http.ResponseWriter, req *http.Request) {
	r.handleMatch(w, req, true)
}

func (r *Router) handleMatch(w http.ResponseWriter, req *http.Request, rewrite bool) {
	v1req, ok := serve.DecodeV1(w, req, serve.V1BodyLimit(r.cfg.MaxBatch))
	if !ok {
		return
	}
	if v1req.Domain != "" && len(v1req.Domains) > 0 {
		serve.WriteV1Error(w, http.StatusBadRequest, "domain and domains are mutually exclusive")
		return
	}
	items, status, msg := serve.V1Items(v1req, r.cfg.MaxBatch)
	if msg != "" {
		serve.WriteV1Error(w, status, "%s", msg)
		return
	}
	if rewrite {
		for i := range items {
			items[i].Rewrite = true
		}
	}

	r.requests.Add(1)
	r.queries.Add(uint64(len(items)))
	results := make([]serve.V1Result, len(items))
	var infraErr atomic.Pointer[error]
	r.runPool(len(items), func(i int) {
		res, err := r.doItem(req.Context(), items[i], v1req.Domains)
		if err != nil {
			infraErr.CompareAndSwap(nil, &err)
			return
		}
		results[i] = res
	})
	// Per-item semantic errors (empty query, unknown domain) ride inside
	// results with a 200, exactly like a replica would answer. An infra
	// failure — every routable replica down or timed out — is the
	// router's own fault domain and must be loud: 503, so load gates and
	// clients see a failed request, not a quietly empty result.
	if errp := infraErr.Load(); errp != nil {
		r.failures.Add(1)
		serve.WriteV1Error(w, http.StatusServiceUnavailable, "%s", (*errp).Error())
		return
	}
	writeJSON(w, serve.V1Response{Count: len(results), Results: results})
}

// runPool runs fn(0..n-1) on up to cfg.Workers goroutines.
func (r *Router) runPool(n int, fn func(int)) {
	workers := r.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// targetsFor picks up to MaxAttempts distinct replicas for one item, in
// preference order. Domain-pinned items use the consistent-hash ring so
// repeats of the same (domain, query) hit the same replica's request
// cache; everything else round-robins. When no replica is marked
// healthy the router fails static — it routes across the full set
// anyway, because a guess beats a guaranteed 503 while health state
// catches up with reality.
func (r *Router) targetsFor(it match.Request, domains []string) []*replica {
	healthy := func(i int) bool { return r.replicas[i].healthy.Load() }
	var idx []int
	if it.Domain != "" && len(domains) == 0 {
		key := it.Domain + "\x00" + it.Query
		idx = r.ring.order(key, r.cfg.MaxAttempts, healthy)
		if len(idx) == 0 {
			idx = r.ring.order(key, r.cfg.MaxAttempts, func(int) bool { return true })
		}
	} else {
		start := int(r.rr.Add(1))
		for pass := 0; pass < 2 && len(idx) == 0; pass++ {
			for i := 0; i < len(r.replicas) && len(idx) < r.cfg.MaxAttempts; i++ {
				j := (start + i) % len(r.replicas)
				if pass == 0 && !healthy(j) {
					continue
				}
				idx = append(idx, j)
			}
		}
	}
	out := make([]*replica, len(idx))
	for i, j := range idx {
		out[i] = r.replicas[j]
	}
	return out
}

// doItem answers one item via the fleet. The returned error is an infra
// failure (attempt exhaustion, timeout) — semantic failures come back
// inside the V1Result.
func (r *Router) doItem(ctx context.Context, it match.Request, domains []string) (serve.V1Result, error) {
	targets := r.targetsFor(it, domains)
	if len(targets) == 0 {
		return serve.V1Result{}, errNoReplica
	}
	payload := wire.AppendRequest([]byte{wire.OpMatch}, it, domains)
	res, err := r.send(ctx, targets, payload)
	if err != nil {
		return serve.V1Result{}, err
	}
	return serve.V1Result{Response: res.Response, Cached: res.Cached, Error: res.Err}, nil
}

// send runs the hedged attempt loop for one item: launch the primary;
// on transport error launch the next target immediately (retry); when
// the hedge delay passes with no answer, launch the next target anyway
// (hedge). First success wins and cancels every other in-flight
// attempt via its per-attempt context.
func (r *Router) send(ctx context.Context, targets []*replica, payload []byte) (wire.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()

	type outcome struct {
		res wire.Result
		err error
		idx int
		dur time.Duration
	}
	resc := make(chan outcome, len(targets))
	cancels := make([]context.CancelFunc, 0, len(targets))
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	next, pending := 0, 0
	launch := func() {
		rep := targets[next]
		idx := next
		next++
		pending++
		actx, acancel := context.WithCancel(ctx)
		cancels = append(cancels, acancel)
		go func() {
			t0 := time.Now()
			res, err := rep.client.match(actx, payload, nil)
			if actx.Err() == nil || err == nil {
				rep.reportResult(err == nil, r.cfg.FailAfter, r.cfg.RecoverAfter)
				if err != nil {
					r.logAttemptErr(rep, err)
				}
			}
			resc <- outcome{res, err, idx, time.Since(t0)}
		}()
	}
	launch()

	hedge := time.NewTimer(r.hedgeDelay())
	defer hedge.Stop()

	var lastErr error
	for {
		select {
		case out := <-resc:
			pending--
			if out.err == nil {
				r.lat.record(out.dur)
				if out.idx > 0 {
					r.hedgeWins.Add(1)
				}
				return out.res, nil
			}
			lastErr = out.err
			if ctx.Err() != nil {
				return wire.Result{}, fmt.Errorf("%w: %v", errNoReplica, lastErr)
			}
			// Transport failure: move to the next distinct replica
			// right away rather than waiting out the hedge timer.
			if next < len(targets) {
				r.retries.Add(1)
				launch()
			} else if pending == 0 {
				return wire.Result{}, fmt.Errorf("%w: %v", errNoReplica, lastErr)
			}
		case <-hedge.C:
			if next < len(targets) {
				r.hedges.Add(1)
				launch()
				// Re-arm so a still-silent fleet can hedge onto the
				// next target after another delay.
				hedge.Reset(r.hedgeDelay())
			}
		case <-ctx.Done():
			if lastErr != nil {
				return wire.Result{}, fmt.Errorf("%w: %v", errNoReplica, lastErr)
			}
			return wire.Result{}, fmt.Errorf("fleet: request timed out: %w", ctx.Err())
		}
	}
}

// hedgeDelay returns the configured fixed delay, or the adaptive
// p95-derived one.
func (r *Router) hedgeDelay() time.Duration {
	if r.cfg.HedgeDelay > 0 {
		return r.cfg.HedgeDelay
	}
	p95 := r.lat.p95()
	if p95 <= 0 {
		// Not enough samples yet: hedge late rather than double load on
		// a cold fleet.
		return r.cfg.MaxHedgeDelay
	}
	if p95 < time.Millisecond {
		return time.Millisecond
	}
	if p95 > r.cfg.MaxHedgeDelay {
		return r.cfg.MaxHedgeDelay
	}
	return p95
}

// latWindow is a fixed-size sliding window of attempt latencies.
type latWindow struct {
	mu  sync.Mutex
	buf [256]time.Duration
	n   int // filled entries
	idx int // next write position
}

func (w *latWindow) record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.idx] = d
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// p95 returns the 95th-percentile latency, or 0 with fewer than 16
// samples.
func (w *latWindow) p95() time.Duration {
	w.mu.Lock()
	n := w.n
	tmp := make([]time.Duration, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n < 16 {
		return 0
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	return tmp[(n*95)/100]
}

// ReplicaStatus is one replica's health as reported by GET /statsz.
type ReplicaStatus struct {
	Addr      string `json:"addr"`
	AdminURL  string `json:"admin_url,omitempty"`
	Healthy   bool   `json:"healthy"`
	Ejections uint64 `json:"ejections"`
}

// RouterStats is the JSON shape of the router's GET /statsz.
type RouterStats struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Replicas      []ReplicaStatus `json:"replicas"`
	Requests      uint64          `json:"requests"`
	Queries       uint64          `json:"queries"`
	Hedges        uint64          `json:"hedges"`
	HedgeWins     uint64          `json:"hedge_wins"`
	Retries       uint64          `json:"retries"`
	Failures      uint64          `json:"failures"`
	HedgeDelayMS  float64         `json:"hedge_delay_ms"`
}

// Stats returns a point-in-time view of the router.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Requests:      r.requests.Load(),
		Queries:       r.queries.Load(),
		Hedges:        r.hedges.Load(),
		HedgeWins:     r.hedgeWins.Load(),
		Retries:       r.retries.Load(),
		Failures:      r.failures.Load(),
		HedgeDelayMS:  float64(r.hedgeDelay().Nanoseconds()) / 1e6,
	}
	for _, rep := range r.replicas {
		st.Replicas = append(st.Replicas, ReplicaStatus{
			Addr:      rep.addr,
			AdminURL:  rep.adminURL,
			Healthy:   rep.healthy.Load(),
			Ejections: rep.ejections.Load(),
		})
	}
	return st
}

// AdminURLs returns the non-empty replica admin URLs in replica order —
// the coordinator's default target set.
func (r *Router) AdminURLs() []string {
	var out []string
	for _, rep := range r.replicas {
		if rep.adminURL != "" {
			out = append(out, rep.adminURL)
		}
	}
	return out
}

// HealthySnapshot reports each replica's current health keyed by
// address (used by tests and /healthz).
func (r *Router) HealthySnapshot() map[string]bool {
	out := make(map[string]bool, len(r.replicas))
	for _, rep := range r.replicas {
		out[rep.addr] = rep.healthy.Load()
	}
	return out
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	for _, rep := range r.replicas {
		if rep.healthy.Load() {
			writeText(w, "ok\n")
			return
		}
	}
	http.Error(w, "no healthy replica", http.StatusServiceUnavailable)
}

func (r *Router) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, r.Stats())
}
