package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Store is a content-addressed snapshot blob directory — the
// distribution point between whoever publishes snapshots (the miner, a
// deploy pipeline, the coordinator) and the replicas that pull them.
//
// Layout:
//
//	<dir>/<sha256>.snap     — immutable snapshot bytes, named by content
//	<dir>/<domain>.current  — pointer file: the hex SHA a replica of
//	                          that domain should be serving
//
// Blobs are immutable once written (same name ⇒ same bytes), so every
// operation is an atomic rename and a reader can never observe a
// half-written snapshot. Pointer flips are the only mutation.
type Store struct {
	Dir string
}

// validSHA reports whether s looks like a lowercase hex SHA-256.
func validSHA(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// blobPath is the content-addressed file for sha.
func (s *Store) blobPath(sha string) string {
	return filepath.Join(s.Dir, sha+".snap")
}

// currentPath is the pointer file for a domain.
func (s *Store) currentPath(domain string) string {
	return filepath.Join(s.Dir, domain+".current")
}

func validBlobDomain(domain string) error {
	if domain == "" || strings.ContainsAny(domain, "/\\ \t\n") || domain == "." || domain == ".." {
		return fmt.Errorf("fleet: invalid blob domain %q", domain)
	}
	return nil
}

// Stage copies src into the store under its content hash and returns
// the hex SHA-256. It does NOT move any domain pointer — a staged blob
// is invisible to replicas until SetCurrent names it. Re-staging
// identical bytes is a cheap no-op.
func (s *Store) Stage(src string) (string, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", fmt.Errorf("fleet: blob dir: %w", err)
	}
	in, err := os.Open(src)
	if err != nil {
		return "", fmt.Errorf("fleet: stage: %w", err)
	}
	defer in.Close()

	tmp, err := os.CreateTemp(s.Dir, ".stage-*")
	if err != nil {
		return "", fmt.Errorf("fleet: stage: %w", err)
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	if _, err := io.Copy(io.MultiWriter(tmp, h), in); err != nil {
		tmp.Close()
		return "", fmt.Errorf("fleet: stage: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("fleet: stage: %w", err)
	}
	sha := hex.EncodeToString(h.Sum(nil))
	dst := s.blobPath(sha)
	if _, err := os.Stat(dst); err == nil {
		return sha, nil // identical bytes already staged
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", fmt.Errorf("fleet: stage: %w", err)
	}
	return sha, nil
}

// SetCurrent atomically points a domain at a staged blob.
func (s *Store) SetCurrent(domain, sha string) error {
	if err := validBlobDomain(domain); err != nil {
		return err
	}
	if !validSHA(sha) {
		return fmt.Errorf("fleet: bad sha %q", sha)
	}
	if _, err := os.Stat(s.blobPath(sha)); err != nil {
		return fmt.Errorf("fleet: set current %s: blob not staged: %w", domain, err)
	}
	tmp, err := os.CreateTemp(s.Dir, ".current-*")
	if err != nil {
		return fmt.Errorf("fleet: set current: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(sha + "\n"); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: set current: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: set current: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.currentPath(domain)); err != nil {
		return fmt.Errorf("fleet: set current: %w", err)
	}
	return nil
}

// Publish stages src and flips the domain pointer to it in one call —
// the non-rolling publish used to seed a blob store. Returns the blob's
// SHA.
func (s *Store) Publish(domain, src string) (string, error) {
	sha, err := s.Stage(src)
	if err != nil {
		return "", err
	}
	if err := s.SetCurrent(domain, sha); err != nil {
		return "", err
	}
	return sha, nil
}

// Current returns the SHA a domain's pointer names, or "" when the
// domain has no pointer yet.
func (s *Store) Current(domain string) (string, error) {
	if err := validBlobDomain(domain); err != nil {
		return "", err
	}
	b, err := os.ReadFile(s.currentPath(domain))
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("fleet: current %s: %w", domain, err)
	}
	sha := strings.TrimSpace(string(b))
	if !validSHA(sha) {
		return "", fmt.Errorf("fleet: current %s: corrupt pointer %q", domain, sha)
	}
	return sha, nil
}

// Fetch copies the blob named sha to dest, verifying the bytes hash to
// sha while copying, and installs it with an atomic rename. A blob that
// fails verification (torn write, disk corruption) never reaches dest.
func (s *Store) Fetch(sha, dest string) error {
	if !validSHA(sha) {
		return fmt.Errorf("fleet: bad sha %q", sha)
	}
	in, err := os.Open(s.blobPath(sha))
	if err != nil {
		return fmt.Errorf("fleet: fetch %.12s: %w", sha, err)
	}
	defer in.Close()
	tmp, err := os.CreateTemp(filepath.Dir(dest), ".fetch-*")
	if err != nil {
		return fmt.Errorf("fleet: fetch %.12s: %w", sha, err)
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	if _, err := io.Copy(io.MultiWriter(tmp, h), in); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: fetch %.12s: %w", sha, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: fetch %.12s: %w", sha, err)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != sha {
		return fmt.Errorf("fleet: fetch %.12s: content hash mismatch (got %.12s)", sha, got)
	}
	if err := os.Rename(tmp.Name(), dest); err != nil {
		return fmt.Errorf("fleet: fetch %.12s: %w", sha, err)
	}
	return nil
}
