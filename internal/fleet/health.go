package fleet

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// replica is one routable backend plus its health state machine.
//
// States: healthy <-> ejected. FailAfter consecutive failures (active
// probe or passive request feedback) eject the replica; while ejected
// only half-open probes touch it, and RecoverAfter consecutive probe
// successes re-admit it. A flap during half-open resets the success
// count, so an unstable replica stays out until it holds steady.
type replica struct {
	addr     string
	adminURL string
	client   *client

	healthy atomic.Bool

	mu         sync.Mutex
	consecFail int
	consecOK   int

	ejections atomic.Uint64
}

func newReplica(addr, adminURL string, dialTimeout time.Duration) *replica {
	rep := &replica{addr: addr, adminURL: adminURL, client: newClient(addr, dialTimeout)}
	rep.healthy.Store(true)
	return rep
}

// reportResult feeds one observation (active probe or passive request
// outcome) into the state machine. failAfter/recoverAfter are the
// consecutive-count thresholds.
func (rep *replica) reportResult(ok bool, failAfter, recoverAfter int) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if ok {
		rep.consecFail = 0
		if rep.healthy.Load() {
			return
		}
		rep.consecOK++
		if rep.consecOK >= recoverAfter {
			rep.consecOK = 0
			rep.healthy.Store(true)
		}
		return
	}
	rep.consecOK = 0
	if !rep.healthy.Load() {
		return
	}
	rep.consecFail++
	if rep.consecFail >= failAfter {
		rep.consecFail = 0
		rep.healthy.Store(false)
		rep.ejections.Add(1)
		// Pooled connections to a bad replica are suspect; recovery
		// starts from fresh dials.
		rep.client.dropIdle()
	}
}

// healthLoop actively probes one replica until ctx is cancelled. A
// healthy replica is pinged every interval as a liveness floor (a quiet
// fleet still detects death); an ejected one is probed at the same
// cadence in half-open mode.
func (r *Router) healthLoop(ctx context.Context, rep *replica) {
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		wasHealthy := rep.healthy.Load()
		err := rep.client.ping(ctx, r.cfg.HealthTimeout)
		if ctx.Err() != nil {
			return
		}
		rep.reportResult(err == nil, r.cfg.FailAfter, r.cfg.RecoverAfter)
		if nowHealthy := rep.healthy.Load(); nowHealthy != wasHealthy {
			if nowHealthy {
				r.cfg.Logf("fleet: replica %s recovered, re-admitted", rep.addr)
			} else {
				r.cfg.Logf("fleet: replica %s ejected (health check: %v)", rep.addr, err)
			}
		}
	}
}
