package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"websyn/internal/loadtest"
	"websyn/internal/serve"
	"websyn/internal/serve/reload"
)

// newFleetRouter builds a router over already-started wire replicas with
// chaos-friendly health settings: fast probes, quick ejection.
func newFleetRouter(t *testing.T, specs []ReplicaSpec) (*Router, *httptest.Server) {
	t.Helper()
	return startRouter(t, RouterConfig{
		Replicas:       specs,
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  250 * time.Millisecond,
		FailAfter:      2,
		RecoverAfter:   2,
		RequestTimeout: 2 * time.Second,
		Logf:           t.Logf,
	})
}

// TestChaosReplicaKillZeroFailures is the in-process version of the CI
// fleet-smoke gate: three multi-domain replicas behind the router, a
// mixed workload in flight, one replica killed cold at the halfway
// mark. Health ejection plus transport-error retry must absorb the
// kill with zero failed requests.
func TestChaosReplicaKillZeroFailures(t *testing.T) {
	movies, cameras := testSnapshot(), testSnapshotCameras()

	var specs []ReplicaSpec
	var kills []func()
	for i := 0; i < 3; i++ {
		reg := serve.NewRegistry(serve.Config{})
		if _, err := reg.Add("movies", testSnapshot(), serve.SnapshotMeta{}); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Add("cameras", testSnapshotCameras(), serve.SnapshotMeta{}); err != nil {
			t.Fatal(err)
		}
		addr, _, kill := startWireServer(t, reg)
		specs = append(specs, ReplicaSpec{Addr: addr})
		kills = append(kills, kill)
	}
	_, hs := newFleetRouter(t, specs)

	w, err := loadtest.FromSnapshots(map[string]*serve.Snapshot{
		"movies": movies, "cameras": cameras,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := loadtest.Run(context.Background(), w, loadtest.Options{
		URL:         hs.URL,
		QPS:         300,
		Duration:    2 * time.Second,
		Concurrency: 8,
		Midway: func() {
			t.Log("chaos: killing replica 0")
			kills[0]()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 100 {
		t.Fatalf("only %d requests sent — run too small to prove anything", rep.Requests)
	}
	if rep.Failed() {
		t.Fatalf("replica kill leaked failures: %d transport errors, %d non-200 of %d requests",
			rep.Errors, rep.Non200, rep.Requests)
	}
	t.Logf("chaos: %d requests, 0 failures, p99 %.1fms", rep.Requests, rep.Latency.P99)
}

// chaosReplica is one full replica for the rolling-publish test: wire
// serving, admin HTTP (snapshot provenance + pull), reloader, puller.
type chaosReplica struct {
	spec  ReplicaSpec
	admin *httptest.Server
}

func newChaosReplica(t *testing.T, store *Store, sha string) *chaosReplica {
	t.Helper()
	spool := filepath.Join(t.TempDir(), "movies.snap")
	if err := store.Fetch(sha, spool); err != nil {
		t.Fatal(err)
	}
	loaded, gotSHA, err := serve.ReadSnapshotFileHashed(spool)
	if err != nil {
		t.Fatal(err)
	}
	if gotSHA != sha {
		t.Fatalf("boot fetch hash mismatch: %.12s != %.12s", gotSHA, sha)
	}
	reg := serve.NewRegistry(serve.Config{})
	srv, err := reg.Add("movies", loaded, serve.SnapshotMeta{Path: spool, SHA256: sha})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := reload.New(srv, reload.Config{Path: spool, BootSHA: sha, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	p := &Puller{Store: store, Domain: "movies", Reloader: rl, Logf: t.Logf}
	p.SetBootSHA(sha)
	pullers := NewPullers()
	if err := pullers.Add(p); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	reg.Mount(mux)
	pullers.Mount(mux)
	admin := httptest.NewServer(mux)
	t.Cleanup(admin.Close)

	addr, _, _ := startWireServer(t, reg)
	return &chaosReplica{
		spec:  ReplicaSpec{Addr: addr, AdminURL: admin.URL},
		admin: admin,
	}
}

// TestChaosRollingPublishZeroDowntime publishes a new snapshot across a
// three-replica fleet while traffic flows: zero failed requests, full
// convergence on the new SHA, and at no sampled instant does any
// replica serve a version outside {old, new} — skew bounded to one.
func TestChaosRollingPublishZeroDowntime(t *testing.T) {
	store := &Store{Dir: filepath.Join(t.TempDir(), "blobs")}

	v1path := filepath.Join(t.TempDir(), "v1.snap")
	if err := testSnapshot().WriteFile(v1path); err != nil {
		t.Fatal(err)
	}
	v1sha, err := store.Publish("movies", v1path)
	if err != nil {
		t.Fatal(err)
	}
	v2path := filepath.Join(t.TempDir(), "v2.snap")
	if err := testSnapshotV2().WriteFile(v2path); err != nil {
		t.Fatal(err)
	}

	var replicas []*chaosReplica
	var specs []ReplicaSpec
	var adminURLs []string
	for i := 0; i < 3; i++ {
		r := newChaosReplica(t, store, v1sha)
		replicas = append(replicas, r)
		specs = append(specs, r.spec)
		adminURLs = append(adminURLs, r.admin.URL)
	}
	_, hs := newFleetRouter(t, specs)

	coord := &Coordinator{
		Store:       store,
		Replicas:    adminURLs,
		StepTimeout: 10 * time.Second,
		Poll:        20 * time.Millisecond,
		Logf:        t.Logf,
	}

	// Sample every replica's serving SHA throughout the run; any value
	// outside {v1, v2} (or a sampling error) breaks the skew bound.
	sampleCtx, stopSampling := context.WithCancel(context.Background())
	type sample struct {
		admin string
		sha   string
		err   error
	}
	var samples []sample
	samplingDone := make(chan struct{})
	go func() {
		defer close(samplingDone)
		tick := time.NewTicker(15 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
				for _, admin := range adminURLs {
					sha, err := coord.servingSHA(sampleCtx, admin, "movies")
					samples = append(samples, sample{admin: admin, sha: sha, err: err})
				}
			}
		}
	}()

	w, err := loadtest.FromSnapshots(map[string]*serve.Snapshot{"movies": testSnapshot()}, 11)
	if err != nil {
		t.Fatal(err)
	}
	var pubRep PublishReport
	pubErr := make(chan error, 1)
	rep, err := loadtest.Run(context.Background(), w, loadtest.Options{
		URL:         hs.URL,
		QPS:         300,
		Duration:    2 * time.Second,
		Concurrency: 8,
		Midway: func() {
			var perr error
			pubRep, perr = coord.Publish(context.Background(), "movies", v2path)
			pubErr <- perr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if perr := <-pubErr; perr != nil {
		t.Fatalf("rolling publish failed: %v (report %+v)", perr, pubRep)
	}
	stopSampling()
	<-samplingDone

	v2sha := pubRep.SHA
	if v2sha == v1sha || !pubRep.Flipped || len(pubRep.Rolled) != 3 {
		t.Fatalf("publish report off: %+v", pubRep)
	}
	if rep.Failed() {
		t.Fatalf("rolling publish leaked failures: %d transport errors, %d non-200 of %d requests",
			rep.Errors, rep.Non200, rep.Requests)
	}

	// Skew bound: every successful sample is v1 or v2, never a third
	// version or an empty serving surface.
	checked := 0
	for _, s := range samples {
		if s.err != nil {
			// Sampling races the test shutdown; a transport error after
			// cancel is noise, mid-run it would also have failed loadtest.
			continue
		}
		if s.sha != v1sha && s.sha != v2sha {
			t.Fatalf("replica %s served unexpected sha %.12s during publish", s.admin, s.sha)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d usable samples — sampler never observed the rollout", checked)
	}

	// Full convergence: every replica ends on v2, and the pointer names it.
	for _, r := range replicas {
		sha, err := coord.servingSHA(context.Background(), r.admin.URL, "movies")
		if err != nil {
			t.Fatal(err)
		}
		if sha != v2sha {
			t.Fatalf("replica %s still serving %.12s, want %.12s", r.admin.URL, sha, v2sha)
		}
	}
	if cur, _ := store.Current("movies"); cur != v2sha {
		t.Fatalf("pointer %.12s, want %.12s", cur, v2sha)
	}
	t.Logf("rolling publish: %d requests, 0 failures, %d skew samples clean, fleet on %.12s",
		rep.Requests, checked, v2sha)
}
