package fleet

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/serve/reload"
)

// Puller keeps one domain of one replica converged on its blob-store
// pointer. It fetches the pointed-at blob (hash-verified) into the
// reloader's watched spool path and triggers a reload, which reuses the
// whole existing safety ladder for free: parse validation, canary
// queries, atomic generation install, reject-keeps-old-serving.
//
// Distribution is pull-based: the publisher only moves a pointer file,
// and every replica converges on its own schedule. A replica that was
// down during a publish catches up on its next sync — there is no
// publish-time fan-out to miss.
type Puller struct {
	Store    *Store
	Domain   string
	Reloader *reload.Reloader
	// Interval is the pointer poll period for Run (default 2s).
	Interval time.Duration
	Logf     func(format string, args ...any)

	mu      sync.Mutex // serializes pulls and guards lastSHA
	lastSHA string     // last blob SHA fetched and offered to the reloader

	pulls    atomic.Uint64
	fetches  atomic.Uint64
	failures atomic.Uint64
	lastErr  atomic.Pointer[string]
}

func (p *Puller) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// SetBootSHA records the SHA the replica booted on, so the first sync
// against an unchanged pointer is a no-op instead of a redundant fetch.
func (p *Puller) SetBootSHA(sha string) {
	p.mu.Lock()
	p.lastSHA = sha
	p.mu.Unlock()
}

// Sync converges on the domain's current pointer: a no-op when the
// pointer matches the last pulled SHA, a fetch+reload otherwise.
func (p *Puller) Sync() (swapped bool, err error) {
	sha, err := p.Store.Current(p.Domain)
	if err != nil {
		return false, p.fail(err)
	}
	if sha == "" {
		return false, nil // nothing published yet
	}
	return p.PullSHA(sha)
}

// PullSHA fetches one specific blob and offers it to the reloader. The
// SHA is remembered even when the reloader rejects it (bad parse,
// canary failure): re-offering known-bad bytes every tick would burn a
// build per poll, and the reloader's status already carries the
// rejection. A new publish changes the SHA and clears the jam.
func (p *Puller) PullSHA(sha string) (swapped bool, err error) {
	if !validSHA(sha) {
		return false, p.fail(fmt.Errorf("fleet: pull %s: bad sha %q", p.Domain, sha))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pulls.Add(1)
	if sha == p.lastSHA {
		return false, nil
	}
	if err := p.Store.Fetch(sha, p.Reloader.Path()); err != nil {
		return false, p.fail(err)
	}
	p.fetches.Add(1)
	p.lastSHA = sha
	swapped, err = p.Reloader.Reload(false)
	if err != nil {
		return false, p.fail(fmt.Errorf("fleet: pull %s %.12s: %w", p.Domain, sha, err))
	}
	if swapped {
		p.lastErr.Store(nil)
		p.logf("fleet: %s pulled %.12s and swapped", p.Domain, sha)
	}
	return swapped, nil
}

func (p *Puller) fail(err error) error {
	p.failures.Add(1)
	msg := err.Error()
	p.lastErr.Store(&msg)
	return err
}

// Run polls the domain pointer every Interval until ctx is cancelled.
func (p *Puller) Run(ctx context.Context) {
	interval := p.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := p.Sync(); err != nil {
				p.logf("fleet: pull %s: %v", p.Domain, err)
			}
		}
	}
}

// PullStatus is one puller's JSON status.
type PullStatus struct {
	Domain   string `json:"domain"`
	LastSHA  string `json:"last_sha,omitempty"`
	Pulls    uint64 `json:"pulls"`
	Fetches  uint64 `json:"fetches"`
	Failures uint64 `json:"failures"`
	LastErr  string `json:"last_error,omitempty"`
}

// Status returns a point-in-time view of the puller.
func (p *Puller) Status() PullStatus {
	p.mu.Lock()
	sha := p.lastSHA
	p.mu.Unlock()
	st := PullStatus{
		Domain:   p.Domain,
		LastSHA:  sha,
		Pulls:    p.pulls.Load(),
		Fetches:  p.fetches.Load(),
		Failures: p.failures.Load(),
	}
	if msg := p.lastErr.Load(); msg != nil {
		st.LastErr = *msg
	}
	return st
}

// Pullers is a replica's set of per-domain pullers plus their admin
// HTTP surface — the receiving end of a coordinator-driven rolling
// publish.
type Pullers struct {
	byDomain map[string]*Puller
	names    []string
	def      string
}

// NewPullers groups pullers; the first added is the ?domain= default.
func NewPullers() *Pullers {
	return &Pullers{byDomain: make(map[string]*Puller)}
}

// Add registers one domain's puller.
func (ps *Pullers) Add(p *Puller) error {
	if _, dup := ps.byDomain[p.Domain]; dup {
		return fmt.Errorf("fleet: puller for domain %q registered twice", p.Domain)
	}
	ps.byDomain[p.Domain] = p
	ps.names = append(ps.names, p.Domain)
	sort.Strings(ps.names)
	if ps.def == "" {
		ps.def = p.Domain
	}
	return nil
}

// Run drives every puller's poll loop until ctx is cancelled.
func (ps *Pullers) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range ps.byDomain {
		wg.Add(1)
		go func(p *Puller) {
			defer wg.Done()
			p.Run(ctx)
		}(p)
	}
	wg.Wait()
}

// resolve picks the puller for an optional ?domain= query parameter.
func (ps *Pullers) resolve(w http.ResponseWriter, r *http.Request) *Puller {
	name := r.URL.Query().Get("domain")
	if name == "" {
		name = ps.def
	}
	p, ok := ps.byDomain[name]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown domain %q", name), http.StatusNotFound)
		return nil
	}
	return p
}

// pullResult is the JSON shape of POST /admin/pull.
type pullResult struct {
	Domain  string `json:"domain"`
	SHA     string `json:"sha"`
	Swapped bool   `json:"swapped"`
	Error   string `json:"error,omitempty"`
}

// Mount registers the pull admin surface:
//
//	POST /admin/pull?domain=<d>&sha=<hex>  — fetch that blob and reload
//	                                         now; no sha syncs to the
//	                                         domain's current pointer
//	GET  /admin/pull/status                — all pullers' counters
func (ps *Pullers) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /admin/pull", func(w http.ResponseWriter, r *http.Request) {
		p := ps.resolve(w, r)
		if p == nil {
			return
		}
		sha := r.URL.Query().Get("sha")
		var swapped bool
		var err error
		if sha == "" {
			swapped, err = p.Sync()
			sha = p.Status().LastSHA
		} else {
			swapped, err = p.PullSHA(sha)
		}
		out := pullResult{Domain: p.Domain, SHA: sha, Swapped: swapped}
		if err != nil {
			out.Error = err.Error()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			writeJSONBody(w, out)
			return
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /admin/pull/status", func(w http.ResponseWriter, _ *http.Request) {
		out := make(map[string]PullStatus, len(ps.names))
		for name, p := range ps.byDomain {
			out[name] = p.Status()
		}
		writeJSON(w, out)
	})
}
