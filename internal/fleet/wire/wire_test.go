package wire

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"websyn/internal/match"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		{0x01},
		[]byte("hello frame"),
		bytes.Repeat([]byte{0xAB}, 100_000),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var reuse []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, reuse)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		reuse = got[:0]
	}
	if _, err := ReadFrame(&buf, nil); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A hostile length prefix must be rejected before any allocation.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&hdr, nil); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		req     match.Request
		domains []string
	}{
		{"zero", match.Request{}, nil},
		{"simple", match.Request{Query: "indy 4 near san fran"}, nil},
		{"full", match.Request{
			Query:         "madagascar 2 dvd",
			Mode:          match.ModeSpan,
			Domain:        "movies",
			TopK:          7,
			MaxSpanTokens: 5,
			MinSim:        0.62,
			Explain:       true,
		}, nil},
		{"federated", match.Request{Query: "canon powershot"}, []string{"movies", "cameras", "*"}},
		{"v2-rewrite", match.Request{
			Query:   "cheap canon 40d under $500",
			Rewrite: true,
			MinSim:  0.55,
		}, []string{"cameras"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := AppendRequest(nil, tc.req, tc.domains)
			req, domains, err := DecodeRequest(b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(req, tc.req) {
				t.Errorf("request: got %+v, want %+v", req, tc.req)
			}
			if !reflect.DeepEqual(domains, tc.domains) {
				t.Errorf("domains: got %v, want %v", domains, tc.domains)
			}
		})
	}
}

func testResult() Result {
	return Result{
		Cached: true,
		Response: &match.Response{
			Query:     "indy 4 near san fran",
			Remainder: "near san fran",
			Domain:    "movies",
			Timing:    match.Timing{TotalMicros: 123.5, SegmentMicros: 100.25, FuzzyMicros: 23.25},
			Matches: []match.SpanMatch{
				{
					EntityID: 3, Start: 0, End: 2, Score: 0.8125, Similarity: 1,
					Canonical: "Indiana Jones and the Kingdom of the Crystal Skull",
					Span:      "indy 4", Source: "mined", Method: "exact", Domain: "movies",
					Corrected: false,
					Alternates: []match.Alternate{
						{EntityID: 9, Canonical: "Indiana Jones", Text: "indy", Score: 0.5, Similarity: 0.9},
					},
				},
				{EntityID: 4, Start: 3, End: 5, Score: 0.5, Similarity: 0.77,
					Canonical: "San Francisco", Span: "san fran", Source: "mined", Method: "fuzzy", Corrected: true},
			},
			Trace: []match.TraceStep{
				{Stage: "segment", Detail: "2 spans", Domain: "movies"},
			},
			Residual: "near",
			Attributes: []match.Predicate{
				{Column: "year", Op: "eq", Value: 2008, Span: "2008",
					Start: 3, End: 4, Source: "value", Domain: "movies"},
				{Column: "genre", Op: "eq", Text: "adventure", Span: "adventur",
					Start: 4, End: 5, Similarity: 0.88, Source: "value-fuzzy"},
				{Column: "price", Op: "lt", Value: 500, Unit: "usd",
					Span: "under 500", Start: 5, End: 7, Source: "comparator"},
			},
		},
	}
}

func TestResultRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		res  Result
	}{
		{"full", testResult()},
		{"error-only", Result{Err: "unknown domain \"cars\""}},
		{"empty-response", Result{Response: &match.Response{Query: "q"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := AppendResult(nil, tc.res)
			got, err := DecodeResult(b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.res) {
				t.Errorf("result diverged:\n got %+v\nwant %+v", got, tc.res)
			}
		})
	}
}

// TestDecodeCorruption feeds truncations and bit flips of a valid
// encoding to both decoders: every mutation must fail cleanly or decode
// to something — never panic or over-allocate.
func TestDecodeCorruption(t *testing.T) {
	reqBytes := AppendRequest(nil, match.Request{
		Query: "indy 4", Mode: match.ModeSpan, Domain: "movies", TopK: 3, MinSim: 0.6,
	}, []string{"movies", "cameras"})
	resBytes := AppendResult(nil, testResult())

	for name, b := range map[string][]byte{"request": reqBytes, "result": resBytes} {
		decode := func(b []byte) error {
			if name == "request" {
				_, _, err := DecodeRequest(b)
				return err
			}
			_, err := DecodeResult(b)
			return err
		}
		// Every truncation must error (a prefix is never a valid encoding
		// plus zero trailing bytes, except length 0 for request... which
		// still errors on the trailing field reads).
		for i := 0; i < len(b); i++ {
			if err := decode(b[:i]); err == nil {
				t.Errorf("%s: truncation at %d decoded cleanly", name, i)
			}
		}
		// Bit flips may legitimately decode (flipping a float bit yields
		// another float) — the requirement is no panic and no hang.
		for i := 0; i < len(b); i++ {
			mut := append([]byte(nil), b...)
			mut[i] ^= 0xFF
			_ = decode(mut)
		}
		// Trailing garbage must be rejected, not ignored.
		if err := decode(append(append([]byte(nil), b...), 0x00)); err == nil ||
			!strings.Contains(err.Error(), "trailing") {
			t.Errorf("%s: trailing byte not rejected (err: %v)", name, err)
		}
	}
}

// TestDecodeHostileCount ensures a forged element count cannot force a
// huge allocation: counts are bounded by the bytes that remain.
func TestDecodeHostileCount(t *testing.T) {
	// A result frame claiming 2^40 matches in a few bytes.
	b := []byte{2}                        // flags: has response, not cached
	b = appendString(b, "")               // err
	b = appendString(b, "q")              // query
	b = appendString(b, "")               // remainder
	b = appendString(b, "")               // domain
	b = append(b, make([]byte, 24)...)    // three float64 timings
	b = append(b, 0x80, 0x80, 0x80, 0x80, // uvarint 2^40
		0x80, 0x80, 0x80, 0x80, 0x01)
	if _, err := DecodeResult(b); err == nil {
		t.Fatal("hostile match count decoded cleanly")
	}
}

// TestLargeScalarsNearFrameEnd pins the scalar/count distinction: a
// scalar's value (entity ID, token offset, TopK) can legitimately
// exceed the bytes remaining in the frame, and only true list counts
// may be bounded by the remaining length. The original decoder applied
// the list-count bound to scalars, which rejected any real snapshot's
// high entity IDs once they landed near the end of the buffer.
func TestLargeScalarsNearFrameEnd(t *testing.T) {
	// TopK/MaxSpanTokens sit just before the short request tail, so a
	// value bigger than the ~15 trailing bytes catches the regression.
	req := match.Request{Query: "q", TopK: 50, MaxSpanTokens: 12}
	enc := AppendRequest(nil, req, nil)
	got, _, err := DecodeRequest(enc)
	if err != nil {
		t.Fatalf("request with TopK=50: %v", err)
	}
	if got.TopK != 50 || got.MaxSpanTokens != 12 {
		t.Fatalf("got TopK=%d MaxSpanTokens=%d", got.TopK, got.MaxSpanTokens)
	}

	// A last match whose entity ID and offsets dwarf the bytes that
	// follow them in the frame.
	res := Result{Response: &match.Response{
		Query: "nikon d90",
		Matches: []match.SpanMatch{{
			EntityID: 4_000_000,
			Start:    70_000,
			End:      70_001,
			Score:    1,
			Alternates: []match.Alternate{
				{EntityID: 3_999_999, Score: 0.5},
			},
		}},
	}}
	encRes := AppendResult(nil, res)
	dec, err := DecodeResult(encRes)
	if err != nil {
		t.Fatalf("result with large scalars: %v", err)
	}
	m := dec.Response.Matches[0]
	if m.EntityID != 4_000_000 || m.Start != 70_000 || m.End != 70_001 {
		t.Fatalf("decoded match %+v", m)
	}
	if m.Alternates[0].EntityID != 3_999_999 {
		t.Fatalf("decoded alternate %+v", m.Alternates[0])
	}

	// The v2 predicate token offsets are scalars too: a last predicate
	// with offsets beyond the trailing byte count must decode.
	res = Result{Response: &match.Response{
		Query: "q",
		Attributes: []match.Predicate{
			{Column: "price", Op: "lt", Value: 500, Start: 60_000, End: 60_002, Source: "comparator"},
		},
	}}
	dec, err = DecodeResult(AppendResult(nil, res))
	if err != nil {
		t.Fatalf("result with large predicate offsets: %v", err)
	}
	p := dec.Response.Attributes[0]
	if p.Start != 60_000 || p.End != 60_002 {
		t.Fatalf("decoded predicate %+v", p)
	}
}
