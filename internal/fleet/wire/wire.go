// Package wire is the fleet's internal binary protocol: the compact,
// length-prefixed framing matchd replicas serve next to HTTP (the
// -fleet-addr listener) and the router speaks on the internal hop.
//
// JSON is the right contract for clients, but on the router→replica hop
// every request would pay encode/decode of a verbose envelope twice per
// hop. The wire format instead length-prefixes a flat varint/float64
// encoding of the one request/response pair the serving tier already
// uses (match.Request / match.Response), cutting per-request bytes and
// allocations without inventing a second data model.
//
// Connection lifecycle: the client dials, writes the 4-byte Magic once,
// then exchanges frames synchronously — one request frame, one response
// frame, in order. Connections are long-lived and pooled by the router.
//
// Frame layout:
//
//	uint32 LE payload length | payload
//
// The first payload byte is the opcode; the rest is the opcode's body.
// Replies set the high bit of the request opcode. OpError (with a
// message body) reports a protocol-level failure, after which the server
// closes the connection; per-item matching errors travel inside a
// Result instead and keep the connection healthy.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"websyn/internal/match"
)

// Magic is the 4-byte handshake a client writes immediately after
// dialing; a server drops connections that open with anything else.
// The trailing digit versions the protocol.
const Magic = "WFP1"

// Opcodes. Replies set the high bit of their request opcode.
const (
	OpPing   byte = 0x01
	OpMatch  byte = 0x02
	OpPong   byte = 0x81
	OpResult byte = 0x82
	OpError  byte = 0xFF
)

// MaxFrame bounds a frame payload. A match response over a synonym
// dictionary is a few KB; 16 MiB leaves room for pathological explain
// traces while stopping a corrupt length prefix from allocating the
// universe.
const MaxFrame = 16 << 20

// ErrFrameTooLarge reports a length prefix beyond MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame's payload, reusing buf when it is large
// enough. The returned slice aliases buf (or a fresh allocation) and is
// valid until the next ReadFrame with the same buf.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Result is one query's outcome on the wire: the replica-side mirror of
// the HTTP surface's V1Result. Err is a per-item matching/routing error
// (empty query, unknown domain, ...) — the connection stays usable.
type Result struct {
	Response *match.Response
	Cached   bool
	Err      string
}

// ---- Wire codec spec (WFP1) ----
//
// The rules below are what the wirebounds analyzer (internal/analysis,
// cmd/vetsuite) enforces mechanically; the rule IDs appear in its
// diagnostics.
//
// Frame layer:
//
//	F1 — frame grammar. A connection opens with the 4-byte Magic, then
//	     carries frames of `uint32 LE payload length | payload`. The
//	     first payload byte is the opcode, the rest the opcode's body.
//	     Replies set the high bit of the request opcode.
//	F2 — frame cap. No allocation may be sized from a wire-derived
//	     length that has not been checked against MaxFrame (16 MiB).
//	     ReadFrame rejects bigger prefixes with ErrFrameTooLarge before
//	     allocating; anything else reading a raw length header must do
//	     the same.
//
// Body layer. Strings are uvarint length + bytes, non-negative ints
// are uvarint, float64s are 8 LE bytes of their IEEE bits, bools one
// byte. Decoding discipline:
//
//	B1 — no raw varints. Payload values are read only through the
//	     decoder's checked helpers (count/uint/str/f64/bool); a bare
//	     uvarint has no bound at all.
//	B2 — scalars use decoder.uint, whose bound is a pure value cap
//	     (TopK ≤ MaxTopK regardless of how many bytes follow).
//	     decoder.count's min(cap, remaining-bytes) bound is wrong for
//	     scalars: a truncated frame silently clamps the value instead
//	     of failing.
//	B3 — element counts use decoder.count, bounded by both the cap and
//	     the bytes actually remaining, so a hostile length prefix can
//	     neither over-allocate nor spin the decode loop past the frame.
//
// v2 field tags. The /v2/match surface extends both bodies in place —
// appended fields, same opcodes, no frame-layer change — and both ends
// of the hop ship from one tree, so there is no cross-version decode:
//
//	request:  ... explain bool | REWRITE bool (v2 switch; the router's
//	          /v2/match handler sets it) | domains list
//	result:   ... remainder str | RESIDUAL str (remainder minus the
//	          spans the predicates consumed) | domain str | timings |
//	          matches list | trace list | ATTRIBUTES list — count
//	          (B3: decoder.count), then per predicate:
//	            column str | op str | value f64 | text str | unit str |
//	            span str | start, end (B2: decoder.uint scalars) |
//	            similarity f64 | source str | domain str

// AppendRequest appends the encoding of one routed match request:
// the match.Request fields plus the fan-out domains list.
func AppendRequest(dst []byte, req match.Request, domains []string) []byte {
	dst = appendString(dst, req.Query)
	dst = appendString(dst, string(req.Mode))
	dst = appendString(dst, req.Domain)
	dst = binary.AppendUvarint(dst, uint64(req.TopK))
	dst = binary.AppendUvarint(dst, uint64(req.MaxSpanTokens))
	dst = appendFloat(dst, req.MinSim)
	dst = appendBool(dst, req.Explain)
	dst = appendBool(dst, req.Rewrite)
	dst = binary.AppendUvarint(dst, uint64(len(domains)))
	for _, d := range domains {
		dst = appendString(dst, d)
	}
	return dst
}

// DecodeRequest decodes AppendRequest's output.
func DecodeRequest(b []byte) (match.Request, []string, error) {
	d := decoder{b: b}
	var req match.Request
	req.Query = d.str()
	req.Mode = match.Mode(d.str())
	req.Domain = d.str()
	req.TopK = d.uint(match.MaxTopK)
	req.MaxSpanTokens = d.uint(match.MaxMaxSpanTokens)
	req.MinSim = d.f64()
	req.Explain = d.bool()
	req.Rewrite = d.bool()
	n := d.count(maxListLen)
	var domains []string
	if n > 0 && d.err == nil {
		domains = make([]string, 0, min(n, 64))
		for i := 0; i < n && d.err == nil; i++ {
			domains = append(domains, d.str())
		}
	}
	if err := d.finish("request"); err != nil {
		return match.Request{}, nil, err
	}
	return req, domains, nil
}

// AppendResult appends the encoding of one Result.
func AppendResult(dst []byte, res Result) []byte {
	var flags byte
	if res.Cached {
		flags |= 1
	}
	if res.Response != nil {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = appendString(dst, res.Err)
	if res.Response == nil {
		return dst
	}
	r := res.Response
	dst = appendString(dst, r.Query)
	dst = appendString(dst, r.Remainder)
	dst = appendString(dst, r.Residual)
	dst = appendString(dst, r.Domain)
	dst = appendFloat(dst, r.Timing.TotalMicros)
	dst = appendFloat(dst, r.Timing.SegmentMicros)
	dst = appendFloat(dst, r.Timing.FuzzyMicros)
	dst = binary.AppendUvarint(dst, uint64(len(r.Matches)))
	for i := range r.Matches {
		m := &r.Matches[i]
		dst = binary.AppendUvarint(dst, uint64(m.EntityID))
		dst = binary.AppendUvarint(dst, uint64(m.Start))
		dst = binary.AppendUvarint(dst, uint64(m.End))
		dst = appendFloat(dst, m.Score)
		dst = appendFloat(dst, m.Similarity)
		dst = appendString(dst, m.Canonical)
		dst = appendString(dst, m.Span)
		dst = appendString(dst, m.Source)
		dst = appendString(dst, m.Method)
		dst = appendString(dst, m.Domain)
		dst = appendBool(dst, m.Corrected)
		dst = binary.AppendUvarint(dst, uint64(len(m.Alternates)))
		for j := range m.Alternates {
			a := &m.Alternates[j]
			dst = binary.AppendUvarint(dst, uint64(a.EntityID))
			dst = appendString(dst, a.Canonical)
			dst = appendString(dst, a.Text)
			dst = appendFloat(dst, a.Score)
			dst = appendFloat(dst, a.Similarity)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Trace)))
	for i := range r.Trace {
		t := &r.Trace[i]
		dst = appendString(dst, t.Stage)
		dst = appendString(dst, t.Detail)
		dst = appendString(dst, t.Domain)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Attributes)))
	for i := range r.Attributes {
		p := &r.Attributes[i]
		dst = appendString(dst, p.Column)
		dst = appendString(dst, p.Op)
		dst = appendFloat(dst, p.Value)
		dst = appendString(dst, p.Text)
		dst = appendString(dst, p.Unit)
		dst = appendString(dst, p.Span)
		dst = binary.AppendUvarint(dst, uint64(p.Start))
		dst = binary.AppendUvarint(dst, uint64(p.End))
		dst = appendFloat(dst, p.Similarity)
		dst = appendString(dst, p.Source)
		dst = appendString(dst, p.Domain)
	}
	return dst
}

// DecodeResult decodes AppendResult's output. The returned Response (and
// everything it holds) is freshly allocated and owned by the caller.
func DecodeResult(b []byte) (Result, error) {
	d := decoder{b: b}
	flags := d.byte()
	res := Result{Cached: flags&1 != 0}
	res.Err = d.str()
	if flags&2 == 0 {
		if err := d.finish("result"); err != nil {
			return Result{}, err
		}
		return res, nil
	}
	r := &match.Response{}
	r.Query = d.str()
	r.Remainder = d.str()
	r.Residual = d.str()
	r.Domain = d.str()
	r.Timing.TotalMicros = d.f64()
	r.Timing.SegmentMicros = d.f64()
	r.Timing.FuzzyMicros = d.f64()
	nm := d.count(maxListLen)
	if nm > 0 && d.err == nil {
		r.Matches = make([]match.SpanMatch, 0, min(nm, 256))
		for i := 0; i < nm && d.err == nil; i++ {
			var m match.SpanMatch
			m.EntityID = d.uint(math.MaxInt32)
			m.Start = d.uint(math.MaxInt32)
			m.End = d.uint(math.MaxInt32)
			m.Score = d.f64()
			m.Similarity = d.f64()
			m.Canonical = d.str()
			m.Span = d.str()
			m.Source = d.str()
			m.Method = d.str()
			m.Domain = d.str()
			m.Corrected = d.bool()
			na := d.count(maxListLen)
			if na > 0 && d.err == nil {
				m.Alternates = make([]match.Alternate, 0, min(na, 64))
				for j := 0; j < na && d.err == nil; j++ {
					var a match.Alternate
					a.EntityID = d.uint(math.MaxInt32)
					a.Canonical = d.str()
					a.Text = d.str()
					a.Score = d.f64()
					a.Similarity = d.f64()
					m.Alternates = append(m.Alternates, a)
				}
			}
			r.Matches = append(r.Matches, m)
		}
	}
	nt := d.count(maxListLen)
	if nt > 0 && d.err == nil {
		r.Trace = make([]match.TraceStep, 0, min(nt, 256))
		for i := 0; i < nt && d.err == nil; i++ {
			var t match.TraceStep
			t.Stage = d.str()
			t.Detail = d.str()
			t.Domain = d.str()
			r.Trace = append(r.Trace, t)
		}
	}
	np := d.count(maxListLen)
	if np > 0 && d.err == nil {
		r.Attributes = make([]match.Predicate, 0, min(np, 64))
		for i := 0; i < np && d.err == nil; i++ {
			var p match.Predicate
			p.Column = d.str()
			p.Op = d.str()
			p.Value = d.f64()
			p.Text = d.str()
			p.Unit = d.str()
			p.Span = d.str()
			p.Start = d.uint(math.MaxInt32)
			p.End = d.uint(math.MaxInt32)
			p.Similarity = d.f64()
			p.Source = d.str()
			p.Domain = d.str()
			r.Attributes = append(r.Attributes, p)
		}
	}
	if err := d.finish("result"); err != nil {
		return Result{}, err
	}
	res.Response = r
	return res, nil
}

// maxListLen caps decoded element counts before the per-element bounds
// check kicks in; combined with the remaining-bytes check in count it
// stops a hostile count from pre-allocating beyond the payload.
const maxListLen = 1 << 20

// decoder is a sticky-error reader over one frame payload: the first
// malformed field poisons it, every later read returns zero values, and
// finish reports the one error (or leftover bytes) once.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a uvarint bounded by both max and the bytes that remain —
// every counted element costs at least one byte, so a count beyond
// len(d.b) is corrupt by construction.
func (d *decoder) count(max int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(max) || v > uint64(len(d.b)) {
		d.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

// uint reads a non-negative scalar bounded only by max. Unlike count it
// carries no per-element byte cost: a scalar's VALUE (an entity ID, a
// token offset) says nothing about how many bytes follow, so the
// remaining-bytes check would reject perfectly valid large values near
// the end of a frame.
func (d *decoder) uint(max int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(max) {
		d.fail("value %d out of range", v)
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count(MaxFrame)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) f64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) finish(what string) error {
	if d.err != nil {
		return fmt.Errorf("wire: decoding %s: %w", what, d.err)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: decoding %s: %d trailing bytes", what, len(d.b))
	}
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}
