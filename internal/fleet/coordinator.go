package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"time"

	"websyn/internal/serve"
)

// Coordinator drives a rolling, bounded-skew snapshot publish across a
// fleet. The sequence for one publish:
//
//  1. Stage the snapshot into the blob store under its content hash —
//     visible to nobody (the domain pointer still names the old blob).
//  2. Replica by replica, serially: POST /admin/pull with the staged
//     SHA, then poll GET /admin/snapshot until the replica reports it
//     is serving that SHA. Serial rollout means the fleet only ever
//     holds two versions at once (skew ≤ 1), and a replica that
//     rejects the snapshot (parse, canary) aborts the publish with the
//     old pointer — and every untouched replica — intact.
//  3. Flip the domain pointer last, so replicas that boot or resync
//     later converge on the new blob.
type Coordinator struct {
	Store *Store
	// Replicas are the admin base URLs (e.g. http://127.0.0.1:8081) to
	// roll over, in order.
	Replicas []string
	// Client is the HTTP client for admin calls (default: 5s timeout).
	Client *http.Client
	// StepTimeout bounds one replica's pull+converge (default 30s).
	StepTimeout time.Duration
	// Poll is the convergence poll period (default 200ms).
	Poll time.Duration
	Logf func(format string, args ...any)
}

// ReplicaPublish is one replica's outcome within a publish.
type ReplicaPublish struct {
	AdminURL string  `json:"admin_url"`
	Swapped  bool    `json:"swapped"`
	Millis   float64 `json:"ms"`
	Error    string  `json:"error,omitempty"`
}

// PublishReport describes one rolling publish end to end.
type PublishReport struct {
	Domain  string           `json:"domain"`
	SHA     string           `json:"sha"`
	Rolled  []ReplicaPublish `json:"rolled"`
	Flipped bool             `json:"pointer_flipped"`
	Error   string           `json:"error,omitempty"`
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Publish stages src and rolls it across every replica, flipping the
// domain pointer only after the whole fleet converged. The report is
// returned even on error (Error set, Flipped false) so callers can show
// exactly which replica stopped the rollout.
func (c *Coordinator) Publish(ctx context.Context, domain, src string) (PublishReport, error) {
	rep := PublishReport{Domain: domain}
	sha, err := c.Store.Stage(src)
	if err != nil {
		rep.Error = err.Error()
		return rep, err
	}
	rep.SHA = sha
	c.logf("fleet: publish %s: staged %s as %.12s", domain, src, sha)

	for _, admin := range c.Replicas {
		t0 := time.Now()
		swapped, err := c.rollOne(ctx, admin, domain, sha)
		step := ReplicaPublish{AdminURL: admin, Swapped: swapped, Millis: float64(time.Since(t0).Nanoseconds()) / 1e6}
		if err != nil {
			step.Error = err.Error()
			rep.Rolled = append(rep.Rolled, step)
			rep.Error = fmt.Sprintf("replica %s: %s — publish aborted, pointer unchanged", admin, err)
			return rep, fmt.Errorf("fleet: publish %s: %s", domain, rep.Error)
		}
		rep.Rolled = append(rep.Rolled, step)
		c.logf("fleet: publish %s: %s converged on %.12s in %.0fms", domain, admin, sha, step.Millis)
	}

	if err := c.Store.SetCurrent(domain, sha); err != nil {
		rep.Error = err.Error()
		return rep, err
	}
	rep.Flipped = true
	c.logf("fleet: publish %s: pointer -> %.12s", domain, sha)
	return rep, nil
}

// rollOne pushes one staged SHA to one replica and waits for its
// serving surface to report it.
func (c *Coordinator) rollOne(ctx context.Context, admin, domain, sha string) (swapped bool, err error) {
	stepTimeout := c.StepTimeout
	if stepTimeout <= 0 {
		stepTimeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, stepTimeout)
	defer cancel()

	pullURL := strings.TrimRight(admin, "/") + "/admin/pull?" + url.Values{
		"domain": {domain}, "sha": {sha},
	}.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, pullURL, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return false, fmt.Errorf("pull: %w", err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	var pr pullResult
	if err := json.Unmarshal(body, &pr); err != nil {
		return false, fmt.Errorf("pull: HTTP %d: %.200s", resp.StatusCode, body)
	}
	if pr.Error != "" {
		return false, fmt.Errorf("pull rejected: %s", pr.Error)
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("pull: HTTP %d", resp.StatusCode)
	}

	// The pull call is synchronous, but what matters is the serving
	// surface: poll the snapshot provenance until the replica itself
	// says it serves the staged bytes.
	poll := c.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		cur, err := c.servingSHA(ctx, admin, domain)
		if err == nil && cur == sha {
			return pr.Swapped, nil
		}
		select {
		case <-ctx.Done():
			if err != nil {
				return false, fmt.Errorf("converge: %w (last error: %v)", ctx.Err(), err)
			}
			return false, fmt.Errorf("converge: %w (still serving %.12s)", ctx.Err(), cur)
		case <-time.After(poll):
		}
	}
}

// servingSHA asks one replica which snapshot SHA a domain serves.
func (c *Coordinator) servingSHA(ctx context.Context, admin, domain string) (string, error) {
	u := strings.TrimRight(admin, "/") + "/admin/snapshot?" + url.Values{"domain": {domain}}.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("snapshot: HTTP %d", resp.StatusCode)
	}
	var info serve.SnapshotInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return "", err
	}
	return info.Snapshot.SHA256, nil
}
