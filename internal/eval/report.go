package eval

import (
	"fmt"
	"strings"
)

// RenderFigure2 renders the Figure 2 series as a text table: one row per
// IPC threshold, the paper's two series (plain and weighted precision) as
// columns against the coverage-increase x axis.
func RenderFigure2(points []Fig2Point) string {
	var b strings.Builder
	b.WriteString("Figure 2 — IPC threshold sweep (movies, γ=0)\n")
	b.WriteString("x = coverage increase, y = precision; β decreases left to right in the paper\n\n")
	b.WriteString("  β   Syns  Coverage   Precision(Syns)  Weighted(Syns W)\n")
	b.WriteString("  --  ----  ---------  ---------------  ----------------\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %2d  %4d  %8.1f%%  %14.1f%%  %15.1f%%\n",
			p.Beta, p.Syns, p.Coverage*100, p.Precision*100, p.Weighted*100)
	}
	return b.String()
}

// RenderFigure3 renders the Figure 3 series: for each IPC threshold β, the
// ICR sweep (γ from 0.9 down to 0.01) of weighted precision vs coverage.
func RenderFigure3(points []Fig3Point) string {
	var b strings.Builder
	b.WriteString("Figure 3 — ICR threshold sweep for IPC 2, 4, 6 (movies)\n")
	b.WriteString("series \"Syns W <β>\": weighted precision vs coverage increase\n")
	lastBeta := -1
	for _, p := range points {
		if p.Beta != lastBeta {
			fmt.Fprintf(&b, "\n  series Syns W %d\n", p.Beta)
			b.WriteString("    γ     Syns  Coverage   Weighted\n")
			b.WriteString("    ----  ----  ---------  --------\n")
			lastBeta = p.Beta
		}
		fmt.Fprintf(&b, "    %.2f  %4d  %8.1f%%  %6.1f%%\n",
			p.Gamma, p.Syns, p.Coverage*100, p.Weighted*100)
	}
	return b.String()
}

// RenderTable1 renders Table I in the paper's layout, with the precision
// columns appended.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I — Hits and Expansion\n\n")
	b.WriteString("  Dataset  System      Orig  Hits   Ratio  Synonyms  Expansion  Precision  Weighted\n")
	b.WriteString("  -------  ---------  -----  ----  ------  --------  ---------  ---------  --------\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-7s  %-9s  %5d  %4d  %5.1f%%  %8d  %8.0f%%  %8.1f%%  %7.1f%%\n",
			r.Dataset, r.System, r.Orig, r.Hits, r.HitRatio*100,
			r.Synonyms, r.Expansion*100, r.Precision*100, r.Weighted*100)
	}
	return b.String()
}
