package eval

import (
	"fmt"
	"sort"
	"strings"

	"websyn/internal/alias"
	"websyn/internal/clicklog"
	"websyn/internal/core"
)

// Per-entity inspection report: for error analysis, the aggregate metrics
// are not enough — one needs to see, entity by entity, which strings were
// mined, what the oracle thinks of them, and what evidence carried them.

// EntityReport is the judged mining record of one entity.
type EntityReport struct {
	Canonical string
	PopRank   int
	Rows      []EntityReportRow
	TruePos   int
	FalsePos  int
	// Missed are oracle synonyms the miner did not produce (recall lens;
	// the paper reports only precision, but error analysis needs both
	// sides).
	Missed []string
}

// EntityReportRow is one mined string with its judgment and evidence.
type EntityReportRow struct {
	Text    string
	Label   alias.Label
	IPC     int
	ICR     float64
	LogFreq int
}

// Precision returns the entity-level precision (1 when nothing mined).
func (r *EntityReport) Precision() float64 {
	total := r.TruePos + r.FalsePos
	if total == 0 {
		return 1
	}
	return float64(r.TruePos) / float64(total)
}

// BuildEntityReports judges every mining result at the given thresholds
// and assembles per-entity records, in catalog order.
func BuildEntityReports(model *alias.Model, log *clicklog.Log, results []*core.Result, ipc int, icr float64) ([]EntityReport, error) {
	cat := model.Catalog()
	reports := make([]EntityReport, 0, len(results))
	for _, res := range results {
		e := cat.ByNorm(res.Norm)
		if e == nil {
			return nil, fmt.Errorf("eval: result input %q is not a catalog canonical", res.Input)
		}
		rep := EntityReport{Canonical: e.Canonical, PopRank: e.PopRank}
		mined := map[string]bool{}
		for _, ev := range res.Evidence {
			if !ev.Passes(ipc, icr) {
				continue
			}
			label, _ := model.LabelFor(e.ID, ev.Candidate)
			if model.IsSynonym(e.ID, ev.Candidate) {
				rep.TruePos++
				label = alias.Synonym
			} else {
				rep.FalsePos++
			}
			mined[ev.Candidate] = true
			rep.Rows = append(rep.Rows, EntityReportRow{
				Text:    ev.Candidate,
				Label:   label,
				IPC:     ev.IPC,
				ICR:     ev.ICR,
				LogFreq: log.Impressions(ev.Candidate),
			})
		}
		for _, s := range model.SynonymsOf(e.ID) {
			if !mined[s] {
				rep.Missed = append(rep.Missed, s)
			}
		}
		sort.Strings(rep.Missed)
		reports = append(reports, rep)
	}
	return reports, nil
}

// RenderEntityReport formats one report for terminal inspection.
func RenderEntityReport(r EntityReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (popularity rank %d) — precision %.0f%%\n",
		r.Canonical, r.PopRank, r.Precision()*100)
	for _, row := range r.Rows {
		mark := "+"
		if row.Label != alias.Synonym {
			mark = "-"
		}
		fmt.Fprintf(&b, "  %s %-40s %-8s IPC=%2d ICR=%.2f freq=%d\n",
			mark, row.Text, row.Label, row.IPC, row.ICR, row.LogFreq)
	}
	if len(r.Missed) > 0 {
		fmt.Fprintf(&b, "  missed: %s\n", strings.Join(r.Missed, ", "))
	}
	return b.String()
}

// RecallReport aggregates the recall lens over all entities: what fraction
// of oracle synonyms the miner recovered.
type RecallReport struct {
	TruthSynonyms int
	Recovered     int
	Recall        float64
}

// Recall computes the aggregate recall of a judged report set.
func Recall(reports []EntityReport) RecallReport {
	var rr RecallReport
	for _, r := range reports {
		rr.TruthSynonyms += r.TruePos + len(r.Missed)
		rr.Recovered += r.TruePos
	}
	if rr.TruthSynonyms > 0 {
		rr.Recall = float64(rr.Recovered) / float64(rr.TruthSynonyms)
	}
	return rr
}
