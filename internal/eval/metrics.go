// Package eval implements the paper's evaluation: the oracle judging of
// mined synonyms and the five metrics of Section IV, plus the harnesses
// that regenerate Figure 2, Figure 3 and Table I.
//
// Metrics (paper Section IV):
//
//   - Precision: true synonyms / all synonyms generated.
//   - Weighted Precision: the same, weighted by each string's frequency in
//     the query log.
//   - Coverage Increase: percentage increase in query-log volume matched
//     once mined synonyms join the original strings.
//   - Hit Ratio: fraction of input entries producing at least one synonym.
//   - Expansion Ratio: (synonyms + original entries) / original entries.
//
// Judging uses the alias model as the labeling oracle, standing in for the
// paper's human assessors: a generated string is a true synonym of entity e
// iff the generative ground truth labeled it Synonym for e.
package eval

import (
	"fmt"
	"sort"

	"websyn/internal/alias"
	"websyn/internal/clicklog"
	"websyn/internal/textnorm"
)

// Output is one system's synonym output over a catalog: PerEntity[id] holds
// the normalized synonym strings generated for entity id (deduplicated,
// canonical string excluded).
type Output struct {
	Name      string
	PerEntity [][]string
}

// NewOutput allocates an empty output for n entities.
func NewOutput(name string, n int) *Output {
	return &Output{Name: name, PerEntity: make([][]string, n)}
}

// Set records the synonyms of one entity, normalizing, deduplicating and
// dropping the entity's own canonical string.
func (o *Output) Set(entityID int, canonicalNorm string, synonyms []string) {
	seen := make(map[string]bool, len(synonyms))
	var clean []string
	for _, s := range synonyms {
		n := textnorm.Normalize(s)
		if n == "" || n == canonicalNorm || seen[n] {
			continue
		}
		seen[n] = true
		clean = append(clean, n)
	}
	sort.Strings(clean)
	o.PerEntity[entityID] = clean
}

// TotalSynonyms returns the summed synonym count over all entities
// (Table I's "Synonyms" column; duplicates across entities count once
// each, as separate dictionary entries).
func (o *Output) TotalSynonyms() int {
	n := 0
	for _, syns := range o.PerEntity {
		n += len(syns)
	}
	return n
}

// Hits returns how many entities received at least one synonym.
func (o *Output) Hits() int {
	n := 0
	for _, syns := range o.PerEntity {
		if len(syns) > 0 {
			n++
		}
	}
	return n
}

// PrecisionReport carries the precision metrics of one output.
type PrecisionReport struct {
	Generated int     // synonyms judged
	True      int     // judged true by the oracle
	Precision float64 // True/Generated (1 when nothing generated)

	WeightedGenerated float64 // log-frequency mass judged
	WeightedTrue      float64
	WeightedPrecision float64
}

// Precision judges an output against the oracle. Weighting uses each
// string's impression count in the click log ("synonym frequency in query
// log").
func Precision(model *alias.Model, log *clicklog.Log, o *Output) PrecisionReport {
	var r PrecisionReport
	for id, syns := range o.PerEntity {
		for _, s := range syns {
			w := float64(log.Impressions(s))
			r.Generated++
			r.WeightedGenerated += w
			if model.IsSynonym(id, s) {
				r.True++
				r.WeightedTrue += w
			}
		}
	}
	r.Precision = ratioOrOne(float64(r.True), float64(r.Generated))
	r.WeightedPrecision = ratioOrOne(r.WeightedTrue, r.WeightedGenerated)
	return r
}

func ratioOrOne(num, den float64) float64 {
	if den == 0 {
		return 1
	}
	return num / den
}

// CoverageIncrease computes the percentage increase in matched query-log
// volume: the impression mass of the mined synonym strings relative to the
// impression mass of the original canonical strings. A value of 1.2 means
// the synonyms match 120% additional volume.
func CoverageIncrease(model *alias.Model, log *clicklog.Log, o *Output) float64 {
	cat := model.Catalog()
	canonicals := make(map[string]bool, cat.Len())
	base := 0.0
	for _, e := range cat.All() {
		n := e.Norm()
		canonicals[n] = true
		base += float64(log.Impressions(n))
	}
	if base == 0 {
		return 0
	}
	// Distinct synonym strings across the output (a string mined for two
	// entities matches each log query only once).
	seen := make(map[string]bool)
	added := 0.0
	for _, syns := range o.PerEntity {
		for _, s := range syns {
			if canonicals[s] || seen[s] {
				continue
			}
			seen[s] = true
			added += float64(log.Impressions(s))
		}
	}
	return added / base
}

// HitExpansion carries Table I's structural metrics.
type HitExpansion struct {
	Orig      int
	Hits      int
	HitRatio  float64
	Synonyms  int
	Expansion float64 // (synonyms + orig) / orig
}

// HitsAndExpansion computes Table I's per-system row.
func HitsAndExpansion(o *Output) HitExpansion {
	orig := len(o.PerEntity)
	hits := o.Hits()
	syns := o.TotalSynonyms()
	he := HitExpansion{Orig: orig, Hits: hits, Synonyms: syns}
	if orig > 0 {
		he.HitRatio = float64(hits) / float64(orig)
		he.Expansion = float64(syns+orig) / float64(orig)
	}
	return he
}

// LabelBreakdown counts an output's synonyms by their oracle label —
// useful for ablation reporting (which error class survives a threshold).
func LabelBreakdown(model *alias.Model, o *Output) map[alias.Label]int {
	counts := make(map[alias.Label]int)
	for id, syns := range o.PerEntity {
		for _, s := range syns {
			l, _ := model.LabelFor(id, s)
			counts[l]++
		}
	}
	return counts
}

// FormatHitExpansion renders one Table I row in the paper's layout.
func FormatHitExpansion(dataset, system string, he HitExpansion) string {
	return fmt.Sprintf("%-8s %-10s %5d %5d %6.1f%% %7d %7.0f%%",
		dataset, system, he.Orig, he.Hits, he.HitRatio*100,
		he.Synonyms, he.Expansion*100)
}
