package eval

import (
	"testing"

	"websyn/internal/alias"
	"websyn/internal/clickgraph"
	"websyn/internal/clicklog"
	"websyn/internal/core"
	"websyn/internal/entity"
	"websyn/internal/randomwalk"
	"websyn/internal/search"
	"websyn/internal/wiki"
)

// miniStack builds a tiny but complete mining stack over the real movie
// catalog: hand-written search data and click log for the first three
// entities, enough structure for the experiment harnesses to run.
func miniStack(t *testing.T) (*alias.Model, *clicklog.Log, []*core.Result) {
	t.Helper()
	cat, err := entity.Movies2008()
	if err != nil {
		t.Fatal(err)
	}
	model, err := alias.Build(cat, alias.MovieParams())
	if err != nil {
		t.Fatal(err)
	}

	// Entity i owns pages [i*10, i*10+10).
	var tuples []search.Tuple
	for i := 0; i < 3; i++ {
		u := cat.ByID(i).Norm()
		for r := 1; r <= 10; r++ {
			tuples = append(tuples, search.Tuple{Query: u, PageID: i*10 + r - 1, Rank: r})
		}
	}
	sd, err := search.NewDataFromTuples(tuples, 10)
	if err != nil {
		t.Fatal(err)
	}

	log := clicklog.NewLog()
	addClicks := func(q string, pages []int, n int) {
		for i := 0; i < n; i++ {
			log.AddImpression(q)
		}
		for _, p := range pages {
			for i := 0; i < n; i++ {
				log.AddClick(q, p)
			}
		}
	}
	// Canonicals get modest volume; informal synonyms get heavy volume
	// concentrated on their entity's pages.
	for i := 0; i < 3; i++ {
		e := cat.ByID(i)
		own := []int{i * 10, i*10 + 1, i*10 + 2, i*10 + 3, i*10 + 4}
		addClicks(e.Norm(), own, 10)
		for _, syn := range model.SynonymsOf(e.ID)[:2] {
			addClicks(syn, own, 30)
		}
	}
	// One related string with a single stray surrogate click.
	addClicks("harrison ford", []int{0, 900, 901}, 5)

	miner, err := core.NewMiner(sd, log, core.Config{IPC: 1, ICR: 0})
	if err != nil {
		t.Fatal(err)
	}
	results := miner.MineAll(cat.Canonicals())
	return model, log, results
}

func TestFigure2Harness(t *testing.T) {
	model, log, results := miniStack(t)
	points, err := Figure2(model, log, results, []int{5, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i, beta := range []int{5, 3, 1} {
		if points[i].Beta != beta {
			t.Fatalf("point %d has beta %d", i, points[i].Beta)
		}
	}
	// Loosening β cannot reduce synonyms or coverage.
	for i := 1; i < len(points); i++ {
		if points[i].Syns < points[i-1].Syns {
			t.Fatal("synonym count decreased as β loosened")
		}
		if points[i].Coverage < points[i-1].Coverage-1e-12 {
			t.Fatal("coverage decreased as β loosened")
		}
	}
}

func TestFigure3Harness(t *testing.T) {
	model, log, results := miniStack(t)
	points, err := Figure3(model, log, results, []int{1, 3}, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	// Order: all gammas for β=1, then β=3.
	if points[0].Beta != 1 || points[0].Gamma != 0.9 || points[3].Beta != 3 || points[3].Gamma != 0.1 {
		t.Fatalf("ordering wrong: %+v", points)
	}
}

func TestTable1Harness(t *testing.T) {
	model, log, results := miniStack(t)
	wikiB := wiki.Build(model, wiki.MovieConfig(1))
	walker, err := randomwalk.NewWalker(clickgraph.Build(log), randomwalk.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table1(Table1Systems{
		Dataset:   "Movies",
		Model:     model,
		Log:       log,
		UsResults: results,
		UsIPC:     3,
		UsICR:     0.1,
		Wiki:      wikiB,
		Walker:    walker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	names := []string{"Us", "Wiki", "Walk(0.8)"}
	for i, r := range rows {
		if r.System != names[i] || r.Dataset != "Movies" {
			t.Fatalf("row %d = %+v", i, r)
		}
		if r.Orig != 100 {
			t.Fatalf("row %d Orig = %d", i, r.Orig)
		}
	}
	// Us hit exactly the three entities with click data.
	if rows[0].Hits != 3 {
		t.Fatalf("Us hits = %d, want 3", rows[0].Hits)
	}
	// Wiki redirects are oracle-true by construction.
	if rows[1].Precision != 1 {
		t.Fatalf("Wiki precision = %v", rows[1].Precision)
	}
}

func TestOutputFromResultsThresholds(t *testing.T) {
	model, log, results := miniStack(t)
	strict, err := OutputFromResults(model, results, "strict", 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := OutputFromResults(model, results, "loose", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strict.TotalSynonyms() > loose.TotalSynonyms() {
		t.Fatal("stricter thresholds produced more synonyms")
	}
	_ = log
}

func TestOutputFromResultsRejectsForeignInput(t *testing.T) {
	model, _, _ := miniStack(t)
	foreign := []*core.Result{{Input: "not a movie", Norm: "not a movie"}}
	if _, err := OutputFromResults(model, foreign, "x", 1, 0); err == nil {
		t.Fatal("foreign input accepted")
	}
}
