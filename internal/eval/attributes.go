// Attribute-rewrite acceptance sets: curated per-domain queries with the
// predicates the /v2 rewrite stage must extract. The sets live here (not
// in a serving test) so the offline eval suite can score a built
// snapshot's vocabulary the same way it scores mined synonym precision —
// and so CI can gate dictbuild output on attribute quality per domain.
package eval

import (
	"fmt"
	"strings"

	"websyn/internal/match"
)

// WantPredicate is one expected predicate, matched structurally: Column
// and Op must equal; Value/Text are checked when non-zero. Span/source
// provenance is deliberately unchecked — the acceptance sets pin the
// parse semantics, not the lexicon internals.
type WantPredicate struct {
	Column string
	Op     string
	Value  float64
	Text   string
}

// AttributeCase is one acceptance query for a domain's rewrite stage.
type AttributeCase struct {
	// Query is the raw query, entity mention and attribute phrases mixed.
	Query string
	// WantEntity, when non-empty, is the canonical string the top span
	// match must resolve to.
	WantEntity string
	// WantPredicates are the predicates the rewrite must extract, in
	// order.
	WantPredicates []WantPredicate
	// WantResidual is the expected post-rewrite residual text.
	WantResidual string
}

// AttributeSet is one domain's acceptance cases.
type AttributeSet struct {
	Domain string
	Cases  []AttributeCase
}

// AttributeSets returns the curated per-domain acceptance sets. Each
// case exercises a distinct predicate family: comparator phrases, bands,
// discrete values, unit suffixes, exact and fuzzy categorical values.
func AttributeSets() []AttributeSet {
	return []AttributeSet{
		{
			Domain: "movies",
			Cases: []AttributeCase{
				{
					Query:      "kingdom of the crystal skull 2008 adventure",
					WantEntity: "Indiana Jones and the Kingdom of the Crystal Skull",
					WantPredicates: []WantPredicate{
						{Column: "year", Op: "eq", Value: 2008},
						{Column: "genre", Op: "eq", Text: "adventure"},
					},
				},
				{
					Query:      "madagascar 2 comedy dvd",
					WantEntity: "Madagascar: Escape 2 Africa",
					WantPredicates: []WantPredicate{
						{Column: "genre", Op: "eq", Text: "comedy"},
					},
					WantResidual: "dvd",
				},
				{
					Query:      "dark knight before 2009",
					WantEntity: "The Dark Knight",
					WantPredicates: []WantPredicate{
						{Column: "year", Op: "lt", Value: 2009},
					},
				},
			},
		},
		{
			Domain: "cameras",
			Cases: []AttributeCase{
				{
					Query:      "cheap canon 40d lens under $500",
					WantEntity: "Canon EOS 40D",
					WantPredicates: []WantPredicate{
						{Column: "price", Op: "lte"}, // band threshold is distribution-derived
						{Column: "price", Op: "lt", Value: 500},
					},
					WantResidual: "lens",
				},
				{
					Query:      "nikon d90 10mp",
					WantEntity: "Nikon D90",
					WantPredicates: []WantPredicate{
						{Column: "megapixels", Op: "eq", Value: 10},
					},
				},
				{
					// "cannon" is a misspelled categorical value: the brand
					// column resolves it through the same trigram fuzzy
					// machinery as entity spans.
					Query:      "sd1100 is cannon",
					WantEntity: "Canon PowerShot SD1100 IS",
					WantPredicates: []WantPredicate{
						{Column: "brand", Op: "eq", Text: "canon"},
					},
				},
			},
		},
		{
			Domain: "software",
			Cases: []AttributeCase{
				{
					Query:      "turbo tax intuit",
					WantEntity: "TurboTax 2008",
					WantPredicates: []WantPredicate{
						{Column: "vendor", Op: "eq", Text: "intuit"},
					},
				},
				{
					// A multi-token categorical value.
					Query:      "fedora 9 red hat",
					WantEntity: "Fedora 9",
					WantPredicates: []WantPredicate{
						{Column: "vendor", Op: "eq", Text: "red hat"},
					},
				},
			},
		},
	}
}

// AttributeReport is the outcome of evaluating one domain's set.
type AttributeReport struct {
	Domain string
	Total  int
	Passed int
	// Failures describes each failed case, one line per case.
	Failures []string
}

// Pass reports whether every case passed.
func (r *AttributeReport) Pass() bool { return r.Passed == r.Total }

// EvaluateAttributes runs one domain's acceptance set through run —
// typically a closure over a match engine or a live /v2/match endpoint —
// and scores each case on entity resolution, predicate extraction and
// residual.
func EvaluateAttributes(set AttributeSet, run func(query string) (*match.Response, error)) AttributeReport {
	rep := AttributeReport{Domain: set.Domain, Total: len(set.Cases)}
	for _, c := range set.Cases {
		res, err := run(c.Query)
		if err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%q: %v", c.Query, err))
			continue
		}
		if msg := checkCase(c, res); msg != "" {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%q: %s", c.Query, msg))
			continue
		}
		rep.Passed++
	}
	return rep
}

func checkCase(c AttributeCase, res *match.Response) string {
	if c.WantEntity != "" {
		if len(res.Matches) == 0 {
			return fmt.Sprintf("no entity match, want %q", c.WantEntity)
		}
		if got := res.Matches[0].Canonical; got != c.WantEntity {
			return fmt.Sprintf("entity %q, want %q", got, c.WantEntity)
		}
	}
	if len(res.Attributes) != len(c.WantPredicates) {
		return fmt.Sprintf("%d predicates %+v, want %d", len(res.Attributes), res.Attributes, len(c.WantPredicates))
	}
	for i, want := range c.WantPredicates {
		got := res.Attributes[i]
		if got.Column != want.Column || got.Op != want.Op {
			return fmt.Sprintf("predicate %d = %s %s, want %s %s", i, got.Column, got.Op, want.Column, want.Op)
		}
		if want.Value != 0 && got.Value != want.Value {
			return fmt.Sprintf("predicate %d value = %g, want %g", i, got.Value, want.Value)
		}
		if want.Text != "" && got.Text != want.Text {
			return fmt.Sprintf("predicate %d text = %q, want %q", i, got.Text, want.Text)
		}
	}
	if res.Residual != c.WantResidual {
		return fmt.Sprintf("residual %q, want %q", res.Residual, c.WantResidual)
	}
	return ""
}

// FormatAttributeReport renders a report as the one-line summary the
// eval harness prints per domain.
func FormatAttributeReport(r AttributeReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "attributes[%s]: %d/%d", r.Domain, r.Passed, r.Total)
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\n  FAIL %s", f)
	}
	return b.String()
}
