package eval

import (
	"fmt"
	"sort"

	"websyn/internal/alias"
	"websyn/internal/clicklog"
	"websyn/internal/rng"
)

// Bootstrap confidence intervals.
//
// The paper reports point estimates; with a simulated oracle we can do
// better and quantify the sampling variability of precision over the
// entity population: resample entities with replacement, recompute the
// metric, and take percentile intervals. This is the standard
// entity-level (cluster) bootstrap — resampling entities rather than
// individual synonyms respects the fact that synonyms of one entity are
// correlated.

// CI is a percentile bootstrap confidence interval.
type CI struct {
	Point float64
	Lo    float64
	Hi    float64
	Level float64 // e.g. 0.95
}

// String renders "point [lo, hi]@95%".
func (ci CI) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]@%.0f%%", ci.Point, ci.Lo, ci.Hi, ci.Level*100)
}

// BootstrapPrecision computes entity-level bootstrap CIs for plain and
// weighted precision of an output. iters is the number of resamples
// (500-2000 are typical); seed fixes the resampling stream.
func BootstrapPrecision(model *alias.Model, log *clicklog.Log, o *Output, iters int, level float64, seed uint64) (plain, weighted CI, err error) {
	if iters < 10 {
		return CI{}, CI{}, fmt.Errorf("eval: bootstrap needs >= 10 iterations, got %d", iters)
	}
	if level <= 0 || level >= 1 {
		return CI{}, CI{}, fmt.Errorf("eval: confidence level %v outside (0,1)", level)
	}

	// Pre-compute per-entity tallies so each resample is O(entities).
	n := len(o.PerEntity)
	type tally struct {
		gen, trueN  float64
		wGen, wTrue float64
	}
	tallies := make([]tally, n)
	for id, syns := range o.PerEntity {
		for _, s := range syns {
			w := float64(log.Impressions(s))
			tallies[id].gen++
			tallies[id].wGen += w
			if model.IsSynonym(id, s) {
				tallies[id].trueN++
				tallies[id].wTrue += w
			}
		}
	}

	point := Precision(model, log, o)
	src := rng.New(seed)
	plainSamples := make([]float64, 0, iters)
	weightedSamples := make([]float64, 0, iters)
	for it := 0; it < iters; it++ {
		var t tally
		for i := 0; i < n; i++ {
			pick := tallies[src.Intn(n)]
			t.gen += pick.gen
			t.trueN += pick.trueN
			t.wGen += pick.wGen
			t.wTrue += pick.wTrue
		}
		plainSamples = append(plainSamples, ratioOrOne(t.trueN, t.gen))
		weightedSamples = append(weightedSamples, ratioOrOne(t.wTrue, t.wGen))
	}
	plain = percentileCI(plainSamples, point.Precision, level)
	weighted = percentileCI(weightedSamples, point.WeightedPrecision, level)
	return plain, weighted, nil
}

// percentileCI extracts the percentile interval from bootstrap samples.
func percentileCI(samples []float64, point, level float64) CI {
	sort.Float64s(samples)
	alpha := (1 - level) / 2
	lo := samples[clampIndex(int(alpha*float64(len(samples))), len(samples))]
	hi := samples[clampIndex(int((1-alpha)*float64(len(samples))), len(samples))]
	return CI{Point: point, Lo: lo, Hi: hi, Level: level}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
