package eval

import (
	"strings"
	"testing"
)

func TestBootstrapPrecisionBasics(t *testing.T) {
	model, log, results := miniStack(t)
	o, err := OutputFromResults(model, results, "us", 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	plain, weighted, err := BootstrapPrecision(model, log, o, 200, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	point := Precision(model, log, o)
	if plain.Point != point.Precision || weighted.Point != point.WeightedPrecision {
		t.Fatal("CI point estimates disagree with Precision")
	}
	for _, ci := range []CI{plain, weighted} {
		if ci.Lo > ci.Hi {
			t.Fatalf("inverted interval %+v", ci)
		}
		if ci.Lo < 0 || ci.Hi > 1 {
			t.Fatalf("interval outside [0,1]: %+v", ci)
		}
		if ci.Level != 0.95 {
			t.Fatalf("level %v", ci.Level)
		}
	}
}

func TestBootstrapPrecisionDeterministic(t *testing.T) {
	model, log, results := miniStack(t)
	o, err := OutputFromResults(model, results, "us", 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a1, w1, err := BootstrapPrecision(model, log, o, 100, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, w2, err := BootstrapPrecision(model, log, o, 100, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || w1 != w2 {
		t.Fatal("same seed produced different intervals")
	}
	// (Different seeds may legitimately coincide here: with only three
	// entities carrying data, the resampled precision takes few distinct
	// values, so no cross-seed inequality is asserted.)
}

func TestBootstrapWiderAtLowerIters(t *testing.T) {
	// Sanity: higher confidence level gives a wider (or equal) interval.
	model, log, results := miniStack(t)
	o, err := OutputFromResults(model, results, "us", 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	narrow, _, err := BootstrapPrecision(model, log, o, 500, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := BootstrapPrecision(model, log, o, 500, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	if (wide.Hi - wide.Lo) < (narrow.Hi-narrow.Lo)-1e-12 {
		t.Fatalf("99%% interval narrower than 50%%: %v vs %v", wide, narrow)
	}
}

func TestBootstrapValidation(t *testing.T) {
	model, log, results := miniStack(t)
	o, _ := OutputFromResults(model, results, "us", 3, 0.1)
	if _, _, err := BootstrapPrecision(model, log, o, 5, 0.95, 1); err == nil {
		t.Fatal("too few iterations accepted")
	}
	if _, _, err := BootstrapPrecision(model, log, o, 100, 1.5, 1); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestCIString(t *testing.T) {
	ci := CI{Point: 0.744, Lo: 0.7, Hi: 0.79, Level: 0.95}
	s := ci.String()
	if !strings.Contains(s, "0.744") || !strings.Contains(s, "95%") {
		t.Fatalf("CI render %q", s)
	}
}
