package eval

import (
	"fmt"
	"strings"
	"testing"

	"websyn/internal/match"
)

func TestEvaluateAttributesScoring(t *testing.T) {
	set := AttributeSet{
		Domain: "test",
		Cases: []AttributeCase{
			{
				Query:      "good",
				WantEntity: "Entity A",
				WantPredicates: []WantPredicate{
					{Column: "price", Op: "lt", Value: 500},
				},
				WantResidual: "rest",
			},
			{Query: "bad-entity", WantEntity: "Entity B"},
			{Query: "bad-predicates", WantPredicates: []WantPredicate{{Column: "year", Op: "eq"}}},
			{Query: "error"},
		},
	}
	rep := EvaluateAttributes(set, func(q string) (*match.Response, error) {
		switch q {
		case "good":
			return &match.Response{
				Matches:    []match.SpanMatch{{Canonical: "Entity A"}},
				Attributes: []match.Predicate{{Column: "price", Op: "lt", Value: 500}},
				Residual:   "rest",
			}, nil
		case "bad-entity":
			return &match.Response{Matches: []match.SpanMatch{{Canonical: "Entity A"}}}, nil
		case "bad-predicates":
			return &match.Response{}, nil
		default:
			return nil, fmt.Errorf("boom")
		}
	})
	if rep.Total != 4 || rep.Passed != 1 || len(rep.Failures) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Pass() {
		t.Fatal("failing report claimed pass")
	}
	out := FormatAttributeReport(rep)
	if !strings.Contains(out, "attributes[test]: 1/4") || strings.Count(out, "FAIL") != 3 {
		t.Fatalf("format = %q", out)
	}
}

func TestAttributeSetsWellFormed(t *testing.T) {
	sets := AttributeSets()
	if len(sets) != 3 {
		t.Fatalf("%d domains, want movies/cameras/software", len(sets))
	}
	seen := map[string]bool{}
	for _, s := range sets {
		if seen[s.Domain] {
			t.Errorf("duplicate domain %q", s.Domain)
		}
		seen[s.Domain] = true
		if len(s.Cases) == 0 {
			t.Errorf("domain %q has no cases", s.Domain)
		}
		for _, c := range s.Cases {
			if c.Query == "" {
				t.Errorf("domain %q has an empty query", s.Domain)
			}
		}
	}
}
