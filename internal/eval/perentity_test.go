package eval

import (
	"strings"
	"testing"

	"websyn/internal/alias"
)

func TestBuildEntityReports(t *testing.T) {
	model, log, results := miniStack(t)
	reports, err := BuildEntityReports(model, log, results, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != model.Catalog().Len() {
		t.Fatalf("%d reports", len(reports))
	}
	// The three entities with click data must have rows; others must not.
	for i, r := range reports {
		if i < 3 {
			if len(r.Rows) == 0 {
				t.Fatalf("entity %d has no rows", i)
			}
			if r.TruePos == 0 {
				t.Fatalf("entity %d recovered no true synonyms", i)
			}
		} else if len(r.Rows) != 0 {
			t.Fatalf("entity %d unexpectedly has rows", i)
		}
	}
}

func TestEntityReportPrecision(t *testing.T) {
	r := EntityReport{TruePos: 3, FalsePos: 1}
	if r.Precision() != 0.75 {
		t.Fatalf("precision = %v", r.Precision())
	}
	empty := EntityReport{}
	if empty.Precision() != 1 {
		t.Fatal("empty report precision should be 1")
	}
}

func TestEntityReportsMissedTracksRecall(t *testing.T) {
	model, log, results := miniStack(t)
	reports, err := BuildEntityReports(model, log, results, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// The mini stack only simulates two synonyms per entity, so every
	// entity must miss at least one oracle synonym.
	for i := 0; i < 3; i++ {
		if len(reports[i].Missed) == 0 {
			t.Fatalf("entity %d missed nothing — truth too small?", i)
		}
	}
	rr := Recall(reports)
	if rr.Recall <= 0 || rr.Recall >= 1 {
		t.Fatalf("recall = %v, want interior value", rr.Recall)
	}
	if rr.Recovered+0 > rr.TruthSynonyms {
		t.Fatal("recovered exceeds truth")
	}
}

func TestRenderEntityReport(t *testing.T) {
	model, log, results := miniStack(t)
	reports, err := BuildEntityReports(model, log, results, 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := RenderEntityReport(reports[0])
	if !strings.Contains(s, "precision") || !strings.Contains(s, "IPC=") {
		t.Fatalf("render missing fields:\n%s", s)
	}
}

func TestRecallEmpty(t *testing.T) {
	rr := Recall(nil)
	if rr.Recall != 0 || rr.TruthSynonyms != 0 {
		t.Fatalf("empty recall = %+v", rr)
	}
}

func TestEntityReportLabelsAreOracleLabels(t *testing.T) {
	model, log, results := miniStack(t)
	reports, err := BuildEntityReports(model, log, results, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for _, row := range reports[i].Rows {
			if row.Label == alias.Synonym {
				e := model.Catalog().ByID(i)
				if !model.IsSynonym(e.ID, row.Text) {
					t.Fatalf("row %q labeled synonym but oracle disagrees", row.Text)
				}
			}
		}
	}
}
