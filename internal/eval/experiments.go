package eval

import (
	"fmt"

	"websyn/internal/alias"
	"websyn/internal/clicklog"
	"websyn/internal/core"
	"websyn/internal/randomwalk"
	"websyn/internal/wiki"
)

// OutputFromResults converts miner results into a judged Output at the
// given operating point (β, γ), re-thresholding the stored evidence without
// re-mining. Inputs whose normalized form is not a catalog canonical are
// rejected — the experiments always mine exactly the catalog strings.
func OutputFromResults(model *alias.Model, results []*core.Result, name string, ipc int, icr float64) (*Output, error) {
	cat := model.Catalog()
	o := NewOutput(name, cat.Len())
	for _, r := range results {
		e := cat.ByNorm(r.Norm)
		if e == nil {
			return nil, fmt.Errorf("eval: mined input %q is not a catalog canonical", r.Input)
		}
		o.Set(e.ID, e.Norm(), r.FilterSynonyms(ipc, icr))
	}
	return o, nil
}

// OutputFromWiki converts the Wikipedia baseline into an Output.
func OutputFromWiki(model *alias.Model, b *wiki.Baseline, name string) *Output {
	cat := model.Catalog()
	o := NewOutput(name, cat.Len())
	for _, e := range cat.All() {
		o.Set(e.ID, e.Norm(), b.SynonymsOf(e.ID))
	}
	return o
}

// OutputFromWalk runs the random-walk baseline on every canonical string.
func OutputFromWalk(model *alias.Model, w *randomwalk.Walker, name string) *Output {
	cat := model.Catalog()
	o := NewOutput(name, cat.Len())
	for _, e := range cat.All() {
		o.Set(e.ID, e.Norm(), w.Synonyms(e.Norm()))
	}
	return o
}

// Fig2Point is one operating point of Figure 2: the IPC threshold sweep on
// the movie data set (γ fixed at 0), reporting plain and weighted precision
// against coverage increase.
type Fig2Point struct {
	Beta      int
	Syns      int     // synonyms generated at this β
	Precision float64 // "Syns" series
	Weighted  float64 // "Syns W" series
	Coverage  float64 // x axis (1.2 = 120% increase)
}

// Figure2 sweeps the IPC threshold over the given β values (the paper uses
// 10 down to 2).
func Figure2(model *alias.Model, log *clicklog.Log, results []*core.Result, betas []int) ([]Fig2Point, error) {
	points := make([]Fig2Point, 0, len(betas))
	for _, beta := range betas {
		o, err := OutputFromResults(model, results, fmt.Sprintf("us-ipc%d", beta), beta, 0)
		if err != nil {
			return nil, err
		}
		p := Precision(model, log, o)
		points = append(points, Fig2Point{
			Beta:      beta,
			Syns:      o.TotalSynonyms(),
			Precision: p.Precision,
			Weighted:  p.WeightedPrecision,
			Coverage:  CoverageIncrease(model, log, o),
		})
	}
	return points, nil
}

// Fig3Point is one operating point of Figure 3: the ICR threshold sweep for
// a fixed IPC threshold.
type Fig3Point struct {
	Beta      int
	Gamma     float64
	Syns      int
	Precision float64
	Weighted  float64 // "Syns W <β>" series
	Coverage  float64
}

// Figure3 sweeps the ICR threshold γ for each IPC threshold β (the paper
// uses β ∈ {2,4,6}, γ from 0.9 down to 0.01).
func Figure3(model *alias.Model, log *clicklog.Log, results []*core.Result, betas []int, gammas []float64) ([]Fig3Point, error) {
	points := make([]Fig3Point, 0, len(betas)*len(gammas))
	for _, beta := range betas {
		for _, gamma := range gammas {
			o, err := OutputFromResults(model, results,
				fmt.Sprintf("us-ipc%d-icr%g", beta, gamma), beta, gamma)
			if err != nil {
				return nil, err
			}
			p := Precision(model, log, o)
			points = append(points, Fig3Point{
				Beta:      beta,
				Gamma:     gamma,
				Syns:      o.TotalSynonyms(),
				Precision: p.Precision,
				Weighted:  p.WeightedPrecision,
				Coverage:  CoverageIncrease(model, log, o),
			})
		}
	}
	return points, nil
}

// Table1Row is one row of Table I, extended with the precision columns the
// paper reports only in prose.
type Table1Row struct {
	Dataset string
	System  string
	HitExpansion
	Precision float64
	Weighted  float64
}

// Table1Systems bundles the three compared systems for one data set.
type Table1Systems struct {
	Dataset   string
	Model     *alias.Model
	Log       *clicklog.Log
	UsResults []*core.Result
	UsIPC     int
	UsICR     float64
	Wiki      *wiki.Baseline
	Walker    *randomwalk.Walker
}

// Table1 produces the three rows (Us, Wiki, Walk) for one data set.
func Table1(s Table1Systems) ([]Table1Row, error) {
	us, err := OutputFromResults(s.Model, s.UsResults, "Us", s.UsIPC, s.UsICR)
	if err != nil {
		return nil, err
	}
	wikiOut := OutputFromWiki(s.Model, s.Wiki, "Wiki")
	walkOut := OutputFromWalk(s.Model, s.Walker, "Walk(0.8)")

	rows := make([]Table1Row, 0, 3)
	for _, o := range []*Output{us, wikiOut, walkOut} {
		p := Precision(s.Model, s.Log, o)
		rows = append(rows, Table1Row{
			Dataset:      s.Dataset,
			System:       o.Name,
			HitExpansion: HitsAndExpansion(o),
			Precision:    p.Precision,
			Weighted:     p.WeightedPrecision,
		})
	}
	return rows, nil
}
