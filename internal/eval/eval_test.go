package eval

import (
	"math"
	"strings"
	"testing"

	"websyn/internal/alias"
	"websyn/internal/clicklog"
	"websyn/internal/entity"
)

func movieFixture(t *testing.T) (*alias.Model, *clicklog.Log) {
	t.Helper()
	cat, err := entity.Movies2008()
	if err != nil {
		t.Fatal(err)
	}
	model, err := alias.Build(cat, alias.MovieParams())
	if err != nil {
		t.Fatal(err)
	}
	log := clicklog.NewLog()
	// Hand volumes: the canonical of entity 0 + two informal strings.
	dark := cat.ByID(0)
	for i := 0; i < 100; i++ {
		log.AddImpression(dark.Norm())
	}
	for i := 0; i < 200; i++ {
		log.AddImpression("dark knight")
	}
	for i := 0; i < 50; i++ {
		log.AddImpression("batman") // hypernym
	}
	return model, log
}

func TestOutputSetNormalizesAndDedupes(t *testing.T) {
	o := NewOutput("test", 2)
	o.Set(0, "the dark knight", []string{
		"Dark Knight!", "dark knight", "", "the dark knight", "TDK",
	})
	got := o.PerEntity[0]
	if len(got) != 2 {
		t.Fatalf("synonyms = %v, want [dark knight tdk]", got)
	}
	if got[0] != "dark knight" || got[1] != "tdk" {
		t.Fatalf("synonyms = %v", got)
	}
}

func TestOutputCounts(t *testing.T) {
	o := NewOutput("test", 3)
	o.Set(0, "a", []string{"x", "y"})
	o.Set(2, "b", []string{"z"})
	if o.TotalSynonyms() != 3 {
		t.Fatalf("TotalSynonyms = %d", o.TotalSynonyms())
	}
	if o.Hits() != 2 {
		t.Fatalf("Hits = %d", o.Hits())
	}
}

func TestPrecisionJudging(t *testing.T) {
	model, log := movieFixture(t)
	o := NewOutput("test", model.Catalog().Len())
	dark := model.Catalog().ByID(0)
	// One true synonym (weight 200), one false (hypernym "batman", weight
	// 50).
	o.Set(dark.ID, dark.Norm(), []string{"dark knight", "batman"})

	r := Precision(model, log, o)
	if r.Generated != 2 || r.True != 1 {
		t.Fatalf("counts = %d/%d", r.True, r.Generated)
	}
	if r.Precision != 0.5 {
		t.Fatalf("precision = %v", r.Precision)
	}
	wantW := 200.0 / 250.0
	if math.Abs(r.WeightedPrecision-wantW) > 1e-9 {
		t.Fatalf("weighted = %v, want %v", r.WeightedPrecision, wantW)
	}
}

func TestPrecisionEmptyOutputIsOne(t *testing.T) {
	model, log := movieFixture(t)
	o := NewOutput("empty", model.Catalog().Len())
	r := Precision(model, log, o)
	if r.Precision != 1 || r.WeightedPrecision != 1 {
		t.Fatalf("empty output precision = %v/%v", r.Precision, r.WeightedPrecision)
	}
}

func TestCoverageIncrease(t *testing.T) {
	model, log := movieFixture(t)
	o := NewOutput("test", model.Catalog().Len())
	dark := model.Catalog().ByID(0)
	o.Set(dark.ID, dark.Norm(), []string{"dark knight"})

	// Base = canonical impressions (100); added = 200 -> 200% increase.
	got := CoverageIncrease(model, log, o)
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("coverage increase = %v, want 2.0", got)
	}
}

func TestCoverageCountsDistinctStringsOnce(t *testing.T) {
	model, log := movieFixture(t)
	o := NewOutput("test", model.Catalog().Len())
	dark := model.Catalog().ByID(0)
	iron := model.Catalog().ByID(1)
	// The same string mined for two entities must add its volume once.
	o.Set(dark.ID, dark.Norm(), []string{"dark knight"})
	o.Set(iron.ID, iron.Norm(), []string{"dark knight"})
	got := CoverageIncrease(model, log, o)
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("coverage increase = %v, want 2.0 (no double count)", got)
	}
}

func TestCoverageExcludesCanonicals(t *testing.T) {
	model, log := movieFixture(t)
	o := NewOutput("test", model.Catalog().Len())
	dark := model.Catalog().ByID(0)
	iron := model.Catalog().ByID(1)
	// Mining another entity's canonical adds no coverage (it was already
	// matched by the original strings).
	o.Set(iron.ID, iron.Norm(), []string{dark.Norm()})
	if got := CoverageIncrease(model, log, o); got != 0 {
		t.Fatalf("coverage increase = %v, want 0", got)
	}
}

func TestHitsAndExpansion(t *testing.T) {
	o := NewOutput("test", 100)
	for i := 0; i < 99; i++ {
		o.Set(i, "canon", []string{"s1", "s2", "s3", "s4"})
	}
	he := HitsAndExpansion(o)
	if he.Orig != 100 || he.Hits != 99 {
		t.Fatalf("he = %+v", he)
	}
	if math.Abs(he.HitRatio-0.99) > 1e-9 {
		t.Fatalf("hit ratio = %v", he.HitRatio)
	}
	if he.Synonyms != 99*4 {
		t.Fatalf("synonyms = %d", he.Synonyms)
	}
	want := float64(99*4+100) / 100
	if math.Abs(he.Expansion-want) > 1e-9 {
		t.Fatalf("expansion = %v, want %v", he.Expansion, want)
	}
}

func TestPaperExpansionArithmetic(t *testing.T) {
	// Sanity-check the metric against the paper's own rows: Movies Us has
	// 100 entries and 437 synonyms -> 537%.
	o := NewOutput("us", 100)
	count := 0
	for i := 0; i < 100 && count < 437; i++ {
		var syns []string
		for j := 0; j < 5 && count < 437; j++ {
			syns = append(syns, strings.Repeat("s", j+1))
			count++
		}
		o.Set(i, "canon", syns)
	}
	he := HitsAndExpansion(o)
	if math.Abs(he.Expansion-5.37) > 1e-9 {
		t.Fatalf("expansion = %v, want 5.37", he.Expansion)
	}
}

func TestLabelBreakdown(t *testing.T) {
	model, _ := movieFixture(t)
	o := NewOutput("test", model.Catalog().Len())
	dark := model.Catalog().ByID(0)
	o.Set(dark.ID, dark.Norm(), []string{"dark knight", "unknown gibberish"})
	bd := LabelBreakdown(model, o)
	if bd[alias.Synonym] != 1 {
		t.Fatalf("breakdown = %v", bd)
	}
	if bd[alias.Noise] != 1 {
		t.Fatalf("breakdown = %v", bd)
	}
}

func TestFormatHitExpansion(t *testing.T) {
	s := FormatHitExpansion("Movies", "Us", HitExpansion{
		Orig: 100, Hits: 99, HitRatio: 0.99, Synonyms: 437, Expansion: 5.37,
	})
	for _, want := range []string{"Movies", "Us", "99", "437", "537"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted row %q missing %q", s, want)
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	fig2 := RenderFigure2([]Fig2Point{{Beta: 4, Syns: 10, Precision: 0.5, Weighted: 0.6, Coverage: 1.2}})
	if !strings.Contains(fig2, "Figure 2") || !strings.Contains(fig2, "120.0%") {
		t.Fatalf("fig2 render: %q", fig2)
	}
	fig3 := RenderFigure3([]Fig3Point{{Beta: 4, Gamma: 0.1, Syns: 5, Weighted: 0.7, Coverage: 1.0}})
	if !strings.Contains(fig3, "Syns W 4") {
		t.Fatalf("fig3 render: %q", fig3)
	}
	t1 := RenderTable1([]Table1Row{{Dataset: "Movies", System: "Us",
		HitExpansion: HitExpansion{Orig: 100, Hits: 99, HitRatio: 0.99, Synonyms: 437, Expansion: 5.37}}})
	if !strings.Contains(t1, "Table I") || !strings.Contains(t1, "Movies") {
		t.Fatalf("table1 render: %q", t1)
	}
}

func TestOutputFromResultsRejectsUnknownInputs(t *testing.T) {
	model, _ := movieFixture(t)
	_, err := OutputFromResults(model, nil, "x", 4, 0.1)
	if err != nil {
		t.Fatalf("empty results should succeed: %v", err)
	}
}
