package analysis

import (
	"go/ast"
	"go/types"
)

// WriteCheck flags HTTP response writes whose error is silently
// discarded: fmt.Fprint* to an http.ResponseWriter, direct
// w.Write/w.WriteString calls, io.WriteString(w, ...), and
// json Encoder.Encode used as a bare statement. A failed response
// write usually means the client is gone; the handler should at
// minimum log it (see serve.writeJSON for the house pattern) so
// half-written responses are visible in operation, not silent.
var WriteCheck = &Analyzer{
	Name: "writecheck",
	Doc: "flags discarded errors from ResponseWriter writes " +
		"(fmt.Fprint*, Write, io.WriteString, json Encode)",
	Run: runWriteCheck,
}

// isResponseWriter matches values whose type is a named interface
// called ResponseWriter (net/http's, or a fixture's stub).
func isResponseWriter(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Name() != "ResponseWriter" {
		return false
	}
	return types.IsInterface(named)
}

func runWriteCheck(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkDiscardedWrite(pass, call)
			return true
		})
	}
}

// checkDiscardedWrite reports a call used as a bare statement when it
// is one of the response-write shapes.
func checkDiscardedWrite(pass *Pass, call *ast.CallExpr) {
	name := calleeName(call)
	switch name {
	case "Fprint", "Fprintf", "Fprintln":
		if calleePkgName(pass.Info, call) == "fmt" && len(call.Args) > 0 && isResponseWriter(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "fmt.%s to ResponseWriter discards the write error; check it and log failures (see serve.writeJSON)", name)
		}
	case "WriteString":
		// io.WriteString(w, s) or w.WriteString(s).
		if calleePkgName(pass.Info, call) == "io" && len(call.Args) > 0 && isResponseWriter(pass.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "io.WriteString to ResponseWriter discards the write error; check it and log failures (see serve.writeJSON)")
			return
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isResponseWriter(pass.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(), "ResponseWriter.WriteString discards the write error; check it and log failures (see serve.writeJSON)")
		}
	case "Write":
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isResponseWriter(pass.TypeOf(sel.X)) {
			pass.Reportf(call.Pos(), "ResponseWriter.Write discards the write error; check it and log failures (see serve.writeJSON)")
		}
	case "Encode":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		t := deref(pass.TypeOf(sel.X))
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Encoder" &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "json" {
			pass.Reportf(call.Pos(), "json Encoder.Encode discards the encode/write error; check it and log failures (see serve.writeJSON)")
		}
	}
}
