package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Analyzers identify the repo's marker types and functions by name
// (type name, method name, package name) rather than by full import
// path, so the same logic runs unchanged over the real packages and
// over the self-contained test fixtures, which re-declare the shapes
// locally. The names involved (Scratch, MatchScratch, PackedFuzzy,
// generation, decoder, ...) are specific enough that collisions with
// unrelated code are not a practical concern in this repo.

// deref unwraps pointers and aliases to the underlying (possibly
// named) type.
func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	return t
}

// namedName returns the name of t's (pointer-unwrapped) named type, or
// "".
func namedName(t types.Type) string {
	if n, ok := deref(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// typePkgName returns the package name declaring t's named type, or "".
func typePkgName(t types.Type) string {
	if n, ok := deref(t).(*types.Named); ok {
		if p := n.Obj().Pkg(); p != nil {
			return p.Name()
		}
	}
	return ""
}

// calleePkgName returns the name of the package a call's callee is
// declared in ("" for builtins, locals and indirect calls through
// variables).
func calleePkgName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name()
}

// calleeName returns the bare function or method name of a call, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// methodCall matches a call of the form X.name(...) where X's named
// type is typeName, returning the receiver expression.
func methodCall(info *types.Info, call *ast.CallExpr, typeName string, names ...string) (recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false
	}
	found := false
	for _, n := range names {
		if sel.Sel.Name == n {
			found = true
			break
		}
	}
	if !found {
		return nil, false
	}
	if namedName(info.TypeOf(sel.X)) != typeName {
		return nil, false
	}
	return sel.X, true
}

// unwrapConv strips parens and single-argument conversions/casts
// (e.g. int(x), uint64(x)) down to the underlying expression.
func unwrapConv(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		// A conversion's Fun denotes a type, not a value.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			e = call.Args[0]
			continue
		}
		return e
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (x in x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPkgLevelVar reports whether an expression is (or roots at) a
// package-level variable.
func isPkgLevelVar(info *types.Info, e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// funcDoc reports whether a function's doc comment contains a
// directive line (e.g. "websyn:hotpath").
func funcDoc(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, "//"+directive) {
			return true
		}
	}
	return false
}

// eachFuncDecl applies f to every function declaration with a body.
func eachFuncDecl(files []*ast.File, f func(*ast.FuncDecl)) {
	for _, file := range files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				f(fn)
			}
		}
	}
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the interface word — i.e.
// the conversion cannot allocate.
func pointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}
