package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and typechecked package under analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in dir into typechecked
// packages, without golang.org/x/tools: `go list -export -deps` names
// every package's source files and compiled export data, the targets
// are parsed from source, and their imports are satisfied from the gc
// export data via the standard importer's lookup hook. Works fully
// offline — the only inputs are the module's own source and the build
// cache.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, p := range targets {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typechecking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: p.ImportPath,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// newInfo allocates a types.Info with every map the analyzers read.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
