package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaEscape enforces the arena lifecycle rule from the zero-alloc
// match path (internal/match/arena.go, docs/PERFORMANCE.md "Memory
// model"): a *Response returned by Engine.MatchScratch or
// Engine.MatchPrepared — and the response a DoView/doGenView visit
// callback receives — aliases a pooled scratch arena that the next
// request rewrites. Such a value, or anything string- or slice-shaped
// derived from it, must not escape the function that owns the scratch:
// not returned, not stored in a struct field or package variable, not
// sent on a channel — unless it first passes through
// match.CloneResponse (or serve's detachResponse), which deep-copies
// exactly the arena-aliasing strings.
//
// Derived values of plain numeric or boolean type (len(res.Matches),
// res.Timing.TotalMicros) carry no aliases and are allowed anywhere.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc: "flags arena-backed match responses (MatchScratch/MatchPrepared/DoView) " +
		"escaping their scratch scope without CloneResponse/detachResponse",
	Run: runArenaEscape,
}

// arena-producing methods and the sanctioned detach functions.
var (
	arenaProducers = []string{"MatchScratch", "MatchPrepared"}
	arenaVisitors  = map[string]bool{"DoView": true, "doGenView": true}
	arenaCloners   = map[string]bool{"CloneResponse": true, "detachResponse": true}
)

func runArenaEscape(pass *Pass) {
	eachFuncDecl(pass.Files, func(fn *ast.FuncDecl) {
		checkArenaFunc(pass, fn.Body)
	})
}

// checkArenaFunc analyzes one function body: finds the arena-tainted
// variables, then flags their escapes. Visit closures passed to
// DoView/doGenView are analyzed as part of the enclosing body (their
// parameters are tainted too).
func checkArenaFunc(pass *Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}

	// Seed: results of MatchScratch/MatchPrepared calls, and *Response
	// parameters of function literals passed to a visit-style API.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if _, ok := methodCall(pass.Info, call, "Engine", arenaProducers...); ok {
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							if obj := pass.Info.Defs[id]; obj != nil {
								tainted[obj] = true
							} else if obj := pass.Info.Uses[id]; obj != nil {
								tainted[obj] = true
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if arenaVisitors[calleeName(n)] {
				for _, arg := range n.Args {
					lit, ok := ast.Unparen(arg).(*ast.FuncLit)
					if !ok || lit.Type.Params == nil {
						continue
					}
					for _, field := range lit.Type.Params.List {
						for _, name := range field.Names {
							if obj := pass.Info.Defs[name]; obj != nil && namedName(obj.Type()) == "Response" {
								tainted[obj] = true
							}
						}
					}
				}
			}
		}
		return true
	})

	// Propagate through plain `x := res` / `x = res` re-bindings so the
	// obvious laundering does not evade the check.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i := range asg.Rhs {
				src, ok := ast.Unparen(asg.Rhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				srcObj := pass.Info.Uses[src]
				if srcObj == nil || !tainted[srcObj] {
					continue
				}
				dst, ok := asg.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				dstObj := pass.Info.Defs[dst]
				if dstObj == nil {
					dstObj = pass.Info.Uses[dst]
				}
				if dstObj != nil && !tainted[dstObj] {
					tainted[dstObj] = true
					changed = true
				}
			}
			return true
		})
	}

	if len(tainted) == 0 {
		return
	}

	// Escape sites.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if exprAliasesArena(pass, res, tainted) {
					pass.Reportf(res.Pos(), "arena-backed response escapes via return without CloneResponse; it aliases a pooled scratch the next request rewrites")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !exprAliasesArena(pass, rhs, tainted) {
					continue
				}
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
					pass.Reportf(rhs.Pos(), "arena-backed response stored in a struct field without CloneResponse; it aliases a pooled scratch the next request rewrites")
				} else if isPkgLevelVar(pass.Info, lhs) {
					pass.Reportf(rhs.Pos(), "arena-backed response stored in a package variable without CloneResponse; it aliases a pooled scratch the next request rewrites")
				}
			}
		case *ast.SendStmt:
			if exprAliasesArena(pass, n.Value, tainted) {
				pass.Reportf(n.Value.Pos(), "arena-backed response sent on a channel without CloneResponse; it aliases a pooled scratch the next request rewrites")
			}
		}
		return true
	})
}

// exprAliasesArena reports whether e may carry arena-aliasing memory:
// it mentions a tainted variable outside any CloneResponse/detach
// call, and its own type can hold an alias (anything but a plain
// numeric/bool).
func exprAliasesArena(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	if t := pass.TypeOf(e); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString == 0 {
			return false // ints, floats, bools carry no alias
		}
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && arenaCloners[calleeName(call)] {
			return false // cloned: do not descend
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure mentioning the value does not put it in this
			// expression's result; escapes inside the closure body are
			// caught by the statement walk.
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && tainted[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
