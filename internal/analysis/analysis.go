// Package analysis is websyn's static-analysis suite: a set of
// custom analyzers, compiled into cmd/vetsuite, that mechanically
// enforce the repo's load-bearing invariants — the rules the compiler
// cannot check and that PRs 6–7 left to convention and regression
// tests:
//
//   - arenaescape: arena-backed match responses must not outlive their
//     scratch without passing through CloneResponse/detachResponse.
//   - mmappin: slabs and gram strings that may alias a memory-mapped
//     snapshot must never be re-homed without their finalizer pin.
//   - genhandle: serving state is reached through the atomic
//     generation handle per request, never cached across Install.
//   - wirebounds: the WFP1 codec's scalar-vs-count bound discipline
//     (see the spec in internal/fleet/wire/wire.go).
//   - hotpathalloc: //websyn:hotpath functions stay free of the
//     constructs that break the zero-alloc budget.
//   - writecheck: HTTP handlers must not discard write/encode errors.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built on the standard library only,
// so the repo stays dependency-free: packages load through
// `go list -export` and typecheck against gc export data (load.go),
// and analyzer tests run on self-contained fixtures (fixture.go).
//
// Two source annotations steer the suite (grammar in docs/ANALYSIS.md):
//
//	//websyn:hotpath
//	    on a function's doc comment: opt the function into
//	    hotpathalloc's allocation-construct checks.
//
//	//websyn:ignore <analyzer> <reason>
//	    on (or immediately above) an offending line: suppress that
//	    analyzer's diagnostics for the line. The reason is mandatory;
//	    a bare ignore is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //websyn:ignore directives.
	Name string
	// Doc is a one-paragraph description, shown by `vetsuite -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when the checker
// recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Suite returns every analyzer vetsuite runs, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		ArenaEscape,
		MmapPin,
		GenHandle,
		WireBounds,
		HotPathAlloc,
		WriteCheck,
	}
}

// ignoreDirective is one parsed //websyn:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

const ignorePrefix = "//websyn:ignore"

// parseIgnores extracts every //websyn:ignore directive in the package.
// Malformed directives (missing analyzer or reason) are returned
// separately so the driver can report them: a silent bad suppression is
// worse than none.
func parseIgnores(fset *token.FileSet, files []*ast.File) (ok []ignoreDirective, malformed []token.Pos) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, c.Pos())
					continue
				}
				pos := fset.Position(c.Pos())
				ok = append(ok, ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return ok, malformed
}

// Run executes one analyzer over one package and returns its findings
// with //websyn:ignore suppression applied. A directive suppresses
// diagnostics of its analyzer on the directive's own line and on the
// line directly below it (the standalone-comment-above form).
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	a.Run(pass)
	ignores, _ := parseIgnores(pkg.Fset, pkg.Files)
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if !suppressed(d, ignores) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

func suppressed(d Diagnostic, ignores []ignoreDirective) bool {
	for _, ig := range ignores {
		if ig.analyzer != d.Analyzer || ig.file != d.Pos.Filename {
			continue
		}
		if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// MalformedIgnores reports every //websyn:ignore directive in the
// package that lacks an analyzer name or a reason, as diagnostics of a
// pseudo-analyzer named "ignore". The driver appends them to its
// output so a typo'd suppression fails the build instead of silently
// suppressing nothing (or, worse, something).
func MalformedIgnores(pkg *Package) []Diagnostic {
	_, malformed := parseIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, pos := range malformed {
		out = append(out, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "ignore",
			Message:  "malformed //websyn:ignore: want `//websyn:ignore <analyzer> <reason>`",
		})
	}
	return out
}
