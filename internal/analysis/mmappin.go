package analysis

import (
	"go/ast"
	"go/types"
)

// MmapPin enforces the snapshot-pinning rule from the mmap path
// (internal/match/mmap.go): the packed slabs of a PackedFuzzy or
// FuzzyIndex (Grams/Offsets/Postings/Mults and their unexported
// twins) may point straight into a memory-mapped file whose lifetime
// is tied to the container's `backing` pin. Copying a slab reference
// into a new struct, a struct field, or a package variable without
// also carrying the pin (or the whole container) creates a dangling
// view: once the original container is garbage the mapping is
// unmapped and the slab faults.
//
// Local variables are fine — they cannot outlive the frame that holds
// the container alive — and so are stores back onto the same
// container (fi.offsets = append(fi.offsets, ...)).
var MmapPin = &Analyzer{
	Name: "mmappin",
	Doc: "flags packed-slab references (Grams/Offsets/Postings/Mults) copied out of a " +
		"PackedFuzzy/FuzzyIndex without carrying the mmap backing pin",
	Run: runMmapPin,
}

var (
	slabFields = map[string]bool{
		"Grams": true, "Offsets": true, "Postings": true, "Mults": true,
		"grams": true, "offsets": true, "postings": true, "mults": true,
	}
	slabContainers = map[string]bool{"PackedFuzzy": true, "FuzzyIndex": true}
	pinFields      = map[string]bool{"backing": true, "Backing": true}
)

// slabExtraction matches X.f where f is a slab field and X is a
// slab-container value, returning the container expression.
func slabExtraction(pass *Pass, e ast.Expr) (container ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
	if !isSel || !slabFields[sel.Sel.Name] {
		return nil, false
	}
	if !slabContainers[namedName(pass.TypeOf(sel.X))] {
		return nil, false
	}
	return sel.X, true
}

// sameRoot reports whether two expressions root at the same
// identifier (fi.offsets and fi.backing → true).
func sameRoot(pass *Pass, a, b ast.Expr) bool {
	ra, rb := rootIdent(a), rootIdent(b)
	if ra == nil || rb == nil {
		return false
	}
	oa := pass.Info.Uses[ra]
	ob := pass.Info.Uses[rb]
	return oa != nil && oa == ob
}

func runMmapPin(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkSlabLit(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if len(n.Rhs) != len(n.Lhs) {
						break
					}
					container, ok := slabExtraction(pass, n.Rhs[i])
					if !ok {
						continue
					}
					// Stores back onto the same container keep slab and
					// pin together.
					if sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
						if sameRoot(pass, sel, container) {
							continue
						}
						pass.Reportf(n.Rhs[i].Pos(), "packed slab stored in a struct field without the mmap backing pin; the mapping can be unmapped while this reference lives")
					} else if isPkgLevelVar(pass.Info, lhs) {
						pass.Reportf(n.Rhs[i].Pos(), "packed slab stored in a package variable without the mmap backing pin; the mapping can be unmapped while this reference lives")
					}
				}
			}
			return true
		})
	}
}

// checkSlabLit flags struct literals that capture a slab from a
// container but no pin: no sibling element carries the container
// itself, its backing field, or its Mapped()/Backing() accessor.
// Slice/array/map literals are exempt — they are iteration views, not
// re-homed containers; the dangerous shape is a new struct that
// outlives the original.
func checkSlabLit(pass *Pass, lit *ast.CompositeLit) {
	if t := pass.TypeOf(lit); t != nil {
		if _, ok := t.Underlying().(*types.Struct); !ok {
			return
		}
	}
	type extraction struct {
		expr      ast.Expr
		container ast.Expr
	}
	var slabs []extraction
	pinned := false

	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if container, ok := slabExtraction(pass, val); ok {
			slabs = append(slabs, extraction{val, container})
			continue
		}
		v := ast.Unparen(val)
		// The whole container as a sibling keeps the pin alive.
		if slabContainers[namedName(pass.TypeOf(v))] {
			pinned = true
		}
		// An explicit pin: X.backing, or the Mapped()/Backing() accessor.
		if sel, ok := v.(*ast.SelectorExpr); ok && pinFields[sel.Sel.Name] && slabContainers[namedName(pass.TypeOf(sel.X))] {
			pinned = true
		}
		if call, ok := v.(*ast.CallExpr); ok {
			if _, ok := methodCall(pass.Info, call, "PackedFuzzy", "Mapped", "Backing"); ok {
				pinned = true
			} else if _, ok := methodCall(pass.Info, call, "FuzzyIndex", "Mapped", "Backing"); ok {
				pinned = true
			}
		}
	}

	if pinned {
		return
	}
	for _, s := range slabs {
		pass.Reportf(s.expr.Pos(), "packed slab copied into a composite literal without the mmap backing pin; add the container's backing to the new struct or copy the data")
	}
}
