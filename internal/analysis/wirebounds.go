package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireBounds enforces the WFP1 codec rules spelled out in
// internal/fleet/wire/wire.go ("Wire codec spec"):
//
//   - B1: payload bytes are read only through the decoder's checked
//     helpers; a raw uvarint outside count/uint has no bound at all.
//   - B2: scalar fields use decoder.uint, whose bound is a pure value
//     cap. decoder.count's bound is min(cap, remaining bytes) — right
//     for element counts, silently wrong for scalars: a short frame
//     clamps the value instead of failing.
//   - B3: element counts use decoder.count, so a hostile length
//     prefix cannot make the decoder allocate or loop beyond the
//     bytes actually present.
//   - F2: any allocation sized from raw frame bytes (a length header
//     read with binary.*Endian) is checked against MaxFrame first.
//
// The analyzer only runs inside packages named "wire".
var WireBounds = &Analyzer{
	Name: "wirebounds",
	Doc: "enforces the WFP1 decoder discipline: uint for scalars, count for element " +
		"counts, no raw uvarints, MaxFrame-capped allocations",
	Run: runWireBounds,
}

// boundKind tags what bound discipline produced a local's value.
type boundKind int

const (
	kindNone  boundKind = iota
	kindCount           // decoder.count: min(cap, remaining-bytes) bound
	kindUint            // decoder.uint: value-only bound
	kindRaw             // binary.*Endian.Uint32/64: unchecked frame bytes
)

func runWireBounds(pass *Pass) {
	if pass.Pkg.Name() != "wire" {
		return
	}
	eachFuncDecl(pass.Files, func(fn *ast.FuncDecl) {
		checkWireFunc(pass, fn)
	})
}

// decoderBoundCall matches d.count(...) / d.uint(...) on a value of
// type decoder.
func decoderBoundCall(pass *Pass, e ast.Expr) (kind boundKind, call *ast.CallExpr) {
	c, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return kindNone, nil
	}
	if _, ok := methodCall(pass.Info, c, "decoder", "count"); ok {
		return kindCount, c
	}
	if _, ok := methodCall(pass.Info, c, "decoder", "uint"); ok {
		return kindUint, c
	}
	return kindNone, nil
}

// rawHeaderCall matches binary.LittleEndian.Uint32(...) and friends —
// a length header lifted straight from frame bytes.
func rawHeaderCall(e ast.Expr) bool {
	c, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Uint32" && sel.Sel.Name != "Uint64" && sel.Sel.Name != "Uint16") {
		return false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return inner.Sel.Name == "LittleEndian" || inner.Sel.Name == "BigEndian"
}

// exprKind resolves the bound discipline of an expression: a bound
// call, a raw header read, or a local known to hold one (through
// conversions and min(...)).
func exprKind(pass *Pass, e ast.Expr, locals map[types.Object]boundKind) boundKind {
	e = unwrapConv(pass.Info, e)
	if k, _ := decoderBoundCall(pass, e); k != kindNone {
		return k
	}
	if rawHeaderCall(e) {
		return kindRaw
	}
	if call, ok := e.(*ast.CallExpr); ok && calleeName(call) == "min" {
		// min(n, 64) inherits n's discipline — a tighter cap never
		// launders a wrong bound kind.
		for _, arg := range call.Args {
			if k := exprKind(pass, arg, locals); k != kindNone {
				return k
			}
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			return locals[obj]
		}
	}
	return kindNone
}

func checkWireFunc(pass *Pass, fn *ast.FuncDecl) {
	// count/uint themselves are the only sanctioned uvarint readers.
	inBoundHelper := fn.Name.Name == "count" || fn.Name.Name == "uint" || fn.Name.Name == "uvarint"

	locals := map[types.Object]boundKind{}
	// hasMaxFrameCheck: the function compares something against
	// MaxFrame, satisfying F2 for its raw header reads.
	hasMaxFrameCheck := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.GTR, token.LSS, token.GEQ, token.LEQ:
				for _, side := range []ast.Expr{b.X, b.Y} {
					if id := rootIdent(side); id != nil && id.Name == "MaxFrame" {
						hasMaxFrameCheck = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				k := exprKind(pass, n.Rhs[i], locals)
				if k == kindNone {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						locals[obj] = k
					} else if obj := pass.Info.Uses[id]; obj != nil {
						locals[obj] = k
					}
					continue
				}
				// B2: a field store is a scalar decode.
				if k == kindCount {
					pass.Reportf(n.Rhs[i].Pos(), "scalar field decoded with decoder.count, whose bound is min(cap, remaining bytes): a truncated frame silently clamps the value; use decoder.uint (wire spec rule B2)")
				}
			}
		case *ast.CallExpr:
			// B1: raw uvarint outside the bound helpers.
			if !inBoundHelper {
				if _, ok := methodCall(pass.Info, n, "decoder", "uvarint"); ok {
					pass.Reportf(n.Pos(), "raw decoder.uvarint outside count/uint: the value is unbounded; use decoder.count for element counts or decoder.uint for scalars (wire spec rule B1)")
				}
			}
			// B3 / F2: allocation sized from a wire-derived length.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) >= 2 {
				for _, sz := range n.Args[1:] {
					switch exprKind(pass, sz, locals) {
					case kindUint:
						pass.Reportf(sz.Pos(), "allocation sized from decoder.uint, whose bound is a value cap only: a hostile length prefix can demand the full cap with no bytes behind it; use decoder.count (wire spec rule B3)")
					case kindRaw:
						if !hasMaxFrameCheck {
							pass.Reportf(sz.Pos(), "allocation sized from a raw frame length with no MaxFrame check in this function (wire spec rule F2)")
						}
					}
				}
			}
		case *ast.ForStmt:
			// B3: looping a uint-bounded value while consuming payload
			// has the same failure mode as the allocation.
			if n.Cond == nil {
				return true
			}
			b, ok := n.Cond.(*ast.BinaryExpr)
			if !ok || (b.Op != token.LSS && b.Op != token.LEQ) {
				return true
			}
			if exprKind(pass, b.Y, locals) != kindUint {
				return true
			}
			bodyDecodes := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if sel, ok := c.Fun.(*ast.SelectorExpr); ok && namedName(pass.TypeOf(sel.X)) == "decoder" {
						bodyDecodes = true
					}
				}
				return true
			})
			if bodyDecodes {
				pass.Reportf(b.Y.Pos(), "loop bound from decoder.uint drives payload reads: a hostile count spins the decoder past the frame; use decoder.count (wire spec rule B3)")
			}
		}
		return true
	})
}
