package analysis_test

import (
	"strings"
	"testing"

	"websyn/internal/analysis"
	"websyn/internal/analysis/analysistest"
)

// Each analyzer is pinned to a fixture package under testdata/src that
// encodes the invariant's historical bug shapes (the PR 7
// decoder.count scalar regression, the dropped CloneResponse, the
// Packed() missing pin, the stale generation cache) alongside the
// conforming patterns that must stay silent.

func TestArenaEscape(t *testing.T) { analysistest.Run(t, analysis.ArenaEscape, "arenaescape") }

func TestMmapPin(t *testing.T) { analysistest.Run(t, analysis.MmapPin, "mmappin") }

func TestGenHandle(t *testing.T) { analysistest.Run(t, analysis.GenHandle, "genhandle") }

func TestWireBounds(t *testing.T) { analysistest.Run(t, analysis.WireBounds, "wirebounds") }

func TestHotPathAlloc(t *testing.T) { analysistest.Run(t, analysis.HotPathAlloc, "hotpathalloc") }

func TestWriteCheck(t *testing.T) { analysistest.Run(t, analysis.WriteCheck, "writecheck") }

// TestMalformedIgnore checks the directive grammar directly: a missing
// analyzer or reason is reported, a well-formed directive is not.
func TestMalformedIgnore(t *testing.T) {
	pkg, err := analysis.LoadFixture("testdata/src", "badignore")
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.MalformedIgnores(pkg)
	if len(diags) != 2 {
		t.Fatalf("got %d malformed-ignore diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "ignore" || !strings.Contains(d.Message, "malformed //websyn:ignore") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestSuiteOnRepo is the loader's integration test: Load resolves a
// real package of this module through `go list -export` and the gc
// importer, and the analyzers come back clean — the same invariant the
// CI analyze job enforces repo-wide.
func TestSuiteOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go list -export load in -short mode")
	}
	pkgs, err := analysis.Load("../..", []string{"./internal/fleet/wire"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	for _, a := range analysis.Suite() {
		for _, d := range analysis.Run(a, pkgs[0]) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}
