package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Fixture loading — the package half of the self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest (the `want`-mark test
// harness lives in the analysistest subpackage, which is the only part
// that imports testing). Fixture packages live under
// testdata/src/<dir>/ and declare every type they need locally (or
// import stub packages like testdata/src/fmt), so loading them needs
// no `go list`, no network and no export data: plain parsing plus
// go/types with a directory-backed importer.

// fixtureImporter resolves import paths against a fixture root
// directory: import "fmt" loads root/fmt. Packages are typechecked
// from source recursively and memoized.
type fixtureImporter struct {
	root  string
	fset  *token.FileSet
	cache map[string]*fixturePkg
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	p, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return p.types, nil
}

func (im *fixtureImporter) load(path string) (*fixturePkg, error) {
	if p, ok := im.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", path, err)
	}
	var files []*ast.File
	for _, e := range names {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q: no Go files", path)
	}
	info := newInfo()
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", path, err)
	}
	p := &fixturePkg{files: files, types: tpkg, info: info}
	im.cache[path] = p
	return p, nil
}

// LoadFixture loads testdata/src/<dir> (relative to root) as a
// typechecked Package.
func LoadFixture(root, dir string) (*Package, error) {
	im := &fixtureImporter{root: root, fset: token.NewFileSet(), cache: make(map[string]*fixturePkg)}
	p, err := im.load(dir)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath: dir,
		Fset:    im.fset,
		Files:   p.files,
		Types:   p.types,
		Info:    p.info,
	}, nil
}
