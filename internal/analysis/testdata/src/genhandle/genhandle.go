// Fixture for genhandle: the generation-handle shapes from
// internal/serve (atomic handle, immutable members, the sanctioned
// Generation wrapper) and the stale-cache patterns — including the
// historical cached-engine-across-Install shape.
package genhandle

type Engine struct{}

type Dictionary struct{}

type generation struct {
	id     uint64
	engine *Engine
	dict   *Dictionary
}

type genPtr struct{ g *generation }

func (p *genPtr) Load() *generation { return p.g }

type Server struct{ gen genPtr }

// Generation is the sanctioned pinned-snapshot wrapper (Prepare's
// return value).
type Generation struct{ g *generation }

type proxy struct {
	engine *Engine
	gen    *generation
}

var globalEngine *Engine

// badField is the stale-cache shape: the engine outlives the next
// Install inside a long-lived struct.
func badField(s *Server, p *proxy) {
	p.engine = s.gen.Load().engine // want `cached in a struct field`
}

func badGlobal(s *Server) {
	globalEngine = s.gen.Load().engine // want `cached in a package variable`
}

func badWhole(s *Server, p *proxy) {
	p.gen = s.gen.Load() // want `cached in a struct field`
}

// badTwoStep launders the member through a local first.
func badTwoStep(s *Server, p *proxy) {
	e := s.gen.Load().engine
	p.engine = e // want `cached in a struct field`
}

func badLit(s *Server) *proxy {
	return &proxy{engine: s.gen.Load().engine} // want `captured in a composite literal`
}

// goodLocal re-loads per call and uses the member locally.
func goodLocal(s *Server) *Engine {
	g := s.gen.Load()
	return g.engine
}

// goodWrapper is the sanctioned Prepare/Install handoff.
func goodWrapper(g *generation) *Generation {
	return &Generation{g: g}
}

// goodDerived: data derived from a member is plain data, not a handle.
func goodDerived(s *Server, p *proxy) uint64 {
	id := s.gen.Load().id
	return id
}
