// Package http is a fixture stub declaring the ResponseWriter shape
// writecheck keys on.
package http

type ResponseWriter interface {
	Write(b []byte) (int, error)
	WriteHeader(statusCode int)
}
