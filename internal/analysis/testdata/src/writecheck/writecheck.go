// Fixture for writecheck: discarded ResponseWriter/Encoder writes in
// every flagged shape, the checked equivalents, and the escape hatch.
package writecheck

import (
	"fmt"
	"http"
	"io"
	"json"
)

var lastErr error

func healthz(w http.ResponseWriter) {
	fmt.Fprintln(w, "ok") // want `fmt.Fprintln to ResponseWriter discards`
}

func handler(w http.ResponseWriter, body []byte) {
	w.Write(body)             // want `ResponseWriter.Write discards`
	io.WriteString(w, "done") // want `io.WriteString to ResponseWriter discards`
}

func encode(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v) // want `Encoder.Encode discards`
}

func checked(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		lastErr = err
	}
	if _, err := fmt.Fprintln(w, "ok"); err != nil {
		lastErr = err
	}
	if _, err := w.Write(nil); err != nil {
		lastErr = err
	}
}

type builder struct{}

func (b *builder) Write(p []byte) (int, error) { return len(p), nil }

// cold: Write on a non-ResponseWriter is none of our business.
func cold(b *builder) {
	b.Write(nil)
}

func ignored(w http.ResponseWriter) {
	fmt.Fprintln(w, "ok") //websyn:ignore writecheck best-effort probe, client liveness irrelevant
}
