// Package fmt is a fixture stub: just enough surface for analyzers
// that match fmt by package name. Implementations are inert.
package fmt

func Sprintf(format string, a ...any) string { return format }

func Fprint(w any, a ...any) (int, error) { return 0, nil }

func Fprintf(w any, format string, a ...any) (int, error) { return 0, nil }

func Fprintln(w any, a ...any) (int, error) { return 0, nil }
