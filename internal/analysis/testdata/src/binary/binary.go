// Package binary is a fixture stub for the binary.LittleEndian length
// reads wirebounds treats as raw frame headers.
package binary

type byteOrder struct{}

func (byteOrder) Uint16(b []byte) uint16 { return 0 }
func (byteOrder) Uint32(b []byte) uint32 { return 0 }
func (byteOrder) Uint64(b []byte) uint64 { return 0 }

var (
	LittleEndian byteOrder
	BigEndian    byteOrder
)
