// Package io is a fixture stub for the io.WriteString shape.
package io

func WriteString(w any, s string) (int, error) { return 0, nil }
