// Fixture for mmappin: a local PackedFuzzy with the slab fields and
// backing pin, plus the re-homing patterns that dangle a mapped slab.
package mmappin

type PackedFuzzy struct {
	NumStrings int
	Grams      []string
	Offsets    []int32
	Postings   []int32
	Mults      []int32
	backing    any
}

func (p *PackedFuzzy) Mapped() bool { return p.backing != nil }

type view struct {
	offsets []int32
	backing any
}

type wrapper struct {
	src      *PackedFuzzy
	postings []int32
}

type holder struct{ mults []int32 }

var leaked []int32

// leakyView is the historical Packed() bug shape: slabs re-homed into
// a new struct with the pin left behind.
func leakyView(p *PackedFuzzy) *view {
	return &view{
		offsets: p.Offsets, // want `composite literal without the mmap backing pin`
	}
}

// pinnedView carries the pin alongside the slab.
func pinnedView(p *PackedFuzzy) *view {
	return &view{
		offsets: p.Offsets,
		backing: p.backing,
	}
}

// wholeContainer keeps the container itself, which owns the pin.
func wholeContainer(p *PackedFuzzy) *wrapper {
	return &wrapper{src: p, postings: p.Postings}
}

func leakGlobal(p *PackedFuzzy) {
	leaked = p.Postings // want `package variable without the mmap backing pin`
}

func leakField(h *holder, p *PackedFuzzy) {
	h.mults = p.Mults // want `struct field without the mmap backing pin`
}

// sameContainer mutates a slab in place on its own container.
func sameContainer(p *PackedFuzzy) {
	p.Offsets = p.Offsets[:0]
}

// iterate ranges over a transient slice-literal view; nothing escapes.
func iterate(p *PackedFuzzy) int {
	n := 0
	for _, s := range [][]int32{p.Offsets, p.Postings} {
		n += len(s)
	}
	return n
}

// localCopy is fine: a local cannot outlive the frame pinning p.
func localCopy(p *PackedFuzzy) int {
	offs := p.Offsets
	return len(offs)
}
