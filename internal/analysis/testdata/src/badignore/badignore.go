// Fixture for the //websyn:ignore grammar itself, exercised by
// TestMalformedIgnore through the package API (not analysistest): one
// well-formed directive and two malformed ones.
package badignore

func ok() {
	//websyn:ignore writecheck a proper reason
	_ = 1
}

func missingReason() {
	//websyn:ignore writecheck
	_ = 2
}

func missingEverything() {
	//websyn:ignore
	_ = 3
}
