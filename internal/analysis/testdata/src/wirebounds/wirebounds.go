// Fixture for wirebounds: a local decoder with the count/uint bound
// helpers and the WFP1 misuse shapes — including the historical
// scalar-decoded-with-count regression.
package wire

import "binary"

const (
	MaxFrame   = 16 << 20
	maxListLen = 1 << 20
	maxTopK    = 50
)

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() uint64 { return 0 }

func (d *decoder) count(max int) int { return int(d.uvarint()) }

func (d *decoder) uint(max uint64) uint64 { return d.uvarint() }

func (d *decoder) str(max int) string { return "" }

type request struct {
	TopK  int
	Terms []string
}

// badScalar is the historical regression: a truncated frame makes
// count clamp the scalar instead of failing.
func badScalar(d *decoder) request {
	var r request
	r.TopK = d.count(maxTopK) // want `scalar field decoded with decoder.count`
	return r
}

func goodScalar(d *decoder) request {
	var r request
	r.TopK = int(d.uint(maxTopK))
	return r
}

func badList(d *decoder) []string {
	n := d.uint(maxListLen)
	out := make([]string, 0, n)      // want `allocation sized from decoder.uint`
	for i := uint64(0); i < n; i++ { // want `loop bound from decoder.uint`
		out = append(out, d.str(64))
	}
	return out
}

func goodList(d *decoder) []string {
	n := d.count(maxListLen)
	out := make([]string, 0, min(n, 64))
	for i := 0; i < n; i++ {
		out = append(out, d.str(64))
	}
	return out
}

func badRaw(d *decoder) uint64 {
	return d.uvarint() // want `raw decoder.uvarint outside count/uint`
}

func badFrame(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n) // want `no MaxFrame check`
}

func goodFrame(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil
	}
	return make([]byte, n)
}
