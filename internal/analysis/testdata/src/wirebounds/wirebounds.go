// Fixture for wirebounds: a local decoder with the count/uint bound
// helpers and the WFP1 misuse shapes — including the historical
// scalar-decoded-with-count regression.
package wire

import "binary"

const (
	MaxFrame   = 16 << 20
	maxListLen = 1 << 20
	maxTopK    = 50
)

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() uint64 { return 0 }

func (d *decoder) count(max int) int { return int(d.uvarint()) }

func (d *decoder) uint(max uint64) uint64 { return d.uvarint() }

func (d *decoder) str(max int) string { return "" }

type request struct {
	TopK  int
	Terms []string
}

// badScalar is the historical regression: a truncated frame makes
// count clamp the scalar instead of failing.
func badScalar(d *decoder) request {
	var r request
	r.TopK = d.count(maxTopK) // want `scalar field decoded with decoder.count`
	return r
}

func goodScalar(d *decoder) request {
	var r request
	r.TopK = int(d.uint(maxTopK))
	return r
}

func badList(d *decoder) []string {
	n := d.uint(maxListLen)
	out := make([]string, 0, n)      // want `allocation sized from decoder.uint`
	for i := uint64(0); i < n; i++ { // want `loop bound from decoder.uint`
		out = append(out, d.str(64))
	}
	return out
}

func goodList(d *decoder) []string {
	n := d.count(maxListLen)
	out := make([]string, 0, min(n, 64))
	for i := 0; i < n; i++ {
		out = append(out, d.str(64))
	}
	return out
}

func badRaw(d *decoder) uint64 {
	return d.uvarint() // want `raw decoder.uvarint outside count/uint`
}

// predicate mirrors the v2 attribute element of a WFP1 result: a list
// of structs mixing scalar fields (Start/End token offsets) with the
// list count itself, so both bound families appear in one decode.
type predicate struct {
	Column     string
	Start, End int
}

// badPredicates decodes the v2 attribute list with the wrong bound
// helper in both positions: the element count sized straight from uint
// and the scalar token offsets clamped with count.
func badPredicates(d *decoder) []predicate {
	n := d.uint(maxListLen)
	out := make([]predicate, 0, n)   // want `allocation sized from decoder.uint`
	for i := uint64(0); i < n; i++ { // want `loop bound from decoder.uint`
		var p predicate
		p.Column = d.str(64)
		p.Start = d.count(maxListLen) // want `scalar field decoded with decoder.count`
		p.End = d.count(maxListLen)   // want `scalar field decoded with decoder.count`
		out = append(out, p)
	}
	return out
}

// goodPredicates is the shipped shape: count bounds the list length
// (B3, capped pre-allocation), uint bounds each scalar offset (B2).
func goodPredicates(d *decoder) []predicate {
	n := d.count(maxListLen)
	out := make([]predicate, 0, min(n, 64))
	for i := 0; i < n; i++ {
		var p predicate
		p.Column = d.str(64)
		p.Start = int(d.uint(maxListLen))
		p.End = int(d.uint(maxListLen))
		out = append(out, p)
	}
	return out
}

func badFrame(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n) // want `no MaxFrame check`
}

func goodFrame(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil
	}
	return make([]byte, n)
}
