// Fixture for hotpathalloc: annotated functions exercising each
// forbidden construct, plus the allocation-free shapes that must stay
// unflagged and the //websyn:ignore escape hatch.
package hotpathalloc

import "fmt"

type item struct{ name string }

func sink(v any) {}

//websyn:hotpath
func badFmt(q string) string {
	return fmt.Sprintf("q=%s", q) // want `fmt call in //websyn:hotpath function`
}

//websyn:hotpath
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal in //websyn:hotpath function`
}

//websyn:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want `slice literal in //websyn:hotpath function`
}

//websyn:hotpath
func badCapture(items []item) func() int {
	return func() int { return len(items) } // want `captures "items"`
}

//websyn:hotpath
func badBox(n int) {
	sink(n) // want `boxes 1 non-pointer value`
}

//websyn:hotpath
func badConv(n int) any {
	return any(n) // want `boxed into interface`
}

// goodPointer: pointer-shaped values cross into interfaces for free.
//
//websyn:hotpath
func goodPointer(it *item) {
	sink(it)
}

// goodClosure captures nothing; no capture block is allocated.
//
//websyn:hotpath
func goodClosure() func(int) int {
	return func(x int) int { return x * 2 }
}

// okIgnored shows the escape hatch: Explain-gated formatting.
//
//websyn:hotpath
func okIgnored(q string) string {
	//websyn:ignore hotpathalloc formatting is cold, behind a debug flag
	return fmt.Sprintf("q=%s", q)
}

// coldPath is unannotated: free to allocate.
func coldPath() map[string]int {
	return map[string]int{"a": 1}
}
