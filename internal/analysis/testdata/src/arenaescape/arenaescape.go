// Fixture for arenaescape: local re-declarations of the arena API
// shapes (Engine.MatchScratch/MatchPrepared, CloneResponse,
// Server.DoView) plus the escape patterns the analyzer must catch —
// including the historical dropped-CloneResponse shape.
package arenaescape

type SpanMatch struct{ Span string }

type Response struct {
	Query   string
	Matches []SpanMatch
}

type Request struct{ Query string }

type Scratch struct{}

type Engine struct{}

func (e *Engine) MatchScratch(req Request, sc *Scratch) (*Response, error) {
	return &Response{}, nil
}

func (e *Engine) MatchPrepared(req Request, sc *Scratch) (*Response, error) {
	return &Response{}, nil
}

func CloneResponse(r *Response) Response { return *r }

type Server struct{}

func (s *Server) DoView(req Request, visit func(res *Response, cached bool)) error {
	visit(&Response{}, false)
	return nil
}

type holder struct {
	last  *Response
	query string
}

var global *Response

func badFieldStore(e *Engine, h *holder, sc *Scratch) {
	res, _ := e.MatchScratch(Request{}, sc)
	h.last = res // want `arena-backed response stored in a struct field`
}

func badReturn(e *Engine, sc *Scratch) *Response {
	res, _ := e.MatchPrepared(Request{}, sc)
	return res // want `escapes via return without CloneResponse`
}

func badGlobal(e *Engine, sc *Scratch) {
	res, _ := e.MatchScratch(Request{}, sc)
	global = res // want `stored in a package variable`
}

// badDoView is the dropped-clone shape: DoView's response is only
// valid during visit, but a derived string is smuggled into a field.
func badDoView(s *Server, h *holder) {
	_ = s.DoView(Request{}, func(res *Response, cached bool) {
		h.query = res.Query // want `stored in a struct field`
	})
}

// badAlias launders the response through a second local first.
func badAlias(e *Engine, sc *Scratch) *Response {
	res, _ := e.MatchScratch(Request{}, sc)
	r2 := res
	return r2 // want `escapes via return`
}

func badSend(e *Engine, sc *Scratch, ch chan *Response) {
	res, _ := e.MatchScratch(Request{}, sc)
	ch <- res // want `sent on a channel`
}

// goodClone detaches before returning — the sanctioned pattern.
func goodClone(e *Engine, sc *Scratch) Response {
	res, _ := e.MatchScratch(Request{}, sc)
	return CloneResponse(res)
}

// goodScalar derives alias-free data; fine to return.
func goodScalar(e *Engine, sc *Scratch) int {
	res, _ := e.MatchScratch(Request{}, sc)
	return len(res.Matches)
}

// goodLocal keeps the response inside the scratch scope.
func goodLocal(e *Engine, sc *Scratch) bool {
	res, _ := e.MatchScratch(Request{}, sc)
	keep := res
	return keep != nil
}
