// Package json is a fixture stub declaring the Encoder shape
// writecheck keys on.
package json

type Encoder struct{ w any }

func NewEncoder(w any) *Encoder { return &Encoder{w: w} }

func (e *Encoder) Encode(v any) error { return nil }
