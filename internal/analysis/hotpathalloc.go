package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc guards the zero-alloc request path (gated by
// TestEngineAllocBudget): functions annotated `//websyn:hotpath` in
// their doc comment must not contain the constructs that reliably
// allocate per call:
//
//   - fmt calls (every fmt call allocates for its variadic boxing);
//   - map literals and slice literals (escape analysis gives up on
//     most of them once they leave the statement);
//   - closures that capture variables (the capture block heap-escapes);
//   - interface conversions that box a non-pointer-shaped value,
//     explicit or implicit (including variadic ...any arguments).
//
// Non-capturing function literals, pointer/map/chan/func values
// crossing into interfaces, and array/struct literals are allowed —
// none of them force a heap allocation by themselves.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbids fmt, escaping map/slice literals, capturing closures and boxing " +
		"interface conversions inside //websyn:hotpath functions",
	Run: runHotPathAlloc,
}

// HotPathDirective is the doc-comment annotation that opts a function
// into the check.
const HotPathDirective = "websyn:hotpath"

func runHotPathAlloc(pass *Pass) {
	eachFuncDecl(pass.Files, func(fn *ast.FuncDecl) {
		if !funcDoc(fn, HotPathDirective) {
			return
		}
		checkHotFunc(pass, fn)
	})
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if calleePkgName(pass.Info, n) == "fmt" {
				pass.Reportf(n.Pos(), "fmt call in //websyn:hotpath function allocates for variadic boxing; build the string by hand or move formatting off the hot path")
				return true
			}
			checkImplicitBoxing(pass, n)
		case *ast.CompositeLit:
			switch pass.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in //websyn:hotpath function allocates; hoist it to a package variable or the scratch arena")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in //websyn:hotpath function allocates; reuse a scratch buffer instead")
			}
		case *ast.FuncLit:
			if captured := closureCaptures(pass, fn, n); captured != "" {
				pass.Reportf(n.Pos(), "closure in //websyn:hotpath function captures %q and heap-allocates its capture block; pass state explicitly or hoist the closure", captured)
			}
			return false // a non-capturing literal's body is its own (cold) scope
		}
		return true
	})
}

// checkImplicitBoxing flags arguments whose concrete non-pointer-shaped
// value is passed to an interface-typed parameter — the conversion the
// compiler inserts allocates unless the value is pointer-shaped.
func checkImplicitBoxing(pass *Pass, call *ast.CallExpr) {
	ftv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if ftv.IsType() {
		// Explicit conversion: flag any(x)/error(x) boxing a concrete
		// non-pointer-shaped value.
		if types.IsInterface(ftv.Type) && len(call.Args) == 1 {
			at := pass.TypeOf(call.Args[0])
			if at != nil && !types.IsInterface(at) && !pointerShaped(at) {
				if b, ok := at.Underlying().(*types.Basic); !ok || b.Kind() != types.UntypedNil {
					pass.Reportf(call.Pos(), "value of type %s boxed into interface %s in //websyn:hotpath function; boxing a non-pointer value allocates", at, ftv.Type)
				}
			}
		}
		return
	}
	sig, ok := ftv.Type.(*types.Signature)
	if !ok {
		return // builtin (len, append, make, min) — no boxing
	}
	params := sig.Params()
	var boxed []string
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // arg is already the slice
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		boxed = append(boxed, at.String())
	}
	// One diagnostic per call, at the call position, so a single
	// //websyn:ignore covers a multi-line argument list.
	if len(boxed) > 0 {
		pass.Reportf(call.Pos(), "call boxes %d non-pointer value(s) (%s) into interface parameters in //websyn:hotpath function; boxing allocates", len(boxed), strings.Join(boxed, ", "))
	}
}

// closureCaptures returns the name of a variable the literal captures
// from the enclosing function, or "".
func closureCaptures(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.Parent() == nil {
			return true
		}
		// Package-level and universe-scope objects are not captures.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		// Declared inside the literal itself (params, locals)?
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		// Declared inside the enclosing function but outside the
		// literal: a genuine capture.
		if fn.Pos() <= v.Pos() && v.Pos() < fn.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}
