// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against `want` comments — a self-contained
// analogue of golang.org/x/tools/go/analysis/analysistest, split out
// of the analysis package so cmd/vetsuite never links testing.
//
// Expected findings use analysistest's comment grammar:
//
//	w.Write(b) // want `unchecked error`
//
// Each `want` carries one or more backquoted or double-quoted regexps;
// every diagnostic on that line must match one, and every want must be
// matched by a diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"websyn/internal/analysis"
)

// wantRx extracts the quoted regexps of one `want` comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type wantMark struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// parseWants collects the expected-diagnostic marks of a fixture.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*wantMark, error) {
	var wants []*wantMark
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "want ")
				if i < 0 {
					continue
				}
				quoted := wantRx.FindAllString(c.Text[i+len("want "):], -1)
				if len(quoted) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quoted {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &wantMark{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants, nil
}

// Run loads testdata/src/<dir> (relative to the test's working
// directory), runs the analyzer over it, and fails the test on any
// mismatch between reported diagnostics and the fixture's `want`
// marks. //websyn:ignore suppression is active, so fixtures can assert
// the escape hatch works.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadFixture(filepath.Join("testdata", "src"), dir)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(a, pkg)
	diags = append(diags, analysis.MalformedIgnores(pkg)...)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}
