package analysis

import (
	"go/ast"
	"go/types"
)

// GenHandle enforces the generation-handle rule from the serving layer
// (internal/serve/server.go): the live `generation` is reached through
// an atomic pointer swapped by Install, and its members (engine, dict,
// fuzzy, cache, per-generation scratch pool, canonical tables) are
// immutable snapshots that become stale the moment a new snapshot is
// installed. Code must re-load the generation per request; caching a
// generation — or any of its members — in a struct field or package
// variable pins a stale dataset across hot reloads and, worse, mixes
// entities from different generations in one response.
//
// Returning a member from an accessor is fine (the caller's use is
// still per-call), as is the serve package's own `&Generation{g: g}`
// wrapper, which is the sanctioned way to hand a pinned snapshot to
// Prepare/Install.
var GenHandle = &Analyzer{
	Name: "genhandle",
	Doc: "flags generation members (engine/dict/fuzzy/cache/...) cached in struct fields " +
		"or package variables across Install",
	Run: runGenHandle,
}

// genMemberFields are the per-generation members whose lifetime is the
// generation's.
var genMemberFields = map[string]bool{
	"engine": true, "dict": true, "fuzzy": true, "cache": true,
	"canonicals": true, "byNorm": true, "synonyms": true, "scratch": true,
}

// genExtraction matches an expression that IS a generation value or a
// direct member selection on one (g.engine, s.gen.Load().dict) —
// after stripping conversions. Deeper derivations (g.dict.Len(),
// g.canonicals[id]) yield plain data, not handles, and are not
// matched.
func genExtraction(pass *Pass, e ast.Expr) bool {
	e = unwrapConv(pass.Info, e)
	if namedName(pass.TypeOf(e)) == "generation" {
		return true
	}
	if sel, ok := e.(*ast.SelectorExpr); ok && genMemberFields[sel.Sel.Name] {
		return namedName(pass.TypeOf(sel.X)) == "generation"
	}
	return false
}

func runGenHandle(pass *Pass) {
	eachFuncDecl(pass.Files, func(fn *ast.FuncDecl) {
		// Locals holding an extraction, so two-step escapes
		// (e := g.engine; p.engine = e) are caught too.
		handles := map[types.Object]bool{}
		isHandle := func(e ast.Expr) bool {
			if genExtraction(pass, e) {
				return true
			}
			if id, ok := unwrapConv(pass.Info, e).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && handles[obj] {
					return true
				}
			}
			return false
		}

		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if !isHandle(n.Rhs[i]) {
						continue
					}
					switch {
					case isFieldSelector(lhs):
						pass.Reportf(n.Rhs[i].Pos(), "generation member cached in a struct field; it goes stale at the next Install — re-load the generation per request")
					case isPkgLevelVar(pass.Info, lhs):
						pass.Reportf(n.Rhs[i].Pos(), "generation member cached in a package variable; it goes stale at the next Install — re-load the generation per request")
					default:
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := pass.Info.Defs[id]; obj != nil {
								handles[obj] = true
							} else if obj := pass.Info.Uses[id]; obj != nil {
								handles[obj] = true
							}
						}
					}
				}
			case *ast.CompositeLit:
				// &Generation{g: g} is the sanctioned pinned-snapshot
				// wrapper; any other literal capturing a member is a cache.
				if namedName(pass.TypeOf(n)) == "Generation" {
					return true
				}
				for _, elt := range n.Elts {
					val := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						val = kv.Value
					}
					if isHandle(val) {
						pass.Reportf(val.Pos(), "generation member captured in a composite literal; it goes stale at the next Install — re-load the generation per request")
					}
				}
			}
			return true
		})
	})
}

// isFieldSelector reports whether lhs is a selector store (x.f = ...)
// rather than a plain local.
func isFieldSelector(lhs ast.Expr) bool {
	_, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	return ok
}
