package randomwalk

import (
	"math"
	"testing"

	"websyn/internal/clickgraph"
	"websyn/internal/clicklog"
)

// chainLog builds a graph where query "start" and "near" co-click page 1,
// and "far" connects only through a second hop: start-1-near, near-2-far.
func chainLog() *clicklog.Log {
	l := clicklog.NewLog()
	add := func(q string, p, n int) {
		for i := 0; i < n; i++ {
			l.AddClick(q, p)
		}
	}
	add("start", 1, 10)
	add("near", 1, 10)
	add("near", 2, 2)
	add("far", 2, 10)
	add("isolated", 99, 5)
	return l
}

func walker(t *testing.T, cfg Config) *Walker {
	t.Helper()
	w, err := NewWalker(clickgraph.Build(chainLog()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidation(t *testing.T) {
	g := clickgraph.Build(chainLog())
	if _, err := NewWalker(g, Config{SelfTransition: 1.0, Steps: 4}); err == nil {
		t.Fatal("self-transition 1.0 accepted")
	}
	if _, err := NewWalker(g, Config{SelfTransition: 0.8, Steps: 1}); err == nil {
		t.Fatal("1 step accepted")
	}
	if _, err := NewWalker(g, Config{SelfTransition: 0.8, Steps: 4, MinProb: 2}); err == nil {
		t.Fatal("MinProb 2 accepted")
	}
	if _, err := NewWalker(nil, DefaultConfig()); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestDefaultConfigSelfTransition(t *testing.T) {
	if DefaultConfig().SelfTransition != 0.8 {
		t.Fatal("default self-transition must be the paper's 0.8")
	}
}

func TestWalkMissingStartNode(t *testing.T) {
	w := walker(t, DefaultConfig())
	// The documented failure mode: a string never issued as a query
	// produces nothing.
	if got := w.Synonyms("nonexistent query"); got != nil {
		t.Fatalf("missing start node produced %v", got)
	}
}

func TestWalkFindsCoClickedQuery(t *testing.T) {
	cfg := Config{SelfTransition: 0.8, Steps: 4, MinProb: 0.001, MaxSynonyms: 0}
	w := walker(t, cfg)
	ranked := w.Walk("start")
	if len(ranked) == 0 {
		t.Fatal("no walk output")
	}
	if ranked[0].Text != "near" {
		t.Fatalf("top output %q, want near", ranked[0].Text)
	}
	// "far" is reachable only via 4 steps; its mass must be below "near".
	var farProb, nearProb float64
	for _, r := range ranked {
		switch r.Text {
		case "near":
			nearProb = r.Prob
		case "far":
			farProb = r.Prob
		}
	}
	if nearProb == 0 {
		t.Fatal("near not in output")
	}
	if farProb >= nearProb {
		t.Fatalf("far (%f) should rank below near (%f)", farProb, nearProb)
	}
	// "isolated" is unreachable from start.
	for _, r := range ranked {
		if r.Text == "isolated" {
			t.Fatal("isolated query reached")
		}
	}
}

func TestWalkExcludesStart(t *testing.T) {
	w := walker(t, Config{SelfTransition: 0.8, Steps: 4, MinProb: 0, MaxSynonyms: 0})
	for _, r := range w.Walk("start") {
		if r.Text == "start" {
			t.Fatal("walk returned its own start node")
		}
	}
}

func TestWalkNormalizesInput(t *testing.T) {
	w := walker(t, Config{SelfTransition: 0.8, Steps: 4, MinProb: 0.001, MaxSynonyms: 0})
	if got := w.Synonyms("  START! "); len(got) == 0 {
		t.Fatal("normalized input not matched")
	}
}

func TestMinProbFilters(t *testing.T) {
	loose := walker(t, Config{SelfTransition: 0.8, Steps: 4, MinProb: 0.0001, MaxSynonyms: 0})
	tight := walker(t, Config{SelfTransition: 0.8, Steps: 4, MinProb: 0.5, MaxSynonyms: 0})
	if len(loose.Walk("start")) <= len(tight.Walk("start")) {
		t.Fatal("tighter MinProb did not reduce output")
	}
}

func TestMaxSynonymsCaps(t *testing.T) {
	w := walker(t, Config{SelfTransition: 0.8, Steps: 4, MinProb: 0, MaxSynonyms: 1})
	if got := w.Synonyms("start"); len(got) > 1 {
		t.Fatalf("cap violated: %v", got)
	}
}

func TestProbabilityMassConserved(t *testing.T) {
	// With MinProb 0 and no cap, total output mass plus start/page mass
	// must not exceed 1 (the walk redistributes, never creates mass).
	w := walker(t, Config{SelfTransition: 0.5, Steps: 6, MinProb: 0, MaxSynonyms: 0})
	total := 0.0
	for _, r := range w.Walk("start") {
		total += r.Prob
	}
	if total > 1+1e-9 {
		t.Fatalf("query-side output mass %f exceeds 1", total)
	}
	if total <= 0 {
		t.Fatal("no mass reached other queries")
	}
}

func TestHigherSelfTransitionSpreadsLess(t *testing.T) {
	sticky := walker(t, Config{SelfTransition: 0.95, Steps: 4, MinProb: 0, MaxSynonyms: 0})
	mobile := walker(t, Config{SelfTransition: 0.3, Steps: 4, MinProb: 0, MaxSynonyms: 0})
	var stickyNear, mobileNear float64
	for _, r := range sticky.Walk("start") {
		if r.Text == "near" {
			stickyNear = r.Prob
		}
	}
	for _, r := range mobile.Walk("start") {
		if r.Text == "near" {
			mobileNear = r.Prob
		}
	}
	if stickyNear >= mobileNear {
		t.Fatalf("self-transition 0.95 spread more (%f) than 0.3 (%f)", stickyNear, mobileNear)
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("Direction.String mismatch")
	}
}

func TestBackwardWalkDownweightsPopularDestinations(t *testing.T) {
	// Page 1 is hugely popular (clicked by "big" 100 times); page 2 is
	// niche. Forward from "start" favours the popular page's co-query;
	// backward penalizes it.
	l := clicklog.NewLog()
	add := func(q string, p, n int) {
		for i := 0; i < n; i++ {
			l.AddClick(q, p)
		}
	}
	add("start", 1, 5)
	add("start", 2, 5)
	add("big", 1, 100)
	add("niche", 2, 5)
	g := clickgraph.Build(l)

	fwd, err := NewWalker(g, Config{SelfTransition: 0.5, Steps: 2, MinProb: 0, MaxSynonyms: 0, Direction: Forward})
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := NewWalker(g, Config{SelfTransition: 0.5, Steps: 2, MinProb: 0, MaxSynonyms: 0, Direction: Backward})
	if err != nil {
		t.Fatal(err)
	}
	probOf := func(w *Walker, text string) float64 {
		for _, r := range w.Walk("start") {
			if r.Text == text {
				return r.Prob
			}
		}
		return 0
	}
	// Forward: "big" absorbs most of page 1's mass (it did most clicking).
	if probOf(fwd, "big") <= probOf(fwd, "niche") {
		t.Fatalf("forward: big %f should beat niche %f",
			probOf(fwd, "big"), probOf(fwd, "niche"))
	}
	// Backward: mass into page 1 is divided by its huge in-degree, so the
	// niche co-query wins.
	if probOf(bwd, "niche") <= probOf(bwd, "big") {
		t.Fatalf("backward: niche %f should beat big %f",
			probOf(bwd, "niche"), probOf(bwd, "big"))
	}
}

func TestBackwardWalkDeterministic(t *testing.T) {
	w := walker(t, Config{SelfTransition: 0.5, Steps: 4, MinProb: 0, MaxSynonyms: 0, Direction: Backward})
	a, b := w.Walk("start"), w.Walk("start")
	if len(a) != len(b) {
		t.Fatal("backward walk output count differs across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backward walk output %d differs", i)
		}
	}
}

func TestWalkDeterministic(t *testing.T) {
	w := walker(t, DefaultConfig())
	a := w.Walk("start")
	b := w.Walk("start")
	if len(a) != len(b) {
		t.Fatal("walk output count differs")
	}
	for i := range a {
		if a[i].Text != b[i].Text || math.Abs(a[i].Prob-b[i].Prob) > 1e-15 {
			t.Fatalf("walk output %d differs", i)
		}
	}
}
