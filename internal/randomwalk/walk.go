// Package randomwalk implements the click-graph random-walk baseline the
// paper compares against in Section IV.B: the walk of Craswell & Szummer
// ("Random walks on the click graph", SIGIR 2007) as used by Fuxman et al.
// for keyword generation, with the default self-transition probability 0.8
// — the paper's "Walk(0.8)".
//
// The walk starts at the input string's query node and spreads probability
// mass over the bipartite click graph: with probability s the walker stays
// put, with probability 1-s it follows a click edge chosen proportionally
// to click counts. After a fixed number of steps, the other query nodes
// are ranked by probability mass; sufficiently probable ones are emitted as
// synonyms.
//
// The baseline's structural weakness — the one Table I exposes on the
// camera data set — falls out of the definition: the walk operates entirely
// on the click graph, so an input string that was never issued as a query
// has no start node and produces nothing ("if a query has not been asked
// then no synonym will be produced").
package randomwalk

import (
	"fmt"
	"sort"

	"websyn/internal/clickgraph"
	"websyn/internal/textnorm"
)

// Direction selects the edge normalization of the walk.
type Direction int

const (
	// Forward normalizes transitions by the source node's click total:
	// P(v|u) = (1-s) * C(u,v) / Σ_w C(u,w). Mass is conserved.
	Forward Direction = iota
	// Backward normalizes by the destination node's click total:
	// P(v|u) = (1-s) * C(u,v) / Σ_w C(w,v) — the "backward" transition of
	// Craswell & Szummer, which downweights popular destinations and
	// models "where would a walker have come from". Mass is not conserved
	// (the matrix is substochastic), so Backward scores are comparable
	// only within one walk.
	Backward
)

// String names the direction.
func (d Direction) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Config tunes the walk.
type Config struct {
	// SelfTransition is the probability s of staying at the current node
	// each step. The paper evaluates the default 0.8.
	SelfTransition float64
	// Steps is the number of walk steps. Mass reaches other query nodes in
	// multiples of two steps (query -> page -> query).
	Steps int
	// MinProb is the probability-mass threshold for emitting a query node
	// as a synonym.
	MinProb float64
	// MaxSynonyms caps the output per input (0 = uncapped).
	MaxSynonyms int
	// Direction selects forward (default) or backward edge normalization.
	Direction Direction
}

// DefaultConfig mirrors the cited work's defaults: self-transition 0.8,
// a short walk, and a small mass threshold.
func DefaultConfig() Config {
	return Config{
		SelfTransition: 0.8,
		Steps:          4,
		MinProb:        0.012,
		MaxSynonyms:    3,
	}
}

// check validates the configuration.
func (c Config) check() error {
	if c.SelfTransition < 0 || c.SelfTransition >= 1 {
		return fmt.Errorf("randomwalk: self-transition %v outside [0,1)", c.SelfTransition)
	}
	if c.Steps < 2 {
		return fmt.Errorf("randomwalk: need at least 2 steps, got %d", c.Steps)
	}
	if c.MinProb < 0 || c.MinProb > 1 {
		return fmt.Errorf("randomwalk: MinProb %v outside [0,1]", c.MinProb)
	}
	return nil
}

// Walker runs walks over one click graph.
type Walker struct {
	cfg   Config
	graph *clickgraph.Graph
}

// NewWalker builds a walker. The graph should be the same one the miner
// uses, so the comparison is apples-to-apples.
func NewWalker(g *clickgraph.Graph, cfg Config) (*Walker, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("randomwalk: graph is required")
	}
	return &Walker{cfg: cfg, graph: g}, nil
}

// Ranked is one ranked walk output.
type Ranked struct {
	Text string
	Prob float64
}

// Synonyms returns the synonym strings for the input, best first. Inputs
// that never occur as queries in the click log yield nil.
func (w *Walker) Synonyms(input string) []string {
	ranked := w.Walk(input)
	if len(ranked) == 0 {
		return nil
	}
	out := make([]string, 0, len(ranked))
	for _, r := range ranked {
		out = append(out, r.Text)
	}
	return out
}

// Walk runs the walk and returns the thresholded, ranked query
// distribution, excluding the start node.
func (w *Walker) Walk(input string) []Ranked {
	norm := textnorm.Normalize(input)
	start, ok := w.graph.QueryNode(norm)
	if !ok {
		return nil // the walk's documented failure mode
	}
	s := w.cfg.SelfTransition
	qDist := map[int]float64{start: 1}
	pDist := map[int]float64{}
	for step := 0; step < w.cfg.Steps; step++ {
		nextQ := make(map[int]float64, len(qDist))
		nextP := make(map[int]float64, len(pDist))
		for qn, mass := range qDist {
			nextQ[qn] += s * mass
			spread := (1 - s) * mass
			for _, e := range w.graph.PagesOf(qn) {
				var total float64
				if w.cfg.Direction == Backward {
					total = float64(w.graph.PageClicks(e.To))
				} else {
					total = float64(w.graph.QueryClicks(qn))
				}
				if total == 0 {
					continue
				}
				nextP[e.To] += spread * float64(e.Count) / total
			}
		}
		for pn, mass := range pDist {
			nextP[pn] += s * mass
			spread := (1 - s) * mass
			for _, e := range w.graph.QueriesOf(pn) {
				var total float64
				if w.cfg.Direction == Backward {
					total = float64(w.graph.QueryClicks(e.To))
				} else {
					total = float64(w.graph.PageClicks(pn))
				}
				if total == 0 {
					continue
				}
				nextQ[e.To] += spread * float64(e.Count) / total
			}
		}
		qDist, pDist = nextQ, nextP
	}

	ranked := make([]Ranked, 0, len(qDist))
	for qn, mass := range qDist {
		if qn == start || mass < w.cfg.MinProb {
			continue
		}
		ranked = append(ranked, Ranked{Text: w.graph.QueryText(qn), Prob: mass})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Prob != ranked[j].Prob {
			return ranked[i].Prob > ranked[j].Prob
		}
		return ranked[i].Text < ranked[j].Text
	})
	if w.cfg.MaxSynonyms > 0 && len(ranked) > w.cfg.MaxSynonyms {
		ranked = ranked[:w.cfg.MaxSynonyms]
	}
	return ranked
}
