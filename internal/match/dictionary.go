// Package match implements the downstream application the paper's title
// promises: fuzzy matching of free-text Web queries to structured data.
//
// The miner (internal/core) produces, per entity, an expanded set of
// equivalent strings. This package compiles those strings into a token-trie
// dictionary and segments incoming queries against it: the query "indy 4
// near san fran" matches the movie entity on the span "indy 4" and leaves
// the remainder "near san fran" for downstream interpretation (location,
// showtimes, ...), exactly the Bing scenario in the paper's introduction.
//
// Matching is fuzzy on two axes:
//
//   - Vocabulary: the dictionary contains the mined informal strings, not
//     just canonical ones, so "digital rebel xt" resolves to the Canon EOS
//     350D without any textual overlap.
//   - Typos: unknown query tokens are corrected to dictionary vocabulary
//     within edit distance 1 ("twilght" -> "twilight").
package match

import (
	"sort"
	"strings"

	"websyn/internal/textnorm"
)

// Entry is one dictionary payload: a string resolves to an entity with a
// confidence score (higher is stronger evidence; the facade feeds mined
// IPC/ICR-derived scores or log frequencies).
type Entry struct {
	EntityID int
	Score    float64
	// Source records where the string came from ("canonical", "mined",
	// "wiki", ...) for diagnostics.
	Source string
}

// trieNode is one node of the token trie.
type trieNode struct {
	children map[string]*trieNode
	entries  []Entry // non-empty when a dictionary string ends here
}

func newTrieNode() *trieNode {
	return &trieNode{children: make(map[string]*trieNode)}
}

// Dictionary is the compiled synonym dictionary.
type Dictionary struct {
	root    *trieNode
	size    int             // (string, entity) pairs
	strings int             // distinct strings
	vocab   map[string]bool // every token appearing in any dictionary string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{root: newTrieNode(), vocab: make(map[string]bool)}
}

// Add inserts one string with its payload. The string is normalized; empty
// strings are ignored. Duplicate (string, entity) pairs keep the higher
// score.
func (d *Dictionary) Add(text string, e Entry) {
	tokens := textnorm.Tokenize(text)
	if len(tokens) == 0 {
		return
	}
	node := d.root
	for _, tok := range tokens {
		d.vocab[tok] = true
		next := node.children[tok]
		if next == nil {
			next = newTrieNode()
			node.children[tok] = next
		}
		node = next
	}
	for i := range node.entries {
		if node.entries[i].EntityID == e.EntityID {
			if e.Score > node.entries[i].Score {
				node.entries[i].Score = e.Score
				node.entries[i].Source = e.Source
			}
			return
		}
	}
	if len(node.entries) == 0 {
		d.strings++
	}
	node.entries = append(node.entries, e)
	d.size++
}

// Len returns the number of (string, entity) pairs.
func (d *Dictionary) Len() int { return d.size }

// DistinctStrings returns the number of distinct dictionary strings —
// len(Strings()) without walking the trie. The fuzzy-index loaders use it
// to reject a packed posting file built against a different dictionary.
func (d *Dictionary) DistinctStrings() int { return d.strings }

// HasToken reports whether tok occurs in any dictionary string.
func (d *Dictionary) HasToken(tok string) bool { return d.vocab[tok] }

// Lookup resolves an exact (normalized) string to its entries, best score
// first. It does not segment; see Segment for free-text queries.
func (d *Dictionary) Lookup(text string) []Entry {
	node := d.root
	for _, tok := range textnorm.Tokenize(text) {
		node = node.children[tok]
		if node == nil {
			return nil
		}
	}
	if len(node.entries) == 0 {
		return nil
	}
	out := append([]Entry(nil), node.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].EntityID < out[j].EntityID
	})
	return out
}

// lookupNormEntries resolves an already-normalized string (single-space
// separated tokens, as every indexed string and arena span is) to its
// trie node's entries without tokenizing, copying or sorting — the
// arena path's exact lookup. The returned slice is the node's own
// storage in insertion order: read-only, and not score-sorted (use
// bestEntryOf or sortedEntries).
func (d *Dictionary) lookupNormEntries(text string) []Entry {
	node := d.root
	for len(text) > 0 {
		tok := text
		if i := strings.IndexByte(text, ' '); i >= 0 {
			tok, text = text[:i], text[i+1:]
		} else {
			text = ""
		}
		node = node.children[tok]
		if node == nil {
			return nil
		}
	}
	return node.entries
}

// ForEach visits every (string, entries) pair in lexicographic string
// order. The entries slice must not be mutated.
func (d *Dictionary) ForEach(visit func(text string, entries []Entry)) {
	var walk func(node *trieNode, prefix []string)
	walk = func(node *trieNode, prefix []string) {
		if len(node.entries) > 0 {
			visit(joinTokens(prefix), node.entries)
		}
		keys := make([]string, 0, len(node.children))
		for k := range node.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			walk(node.children[k], append(prefix, k))
		}
	}
	walk(d.root, nil)
}

// Strings returns every dictionary string in lexicographic order.
func (d *Dictionary) Strings() []string {
	var out []string
	d.ForEach(func(text string, _ []Entry) { out = append(out, text) })
	return out
}

// correct returns the dictionary vocabulary token closest to tok within
// edit distance 1, or "" when none or ambiguous. Only tokens of length >= 4
// are corrected: short tokens ("4", "tv") produce too many false friends.
func (d *Dictionary) correct(tok string) string {
	if len(tok) < 4 || d.vocab[tok] {
		return ""
	}
	best := ""
	for v := range d.vocab {
		if len(v) < 3 {
			continue
		}
		dl := len(v) - len(tok)
		if dl > 1 || dl < -1 {
			continue
		}
		if textnorm.EditDistanceAtMost(tok, v, 1) {
			if best != "" && best != v {
				return "" // ambiguous correction: refuse to guess
			}
			best = v
		}
	}
	return best
}
