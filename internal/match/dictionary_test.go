package match

import "testing"

// TestAddDuplicateEntryMerge pins the duplicate-entry merge contract:
// when the same (string, entity) pair is added twice, the higher score
// wins and carries its own Source with it — provenance in traces and
// diagnostics must describe the entry that actually won, not the one it
// displaced. A lower-scoring duplicate changes nothing.
func TestAddDuplicateEntryMerge(t *testing.T) {
	d := NewDictionary()
	d.Add("indy 4", Entry{EntityID: 7, Score: 0.4, Source: "mined"})

	// Higher score: both Score and Source update together.
	d.Add("indy 4", Entry{EntityID: 7, Score: 0.9, Source: "wiki"})
	got := d.Lookup("indy 4")
	if len(got) != 1 {
		t.Fatalf("Lookup = %+v, want one merged entry", got)
	}
	if got[0].Score != 0.9 || got[0].Source != "wiki" {
		t.Fatalf("winning duplicate = %+v, want score 0.9 from wiki (stale Source?)", got[0])
	}

	// Lower score: the losing duplicate must not touch either field.
	d.Add("indy 4", Entry{EntityID: 7, Score: 0.2, Source: "loser"})
	got = d.Lookup("indy 4")
	if got[0].Score != 0.9 || got[0].Source != "wiki" {
		t.Fatalf("losing duplicate overwrote the entry: %+v", got[0])
	}

	// Merging never double-counts sizes.
	if d.Len() != 1 || d.DistinctStrings() != 1 {
		t.Fatalf("Len %d DistinctStrings %d after duplicate adds, want 1, 1", d.Len(), d.DistinctStrings())
	}

	// A different entity on the same string is a genuine second entry,
	// untouched by the merge path.
	d.Add("indy 4", Entry{EntityID: 8, Score: 0.5, Source: "mined"})
	if d.Len() != 2 || d.DistinctStrings() != 1 {
		t.Fatalf("Len %d DistinctStrings %d after second entity, want 2, 1", d.Len(), d.DistinctStrings())
	}
}
