package match

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"websyn/internal/textnorm"
)

// The arena engine is a parallel implementation of Engine.Match; these
// tests pin it byte-identical to the reference path. The repo-root
// differential suite repeats the comparison over the three full domain
// snapshots (movies, cameras, software).

// diffQueries covers every code path the two engines share: exact trie
// spans, typos, concatenations, span-fuzzy bridges, remainders, empty
// and degenerate input, Unicode, and alternate-producing ambiguity.
var diffQueries = []string{
	"indy 4 near san fran",
	"Indiana Jones and the Kingdom of the Crystal Skull",
	"kingdom of the cristal skull tickets",
	"twilght showtimes",
	"madagascar2",
	"madagascar 2 dvd",
	"digital rebel xt review",
	"canon eos 350d",
	"cannon eos 350d",
	"quantum of solace imdb",
	"kungfu panda",
	"!!!",
	"   ",
	"a",
	"x",
	"350d",
	"MADAGASCAR Escape 2 AFRICA",
	"indianajones 4 tickets",
	"skull crystal kingdom",
	"Mötley Crüe tickets", // non-ASCII tokens
	"naïve café twilight",
	"the the the",
	"twilight twilight twilight",
	"indy 4 indy 4",
	"reviews",
	"showtimes near me",
}

// diffRequests crosses queries with the request-shape axes that change
// response structure.
func diffRequests() []Request {
	var reqs []Request
	for _, q := range diffQueries {
		for _, mode := range []Mode{ModeSpan, ModeSegment, ModeFuzzy} {
			for _, topK := range []int{0, 1, 3} {
				reqs = append(reqs, Request{Query: q, Mode: mode, TopK: topK})
			}
			reqs = append(reqs, Request{Query: q, Mode: mode, Explain: true})
			reqs = append(reqs, Request{Query: q, Mode: mode, MinSim: 0.7})
			reqs = append(reqs, Request{Query: q, Mode: mode, MaxSpanTokens: 2})
		}
	}
	return reqs
}

// assertResponsesIdentical compares a reference response with an arena
// response byte-for-byte (timings excluded — they are measurements, not
// results).
func assertResponsesIdentical(t *testing.T, req Request, ref Response, arena *Response) {
	t.Helper()
	ref.Timing = Timing{}
	ac := CloneResponse(arena)
	ac.Timing = Timing{}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	arenaJSON, err := json.Marshal(ac)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(arenaJSON) {
		t.Errorf("request %+v:\nreference: %s\narena:     %s", req, refJSON, arenaJSON)
		return
	}
	// JSON can hide nil-vs-empty differences behind omitempty; the struct
	// forms must agree too, or DeepEqual-based callers diverge.
	if !reflect.DeepEqual(ref, ac) {
		t.Errorf("request %+v: JSON equal but structs differ:\nreference: %#v\narena:     %#v", req, ref, ac)
	}
}

// runDifferential drives both paths over every request shape with one
// shared scratch, so reuse bugs (stale buffers leaking across requests)
// surface as diffs.
func runDifferential(t *testing.T, e *Engine) {
	t.Helper()
	sc := NewScratch()
	for _, req := range diffRequests() {
		ref, refErr := e.Match(req)
		arena, arenaErr := e.MatchScratch(req, sc)
		if (refErr == nil) != (arenaErr == nil) {
			t.Fatalf("request %+v: reference err %v, arena err %v", req, refErr, arenaErr)
		}
		if refErr != nil {
			if refErr.Error() != arenaErr.Error() {
				t.Fatalf("request %+v: reference err %q, arena err %q", req, refErr, arenaErr)
			}
			continue
		}
		assertResponsesIdentical(t, req, ref, arena)
	}
}

func TestArenaDifferentialFlatIndex(t *testing.T) {
	runDifferential(t, testEngine())
}

func TestArenaDifferentialShardedIndex(t *testing.T) {
	d := engineDict()
	runDifferential(t, NewEngine(d, d.NewShardedFuzzyIndex(0.55, 4), engineCanonicals(), 0.55))
}

func TestArenaDifferentialNoFuzzyIndex(t *testing.T) {
	d := engineDict()
	runDifferential(t, NewEngine(d, nil, engineCanonicals(), 0.55))
}

func TestArenaDifferentialNoEntityTable(t *testing.T) {
	d := engineDict()
	runDifferential(t, NewEngine(d, d.NewFuzzyIndex(0.55), nil, 0.55))
}

// stubFuzzy exercises the non-arena FuzzyLookup fallback.
type stubFuzzy struct{ inner *FuzzyIndex }

func (s stubFuzzy) Lookup(query string, limit int) []FuzzyHit { return s.inner.Lookup(query, limit) }

func TestArenaDifferentialCustomFuzzyLookup(t *testing.T) {
	d := engineDict()
	runDifferential(t, NewEngine(d, stubFuzzy{inner: d.NewFuzzyIndex(0.55)}, engineCanonicals(), 0.55))
}

// TestArenaDifferentialRandom hammers both paths with generated queries
// mixing dictionary vocabulary, typos, concatenations and noise.
func TestArenaDifferentialRandom(t *testing.T) {
	e := testEngine()
	rng := rand.New(rand.NewSource(61))
	vocab := []string{
		"indiana", "jones", "kingdom", "crystal", "cristal", "skull",
		"indy", "4", "canon", "cannon", "eos", "350d", "twilight",
		"twilght", "madagascar", "madagascar2", "escape", "2", "africa",
		"tickets", "dvd", "review", "near", "san", "fran", "zzzz", "café",
	}
	sc := NewScratch()
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(6)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[rng.Intn(len(vocab))]
		}
		req := Request{
			Query: strings.Join(parts, " "),
			Mode:  []Mode{ModeSpan, ModeSegment, ModeFuzzy}[rng.Intn(3)],
			TopK:  rng.Intn(4),
		}
		ref, refErr := e.Match(req)
		arena, arenaErr := e.MatchScratch(req, sc)
		if (refErr == nil) != (arenaErr == nil) {
			t.Fatalf("request %+v: reference err %v, arena err %v", req, refErr, arenaErr)
		}
		if refErr == nil {
			assertResponsesIdentical(t, req, ref, arena)
		}
	}
}

// TestScratchTokenizeMatchesTextnorm pins the arena tokenizer to
// textnorm.Tokenize over edge-case inputs: the whole differential
// guarantee rests on the two producing identical token sequences.
func TestScratchTokenizeMatchesTextnorm(t *testing.T) {
	inputs := append([]string{}, diffQueries...)
	inputs = append(inputs,
		"", " ", "-", "a-b", "A.B.C", "ÉCOLE supérieure", "ΑΒΓ δεζ",
		"日本語のクエリ", "emoji 🎬 query", "tab\tand\nnewline",
		"x\xffy", "\xff\xfe", "ABC123def456",
	)
	sc := NewScratch()
	for _, in := range inputs {
		want := textnorm.Tokenize(in)
		got := sc.Tokenize(in)
		if len(got) != len(want) {
			t.Fatalf("Tokenize(%q): got %q want %q", in, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Tokenize(%q)[%d]: got %q want %q", in, i, got[i], want[i])
			}
		}
		if norm := sc.Norm(); norm != textnorm.Normalize(in) {
			t.Fatalf("Norm(%q) = %q, want %q", in, norm, textnorm.Normalize(in))
		}
	}
}

// TestEditWithin1MatchesReference pins the arena's allocation-free
// distance-1 check to the banded DP it replaces.
func TestEditWithin1MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("abcdé日")
	randWord := func(n int) string {
		r := make([]rune, n)
		for i := range r {
			r[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(r)
	}
	mutate := func(s string) string {
		r := []rune(s)
		switch rng.Intn(3) {
		case 0: // substitute
			if len(r) > 0 {
				r[rng.Intn(len(r))] = alphabet[rng.Intn(len(alphabet))]
			}
		case 1: // delete
			if len(r) > 0 {
				i := rng.Intn(len(r))
				r = append(r[:i], r[i+1:]...)
			}
		default: // insert
			i := rng.Intn(len(r) + 1)
			r = append(r[:i], append([]rune{alphabet[rng.Intn(len(alphabet))]}, r[i:]...)...)
		}
		return string(r)
	}
	for i := 0; i < 3000; i++ {
		a := randWord(rng.Intn(8))
		b := a
		for k := rng.Intn(3); k > 0; k-- {
			b = mutate(b)
		}
		if rng.Intn(5) == 0 {
			b = randWord(rng.Intn(8))
		}
		got := editWithin1(a, b)
		want := textnorm.EditDistanceAtMost(a, b, 1)
		if got != want {
			t.Fatalf("editWithin1(%q, %q) = %v, reference %v", a, b, got, want)
		}
	}
}

// TestQueryGramsIntoMatchesQueryGrams pins the arena gram accumulator to
// the allocating form, including the map takeover past linearDedupMax.
func TestQueryGramsIntoMatchesQueryGrams(t *testing.T) {
	long := strings.Repeat("abcdefghijklmnopqrstuvwxyz0123456789 ", 4)
	inputs := []string{
		"", "ab", "abc", "indy 4", "madagascar escape 2 africa",
		"aaaaaaaa", "ααβγ trigram", long, long + long,
	}
	var buf []queryGram
	for _, in := range inputs {
		want, wantTotal := queryGrams(in)
		var got []queryGram
		var gotTotal int
		got, gotTotal = queryGramsInto(buf[:0], in)
		buf = got
		if gotTotal != wantTotal || len(got) != len(want) {
			t.Fatalf("queryGramsInto(%q): %d grams total %d, want %d total %d",
				in, len(got), gotTotal, len(want), wantTotal)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("queryGramsInto(%q)[%d] = %+v, want %+v", in, i, got[i], want[i])
			}
		}
	}
}

// TestCloneResponseIndependence proves a cloned response survives arena
// reuse: the original scratch is deliberately clobbered by a second
// request and the clone must not change.
func TestCloneResponseIndependence(t *testing.T) {
	e := testEngine()
	sc := NewScratch()
	resp, err := e.MatchScratch(Request{Query: "indy 4 near san fran", Explain: true}, sc)
	if err != nil {
		t.Fatal(err)
	}
	clone := CloneResponse(resp)
	before, _ := json.Marshal(clone)
	// Clobber the arena with a longer, different request.
	if _, err := e.MatchScratch(Request{Query: "madagascar escape 2 africa dvd kingdom of the cristal skull tickets", Explain: true}, sc); err != nil {
		t.Fatal(err)
	}
	after, _ := json.Marshal(clone)
	if string(before) != string(after) {
		t.Fatalf("clone mutated by arena reuse:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestScratchReuseAcrossSizes shrinks and grows queries through one
// scratch so stale-capacity bugs (token views outliving their bytes)
// would surface.
func TestScratchReuseAcrossSizes(t *testing.T) {
	e := testEngine()
	sc := NewScratch()
	queries := []string{
		"madagascar escape 2 africa dvd box set special edition",
		"indy 4",
		"kingdom of the cristal skull tickets near san fran",
		"x",
		"twilght",
	}
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			req := Request{Query: q}
			ref, err := e.Match(req)
			if err != nil {
				t.Fatal(err)
			}
			arena, err := e.MatchScratch(req, sc)
			if err != nil {
				t.Fatal(err)
			}
			assertResponsesIdentical(t, req, ref, arena)
		}
	}
}

// BenchmarkMatchScratch is the engine-level arena benchmark; the serving
// path's numbers live in the repo-root bench suite.
func BenchmarkMatchScratch(b *testing.B) {
	e := testEngine()
	sc := NewScratch()
	for _, bc := range []struct{ name, query string }{
		{"exact", "indy 4 near san fran"},
		{"typo", "twilght showtimes"},
		{"span-fuzzy", "kingdom of the cristal skull tickets"},
	} {
		b.Run(bc.name, func(b *testing.B) {
			req := Request{Query: bc.query}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.MatchScratch(req, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt imported if trace helpers change
