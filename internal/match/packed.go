package match

import (
	"fmt"
	"unicode/utf8"
)

// PackedFuzzy is the portable form of a FuzzyIndex's posting lists: the
// interned gram table plus the two contiguous slabs. It is what the serve
// snapshot embeds, so a server boots the fuzzy index with pure array work
// — no per-string re-gramming and no posting-map churn. The per-string
// pruning tables (gram totals, distinct counts) are cheap to rederive and
// are not stored.
//
// A PackedFuzzy is only meaningful against the dictionary it was built
// from: string index i refers to the i-th string of Dictionary.Strings()
// (lexicographic order), which is deterministic for a given dictionary.
type PackedFuzzy struct {
	NumStrings int      // number of indexed strings
	Grams      []string // gram ID -> trigram
	Offsets    []int32  // gram g's postings: Postings[Offsets[g]:Offsets[g+1]]
	Postings   []int32  // string indexes, strictly ascending per gram
	Mults      []int32  // parallel to Postings: gram multiplicity in the string

	// backing pins the owner of the slabs when they alias a memory-mapped
	// snapshot (see MapPackedFuzzy); nil for heap-backed indexes. Every
	// index built from a mapped PackedFuzzy copies the reference so the
	// mapping cannot be unmapped under it.
	backing any
}

// Mapped reports whether the posting slabs alias a memory-mapped
// snapshot file. Mapped indexes should be served flat (a single
// FuzzyIndex sharing the slabs) rather than sharded: sharding deep-copies
// the postings into anonymous memory and forfeits page-cache sharing.
func (p *PackedFuzzy) Mapped() bool { return p != nil && p.backing != nil }

// Packed exports the index's posting lists. The returned struct shares
// the index's backing arrays and must be treated as read-only. It
// carries the index's mmap pin so the export of a mapped index stays
// valid after the index itself is dropped.
func (fi *FuzzyIndex) Packed() *PackedFuzzy {
	return &PackedFuzzy{
		NumStrings: len(fi.strings),
		Grams:      fi.grams,
		Offsets:    fi.offsets,
		Postings:   fi.postings,
		Mults:      fi.mults,
		backing:    fi.backing,
	}
}

// validate checks the structural invariants scan relies on, against an
// expected string count. It does not re-derive grams from strings — a
// snapshot's integrity is the checksum's job — but nothing read from a
// file may index out of bounds.
func (p *PackedFuzzy) validate(numStrings int) error {
	if p.NumStrings != numStrings {
		return fmt.Errorf("match: packed index covers %d strings, dictionary has %d", p.NumStrings, numStrings)
	}
	if len(p.Offsets) != len(p.Grams)+1 {
		return fmt.Errorf("match: packed index has %d offsets for %d grams", len(p.Offsets), len(p.Grams))
	}
	if len(p.Postings) != len(p.Mults) {
		return fmt.Errorf("match: packed index has %d postings but %d multiplicities", len(p.Postings), len(p.Mults))
	}
	if len(p.Offsets) > 0 && (p.Offsets[0] != 0 || int(p.Offsets[len(p.Offsets)-1]) != len(p.Postings)) {
		return fmt.Errorf("match: packed index offsets do not span the postings")
	}
	for g := 0; g+1 < len(p.Offsets); g++ {
		start, end := p.Offsets[g], p.Offsets[g+1]
		if start > end {
			return fmt.Errorf("match: packed index offsets decrease at gram %d", g)
		}
		for k := start; k < end; k++ {
			idx := p.Postings[k]
			if idx < 0 || int(idx) >= numStrings {
				return fmt.Errorf("match: packed index posting %d out of range [0,%d)", idx, numStrings)
			}
			if k > start && idx <= p.Postings[k-1] {
				return fmt.Errorf("match: packed index postings not ascending for gram %d", g)
			}
			if p.Mults[k] < 1 {
				return fmt.Errorf("match: packed index multiplicity %d < 1", p.Mults[k])
			}
		}
	}
	return nil
}

// stringGramLen is the (multiset) trigram count of an already-normalized
// string — CharNGrams' length without materializing the grams.
func stringGramLen(s string) int32 {
	n := utf8.RuneCountInString(s) - fuzzyGramSize + 1
	if n < 0 {
		return 0
	}
	return int32(n)
}

// deriveTables rebuilds the per-string pruning tables from the packed
// postings: gram totals from string lengths, distinct counts by counting
// each string's posting entries (each distinct (gram, string) pair
// appears exactly once).
func deriveTables(strings []string, postings []int32) (gramLen, distinct []int32) {
	gramLen = make([]int32, len(strings))
	for i, s := range strings {
		gramLen[i] = stringGramLen(s)
	}
	distinct = make([]int32, len(strings))
	for _, idx := range postings {
		distinct[idx]++
	}
	return gramLen, distinct
}

// NewFuzzyIndexFromPacked rebuilds a flat fuzzy index from packed posting
// lists previously exported with Packed from an index over this whole
// dictionary. The index shares the packed struct's backing arrays.
func (d *Dictionary) NewFuzzyIndexFromPacked(p *PackedFuzzy, minSim float64) (*FuzzyIndex, error) {
	if p.NumStrings != d.DistinctStrings() {
		return nil, fmt.Errorf("match: packed index covers %d strings, dictionary has %d", p.NumStrings, d.DistinctStrings())
	}
	strings := d.Strings()
	if err := p.validate(len(strings)); err != nil {
		return nil, err
	}
	fi := &FuzzyIndex{
		dict:     d,
		strings:  strings,
		minSim:   normMinSim(minSim),
		gramID:   make(map[string]int32, len(p.Grams)),
		grams:    p.Grams,
		offsets:  p.Offsets,
		postings: p.Postings,
		mults:    p.Mults,
		backing:  p.backing,
	}
	for i, g := range p.Grams {
		fi.gramID[g] = int32(i)
	}
	fi.gramLen, fi.distinct = deriveTables(strings, p.Postings)
	fi.initScratch()
	return fi, nil
}

// NewShardedFuzzyIndexFromPacked rebuilds a sharded fuzzy index from
// packed posting lists, splitting the flat slabs with the same
// round-robin assignment NewShardedFuzzyIndex uses — so lookups are
// identical whichever constructor built the index. All shards share one
// read-only gram table; only the postings are partitioned. shards <= 0
// picks GOMAXPROCS.
func (d *Dictionary) NewShardedFuzzyIndexFromPacked(p *PackedFuzzy, minSim float64, shards int) (*ShardedFuzzyIndex, error) {
	if p.NumStrings != d.DistinctStrings() {
		return nil, fmt.Errorf("match: packed index covers %d strings, dictionary has %d", p.NumStrings, d.DistinctStrings())
	}
	all := d.Strings()
	if err := p.validate(len(all)); err != nil {
		return nil, err
	}
	shards = shardCount(shards, len(all))
	parts := partitionStrings(all, shards)

	// Shared read-only gram table.
	gramID := make(map[string]int32, len(p.Grams))
	for i, g := range p.Grams {
		gramID[g] = int32(i)
	}

	// Pass 1: per-shard slab sizes, so each shard allocates exactly once.
	sizes := make([]int, shards)
	for _, idx := range p.Postings {
		sizes[int(idx)%shards]++
	}
	minSim = normMinSim(minSim)
	shardIdx := make([]*FuzzyIndex, shards)
	for s := 0; s < shards; s++ {
		fi := &FuzzyIndex{
			dict:     d,
			strings:  parts[s],
			minSim:   minSim,
			gramID:   gramID,
			grams:    p.Grams,
			offsets:  make([]int32, len(p.Grams)+1),
			postings: make([]int32, 0, sizes[s]),
			mults:    make([]int32, 0, sizes[s]),
			// The gram table is shared with p, whose strings may alias a
			// mapped file even though the postings here are copies.
			backing: p.backing,
		}
		shardIdx[s] = fi
	}

	// Pass 2: deal each gram's flat posting run out to the shards. The
	// round-robin assignment means flat string i lives in shard i%shards
	// at local index i/shards, and ascending i stays ascending locally.
	for g := 0; g+1 < len(p.Offsets); g++ {
		for s := 0; s < shards; s++ {
			shardIdx[s].offsets[g] = int32(len(shardIdx[s].postings))
		}
		for k := p.Offsets[g]; k < p.Offsets[g+1]; k++ {
			i := int(p.Postings[k])
			fi := shardIdx[i%shards]
			fi.postings = append(fi.postings, int32(i/shards))
			fi.mults = append(fi.mults, p.Mults[k])
		}
	}
	for s := 0; s < shards; s++ {
		fi := shardIdx[s]
		fi.offsets[len(p.Grams)] = int32(len(fi.postings))
		fi.gramLen, fi.distinct = deriveTables(fi.strings, fi.postings)
		fi.initScratch()
	}
	return &ShardedFuzzyIndex{dict: d, shards: shardIdx}, nil
}
