package match

import (
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"
)

// Raw packed fuzzy-index layout (snapshot format version 3). Unlike the
// uvarint/delta stream WriteBinary emits, this layout stores the posting
// slabs as fixed-width little-endian arrays at controlled alignment, so
// a reader holding the serialized bytes in memory — a memory-mapped
// snapshot file — can alias them in place with zero copying and zero
// decode work. Boot cost becomes O(grams) for the gram table instead of
// O(postings), and the slab pages stay shared, clean and evictable in
// the OS page cache across every process serving the same snapshot.
//
// Layout, at an 8-byte-aligned file offset (the writer pads from the
// offset it is handed; the reader derives the same padding):
//
//	header: 4 × uint32 LE — string count, gram count, posting count,
//	  reserved (must be 0)
//	gram ends: gram count × uint32 LE — cumulative end offsets of each
//	  gram's UTF-8 bytes in the blob (so gram g is blob[ends[g-1]:ends[g]])
//	gram blob: the gram bytes, padded with zeros to a multiple of 4
//	offsets: (gram count + 1) × uint32 LE
//	postings: posting count × uint32 LE
//	mults: posting count × uint32 LE
//
// Every array therefore starts 4-byte aligned whenever the section
// start is, which is what the in-place int32 views require.

// rawAlign is the section alignment; 8 keeps the door open for future
// 64-bit slabs and is what mmap page bases guarantee.
const rawAlign = 8

// maxPackedPostings bounds the posting count read from a file; a larger
// prefix means a corrupt file and must not drive an allocation.
const maxPackedPostings = 1 << 28

// rawPad returns the number of zero bytes needed to advance off to the
// next rawAlign boundary.
func rawPad(off int64) int {
	return int((rawAlign - off%rawAlign) % rawAlign)
}

var rawZeros [rawAlign]byte

// WriteRaw serializes the packed index in the raw slab layout. off must
// be the file offset at which the first byte will land — the writer
// pads to alignment from there, and a reader at the same offset derives
// the identical padding.
func (p *PackedFuzzy) WriteRaw(w io.Writer, off int64) error {
	if _, err := w.Write(rawZeros[:rawPad(off)]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(p.NumStrings))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(p.Grams)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p.Postings)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	// Gram end-offset table, then the blob.
	buf := make([]byte, 0, 1<<15)
	end := uint32(0)
	for _, g := range p.Grams {
		end += uint32(len(g))
		buf = binary.LittleEndian.AppendUint32(buf, end)
		if len(buf) >= 1<<15 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	for _, g := range p.Grams {
		buf = append(buf, g...)
		if len(buf) >= 1<<15 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	buf = append(buf, rawZeros[:(4-end%4)%4]...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, slab := range [][]int32{p.Offsets, p.Postings, p.Mults} {
		if err := writeU32Slab(w, buf[:0], slab); err != nil {
			return err
		}
	}
	return nil
}

// writeU32Slab writes an int32 slab as little-endian uint32s through a
// reusable chunk buffer.
func writeU32Slab(w io.Writer, buf []byte, vals []int32) error {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		if len(buf) >= 1<<15 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	_, err := w.Write(buf)
	return err
}

// rawHeader decodes and sanity-checks the fixed header, returning the
// three counts.
func rawHeader(hdr []byte) (numStrings, numGrams, numPostings uint64, err error) {
	numStrings = uint64(binary.LittleEndian.Uint32(hdr[0:]))
	numGrams = uint64(binary.LittleEndian.Uint32(hdr[4:]))
	numPostings = uint64(binary.LittleEndian.Uint32(hdr[8:]))
	if reserved := binary.LittleEndian.Uint32(hdr[12:]); reserved != 0 {
		return 0, 0, 0, fmt.Errorf("match: raw packed index reserved word %#x", reserved)
	}
	if numGrams > maxPackedGrams {
		return 0, 0, 0, fmt.Errorf("match: raw packed gram count %d exceeds limit", numGrams)
	}
	if numPostings > maxPackedPostings {
		return 0, 0, 0, fmt.Errorf("match: raw packed posting count %d exceeds limit", numPostings)
	}
	return numStrings, numGrams, numPostings, nil
}

// checkRawOffsets verifies the structural invariants that keep every
// downstream loop in bounds: offsets non-decreasing, starting at 0 and
// ending exactly at the posting count. (Semantic invariants — ascending
// postings, positive multiplicities — are PackedFuzzy.validate's job.)
func checkRawOffsets(offsets []int32, numPostings uint64) error {
	if uint64(uint32(offsets[0])) != 0 {
		return fmt.Errorf("match: raw packed offsets start at %d", offsets[0])
	}
	prev := uint32(0)
	for _, o := range offsets[1:] {
		if uint32(o) < prev {
			return fmt.Errorf("match: raw packed offsets decrease")
		}
		prev = uint32(o)
	}
	if uint64(prev) != numPostings {
		return fmt.Errorf("match: raw packed offsets end at %d, want %d postings", prev, numPostings)
	}
	return nil
}

// gramsFromTable materializes the gram string table given the cumulative
// end offsets and the blob. str builds each string: the mapped path
// passes a zero-copy unsafe view, the stream path passes string().
func gramsFromTable(ends []int32, blob []byte, str func([]byte) string) ([]string, error) {
	grams := make([]string, len(ends))
	prev := uint32(0)
	for i, e32 := range ends {
		e := uint32(e32)
		if e < prev || uint64(e) > uint64(len(blob)) {
			return nil, fmt.Errorf("match: raw packed gram table corrupt at gram %d", i)
		}
		if e-prev > 64 {
			return nil, fmt.Errorf("match: raw packed gram %d length %d exceeds limit", i, e-prev)
		}
		grams[i] = str(blob[prev:e])
		prev = e
	}
	return grams, nil
}

// MapPackedFuzzy builds a PackedFuzzy whose slabs alias data in place —
// zero copies, zero per-posting decode work. data is the whole
// serialized file (typically memory-mapped) and off the absolute offset
// of the raw section written by WriteRaw. pin, retained on the returned
// index and everything built from it, keeps data's owner (the mmap
// handle) alive as long as any alias does; Mapped() reports pin != nil.
// The second result is the offset of the first byte past the section.
//
// Every structural property that keeps later loops in bounds is checked
// here, because data may be an arbitrary corrupt file; the checks are
// O(grams), not O(postings). If data[off:] is not 4-byte aligned in
// memory (never the case for an mmap base, possibly the case for a tiny
// test buffer), the slabs are copied to the heap instead of aliased.
func MapPackedFuzzy(data []byte, off int64, pin any) (*PackedFuzzy, int64, error) {
	if off < 0 || off > int64(len(data)) {
		return nil, 0, fmt.Errorf("match: raw packed section offset %d out of file", off)
	}
	off += int64(rawPad(off))
	// All size arithmetic in uint64: counts are ≤ 2^32 and bounded above,
	// so need can never overflow, and a truncated file fails the single
	// comparison against len(data).
	if uint64(off)+16 > uint64(len(data)) {
		return nil, 0, fmt.Errorf("match: raw packed index truncated in header")
	}
	numStrings, numGrams, numPostings, err := rawHeader(data[off : off+16 : off+16])
	if err != nil {
		return nil, 0, err
	}
	endsOff := uint64(off) + 16
	blobOff := endsOff + 4*numGrams
	if blobOff > uint64(len(data)) {
		return nil, 0, fmt.Errorf("match: raw packed index truncated in gram table")
	}
	// The gram-end table is copied out regardless of aliasing: it is only
	// needed transiently to slice the blob, and copying sidesteps any
	// alignment question before the check below.
	ends := copyInt32(data, endsOff, numGrams)
	blobLen := uint64(0)
	if numGrams > 0 {
		blobLen = uint64(uint32(ends[numGrams-1]))
	}
	if blobOff+blobLen > uint64(len(data)) {
		return nil, 0, fmt.Errorf("match: raw packed index truncated in gram blob")
	}
	blob := data[blobOff : blobOff+blobLen : blobOff+blobLen]
	offsetsOff := blobOff + blobLen + (4-blobLen%4)%4
	postingsOff := offsetsOff + 4*(numGrams+1)
	multsOff := postingsOff + 4*numPostings
	sectionEnd := multsOff + 4*numPostings
	if sectionEnd > uint64(len(data)) {
		return nil, 0, fmt.Errorf("match: raw packed index truncated in posting slabs")
	}

	// Alias only when there is an owner to pin and the backing is aligned
	// for int32 views (an mmap base always is; a tiny test buffer may not
	// be). Otherwise copy everything out, so the result never dangles.
	alias := pin != nil && uintptr(unsafe.Pointer(unsafe.SliceData(data)))%4 == 0
	str := func(b []byte) string { return string(b) }
	view := copyInt32
	if alias {
		str = func(b []byte) string {
			if len(b) == 0 {
				return ""
			}
			return unsafe.String(unsafe.SliceData(b), len(b))
		}
		view = viewInt32
	}

	grams, err := gramsFromTable(ends, blob, str)
	if err != nil {
		return nil, 0, err
	}
	p := &PackedFuzzy{
		NumStrings: int(numStrings),
		Grams:      grams,
		Offsets:    view(data, offsetsOff, numGrams+1),
		Postings:   view(data, postingsOff, numPostings),
		Mults:      view(data, multsOff, numPostings),
	}
	if err := checkRawOffsets(p.Offsets, numPostings); err != nil {
		return nil, 0, err
	}
	if alias {
		p.backing = pin
	}
	return p, int64(sectionEnd), nil
}

// viewInt32 aliases n little-endian uint32s at data[off:] as an []int32
// without copying. The caller has bounds-checked off and n; alignment is
// the caller's responsibility. Only valid on little-endian hosts —
// every platform this project targets — and guarded by a one-time check.
func viewInt32(data []byte, off, n uint64) []int32 {
	if n == 0 {
		return []int32{}
	}
	if !hostLittleEndian {
		return copyInt32(data, off, n)
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&data[off])), n)
}

// copyInt32 decodes n little-endian uint32s at data[off:] into a fresh
// heap slice.
func copyInt32(data []byte, off, n uint64) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[off+4*uint64(i):]))
	}
	return out
}

// hostLittleEndian reports the byte order the in-place int32 views
// assume.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ReadPackedFuzzyRaw loads a raw-layout packed index from a stream into
// heap slices — the non-mmap path through a version 3 snapshot. off is
// the absolute stream offset of the section start (for the alignment
// padding); the reader consumes exactly the section.
func ReadPackedFuzzyRaw(r io.Reader, off int64) (*PackedFuzzy, error) {
	var scratch [rawAlign]byte
	if pad := rawPad(off); pad > 0 {
		if _, err := io.ReadFull(r, scratch[:pad]); err != nil {
			return nil, fmt.Errorf("match: reading raw packed padding: %w", err)
		}
	}
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("match: reading raw packed header: %w", err)
	}
	numStrings, numGrams, numPostings, err := rawHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	ends, err := readU32Slab(r, numGrams)
	if err != nil {
		return nil, fmt.Errorf("match: reading raw packed gram table: %w", err)
	}
	blobLen := uint64(0)
	if numGrams > 0 {
		blobLen = uint64(uint32(ends[numGrams-1]))
	}
	if blobLen > 64*numGrams {
		return nil, fmt.Errorf("match: raw packed gram blob length %d exceeds limit", blobLen)
	}
	blob := make([]byte, blobLen+(4-blobLen%4)%4)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("match: reading raw packed gram blob: %w", err)
	}
	grams, err := gramsFromTable(ends, blob[:blobLen], func(b []byte) string { return string(b) })
	if err != nil {
		return nil, err
	}
	p := &PackedFuzzy{NumStrings: int(numStrings), Grams: grams}
	if p.Offsets, err = readU32Slab(r, numGrams+1); err != nil {
		return nil, fmt.Errorf("match: reading raw packed offsets: %w", err)
	}
	if err := checkRawOffsets(p.Offsets, numPostings); err != nil {
		return nil, err
	}
	if p.Postings, err = readU32Slab(r, numPostings); err != nil {
		return nil, fmt.Errorf("match: reading raw packed postings: %w", err)
	}
	if p.Mults, err = readU32Slab(r, numPostings); err != nil {
		return nil, fmt.Errorf("match: reading raw packed multiplicities: %w", err)
	}
	return p, nil
}

// readU32Slab reads n little-endian uint32s in bounded chunks, so a
// corrupt count on a truncated stream fails fast instead of driving one
// huge up-front allocation.
func readU32Slab(r io.Reader, n uint64) ([]int32, error) {
	out := make([]int32, 0, min(n, 1<<20))
	var buf [1 << 14]byte
	for n > 0 {
		c := min(n, uint64(len(buf))/4)
		if _, err := io.ReadFull(r, buf[:4*c]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
		n -= c
	}
	return out, nil
}
