package match

import (
	"sort"

	"websyn/internal/textnorm"
)

// Whole-string fuzzy lookup.
//
// Segment handles token-level typos; this file handles the harder case of
// queries that are *globally* close to a dictionary string but don't
// tokenize cleanly onto it ("madagascar2", "kungfu panda", "cannon eos").
// Dictionary strings are indexed by character trigrams; a query retrieves
// candidates sharing enough trigrams and ranks them by n-gram Dice
// similarity, optionally confirmed by banded edit distance.

// fuzzyGramSize is the character n-gram width of the index.
const fuzzyGramSize = 3

// FuzzyIndex is a character-trigram index over dictionary strings.
type FuzzyIndex struct {
	dict    *Dictionary
	strings []string         // indexed normalized strings
	grams   map[string][]int // trigram -> string indexes (ascending)
	minSim  float64
}

// NewFuzzyIndex builds the trigram index over every string in the
// dictionary. minSim is the Dice-similarity acceptance threshold
// (0.5–0.8 are sensible; higher is stricter).
func (d *Dictionary) NewFuzzyIndex(minSim float64) *FuzzyIndex {
	return newFuzzyIndexOver(d, d.Strings(), minSim)
}

// newFuzzyIndexOver indexes an explicit subset of dictionary strings —
// the building block behind both the whole-dictionary index and each
// shard of a ShardedFuzzyIndex.
func newFuzzyIndexOver(d *Dictionary, strings []string, minSim float64) *FuzzyIndex {
	if minSim <= 0 {
		minSim = 0.6
	}
	fi := &FuzzyIndex{
		dict:    d,
		strings: strings,
		grams:   make(map[string][]int),
		minSim:  minSim,
	}
	for i, s := range strings {
		seen := map[string]bool{}
		for _, g := range textnorm.CharNGrams(s, fuzzyGramSize) {
			if !seen[g] {
				seen[g] = true
				fi.grams[g] = append(fi.grams[g], i)
			}
		}
	}
	return fi
}

// Len returns the number of indexed strings.
func (fi *FuzzyIndex) Len() int { return len(fi.strings) }

// FuzzyHit is one fuzzy-lookup result.
type FuzzyHit struct {
	Text       string  // the dictionary string
	Similarity float64 // Dice trigram similarity to the query
	Entries    []Entry // the string's dictionary payloads, best first
}

// Lookup finds the dictionary strings globally similar to the query,
// best first, up to limit (0 = no limit). Exact hits rank first with
// similarity 1.
func (fi *FuzzyIndex) Lookup(query string, limit int) []FuzzyHit {
	norm := textnorm.Normalize(query)
	if norm == "" {
		return nil
	}
	qGrams := distinctGrams(norm)
	// Very short queries produce no trigram; fall back to exact lookup.
	if len(qGrams) == 0 {
		return exactFallback(fi.dict, norm)
	}
	hits := fi.scan(norm, qGrams)
	sortHits(hits)
	return truncateHits(hits, limit)
}

// scan is the per-index candidate generation and verification step over
// this index's strings only. qGrams must be the distinct trigrams of the
// already-normalized query. Results are unsorted.
func (fi *FuzzyIndex) scan(norm string, qGrams []string) []FuzzyHit {
	// Candidate generation: count shared trigrams per indexed string.
	counts := make(map[int]int)
	for _, g := range qGrams {
		for _, idx := range fi.grams[g] {
			counts[idx]++
		}
	}
	// Prune: a Dice similarity of s over multisets of sizes a and b needs
	// at least s*(a+b)/2 common grams; with b unknown, require at least
	// s*a/2 shared distinct grams as a cheap lower bound.
	minShared := int(fi.minSim * float64(len(qGrams)) / 2)
	var hits []FuzzyHit
	for idx, shared := range counts {
		if shared < minShared {
			continue
		}
		s := fi.strings[idx]
		sim := textnorm.NGramSimilarity(norm, s, fuzzyGramSize)
		if sim < fi.minSim {
			continue
		}
		hits = append(hits, FuzzyHit{
			Text:       s,
			Similarity: sim,
			Entries:    fi.dict.Lookup(s),
		})
	}
	return hits
}

// distinctGrams returns the deduplicated character trigrams of a
// normalized string, preserving first-occurrence order.
func distinctGrams(norm string) []string {
	grams := textnorm.CharNGrams(norm, fuzzyGramSize)
	if len(grams) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(grams))
	out := grams[:0]
	for _, g := range grams {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// exactFallback resolves trigram-less (very short) queries through the
// exact dictionary.
func exactFallback(d *Dictionary, norm string) []FuzzyHit {
	if es := d.Lookup(norm); es != nil {
		return []FuzzyHit{{Text: norm, Similarity: 1, Entries: es}}
	}
	return nil
}

// sortHits orders hits best-similarity first, ties broken by text.
func sortHits(hits []FuzzyHit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Similarity != hits[j].Similarity {
			return hits[i].Similarity > hits[j].Similarity
		}
		return hits[i].Text < hits[j].Text
	})
}

// truncateHits applies the caller's limit (0 = no limit).
func truncateHits(hits []FuzzyHit, limit int) []FuzzyHit {
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// BestEntity resolves a query to a single entity through the fuzzy index,
// preferring exact dictionary hits. The second result reports success.
func (fi *FuzzyIndex) BestEntity(query string) (Entry, bool) {
	return bestEntity(fi.dict, fi.Lookup, query)
}

// bestEntity is the shared flat/sharded resolution policy: exact
// dictionary hit first, then the top fuzzy hit's best entry.
func bestEntity(d *Dictionary, lookup func(string, int) []FuzzyHit, query string) (Entry, bool) {
	if es := d.Lookup(query); len(es) > 0 {
		return es[0], true
	}
	hits := lookup(query, 1)
	if len(hits) == 0 || len(hits[0].Entries) == 0 {
		return Entry{}, false
	}
	return hits[0].Entries[0], true
}

// joinTokens joins normalized tokens with single spaces.
func joinTokens(tokens []string) string {
	n := 0
	for _, t := range tokens {
		n += len(t) + 1
	}
	if n == 0 {
		return ""
	}
	b := make([]byte, 0, n-1)
	for i, t := range tokens {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
