package match

import (
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"unicode/utf8"

	"websyn/internal/textnorm"
)

// Whole-string fuzzy lookup.
//
// Segment handles token-level typos; this file handles the harder case of
// queries that are *globally* close to a dictionary string but don't
// tokenize cleanly onto it ("madagascar2", "kungfu panda", "cannon eos").
// Dictionary strings are indexed by character trigrams; a query retrieves
// candidates sharing enough trigrams and ranks them by n-gram Dice
// similarity.
//
// The index is *packed*: trigrams are interned to dense gram IDs and the
// posting lists live in two contiguous int32 slabs (string index +
// in-string multiplicity) addressed through an offsets array. Because the
// postings carry multiplicities, a scan accumulates the exact multiset
// gram intersection in a reusable scratch array and computes the Dice
// similarity directly — no per-query maps and no re-gramming of candidate
// strings. Per-string gram counts prune hopeless candidates before any
// arithmetic, and top-k selection uses a bounded heap instead of sorting
// every qualifying hit.

// fuzzyGramSize is the character n-gram width of the index.
const fuzzyGramSize = 3

// FuzzyIndex is a packed character-trigram index over dictionary strings.
type FuzzyIndex struct {
	dict    *Dictionary
	strings []string // indexed normalized strings
	minSim  float64

	// Packed posting lists. gramID and grams may be shared read-only
	// across the shards of a ShardedFuzzyIndex built from a PackedFuzzy.
	gramID   map[string]int32 // trigram -> dense gram ID
	grams    []string         // gram ID -> trigram
	offsets  []int32          // gram g's postings: postings[offsets[g]:offsets[g+1]]
	postings []int32          // string indexes, ascending within each gram's list
	mults    []int32          // parallel to postings: gram multiplicity in the string

	// Per-string pruning tables.
	gramLen  []int32 // total (multiset) trigram count of the string
	distinct []int32 // distinct trigram count of the string

	// verified counts candidates that survived every prune and had their
	// exact similarity computed — the cost the prunes exist to bound.
	verified atomic.Int64

	// backing pins the mmap handle (or other owner) of the posting slabs
	// when the index was built over a mapped PackedFuzzy, so the mapping
	// outlives every index that aliases it. nil for heap-backed indexes.
	backing any

	scratch sync.Pool // *fuzzyScratch
}

// fuzzyScratch is the reusable per-lookup state of one index: shared-gram
// accumulators indexed by string, plus the list of touched strings so a
// scan resets only what it wrote.
type fuzzyScratch struct {
	acc     []int32 // Σ min(query multiplicity, string multiplicity) over shared grams
	shared  []int32 // distinct shared gram count
	touched []int32 // string indexes with shared > 0
}

// NewFuzzyIndex builds the trigram index over every string in the
// dictionary. minSim is the Dice-similarity acceptance threshold
// (0.5–0.8 are sensible; higher is stricter).
func (d *Dictionary) NewFuzzyIndex(minSim float64) *FuzzyIndex {
	return newFuzzyIndexOver(d, d.Strings(), minSim)
}

// normMinSim resolves the default acceptance threshold.
func normMinSim(minSim float64) float64 {
	if minSim <= 0 {
		return 0.6
	}
	return minSim
}

// newFuzzyIndexOver indexes an explicit subset of dictionary strings —
// the building block behind both the whole-dictionary index and each
// shard of a ShardedFuzzyIndex.
func newFuzzyIndexOver(d *Dictionary, strings []string, minSim float64) *FuzzyIndex {
	fi := &FuzzyIndex{
		dict:     d,
		strings:  strings,
		minSim:   normMinSim(minSim),
		gramID:   make(map[string]int32),
		gramLen:  make([]int32, len(strings)),
		distinct: make([]int32, len(strings)),
	}
	// Accumulate per-gram posting lists, then flatten them into the two
	// slabs. Gram IDs are assigned in first-occurrence order over the
	// string list, so the packed layout is deterministic for a given
	// string order.
	var perGramIdx, perGramMult [][]int32
	for i, s := range strings {
		gs := textnorm.CharNGrams(s, fuzzyGramSize)
		fi.gramLen[i] = int32(len(gs))
		dcount := int32(0)
		for _, g := range gs {
			id, ok := fi.gramID[g]
			if !ok {
				id = int32(len(fi.grams))
				fi.gramID[g] = id
				fi.grams = append(fi.grams, g)
				perGramIdx = append(perGramIdx, nil)
				perGramMult = append(perGramMult, nil)
			}
			if lst := perGramIdx[id]; len(lst) > 0 && lst[len(lst)-1] == int32(i) {
				perGramMult[id][len(lst)-1]++
				continue
			}
			perGramIdx[id] = append(perGramIdx[id], int32(i))
			perGramMult[id] = append(perGramMult[id], 1)
			dcount++
		}
		fi.distinct[i] = dcount
	}
	total := 0
	for _, lst := range perGramIdx {
		total += len(lst)
	}
	fi.offsets = make([]int32, len(fi.grams)+1)
	fi.postings = make([]int32, 0, total)
	fi.mults = make([]int32, 0, total)
	for id := range perGramIdx {
		fi.offsets[id] = int32(len(fi.postings))
		fi.postings = append(fi.postings, perGramIdx[id]...)
		fi.mults = append(fi.mults, perGramMult[id]...)
	}
	fi.offsets[len(fi.grams)] = int32(len(fi.postings))
	fi.initScratch()
	return fi
}

// initScratch wires the scratch pool to this index's string count.
func (fi *FuzzyIndex) initScratch() {
	n := len(fi.strings)
	fi.scratch.New = func() any {
		return &fuzzyScratch{acc: make([]int32, n), shared: make([]int32, n)}
	}
}

// Len returns the number of indexed strings.
func (fi *FuzzyIndex) Len() int { return len(fi.strings) }

// Shards returns 1: a flat index is a single partition. It exists so a
// flat index (how mmap-backed snapshots serve, keeping the posting
// slabs shared with the page cache) and a ShardedFuzzyIndex satisfy one
// shape-stats interface.
func (fi *FuzzyIndex) Shards() int { return 1 }

// FuzzyHit is one fuzzy-lookup result.
type FuzzyHit struct {
	Text       string  // the dictionary string
	Similarity float64 // Dice trigram similarity to the query
	Entries    []Entry // the string's dictionary payloads, best first
}

// scoredHit is the internal pre-materialization form of a hit: the
// dictionary payloads are only resolved for the final top-k.
type scoredHit struct {
	text string
	sim  float64
}

// hitBetter reports whether a ranks strictly before b: higher similarity
// first, ties broken by ascending text. Texts are distinct within an
// index, so this is a total order and result order is deterministic.
func hitBetter(a, b scoredHit) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	return a.text < b.text
}

// cmpHit is hitBetter as a three-way comparison for slices.SortFunc.
func cmpHit(a, b scoredHit) int {
	if hitBetter(a, b) {
		return -1
	}
	if hitBetter(b, a) {
		return 1
	}
	return 0
}

// arenaHit is the arena path's pre-resolved form of a FuzzyHit: only the
// winning entry is carried, because the engine never reads past
// Entries[0] — so no per-hit entry list is materialized.
type arenaHit struct {
	text string
	sim  float64
	best Entry
	ok   bool // the string resolved to at least one entry
}

// arenaFuzzy is the allocation-free lookup capability of the built-in
// trigram indexes; the engine type-asserts it off its FuzzyLookup and
// falls back to the allocating interface for custom indexes.
type arenaFuzzy interface {
	// lookupArena is Lookup over already-normalized text, accumulating
	// every intermediate in sc. The returned slice aliases sc.hits and is
	// valid until the scratch's next fuzzy lookup.
	lookupArena(sc *Scratch, norm string, limit int) []arenaHit
}

// queryGram is one distinct trigram of a query with its multiplicity.
type queryGram struct {
	text  string
	count int32
}

// linearDedupMax bounds the slice-scan deduplication in queryGrams;
// past it a map takes over so adversarially long queries stay O(n).
const linearDedupMax = 64

// queryGrams returns the distinct trigrams of an already-normalized query
// with multiplicities, plus the total (multiset) gram count.
func queryGrams(norm string) ([]queryGram, int) {
	return queryGramsInto(nil, norm)
}

// gramAccum accumulates distinct query grams with multiplicities.
// Deduplication is a linear scan while the distinct set is small (real
// queries always are), which beats a map allocation per lookup; a map
// takes over past linearDedupMax so a megabyte query cannot go
// quadratic.
type gramAccum struct {
	out   []queryGram
	index map[string]int32 // gram -> position in out, once past the cutoff
	total int
}

//websyn:hotpath
func (a *gramAccum) add(g string) {
	a.total++
	if a.index != nil {
		if j, ok := a.index[g]; ok {
			a.out[j].count++
			return
		}
		a.index[g] = int32(len(a.out))
		a.out = append(a.out, queryGram{text: g, count: 1})
		return
	}
	for i := range a.out {
		if a.out[i].text == g {
			a.out[i].count++
			return
		}
	}
	if len(a.out) >= linearDedupMax {
		a.index = make(map[string]int32, 2*len(a.out))
		for i := range a.out {
			a.index[a.out[i].text] = int32(i)
		}
		a.index[g] = int32(len(a.out))
	}
	a.out = append(a.out, queryGram{text: g, count: 1})
}

// queryGramsInto is queryGrams accumulating into a caller-supplied slice
// (arena reuse: pass sc.qg[:0] and keep the grown result). For ASCII
// queries — the overwhelmingly common case — gram strings are substrings
// of norm and no per-gram allocation happens.
//
//websyn:hotpath
func queryGramsInto(out []queryGram, norm string) ([]queryGram, int) {
	ascii := true
	for i := 0; i < len(norm); i++ {
		if norm[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	acc := gramAccum{out: out}
	if ascii {
		if len(norm) < fuzzyGramSize {
			return nil, 0
		}
		for i := 0; i+fuzzyGramSize <= len(norm); i++ {
			acc.add(norm[i : i+fuzzyGramSize])
		}
		return acc.out, acc.total
	}
	gs := textnorm.CharNGrams(norm, fuzzyGramSize)
	if len(gs) == 0 {
		return nil, 0
	}
	for _, g := range gs {
		acc.add(g)
	}
	return acc.out, acc.total
}

// minSharedGrams is the candidate-generation prune: a Dice similarity of
// s over gram multisets of sizes a and b needs at least s*(a+b)/2 common
// grams, and with b unknown at least s*a/2 — so a candidate must share
// at least ceil(s*a/2) grams of the query multiset. The ceiling (rather
// than truncation) is the tightest integer bound: a shared count strictly
// below s*a/2 can never verify.
//
// The bound governs the MULTISET intersection. Only when every query
// gram is distinct does it also bound the distinct shared-gram count
// (the two coincide there) — scan checks that before applying the
// distinct-count prunes, because a string like "aaaaaaa" can clear the
// multiset bound through multiplicity while sharing a single distinct
// gram.
//
//websyn:hotpath
func minSharedGrams(minSim float64, qTotal int) int32 {
	ms := int32(math.Ceil(minSim * float64(qTotal) / 2))
	if ms < 1 {
		ms = 1
	}
	return ms
}

// lengthWindow bounds the (multiset) gram count of any string that can
// reach minSim against a query of qTotal grams: the Dice numerator is at
// most 2*min(a,b), so b must lie within [a*s/(2-s), a*(2-s)/s]. One gram
// of slack on each side absorbs float rounding; the exact similarity test
// decides the boundary.
//
//websyn:hotpath
func lengthWindow(minSim float64, qTotal int) (lo, hi int32) {
	a := float64(qTotal)
	lo = int32(math.Floor(a*minSim/(2-minSim))) - 1
	hi = int32(math.Ceil(a*(2-minSim)/minSim)) + 1
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

// Lookup finds the dictionary strings globally similar to the query,
// best first, up to limit (0 = no limit). Exact hits rank first with
// similarity 1.
func (fi *FuzzyIndex) Lookup(query string, limit int) []FuzzyHit {
	norm := textnorm.Normalize(query)
	if norm == "" {
		return nil
	}
	qGrams, qTotal := queryGrams(norm)
	// Very short queries produce no trigram; fall back to exact lookup.
	if len(qGrams) == 0 {
		return exactFallback(fi.dict, norm)
	}
	cands := fi.scan(qGrams, len(qGrams), qTotal, nil)
	return materializeHits(fi.dict, selectTop(cands, limit))
}

// scan is the per-index candidate generation and verification step over
// this index's strings only. qGrams must be the distinct trigrams of the
// already-normalized query (qDistinct = len(qGrams); qTotal = multiset
// total). Qualifying (text, similarity) pairs are appended to out,
// unsorted.
//
//websyn:hotpath
func (fi *FuzzyIndex) scan(qGrams []queryGram, qDistinct, qTotal int, out []scoredHit) []scoredHit {
	sc := fi.scratch.Get().(*fuzzyScratch)
	defer fi.scratch.Put(sc)

	// minAcc bounds the multiset intersection — always sound. The
	// distinct-count prunes (minShared against the per-string distinct
	// table and the accumulated distinct shared count) are only valid
	// when the query's grams are all distinct, i.e. the two intersection
	// counts coincide; repeated-gram queries fall back to the multiset
	// bound alone.
	minAcc := minSharedGrams(fi.minSim, qTotal)
	minShared := int32(0)
	if qDistinct == qTotal {
		minShared = minAcc
	}
	lo, hi := lengthWindow(fi.minSim, qTotal)

	// Candidate generation: walk each query gram's posting list,
	// accumulating the exact multiset intersection. Strings that cannot
	// pass the distinct-count or length prune are skipped before they
	// cost a scratch write.
	touched := sc.touched[:0]
	for _, qg := range qGrams {
		id, ok := fi.gramID[qg.text]
		if !ok {
			continue
		}
		for k := fi.offsets[id]; k < fi.offsets[id+1]; k++ {
			idx := fi.postings[k]
			if fi.distinct[idx] < minShared || fi.gramLen[idx] < lo || fi.gramLen[idx] > hi {
				continue
			}
			if sc.shared[idx] == 0 {
				touched = append(touched, idx)
			}
			sc.shared[idx]++
			m := fi.mults[k]
			if m > qg.count {
				m = qg.count
			}
			sc.acc[idx] += m
		}
	}
	sc.touched = touched // keep grown capacity for the next lookup

	// Verification: the accumulated intersection IS the Dice numerator,
	// so the similarity is exact — no re-gramming of the candidate.
	verified := int64(0)
	for _, idx := range touched {
		shared, acc := sc.shared[idx], sc.acc[idx]
		sc.shared[idx], sc.acc[idx] = 0, 0
		if shared < minShared || acc < minAcc {
			continue
		}
		verified++
		sim := 2 * float64(acc) / float64(qTotal+int(fi.gramLen[idx]))
		if sim < fi.minSim {
			continue
		}
		out = append(out, scoredHit{text: fi.strings[idx], sim: sim})
	}
	fi.verified.Add(verified)
	return out
}

// selectTop orders candidates best-first and keeps at most limit
// (0 = no limit).
func selectTop(cands []scoredHit, limit int) []scoredHit {
	res, _ := selectTopInto(cands, limit, nil)
	return res
}

// selectTopInto is selectTop with a caller-supplied heap buffer (arena
// reuse: pass the scratch's buffer and keep the grown second result).
// When the candidate set is larger than the limit, a bounded heap of
// size limit replaces the full sort, so Lookup(q, 1) never sorts
// hundreds of hits. The kept set and its order are identical to a full
// sort followed by truncation (hitBetter is a total order).
//
//websyn:hotpath
func selectTopInto(cands []scoredHit, limit int, buf []scoredHit) (res, heapBuf []scoredHit) {
	if limit <= 0 || len(cands) <= limit {
		slices.SortFunc(cands, cmpHit)
		return cands, buf
	}
	// Min-heap on hitBetter with the *worst* kept candidate at the root.
	worse := func(a, b scoredHit) bool { return hitBetter(b, a) }
	h := buf[:0]
	for _, c := range cands {
		if len(h) < limit {
			h = append(h, c)
			for i := len(h) - 1; i > 0; { // sift up
				p := (i - 1) / 2
				if !worse(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
			continue
		}
		if !hitBetter(c, h[0]) {
			continue
		}
		h[0] = c
		for i := 0; ; { // sift down
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worse(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	slices.SortFunc(h, cmpHit)
	return h, h
}

// materializeHits resolves the selected candidates' dictionary payloads —
// deferred to after top-k selection so losing candidates never pay for an
// entry lookup.
func materializeHits(d *Dictionary, cands []scoredHit) []FuzzyHit {
	if len(cands) == 0 {
		return nil
	}
	hits := make([]FuzzyHit, len(cands))
	for i, c := range cands {
		hits[i] = FuzzyHit{Text: c.text, Similarity: c.sim, Entries: d.Lookup(c.text)}
	}
	return hits
}

// exactFallback resolves trigram-less (very short) queries through the
// exact dictionary.
func exactFallback(d *Dictionary, norm string) []FuzzyHit {
	if es := d.Lookup(norm); es != nil {
		return []FuzzyHit{{Text: norm, Similarity: 1, Entries: es}}
	}
	return nil
}

// lookupArena is the arena twin of Lookup: norm must already be
// normalized (the engine only passes arena spans, which are), and every
// intermediate lives in sc. Results are identical to Lookup's.
//
//websyn:hotpath
func (fi *FuzzyIndex) lookupArena(sc *Scratch, norm string, limit int) []arenaHit {
	if norm == "" {
		return nil
	}
	qGrams, qTotal := queryGramsInto(sc.qg[:0], norm)
	sc.qg = qGrams
	if len(qGrams) == 0 {
		return exactFallbackArena(fi.dict, norm, sc)
	}
	sc.cands = fi.scan(qGrams, len(qGrams), qTotal, sc.cands[:0])
	var kept []scoredHit
	kept, sc.heap = selectTopInto(sc.cands, limit, sc.heap)
	return materializeArena(fi.dict, kept, sc)
}

// materializeArena resolves selected candidates into arena hits: only
// the best entry per string is computed (an O(entries) scan instead of a
// sorted copy), because the engine never reads past the winner.
//
//websyn:hotpath
func materializeArena(d *Dictionary, cands []scoredHit, sc *Scratch) []arenaHit {
	out := sc.hits[:0]
	for _, c := range cands {
		ah := arenaHit{text: c.text, sim: c.sim}
		if es := d.lookupNormEntries(c.text); len(es) > 0 {
			ah.best, ah.ok = bestEntryOf(es), true
		}
		out = append(out, ah)
	}
	sc.hits = out
	return out
}

// exactFallbackArena is exactFallback without the entry-list copy.
//
//websyn:hotpath
func exactFallbackArena(d *Dictionary, norm string, sc *Scratch) []arenaHit {
	if es := d.lookupNormEntries(norm); len(es) > 0 {
		sc.hits = append(sc.hits[:0], arenaHit{text: norm, sim: 1, best: bestEntryOf(es), ok: true})
		return sc.hits
	}
	return nil
}

// BestEntity resolves a query to a single entity through the fuzzy index,
// preferring exact dictionary hits. The second result reports success.
func (fi *FuzzyIndex) BestEntity(query string) (Entry, bool) {
	return bestEntity(fi.dict, fi.Lookup, query)
}

// bestEntity is the shared flat/sharded resolution policy: exact
// dictionary hit first, then the top fuzzy hit's best entry.
func bestEntity(d *Dictionary, lookup func(string, int) []FuzzyHit, query string) (Entry, bool) {
	if es := d.Lookup(query); len(es) > 0 {
		return es[0], true
	}
	hits := lookup(query, 1)
	if len(hits) == 0 || len(hits[0].Entries) == 0 {
		return Entry{}, false
	}
	return hits[0].Entries[0], true
}

// joinTokens joins normalized tokens with single spaces.
func joinTokens(tokens []string) string {
	n := 0
	for _, t := range tokens {
		n += len(t) + 1
	}
	if n == 0 {
		return ""
	}
	b := make([]byte, 0, n-1)
	for i, t := range tokens {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
