package match

import (
	"sort"

	"websyn/internal/textnorm"
)

// Whole-string fuzzy lookup.
//
// Segment handles token-level typos; this file handles the harder case of
// queries that are *globally* close to a dictionary string but don't
// tokenize cleanly onto it ("madagascar2", "kungfu panda", "cannon eos").
// Dictionary strings are indexed by character trigrams; a query retrieves
// candidates sharing enough trigrams and ranks them by n-gram Dice
// similarity, optionally confirmed by banded edit distance.

// fuzzyGramSize is the character n-gram width of the index.
const fuzzyGramSize = 3

// FuzzyIndex is a character-trigram index over dictionary strings.
type FuzzyIndex struct {
	dict    *Dictionary
	strings []string         // indexed normalized strings
	grams   map[string][]int // trigram -> string indexes (ascending)
	minSim  float64
}

// NewFuzzyIndex builds the trigram index over every string in the
// dictionary. minSim is the Dice-similarity acceptance threshold
// (0.5–0.8 are sensible; higher is stricter).
func (d *Dictionary) NewFuzzyIndex(minSim float64) *FuzzyIndex {
	if minSim <= 0 {
		minSim = 0.6
	}
	fi := &FuzzyIndex{
		dict:   d,
		grams:  make(map[string][]int),
		minSim: minSim,
	}
	collected := d.Strings()
	fi.strings = collected
	for i, s := range collected {
		seen := map[string]bool{}
		for _, g := range textnorm.CharNGrams(s, fuzzyGramSize) {
			if !seen[g] {
				seen[g] = true
				fi.grams[g] = append(fi.grams[g], i)
			}
		}
	}
	return fi
}

// Len returns the number of indexed strings.
func (fi *FuzzyIndex) Len() int { return len(fi.strings) }

// FuzzyHit is one fuzzy-lookup result.
type FuzzyHit struct {
	Text       string  // the dictionary string
	Similarity float64 // Dice trigram similarity to the query
	Entries    []Entry // the string's dictionary payloads, best first
}

// Lookup finds the dictionary strings globally similar to the query,
// best first, up to limit (0 = no limit). Exact hits rank first with
// similarity 1.
func (fi *FuzzyIndex) Lookup(query string, limit int) []FuzzyHit {
	norm := textnorm.Normalize(query)
	if norm == "" {
		return nil
	}
	// Candidate generation: count shared trigrams per indexed string.
	counts := make(map[int]int)
	qGrams := textnorm.CharNGrams(norm, fuzzyGramSize)
	seen := map[string]bool{}
	for _, g := range qGrams {
		if seen[g] {
			continue
		}
		seen[g] = true
		for _, idx := range fi.grams[g] {
			counts[idx]++
		}
	}
	// Very short queries produce no trigram; fall back to exact lookup.
	if len(qGrams) == 0 {
		if es := fi.dict.Lookup(norm); es != nil {
			return []FuzzyHit{{Text: norm, Similarity: 1, Entries: es}}
		}
		return nil
	}

	// Prune: a Dice similarity of s over multisets of sizes a and b needs
	// at least s*(a+b)/2 common grams; with b unknown, require at least
	// s*a/2 shared distinct grams as a cheap lower bound.
	minShared := int(fi.minSim * float64(len(seen)) / 2)
	var hits []FuzzyHit
	for idx, shared := range counts {
		if shared < minShared {
			continue
		}
		s := fi.strings[idx]
		sim := textnorm.NGramSimilarity(norm, s, fuzzyGramSize)
		if sim < fi.minSim {
			continue
		}
		hits = append(hits, FuzzyHit{
			Text:       s,
			Similarity: sim,
			Entries:    fi.dict.Lookup(s),
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Similarity != hits[j].Similarity {
			return hits[i].Similarity > hits[j].Similarity
		}
		return hits[i].Text < hits[j].Text
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// BestEntity resolves a query to a single entity through the fuzzy index,
// preferring exact dictionary hits. The second result reports success.
func (fi *FuzzyIndex) BestEntity(query string) (Entry, bool) {
	if es := fi.dict.Lookup(query); len(es) > 0 {
		return es[0], true
	}
	hits := fi.Lookup(query, 1)
	if len(hits) == 0 || len(hits[0].Entries) == 0 {
		return Entry{}, false
	}
	return hits[0].Entries[0], true
}

// joinTokens joins normalized tokens with single spaces.
func joinTokens(tokens []string) string {
	n := 0
	for _, t := range tokens {
		n += len(t) + 1
	}
	if n == 0 {
		return ""
	}
	b := make([]byte, 0, n-1)
	for i, t := range tokens {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
