package match

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Dictionary serialization: "text<TAB>entityID<TAB>score<TAB>source" lines,
// one per (string, entity) pair, in lexicographic string order. A compiled
// dictionary can therefore be shipped to a serving tier (cmd/matchd)
// without re-running the miner.

// WriteTSV serializes the dictionary.
func (d *Dictionary) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	d.ForEach(func(text string, entries []Entry) {
		if err != nil {
			return
		}
		for _, e := range entries {
			if strings.ContainsAny(e.Source, "\t\n") {
				err = fmt.Errorf("match: source %q contains TSV separators", e.Source)
				return
			}
			if _, werr := fmt.Fprintf(bw, "%s\t%d\t%.6f\t%s\n",
				text, e.EntityID, e.Score, e.Source); werr != nil {
				err = werr
				return
			}
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTSV loads a dictionary serialized by WriteTSV.
func ReadTSV(r io.Reader) (*Dictionary, error) {
	d := NewDictionary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("match: dictionary line %d: %d fields, want 4", line, len(parts))
		}
		id, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("match: dictionary line %d: bad entity ID %q", line, parts[1])
		}
		score, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("match: dictionary line %d: bad score %q", line, parts[2])
		}
		d.Add(parts[0], Entry{EntityID: id, Score: score, Source: parts[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("match: reading dictionary: %w", err)
	}
	return d, nil
}
