package match

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Dictionary serialization: "text<TAB>entityID<TAB>score<TAB>source" lines,
// one per (string, entity) pair, in lexicographic string order. A compiled
// dictionary can therefore be shipped to a serving tier (cmd/matchd)
// without re-running the miner.

// WriteTSV serializes the dictionary.
func (d *Dictionary) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	d.ForEach(func(text string, entries []Entry) {
		if err != nil {
			return
		}
		for _, e := range entries {
			if strings.ContainsAny(e.Source, "\t\n") {
				err = fmt.Errorf("match: source %q contains TSV separators", e.Source)
				return
			}
			if _, werr := fmt.Fprintf(bw, "%s\t%d\t%.6f\t%s\n",
				text, e.EntityID, e.Score, e.Source); werr != nil {
				err = werr
				return
			}
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTSV loads a dictionary serialized by WriteTSV.
func ReadTSV(r io.Reader) (*Dictionary, error) {
	d := NewDictionary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("match: dictionary line %d: %d fields, want 4", line, len(parts))
		}
		id, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("match: dictionary line %d: bad entity ID %q", line, parts[1])
		}
		score, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("match: dictionary line %d: bad score %q", line, parts[2])
		}
		d.Add(parts[0], Entry{EntityID: id, Score: score, Source: parts[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("match: reading dictionary: %w", err)
	}
	return d, nil
}

// Packed fuzzy-index serialization: a uvarint-framed binary layout the
// serve snapshot embeds as its own section.
//
//	string count, gram count,
//	per gram: uvarint length + UTF-8 bytes,
//	per gram: posting count, then per posting:
//	  string-index delta (first posting: the index itself; postings are
//	  strictly ascending, so deltas stay small), multiplicity.
//
// Delta coding keeps the common case — a gram appearing once in each of
// a run of nearby strings — at two bytes per posting.

// maxPackedGrams bounds the gram count read from a file; a larger prefix
// means a corrupt file and must not drive an allocation.
const maxPackedGrams = 1 << 26

// WriteBinary serializes the packed index.
func (p *PackedFuzzy) WriteBinary(w io.Writer) error {
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := w.Write(scratch[:n])
		return err
	}
	if err := writeUvarint(uint64(p.NumStrings)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(p.Grams))); err != nil {
		return err
	}
	for _, g := range p.Grams {
		if err := writeUvarint(uint64(len(g))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, g); err != nil {
			return err
		}
	}
	for g := range p.Grams {
		start, end := p.Offsets[g], p.Offsets[g+1]
		if err := writeUvarint(uint64(end - start)); err != nil {
			return err
		}
		prev := int32(0)
		for k := start; k < end; k++ {
			if err := writeUvarint(uint64(p.Postings[k] - prev)); err != nil {
				return err
			}
			prev = p.Postings[k]
			if err := writeUvarint(uint64(p.Mults[k])); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadPackedFuzzy loads a packed index serialized by WriteBinary. The
// reader should implement io.ByteReader (bufio.Reader does) — otherwise
// it is wrapped, and bytes past the packed section may be consumed.
func ReadPackedFuzzy(r io.Reader) (*PackedFuzzy, error) {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if !ok {
		br = bufio.NewReader(r)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }

	numStrings, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("match: reading packed string count: %w", err)
	}
	numGrams, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("match: reading packed gram count: %w", err)
	}
	if numGrams > maxPackedGrams {
		return nil, fmt.Errorf("match: packed gram count %d exceeds limit", numGrams)
	}
	// Capacity hints are capped: a corrupt count prefix must not drive a
	// huge allocation before the snapshot checksum can reject the file.
	p := &PackedFuzzy{
		NumStrings: int(numStrings),
		Grams:      make([]string, 0, min(numGrams, 1<<20)),
		Offsets:    make([]int32, 1, min(numGrams, 1<<20)+1),
	}
	for i := uint64(0); i < numGrams; i++ {
		n, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("match: reading packed gram %d: %w", i, err)
		}
		// Grams are fixed-width character n-grams; anything long is corrupt.
		if n > 64 {
			return nil, fmt.Errorf("match: packed gram length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("match: reading packed gram %d: %w", i, err)
		}
		p.Grams = append(p.Grams, string(buf))
	}
	for g := uint64(0); g < numGrams; g++ {
		cnt, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("match: reading posting count for gram %d: %w", g, err)
		}
		if cnt > numStrings {
			return nil, fmt.Errorf("match: gram %d posting count %d exceeds string count %d", g, cnt, numStrings)
		}
		prev := int32(0)
		for k := uint64(0); k < cnt; k++ {
			delta, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("match: reading posting %d of gram %d: %w", k, g, err)
			}
			// Postings are strictly ascending (delta 0 is only the first
			// posting's index 0), and the sum is checked in uint64 so an
			// oversized delta cannot wrap int32 into a bogus valid index.
			next := uint64(prev) + delta
			if (k > 0 && delta == 0) || delta > math.MaxInt32 || next >= numStrings || next > math.MaxInt32 {
				return nil, fmt.Errorf("match: posting %d of gram %d out of range", k, g)
			}
			idx := int32(next)
			prev = idx
			mult, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("match: reading multiplicity %d of gram %d: %w", k, g, err)
			}
			if mult < 1 || mult > 1<<30 {
				return nil, fmt.Errorf("match: multiplicity %d of gram %d out of range", k, g)
			}
			p.Postings = append(p.Postings, idx)
			p.Mults = append(p.Mults, int32(mult))
		}
		p.Offsets = append(p.Offsets, int32(len(p.Postings)))
	}
	return p, nil
}
