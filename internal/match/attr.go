package match

import "fmt"

// Structured attribute rewrite (the /v2 match surface).
//
// The paper's end goal is mapping whole Web queries to structured data;
// entity resolution alone leaves the attribute part of the query —
// "cheap canon 40d lens under $500" — as opaque remainder text. The
// rewrite stage turns remainder tokens into typed predicates against the
// entity table's columns ("price < 500", "band: cheap"). The engine only
// defines the contract here: the vocabulary mining and token parsing live
// in internal/rewrite, injected via SetRewriter so the match package
// never depends on the entity tables.

// Predicate is one typed attribute constraint extracted from the query's
// remainder tokens. Exactly one of Value (numeric columns) and Text
// (categorical columns) is meaningful, selected by Op.
type Predicate struct {
	// Column is the entity-table column the predicate constrains
	// ("price", "year", "megapixels", "zoom", "brand", "genre", ...).
	Column string `json:"column"`
	// Op is the comparison: "eq", "lt", "lte", "gt" or "gte".
	Op string `json:"op"`
	// Value is the numeric operand for numeric columns.
	Value float64 `json:"value,omitempty"`
	// Text is the canonical categorical value for categorical columns
	// ("canon", "adventure") — the vocabulary string, not the query
	// surface ("cannon" still yields Text "canon").
	Text string `json:"text,omitempty"`
	// Unit is the column's canonical unit tag ("usd", "mp", "x"), empty
	// for unitless columns.
	Unit string `json:"unit,omitempty"`
	// Span is the query surface the predicate consumed ("under 500").
	Span string `json:"span"`
	// Start and End are the consumed token window [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Similarity is the Dice trigram similarity for fuzzy-resolved
	// categorical values (0 for exact matches).
	Similarity float64 `json:"similarity,omitempty"`
	// Source records which lexicon produced the predicate: "comparator"
	// (under/over + number), "band" (cheap/premium), "unit" (number +
	// unit token or fused suffix), "value" (exact categorical or
	// discrete numeric value) or "value-fuzzy" (trigram-matched
	// categorical value).
	Source string `json:"source"`
	// Domain is the vertical whose vocabulary produced the predicate,
	// stamped by the serving tier when responses from several domains
	// are federated. Empty outside federated serving.
	Domain string `json:"domain,omitempty"`
}

// AttributeRewriter turns unmatched query tokens into typed predicates.
// Implementations must be safe for concurrent use and deterministic: the
// serving tier runs one rewriter across every request of a generation,
// and the allocating and arena match paths must produce byte-identical
// responses.
type AttributeRewriter interface {
	// RewriteTokens parses the unused tokens (used[i] == false) into
	// predicates, marking every consumed token in used. minSim, when
	// positive, raises the fuzzy-value acceptance floor. explain, when
	// non-nil, receives one human-readable line per decision. Tokens may
	// alias caller-owned buffers: every string placed in a returned
	// Predicate must be freshly allocated or stable.
	RewriteTokens(tokens []string, used []bool, minSim float64, explain func(format string, args ...any)) []Predicate
}

// SetRewriter attaches the attribute rewriter consulted by requests with
// Rewrite set. A nil rewriter (the default) makes rewrite requests
// degrade gracefully: Attributes stays empty and Residual mirrors
// Remainder.
func (e *Engine) SetRewriter(r AttributeRewriter) { e.rewriter = r }

// Rewriter returns the attached attribute rewriter, nil if none.
func (e *Engine) Rewriter() AttributeRewriter { return e.rewriter }

// rewritePass executes the attribute rewrite stage for the allocating
// path: predicates over the still-unused tokens, then the post-rewrite
// residual. Runs after Remainder is final, so v1 semantics are untouched.
func (e *Engine) rewritePass(resp *Response, tokens []string, used []bool, req Request, addTrace func(stage, format string, args ...any)) {
	if e.rewriter == nil {
		resp.Residual = resp.Remainder
		return
	}
	var explain func(format string, args ...any)
	if req.Explain {
		explain = func(format string, args ...any) { addTrace("rewrite", format, args...) }
	}
	resp.Attributes = e.rewriter.RewriteTokens(tokens, used, req.MinSim, explain)
	resp.Residual = joinUnused(tokens, used)
}

// rewritePass is the arena twin: identical semantics, tracing through the
// scratch. Deliberately not //websyn:hotpath — the rewrite stage is a v2
// feature allowed to allocate; the alloc budget gates Rewrite=false
// classes only. The explain closure must capture only the scratch
// pointer, never the matchCtx: a closure over c would make every
// MatchPrepared heap-allocate its context, rewrite requested or not
// (escape analysis is path-insensitive), blowing the zero-alloc budget
// of the v1 classes.
func (c *matchCtx) rewritePass(resp *Response) {
	e, sc, req := c.e, c.sc, c.req
	if e.rewriter == nil {
		resp.Residual = resp.Remainder
		return
	}
	var explain func(format string, args ...any)
	if req.Explain {
		explain = func(format string, args ...any) {
			sc.trace = append(sc.trace, TraceStep{Stage: "rewrite", Detail: fmt.Sprintf(format, args...)})
		}
	}
	resp.Attributes = e.rewriter.RewriteTokens(sc.tokens, sc.used, req.MinSim, explain)
	resp.Residual = joinUnused(sc.tokens, sc.used)
}

// joinUnused builds the residual: the still-unused tokens joined by
// single spaces, as a freshly allocated string (tokens may alias arena
// bytes; the residual must outlive the scratch).
func joinUnused(tokens []string, used []bool) string {
	n := 0
	for i, t := range tokens {
		if !used[i] {
			n += len(t) + 1
		}
	}
	if n == 0 {
		return ""
	}
	b := make([]byte, 0, n-1)
	for i, t := range tokens {
		if used[i] {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
