package match

import (
	"bytes"
	"reflect"
	"testing"
)

func TestFuzzyIndexLen(t *testing.T) {
	d := demoDict()
	fi := d.NewFuzzyIndex(0.6)
	if fi.Len() != 9 {
		t.Fatalf("indexed %d strings, want 9", fi.Len())
	}
}

func TestFuzzyLookupExactString(t *testing.T) {
	fi := demoDict().NewFuzzyIndex(0.6)
	hits := fi.Lookup("digital rebel xt", 0)
	if len(hits) == 0 || hits[0].Text != "digital rebel xt" || hits[0].Similarity != 1 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestFuzzyLookupGlobalTypos(t *testing.T) {
	fi := demoDict().NewFuzzyIndex(0.55)
	cases := map[string]string{
		"madagascar2":      "madagascar 2",     // missing space
		"digtal rebel xt":  "digital rebel xt", // dropped letter
		"indiana jones 4 ": "indiana jones 4",  // trailing junk
		"twilightt":        "twilight",         // doubled letter
	}
	for q, want := range cases {
		hits := fi.Lookup(q, 1)
		if len(hits) == 0 {
			t.Errorf("Lookup(%q) found nothing", q)
			continue
		}
		if hits[0].Text != want {
			t.Errorf("Lookup(%q) = %q, want %q", q, hits[0].Text, want)
		}
	}
}

func TestFuzzyLookupRejectsDistantStrings(t *testing.T) {
	fi := demoDict().NewFuzzyIndex(0.6)
	for _, q := range []string{"completely unrelated", "zzz qqq", "weather report"} {
		if hits := fi.Lookup(q, 0); len(hits) != 0 {
			t.Errorf("Lookup(%q) = %+v, want none", q, hits)
		}
	}
}

func TestFuzzyLookupLimit(t *testing.T) {
	fi := demoDict().NewFuzzyIndex(0.3)
	all := fi.Lookup("indiana jones", 0)
	one := fi.Lookup("indiana jones", 1)
	if len(one) > 1 {
		t.Fatalf("limit violated: %d hits", len(one))
	}
	if len(all) > 0 && len(one) == 0 {
		t.Fatal("limit dropped all hits")
	}
}

func TestFuzzyLookupEmptyQuery(t *testing.T) {
	fi := demoDict().NewFuzzyIndex(0.6)
	if hits := fi.Lookup("", 0); hits != nil {
		t.Fatalf("empty query produced %+v", hits)
	}
}

func TestFuzzyShortQueryFallsBackToExact(t *testing.T) {
	d := NewDictionary()
	d.Add("xy", Entry{EntityID: 5, Score: 1})
	fi := d.NewFuzzyIndex(0.6)
	hits := fi.Lookup("xy", 0)
	if len(hits) != 1 || hits[0].Entries[0].EntityID != 5 {
		t.Fatalf("short-query fallback = %+v", hits)
	}
	if hits := fi.Lookup("zz", 0); hits != nil {
		t.Fatalf("unknown short query produced %+v", hits)
	}
}

func TestBestEntity(t *testing.T) {
	fi := demoDict().NewFuzzyIndex(0.55)
	e, ok := fi.BestEntity("350d")
	if !ok || e.EntityID != 2 {
		t.Fatalf("exact BestEntity = %+v, %v", e, ok)
	}
	e, ok = fi.BestEntity("madagascar2")
	if !ok || e.EntityID != 4 {
		t.Fatalf("fuzzy BestEntity = %+v, %v", e, ok)
	}
	if _, ok := fi.BestEntity("nothing here"); ok {
		t.Fatal("irrelevant query resolved")
	}
}

func TestForEachOrderedAndComplete(t *testing.T) {
	d := demoDict()
	var texts []string
	total := 0
	d.ForEach(func(text string, entries []Entry) {
		texts = append(texts, text)
		total += len(entries)
	})
	if total != d.Len() {
		t.Fatalf("ForEach visited %d entries, dictionary has %d", total, d.Len())
	}
	for i := 1; i < len(texts); i++ {
		if texts[i] <= texts[i-1] {
			t.Fatalf("ForEach not in order: %q after %q", texts[i], texts[i-1])
		}
	}
	if !reflect.DeepEqual(texts, d.Strings()) {
		t.Fatal("Strings() disagrees with ForEach")
	}
}

func TestDictionaryTSVRoundTrip(t *testing.T) {
	d := demoDict()
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip size %d != %d", d2.Len(), d.Len())
	}
	for _, s := range d.Strings() {
		a, b := d.Lookup(s), d2.Lookup(s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("entries differ for %q: %v vs %v", s, a, b)
		}
	}
	// Segmentation behaviour must survive the round trip.
	segA := d.Segment("indy 4 near san fran")
	segB := d2.Segment("indy 4 near san fran")
	if !reflect.DeepEqual(segA.Matches, segB.Matches) {
		t.Fatal("segmentation differs after round trip")
	}
}

func TestReadTSVRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"too\tfew\tfields\n",
		"text\tNaN\t0.5\tsrc\n",
		"text\t1\tnotafloat\tsrc\n",
	} {
		if _, err := ReadTSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("malformed input %q accepted", in)
		}
	}
}

func TestWriteTSVRejectsTabInSource(t *testing.T) {
	d := NewDictionary()
	d.Add("x y", Entry{EntityID: 1, Score: 1, Source: "bad\tsource"})
	if err := d.WriteTSV(&bytes.Buffer{}); err == nil {
		t.Fatal("tab in source accepted")
	}
}

func BenchmarkFuzzyLookup(b *testing.B) {
	fi := demoDict().NewFuzzyIndex(0.55)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fi.Lookup("madagascar2 dvd release", 3)
	}
}
