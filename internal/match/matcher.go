package match

import (
	"sort"
	"strings"

	"websyn/internal/textnorm"
)

// Match is one entity mention found inside a query.
type Match struct {
	// EntityID is the resolved entity.
	EntityID int
	// Text is the matched surface span (normalized tokens joined).
	Text string
	// Start and End are the token span [Start, End) within the query.
	Start, End int
	// Score is the dictionary confidence of the winning entry.
	Score float64
	// Source is the winning entry's provenance.
	Source string
	// Corrected reports whether typo correction was applied to any token
	// in the span.
	Corrected bool
}

// Segmentation is the result of matching a free-text query.
type Segmentation struct {
	// Query is the normalized input.
	Query string
	// Tokens is the normalized token sequence.
	Tokens []string
	// Matches are the non-overlapping entity mentions, left to right.
	Matches []Match
	// Remainder is the query text outside all matched spans, in order.
	Remainder string
}

// Best returns the highest-scoring match, or nil.
func (s *Segmentation) Best() *Match {
	var best *Match
	for i := range s.Matches {
		m := &s.Matches[i]
		if best == nil || m.Score > best.Score ||
			(m.Score == best.Score && m.End-m.Start > best.End-best.Start) {
			best = m
		}
	}
	return best
}

// Segment finds entity mentions in a free-text query. It scans left to
// right, at each position taking the longest dictionary span starting there
// (with per-token typo correction when the exact token is unknown), and
// resolves each span to its best entry.
func (d *Dictionary) Segment(query string) *Segmentation {
	return d.SegmentTokens(textnorm.Tokenize(query))
}

// SegmentTokens is Segment for callers that already hold the normalized
// token sequence (e.g. a serving tier that tokenized once for its cache
// key). The tokens slice is retained by the result.
func (d *Dictionary) SegmentTokens(tokens []string) *Segmentation {
	seg := &Segmentation{Query: strings.Join(tokens, " "), Tokens: tokens}
	used := make([]bool, len(tokens))

	for start := 0; start < len(tokens); start++ {
		m, ok := d.longestFrom(tokens, start)
		if !ok {
			continue
		}
		seg.Matches = append(seg.Matches, m)
		for i := m.Start; i < m.End; i++ {
			used[i] = true
		}
		start = m.End - 1
	}

	var rest []string
	for i, tok := range tokens {
		if !used[i] {
			rest = append(rest, tok)
		}
	}
	seg.Remainder = strings.Join(rest, " ")
	return seg
}

// longestFrom walks the trie from tokens[start], applying typo correction
// on unknown tokens, and returns the longest span that ends at a node with
// entries.
func (d *Dictionary) longestFrom(tokens []string, start int) (Match, bool) {
	node := d.root
	bestEnd := -1
	var bestEntries []Entry
	corrected := false
	bestCorrected := false

	for i := start; i < len(tokens); i++ {
		tok := tokens[i]
		next := node.children[tok]
		if next == nil {
			if fixed := d.correct(tok); fixed != "" {
				next = node.children[fixed]
				if next != nil {
					corrected = true
				}
			}
		}
		if next == nil {
			break
		}
		node = next
		if len(node.entries) > 0 {
			bestEnd = i + 1
			bestEntries = node.entries
			bestCorrected = corrected
		}
	}
	if bestEnd < 0 {
		return Match{}, false
	}
	best := bestEntries[0]
	for _, e := range bestEntries[1:] {
		if e.Score > best.Score || (e.Score == best.Score && e.EntityID < best.EntityID) {
			best = e
		}
	}
	return Match{
		EntityID:  best.EntityID,
		Text:      strings.Join(tokens[start:bestEnd], " "),
		Start:     start,
		End:       bestEnd,
		Score:     best.Score,
		Source:    best.Source,
		Corrected: bestCorrected,
	}, true
}

// MatchQuery is the one-call form: segment and return the best entity
// match, or ok=false when the query mentions no known entity.
func (d *Dictionary) MatchQuery(query string) (Match, bool) {
	seg := d.Segment(query)
	best := seg.Best()
	if best == nil {
		return Match{}, false
	}
	return *best, true
}

// Candidates returns every entity mentioned in the query with its best
// score, strongest first — useful when a query is genuinely ambiguous.
// An entity mentioned in several spans appears once, under its
// best-scoring span (ties go to the longer, then the earlier span).
func (d *Dictionary) Candidates(query string) []Match {
	seg := d.Segment(query)
	best := make(map[int]Match, len(seg.Matches))
	for _, m := range seg.Matches {
		prev, ok := best[m.EntityID]
		if !ok || m.Score > prev.Score ||
			(m.Score == prev.Score && (m.End-m.Start > prev.End-prev.Start ||
				(m.End-m.Start == prev.End-prev.Start && m.Start < prev.Start))) {
			best[m.EntityID] = m
		}
	}
	out := make([]Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Start < out[j].Start
	})
	return out
}
