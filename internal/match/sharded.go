package match

import (
	"runtime"
	"sync"

	"websyn/internal/textnorm"
)

// ShardedFuzzyIndex partitions the packed trigram index across
// independent shards. Each shard owns a disjoint subset of the dictionary
// strings with its own posting slabs, so a lookup touches several small
// gram tables instead of one large one, shard construction parallelizes
// at build time, and under concurrent serving load lookups spread their
// working sets instead of contending on a single set of posting lists
// in cache. Lookups themselves scan the shards sequentially —
// request-level concurrency owns the cores (see Lookup).
type ShardedFuzzyIndex struct {
	dict   *Dictionary
	shards []*FuzzyIndex
}

// shardCount resolves the shard count against the string count: shards
// <= 0 picks GOMAXPROCS, and there is never more than one shard per
// string (nor fewer than one shard).
func shardCount(shards, strings int) int {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > strings {
		shards = strings
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// partitionStrings deals the string list round-robin into shardCount
// parts — the one assignment rule shared by the direct builder and the
// packed-snapshot loader, so both produce identical shards.
func partitionStrings(all []string, shards int) [][]string {
	parts := make([][]string, shards)
	for i, s := range all {
		parts[i%shards] = append(parts[i%shards], s)
	}
	return parts
}

// NewShardedFuzzyIndex builds a fuzzy index over every dictionary string,
// partitioned round-robin into the given number of shards. shards <= 0
// picks GOMAXPROCS. minSim is the Dice-similarity acceptance threshold,
// as in NewFuzzyIndex.
func (d *Dictionary) NewShardedFuzzyIndex(minSim float64, shards int) *ShardedFuzzyIndex {
	all := d.Strings()
	shards = shardCount(shards, len(all))
	parts := partitionStrings(all, shards)
	sfi := &ShardedFuzzyIndex{dict: d, shards: make([]*FuzzyIndex, shards)}
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sfi.shards[i] = newFuzzyIndexOver(d, parts[i], minSim)
		}(i)
	}
	wg.Wait()
	return sfi
}

// Shards returns the number of partitions.
func (sfi *ShardedFuzzyIndex) Shards() int { return len(sfi.shards) }

// Len returns the total number of indexed strings across all shards.
func (sfi *ShardedFuzzyIndex) Len() int {
	n := 0
	for _, sh := range sfi.shards {
		n += sh.Len()
	}
	return n
}

// Lookup finds the dictionary strings globally similar to the query,
// best first, up to limit (0 = no limit). Shards are scanned
// sequentially into one candidate buffer: a single lookup's per-shard
// scan is a few microseconds, far too small to amortize a
// goroutine-per-shard fan-out (the old parallel dispatch measured
// slower than the flat index), and under serving load the
// request-level worker pool already owns the cores — parallelism
// belongs across lookups, not inside one. The merged top-k selection is
// order-independent (hitBetter is a total order), so results are
// identical to an unsharded FuzzyIndex.Lookup at the same threshold.
func (sfi *ShardedFuzzyIndex) Lookup(query string, limit int) []FuzzyHit {
	norm := textnorm.Normalize(query)
	if norm == "" {
		return nil
	}
	qGrams, qTotal := queryGrams(norm)
	if len(qGrams) == 0 {
		return exactFallback(sfi.dict, norm)
	}
	var cands []scoredHit
	for _, sh := range sfi.shards {
		cands = sh.scan(qGrams, len(qGrams), qTotal, cands)
	}
	return materializeHits(sfi.dict, selectTop(cands, limit))
}

// BestEntity resolves a query to a single entity through the sharded
// index, preferring exact dictionary hits. The second result reports
// success.
func (sfi *ShardedFuzzyIndex) BestEntity(query string) (Entry, bool) {
	return bestEntity(sfi.dict, sfi.Lookup, query)
}

// lookupArena is the arena twin of Lookup. Shards are scanned
// sequentially — a span-window lookup is far too small to amortize
// goroutine fan-out, and the request-level worker pool already owns the
// cores — into one shared candidate buffer; the merged top-k selection
// is order-independent (hitBetter is a total order), so results are
// identical to the parallel Lookup's.
//
//websyn:hotpath
func (sfi *ShardedFuzzyIndex) lookupArena(sc *Scratch, norm string, limit int) []arenaHit {
	if norm == "" {
		return nil
	}
	qGrams, qTotal := queryGramsInto(sc.qg[:0], norm)
	sc.qg = qGrams
	if len(qGrams) == 0 {
		return exactFallbackArena(sfi.dict, norm, sc)
	}
	cands := sc.cands[:0]
	for _, sh := range sfi.shards {
		cands = sh.scan(qGrams, len(qGrams), qTotal, cands)
	}
	sc.cands = cands
	var kept []scoredHit
	kept, sc.heap = selectTopInto(cands, limit, sc.heap)
	return materializeArena(sfi.dict, kept, sc)
}
