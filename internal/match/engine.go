package match

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"websyn/internal/textnorm"
)

// Engine is the single entry point for online query matching: it owns the
// token-trie dictionary (exact segmentation + per-token typo correction)
// and the packed trigram index (whole-string and span-level fuzzy
// matching), and answers every request through one Request/Response pair.
// The websyn facade, the /v1/match HTTP endpoint and the legacy endpoint
// adapters all route through it.
//
// The capability the trio of older primitives only approximated is
// span-level fuzzy matching: after trie segmentation, candidate
// multi-token spans of the leftover tokens are run through the trigram
// index, so "indianajones 4 tickets" resolves the span "indianajones 4"
// to the movie even though no trie path and no single-token correction
// can bridge the concatenation.
type Engine struct {
	dict *Dictionary
	// fuzzy is the trigram index consulted by span and fuzzy modes; a nil
	// index degrades ModeSpan to plain segmentation and makes ModeFuzzy
	// an error.
	fuzzy FuzzyLookup
	// canonicals maps entity ID -> canonical string. When non-nil,
	// matches resolving outside it are dropped (the serving tier's
	// behavior); when nil, Canonical fields are left empty.
	canonicals []string
	// minSim is the threshold the fuzzy index was built with — the floor
	// any Request.MinSim override is applied above.
	minSim float64
	// rewriter, when non-nil, parses remainder tokens into typed
	// attribute predicates for requests with Rewrite set (see attr.go).
	rewriter AttributeRewriter
}

// FuzzyLookup is the trigram-index capability the engine needs; both
// *FuzzyIndex and *ShardedFuzzyIndex satisfy it.
type FuzzyLookup interface {
	Lookup(query string, limit int) []FuzzyHit
}

// NewEngine assembles an engine. fuzzy and canonicals may be nil (see
// Engine field docs); minSim <= 0 falls back to the package default.
func NewEngine(dict *Dictionary, fuzzy FuzzyLookup, canonicals []string, minSim float64) *Engine {
	return &Engine{dict: dict, fuzzy: fuzzy, canonicals: canonicals, minSim: normMinSim(minSim)}
}

// MinSim returns the similarity floor the engine's trigram index was
// built with — the threshold Request.MinSim overrides can only raise.
func (e *Engine) MinSim() float64 { return e.minSim }

// Mode selects the engine's matching strategy.
type Mode string

const (
	// ModeSpan — the default — segments the query against the trie and
	// then resolves leftover multi-token spans through the trigram index.
	ModeSpan Mode = "span"
	// ModeSegment is trie segmentation with per-token typo correction
	// only: the legacy GET /match behavior.
	ModeSegment Mode = "segment"
	// ModeFuzzy matches the whole query string against the trigram
	// index: the legacy GET /fuzzy behavior.
	ModeFuzzy Mode = "fuzzy"
)

// Request limits and defaults.
const (
	// DefaultTopK is the candidate-list depth when Request.TopK is 0.
	DefaultTopK = 5
	// MaxTopK bounds Request.TopK.
	MaxTopK = 1000
	// DefaultMaxSpanTokens is the span-mode window when
	// Request.MaxSpanTokens is 0.
	DefaultMaxSpanTokens = 8
	// MaxMaxSpanTokens bounds Request.MaxSpanTokens.
	MaxMaxSpanTokens = 16
	// minSingleSpanLen is the shortest single token span-fuzzy will try
	// to resolve; shorter leftovers ("4", "dvd") are noise generators.
	minSingleSpanLen = 4
	// singleSpanMinSim is the similarity floor for single-token spans.
	// A lone token should essentially BE the matched string (a
	// concatenation like "madagascar2", sim ~0.84); just-above-threshold
	// hits there are containment artifacts ("reviews" matching "bolt
	// review" at 0.57).
	singleSpanMinSim = 0.65
)

// Request is the one matching request shape, shared verbatim by the Go
// API and the HTTP tier (POST /v1/match).
type Request struct {
	// Query is the free-text query. Required.
	Query string `json:"query"`
	// TopK bounds ranked candidate lists: fuzzy hits in ModeFuzzy,
	// alternate resolutions per span otherwise. 0 means DefaultTopK.
	TopK int `json:"top_k,omitempty"`
	// MinSim raises the Dice-similarity acceptance threshold for fuzzy
	// and span-fuzzy hits above the index's own floor. 0 keeps the floor.
	MinSim float64 `json:"min_sim,omitempty"`
	// Mode selects the strategy; empty means ModeSpan.
	Mode Mode `json:"mode,omitempty"`
	// Explain attaches a human-readable trace of every matching decision.
	Explain bool `json:"explain,omitempty"`
	// MaxSpanTokens bounds the token width of span-fuzzy candidates.
	// 0 means DefaultMaxSpanTokens.
	MaxSpanTokens int `json:"max_span_tokens,omitempty"`
	// Domain names the structured vertical ("movies", "cameras", ...)
	// the request targets. The engine itself is domain-agnostic and
	// ignores it; the serving tier's domain registry routes on it and
	// stamps responses with the domain that answered. Empty means the
	// caller did not pin a domain.
	Domain string `json:"domain,omitempty"`
	// Rewrite enables the structured attribute rewrite stage: after
	// matching, remainder tokens are parsed into typed predicates
	// (Response.Attributes) and the post-rewrite Residual is computed.
	// Not part of the JSON request surface — the API version selects it
	// (/v2/match sets it, /v1/match never does), which is what keeps v1
	// responses byte-frozen.
	Rewrite bool `json:"-"`
}

// ErrEmptyQuery is returned for requests whose Query field is empty.
var ErrEmptyQuery = errors.New("match: empty query")

// WithDefaults returns the request with zero values resolved. The
// serving tier keys its cache on the defaulted form so equivalent
// requests share an entry.
func (r Request) WithDefaults() Request {
	if r.Mode == "" {
		r.Mode = ModeSpan
	}
	if r.TopK == 0 {
		r.TopK = DefaultTopK
	}
	if r.MaxSpanTokens == 0 {
		r.MaxSpanTokens = DefaultMaxSpanTokens
	}
	return r
}

// Validate rejects malformed requests. It does not resolve defaults;
// call WithDefaults first (Engine.Match does both).
func (r Request) Validate() error {
	if r.Query == "" {
		return ErrEmptyQuery
	}
	if r.TopK < 0 || r.TopK > MaxTopK {
		return fmt.Errorf("match: top_k %d out of range [1, %d]", r.TopK, MaxTopK)
	}
	if r.MinSim < 0 || r.MinSim > 1 {
		return fmt.Errorf("match: min_sim %g out of range [0, 1]", r.MinSim)
	}
	if r.MaxSpanTokens < 0 || r.MaxSpanTokens > MaxMaxSpanTokens {
		return fmt.Errorf("match: max_span_tokens %d out of range [1, %d]", r.MaxSpanTokens, MaxMaxSpanTokens)
	}
	switch r.Mode {
	case ModeSpan, ModeSegment, ModeFuzzy:
		return nil
	default:
		return fmt.Errorf("match: unknown mode %q (valid: %q, %q, %q)", r.Mode, ModeSpan, ModeSegment, ModeFuzzy)
	}
}

// Response is the one matching response shape.
type Response struct {
	// Query is the normalized input.
	Query string `json:"query"`
	// Matches are the resolved entity mentions, left to right (ModeFuzzy:
	// ranked whole-string hits, best first).
	Matches []SpanMatch `json:"matches"`
	// Remainder is the query text outside all matched spans.
	Remainder string `json:"remainder"`
	// Attributes are the typed predicates parsed from remainder tokens,
	// present only for requests with Rewrite set (the /v2 surface) on an
	// engine with an attribute rewriter.
	Attributes []Predicate `json:"attributes,omitempty"`
	// Residual is the query text left after both matching and attribute
	// rewrite — Remainder minus the tokens predicates consumed. Only
	// meaningful (and only emitted) for Rewrite requests.
	Residual string `json:"residual,omitempty"`
	// Trace explains every matching decision, present when
	// Request.Explain was set.
	Trace []TraceStep `json:"trace,omitempty"`
	// Timing breaks down where the request spent its time.
	Timing Timing `json:"timing"`
	// Domain is the vertical that answered, stamped by the serving
	// tier's domain registry. Empty for engines queried directly and for
	// legacy single-snapshot serving. Federated responses merge several
	// domains and leave it empty — the per-match Domain carries the
	// provenance there.
	Domain string `json:"domain,omitempty"`
}

// SpanMatch is one resolved span: an entity mention with its evidence and
// ranked alternates.
type SpanMatch struct {
	// EntityID is the resolved entity.
	EntityID int `json:"entity_id"`
	// Canonical is the entity's canonical string (empty when the engine
	// has no entity table).
	Canonical string `json:"canonical,omitempty"`
	// Span is the matched text: the query span for trie matches, the
	// matched dictionary string for fuzzy resolutions.
	Span string `json:"span"`
	// Start and End are the token span [Start, End) within the query.
	Start int `json:"start"`
	End   int `json:"end"`
	// Score is the dictionary confidence of the winning entry.
	Score float64 `json:"score"`
	// Similarity is the Dice trigram similarity for fuzzy-resolved spans
	// (0 for exact trie matches).
	Similarity float64 `json:"similarity,omitempty"`
	// Source is the winning entry's provenance ("canonical", "mined", ...).
	Source string `json:"source,omitempty"`
	// Method records which machinery resolved the span.
	Method string `json:"method"`
	// Corrected reports whether per-token typo correction was applied.
	Corrected bool `json:"corrected,omitempty"`
	// Alternates are lower-ranked resolutions of the same span, best
	// first, up to TopK-1 of them.
	Alternates []Alternate `json:"alternates,omitempty"`
	// Domain is the vertical whose dictionary resolved this span,
	// stamped by the serving tier when responses from several domains
	// are federated into one. Empty outside federated serving.
	Domain string `json:"domain,omitempty"`
}

// Resolution methods recorded in SpanMatch.Method.
const (
	MethodTrie      = "trie"
	MethodTrieTypo  = "trie+typo"
	MethodSpanFuzzy = "span-fuzzy"
	MethodFuzzy     = "fuzzy"
)

// Alternate is one lower-ranked resolution of a span.
type Alternate struct {
	EntityID  int    `json:"entity_id"`
	Canonical string `json:"canonical,omitempty"`
	// Text is the dictionary string behind the alternate.
	Text       string  `json:"text"`
	Score      float64 `json:"score"`
	Similarity float64 `json:"similarity,omitempty"`
}

// TraceStep is one explain-trace line.
type TraceStep struct {
	// Stage is the machinery that produced the step: "segment",
	// "span-fuzzy" or "fuzzy".
	Stage string `json:"stage"`
	// Detail is the human-readable decision.
	Detail string `json:"detail"`
	// Domain tags which vertical's engine produced the step in a
	// federated trace. Empty outside federated serving.
	Domain string `json:"domain,omitempty"`
}

// Timing is the response's latency breakdown in microseconds.
type Timing struct {
	TotalMicros   float64 `json:"total_us"`
	SegmentMicros float64 `json:"segment_us,omitempty"`
	FuzzyMicros   float64 `json:"fuzzy_us,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Match answers one request. It validates after resolving defaults, so a
// zero-valued Request with just Query set is the common-case call.
func (e *Engine) Match(req Request) (Response, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	return e.match(req, textnorm.Tokenize(req.Query))
}

// MatchTokens is Match for callers that already hold the normalized
// token sequence — e.g. a serving tier that tokenized once for its
// cache key. tokens must be textnorm.Tokenize(req.Query); req.Query is
// still validated and must be the untokenized original.
func (e *Engine) MatchTokens(req Request, tokens []string) (Response, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return Response{}, err
	}
	return e.match(req, tokens)
}

// match answers a defaulted, validated request over its tokens.
func (e *Engine) match(req Request, tokens []string) (Response, error) {
	if req.Mode == ModeFuzzy && e.fuzzy == nil {
		return Response{}, errors.New("match: fuzzy mode unavailable: engine has no trigram index")
	}
	start := time.Now()
	var resp Response
	if len(tokens) == 0 {
		// Normalization ate the whole query ("!!!"): a degenerate but
		// well-formed request, answered with an empty segmentation.
		resp.Timing.TotalMicros = micros(time.Since(start))
		return resp, nil
	}

	resp.Query = joinTokens(tokens)
	var trace []TraceStep
	addTrace := func(stage, format string, args ...any) {
		if req.Explain {
			trace = append(trace, TraceStep{Stage: stage, Detail: fmt.Sprintf(format, args...)})
		}
	}

	if req.Mode == ModeFuzzy {
		t0 := time.Now()
		resp.Matches = e.wholeFuzzy(resp.Query, len(tokens), req, addTrace)
		resp.Timing.FuzzyMicros = micros(time.Since(t0))
		if len(resp.Matches) == 0 {
			resp.Remainder = resp.Query
		}
		if req.Rewrite && len(resp.Matches) == 0 {
			// Whole-query fuzzy consumed nothing: the full token sequence
			// is remainder, so all of it is rewrite fodder.
			e.rewritePass(&resp, tokens, make([]bool, len(tokens)), req, addTrace)
		}
		resp.Trace = trace
		resp.Timing.TotalMicros = micros(time.Since(start))
		return resp, nil
	}

	t0 := time.Now()
	seg := e.dict.SegmentTokens(tokens)
	used := make([]bool, len(tokens))
	for _, m := range seg.Matches {
		// A matched span consumes its tokens even when the match itself
		// is dropped for resolving outside the entity table — they are
		// dictionary mentions, not remainder (and not span-fuzzy fodder).
		for i := m.Start; i < m.End; i++ {
			used[i] = true
		}
		sm, ok := e.fromTrieMatch(m, req.TopK)
		if !ok {
			continue
		}
		resp.Matches = append(resp.Matches, sm)
		addTrace("segment", "span %q [%d,%d) -> entity %d %q (score %.3g, %s, %s)",
			sm.Span, sm.Start, sm.End, sm.EntityID, sm.Canonical, sm.Score, sm.Source, sm.Method)
	}
	resp.Timing.SegmentMicros = micros(time.Since(t0))

	if req.Mode == ModeSpan && e.fuzzy != nil {
		t1 := time.Now()
		spans := e.spanPass(tokens, used, req, addTrace)
		resp.Timing.FuzzyMicros = micros(time.Since(t1))
		if len(spans) > 0 {
			resp.Matches = mergeByStart(resp.Matches, spans)
		}
	}

	var rest []string
	for i, tok := range tokens {
		if !used[i] {
			rest = append(rest, tok)
		}
	}
	resp.Remainder = strings.Join(rest, " ")
	if req.Rewrite {
		e.rewritePass(&resp, tokens, used, req, addTrace)
	}
	resp.Trace = trace
	resp.Timing.TotalMicros = micros(time.Since(start))
	return resp, nil
}

// canonical resolves an entity ID against the engine's entity table.
func (e *Engine) canonical(id int) string {
	if id >= 0 && id < len(e.canonicals) {
		return e.canonicals[id]
	}
	return ""
}

// validEntity reports whether a match for this entity may be emitted:
// with an entity table present, out-of-range IDs are dropped (mirroring
// the serving tier's historical behavior).
func (e *Engine) validEntity(id int) bool {
	return e.canonicals == nil || (id >= 0 && id < len(e.canonicals))
}

// fromTrieMatch converts one segmentation match, attaching up to TopK-1
// alternate resolutions of the same span.
func (e *Engine) fromTrieMatch(m Match, topK int) (SpanMatch, bool) {
	if !e.validEntity(m.EntityID) {
		return SpanMatch{}, false
	}
	sm := SpanMatch{
		EntityID:  m.EntityID,
		Canonical: e.canonical(m.EntityID),
		Span:      m.Text,
		Start:     m.Start,
		End:       m.End,
		Score:     m.Score,
		Source:    m.Source,
		Method:    MethodTrie,
		Corrected: m.Corrected,
	}
	if m.Corrected {
		sm.Method = MethodTrieTypo
	}
	// Alternates: the span's other dictionary entries. A corrected span's
	// surface text is not a dictionary string, so it has no direct lookup.
	if topK > 1 && !m.Corrected {
		entries := e.dict.Lookup(m.Text)
		for _, alt := range entries {
			if len(sm.Alternates) >= topK-1 {
				break
			}
			if alt.EntityID == m.EntityID || !e.validEntity(alt.EntityID) {
				continue
			}
			sm.Alternates = append(sm.Alternates, Alternate{
				EntityID:  alt.EntityID,
				Canonical: e.canonical(alt.EntityID),
				Text:      m.Text,
				Score:     alt.Score,
			})
		}
	}
	return sm, true
}

// wholeFuzzy is ModeFuzzy: the whole query against the trigram index.
func (e *Engine) wholeFuzzy(norm string, nTokens int, req Request, addTrace func(string, string, ...any)) []SpanMatch {
	var out []SpanMatch
	for _, h := range e.fuzzy.Lookup(norm, req.TopK) {
		if len(h.Entries) == 0 || !e.validEntity(h.Entries[0].EntityID) {
			continue
		}
		if req.MinSim > 0 && h.Similarity < req.MinSim {
			continue
		}
		best := h.Entries[0]
		out = append(out, SpanMatch{
			EntityID:   best.EntityID,
			Canonical:  e.canonical(best.EntityID),
			Span:       h.Text,
			Start:      0,
			End:        nTokens,
			Score:      best.Score,
			Similarity: h.Similarity,
			Source:     best.Source,
			Method:     MethodFuzzy,
		})
		addTrace("fuzzy", "%q -> entity %d %q (sim %.3f)", h.Text, best.EntityID, e.canonical(best.EntityID), h.Similarity)
	}
	if len(out) == 0 {
		addTrace("fuzzy", "no hit above threshold for %q", norm)
	}
	return out
}

// spanPass resolves leftover token runs through the trigram index: for
// each maximal run of tokens the trie left uncovered, a greedy
// left-to-right sweep tries every window up to MaxSpanTokens wide and
// accepts, per position, the window whose best hit has the highest Dice
// similarity (ties to the wider window). Dice similarity penalizes both
// under- and over-extension — "kingdom of the cristal skull tickets"
// scores best on the 5-token window, leaving "tickets" in the remainder.
func (e *Engine) spanPass(tokens []string, used []bool, req Request, addTrace func(string, string, ...any)) []SpanMatch {
	var out []SpanMatch
	for runStart := 0; runStart < len(tokens); runStart++ {
		if used[runStart] {
			continue
		}
		runEnd := runStart
		for runEnd < len(tokens) && !used[runEnd] {
			runEnd++
		}
		accepted := false
		for i := runStart; i < runEnd; {
			sm, ok := e.bestSpanAt(tokens, i, runEnd, req)
			if !ok {
				i++
				continue
			}
			for j := sm.Start; j < sm.End; j++ {
				used[j] = true
			}
			out = append(out, sm)
			accepted = true
			addTrace("span-fuzzy", "span %q [%d,%d) -> %q -> entity %d %q (sim %.3f)",
				joinTokens(tokens[sm.Start:sm.End]), sm.Start, sm.End, sm.Span, sm.EntityID, sm.Canonical, sm.Similarity)
			i = sm.End
		}
		if !accepted {
			addTrace("span-fuzzy", "run %q [%d,%d): no candidate above threshold",
				joinTokens(tokens[runStart:runEnd]), runStart, runEnd)
		}
		runStart = runEnd - 1
	}
	return out
}

// bestSpanAt evaluates every window starting at token i (bounded by
// runEnd and MaxSpanTokens) and returns the span match with the highest
// hit similarity. Two guards keep trigram noise out:
//
//   - Single-token windows shorter than minSingleSpanLen characters are
//     skipped — the trie's edit-distance correction already covers
//     short-token typos.
//   - A window must contain at least one token outside the dictionary
//     vocabulary. Span-fuzzy exists to bridge vocabulary gaps
//     (misspellings, concatenations); a window of purely known tokens
//     already had its chance at the trie, and any trigram hit on it is a
//     containment artifact ("showtimes" matching "wall e showtimes").
func (e *Engine) bestSpanAt(tokens []string, i, runEnd int, req Request) (SpanMatch, bool) {
	maxL := min(req.MaxSpanTokens, runEnd-i)
	var best SpanMatch
	found := false
	for l := maxL; l >= 1; l-- {
		if l == 1 && len(tokens[i]) < minSingleSpanLen {
			continue
		}
		oov := false
		for _, tok := range tokens[i : i+l] {
			if !e.dict.HasToken(tok) {
				oov = true
				break
			}
		}
		if !oov {
			continue
		}
		minSim := req.MinSim
		if l == 1 && minSim < singleSpanMinSim {
			minSim = singleSpanMinSim
		}
		text := joinTokens(tokens[i : i+l])
		hits := e.fuzzy.Lookup(text, req.TopK)
		sm, ok := e.resolveSpanHits(hits, i, i+l, minSim, req.TopK)
		if !ok {
			continue
		}
		if !found || sm.Similarity > best.Similarity {
			best, found = sm, true
		}
	}
	return best, found
}

// resolveSpanHits turns a span's fuzzy hits into a match: the first hit
// with a usable entity wins, later hits on distinct entities become
// alternates (up to topK-1 of them).
func (e *Engine) resolveSpanHits(hits []FuzzyHit, start, end int, minSim float64, topK int) (SpanMatch, bool) {
	var sm SpanMatch
	found := false
	seen := map[int]bool{}
	for _, h := range hits {
		if len(h.Entries) == 0 || !e.validEntity(h.Entries[0].EntityID) {
			continue
		}
		if minSim > 0 && h.Similarity < minSim {
			break // hits are sorted best-first
		}
		best := h.Entries[0]
		if !found {
			sm = SpanMatch{
				EntityID:   best.EntityID,
				Canonical:  e.canonical(best.EntityID),
				Span:       h.Text,
				Start:      start,
				End:        end,
				Score:      best.Score,
				Similarity: h.Similarity,
				Source:     best.Source,
				Method:     MethodSpanFuzzy,
			}
			seen[best.EntityID] = true
			found = true
			continue
		}
		if len(sm.Alternates) >= topK-1 || seen[best.EntityID] {
			continue
		}
		seen[best.EntityID] = true
		sm.Alternates = append(sm.Alternates, Alternate{
			EntityID:   best.EntityID,
			Canonical:  e.canonical(best.EntityID),
			Text:       h.Text,
			Score:      best.Score,
			Similarity: h.Similarity,
		})
	}
	return sm, found
}

// mergeByStart interleaves two Start-ordered match lists into one.
func mergeByStart(a, b []SpanMatch) []SpanMatch {
	out := make([]SpanMatch, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Start <= b[j].Start {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
