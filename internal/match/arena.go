package match

import (
	"errors"
	"fmt"
	"time"
	"unicode"
	"unicode/utf8"
	"unsafe"
)

// Arena match path.
//
// Engine.Match allocates its response — tokens, span strings, match and
// alternate lists — on every call, which is fine for ad-hoc callers but
// dominates the serving tier's steady-state cost (BENCH_baseline.json:
// ~174 allocs for an exact match). This file implements the same
// matching semantics over a reusable per-request Scratch arena: the
// normalized query is built once into a byte buffer, every token, span
// and remainder string is an unsafe view into that buffer (or a stable
// dictionary string), and all intermediate and result slices are
// reslices of scratch-owned arrays. A steady-state exact match performs
// zero heap allocations.
//
// The arena path is a parallel implementation, not a rewrite:
// Engine.Match keeps the original allocating code, and the differential
// suite (arena_test.go) pins the two byte-identical across every domain
// snapshot. The serving tier pools Scratch per generation and routes
// through MatchScratch.

// Scratch is the reusable per-request arena behind Engine.MatchScratch.
// A Scratch may be reused across requests but never concurrently; the
// serving tier pools them per generation. The zero value is not usable —
// call NewScratch.
type Scratch struct {
	norm   []byte  // normalized query bytes: tokens joined by single spaces
	qnorm  string  // unsafe view of norm
	tokOff []int32 // token i spans norm[tokOff[2i]:tokOff[2i+1]]
	tokens []string
	used   []bool

	matches  []SpanMatch
	altRange [][2]int32 // per-match [start,end) into alts, fixed up at the end
	alts     []Alternate
	merged   []SpanMatch
	trace    []TraceStep
	rest     []byte // remainder bytes

	// Fuzzy-lookup scratch.
	qg      []queryGram
	cands   []scoredHit
	heap    []scoredHit
	hits    []arenaHit
	seen    []int   // entity IDs already emitted for one span
	entries []Entry // sorted entry copies for alternate listing

	resp Response
}

// NewScratch returns a ready-to-use arena sized for typical queries; all
// buffers grow on demand and keep their capacity across requests.
func NewScratch() *Scratch {
	return &Scratch{
		norm:   make([]byte, 0, 128),
		tokOff: make([]int32, 0, 32),
		tokens: make([]string, 0, 16),
		used:   make([]bool, 0, 16),
	}
}

// unsafeString views a byte slice as a string without copying. The bytes
// must not be mutated while the string is reachable — Scratch guarantees
// that by only rewriting its buffers on the next request.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Tokenize fills the arena with query's normalized form: the exact
// token sequence of textnorm.Tokenize(query), materialized once as a
// single space-joined byte buffer with per-token views. It returns the
// token views; they (and every string a subsequent MatchPrepared
// response carries) are valid until the scratch is reused.
//
//websyn:hotpath
func (sc *Scratch) Tokenize(query string) []string {
	sc.norm = sc.norm[:0]
	sc.tokOff = sc.tokOff[:0]
	inTok := false
	for _, r := range query {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if !inTok {
				if len(sc.tokOff) > 0 {
					sc.norm = append(sc.norm, ' ')
				}
				sc.tokOff = append(sc.tokOff, int32(len(sc.norm)))
				inTok = true
			}
			sc.norm = utf8.AppendRune(sc.norm, unicode.ToLower(r))
		} else if inTok {
			sc.tokOff = append(sc.tokOff, int32(len(sc.norm)))
			inTok = false
		}
	}
	if inTok {
		sc.tokOff = append(sc.tokOff, int32(len(sc.norm)))
	}
	// Token views are built only after norm stops growing: append may
	// reallocate the buffer, which would strand earlier views.
	sc.qnorm = unsafeString(sc.norm)
	sc.tokens = sc.tokens[:0]
	for i := 0; i+1 < len(sc.tokOff); i += 2 {
		sc.tokens = append(sc.tokens, sc.qnorm[sc.tokOff[i]:sc.tokOff[i+1]])
	}
	return sc.tokens
}

// Norm returns the normalized query built by the last Tokenize — the
// space-joined token sequence, aliasing arena bytes.
func (sc *Scratch) Norm() string { return sc.qnorm }

// span returns the query surface of tokens [i, j) — a substring of the
// normalized query, since tokens are space-joined in the arena.
//
//websyn:hotpath
func (sc *Scratch) span(i, j int) string {
	return sc.qnorm[sc.tokOff[2*i]:sc.tokOff[2*(j-1)+1]]
}

// MatchScratch answers one request through the arena: identical
// semantics and results to Match, but the response and everything it
// references live in sc. The returned response is valid until the next
// call using the same scratch; callers that retain it must copy it out
// first (CloneResponse).
//
//websyn:hotpath
func (e *Engine) MatchScratch(req Request, sc *Scratch) (*Response, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	sc.Tokenize(req.Query)
	return e.MatchPrepared(req, sc)
}

// MatchPrepared is MatchScratch for callers that already tokenized the
// query into sc — e.g. a serving tier that called sc.Tokenize(req.Query)
// to build its cache key. sc must hold exactly req.Query's tokenization.
//
//websyn:hotpath
func (e *Engine) MatchPrepared(req Request, sc *Scratch) (*Response, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Mode == ModeFuzzy && e.fuzzy == nil {
		return nil, errors.New("match: fuzzy mode unavailable: engine has no trigram index")
	}
	start := time.Now()
	resp := &sc.resp
	*resp = Response{}
	sc.matches = sc.matches[:0]
	sc.altRange = sc.altRange[:0]
	sc.alts = sc.alts[:0]
	sc.trace = sc.trace[:0]
	if len(sc.tokens) == 0 {
		resp.Timing.TotalMicros = micros(time.Since(start))
		return resp, nil
	}

	resp.Query = sc.qnorm
	c := matchCtx{e: e, req: req, sc: sc}
	c.af, _ = e.fuzzy.(arenaFuzzy)

	if req.Mode == ModeFuzzy {
		t0 := time.Now()
		c.wholeFuzzy()
		resp.Timing.FuzzyMicros = micros(time.Since(t0))
		c.fixAlternates()
		if len(sc.matches) > 0 {
			resp.Matches = sc.matches
		} else {
			resp.Remainder = resp.Query
		}
		if req.Rewrite && len(sc.matches) == 0 {
			// Same rule as the reference path: a missed whole-query fuzzy
			// leaves every token as rewrite fodder.
			sc.used = sc.used[:0]
			for range sc.tokens {
				sc.used = append(sc.used, false)
			}
			c.rewritePass(resp)
		}
		resp.Trace = c.doneTrace()
		resp.Timing.TotalMicros = micros(time.Since(start))
		return resp, nil
	}

	sc.used = sc.used[:0]
	for range sc.tokens {
		sc.used = append(sc.used, false)
	}
	t0 := time.Now()
	c.segment()
	resp.Timing.SegmentMicros = micros(time.Since(t0))
	nTrie := len(sc.matches)

	if req.Mode == ModeSpan && e.fuzzy != nil {
		t1 := time.Now()
		c.spanPass()
		resp.Timing.FuzzyMicros = micros(time.Since(t1))
	}
	c.fixAlternates()
	switch {
	case len(sc.matches) == 0:
		resp.Matches = nil
	case len(sc.matches) == nTrie:
		resp.Matches = sc.matches
	default:
		resp.Matches = mergeInto(&sc.merged, sc.matches[:nTrie], sc.matches[nTrie:])
	}

	sc.rest = sc.rest[:0]
	for i, tok := range sc.tokens {
		if !sc.used[i] {
			if len(sc.rest) > 0 {
				sc.rest = append(sc.rest, ' ')
			}
			sc.rest = append(sc.rest, tok...)
		}
	}
	resp.Remainder = unsafeString(sc.rest)
	if req.Rewrite {
		c.rewritePass(resp)
	}
	resp.Trace = c.doneTrace()
	resp.Timing.TotalMicros = micros(time.Since(start))
	return resp, nil
}

// CloneResponse deep-copies an arena-backed response into independent
// heap memory: result slices are copied, and every string that may alias
// scratch bytes — Query, Remainder, Span, Alternate.Text — is cloned.
// (Canonical, Source, Method, and Trace details are stable heap strings
// by construction and are shared.) The serving tier uses this to detach
// a response before caching it or returning it across the arena's
// lifetime.
func CloneResponse(r *Response) Response {
	out := *r
	out.Query = cloneString(r.Query)
	out.Remainder = cloneString(r.Remainder)
	out.Residual = cloneString(r.Residual)
	if r.Attributes != nil {
		out.Attributes = append([]Predicate(nil), r.Attributes...)
		for i := range out.Attributes {
			out.Attributes[i].Span = cloneString(out.Attributes[i].Span)
		}
	}
	if r.Matches != nil {
		out.Matches = append([]SpanMatch(nil), r.Matches...)
		for i := range out.Matches {
			m := &out.Matches[i]
			m.Span = cloneString(m.Span)
			if m.Alternates != nil {
				m.Alternates = append([]Alternate(nil), m.Alternates...)
				for j := range m.Alternates {
					m.Alternates[j].Text = cloneString(m.Alternates[j].Text)
				}
			}
		}
	}
	if r.Trace != nil {
		out.Trace = append([]TraceStep(nil), r.Trace...)
	}
	return out
}

func cloneString(s string) string {
	if s == "" {
		return ""
	}
	b := make([]byte, len(s))
	copy(b, s)
	return string(b)
}

// matchCtx threads one arena request through the pass methods without
// closure allocations.
type matchCtx struct {
	e   *Engine
	req Request
	sc  *Scratch
	af  arenaFuzzy // nil when e.fuzzy has no arena path (or is nil)
}

// trace appends an explain step. Callers must guard with c.req.Explain
// so the variadic slice is never materialized on the non-explain path.
func (c *matchCtx) trace(stage, format string, args ...any) {
	c.sc.trace = append(c.sc.trace, TraceStep{Stage: stage, Detail: fmt.Sprintf(format, args...)})
}

// doneTrace returns the accumulated trace, nil when empty — matching the
// reference path, which never materializes an empty trace slice.
func (c *matchCtx) doneTrace() []TraceStep {
	if len(c.sc.trace) == 0 {
		return nil
	}
	return c.sc.trace
}

// fuzzyLookup consults the trigram index through its arena path when
// available, falling back to the allocating FuzzyLookup interface for
// custom indexes. norm must be normalized text (arena spans are).
//
//websyn:hotpath
func (c *matchCtx) fuzzyLookup(norm string, limit int) []arenaHit {
	if c.af != nil {
		return c.af.lookupArena(c.sc, norm, limit)
	}
	hits := c.e.fuzzy.Lookup(norm, limit)
	out := c.sc.hits[:0]
	for _, h := range hits {
		ah := arenaHit{text: h.Text, sim: h.Similarity}
		if len(h.Entries) > 0 {
			ah.best, ah.ok = h.Entries[0], true
		}
		out = append(out, ah)
	}
	c.sc.hits = out
	return out
}

// segment is the arena twin of Dictionary.SegmentTokens fused with
// Engine.fromTrieMatch: one greedy left-to-right pass, marking consumed
// tokens and emitting matches with their alternate ranges.
//
//websyn:hotpath
func (c *matchCtx) segment() {
	sc := c.sc
	for start := 0; start < len(sc.tokens); start++ {
		node, bestEnd, corrected := c.longestFrom(start)
		if bestEnd < 0 {
			continue
		}
		for i := start; i < bestEnd; i++ {
			sc.used[i] = true
		}
		spanStart := start
		start = bestEnd - 1
		best := bestEntryOf(node.entries)
		// A matched span consumes its tokens even when the match itself is
		// dropped for resolving outside the entity table (see Engine.match).
		if !c.e.validEntity(best.EntityID) {
			continue
		}
		sm := SpanMatch{
			EntityID:  best.EntityID,
			Canonical: c.e.canonical(best.EntityID),
			Span:      sc.span(spanStart, bestEnd),
			Start:     spanStart,
			End:       bestEnd,
			Score:     best.Score,
			Source:    best.Source,
			Method:    MethodTrie,
			Corrected: corrected,
		}
		if corrected {
			sm.Method = MethodTrieTypo
		}
		altStart := int32(len(sc.alts))
		// Alternates: the span's other dictionary entries, best first. A
		// corrected span's surface text is not a dictionary string, so it
		// has no direct lookup (same rule as fromTrieMatch).
		if c.req.TopK > 1 && !corrected {
			for _, alt := range sortedEntries(sc, node.entries) {
				if int(int32(len(sc.alts))-altStart) >= c.req.TopK-1 {
					break
				}
				if alt.EntityID == best.EntityID || !c.e.validEntity(alt.EntityID) {
					continue
				}
				sc.alts = append(sc.alts, Alternate{
					EntityID:  alt.EntityID,
					Canonical: c.e.canonical(alt.EntityID),
					Text:      sm.Span,
					Score:     alt.Score,
				})
			}
		}
		sc.matches = append(sc.matches, sm)
		sc.altRange = append(sc.altRange, [2]int32{altStart, int32(len(sc.alts))})
		if c.req.Explain {
			//websyn:ignore hotpathalloc trace is Explain-gated diagnostics, off the steady-state path
			c.trace("segment", "span %q [%d,%d) -> entity %d %q (score %.3g, %s, %s)",
				sm.Span, sm.Start, sm.End, sm.EntityID, sm.Canonical, sm.Score, sm.Source, sm.Method)
		}
	}
}

// longestFrom walks the trie from tokens[start] with typo correction,
// returning the node of the longest span ending with entries.
//
//websyn:hotpath
func (c *matchCtx) longestFrom(start int) (best *trieNode, bestEnd int, bestCorrected bool) {
	d := c.e.dict
	node := d.root
	bestEnd = -1
	corrected := false
	for i := start; i < len(c.sc.tokens); i++ {
		tok := c.sc.tokens[i]
		next := node.children[tok]
		if next == nil {
			if fixed := d.correctArena(tok); fixed != "" {
				next = node.children[fixed]
				if next != nil {
					corrected = true
				}
			}
		}
		if next == nil {
			break
		}
		node = next
		if len(node.entries) > 0 {
			best, bestEnd, bestCorrected = node, i+1, corrected
		}
	}
	return best, bestEnd, bestCorrected
}

// bestEntryOf returns the winning entry: highest score, ties to the
// lowest entity ID — the order Dictionary.Lookup sorts by.
//
//websyn:hotpath
func bestEntryOf(entries []Entry) Entry {
	best := entries[0]
	for _, e := range entries[1:] {
		if e.Score > best.Score || (e.Score == best.Score && e.EntityID < best.EntityID) {
			best = e
		}
	}
	return best
}

// sortedEntries copies a node's entries into the scratch and sorts them
// like Dictionary.Lookup (score desc, entity ID asc) without touching
// the shared trie node. Entry lists are tiny; insertion sort suffices.
//
//websyn:hotpath
func sortedEntries(sc *Scratch, entries []Entry) []Entry {
	out := sc.entries[:0]
	out = append(out, entries...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && entryLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	sc.entries = out
	return out
}

// entryLess orders entries score-descending, entity-ID-ascending.
//
//websyn:hotpath
func entryLess(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.EntityID < b.EntityID
}

// wholeFuzzy is the arena twin of Engine.wholeFuzzy (ModeFuzzy).
//
//websyn:hotpath
func (c *matchCtx) wholeFuzzy() {
	sc := c.sc
	nTokens := len(sc.tokens)
	emitted := false
	for _, h := range c.fuzzyLookup(sc.qnorm, c.req.TopK) {
		if !h.ok || !c.e.validEntity(h.best.EntityID) {
			continue
		}
		if c.req.MinSim > 0 && h.sim < c.req.MinSim {
			continue
		}
		sc.matches = append(sc.matches, SpanMatch{
			EntityID:   h.best.EntityID,
			Canonical:  c.e.canonical(h.best.EntityID),
			Span:       h.text,
			Start:      0,
			End:        nTokens,
			Score:      h.best.Score,
			Similarity: h.sim,
			Source:     h.best.Source,
			Method:     MethodFuzzy,
		})
		sc.altRange = append(sc.altRange, [2]int32{})
		emitted = true
		if c.req.Explain {
			//websyn:ignore hotpathalloc trace is Explain-gated diagnostics, off the steady-state path
			c.trace("fuzzy", "%q -> entity %d %q (sim %.3f)", h.text, h.best.EntityID, c.e.canonical(h.best.EntityID), h.sim)
		}
	}
	if !emitted && c.req.Explain {
		//websyn:ignore hotpathalloc trace is Explain-gated diagnostics, off the steady-state path
		c.trace("fuzzy", "no hit above threshold for %q", sc.qnorm)
	}
}

// spanPass is the arena twin of Engine.spanPass: resolve leftover token
// runs through the trigram index with the greedy window sweep.
//
//websyn:hotpath
func (c *matchCtx) spanPass() {
	sc := c.sc
	tokens := sc.tokens
	for runStart := 0; runStart < len(tokens); runStart++ {
		if sc.used[runStart] {
			continue
		}
		runEnd := runStart
		for runEnd < len(tokens) && !sc.used[runEnd] {
			runEnd++
		}
		accepted := false
		for i := runStart; i < runEnd; {
			sm, altR, ok := c.bestSpanAt(i, runEnd)
			if !ok {
				i++
				continue
			}
			for j := sm.Start; j < sm.End; j++ {
				sc.used[j] = true
			}
			sc.matches = append(sc.matches, sm)
			sc.altRange = append(sc.altRange, altR)
			accepted = true
			if c.req.Explain {
				//websyn:ignore hotpathalloc trace is Explain-gated diagnostics, off the steady-state path
				c.trace("span-fuzzy", "span %q [%d,%d) -> %q -> entity %d %q (sim %.3f)",
					sc.span(sm.Start, sm.End), sm.Start, sm.End, sm.Span, sm.EntityID, sm.Canonical, sm.Similarity)
			}
			i = sm.End
		}
		if !accepted && c.req.Explain {
			//websyn:ignore hotpathalloc trace is Explain-gated diagnostics, off the steady-state path
			c.trace("span-fuzzy", "run %q [%d,%d): no candidate above threshold",
				sc.span(runStart, runEnd), runStart, runEnd)
		}
		runStart = runEnd - 1
	}
}

// bestSpanAt is the arena twin of Engine.bestSpanAt: evaluate every
// window starting at token i and keep the highest-similarity match
// (ties to the wider window). Each losing window's alternates are
// truncated back off the arena; the winner's range rides along.
//
//websyn:hotpath
func (c *matchCtx) bestSpanAt(i, runEnd int) (SpanMatch, [2]int32, bool) {
	sc := c.sc
	maxL := min(c.req.MaxSpanTokens, runEnd-i)
	var best SpanMatch
	var bestR [2]int32
	found := false
	for l := maxL; l >= 1; l-- {
		if l == 1 && len(sc.tokens[i]) < minSingleSpanLen {
			continue
		}
		oov := false
		for _, tok := range sc.tokens[i : i+l] {
			if !c.e.dict.HasToken(tok) {
				oov = true
				break
			}
		}
		if !oov {
			continue
		}
		minSim := c.req.MinSim
		if l == 1 && minSim < singleSpanMinSim {
			minSim = singleSpanMinSim
		}
		mark := int32(len(sc.alts))
		hits := c.fuzzyLookup(sc.span(i, i+l), c.req.TopK)
		sm, ok := c.resolveSpanHits(hits, i, i+l, minSim)
		if !ok {
			continue
		}
		if !found || sm.Similarity > best.Similarity {
			best, bestR, found = sm, [2]int32{mark, int32(len(sc.alts))}, true
		} else {
			// Losing window: drop its alternates off the arena tail. (A
			// superseded previous winner's entries stay as dead space; only
			// referenced ranges matter.)
			sc.alts = sc.alts[:mark]
		}
	}
	return best, bestR, found
}

// resolveSpanHits is the arena twin of Engine.resolveSpanHits: first
// usable hit wins, later hits on distinct entities become alternates
// (appended to the arena; the caller tracks the range).
//
//websyn:hotpath
func (c *matchCtx) resolveSpanHits(hits []arenaHit, start, end int, minSim float64) (SpanMatch, bool) {
	sc := c.sc
	var sm SpanMatch
	found := false
	nAlts := 0
	sc.seen = sc.seen[:0]
	for _, h := range hits {
		if !h.ok || !c.e.validEntity(h.best.EntityID) {
			continue
		}
		if minSim > 0 && h.sim < minSim {
			break // hits are sorted best-first
		}
		if !found {
			sm = SpanMatch{
				EntityID:   h.best.EntityID,
				Canonical:  c.e.canonical(h.best.EntityID),
				Span:       h.text,
				Start:      start,
				End:        end,
				Score:      h.best.Score,
				Similarity: h.sim,
				Source:     h.best.Source,
				Method:     MethodSpanFuzzy,
			}
			sc.seen = append(sc.seen, h.best.EntityID)
			found = true
			continue
		}
		if nAlts >= c.req.TopK-1 || seenEntity(sc.seen, h.best.EntityID) {
			continue
		}
		sc.seen = append(sc.seen, h.best.EntityID)
		sc.alts = append(sc.alts, Alternate{
			EntityID:   h.best.EntityID,
			Canonical:  c.e.canonical(h.best.EntityID),
			Text:       h.text,
			Score:      h.best.Score,
			Similarity: h.sim,
		})
		nAlts++
	}
	return sm, found
}

// seenEntity is the arena replacement for resolveSpanHits' seen map: the
// per-span entity list is bounded by TopK, so a linear scan wins.
//
//websyn:hotpath
func seenEntity(seen []int, id int) bool {
	for _, s := range seen {
		if s == id {
			return true
		}
	}
	return false
}

// fixAlternates attaches each match's alternate range as a view into the
// arena. Deferred until all appends are done: growing sc.alts may move
// its backing array, which would strand earlier views.
//
//websyn:hotpath
func (c *matchCtx) fixAlternates() {
	sc := c.sc
	for i := range sc.matches {
		if r := sc.altRange[i]; r[1] > r[0] {
			sc.matches[i].Alternates = sc.alts[r[0]:r[1]:r[1]]
		}
	}
}

// mergeInto interleaves two Start-ordered match lists into *dst.
//
//websyn:hotpath
func mergeInto(dst *[]SpanMatch, a, b []SpanMatch) []SpanMatch {
	out := (*dst)[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Start <= b[j].Start {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	*dst = out
	return out
}

// correctArena is Dictionary.correct without the edit-distance DP
// allocations: the k=1 band degenerates to a two-pointer scan.
//
//websyn:hotpath
func (d *Dictionary) correctArena(tok string) string {
	if len(tok) < 4 || d.vocab[tok] {
		return ""
	}
	best := ""
	for v := range d.vocab {
		if len(v) < 3 {
			continue
		}
		dl := len(v) - len(tok)
		if dl > 1 || dl < -1 {
			continue
		}
		if editWithin1(tok, v) {
			if best != "" && best != v {
				return "" // ambiguous correction: refuse to guess
			}
			best = v
		}
	}
	return best
}

// editWithin1 reports whether the rune-level Levenshtein distance of a
// and b is at most 1, without allocating: any single-edit alignment must
// spend its edit at the first rune mismatch, after which the remaining
// suffixes must be byte-equal.
//
//websyn:hotpath
func editWithin1(a, b string) bool {
	if a == b {
		return true
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ra, sa := utf8.DecodeRuneInString(a[i:])
		rb, sb := utf8.DecodeRuneInString(b[j:])
		if ra == rb {
			i += sa
			j += sb
			continue
		}
		if a[i+sa:] == b[j+sb:] { // substitution
			return true
		}
		if a[i+sa:] == b[j:] { // deletion from a
			return true
		}
		return a[i:] == b[j+sb:] // deletion from b
	}
	rest := a[i:]
	if j < len(b) {
		rest = b[j:]
	}
	if rest == "" {
		return true
	}
	_, size := utf8.DecodeRuneInString(rest)
	return len(rest) == size
}
