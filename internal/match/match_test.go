package match

import (
	"testing"
	"testing/quick"
)

// demoDict compiles a small dictionary mirroring the paper's examples.
func demoDict() *Dictionary {
	d := NewDictionary()
	d.Add("Indiana Jones and the Kingdom of the Crystal Skull", Entry{EntityID: 1, Score: 1.0, Source: "canonical"})
	d.Add("indy 4", Entry{EntityID: 1, Score: 0.9, Source: "mined"})
	d.Add("indiana jones 4", Entry{EntityID: 1, Score: 0.95, Source: "mined"})
	d.Add("Canon EOS 350D", Entry{EntityID: 2, Score: 1.0, Source: "canonical"})
	d.Add("digital rebel xt", Entry{EntityID: 2, Score: 0.85, Source: "mined"})
	d.Add("350d", Entry{EntityID: 2, Score: 0.8, Source: "mined"})
	d.Add("twilight", Entry{EntityID: 3, Score: 1.0, Source: "canonical"})
	d.Add("madagascar 2", Entry{EntityID: 4, Score: 0.9, Source: "mined"})
	d.Add("madagascar escape 2 africa", Entry{EntityID: 4, Score: 1.0, Source: "canonical"})
	return d
}

func TestAddAndLen(t *testing.T) {
	d := demoDict()
	if d.Len() != 9 {
		t.Fatalf("Len = %d", d.Len())
	}
	// Duplicate (string, entity) keeps the max score, no size change.
	d.Add("indy 4", Entry{EntityID: 1, Score: 0.5, Source: "dup"})
	if d.Len() != 9 {
		t.Fatalf("duplicate changed size to %d", d.Len())
	}
	if got := d.Lookup("indy 4")[0].Score; got != 0.9 {
		t.Fatalf("duplicate lowered score to %v", got)
	}
	d.Add("indy 4", Entry{EntityID: 1, Score: 0.99, Source: "better"})
	if got := d.Lookup("indy 4")[0].Score; got != 0.99 {
		t.Fatalf("higher score not kept: %v", got)
	}
}

func TestAddEmptyIgnored(t *testing.T) {
	d := NewDictionary()
	d.Add("", Entry{EntityID: 1})
	d.Add("!!!", Entry{EntityID: 1})
	if d.Len() != 0 {
		t.Fatal("empty strings were added")
	}
}

func TestLookupExact(t *testing.T) {
	d := demoDict()
	es := d.Lookup("digital rebel xt")
	if len(es) != 1 || es[0].EntityID != 2 {
		t.Fatalf("Lookup = %v", es)
	}
	if d.Lookup("digital rebel") != nil {
		t.Fatal("prefix should not resolve")
	}
	if d.Lookup("unknown") != nil {
		t.Fatal("unknown string resolved")
	}
	// Lookup normalizes its input.
	if d.Lookup("Digital REBEL XT!") == nil {
		t.Fatal("normalization missing in Lookup")
	}
}

func TestLookupAmbiguousOrdering(t *testing.T) {
	d := demoDict()
	d.Add("shared name", Entry{EntityID: 7, Score: 0.3})
	d.Add("shared name", Entry{EntityID: 8, Score: 0.7})
	es := d.Lookup("shared name")
	if len(es) != 2 || es[0].EntityID != 8 {
		t.Fatalf("ambiguous ordering = %v", es)
	}
}

func TestSegmentPaperExample(t *testing.T) {
	d := demoDict()
	seg := d.Segment("Indy 4 near San Fran")
	if len(seg.Matches) != 1 {
		t.Fatalf("matches = %v", seg.Matches)
	}
	m := seg.Matches[0]
	if m.EntityID != 1 || m.Text != "indy 4" {
		t.Fatalf("match = %+v", m)
	}
	if seg.Remainder != "near san fran" {
		t.Fatalf("remainder = %q", seg.Remainder)
	}
}

func TestSegmentPrefersLongestSpan(t *testing.T) {
	d := demoDict()
	// "madagascar escape 2 africa" must match the full canonical, not stop
	// at the shorter "madagascar 2"... the spans differ token-wise:
	// "madagascar 2" is not a prefix of "madagascar escape 2 africa", so
	// longest-from-position applies cleanly.
	seg := d.Segment("madagascar escape 2 africa dvd")
	if len(seg.Matches) != 1 || seg.Matches[0].Text != "madagascar escape 2 africa" {
		t.Fatalf("matches = %+v", seg.Matches)
	}
	if seg.Remainder != "dvd" {
		t.Fatalf("remainder = %q", seg.Remainder)
	}
}

func TestSegmentMultipleEntities(t *testing.T) {
	d := demoDict()
	seg := d.Segment("twilight vs indy 4")
	if len(seg.Matches) != 2 {
		t.Fatalf("matches = %+v", seg.Matches)
	}
	if seg.Matches[0].EntityID != 3 || seg.Matches[1].EntityID != 1 {
		t.Fatalf("matches = %+v", seg.Matches)
	}
	if seg.Remainder != "vs" {
		t.Fatalf("remainder = %q", seg.Remainder)
	}
}

func TestSegmentNoMatch(t *testing.T) {
	d := demoDict()
	seg := d.Segment("weather in seattle")
	if len(seg.Matches) != 0 {
		t.Fatalf("matches = %+v", seg.Matches)
	}
	if seg.Remainder != "weather in seattle" {
		t.Fatalf("remainder = %q", seg.Remainder)
	}
	if seg.Best() != nil {
		t.Fatal("Best on empty segmentation should be nil")
	}
}

func TestTypoCorrection(t *testing.T) {
	d := demoDict()
	seg := d.Segment("twilght showtimes")
	if len(seg.Matches) != 1 || seg.Matches[0].EntityID != 3 {
		t.Fatalf("typo not corrected: %+v", seg.Matches)
	}
	if !seg.Matches[0].Corrected {
		t.Fatal("Corrected flag not set")
	}
	// Exact tokens must not be flagged corrected.
	seg = d.Segment("twilight")
	if seg.Matches[0].Corrected {
		t.Fatal("exact match flagged as corrected")
	}
}

func TestShortTokensNotCorrected(t *testing.T) {
	d := demoDict()
	// "35d" is a 3-char token: must not fuzzy-match "350d".
	if seg := d.Segment("35d lens"); len(seg.Matches) != 0 {
		t.Fatalf("short token corrected: %+v", seg.Matches)
	}
}

func TestMatchQuery(t *testing.T) {
	d := demoDict()
	m, ok := d.MatchQuery("buy digital rebel xt online")
	if !ok || m.EntityID != 2 {
		t.Fatalf("MatchQuery = %+v, %v", m, ok)
	}
	if _, ok := d.MatchQuery("nothing relevant"); ok {
		t.Fatal("irrelevant query matched")
	}
}

func TestCandidatesOrdering(t *testing.T) {
	d := demoDict()
	cs := d.Candidates("indy 4 twilight")
	if len(cs) != 2 {
		t.Fatalf("candidates = %+v", cs)
	}
	if cs[0].Score < cs[1].Score {
		t.Fatal("candidates not sorted by score")
	}
}

func TestHasToken(t *testing.T) {
	d := demoDict()
	if !d.HasToken("rebel") || d.HasToken("zebra") {
		t.Fatal("HasToken wrong")
	}
}

func TestCorrectAmbiguityRefusal(t *testing.T) {
	d := NewDictionary()
	d.Add("mango smoothie", Entry{EntityID: 1, Score: 1})
	d.Add("manga smoothie", Entry{EntityID: 2, Score: 1})
	// "mangu" is distance 1 from both "mango" and "manga": must refuse.
	if got := d.correct("mangu"); got != "" {
		t.Fatalf("ambiguous correction returned %q", got)
	}
}

// Property: segmentation never loses or duplicates tokens — matched spans
// plus remainder partition the query.
func TestQuickSegmentationPartitions(t *testing.T) {
	d := demoDict()
	f := func(q string) bool {
		seg := d.Segment(q)
		covered := 0
		for _, m := range seg.Matches {
			if m.Start < 0 || m.End > len(seg.Tokens) || m.Start >= m.End {
				return false
			}
			covered += m.End - m.Start
		}
		remTokens := 0
		if seg.Remainder != "" {
			remTokens = len(splitSpaces(seg.Remainder))
		}
		return covered+remTokens == len(seg.Tokens)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func splitSpaces(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}

// Property: matches never overlap.
func TestQuickMatchesDisjoint(t *testing.T) {
	d := demoDict()
	f := func(q string) bool {
		seg := d.Segment(q)
		for i := 1; i < len(seg.Matches); i++ {
			if seg.Matches[i].Start < seg.Matches[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSegment(b *testing.B) {
	d := demoDict()
	for i := 0; i < b.N; i++ {
		_ = d.Segment("showtimes for indy 4 near san francisco bay area")
	}
}
