package match

import (
	"fmt"
	"strings"
	"testing"
)

// engineDict mirrors demoDict plus strings that exercise the span-fuzzy
// path (multi-token mined synonyms reachable only through trigrams).
func engineDict() *Dictionary {
	d := demoDict()
	d.Add("kingdom of the crystal skull", Entry{EntityID: 1, Score: 0.7, Source: "mined"})
	d.Add("quantum of solace", Entry{EntityID: 5, Score: 1.0, Source: "canonical"})
	return d
}

// engineCanonicals is an entity table covering engineDict's IDs 0..5.
func engineCanonicals() []string {
	return []string{
		"",
		"Indiana Jones and the Kingdom of the Crystal Skull",
		"Canon EOS 350D",
		"Twilight",
		"Madagascar: Escape 2 Africa",
		"Quantum of Solace",
	}
}

func testEngine() *Engine {
	d := engineDict()
	return NewEngine(d, d.NewFuzzyIndex(0.55), engineCanonicals(), 0.55)
}

func TestEngineSegmentModeMatchesDictionary(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "Indy 4 near San Fran", Mode: ModeSegment})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Query != "indy 4 near san fran" {
		t.Fatalf("Query = %q", resp.Query)
	}
	if len(resp.Matches) != 1 {
		t.Fatalf("matches = %+v", resp.Matches)
	}
	m := resp.Matches[0]
	if m.EntityID != 1 || m.Span != "indy 4" || m.Method != MethodTrie ||
		m.Canonical != "Indiana Jones and the Kingdom of the Crystal Skull" {
		t.Fatalf("match = %+v", m)
	}
	if resp.Remainder != "near san fran" {
		t.Fatalf("remainder = %q", resp.Remainder)
	}
}

func TestEngineTypoCorrectionMethod(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "twilght showtimes", Mode: ModeSegment})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].Method != MethodTrieTypo || !resp.Matches[0].Corrected {
		t.Fatalf("matches = %+v", resp.Matches)
	}
}

// TestEngineSpanFuzzy is the tentpole capability: a multi-token span the
// trie cannot reach (typo beyond edit distance 1 in the middle of a
// mined synonym) resolves through the trigram index, and the rest of the
// query survives as remainder.
func TestEngineSpanFuzzy(t *testing.T) {
	e := testEngine()
	// "kristol" -> "crystal" is 3 edits: per-token correction (distance 1)
	// cannot bridge it, so the trie never reaches the mined synonym.
	resp, err := e.Match(Request{Query: "kingdom of the kristol skull tickets"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 {
		t.Fatalf("matches = %+v", resp.Matches)
	}
	m := resp.Matches[0]
	if m.Method != MethodSpanFuzzy || m.EntityID != 1 {
		t.Fatalf("match = %+v", m)
	}
	if m.Span != "kingdom of the crystal skull" {
		t.Fatalf("resolved dictionary string = %q", m.Span)
	}
	if m.Start != 0 || m.End != 5 {
		t.Fatalf("span window = [%d,%d), want [0,5)", m.Start, m.End)
	}
	if m.Similarity <= 0.55 || m.Similarity >= 1 {
		t.Fatalf("similarity = %v", m.Similarity)
	}
	if resp.Remainder != "tickets" {
		t.Fatalf("remainder = %q (span over-extended?)", resp.Remainder)
	}

	// Segment mode must NOT resolve it: that is the old behavior.
	seg, err := e.Match(Request{Query: "kingdom of the kristol skull tickets", Mode: ModeSegment})
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Matches) != 0 {
		t.Fatalf("segment mode resolved the span: %+v", seg.Matches)
	}
}

func TestEngineSpanFuzzyConcatenation(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "madagascar2 dvd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 || resp.Matches[0].EntityID != 4 {
		t.Fatalf("matches = %+v", resp.Matches)
	}
	if resp.Matches[0].Method != MethodSpanFuzzy {
		t.Fatalf("method = %q", resp.Matches[0].Method)
	}
}

func TestEngineSpanRespectsMinSim(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "kingdom of the kristol skull", MinSim: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 0 {
		t.Fatalf("min_sim 0.99 still matched: %+v", resp.Matches)
	}
	if resp.Remainder != "kingdom of the kristol skull" {
		t.Fatalf("remainder = %q", resp.Remainder)
	}
}

func TestEngineFuzzyMode(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "quantom of solace", Mode: ModeFuzzy, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) == 0 {
		t.Fatal("no fuzzy hits")
	}
	m := resp.Matches[0]
	if m.EntityID != 5 || m.Method != MethodFuzzy || m.Span != "quantum of solace" {
		t.Fatalf("hit = %+v", m)
	}
	if m.Similarity <= 0 || m.Similarity >= 1 {
		t.Fatalf("similarity = %v", m.Similarity)
	}
	if resp.Remainder != "" {
		t.Fatalf("remainder = %q", resp.Remainder)
	}
}

func TestEngineFuzzyModeWithoutIndex(t *testing.T) {
	d := engineDict()
	e := NewEngine(d, nil, nil, 0)
	if _, err := e.Match(Request{Query: "anything", Mode: ModeFuzzy}); err == nil {
		t.Fatal("fuzzy mode without an index did not error")
	}
	// Span mode degrades to segmentation instead of erroring.
	resp, err := e.Match(Request{Query: "indy 4 tickets"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].Method != MethodTrie {
		t.Fatalf("degraded span mode: %+v", resp.Matches)
	}
}

func TestEngineAlternatesOnAmbiguousSpan(t *testing.T) {
	d := engineDict()
	d.Add("shared title", Entry{EntityID: 3, Score: 0.9, Source: "mined"})
	d.Add("shared title", Entry{EntityID: 4, Score: 0.6, Source: "mined"})
	e := NewEngine(d, d.NewFuzzyIndex(0.55), engineCanonicals(), 0.55)
	resp, err := e.Match(Request{Query: "shared title", TopK: 3, Mode: ModeSegment})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 {
		t.Fatalf("matches = %+v", resp.Matches)
	}
	m := resp.Matches[0]
	if m.EntityID != 3 || len(m.Alternates) != 1 || m.Alternates[0].EntityID != 4 {
		t.Fatalf("alternates = %+v", m)
	}
	// TopK 1 suppresses alternates entirely.
	resp, err = e.Match(Request{Query: "shared title", TopK: 1, Mode: ModeSegment})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches[0].Alternates) != 0 {
		t.Fatalf("TopK=1 still produced alternates: %+v", resp.Matches[0])
	}
}

func TestEngineExplainTrace(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "indy 4 kingdom of the kristol skull", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("no trace despite Explain")
	}
	var stages []string
	for _, s := range resp.Trace {
		stages = append(stages, s.Stage)
	}
	joined := strings.Join(stages, ",")
	if !strings.Contains(joined, "segment") || !strings.Contains(joined, "span-fuzzy") {
		t.Fatalf("trace stages = %v", stages)
	}
	// Without Explain, no trace.
	resp, err = e.Match(Request{Query: "indy 4"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace != nil {
		t.Fatalf("trace without Explain: %+v", resp.Trace)
	}
}

func TestEngineValidation(t *testing.T) {
	e := testEngine()
	cases := []Request{
		{Query: ""},
		{Query: "x", TopK: -1},
		{Query: "x", TopK: MaxTopK + 1},
		{Query: "x", MinSim: -0.1},
		{Query: "x", MinSim: 1.5},
		{Query: "x", MaxSpanTokens: -2},
		{Query: "x", MaxSpanTokens: MaxMaxSpanTokens + 1},
		{Query: "x", Mode: "telepathy"},
	}
	for _, req := range cases {
		if _, err := e.Match(req); err == nil {
			t.Errorf("request %+v did not error", req)
		}
	}
	if _, err := e.Match(Request{Query: ""}); err != ErrEmptyQuery {
		t.Fatalf("empty query error = %v", err)
	}
}

func TestEngineDegenerateQuery(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "!!!"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Query != "" || resp.Matches != nil || resp.Remainder != "" {
		t.Fatalf("degenerate response = %+v", resp)
	}
	// Mode availability is checked before the degenerate early return:
	// fuzzy mode without an index errors even for "!!!".
	noIndex := NewEngine(engineDict(), nil, nil, 0)
	if _, err := noIndex.Match(Request{Query: "!!!", Mode: ModeFuzzy}); err == nil {
		t.Fatal("degenerate fuzzy-mode query bypassed the nil-index check")
	}
}

// TestEngineDroppedEntityConsumesTokens pins the legacy serving
// semantics: a trie span resolving outside the entity table is dropped
// from the matches, but its tokens are consumed — they are dictionary
// mentions, not remainder, and span-fuzzy must not re-resolve them.
func TestEngineDroppedEntityConsumesTokens(t *testing.T) {
	d := engineDict()
	d.Add("ghost entity", Entry{EntityID: 99, Score: 1, Source: "mined"})
	e := NewEngine(d, d.NewFuzzyIndex(0.55), engineCanonicals(), 0.55)
	resp, err := e.Match(Request{Query: "ghost entity indy 4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != 1 || resp.Matches[0].EntityID != 1 {
		t.Fatalf("matches = %+v", resp.Matches)
	}
	if resp.Remainder != "" {
		t.Fatalf("dropped match leaked its tokens into remainder %q", resp.Remainder)
	}
}

func TestEngineMatchTokensAgreesWithMatch(t *testing.T) {
	e := testEngine()
	req := Request{Query: "Indy 4 kingdom of the kristol skull", TopK: 3}
	want, err := e.Match(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.MatchTokens(req, []string{"indy", "4", "kingdom", "of", "the", "kristol", "skull"})
	if err != nil {
		t.Fatal(err)
	}
	want.Timing, got.Timing = Timing{}, Timing{}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("MatchTokens diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestEngineTimingPopulated(t *testing.T) {
	e := testEngine()
	resp, err := e.Match(Request{Query: "kingdom of the kristol skull tickets"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Timing.TotalMicros <= 0 {
		t.Fatalf("timing = %+v", resp.Timing)
	}
	if resp.Timing.FuzzyMicros <= 0 {
		t.Fatalf("span path not timed: %+v", resp.Timing)
	}
}

func TestCandidatesDedupeByEntity(t *testing.T) {
	d := demoDict()
	// Entity 1 is mentioned twice ("indy 4" score 0.9, "indiana jones 4"
	// score 0.95): Candidates must return it once, under the best span.
	cs := d.Candidates("indy 4 vs indiana jones 4")
	if len(cs) != 1 {
		t.Fatalf("candidates = %+v", cs)
	}
	if cs[0].EntityID != 1 || cs[0].Text != "indiana jones 4" || cs[0].Score != 0.95 {
		t.Fatalf("kept span = %+v", cs[0])
	}
	// Distinct entities still all appear.
	cs = d.Candidates("indy 4 twilight")
	if len(cs) != 2 {
		t.Fatalf("distinct entities deduped: %+v", cs)
	}
}
