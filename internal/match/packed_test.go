package match

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"websyn/internal/textnorm"
)

// ---- Differential oracle ----
//
// legacyFuzzy replicates the pre-packed implementation verbatim:
// map-based posting lists, a per-query candidate map, the
// floor-truncated count prune, and full NGramSimilarity verification of
// every surviving candidate. The packed index must return byte-identical
// hits.

type legacyFuzzy struct {
	dict    *Dictionary
	strings []string
	grams   map[string][]int
	minSim  float64

	verified int // candidates whose full similarity was computed
}

func newLegacyFuzzy(d *Dictionary, minSim float64) *legacyFuzzy {
	lf := &legacyFuzzy{
		dict:    d,
		strings: d.Strings(),
		grams:   make(map[string][]int),
		minSim:  minSim,
	}
	for i, s := range lf.strings {
		seen := map[string]bool{}
		for _, g := range textnorm.CharNGrams(s, fuzzyGramSize) {
			if !seen[g] {
				seen[g] = true
				lf.grams[g] = append(lf.grams[g], i)
			}
		}
	}
	return lf
}

func (lf *legacyFuzzy) Lookup(query string, limit int) []FuzzyHit {
	norm := textnorm.Normalize(query)
	if norm == "" {
		return nil
	}
	grams := textnorm.CharNGrams(norm, fuzzyGramSize)
	if len(grams) == 0 {
		return exactFallback(lf.dict, norm)
	}
	seen := make(map[string]bool, len(grams))
	qGrams := grams[:0]
	for _, g := range grams {
		if !seen[g] {
			seen[g] = true
			qGrams = append(qGrams, g)
		}
	}
	counts := make(map[int]int)
	for _, g := range qGrams {
		for _, idx := range lf.grams[g] {
			counts[idx]++
		}
	}
	minShared := int(lf.minSim * float64(len(qGrams)) / 2) // truncated, as shipped
	var hits []FuzzyHit
	for idx, shared := range counts {
		if shared < minShared {
			continue
		}
		lf.verified++
		s := lf.strings[idx]
		sim := textnorm.NGramSimilarity(norm, s, fuzzyGramSize)
		if sim < lf.minSim {
			continue
		}
		hits = append(hits, FuzzyHit{Text: s, Similarity: sim, Entries: lf.dict.Lookup(s)})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Similarity != hits[j].Similarity {
			return hits[i].Similarity > hits[j].Similarity
		}
		return hits[i].Text < hits[j].Text
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

var packedDiffQueries = []string{
	"madagascar2", "digtal rebel xt", "indiana jnes 4", "twilightt",
	"kungfu panda", "canon eos", "350d", "escape 2 africa",
	"indiana jones and the kingdom", "completely unrelated", "zz", "",
	"the crystal skull", "rebel xt digital", "eoss 350", "madagascar escape africa",
}

func TestPackedMatchesLegacyOnDemoDict(t *testing.T) {
	d := demoDict()
	for _, minSim := range []float64{0.4, 0.55, 0.6, 0.8} {
		lf := newLegacyFuzzy(d, minSim)
		fi := d.NewFuzzyIndex(minSim)
		for _, q := range packedDiffQueries {
			for _, limit := range []int{0, 1, 3} {
				want := lf.Lookup(q, limit)
				got := fi.Lookup(q, limit)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("minSim=%v Lookup(%q, %d):\n got %+v\nwant %+v", minSim, q, limit, got, want)
				}
			}
		}
	}
}

// ---- Packed round trip ----

func TestPackedBinaryRoundTrip(t *testing.T) {
	d := demoDict()
	fi := d.NewFuzzyIndex(0.55)
	p := fi.Packed()

	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPackedFuzzy(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("packed round trip diverged:\n got %+v\nwant %+v", got, p)
	}

	flat, err := d.NewFuzzyIndexFromPacked(got, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := d.NewShardedFuzzyIndexFromPacked(got, 0.55, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range packedDiffQueries {
		want := fi.Lookup(q, 0)
		if g := flat.Lookup(q, 0); !reflect.DeepEqual(g, want) {
			t.Errorf("flat-from-packed Lookup(%q) = %+v, want %+v", q, g, want)
		}
		if g := sharded.Lookup(q, 0); !reflect.DeepEqual(g, want) {
			t.Errorf("sharded-from-packed Lookup(%q) = %+v, want %+v", q, g, want)
		}
	}
}

func TestPackedRejectsBadData(t *testing.T) {
	d := demoDict()
	good := d.NewFuzzyIndex(0.55).Packed()
	clone := func() *PackedFuzzy {
		return &PackedFuzzy{
			NumStrings: good.NumStrings,
			Grams:      append([]string(nil), good.Grams...),
			Offsets:    append([]int32(nil), good.Offsets...),
			Postings:   append([]int32(nil), good.Postings...),
			Mults:      append([]int32(nil), good.Mults...),
		}
	}
	cases := map[string]func(*PackedFuzzy){
		"string count mismatch":  func(p *PackedFuzzy) { p.NumStrings++ },
		"posting out of range":   func(p *PackedFuzzy) { p.Postings[0] = int32(p.NumStrings) },
		"negative posting":       func(p *PackedFuzzy) { p.Postings[0] = -1 },
		"zero multiplicity":      func(p *PackedFuzzy) { p.Mults[0] = 0 },
		"offsets short":          func(p *PackedFuzzy) { p.Offsets = p.Offsets[:len(p.Offsets)-1] },
		"offsets span too small": func(p *PackedFuzzy) { p.Offsets[len(p.Offsets)-1]-- },
	}
	for name, corrupt := range cases {
		p := clone()
		corrupt(p)
		if _, err := d.NewFuzzyIndexFromPacked(p, 0.55); err == nil {
			t.Errorf("%s: flat loader accepted corrupt packed data", name)
		}
		if _, err := d.NewShardedFuzzyIndexFromPacked(p, 0.55, 2); err == nil {
			t.Errorf("%s: sharded loader accepted corrupt packed data", name)
		}
	}
	// Truncated byte streams must error, not panic.
	var buf bytes.Buffer
	if err := good.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadPackedFuzzy(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation at %d bytes accepted", n)
		}
	}
}

// ---- Ceiling prune ----

// TestCeilingPruneFewerVerified pins the candidate-prune bugfix: the old
// floor-truncated threshold let candidates with shared < minSim*|q|/2
// through to full verification; the ceiling threshold rejects them
// earlier, with identical results.
func TestCeilingPruneFewerVerified(t *testing.T) {
	d := NewDictionary()
	// 8 shared grams with the query: a real hit.
	d.Add("abcdefghij", Entry{EntityID: 1, Score: 1, Source: "canonical"})
	// Exactly 2 shared grams ("abc", "bcd"): with minSim=0.6 and a
	// 7-distinct-gram query the threshold is 2.1 — floor admits the
	// candidate to verification, ceiling prunes it. Its similarity
	// (2*2/(7+5) = 0.33) fails verification anyway, so results agree.
	d.Add("abcdzzz", Entry{EntityID: 2, Score: 1, Source: "canonical"})

	const minSim, query = 0.6, "abcdefghi"
	lf := newLegacyFuzzy(d, minSim)
	fi := d.NewFuzzyIndex(minSim)

	want := lf.Lookup(query, 0)
	got := fi.Lookup(query, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("results diverged:\n got %+v\nwant %+v", got, want)
	}
	if len(got) != 1 || got[0].Text != "abcdefghij" {
		t.Fatalf("unexpected hits %+v", got)
	}

	// Sanity-check the constructed thresholds really straddle the case.
	qDistinct := 7
	floorThresh := int(minSim * float64(qDistinct) / 2)
	ceilThresh := int(math.Ceil(minSim * float64(qDistinct) / 2))
	if floorThresh != 2 || ceilThresh != 3 {
		t.Fatalf("thresholds = %d/%d, fixture broken", floorThresh, ceilThresh)
	}

	if lf.verified != 2 {
		t.Fatalf("legacy verified %d candidates, want 2", lf.verified)
	}
	if v := fi.verified.Load(); v != 1 {
		t.Fatalf("packed index verified %d candidates, want 1 (fewer than legacy's %d)", v, lf.verified)
	}
}

// TestRepeatedGramQueryRecall pins the repeated-trigram corner: a string
// sharing a single *distinct* gram with the query can still clear the
// Dice threshold through multiplicity ("aaaaaaa" vs "aaaaaaabcd" share
// only "aaa", five times). The distinct-count prune is unsound there and
// must stand down in favor of the multiset bound; dropping the hit would
// be a silent recall regression.
func TestRepeatedGramQueryRecall(t *testing.T) {
	d := NewDictionary()
	d.Add("aaaaaaa", Entry{EntityID: 1, Score: 1, Source: "canonical"})
	const minSim, query = 0.6, "aaaaaaabcd"

	lf := newLegacyFuzzy(d, minSim)
	want := lf.Lookup(query, 0)
	if len(want) != 1 || want[0].Text != "aaaaaaa" {
		t.Fatalf("oracle fixture broken: %+v", want)
	}
	for name, idx := range map[string]interface {
		Lookup(string, int) []FuzzyHit
	}{
		"flat":    d.NewFuzzyIndex(minSim),
		"sharded": d.NewShardedFuzzyIndex(minSim, 2),
	} {
		if got := idx.Lookup(query, 0); !reflect.DeepEqual(got, want) {
			t.Errorf("%s Lookup(%q) dropped the repeated-gram hit:\n got %+v\nwant %+v", name, query, got, want)
		}
	}
}

// ---- Flat / sharded / packed consistency fuzzing ----

// fuzzFixture builds one dictionary with awkward shapes — repeated
// trigrams, shared prefixes, numerals, non-ASCII, very short strings —
// and every index variant over it.
var fuzzFixture struct {
	once    sync.Once
	legacy  *legacyFuzzy
	flat    *FuzzyIndex
	sharded *ShardedFuzzyIndex
	packed  *FuzzyIndex // flat index rebuilt through the binary codec
}

func fuzzIndexes(tb testing.TB) (*legacyFuzzy, *FuzzyIndex, *ShardedFuzzyIndex, *FuzzyIndex) {
	fuzzFixture.once.Do(func() {
		d := NewDictionary()
		id := 0
		add := func(s string) {
			d.Add(s, Entry{EntityID: id, Score: 1 - float64(id)/1000, Source: "mined"})
			id++
		}
		for i := 0; i < 25; i++ {
			add(fmt.Sprintf("madagascar episode %d", i))
			add(fmt.Sprintf("kung fu panda %d returns", i))
		}
		for _, s := range []string{
			"new york new york", "abab abab abab", "aaaaaaaaaa",
			"mississippi", "banana bandana", "la la land",
			"amélie from montmartre", "les misérables", "東京物語",
			"up", "it", "300", "2012", "wall e", "wall street",
			"the lord of the rings the return of the king",
			"lord of war", "war of the worlds", "world war z",
		} {
			add(s)
		}
		const minSim = 0.55
		fuzzFixture.legacy = newLegacyFuzzy(d, minSim)
		fuzzFixture.flat = d.NewFuzzyIndex(minSim)
		fuzzFixture.sharded = d.NewShardedFuzzyIndex(minSim, 3)
		var buf bytes.Buffer
		if err := fuzzFixture.flat.Packed().WriteBinary(&buf); err != nil {
			tb.Fatal(err)
		}
		p, err := ReadPackedFuzzy(&buf)
		if err != nil {
			tb.Fatal(err)
		}
		fuzzFixture.packed, err = d.NewFuzzyIndexFromPacked(p, minSim)
		if err != nil {
			tb.Fatal(err)
		}
	})
	return fuzzFixture.legacy, fuzzFixture.flat, fuzzFixture.sharded, fuzzFixture.packed
}

// FuzzFuzzyLookupConsistency asserts the flat index, the sharded index
// and the packed-codec round trip return identical hits for arbitrary
// queries and limits.
func FuzzFuzzyLookupConsistency(f *testing.F) {
	f.Add("madagascar2", byte(0))
	f.Add("kungfu panda 3", byte(1))
	f.Add("new york", byte(3))
	f.Add("aaaa", byte(2))
	f.Add("amelie", byte(5))
	f.Add("wall", byte(0))
	f.Add("the lord of the ring", byte(4))
	f.Add("", byte(1))
	f.Fuzz(func(t *testing.T, query string, limitByte byte) {
		_, flat, sharded, packed := fuzzIndexes(t)
		limit := int(limitByte % 8)
		want := flat.Lookup(query, limit)
		if got := sharded.Lookup(query, limit); !reflect.DeepEqual(got, want) {
			t.Errorf("sharded Lookup(%q, %d):\n got %+v\nwant %+v", query, limit, got, want)
		}
		if got := packed.Lookup(query, limit); !reflect.DeepEqual(got, want) {
			t.Errorf("packed Lookup(%q, %d):\n got %+v\nwant %+v", query, limit, got, want)
		}
	})
}

// TestFuzzyLookupConsistencySeeds runs the fuzz seed queries as a plain
// test (go test does not execute fuzz targets' generated corpus) and
// additionally checks the legacy oracle on query shapes where the old
// and new prunes admit the same candidates.
func TestFuzzyLookupConsistencySeeds(t *testing.T) {
	legacy, flat, sharded, packed := fuzzIndexes(t)
	queries := []string{
		"madagascar2", "kungfu panda 3", "madagascar episode 7", "new york",
		"newyork new york", "aaaa", "abab", "mississipi", "banana",
		"lalaland", "amelie montmartre", "amélie", "wall", "war of the world",
		"lord of the rings return", "300", "wall e", "up",
	}
	for _, q := range queries {
		for _, limit := range []int{0, 1, 5} {
			want := legacy.Lookup(q, limit)
			for name, got := range map[string][]FuzzyHit{
				"flat":    flat.Lookup(q, limit),
				"sharded": sharded.Lookup(q, limit),
				"packed":  packed.Lookup(q, limit),
			} {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s Lookup(%q, %d):\n got %+v\nwant %+v", name, q, limit, got, want)
				}
			}
		}
	}
}
