package match

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// shardedFixture compiles a dictionary large enough to spread across
// shards.
func shardedFixture() *Dictionary {
	d := NewDictionary()
	for i := 0; i < 40; i++ {
		d.Add(fmt.Sprintf("madagascar episode %d", i), Entry{EntityID: i, Score: 1, Source: "canonical"})
		d.Add(fmt.Sprintf("kung fu panda %d", i), Entry{EntityID: 100 + i, Score: 1, Source: "canonical"})
	}
	d.Add("madagascar escape 2 africa", Entry{EntityID: 500, Score: 1, Source: "canonical"})
	d.Add("iron man", Entry{EntityID: 501, Score: 1, Source: "canonical"})
	d.Add("up", Entry{EntityID: 502, Score: 1, Source: "canonical"})
	return d
}

func TestShardedLookupMatchesUnsharded(t *testing.T) {
	d := shardedFixture()
	flat := d.NewFuzzyIndex(0.55)
	for _, shards := range []int{1, 2, 3, 7} {
		sfi := d.NewShardedFuzzyIndex(0.55, shards)
		if sfi.Len() != flat.Len() {
			t.Fatalf("shards=%d: Len %d, want %d", shards, sfi.Len(), flat.Len())
		}
		for _, q := range []string{
			"madagascar2", "kungfu panda 3", "iron mann", "madagascar africa",
			"up", "zz", "", "completely unrelated query",
		} {
			want := flat.Lookup(q, 0)
			got := sfi.Lookup(q, 0)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d Lookup(%q):\n got %v\nwant %v", shards, q, got, want)
			}
		}
	}
}

func TestShardedLookupLimit(t *testing.T) {
	d := shardedFixture()
	sfi := d.NewShardedFuzzyIndex(0.55, 4)
	hits := sfi.Lookup("madagascar episode", 3)
	if len(hits) != 3 {
		t.Fatalf("limit ignored: %d hits", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Similarity > hits[i-1].Similarity {
			t.Fatalf("hits out of order: %v", hits)
		}
	}
}

func TestShardedBestEntity(t *testing.T) {
	d := shardedFixture()
	sfi := d.NewShardedFuzzyIndex(0.55, 4)
	e, ok := sfi.BestEntity("iron man")
	if !ok || e.EntityID != 501 {
		t.Fatalf("exact BestEntity = %+v, %v", e, ok)
	}
	e, ok = sfi.BestEntity("iron mann")
	if !ok || e.EntityID != 501 {
		t.Fatalf("fuzzy BestEntity = %+v, %v", e, ok)
	}
	if _, ok := sfi.BestEntity("qqqqqqq"); ok {
		t.Fatal("BestEntity matched garbage")
	}
}

func TestShardedDefaultsAndSmallDictionaries(t *testing.T) {
	d := NewDictionary()
	d.Add("solo", Entry{EntityID: 1, Score: 1, Source: "canonical"})
	sfi := d.NewShardedFuzzyIndex(0, 16) // more shards than strings
	if sfi.Shards() != 1 {
		t.Fatalf("Shards() = %d, want clamp to 1", sfi.Shards())
	}
	if hits := sfi.Lookup("solo", 0); len(hits) != 1 || hits[0].Text != "solo" {
		t.Fatalf("lookup on clamped index: %v", hits)
	}

	empty := NewDictionary()
	esfi := empty.NewShardedFuzzyIndex(0.6, 0)
	if hits := esfi.Lookup("anything", 0); hits != nil {
		t.Fatalf("empty dictionary returned hits: %v", hits)
	}
}

func TestShardedLookupConcurrent(t *testing.T) {
	d := shardedFixture()
	sfi := d.NewShardedFuzzyIndex(0.55, 4)
	want := sfi.Lookup("madagascar2", 5)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got := sfi.Lookup("madagascar2", 5)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent lookup diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
