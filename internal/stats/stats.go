// Package stats provides the small statistical toolkit the reports and
// diagnostics use: streaming summaries, quantiles, and log-scale histograms
// for the heavy-tailed distributions (query frequency, click counts, node
// degrees) the pipeline produces.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates streaming moments and extrema. The zero value is
// ready to use.
type Summary struct {
	n        int
	sum      float64
	sumSq    float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sumSq += x * x
}

// AddInt folds an integer observation.
func (s *Summary) AddInt(x int) { s.Add(float64(x)) }

// N returns the observation count.
func (s *Summary) N() int { return s.n }

// Sum returns the observation total.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Variance returns the population variance (0 when empty).
func (s *Summary) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0 // float drift
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation. It sorts a copy; the input is not modified. Returns 0 for
// empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// LogHistogram buckets positive integers into powers-of-two ranges:
// [1,1], [2,3], [4,7], [8,15], ... — the natural shape for click counts
// and degree distributions.
type LogHistogram struct {
	buckets []int
	zero    int
	total   int
}

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{}
}

// Add records one observation. Non-positive values land in the zero bucket.
func (h *LogHistogram) Add(x int) {
	h.total++
	if x <= 0 {
		h.zero++
		return
	}
	b := 0
	for v := x; v > 1; v >>= 1 {
		b++
	}
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b]++
}

// Total returns the observation count.
func (h *LogHistogram) Total() int { return h.total }

// Zero returns the count of non-positive observations.
func (h *LogHistogram) Zero() int { return h.zero }

// Bucket returns the count of observations in [2^i, 2^(i+1)).
func (h *LogHistogram) Bucket(i int) int {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// NumBuckets returns the number of allocated buckets.
func (h *LogHistogram) NumBuckets() int { return len(h.buckets) }

// String renders the histogram as an ASCII bar chart.
func (h *LogHistogram) String() string {
	var b strings.Builder
	maxCount := h.zero
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return "(empty)\n"
	}
	row := func(label string, count int) {
		bar := strings.Repeat("#", count*40/maxCount)
		fmt.Fprintf(&b, "  %-12s %7d %s\n", label, count, bar)
	}
	if h.zero > 0 {
		row("0", h.zero)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := 1 << i
		hi := 1<<(i+1) - 1
		if lo == hi {
			row(fmt.Sprintf("%d", lo), c)
		} else {
			row(fmt.Sprintf("%d-%d", lo, hi), c)
		}
	}
	return b.String()
}

// Gini computes the Gini coefficient of the non-negative values — the
// pipeline's standard skew check for Zipf-shaped distributions (0 =
// perfectly equal, →1 = maximally concentrated).
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		cum += x * float64(i+1)
		total += x
	}
	n := float64(len(sorted))
	if total == 0 {
		return 0
	}
	return (2*cum)/(n*total) - (n+1)/n
}
