package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("zero-value summary not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.StdDev() != 2 {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("range = [%v, %v]", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummaryAddInt(t *testing.T) {
	var s Summary
	s.AddInt(3)
	s.AddInt(5)
	if s.Sum() != 8 {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatal("negative handling wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Median(xs) != 3 {
		t.Fatalf("median = %v", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Clamping.
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 5 {
		t.Fatal("clamping broken")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram()
	for _, x := range []int{0, 1, 1, 2, 3, 4, 7, 8, 100} {
		h.Add(x)
	}
	if h.Total() != 9 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Zero() != 1 {
		t.Fatalf("zero = %d", h.Zero())
	}
	if h.Bucket(0) != 2 { // 1,1
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 2 { // 2,3
		t.Fatalf("bucket 1 = %d", h.Bucket(1))
	}
	if h.Bucket(2) != 2 { // 4,7
		t.Fatalf("bucket 2 = %d", h.Bucket(2))
	}
	if h.Bucket(3) != 1 { // 8
		t.Fatalf("bucket 3 = %d", h.Bucket(3))
	}
	if h.Bucket(6) != 1 { // 100 in [64,127]
		t.Fatalf("bucket 6 = %d", h.Bucket(6))
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Fatal("out-of-range buckets nonzero")
	}
}

func TestLogHistogramString(t *testing.T) {
	h := NewLogHistogram()
	if !strings.Contains(h.String(), "empty") {
		t.Fatal("empty histogram should say so")
	}
	h.Add(1)
	h.Add(5)
	s := h.String()
	if !strings.Contains(s, "4-7") {
		t.Fatalf("histogram render missing bucket label: %q", s)
	}
}

func TestGini(t *testing.T) {
	// Perfect equality.
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Fatalf("equal Gini = %v", g)
	}
	// Maximal concentration approaches (n-1)/n.
	g := Gini([]float64{0, 0, 0, 100})
	if math.Abs(g-0.75) > 1e-9 {
		t.Fatalf("concentrated Gini = %v, want 0.75", g)
	}
	if Gini(nil) != 0 || Gini([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Gini not 0")
	}
}

func TestGiniMonotoneInSkew(t *testing.T) {
	flat := Gini([]float64{4, 5, 6})
	skewed := Gini([]float64{1, 2, 12})
	if skewed <= flat {
		t.Fatalf("skewed Gini %v not above flat %v", skewed, flat)
	}
}

// Property: quantile output is always within [min, max] of the input.
func TestQuickQuantileBounds(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			if xs[i] < lo {
				lo = xs[i]
			}
			if xs[i] > hi {
				hi = xs[i]
			}
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Gini is always within [0, 1) for non-negative input.
func TestQuickGiniRange(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		g := Gini(xs)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total always equals additions.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewLogHistogram()
		for _, r := range raw {
			h.Add(int(r))
		}
		sum := h.Zero()
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return sum == len(raw) && h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
