package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"websyn/internal/match"
	"websyn/internal/textnorm"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestV1MatchSingle(t *testing.T) {
	ts := httptest.NewServer(testServer(Config{CacheSize: 16}).Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4 near san fran", "explain": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Count != 1 || len(vr.Results) != 1 {
		t.Fatalf("count %d, %d results", vr.Count, len(vr.Results))
	}
	r := vr.Results[0]
	if r.Error != "" || r.Response == nil {
		t.Fatalf("result = %+v", r)
	}
	if len(r.Matches) != 1 || r.Matches[0].EntityID != 0 || r.Matches[0].Method != match.MethodTrie {
		t.Fatalf("matches = %+v", r.Matches)
	}
	if r.Remainder != "near san fran" {
		t.Fatalf("remainder = %q", r.Remainder)
	}
	if len(r.Trace) == 0 {
		t.Fatal("explain produced no trace")
	}
	if r.Timing.TotalMicros <= 0 {
		t.Fatalf("timing = %+v", r.Timing)
	}
	if r.Cached {
		t.Fatal("first request claimed a cache hit")
	}

	// Identical request again: served from the cache keyed on the full
	// request.
	_, data2 := postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4 near san fran", "explain": true}`)
	var vr2 V1Response
	if err := json.Unmarshal(data2, &vr2); err != nil {
		t.Fatal(err)
	}
	if !vr2.Results[0].Cached {
		t.Fatal("second identical request missed the cache")
	}

	// Same query, different options: a distinct cache entry.
	_, data3 := postJSON(t, ts.URL+"/v1/match", `{"query": "indy 4 near san fran", "explain": true, "top_k": 2}`)
	var vr3 V1Response
	if err := json.Unmarshal(data3, &vr3); err != nil {
		t.Fatal(err)
	}
	if vr3.Results[0].Cached {
		t.Fatal("different top_k shared a cache entry")
	}
}

func TestV1MatchSpanFuzzy(t *testing.T) {
	ts := httptest.NewServer(testServer(Config{}).Handler())
	defer ts.Close()

	// "kristol" is edit distance 3 from "crystal": the trie cannot bridge
	// it, the trigram index can.
	_, data := postJSON(t, ts.URL+"/v1/match", `{"query": "kingdom of the kristol skull tickets"}`)
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	r := vr.Results[0]
	if r.Error != "" || len(r.Matches) != 1 {
		t.Fatalf("result = %+v", r)
	}
	m := r.Matches[0]
	if m.Method != match.MethodSpanFuzzy || m.EntityID != 0 || m.Span != "kingdom of the crystal skull" {
		t.Fatalf("span match = %+v", m)
	}
	if r.Remainder != "tickets" {
		t.Fatalf("remainder = %q", r.Remainder)
	}

	// mode=segment must reproduce the legacy behavior: no span resolution.
	_, data = postJSON(t, ts.URL+"/v1/match", `{"query": "kingdom of the kristol skull tickets", "mode": "segment"}`)
	var seg V1Response
	if err := json.Unmarshal(data, &seg); err != nil {
		t.Fatal(err)
	}
	if len(seg.Results[0].Matches) != 0 {
		t.Fatalf("segment mode resolved the span: %+v", seg.Results[0].Matches)
	}
}

func TestV1MatchBatch(t *testing.T) {
	ts := httptest.NewServer(testServer(Config{BatchWorkers: 4}).Handler())
	defer ts.Close()

	body := `{
		"top_k": 3,
		"queries": [
			{"query": "indy 4 tickets"},
			{"query": ""},
			{"query": "madagascar 2", "mode": "fuzzy"},
			{"query": "zzz qqq"}
		]
	}`
	resp, data := postJSON(t, ts.URL+"/v1/match", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Count != 4 || len(vr.Results) != 4 {
		t.Fatalf("count %d, %d results", vr.Count, len(vr.Results))
	}
	if vr.Results[0].Error != "" || vr.Results[0].Matches[0].EntityID != 0 {
		t.Fatalf("result 0 = %+v", vr.Results[0])
	}
	if vr.Results[1].Error == "" {
		t.Fatal("empty query produced no per-item error")
	}
	if vr.Results[1].Response != nil && vr.Results[1].Response.Query != "" {
		t.Fatalf("errored item carries a response: %+v", vr.Results[1])
	}
	if len(vr.Results[2].Matches) == 0 || vr.Results[2].Matches[0].Method != match.MethodFuzzy {
		t.Fatalf("per-item mode override ignored: %+v", vr.Results[2])
	}
	if len(vr.Results[3].Matches) != 0 || vr.Results[3].Remainder != "zzz qqq" {
		t.Fatalf("no-match result = %+v", vr.Results[3])
	}
}

func TestV1MatchErrorPaths(t *testing.T) {
	srv := NewServer(testSnapshot(), Config{MaxBatch: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{"query": `, http.StatusBadRequest},
		{"unknown field", `{"query": "indy 4", "frobnicate": true}`, http.StatusBadRequest},
		{"no query at all", `{}`, http.StatusBadRequest},
		{"query and queries", `{"query": "x", "queries": [{"query": "y"}]}`, http.StatusBadRequest},
		{"oversized batch", `{"queries": [{"query":"a"},{"query":"b"},{"query":"c"},{"query":"d"}]}`,
			http.StatusRequestEntityTooLarge},
		{"wrong type", `{"query": 42}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/match", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var e v1Error
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error object", tc.name, data)
		}
	}

	// Per-item validation errors surface in-band, not as HTTP failures.
	resp, data := postJSON(t, ts.URL+"/v1/match",
		`{"queries": [{"query": "x", "mode": "telepathy"}, {"query": "x", "top_k": -2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("per-item errors escalated to status %d", resp.StatusCode)
	}
	var vr V1Response
	if err := json.Unmarshal(data, &vr); err != nil {
		t.Fatal(err)
	}
	for i, r := range vr.Results {
		if r.Error == "" {
			t.Errorf("item %d: invalid request produced no error", i)
		}
	}

	// Oversized body.
	huge := fmt.Sprintf(`{"query": %q}`, strings.Repeat("x ", 1<<20))
	resp, _ = postJSON(t, ts.URL+"/v1/match", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}

	// Wrong method.
	getResp, err := http.Get(ts.URL + "/v1/match")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/match: status %d", getResp.StatusCode)
	}
}

// ---- Legacy compatibility ----

// oldMatchResult replicates the pre-engine GET /match logic straight
// from the primitives: trie segmentation plus entity-table filtering.
func oldMatchResult(snap *Snapshot, query string, cached bool) MatchResult {
	seg := snap.Dict.SegmentTokens(textnorm.Tokenize(query))
	res := MatchResult{Query: seg.Query, Remainder: seg.Remainder, Cached: cached}
	for _, m := range seg.Matches {
		if m.EntityID < 0 || m.EntityID >= len(snap.Canonicals) {
			continue
		}
		res.Matches = append(res.Matches, MatchedSpan{
			Canonical: snap.Canonicals[m.EntityID],
			EntityID:  m.EntityID,
			Span:      m.Text,
			Score:     m.Score,
			Source:    m.Source,
			Corrected: m.Corrected,
		})
	}
	return res
}

// oldFuzzyResult replicates the pre-engine GET /fuzzy logic from a flat
// trigram index (identical results to the server's sharded one).
func oldFuzzyResult(snap *Snapshot, fi *match.FuzzyIndex, query string, limit int) FuzzyResult {
	res := FuzzyResult{Query: query}
	for _, h := range fi.Lookup(query, limit) {
		if len(h.Entries) == 0 {
			continue
		}
		id := h.Entries[0].EntityID
		if id < 0 || id >= len(snap.Canonicals) {
			continue
		}
		res.Hits = append(res.Hits, FuzzyHit{
			Text:       h.Text,
			Similarity: h.Similarity,
			Canonical:  snap.Canonicals[id],
			EntityID:   id,
		})
	}
	return res
}

// encodeBody renders a value exactly as the HTTP handlers do.
func encodeBody(t *testing.T, v any) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	writeJSON(rec, v)
	return rec.Body.Bytes()
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestLegacyMatchByteIdentical proves the /match adapter over the engine
// returns byte-identical payloads to the pre-redesign handler, including
// the cached flag on repeats.
func TestLegacyMatchByteIdentical(t *testing.T) {
	snap := testSnapshot()
	ts := httptest.NewServer(NewServer(snap, Config{CacheSize: 32}).Handler())
	defer ts.Close()

	queries := []string{
		"indy 4 near san francisco",
		"madagascar",          // ambiguous string, best entry wins
		"madagscar 2 trailer", // token typo, corrected flag
		"nothing here at all", // no match: "matches":null
		"!!!",                 // normalizes to nothing
		"Indiana Jones and the Kingdom of the Crystal Skull",
	}
	for _, q := range queries {
		for repeat, cached := range []bool{false, true} {
			status, got := get(t, ts.URL+"/match?q="+strings.ReplaceAll(q, " ", "+"))
			if status != http.StatusOK {
				t.Fatalf("match %q: status %d", q, status)
			}
			want := encodeBody(t, oldMatchResult(snap, q, cached))
			if !bytes.Equal(got, want) {
				t.Errorf("match %q (repeat %d) diverged:\n got %s\nwant %s", q, repeat, got, want)
			}
		}
	}
}

// TestLegacyBatchByteIdentical proves the /match/batch adapter payload is
// unchanged.
func TestLegacyBatchByteIdentical(t *testing.T) {
	snap := testSnapshot()
	ts := httptest.NewServer(NewServer(snap, Config{CacheSize: -1}).Handler())
	defer ts.Close()

	queries := []string{"indy 4 tickets", "madagascar 2", "nothing here", "watch indiana jones 4"}
	body, _ := json.Marshal(BatchRequest{Queries: queries})
	resp, err := http.Post(ts.URL+"/match/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	want := BatchResponse{Count: len(queries)}
	for _, q := range queries {
		want.Results = append(want.Results, oldMatchResult(snap, q, false))
	}
	if wantBytes := encodeBody(t, want); !bytes.Equal(got, wantBytes) {
		t.Errorf("batch diverged:\n got %s\nwant %s", got, wantBytes)
	}
}

// TestLegacyFuzzyByteIdentical proves the /fuzzy adapter payload is
// unchanged.
func TestLegacyFuzzyByteIdentical(t *testing.T) {
	snap := testSnapshot()
	ts := httptest.NewServer(NewServer(snap, Config{}).Handler())
	defer ts.Close()
	fi := snap.Dict.NewFuzzyIndex(snap.MinSim)

	queries := []string{"madagascar2", "indianna jones", "zzz qqq vvv", "!!!", "Madagascar"}
	for _, q := range queries {
		status, got := get(t, ts.URL+"/fuzzy?q="+strings.ReplaceAll(q, " ", "+"))
		if status != http.StatusOK {
			t.Fatalf("fuzzy %q: status %d", q, status)
		}
		want := encodeBody(t, oldFuzzyResult(snap, fi, q, 5))
		if !bytes.Equal(got, want) {
			t.Errorf("fuzzy %q diverged:\n got %s\nwant %s", q, got, want)
		}
	}
}
