package serve

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"websyn/internal/match"
)

// TestFlightGroupBasics pins the join/finish protocol: first joiner
// leads, later joiners follow into the same call, finish releases them
// with the leader's result (or error), and a finished key starts a
// fresh flight.
func TestFlightGroupBasics(t *testing.T) {
	var fg flightGroup
	c1, leader := fg.join([]byte("k"))
	if !leader {
		t.Fatal("first join is not the leader")
	}
	c2, leader2 := fg.join([]byte("k"))
	if leader2 || c2 != c1 {
		t.Fatalf("second join: leader=%v call-shared=%v", leader2, c2 == c1)
	}
	got := make(chan match.Response, 1)
	go func() {
		res, err := c2.wait()
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		got <- res
	}()
	fg.finish(c1, match.Response{Query: "v"}, nil)
	if res := <-got; res.Query != "v" {
		t.Fatalf("follower got %+v", res)
	}
	if fg.shared.Load() != 1 {
		t.Fatalf("shared = %d, want 1", fg.shared.Load())
	}

	// The key is free again: the next join leads a new flight, and an
	// error propagates to its followers.
	c3, leader3 := fg.join([]byte("k"))
	if !leader3 {
		t.Fatal("join after finish did not lead")
	}
	fg.finish(c3, match.Response{}, errors.New("boom"))
	if _, err := c3.wait(); err == nil || err.Error() != "boom" {
		t.Fatalf("error not propagated: %v", err)
	}
	// A solo flight (no waiters) is not counted as shared.
	if fg.shared.Load() != 1 {
		t.Fatalf("shared = %d after solo flight, want 1", fg.shared.Load())
	}
}

// TestFlightGroupConcurrentJoin races K goroutines joining one key:
// exactly one may lead, and every follower must observe the leader's
// result.
func TestFlightGroupConcurrentJoin(t *testing.T) {
	var fg flightGroup
	const K = 32
	var leaders atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c, leader := fg.join([]byte("hot"))
			if leader {
				leaders.Add(1)
				fg.finish(c, match.Response{Query: "answer"}, nil)
				return
			}
			if res, err := c.wait(); err != nil || res.Query != "answer" {
				t.Errorf("follower got %+v, %v", res, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	// Depending on interleaving several flights may run back to back
	// (a goroutine joining after a finish leads a new flight), but
	// within any one flight there is exactly one leader — so leaders
	// can never exceed K and never reach zero.
	if n := leaders.Load(); n < 1 || n > K {
		t.Fatalf("leaders = %d", n)
	}
}

// TestSingleflightCollapsesMisses is the deterministic exactly-one-run
// proof for the serve path: the test itself takes the leadership of a
// key, parks K concurrent identical uncached requests on the flight,
// then runs the engine once and publishes. All K requests must complete
// with that one run's response — K duplicate misses, one engine
// invocation — and the flight counters must say so.
func TestSingleflightCollapsesMisses(t *testing.T) {
	s := NewServer(testSnapshot(), Config{CacheSize: 64})
	g := s.gen.Load()
	const query = "showtimes for indy 4 near san francisco"
	req := match.Request{Query: query}.WithDefaults()
	sc := match.NewScratch()
	sc.Tokenize(query)
	key := appendRequestKey(nil, req, sc.Norm())

	c, leader := g.flight.join(key)
	if !leader {
		t.Fatal("test could not take flight leadership")
	}

	const K = 16
	var wg sync.WaitGroup
	got := make([]match.Response, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := s.DoView(match.Request{Query: query}, func(res *match.Response, cached bool) {
				if cached {
					t.Error("follower reported a cache hit")
				}
				got[i] = match.CloneResponse(res)
			})
			if err != nil {
				t.Errorf("DoView: %v", err)
			}
		}(i)
	}

	// Every request misses the cache and joins the in-flight call; wait
	// until all K are parked.
	deadline := time.Now().Add(10 * time.Second)
	for c.waiters.Load() < K {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests joined the flight", c.waiters.Load(), K)
		}
		time.Sleep(time.Millisecond)
	}

	// The one and only engine run.
	res, err := g.engine.MatchPrepared(req, sc)
	if err != nil {
		t.Fatal(err)
	}
	stable := match.CloneResponse(res)
	g.cache.Put(key, stable)
	g.flight.finish(c, stable, nil)
	wg.Wait()

	for i := range got {
		if !reflect.DeepEqual(got[i], stable) {
			t.Fatalf("request %d diverged from the leader's response:\n got %+v\nwant %+v", i, got[i], stable)
		}
	}
	if hits := g.flight.hits.Load(); hits != K {
		t.Fatalf("singleflight_hits = %d, want %d (every duplicate miss collapsed)", hits, K)
	}
	if shared := g.flight.shared.Load(); shared != 1 {
		t.Fatalf("singleflight_shared = %d, want 1", shared)
	}
	// The flight is over and the response cached: the next request is a
	// plain cache hit, no new flight.
	var cachedHit bool
	if err := s.DoView(match.Request{Query: query}, func(_ *match.Response, cached bool) { cachedHit = cached }); err != nil {
		t.Fatal(err)
	}
	if !cachedHit {
		t.Fatal("response not cached after the flight")
	}
	st := s.Stats()
	if st.Cache.SingleflightHits != K || st.Cache.SingleflightShared != 1 {
		t.Fatalf("/statsz singleflight counters = %d/%d, want %d/1",
			st.Cache.SingleflightHits, st.Cache.SingleflightShared, K)
	}
}

// TestCacheStormAcrossInstall hammers one hot key plus a churn of
// unique (miss) keys from many goroutines while the main goroutine
// hot-swaps generations whose dictionaries resolve the probe query
// differently. Cache shards and the singleflight group are both
// generation-scoped, so no request may ever observe a stale
// generation's response under a fresh generation — after an Install
// returns, a fresh Do must answer from the new dictionary. Run with
// -race this is the data-race proof for the sharded CLOCK cache and
// flight group under install churn.
func TestCacheStormAcrossInstall(t *testing.T) {
	s := NewServer(probeSnapshot(0), Config{CacheSize: 128, CacheShards: 4})
	hot := match.Request{Query: "probe target tickets"}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// The hot key: every goroutine hammers the same query, so
				// hits, misses and flight joins all race across installs.
				err := s.DoView(hot, func(res *match.Response, _ bool) {
					if len(res.Matches) != 1 || res.Matches[0].EntityID > 1 ||
						res.Matches[0].Span != "probe target" || res.Remainder != "tickets" {
						t.Errorf("torn hot response: %+v", res)
					}
				})
				if err != nil {
					t.Errorf("DoView(hot): %v", err)
					return
				}
				// A churning unique key: always a miss on some shard, so
				// CLOCK eviction runs concurrently with the hot hits.
				miss := match.Request{Query: fmt.Sprintf("probe target run %d lap %d", w, i)}
				err = s.DoView(miss, func(res *match.Response, _ bool) {
					if len(res.Matches) != 1 || res.Matches[0].EntityID > 1 ||
						res.Matches[0].Span != "probe target" {
						t.Errorf("torn miss response: %+v", res)
					}
				})
				if err != nil {
					t.Errorf("DoView(miss): %v", err)
					return
				}
				served.Add(1)
			}
		}(w)
	}

	const swaps = 10
	for i := 1; i <= swaps; i++ {
		entity := i % 2
		gen, err := s.Prepare(probeSnapshot(entity), SnapshotMeta{})
		if err != nil {
			t.Fatal(err)
		}
		s.Install(gen)
		// The moment Install returns, a fresh request must see the new
		// generation's entity: a cache or flight shared across
		// generations would keep serving the old one.
		res, err := s.Do(hot)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 || res.Matches[0].EntityID != entity {
			t.Fatalf("after install %d: got entity %+v, want %d", i, res.Matches, entity)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no requests served during the install storm")
	}
	// The final generation's cache took the post-storm traffic; its
	// stats must be coherent (sizes within capacity, counters moving).
	st := s.Stats()
	if st.Cache.Size > st.Cache.Capacity {
		t.Fatalf("cache size %d exceeds capacity %d", st.Cache.Size, st.Cache.Capacity)
	}
}
