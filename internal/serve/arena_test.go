package serve

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"websyn/internal/match"
)

// TestDoViewMatchesDo pins the view-based API to the copying one: for
// every mode and cache configuration, the response DoView exposes
// during visit must equal what Do returns.
func TestDoViewMatchesDo(t *testing.T) {
	for _, cache := range []int{-1, 64} {
		s := NewServer(testSnapshot(), Config{CacheSize: cache})
		for _, mode := range []match.Mode{match.ModeSegment, match.ModeSpan, match.ModeFuzzy} {
			for _, q := range []string{
				"showtimes for indy 4 near san francisco",
				"madagascar 2 trailer",
				"kingdom of the crystal skul",
				"",
			} {
				req := match.Request{Query: q, Mode: mode, TopK: 3, Explain: true}
				want, errWant := s.Do(req)
				var got match.Response
				var visited bool
				errGot := s.DoView(req, func(res *match.Response, _ bool) {
					visited = true
					got = match.CloneResponse(res)
				})
				if (errWant == nil) != (errGot == nil) {
					t.Fatalf("cache=%d %s %q: error divergence: Do=%v DoView=%v", cache, mode, q, errWant, errGot)
				}
				if errWant != nil {
					if visited {
						t.Fatalf("cache=%d %s %q: visit ran despite error", cache, mode, q)
					}
					continue
				}
				want.Timing, got.Timing = match.Timing{}, match.Timing{}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("cache=%d %s %q: DoView diverged from Do:\n got %+v\nwant %+v", cache, mode, q, got, want)
				}
			}
		}
	}
}

// TestDoViewMatchesDoRewrite extends the differential to v2 requests:
// the arena path's rewrite stage (matchCtx.rewritePass) must produce
// responses identical to the allocating path's, attributes and residual
// included.
func TestDoViewMatchesDoRewrite(t *testing.T) {
	for _, cache := range []int{-1, 64} {
		snap := testSnapshot()
		snap.Vocab = testVocabulary()
		s := NewServer(snap, Config{CacheSize: cache})
		for _, q := range []string{
			"indiana jones 4 2008 adventure tickets",
			"madagascar 2 before 2009 comedy",
			"recent adventur indy 4", // band + fuzzy genre
			"nothing structured at all",
		} {
			req := match.Request{Query: q, Mode: match.ModeSpan, TopK: 3, Explain: true, Rewrite: true}
			want, errWant := s.Do(req)
			var got match.Response
			errGot := s.DoView(req, func(res *match.Response, _ bool) {
				got = match.CloneResponse(res)
			})
			if errWant != nil || errGot != nil {
				t.Fatalf("cache=%d %q: Do=%v DoView=%v", cache, q, errWant, errGot)
			}
			want.Timing, got.Timing = match.Timing{}, match.Timing{}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("cache=%d %q: rewrite DoView diverged from Do:\n got %+v\nwant %+v", cache, q, got, want)
			}
		}
	}
}

// TestArenaScratchAcrossInstall hammers the uncached (arena-backed)
// DoView path from several goroutines while the main goroutine swaps
// generations. Scratch arenas are pooled per generation, so no request
// may ever observe another generation's arena contents: every response
// must be internally consistent — the probe query's one valid answer
// per generation, never a blend or a clobbered string. With -race this
// is the data-race proof for scratch pooling across Prepare/Install.
func TestArenaScratchAcrossInstall(t *testing.T) {
	s := NewServer(probeSnapshot(0), Config{CacheSize: -1})
	req := match.Request{Query: "probe target tickets"}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := s.DoView(req, func(res *match.Response, cached bool) {
					if cached {
						t.Error("cache hit with caching disabled")
						return
					}
					// The response aliases this request's arena. If another
					// request — same or different generation — were handed
					// the same scratch concurrently, these fields would tear.
					if res.Query != "probe target tickets" ||
						len(res.Matches) != 1 ||
						res.Matches[0].Span != "probe target" ||
						res.Matches[0].EntityID > 1 ||
						res.Remainder != "tickets" {
						t.Errorf("torn arena response: %+v", res)
						return
					}
					// A retained clone must stay valid after visit returns
					// and the arena is reused; verify on the next lap.
					clone := match.CloneResponse(res)
					runtime.Gosched()
					if clone.Query != "probe target tickets" || clone.Matches[0].Span != "probe target" {
						t.Errorf("clone clobbered by arena reuse: %+v", clone)
					}
				})
				if err != nil {
					t.Errorf("DoView: %v", err)
					return
				}
				served.Add(1)
			}
		}()
	}

	deadline := time.Now().Add(2 * time.Second)
	swaps := 0
	for i := 1; time.Now().Before(deadline) || swaps < 4; i++ {
		gen, err := s.Prepare(probeSnapshot(i%2), SnapshotMeta{})
		if err != nil {
			t.Fatal(err)
		}
		s.Install(gen)
		swaps++
		if swaps >= 50 && !time.Now().Before(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no requests served during the install storm")
	}
}

// TestRunPoolCoverage pins the chunked claiming logic: every index in
// [0, n) is visited exactly once for awkward worker/size combinations.
func TestRunPoolCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]atomic.Int32, n)
			runPool(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestRunPoolScales asserts the worker pool actually parallelizes a
// synthetic uniform workload: 8 workers must deliver at least 2x the
// throughput of 1. This is the regression gate for the claiming
// strategy — a per-item atomic serializes workers on one cache line and
// flattens the curve. Skipped on small machines, where the speedup
// physically cannot materialize; CI's bench job runs it on full cores.
func TestRunPoolScales(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs, have %d", runtime.NumCPU())
	}
	const n = 1 << 14
	work := func(i int) {
		// ~1µs of pure CPU: small enough that claiming overhead matters,
		// big enough to be schedulable.
		x := uint64(i)
		for j := 0; j < 600; j++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		sinkUint.Store(x)
	}
	best := func(workers int) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			runPool(workers, n, work)
			if d := time.Since(t0); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	best(8) // warm up the scheduler
	d1, d8 := best(1), best(8)
	speedup := float64(d1) / float64(d8)
	t.Logf("runPool n=%d: workers=1 %v, workers=8 %v (%.1fx)", n, d1, d8, speedup)
	if speedup < 2 {
		t.Errorf("8 workers only %.2fx faster than 1 (want >= 2x)", speedup)
	}
}

// sinkUint defeats dead-code elimination in timing loops.
var sinkUint atomic.Uint64
