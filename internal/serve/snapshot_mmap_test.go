package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"websyn/internal/match"
)

// writeTestSnapshotFile serializes snap at the given layout version into
// a temp file and returns its path and bytes.
func writeTestSnapshotFile(t *testing.T, snap *Snapshot, version byte) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := snap.writeTo(&buf, version); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// TestOpenSnapshotMappedVocabulary pins the v4 section on the mmap
// path: the vocabulary sits after the aligned fuzzy slabs, and the
// mapped reader must decode it identically to the streaming reader.
func TestOpenSnapshotMappedVocabulary(t *testing.T) {
	snap := testSnapshot()
	snap.Vocab = testVocabulary()
	path, _ := writeTestSnapshotFile(t, snap, SnapshotVersion)

	got, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fuzzy.Mapped() {
		t.Errorf("fuzzy index not mapped with vocabulary section present")
	}
	if !reflect.DeepEqual(got.Vocab, snap.Vocab) {
		t.Errorf("mapped vocabulary diverged:\n got %+v\nwant %+v", got.Vocab, snap.Vocab)
	}
}

func TestOpenSnapshotMapped(t *testing.T) {
	snap := testSnapshot()
	path, raw := writeTestSnapshotFile(t, snap, SnapshotVersion)

	got, err := OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Fuzzy.Mapped() {
		t.Errorf("current-version snapshot's fuzzy index not mapped")
	}
	if got.Dataset != snap.Dataset || got.MinSim != snap.MinSim {
		t.Errorf("header diverged: got (%q, %v), want (%q, %v)", got.Dataset, got.MinSim, snap.Dataset, snap.MinSim)
	}
	if !reflect.DeepEqual(got.Canonicals, snap.Canonicals) {
		t.Errorf("Canonicals %v, want %v", got.Canonicals, snap.Canonicals)
	}
	if !reflect.DeepEqual(dumpDict(got.Dict), dumpDict(snap.Dict)) {
		t.Errorf("dictionary content diverged through the mapping")
	}
	// Slab-level equality with the source index, field by field (the
	// backing pin legitimately differs).
	if got.Fuzzy.NumStrings != snap.Fuzzy.NumStrings ||
		!reflect.DeepEqual(got.Fuzzy.Grams, snap.Fuzzy.Grams) ||
		!reflect.DeepEqual(got.Fuzzy.Offsets, snap.Fuzzy.Offsets) ||
		!reflect.DeepEqual(got.Fuzzy.Postings, snap.Fuzzy.Postings) ||
		!reflect.DeepEqual(got.Fuzzy.Mults, snap.Fuzzy.Mults) {
		t.Errorf("mapped fuzzy slabs diverged from the source index")
	}

	// The mapped snapshot must serve byte-identically to the streamed one.
	streamed, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a := NewServer(got, Config{CacheSize: -1})
	b := NewServer(streamed, Config{CacheSize: -1})
	for _, q := range []string{
		"showtimes for indy 4 near san francisco",
		"madagascar 2 trailer",
		"kingdom of the crystal skul",
		"indianna jones 4",
		"mdagascar",
	} {
		for _, mode := range []match.Mode{match.ModeSegment, match.ModeSpan, match.ModeFuzzy} {
			req := match.Request{Query: q, Mode: mode, TopK: 3, Explain: true}
			ra, errA := a.Do(req)
			rb, errB := b.Do(req)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s %q: error divergence %v vs %v", mode, q, errA, errB)
			}
			ra.Timing, rb.Timing = match.Timing{}, match.Timing{}
			if !reflect.DeepEqual(ra, rb) {
				t.Errorf("%s %q: mapped and streamed snapshots disagree:\n got %+v\nwant %+v", mode, q, ra, rb)
			}
		}
	}

	// Whole-file digest must agree with the streaming reader's.
	_, wantSHA, err := ReadSnapshotFileHashed(path)
	if err != nil {
		t.Fatal(err)
	}
	_, gotSHA, err := OpenSnapshotMappedHashed(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotSHA != wantSHA {
		t.Errorf("mapped digest %s, streamed %s", gotSHA, wantSHA)
	}
	_ = raw
}

// TestOpenSnapshotMappedOldVersions pins that pre-raw-layout files still
// open through the mapped entry point — decoded onto the heap, not
// aliased.
func TestOpenSnapshotMappedOldVersions(t *testing.T) {
	for _, ver := range []byte{1, 2} {
		snap := testSnapshot()
		if ver == 1 {
			snap.Fuzzy = nil
		}
		path, _ := writeTestSnapshotFile(t, snap, ver)
		got, err := OpenSnapshotMapped(path)
		if err != nil {
			t.Fatalf("version %d: %v", ver, err)
		}
		if got.Fuzzy.Mapped() {
			t.Errorf("version %d fuzzy index claims to be mapped", ver)
		}
		if ver >= 2 && !reflect.DeepEqual(got.Fuzzy, snap.Fuzzy) {
			t.Errorf("version %d fuzzy index diverged through the mapped reader", ver)
		}
	}
}

func TestOpenSnapshotMappedRejectsCorrupt(t *testing.T) {
	snap := testSnapshot()
	_, raw := writeTestSnapshotFile(t, snap, SnapshotVersion)
	dir := t.TempDir()
	write := func(b []byte) string {
		path := filepath.Join(dir, "corrupt.snap")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Truncations at every interesting boundary.
	for _, n := range []int{0, 3, 5, 16, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		if _, err := OpenSnapshotMapped(write(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Bit flips across the file (every flip breaks the CRC).
	for pos := 0; pos < len(raw); pos += 97 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x40
		if _, err := OpenSnapshotMapped(write(mut)); err == nil {
			t.Errorf("bit flip at %d accepted", pos)
		}
	}
}

// FuzzMmapSnapshotOpen drives arbitrary bytes through the mapped
// snapshot parser. Inputs are parsed twice: once as-is (exercising the
// whole-file CRC gate) and once with the CRC trailer recomputed so the
// mutation survives into the structural parser — the in-place slab
// mapping must reject truncated, bit-flipped and short-header sections
// with an error, never a panic or an out-of-range read.
func FuzzMmapSnapshotOpen(f *testing.F) {
	snap := testSnapshot()
	for _, ver := range []byte{1, 2, 3} {
		var buf bytes.Buffer
		if _, err := snap.writeTo(&buf, ver); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	nofuzz := testSnapshot()
	nofuzz.Fuzzy = nil
	var buf bytes.Buffer
	if _, err := nofuzz.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("WSNP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(b []byte) {
			snap, _, err := snapshotFromMapped(b, &mappedFile{data: b}, false)
			if err != nil || snap == nil || snap.Fuzzy == nil {
				return
			}
			// A structurally accepted fuzzy section must also survive index
			// construction (which walks every posting) without panicking;
			// a validation error is a legitimate outcome.
			_, _ = snap.Dict.NewFuzzyIndexFromPacked(snap.Fuzzy, 0.55)
		}
		check(data)
		if len(data) > 9 {
			fixed := append([]byte(nil), data...)
			binary.BigEndian.PutUint32(fixed[len(fixed)-4:], crc32.ChecksumIEEE(fixed[:len(fixed)-4]))
			check(fixed)
		}
	})
}
