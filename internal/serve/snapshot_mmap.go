package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"sync/atomic"
)

// mappedFile owns one memory-mapped snapshot file. Generations alias
// its pages (the fuzzy posting slabs point straight into it), so it is
// pinned from match-side index structs and unmapped by the garbage
// collector once the last generation referencing it is gone — there is
// deliberately no public Close, because no caller can know when the
// last aliasing response has been dropped.
type mappedFile struct {
	data  []byte
	unmap func() error
	done  atomic.Bool
}

// release unmaps once; the finalizer and tests may both call it.
func (m *mappedFile) release() {
	if m.done.CompareAndSwap(false, true) && m.unmap != nil {
		_ = m.unmap()
	}
}

// OpenSnapshotMapped loads a snapshot with its heavy section served
// straight from the page cache: the file is memory-mapped, checksummed
// once, and a version 3 fuzzy index aliases the mapping in place with
// zero decode work — cold boot cost is O(dictionary), not O(postings),
// and the posting pages stay shared, clean and evictable across every
// process mapping the same file.
//
// Any valid snapshot opens this way; versions below 3 (and version 3
// files without a fuzzy section) simply gain nothing over ReadSnapshot.
// The mapping is released by the garbage collector when nothing built
// from the snapshot references it anymore.
func OpenSnapshotMapped(path string) (*Snapshot, error) {
	snap, _, err := openSnapshotMapped(path, false)
	return snap, err
}

// OpenSnapshotMappedHashed is OpenSnapshotMapped also returning the hex
// SHA-256 of the file bytes — the provenance digest matchd boots with
// and the reload watcher keys change detection on.
func OpenSnapshotMappedHashed(path string) (*Snapshot, string, error) {
	return openSnapshotMapped(path, true)
}

func openSnapshotMapped(path string, wantHash bool) (*Snapshot, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("serve: opening snapshot: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, "", fmt.Errorf("serve: stating snapshot: %w", err)
	}
	size := st.Size()
	if size < int64(len(snapshotMagic))+1+4 {
		return nil, "", fmt.Errorf("serve: snapshot %q too short (%d bytes)", path, size)
	}
	if size > int64(^uint(0)>>1) {
		return nil, "", fmt.Errorf("serve: snapshot %q too large to map", path)
	}
	data, unmap, err := mmapFile(f, int(size))
	if err != nil {
		return nil, "", fmt.Errorf("serve: mapping snapshot: %w", err)
	}
	pin := &mappedFile{data: data, unmap: unmap}
	runtime.SetFinalizer(pin, (*mappedFile).release)
	snap, digest, err := snapshotFromMapped(data, pin, wantHash)
	if err != nil {
		// Nothing aliases the mapping on the error path; release it now.
		runtime.SetFinalizer(pin, nil)
		pin.release()
		return nil, "", err
	}
	return snap, digest, nil
}

// snapshotFromMapped parses a whole serialized snapshot held in memory,
// aliasing the fuzzy section out of data (pinned by pin) when the
// layout allows. Integrity first: one CRC pass over the file rejects
// corruption before any structure is trusted.
func snapshotFromMapped(data []byte, pin any, wantHash bool) (*Snapshot, string, error) {
	if len(data) < len(snapshotMagic)+1+4 {
		return nil, "", fmt.Errorf("serve: snapshot too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.BigEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, "", fmt.Errorf("serve: snapshot checksum mismatch (stored %08x, computed %08x)", got, want)
	}
	digest := ""
	if wantHash {
		sum := sha256.Sum256(data)
		digest = hex.EncodeToString(sum[:])
	}
	cr := &snapReader{r: bytes.NewReader(data)}
	snap, err := readSnapshotFrom(cr, data, pin)
	if err != nil {
		return nil, "", err
	}
	return snap, digest, nil
}
