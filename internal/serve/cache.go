package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a fixed-capacity LRU request cache. It is safe for
// concurrent use; hit/miss counters are maintained for /statsz.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key string
	val MatchResult
}

// newLRU returns a cache holding at most capacity entries. capacity <= 0
// returns nil — a nil *lruCache is a valid always-miss cache, which is
// how caching is disabled.
func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *lruCache) Get(key string) (MatchResult, bool) {
	if c == nil {
		return MatchResult{}, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	var val MatchResult
	if ok {
		c.ll.MoveToFront(el)
		// Copy under the lock: Put may update this entry in place.
		val = el.Value.(*cacheEntry).val
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return MatchResult{}, false
	}
	c.hits.Add(1)
	return val, true
}

// Put stores the result under key, evicting the least recently used
// entry when full.
func (c *lruCache) Put(key string, val MatchResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the current number of cached entries.
func (c *lruCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the cache section of /statsz.
type CacheStats struct {
	Capacity  int     `json:"capacity"`
	Size      int     `json:"size"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats returns a point-in-time view of the cache counters.
func (c *lruCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{
		Capacity:  c.cap,
		Size:      c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
