package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"websyn/internal/match"
)

// lruCache is a fixed-capacity LRU request cache over engine responses,
// keyed on the full match.Request (mode, top-k, thresholds, explain,
// normalized query — see requestKey). It is safe for concurrent use;
// hit/miss counters are maintained for /statsz.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key string
	val match.Response
}

// newLRU returns a cache holding at most capacity entries. capacity <= 0
// returns nil — a nil *lruCache is a valid always-miss cache, which is
// how caching is disabled.
func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached response for key, marking it most recently
// used. The returned value shares its slices with the cache entry:
// callers must treat it as read-only (Server.Do detaches before handing
// a response to library callers; the HTTP tier only marshals it).
func (c *lruCache) Get(key string) (match.Response, bool) {
	if c == nil {
		return match.Response{}, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	var val match.Response
	if ok {
		c.ll.MoveToFront(el)
		// Copy under the lock: Put may update this entry in place.
		val = el.Value.(*cacheEntry).val
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return match.Response{}, false
	}
	c.hits.Add(1)
	return val, true
}

// Put stores the response under key, evicting the least recently used
// entry when full. The value's slices are retained: callers must not
// mutate them afterwards.
func (c *lruCache) Put(key string, val match.Response) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the current number of cached entries.
func (c *lruCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the cache section of /statsz.
type CacheStats struct {
	Capacity  int     `json:"capacity"`
	Size      int     `json:"size"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats returns a point-in-time view of the cache counters.
func (c *lruCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{
		Capacity:  c.cap,
		Size:      c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
