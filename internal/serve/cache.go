package serve

import (
	"runtime"
	"sync"
	"sync/atomic"

	"websyn/internal/match"
)

// requestCache is a fixed-capacity request cache over engine responses,
// keyed on the full match.Request (mode, top-k, thresholds, explain,
// normalized query — see appendRequestKey). It is lock-striped: the key
// hash picks one of a power-of-two number of shards, each with its own
// lock, map and CLOCK ring, so concurrent requests for different keys
// never serialize on one mutex. Within a shard, eviction is CLOCK
// (second chance): a hit only sets an atomic reference bit under a read
// lock — no list surgery, no write lock — and a full shard evicts the
// first entry the clock hand finds with its bit clear, clearing bits as
// it sweeps. Entries are immutable once published (Put replaces, never
// mutates), so a value read under the read lock stays valid after it.
//
// Hit/miss/eviction counters are per shard (summed for /statsz), so the
// hot path never bounces one shared counter cache line across cores.
type requestCache struct {
	shards []cacheShard
	mask   uint64 // len(shards) - 1; len is a power of two
	cap    int    // total configured capacity, for /statsz
}

// cacheShard is one stripe: a map for lookup and a CLOCK ring for
// eviction over the same entries.
type cacheShard struct {
	mu    sync.RWMutex
	cap   int
	items map[string]*clockEntry
	ring  []*clockEntry
	hand  int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// Pad shards apart so one shard's lock and counters cannot false-share
	// a cache line with its neighbor's.
	_ [24]byte
}

// clockEntry is one cached response. The entry is immutable after
// publication except for ref, the CLOCK reference bit: Get sets it,
// the sweeping hand clears it.
type clockEntry struct {
	key  string
	val  match.Response
	slot int // index in the shard's ring, for in-place replacement
	ref  atomic.Bool
}

// cacheShardCount resolves the shard count for a capacity: requested <=
// 0 picks one shard per CPU (GOMAXPROCS), capped so every shard holds
// at least 8 entries; an explicit request is honored up to one entry
// per shard. The result is always a power of two (rounded down), so
// shard selection is a mask, not a modulo.
func cacheShardCount(requested, capacity int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		for n > 1 && capacity/n < 8 {
			n /= 2
		}
	}
	if n > capacity {
		n = capacity
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// newRequestCache returns a cache holding at most capacity entries
// across cacheShardCount(shards, capacity) stripes. capacity <= 0
// returns nil — a nil *requestCache is a valid always-miss cache, which
// is how caching is disabled.
func newRequestCache(capacity, shards int) *requestCache {
	if capacity <= 0 {
		return nil
	}
	n := cacheShardCount(shards, capacity)
	perShard := (capacity + n - 1) / n
	c := &requestCache{shards: make([]cacheShard, n), mask: uint64(n - 1), cap: capacity}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = perShard
		sh.items = make(map[string]*clockEntry, perShard)
		sh.ring = make([]*clockEntry, 0, perShard)
	}
	return c
}

// cacheKeyHash is FNV-1a over the key bytes — cheap, allocation-free,
// and well mixed in the low bits the shard mask keeps.
//
//websyn:hotpath
func cacheKeyHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Get returns the cached response for key, setting its reference bit.
// The pointer aims straight into the cache entry — no copy, so a hit
// allocates nothing. Entries are immutable and individually heap-owned
// (eviction only drops the shard's references), so the pointed-to value
// stays valid after Get returns; callers must treat it as strictly
// read-only (Server.Do detaches before handing a response to library
// callers; the HTTP tier only marshals it). The key is borrowed for the
// duration of the call, never retained — callers may pass a stack
// buffer.
//
//websyn:hotpath
func (c *requestCache) Get(key []byte) (*match.Response, bool) {
	if c == nil {
		return nil, false
	}
	sh := &c.shards[cacheKeyHash(key)&c.mask]
	sh.mu.RLock()
	e := sh.items[string(key)] // compiler elides the []byte->string copy
	sh.mu.RUnlock()
	if e == nil {
		sh.misses.Add(1)
		return nil, false
	}
	e.ref.Store(true)
	sh.hits.Add(1)
	return &e.val, true
}

// Put stores the response under key, evicting by CLOCK second chance
// when the shard is full. The value's slices are retained: callers must
// not mutate them afterwards. The key bytes are copied.
func (c *requestCache) Put(key []byte, val match.Response) {
	if c == nil {
		return
	}
	sh := &c.shards[cacheKeyHash(key)&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.items[string(key)]; ok {
		// Replace, never mutate: a concurrent Get may hold old.val.
		e := &clockEntry{key: old.key, val: val, slot: old.slot}
		e.ref.Store(true)
		sh.ring[old.slot] = e
		sh.items[e.key] = e
		return
	}
	e := &clockEntry{key: string(key), val: val}
	if len(sh.ring) < sh.cap {
		e.slot = len(sh.ring)
		sh.ring = append(sh.ring, e)
		sh.items[e.key] = e
		return
	}
	// Second chance: sweep the hand, clearing reference bits, until an
	// unreferenced entry turns up. Concurrent Gets can re-set bits the
	// hand just cleared, so bound the sweep at two full revolutions and
	// then evict whatever the hand rests on.
	for spins := 0; ; spins++ {
		victim := sh.ring[sh.hand]
		if !victim.ref.Load() || spins >= 2*len(sh.ring) {
			delete(sh.items, victim.key)
			sh.evictions.Add(1)
			e.slot = sh.hand
			sh.ring[sh.hand] = e
			sh.items[e.key] = e
			sh.hand = (sh.hand + 1) % len(sh.ring)
			return
		}
		victim.ref.Store(false)
		sh.hand = (sh.hand + 1) % len(sh.ring)
	}
}

// Len returns the current number of cached entries across all shards.
func (c *requestCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.ring)
		sh.mu.RUnlock()
	}
	return n
}

// CacheStats is the cache section of /statsz.
type CacheStats struct {
	Capacity int `json:"capacity"`
	Size     int `json:"size"`
	// Shards is the number of lock stripes; ShardSizes the entry count
	// per stripe (index = shard). Both are omitted when caching is
	// disabled.
	Shards     int    `json:"shards,omitempty"`
	ShardSizes []int  `json:"shard_sizes,omitempty"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	// SingleflightHits counts requests served by another in-flight
	// request's engine run instead of their own; SingleflightShared
	// counts engine runs whose result was handed to at least one such
	// waiter. Both stay zero until a concurrent duplicate miss occurs.
	SingleflightHits   uint64  `json:"singleflight_hits,omitempty"`
	SingleflightShared uint64  `json:"singleflight_shared,omitempty"`
	HitRate            float64 `json:"hit_rate"`
}

// Stats returns a point-in-time view of the cache counters.
func (c *requestCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	s := CacheStats{
		Capacity:   c.cap,
		Shards:     len(c.shards),
		ShardSizes: make([]int, len(c.shards)),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		s.ShardSizes[i] = len(sh.ring)
		sh.mu.RUnlock()
		s.Size += s.ShardSizes[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evictions.Load()
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
