//go:build !unix

package serve

import (
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap reads the file into one
// heap buffer instead. Callers see the same contract — a byte slice
// covering the file plus a release function — just without page-cache
// sharing; the in-place aliasing still works because the buffer is
// heap-aligned.
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
