package serve

import (
	"strconv"
	"sync/atomic"
	"testing"

	"websyn/internal/match"
)

// BenchmarkCacheContended hammers the request cache from all CPUs with
// a Get-dominant mix (one Put per 64 operations, as a warm production
// cache sees). The sub-benchmarks contrast a single stripe — every hit
// serializes on one RWMutex — against the auto per-CPU stripe count,
// which is the scaling win the lock-striped layout exists for.
func BenchmarkCacheContended(b *testing.B) {
	const (
		capacity = 1024
		keyCount = 512
	)
	keys := make([][]byte, keyCount)
	vals := make([]match.Response, keyCount)
	for i := range keys {
		k := "bench-key-" + strconv.Itoa(i)
		keys[i] = []byte(k)
		vals[i] = match.Response{Query: k}
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"shards-1", 1},
		{"shards-auto", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := newRequestCache(capacity, tc.shards)
			for i := range keys {
				c.Put(keys[i], vals[i])
			}
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Offset each goroutine's walk so they contend on
				// different keys most of the time, as real traffic does.
				i := int(seq.Add(1)) * 7919
				for pb.Next() {
					k := keys[i%keyCount]
					if _, ok := c.Get(k); !ok || i%64 == 0 {
						c.Put(k, vals[i%keyCount])
					}
					i++
				}
			})
		})
	}
}
