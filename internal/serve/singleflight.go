package serve

import (
	"sync"
	"sync/atomic"

	"websyn/internal/match"
)

// flightGroup collapses concurrent identical cache misses into one
// engine run. It is scoped per generation (like the request cache), so
// a request pinned to an old generation can never be handed a result
// computed against a new dictionary, or vice versa.
//
// The API is split into join/finish instead of taking a compute
// callback so the hot path (doGenView, //websyn:hotpath) stays free of
// capturing closures: the first caller to join a key becomes the
// leader, runs the engine itself, and must call finish exactly once;
// every later caller joining before finish blocks on wait and receives
// the leader's result.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall

	// hits counts requests served by another request's engine run
	// (followers); shared counts leader runs that had at least one
	// follower. Reported under /statsz cache as singleflight_hits and
	// singleflight_shared.
	hits   atomic.Uint64
	shared atomic.Uint64
}

// flightCall is one in-flight computation.
type flightCall struct {
	key     string
	done    chan struct{}
	waiters atomic.Int32
	res     match.Response
	err     error
}

// join registers interest in key. leader reports whether the caller
// owns the computation: a leader must call finish exactly once; a
// follower waits on the returned call. The key bytes are only retained
// by a leader (copied into the call), so callers may pass a stack
// buffer.
func (fg *flightGroup) join(key []byte) (c *flightCall, leader bool) {
	fg.mu.Lock()
	if fg.m == nil {
		fg.m = make(map[string]*flightCall)
	}
	if c = fg.m[string(key)]; c != nil {
		c.waiters.Add(1)
		fg.mu.Unlock()
		return c, false
	}
	c = &flightCall{key: string(key), done: make(chan struct{})}
	fg.m[c.key] = c
	fg.mu.Unlock()
	return c, true
}

// finish publishes the leader's result and releases every follower.
// The call is unregistered before done is closed, so a request arriving
// after finish starts a fresh flight (and, on the success path, finds
// the response already cached — the leader stores it before finishing).
func (fg *flightGroup) finish(c *flightCall, res match.Response, err error) {
	c.res, c.err = res, err
	fg.mu.Lock()
	delete(fg.m, c.key)
	fg.mu.Unlock()
	// No follower can join past this point (the call is unregistered),
	// so the waiter count is final.
	if c.waiters.Load() > 0 {
		fg.shared.Add(1)
	}
	close(c.done)
}

// wait blocks until the leader finishes and returns its result. The
// response shares its slices with the cache entry the leader stored:
// read-only, stable heap memory.
func (c *flightCall) wait() (match.Response, error) {
	<-c.done
	return c.res, c.err
}
