package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"websyn/internal/match"
)

// Registry is the multi-domain serving tier: one process, many
// structured verticals. Each registered domain owns a complete Server —
// its own generation handle (dictionary, packed fuzzy shards, engine,
// entity table, request cache) and, via internal/serve/reload, its own
// snapshot watcher — so movies can hot-swap a new dictionary while
// cameras keeps serving, and a reload failure in one vertical cannot
// touch another.
//
// Request routing on POST /v1/match:
//
//   - "domain": "movies" — exact route to that domain; the response is
//     stamped with the domain that answered.
//   - "domains": ["movies", "cameras"] or ["*"] — fan the query out
//     across the named (or all) domains in parallel and merge the span
//     matches by score into one federated response, every match carrying
//     its domain of origin.
//   - neither field — fan out across every registered domain. With a
//     single registered domain this degenerates to an unstamped exact
//     route, which is how legacy single-snapshot deployments keep their
//     byte-identical responses behind a default domain.
//
// The legacy endpoints (GET /match, POST /match/batch, GET /fuzzy,
// GET /synonyms) route to the default domain, or to ?domain=<name> when
// given. Domains are registered at boot, before Mount; the set is
// immutable while serving (per-domain snapshots hot-swap inside their
// Server instead).
type Registry struct {
	cfg     Config
	start   time.Time
	domains map[string]*Server
	names   []string // registration order — the deterministic fan-out order
	def     string

	v1Reqs    atomic.Uint64
	v1Queries atomic.Uint64
	v2Reqs    atomic.Uint64
	v2Queries atomic.Uint64
	fanouts   atomic.Uint64
	v1Lat     latencyRecorder
	v2Lat     latencyRecorder

	// fedPool recycles the per-request scratch of federated fan-outs
	// (see fedScratch), so steady-state federation does not allocate
	// bookkeeping per query.
	fedPool sync.Pool
}

// NewRegistry returns an empty registry; cfg applies to every domain
// Server subsequently built by Add, and to the registry's own batch
// fan-out pool.
func NewRegistry(cfg Config) *Registry {
	reg := &Registry{
		cfg:     cfg.withDefaults(),
		start:   time.Now(),
		domains: make(map[string]*Server),
	}
	reg.fedPool.New = func() any { return new(fedScratch) }
	return reg
}

// validDomainName rejects names the routing grammar reserves: "*" is
// the fan-out wildcard, '=' and ',' are flag/manifest syntax, and
// whitespace would make URLs and logs ambiguous.
func validDomainName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty domain name")
	}
	if name == "*" || strings.ContainsAny(name, "=, \t\n") {
		return fmt.Errorf("serve: invalid domain name %q (no '*', '=', ',' or whitespace)", name)
	}
	return nil
}

// Add builds a Server for one domain from its snapshot and registers it.
// The first domain added becomes the default (see SetDefault). Not safe
// to call once the registry is serving.
func (reg *Registry) Add(name string, snap *Snapshot, meta SnapshotMeta) (*Server, error) {
	if err := validDomainName(name); err != nil {
		return nil, err
	}
	if _, dup := reg.domains[name]; dup {
		return nil, fmt.Errorf("serve: domain %q registered twice", name)
	}
	if snap == nil || snap.Dict == nil {
		return nil, fmt.Errorf("serve: domain %q: nil snapshot", name)
	}
	srv := NewServerWithMeta(snap, reg.cfg, meta)
	reg.domains[name] = srv
	reg.names = append(reg.names, name)
	if reg.def == "" {
		reg.def = name
	}
	return srv, nil
}

// SetDefault names the domain legacy (domainless) endpoints route to.
func (reg *Registry) SetDefault(name string) error {
	if _, ok := reg.domains[name]; !ok {
		return fmt.Errorf("serve: default domain %q not registered (have %s)", name, strings.Join(reg.names, ", "))
	}
	reg.def = name
	return nil
}

// Domain returns the named domain's server.
func (reg *Registry) Domain(name string) (*Server, bool) {
	s, ok := reg.domains[name]
	return s, ok
}

// Default returns the default domain's server (nil before the first Add).
func (reg *Registry) Default() *Server { return reg.domains[reg.def] }

// DefaultName returns the default domain's name.
func (reg *Registry) DefaultName() string { return reg.def }

// Names returns the registered domain names in registration order.
func (reg *Registry) Names() []string {
	return append([]string(nil), reg.names...)
}

// target pairs a domain name with its server for routing.
type target struct {
	name string
	srv  *Server
}

// all returns every domain in registration order.
func (reg *Registry) all() []target {
	out := make([]target, 0, len(reg.names))
	for _, n := range reg.names {
		out = append(out, target{n, reg.domains[n]})
	}
	return out
}

// resolve expands a domains list into targets: "*" means every domain,
// duplicates collapse (first occurrence keeps its position), unknown
// names are an error.
func (reg *Registry) resolve(names []string) ([]target, error) {
	seen := make(map[string]bool, len(names))
	var out []target
	for _, n := range names {
		if n == "*" {
			for _, t := range reg.all() {
				if !seen[t.name] {
					seen[t.name] = true
					out = append(out, t)
				}
			}
			continue
		}
		if seen[n] {
			continue
		}
		srv, ok := reg.domains[n]
		if !ok {
			return nil, fmt.Errorf("unknown domain %q (registered: %s)", n, strings.Join(reg.names, ", "))
		}
		seen[n] = true
		out = append(out, target{n, srv})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("domains resolves to no domain")
	}
	return out, nil
}

// Handler returns the registry's HTTP API (see Mount).
func (reg *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	reg.Mount(mux)
	return mux
}

// Mount registers the multi-domain HTTP API:
//
//	POST /v1/match           — domain-routed and federated matching
//	POST /v2/match           — v1 plus attribute predicates + residual
//	GET  /match?q=           — deprecated: default domain (or ?domain=<name>)
//	POST /match/batch        — deprecated: default domain (or ?domain=<name>)
//	GET  /fuzzy?q=           — deprecated: default domain (or ?domain=<name>)
//	GET  /synonyms?u=        — legacy: default domain (or ?domain=<name>)
//	GET  /statsz             — registry counters + per-domain stats
//	GET  /admin/snapshot     — all domains' provenance (or ?domain=<name>)
//	GET  /healthz            — liveness
//
// POST /admin/reload and GET /admin/reload/status are served per domain
// by the reload subsystem; see internal/serve/reload.Group.Mount.
func (reg *Registry) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/match", reg.handleV1Match)
	mux.HandleFunc("POST /v2/match", reg.handleV2Match)
	mux.HandleFunc("GET /match", deprecated(reg.delegate((*Server).handleMatch)))
	mux.HandleFunc("POST /match/batch", deprecated(reg.delegate((*Server).handleBatch)))
	mux.HandleFunc("GET /fuzzy", deprecated(reg.delegate((*Server).handleFuzzy)))
	mux.HandleFunc("GET /synonyms", reg.delegate((*Server).handleSynonyms))
	mux.HandleFunc("GET /statsz", reg.handleStatsz)
	mux.HandleFunc("GET /admin/snapshot", reg.handleAdminSnapshot)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeText(w, "ok\n")
	})
}

// delegate wraps a Server handler with ?domain= resolution, defaulting
// to the default domain — the legacy endpoints' multi-domain story.
func (reg *Registry) delegate(h func(*Server, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		srv := reg.Default()
		if name := r.URL.Query().Get("domain"); name != "" {
			var ok bool
			if srv, ok = reg.domains[name]; !ok {
				http.Error(w, fmt.Sprintf("unknown domain %q (registered: %s)", name, strings.Join(reg.names, ", ")),
					http.StatusNotFound)
				return
			}
		}
		h(srv, w, r)
	}
}

func (reg *Registry) handleV1Match(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeV1(w, r, v1BodyLimit(reg.cfg.MaxBatch))
	if !ok {
		return
	}
	if req.Domain != "" && len(req.Domains) > 0 {
		writeV1Error(w, http.StatusBadRequest, "domain and domains are mutually exclusive")
		return
	}
	items, status, msg := v1Items(req, reg.cfg.MaxBatch)
	if msg != "" {
		writeV1Error(w, status, "%s", msg)
		return
	}
	// Resolve the batch-level fan-out once; items carrying their own
	// domain (directly or inherited from the top-level field) take an
	// exact route instead. explicit records whether the client asked for
	// domain routing by name — a single-target fan-out only stamps
	// provenance then, so domainless traffic against a single-domain
	// registry stays byte-identical to a standalone server.
	fan := reg.all()
	explicit := len(req.Domains) > 0
	if explicit {
		var err error
		if fan, err = reg.resolve(req.Domains); err != nil {
			writeV1Error(w, http.StatusBadRequest, "%s", err)
			return
		}
	}

	reg.v1Reqs.Add(1)
	reg.v1Queries.Add(uint64(len(items)))
	t0 := time.Now()
	results := make([]V1Result, len(items))
	runPool(reg.cfg.BatchWorkers, len(items), func(i int) {
		results[i] = reg.routeItem(fan, items[i], explicit)
	})
	reg.v1Lat.observe(time.Since(t0))
	writeJSON(w, V1Response{Count: len(results), Results: results})
}

// routeItem answers one item against a resolved fan-out: an item pinned
// to a domain takes an exact (stamped) route, a single-target fan
// degenerates to one route, anything else federates.
func (reg *Registry) routeItem(fan []target, it match.Request, explicit bool) V1Result {
	if it.Domain != "" {
		srv, ok := reg.domains[it.Domain]
		if !ok {
			return V1Result{Error: fmt.Sprintf("unknown domain %q (registered: %s)", it.Domain, strings.Join(reg.names, ", "))}
		}
		return reg.routeOne(target{it.Domain, srv}, it, true)
	}
	if len(fan) == 1 {
		return reg.routeOne(fan[0], it, explicit)
	}
	return reg.federate(fan, it)
}

// DoItem answers one routed /v1/match item programmatically — the entry
// point the fleet wire protocol calls into. domains is the item's
// fan-out list (nil or empty = every registered domain), with the same
// grammar as the HTTP field: names or "*". Routing errors are per-item,
// exactly as the HTTP surface reports them.
func (reg *Registry) DoItem(it match.Request, domains []string) V1Result {
	fan := reg.all()
	explicit := len(domains) > 0
	if explicit {
		var err error
		if fan, err = reg.resolve(domains); err != nil {
			return V1Result{Error: err.Error()}
		}
	}
	return reg.routeItem(fan, it, explicit)
}

// routeOne answers one item on one domain. stamp marks the response with
// the domain that answered; it is false only for domainless traffic on a
// single-domain registry, where legacy byte-identity is the contract.
// Stamping mutates only the response value copy, never cache-shared
// slices, so the cached response stays domain-neutral.
func (reg *Registry) routeOne(t target, it match.Request, stamp bool) V1Result {
	t.srv.routedQueries.Add(1)
	res, cached, err := t.srv.do(it)
	if err != nil {
		return V1Result{Error: err.Error()}
	}
	if stamp {
		res.Domain = t.name
	}
	return V1Result{Response: &res, Cached: cached}
}

// fedLeg is one domain's answer inside a federated fan-out. The
// response may share slices with that domain's request cache:
// read-only.
type fedLeg struct {
	res    match.Response
	cached bool
	err    error
}

// fedScratch is the pooled per-request bookkeeping of a federated
// fan-out. It is cleared before going back to the pool so a parked
// scratch never pins a retired generation's cached responses.
type fedScratch struct {
	legs []fedLeg
}

// inlineFanout is the fan-out width up to which federate runs the legs
// inline on the calling worker instead of dispatching to the pool: a
// cached per-domain match is about a microsecond, far below the cost of
// waking pool workers, and the caller is already one of the batch
// pool's workers (handleV1Match fans items out through runPool).
const inlineFanout = 4

// federate fans one item out across the targets and merges the
// per-domain responses into one: span matches from every domain,
// ordered by score (best evidence first, regardless of vertical), each
// stamped with the domain that produced it. The federated remainder is
// the winning domain's — the leftover text as seen by the vertical with
// the strongest match — or the full query when nothing matched anywhere.
//
// Domain stamping happens while copying each leg's matches into the
// merged response, so the per-domain responses — which may be shared
// with their domain's request cache — are never written to, and the old
// detach-then-stamp double copy is gone. Per-query bookkeeping (the leg
// table) comes from the registry's scratch pool.
func (reg *Registry) federate(targets []target, it match.Request) V1Result {
	reg.fanouts.Add(1)
	t0 := time.Now()
	fs := reg.fedPool.Get().(*fedScratch)
	legs := fs.legs
	if cap(legs) < len(targets) {
		legs = make([]fedLeg, len(targets))
	} else {
		legs = legs[:len(targets)]
	}
	defer func() {
		for i := range legs {
			legs[i] = fedLeg{}
		}
		fs.legs = legs[:0]
		reg.fedPool.Put(fs)
	}()

	if len(targets) <= inlineFanout {
		for i := range targets {
			t := targets[i]
			t.srv.routedQueries.Add(1)
			legs[i].res, legs[i].cached, legs[i].err = t.srv.do(it)
		}
	} else {
		runPool(reg.cfg.BatchWorkers, len(targets), func(i int) {
			t := targets[i]
			t.srv.routedQueries.Add(1)
			legs[i].res, legs[i].cached, legs[i].err = t.srv.do(it)
		})
	}

	// Request validation is domain-independent: an invalid item fails
	// identically everywhere, so the first leg's error speaks for all.
	for i := range legs {
		if legs[i].err != nil {
			return V1Result{Error: legs[i].err.Error()}
		}
	}

	out := match.Response{Query: legs[0].res.Query}
	nMatches, nTrace := 0, 0
	for i := range legs {
		nMatches += len(legs[i].res.Matches)
		nTrace += len(legs[i].res.Trace)
	}
	if nMatches > 0 {
		out.Matches = make([]match.SpanMatch, 0, nMatches)
	}
	if nTrace > 0 {
		out.Trace = make([]match.TraceStep, 0, nTrace)
	}
	allCached := true
	for i := range legs {
		leg := &legs[i]
		name := targets[i].name
		mb := len(out.Matches)
		out.Matches = append(out.Matches, leg.res.Matches...)
		for j := mb; j < len(out.Matches); j++ {
			out.Matches[j].Domain = name
		}
		tb := len(out.Trace)
		out.Trace = append(out.Trace, leg.res.Trace...)
		for j := tb; j < len(out.Trace); j++ {
			out.Trace[j].Domain = name
		}
		out.Timing.SegmentMicros += leg.res.Timing.SegmentMicros
		out.Timing.FuzzyMicros += leg.res.Timing.FuzzyMicros
		allCached = allCached && leg.cached
	}
	sort.SliceStable(out.Matches, func(i, j int) bool {
		a, b := out.Matches[i], out.Matches[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Similarity != b.Similarity {
			return a.Similarity > b.Similarity
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.Start < b.Start
	})
	// Attributes and residual follow the remainder rule: the winning
	// domain — the vertical that produced the best span match — speaks
	// for the structured part of the query too. Predicates from the
	// other verticals' vocabularies are dropped, never merged: "2008"
	// must not surface as a camera price band just because the cameras
	// domain also ran. With no match anywhere, the first fan-out target
	// (the default domain on an implicit fan) answers.
	winner := 0
	if len(out.Matches) > 0 {
		for i := range targets {
			if targets[i].name == out.Matches[0].Domain {
				winner = i
				break
			}
		}
	}
	out.Remainder = legs[winner].res.Remainder
	if attrs := legs[winner].res.Attributes; len(attrs) > 0 {
		out.Attributes = make([]match.Predicate, len(attrs))
		copy(out.Attributes, attrs)
		for j := range out.Attributes {
			out.Attributes[j].Domain = targets[winner].name
		}
	}
	out.Residual = legs[winner].res.Residual
	out.Timing.TotalMicros = float64(time.Since(t0).Nanoseconds()) / 1e3
	return V1Result{Response: &out, Cached: allCached}
}

// RegistryStats is the JSON shape of the registry's GET /statsz: the
// registry-level routing counters plus every domain's full Stats (each
// domain's cache, dictionary, generation and latency numbers are its
// own — a hot swap in one vertical resets only that vertical's cache
// stats).
type RegistryStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	DefaultDomain string  `json:"default_domain"`
	DomainCount   int     `json:"domain_count"`
	Requests      struct {
		// V1 counts POST /v1/match requests; V1Queries the items they
		// carried; FanoutQueries the items answered by a multi-domain
		// federated merge. V2/V2Queries count POST /v2/match traffic,
		// omitted (zero) until the first v2 request.
		V1            uint64 `json:"v1"`
		V1Queries     uint64 `json:"v1_queries"`
		V2            uint64 `json:"v2,omitempty"`
		V2Queries     uint64 `json:"v2_queries,omitempty"`
		FanoutQueries uint64 `json:"fanout_queries"`
	} `json:"requests"`
	Latency struct {
		V1 LatencyStats `json:"v1"`
		// V2 appears once /v2/match has served a request.
		V2 *LatencyStats `json:"v2,omitempty"`
	} `json:"latency"`
	Domains map[string]Stats `json:"domains"`
}

// Stats returns a point-in-time view of the registry and all domains.
func (reg *Registry) Stats() RegistryStats {
	var st RegistryStats
	st.UptimeSeconds = time.Since(reg.start).Seconds()
	st.DefaultDomain = reg.def
	st.DomainCount = len(reg.names)
	st.Requests.V1 = reg.v1Reqs.Load()
	st.Requests.V1Queries = reg.v1Queries.Load()
	st.Requests.V2 = reg.v2Reqs.Load()
	st.Requests.V2Queries = reg.v2Queries.Load()
	st.Requests.FanoutQueries = reg.fanouts.Load()
	st.Latency.V1 = reg.v1Lat.snapshot()
	if st.Requests.V2 > 0 {
		v2 := reg.v2Lat.snapshot()
		st.Latency.V2 = &v2
	}
	st.Domains = make(map[string]Stats, len(reg.names))
	for name, srv := range reg.domains {
		st.Domains[name] = srv.Stats()
	}
	return st
}

func (reg *Registry) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, reg.Stats())
}

// SnapshotInfos returns every domain's live generation provenance.
func (reg *Registry) SnapshotInfos() map[string]SnapshotInfo {
	out := make(map[string]SnapshotInfo, len(reg.names))
	for name, srv := range reg.domains {
		out[name] = srv.SnapshotInfo()
	}
	return out
}

// handleAdminSnapshot serves all domains' provenance as a name-keyed
// map, or a single domain's SnapshotInfo with ?domain=<name>.
func (reg *Registry) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("domain"); name != "" {
		srv, ok := reg.domains[name]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown domain %q (registered: %s)", name, strings.Join(reg.names, ", ")),
				http.StatusNotFound)
			return
		}
		writeJSON(w, srv.SnapshotInfo())
		return
	}
	writeJSON(w, reg.SnapshotInfos())
}
