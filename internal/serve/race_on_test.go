//go:build race

package serve

// raceEnabled reports whether this test binary was built with -race.
// Allocation-budget tests skip under race: the instrumentation disables
// the inlining (map-access string elision, mid-stack visit calls) the
// zero-alloc paths rely on, so allocs/op is not meaningful there. The
// non-race CI job and the bench gate hold the budget.
const raceEnabled = true
