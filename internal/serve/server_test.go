package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"websyn/internal/match"
)

func testServer(cfg Config) *Server {
	return NewServer(testSnapshot(), cfg)
}

func TestMatchUsesCache(t *testing.T) {
	s := testServer(Config{CacheSize: 16})
	first := s.Match("indy 4 showtimes")
	if first.Cached {
		t.Fatal("first request claimed a cache hit")
	}
	if len(first.Matches) == 0 || first.Matches[0].EntityID != 0 {
		t.Fatalf("unexpected match: %+v", first)
	}
	second := s.Match("Indy   4 showtimes") // same normalized key
	if !second.Cached {
		t.Fatal("second request missed the cache")
	}
	second.Cached = false
	if !jsonEqual(t, first, second) {
		t.Fatalf("cached response diverged:\n%+v\n%+v", first, second)
	}
	st := s.gen.Load().cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestMatchCacheDisabled(t *testing.T) {
	s := testServer(Config{CacheSize: -1})
	s.Match("indy 4")
	if r := s.Match("indy 4"); r.Cached {
		t.Fatal("disabled cache produced a hit")
	}
}

func TestMatchBatchOrderAndResults(t *testing.T) {
	s := testServer(Config{BatchWorkers: 4})
	queries := make([]string, 150)
	for i := range queries {
		switch i % 3 {
		case 0:
			queries[i] = fmt.Sprintf("indy 4 tickets %d", i)
		case 1:
			queries[i] = fmt.Sprintf("madagascar 2 %d", i)
		default:
			queries[i] = fmt.Sprintf("nothing here %d", i)
		}
	}
	got := s.MatchBatch(queries)
	if len(got) != len(queries) {
		t.Fatalf("%d results for %d queries", len(got), len(queries))
	}
	for i, r := range got {
		want := s.Match(queries[i])
		want.Cached = false
		r.Cached = false
		if !jsonEqual(t, want, r) {
			t.Fatalf("result %d diverged:\n got %+v\nwant %+v", i, r, want)
		}
	}
}

func TestHTTPMatch(t *testing.T) {
	ts := httptest.NewServer(testServer(Config{}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/match?q=indy+4+near+san+francisco")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var mr MatchResult
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Matches) != 1 || mr.Matches[0].Span != "indy 4" {
		t.Fatalf("bad match payload: %+v", mr)
	}
	if mr.Remainder != "near san francisco" {
		t.Fatalf("remainder %q", mr.Remainder)
	}

	if resp, err := http.Get(ts.URL + "/match"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("missing q: status %d", resp.StatusCode)
		}
	}
}

func TestHTTPBatch(t *testing.T) {
	srv := testServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Acceptance: >= 100 queries in one request, per-query segmentations.
	queries := make([]string, 120)
	for i := range queries {
		queries[i] = fmt.Sprintf("madagascar 2 dvd %d", i)
	}
	body, _ := json.Marshal(BatchRequest{Queries: queries})
	resp, err := http.Post(ts.URL+"/match/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 120 || len(br.Results) != 120 {
		t.Fatalf("count %d, %d results", br.Count, len(br.Results))
	}
	for i, r := range br.Results {
		if len(r.Matches) == 0 || r.Matches[0].EntityID != 1 {
			t.Fatalf("result %d unmatched: %+v", i, r)
		}
	}

	// Error paths.
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"empty", `{"queries":[]}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/match/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	// Over the batch limit.
	small := NewServer(testSnapshot(), Config{MaxBatch: 10})
	ts2 := httptest.NewServer(small.Handler())
	defer ts2.Close()
	resp2, err := http.Post(ts2.URL+"/match/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d", resp2.StatusCode)
	}

	// Over the byte limit (scales with MaxBatch: 1MB + 512*10 here).
	huge, _ := json.Marshal(BatchRequest{Queries: []string{strings.Repeat("x ", 1<<20)}})
	resp3, err := http.Post(ts2.URL+"/match/batch", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp3.StatusCode)
	}
}

// TestMatchResultIsolatedFromCache guards against callers mutating a
// returned result corrupting the cache (and vice versa).
func TestMatchResultIsolatedFromCache(t *testing.T) {
	s := testServer(Config{CacheSize: 16})
	first := s.Match("indy 4")
	if len(first.Matches) == 0 {
		t.Fatal("no match")
	}
	first.Matches[0].Canonical = "MUTATED"

	second := s.Match("indy 4")
	if !second.Cached {
		t.Fatal("expected cache hit")
	}
	if second.Matches[0].Canonical == "MUTATED" {
		t.Fatal("caller mutation leaked into the cache")
	}
	second.Matches[0].Canonical = "MUTATED AGAIN"
	if third := s.Match("indy 4"); third.Matches[0].Canonical == "MUTATED AGAIN" {
		t.Fatal("mutation of a cache-hit result leaked into the cache")
	}
}

func TestHTTPFuzzyAndSynonyms(t *testing.T) {
	ts := httptest.NewServer(testServer(Config{}).Handler())
	defer ts.Close()

	var fr FuzzyResult
	getJSON(t, ts.URL+"/fuzzy?q=madagascar2", &fr)
	if len(fr.Hits) < 2 || fr.Hits[0].Text != "madagascar" || fr.Hits[1].Text != "madagascar 2" {
		t.Fatalf("fuzzy hits: %+v", fr.Hits)
	}
	if fr.Hits[0].EntityID != 2 || fr.Hits[1].EntityID != 1 {
		t.Fatalf("fuzzy hit entities: %+v", fr.Hits)
	}

	var sr SynonymsResult
	getJSON(t, ts.URL+"/synonyms?u=Madagascar:+Escape+2+Africa", &sr)
	if sr.Input != "Madagascar: Escape 2 Africa" || len(sr.Synonyms) != 1 {
		t.Fatalf("synonyms: %+v", sr)
	}

	resp, err := http.Get(ts.URL + "/synonyms?u=unknown+title")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown canonical: status %d", resp.StatusCode)
	}
}

func TestHTTPStatsz(t *testing.T) {
	srv := testServer(Config{CacheSize: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/match?q=indy+4")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	body, _ := json.Marshal(BatchRequest{Queries: []string{"madagascar 2", "indy 4"}})
	resp, err := http.Post(ts.URL+"/match/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var st Stats
	getJSON(t, ts.URL+"/statsz", &st)
	if st.Dataset != "Movies" {
		t.Errorf("dataset %q", st.Dataset)
	}
	if st.Requests.Match != 3 || st.Requests.Batch != 1 || st.Requests.BatchQueries != 2 {
		t.Errorf("request counters: %+v", st.Requests)
	}
	if st.Cache.Hits < 2 {
		t.Errorf("cache hits %d, want >= 2", st.Cache.Hits)
	}
	if st.Cache.Shards < 1 || len(st.Cache.ShardSizes) != st.Cache.Shards {
		t.Errorf("cache shard stats: %+v", st.Cache)
	}
	sum := 0
	for _, n := range st.Cache.ShardSizes {
		sum += n
	}
	if sum != st.Cache.Size {
		t.Errorf("shard sizes sum %d, size %d", sum, st.Cache.Size)
	}
	// Sequential requests never collapse: the singleflight counters must
	// exist in the payload but stay zero here.
	if st.Cache.SingleflightHits != 0 || st.Cache.SingleflightShared != 0 {
		t.Errorf("singleflight counters moved on sequential traffic: %+v", st.Cache)
	}
	if st.Latency.Match.Count != 3 || st.Latency.Match.MeanMicros <= 0 {
		t.Errorf("match latency: %+v", st.Latency.Match)
	}
	if st.Dictionary.Entries == 0 || st.Dictionary.FuzzyShards == 0 {
		t.Errorf("dictionary stats: %+v", st.Dictionary)
	}
}

// TestServerConcurrentMixedLoad drives every endpoint concurrently; with
// -race this is the cache-under-concurrency acceptance test at the HTTP
// layer.
func TestServerConcurrentMixedLoad(t *testing.T) {
	srv := testServer(Config{CacheSize: 32, BatchWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{"indy 4", "madagascar 2", "crystal skull dvd", "unrelated"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := queries[(g+i)%len(queries)]
				resp, err := http.Get(ts.URL + "/match?q=" + strings.ReplaceAll(q, " ", "+"))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if i%10 == 0 {
					body, _ := json.Marshal(BatchRequest{Queries: queries})
					resp, err := http.Post(ts.URL+"/match/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	st := srv.Stats()
	if st.Requests.Match != 240 {
		t.Fatalf("match requests %d, want 240", st.Requests.Match)
	}
	if st.Cache.Hits == 0 {
		t.Fatal("no cache hits under repeated identical queries")
	}
}

// probeSnapshot builds a snapshot whose "probe target" string resolves
// to the given entity — two of these (entity 0 vs 1) make generations
// distinguishable through Server.Do.
func probeSnapshot(entity int) *Snapshot {
	d := match.NewDictionary()
	d.Add("Alpha Movie", match.Entry{EntityID: 0, Score: 1, Source: "canonical"})
	d.Add("Beta Movie", match.Entry{EntityID: 1, Score: 1, Source: "canonical"})
	d.Add("probe target", match.Entry{EntityID: entity, Score: 0.9, Source: "mined"})
	return &Snapshot{
		Dataset:    "Probe",
		MinSim:     0.55,
		Canonicals: []string{"Alpha Movie", "Beta Movie"},
		Synonyms:   map[string][]string{},
		Dict:       d,
		Fuzzy:      d.NewFuzzyIndex(0.55).Packed(),
	}
}

// TestConcurrentDoAcrossInstall hammers Server.Do from many goroutines
// while the main goroutine hot-swaps generations whose dictionaries
// resolve the probe query differently. The per-generation request cache
// is the subject: after an Install returns, a fresh Do must answer from
// the new generation — a cache shared across generations would keep
// serving the old entity. With -race this doubles as the data-race proof
// for the generation handle under the public Do API.
func TestConcurrentDoAcrossInstall(t *testing.T) {
	s := NewServer(probeSnapshot(0), Config{CacheSize: 64})
	req := match.Request{Query: "probe target tickets"}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Do(req)
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				// Whatever generation answered, the response must be
				// internally consistent — one of the two valid answers,
				// never a blend.
				if len(res.Matches) != 1 || res.Matches[0].EntityID > 1 || res.Remainder != "tickets" {
					t.Errorf("torn response: %+v", res)
					return
				}
			}
		}()
	}

	const swaps = 10
	for i := 1; i <= swaps; i++ {
		entity := i % 2
		gen, err := s.Prepare(probeSnapshot(entity), SnapshotMeta{})
		if err != nil {
			t.Fatal(err)
		}
		s.Install(gen)
		// The moment Install returns, a new Do must see the new
		// dictionary: a stale (cross-generation) cache entry would still
		// answer with the previous entity.
		res, err := s.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 || res.Matches[0].EntityID != entity {
			t.Fatalf("swap %d: Do answered entity %+v, want %d (stale generation served)", i, res.Matches, entity)
		}
	}
	close(stop)
	wg.Wait()

	if gen, swapped := s.Generation(); gen != swaps+1 || swapped != swaps {
		t.Fatalf("generation %d swaps %d, want %d, %d", gen, swapped, swaps+1, swaps)
	}
	// One more identical request: the final generation's cache now holds
	// the probe (the post-Install Do above), so this must hit — proving
	// the staleness guarantee comes from per-generation caches, not from
	// caching being accidentally disabled.
	if _, err := s.Do(req); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Cache.Hits == 0 {
		t.Fatalf("final generation saw no cache hits: %+v", st.Cache)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// jsonEqual compares two values by JSON encoding (ignores nil-vs-empty
// slice distinctions the handlers don't care about).
func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ja, jb)
}
