// Package serve is the online half of the reproduction: a production
// serving layer over the artifacts the offline pipeline mines.
//
// The paper's system splits cleanly in two. Offline, the miner chews
// through search and click logs and emits a synonym dictionary; online, a
// low-latency tier matches live Web queries against that dictionary. This
// package implements the online tier:
//
//   - Snapshot: a versioned binary serialization of everything the online
//     tier needs (compiled dictionary, entity table, synonym map), so a
//     server starts in milliseconds instead of re-running the miner.
//   - Server: HTTP handlers for single-query match, batched match with a
//     bounded worker pool, whole-string fuzzy lookup (sharded), synonym
//     listing, and a /statsz observability endpoint.
//   - An LRU request cache keyed on the normalized query, with hit/miss
//     counters.
//   - An atomic generation handle (Prepare/Install) so the whole
//     snapshot-derived state hot-swaps without dropping traffic; the
//     watcher driving it lives in internal/serve/reload.
//
// cmd/matchd is a thin flag-parsing wrapper around this package, and
// cmd/dictbuild produces Snapshot files.
package serve

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"websyn/internal/match"
	"websyn/internal/rewrite"
)

// Snapshot bundles the online tier's read-only state: the compiled match
// dictionary, the entity table (ID -> canonical string), and the mined
// synonym listing per canonical norm. It is what dictbuild writes and
// matchd -snapshot loads.
type Snapshot struct {
	// Dataset names the data set the dictionary was mined from
	// ("Movies", "Cameras", ...). Informational.
	Dataset string
	// MinSim is the Dice-similarity threshold the fuzzy index should be
	// built with (the value the dictionary was tuned against offline).
	MinSim float64
	// Canonicals maps entity ID (the slice index) to the entity's
	// canonical string.
	Canonicals []string
	// Synonyms maps a canonical string's normalized form to its mined
	// synonyms.
	Synonyms map[string][]string
	// Dict is the compiled synonym dictionary.
	Dict *match.Dictionary
	// Fuzzy is the precomputed packed trigram index over Dict's strings
	// (version 2 snapshots). When nil — a version 1 snapshot, or a
	// builder that skipped it — servers rebuild the index from Dict.
	Fuzzy *match.PackedFuzzy
	// Vocab is the domain's attribute vocabulary for the structured
	// rewrite stage (version 4 snapshots). When nil — an older snapshot,
	// or a builder without entity-table access — the /v2 surface still
	// serves, with empty attribute lists and residual == remainder.
	Vocab *rewrite.Vocabulary
	// Version is the file layout version this snapshot was read from;
	// 0 for snapshots built in-process (never serialized). Writers
	// ignore it — WriteTo always emits the current SnapshotVersion.
	Version int
}

// Snapshot file layout (all integers uvarint unless noted, all strings
// uvarint length + UTF-8 bytes):
//
//	magic "WSNP", version byte,
//	dataset string,
//	minSim float64 bits (fixed 8 bytes, big endian),
//	entity count, then per entity (ID = position): canonical string,
//	synonym-record count, then per record:
//	  norm string, synonym count, synonyms,
//	dictionary distinct-string count, then per string:
//	  text string, entry count, then per entry:
//	    entityID, score float64 bits (fixed 8 bytes), source string,
//	[version >= 2] packed fuzzy-index presence byte (0 or 1), then when
//	  present the packed index — version 2: the uvarint/delta stream of
//	  match.PackedFuzzy.WriteBinary; version 3: the aligned raw slab
//	  layout of match.PackedFuzzy.WriteRaw, which a memory-mapped reader
//	  aliases in place (see OpenSnapshotMapped),
//	[version >= 4] attribute-vocabulary presence byte (0 or 1), then when
//	  present: blob length, then the rewrite.Vocabulary binary form
//	  (internal/rewrite's self-contained codec),
//	CRC-32 (IEEE) of everything above (fixed 4 bytes, big endian).
//
// The version byte is bumped on any incompatible layout change; readers
// reject versions they don't know, but version 1 files (no fuzzy
// section) stay readable — servers rebuild the index from the
// dictionary — and version 2/3 files decode as before, simply without a
// vocabulary. The trailing checksum catches truncated or corrupted
// files before a server boots on bad data.

var snapshotMagic = [4]byte{'W', 'S', 'N', 'P'}

// SnapshotVersion is the current snapshot layout version. Version 2
// added the embedded packed fuzzy index; version 3 stores it as aligned
// fixed-width slabs so OpenSnapshotMapped can serve it straight from
// the page cache; version 4 appends the attribute vocabulary behind the
// fuzzy section.
const SnapshotVersion = 4

// maxVocabBlob bounds the serialized attribute vocabulary; a larger
// length prefix means a corrupt file and must not drive an allocation.
const maxVocabBlob = 1 << 24

// crcWriter hashes every byte it forwards.
type crcWriter struct {
	w   *bufio.Writer
	sum hash.Hash32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.sum.Write(p[:n])
	cw.n += int64(n)
	return n, err
}

// WriteTo serializes the snapshot. It returns the number of bytes
// written.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	return s.WriteToVersion(w, SnapshotVersion)
}

// WriteToVersion serializes a specific layout version — version 1 omits
// the fuzzy section. Crossgrade tests and downgrade tooling use it to
// produce older-format files; everyone else wants WriteTo.
func (s *Snapshot) WriteToVersion(w io.Writer, version byte) (int64, error) {
	if version < 1 || version > SnapshotVersion {
		return 0, fmt.Errorf("serve: cannot write snapshot version %d (valid: 1..%d)", version, SnapshotVersion)
	}
	return s.writeTo(w, version)
}

func (s *Snapshot) writeTo(w io.Writer, version byte) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw, sum: crc32.NewIEEE()}
	var scratch [binary.MaxVarintLen64]byte

	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}
	writeString := func(str string) error {
		if err := writeUvarint(uint64(len(str))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, str)
		return err
	}
	writeFloat := func(f float64) error {
		binary.BigEndian.PutUint64(scratch[:8], math.Float64bits(f))
		_, err := cw.Write(scratch[:8])
		return err
	}

	if _, err := cw.Write(snapshotMagic[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte{version}); err != nil {
		return cw.n, err
	}
	if err := writeString(s.Dataset); err != nil {
		return cw.n, err
	}
	if err := writeFloat(s.MinSim); err != nil {
		return cw.n, err
	}

	if err := writeUvarint(uint64(len(s.Canonicals))); err != nil {
		return cw.n, err
	}
	for _, c := range s.Canonicals {
		if err := writeString(c); err != nil {
			return cw.n, err
		}
	}

	if err := writeUvarint(uint64(len(s.Synonyms))); err != nil {
		return cw.n, err
	}
	for _, norm := range sortedKeys(s.Synonyms) {
		if err := writeString(norm); err != nil {
			return cw.n, err
		}
		syns := s.Synonyms[norm]
		if err := writeUvarint(uint64(len(syns))); err != nil {
			return cw.n, err
		}
		for _, syn := range syns {
			if err := writeString(syn); err != nil {
				return cw.n, err
			}
		}
	}

	// One trie walk: collect the (text, entries) pairs, then write them
	// behind the count they determine.
	type dictString struct {
		text    string
		entries []match.Entry
	}
	var dictStrings []dictString
	s.Dict.ForEach(func(text string, entries []match.Entry) {
		dictStrings = append(dictStrings, dictString{text, entries})
	})
	if err := writeUvarint(uint64(len(dictStrings))); err != nil {
		return cw.n, err
	}
	for _, ds := range dictStrings {
		if err := writeString(ds.text); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(len(ds.entries))); err != nil {
			return cw.n, err
		}
		for _, e := range ds.entries {
			if err := writeUvarint(uint64(e.EntityID)); err != nil {
				return cw.n, err
			}
			if err := writeFloat(e.Score); err != nil {
				return cw.n, err
			}
			if err := writeString(e.Source); err != nil {
				return cw.n, err
			}
		}
	}

	if version >= 2 {
		if s.Fuzzy == nil {
			if _, err := cw.Write([]byte{0}); err != nil {
				return cw.n, err
			}
		} else {
			if _, err := cw.Write([]byte{1}); err != nil {
				return cw.n, err
			}
			if version >= 3 {
				// The raw writer pads from the current file offset so the
				// slabs land at mmap-friendly alignment.
				if err := s.Fuzzy.WriteRaw(cw, cw.n); err != nil {
					return cw.n, err
				}
			} else if err := s.Fuzzy.WriteBinary(cw); err != nil {
				return cw.n, err
			}
		}
	}

	if version >= 4 {
		if s.Vocab == nil {
			if _, err := cw.Write([]byte{0}); err != nil {
				return cw.n, err
			}
		} else {
			if _, err := cw.Write([]byte{1}); err != nil {
				return cw.n, err
			}
			blob := s.Vocab.AppendBinary(nil)
			if err := writeUvarint(uint64(len(blob))); err != nil {
				return cw.n, err
			}
			if _, err := cw.Write(blob); err != nil {
				return cw.n, err
			}
		}
	}

	// Trailing checksum of everything written so far (not itself hashed).
	binary.BigEndian.PutUint32(scratch[:4], cw.sum.Sum32())
	if _, err := bw.Write(scratch[:4]); err != nil {
		return cw.n, err
	}
	cw.n += 4
	return cw.n, bw.Flush()
}

// snapReader counts and (optionally) hashes every byte it yields; it
// satisfies io.ByteReader so binary.ReadUvarint can consume it
// directly. The byte count drives the version 3 fuzzy section's
// alignment padding; sum is nil when integrity was already verified
// up front (the memory-mapped path checksums the whole file in one
// pass before parsing).
type snapReader struct {
	r interface {
		io.Reader
		io.ByteReader
	}
	sum hash.Hash32
	n   int64
}

func (cr *snapReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if cr.sum != nil {
		cr.sum.Write(p[:n])
	}
	cr.n += int64(n)
	return n, err
}

func (cr *snapReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		if cr.sum != nil {
			cr.sum.Write([]byte{b})
		}
		cr.n++
	}
	return b, err
}

// maxSnapshotString bounds one serialized string; a longer length prefix
// means a corrupt file and must not drive an allocation.
const maxSnapshotString = 1 << 20

// ReadSnapshot loads a snapshot serialized by WriteTo, verifying the
// layout version and the trailing checksum.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	cr := &snapReader{r: bufio.NewReader(r), sum: crc32.NewIEEE()}
	return readSnapshotFrom(cr, nil, nil)
}

// readSnapshotFrom is the shared decode core. mapped, when non-nil, is
// the whole serialized file held in memory (an mmap) that cr is reading
// from: the version 3 fuzzy section is then aliased in place via
// match.MapPackedFuzzy with pin as its lifetime anchor, instead of
// decoded onto the heap, and cr.sum is expected to be nil (integrity
// pre-verified).
func readSnapshotFrom(cr *snapReader, mapped []byte, pin any) (*Snapshot, error) {

	readUvarint := func() (uint64, error) { return binary.ReadUvarint(cr) }
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > maxSnapshotString {
			return "", fmt.Errorf("string length %d exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	readFloat := func() (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(cr, buf[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(buf[:])), nil
	}

	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("serve: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("serve: bad snapshot magic %q", magic[:])
	}
	ver, err := cr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot version: %w", err)
	}
	if ver < 1 || ver > SnapshotVersion {
		return nil, fmt.Errorf("serve: snapshot version %d, this binary reads 1..%d", ver, SnapshotVersion)
	}

	snap := &Snapshot{Version: int(ver)}
	if snap.Dataset, err = readString(); err != nil {
		return nil, fmt.Errorf("serve: reading dataset: %w", err)
	}
	if snap.MinSim, err = readFloat(); err != nil {
		return nil, fmt.Errorf("serve: reading minSim: %w", err)
	}

	nEnt, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("serve: reading entity count: %w", err)
	}
	snap.Canonicals = make([]string, 0, int(min(nEnt, 1<<20)))
	for i := uint64(0); i < nEnt; i++ {
		c, err := readString()
		if err != nil {
			return nil, fmt.Errorf("serve: reading entity %d: %w", i, err)
		}
		snap.Canonicals = append(snap.Canonicals, c)
	}

	nSyn, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("serve: reading synonym-record count: %w", err)
	}
	snap.Synonyms = make(map[string][]string, int(min(nSyn, 1<<20)))
	for i := uint64(0); i < nSyn; i++ {
		norm, err := readString()
		if err != nil {
			return nil, fmt.Errorf("serve: reading synonym record %d: %w", i, err)
		}
		cnt, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("serve: reading synonym count for %q: %w", norm, err)
		}
		syns := make([]string, 0, int(min(cnt, 1<<16)))
		for j := uint64(0); j < cnt; j++ {
			syn, err := readString()
			if err != nil {
				return nil, fmt.Errorf("serve: reading synonym %d of %q: %w", j, norm, err)
			}
			syns = append(syns, syn)
		}
		snap.Synonyms[norm] = syns
	}

	nStr, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("serve: reading dictionary string count: %w", err)
	}
	snap.Dict = match.NewDictionary()
	for i := uint64(0); i < nStr; i++ {
		text, err := readString()
		if err != nil {
			return nil, fmt.Errorf("serve: reading dictionary string %d: %w", i, err)
		}
		cnt, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("serve: reading entry count for %q: %w", text, err)
		}
		for j := uint64(0); j < cnt; j++ {
			id, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("serve: reading entity ID (%q entry %d): %w", text, j, err)
			}
			score, err := readFloat()
			if err != nil {
				return nil, fmt.Errorf("serve: reading score (%q entry %d): %w", text, j, err)
			}
			source, err := readString()
			if err != nil {
				return nil, fmt.Errorf("serve: reading source (%q entry %d): %w", text, j, err)
			}
			snap.Dict.Add(text, match.Entry{EntityID: int(id), Score: score, Source: source})
		}
	}

	if ver >= 2 {
		present, err := cr.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("serve: reading fuzzy-index presence: %w", err)
		}
		switch present {
		case 0:
		case 1:
			switch {
			case ver >= 3 && mapped != nil:
				// Alias the raw slabs in place; advance cr past the section
				// so any trailing layout stays in sync.
				p, end, err := match.MapPackedFuzzy(mapped, cr.n, pin)
				if err != nil {
					return nil, fmt.Errorf("serve: mapping packed fuzzy index: %w", err)
				}
				if _, err := io.CopyN(io.Discard, cr, end-cr.n); err != nil {
					return nil, fmt.Errorf("serve: skipping mapped fuzzy index: %w", err)
				}
				snap.Fuzzy = p
			case ver >= 3:
				snap.Fuzzy, err = match.ReadPackedFuzzyRaw(cr, cr.n)
				if err != nil {
					return nil, fmt.Errorf("serve: reading packed fuzzy index: %w", err)
				}
			default:
				// cr implements io.ByteReader, so the packed reader consumes
				// exactly the section and leaves the checksum in place.
				snap.Fuzzy, err = match.ReadPackedFuzzy(cr)
				if err != nil {
					return nil, fmt.Errorf("serve: reading packed fuzzy index: %w", err)
				}
			}
		default:
			return nil, fmt.Errorf("serve: bad fuzzy-index presence byte %d", present)
		}
	}

	if ver >= 4 {
		present, err := cr.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("serve: reading vocabulary presence: %w", err)
		}
		switch present {
		case 0:
		case 1:
			n, err := readUvarint()
			if err != nil {
				return nil, fmt.Errorf("serve: reading vocabulary length: %w", err)
			}
			if n > maxVocabBlob {
				return nil, fmt.Errorf("serve: vocabulary length %d exceeds limit", n)
			}
			blob := make([]byte, n)
			if _, err := io.ReadFull(cr, blob); err != nil {
				return nil, fmt.Errorf("serve: reading vocabulary: %w", err)
			}
			if snap.Vocab, err = rewrite.DecodeBinary(blob); err != nil {
				return nil, fmt.Errorf("serve: decoding vocabulary: %w", err)
			}
		default:
			return nil, fmt.Errorf("serve: bad vocabulary presence byte %d", present)
		}
	}

	var stored [4]byte
	if _, err := io.ReadFull(cr.r, stored[:]); err != nil {
		return nil, fmt.Errorf("serve: reading snapshot checksum: %w", err)
	}
	if cr.sum != nil {
		if got, want := binary.BigEndian.Uint32(stored[:]), cr.sum.Sum32(); got != want {
			return nil, fmt.Errorf("serve: snapshot checksum mismatch (stored %08x, computed %08x)", got, want)
		}
	}
	return snap, nil
}

// WriteFile serializes the snapshot to a file, replacing any existing
// content atomically (write to a temp file, then rename).
func (s *Snapshot) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return fmt.Errorf("serve: creating snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := s.WriteTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	// CreateTemp's 0600 would make the artifact unreadable by a service
	// user other than the builder; open it up to a normal file mode.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: setting snapshot permissions: %w", err)
	}
	// Flush to stable storage before the rename makes it visible, so a
	// crash cannot install a truncated snapshot.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: closing snapshot temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: installing snapshot: %w", err)
	}
	return nil
}

// ReadSnapshotFile loads a snapshot from a file.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening snapshot: %w", err)
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ReadSnapshotFileHashed loads a snapshot while streaming its bytes
// through SHA-256, returning the hex digest of the whole file alongside
// it — the provenance hash matchd boots with and the reload watcher
// keys its change detection on. Hashing during the parse avoids holding
// the file in memory next to the decoded dictionary.
func ReadSnapshotFileHashed(path string) (*Snapshot, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("serve: opening snapshot: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	snap, err := ReadSnapshot(io.TeeReader(f, h))
	if err != nil {
		return nil, "", err
	}
	// Drain anything past the checksum (a valid file has none) so the
	// digest always covers the whole file, matching any independent
	// whole-file hash.
	if _, err := io.Copy(h, f); err != nil {
		return nil, "", fmt.Errorf("serve: reading snapshot tail: %w", err)
	}
	return snap, hex.EncodeToString(h.Sum(nil)), nil
}

// sortedKeys returns the map's keys in ascending order so snapshot bytes
// are deterministic for a given state.
func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
